// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per experiment), plus the ablation and microbenchmarks
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// These measure regeneration cost at eval.Quick() scale; the rendered
// tables themselves come from `go run ./cmd/p4wnbench`.
package p4wn_test

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dut"
	"repro/internal/eval"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/programs"
	"repro/internal/solver"
	"repro/internal/sym"
	"repro/internal/testgen"
	"repro/internal/trace"
)

// ---- Table 1 and Figures 6-13: one bench per experiment ----

func BenchmarkTable1(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6a(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure6a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6b(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure6b(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6c(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure6c(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6d(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure6d(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6e(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure6e(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6f(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure6f(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure11(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure12(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure13(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccuracyVsExhaustive(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.AccuracyVsExhaustive(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOffloadCaseStudy(b *testing.B) {
	cfg := eval.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := eval.OffloadCaseStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (DESIGN.md) ----

// State merging on/off: merging keeps the stateful search polynomial.
func BenchmarkAblationMergingOn(b *testing.B)  { benchMerging(b, true) }
func BenchmarkAblationMergingOff(b *testing.B) { benchMerging(b, false) }

func benchMerging(b *testing.B, merge bool) {
	for i := 0; i < b.N; i++ {
		prog := programs.Counter(16)
		e := sym.NewEngine(prog, sym.Options{Greybox: true, Merge: merge, MaxPaths: 1 << 18})
		counter := mc.NewCounter(e.Space, nil)
		paths := e.Initial()
		var err error
		for k := 0; k < 12; k++ {
			paths, err = e.Step(paths, k)
			if err != nil {
				b.Fatal(err)
			}
			if merge {
				paths = sym.Merge(paths, counter)
			}
		}
	}
}

// Telescoping on/off on Blink: its retransmission tracking carries
// cross-packet symbolic state that cannot be merged away, so without
// telescoping the main loop cannot reach the depth-33 reroute block at any
// affordable budget — the Off profile lacks the estimate entirely, while
// the On arm gets it from a 4-packet probe. The comparison is therefore
// about what the time buys, not raw speed.
func BenchmarkAblationTelescopeOn(b *testing.B)  { benchTelescope(b, false) }
func BenchmarkAblationTelescopeOff(b *testing.B) { benchTelescope(b, true) }

func benchTelescope(b *testing.B, disable bool) {
	for i := 0; i < b.N; i++ {
		opt := core.Options{
			Seed: 1, MaxIters: 12, DisableTelescope: disable, DisableSampling: true,
			Timeout: 2 * time.Second,
		}
		prof, err := core.ProbProf(programs.Blink(), nil, opt)
		if err != nil {
			b.Fatal(err)
		}
		rr, _ := prof.ByLabel("reroute")
		if disable && !rr.P.IsZero() {
			b.Fatal("reroute estimated without telescoping?")
		}
		if !disable && rr.P.IsZero() {
			b.Fatal("telescoping should estimate reroute")
		}
	}
}

// Greybox vs symbolic-array handling of a fixed-size hash table.
func BenchmarkAblationGreyboxOn(b *testing.B)  { benchGreybox(b, true) }
func BenchmarkAblationGreyboxOff(b *testing.B) { benchGreybox(b, false) }

func benchGreybox(b *testing.B, grey bool) {
	for i := 0; i < b.N; i++ {
		prog := programs.HTable(512, 8)
		e := sym.NewEngine(prog, sym.Options{Greybox: grey, MaxPaths: 1 << 16,
			Deadline: time.Now().Add(2 * time.Second)})
		paths := e.Initial()
		var err error
		for k := 0; k < 4 && err == nil; k++ {
			paths, err = e.Step(paths, k)
		}
		_ = paths
	}
}

// Exact vs Monte-Carlo model counting on a pair constraint.
func BenchmarkAblationCounterExact(b *testing.B) { benchCounter(b, false) }
func BenchmarkAblationCounterMC(b *testing.B)    { benchCounter(b, true) }

func benchCounter(b *testing.B, forceMC bool) {
	space := solver.NewSpace(ir.StdFields)
	cs := []solver.Constraint{
		solver.NewCmp(ir.CmpLt,
			solver.VarExpr(solver.Var{Pkt: 0, Field: "src_port"}),
			solver.VarExpr(solver.Var{Pkt: 0, Field: "dst_port"})),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mc.NewCounter(space, nil)
		c.ForceMC = forceMC
		c.MCSamples = 5000
		c.Seed = int64(i)
		_ = c.ProbOf(cs)
	}
}

// Query cache on/off in the trace oracle.
func BenchmarkAblationQueryCacheOn(b *testing.B)  { benchQueryCache(b, true) }
func BenchmarkAblationQueryCacheOff(b *testing.B) { benchQueryCache(b, false) }

func benchQueryCache(b *testing.B, cached bool) {
	tr := trace.Generate(trace.GenOptions{Seed: 1, Packets: 20000})
	q := trace.NewQueryProcessor(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cached {
			q.FieldDist("proto")
		} else {
			q.FieldDistNoCache("proto")
		}
	}
}

// ---- Microbenchmarks of the substrates ----

func BenchmarkSolverSolve(b *testing.B) {
	space := solver.NewSpace(ir.StdFields)
	cs := []solver.Constraint{
		solver.NewCmp(ir.CmpEq,
			solver.VarExpr(solver.Var{Pkt: 0, Field: "seq"}),
			solver.VarExpr(solver.Var{Pkt: 1, Field: "seq"})),
		solver.NewCmp(ir.CmpGe,
			solver.VarExpr(solver.Var{Pkt: 0, Field: "src_port"}),
			solver.ConstExpr(1024)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := solver.Solve(cs, space, solver.SolveOptions{Seed: int64(i)}); !ok {
			b.Fatal("unsat")
		}
	}
}

func BenchmarkModelCount(b *testing.B) {
	space := solver.NewSpace(ir.StdFields)
	c := mc.NewCounter(space, nil)
	c.DisableCache = true
	cs := []solver.Constraint{
		solver.NewCmp(ir.CmpLe,
			solver.VarExpr(solver.Var{Pkt: 0, Field: "src_port"}),
			solver.ConstExpr(80)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.ProbOf(cs)
	}
}

func BenchmarkDUTProcess(b *testing.B) {
	prog := programs.Blink()
	sw := dut.New(prog, dut.Config{})
	tr := trace.Generate(trace.GenOptions{Seed: 1, Packets: 1024})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Process(&tr.Packets[i%tr.Len()])
	}
}

func BenchmarkSymStepBlink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sym.NewEngine(programs.Blink(), sym.Options{Greybox: true, Merge: true, MaxPaths: 1 << 16})
		counter := mc.NewCounter(e.Space, nil)
		paths := e.Initial()
		var err error
		for k := 0; k < 3; k++ {
			paths, err = e.Step(paths, k)
			if err != nil {
				b.Fatal(err)
			}
			paths = sym.Merge(paths, counter)
		}
	}
}

func BenchmarkTestgenCounter(b *testing.B) {
	prog := programs.Counter(32)
	target := prog.NodeByLabel("tcp_sample").ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv, err := testgen.Generate(prog, target, testgen.Options{Seed: int64(i)})
		if err != nil || !adv.Validated {
			b.Fatal("generation failed")
		}
	}
}

func BenchmarkPathSampling(b *testing.B) {
	prog := programs.Counter(8)
	for i := 0; i < b.N; i++ {
		baseline.PathSample(prog, &dist.UniformOracle{}, int64(i), 5000, time.Second)
	}
}

func BenchmarkTraceGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace.Generate(trace.GenOptions{Seed: int64(i), Packets: 10000})
	}
}

func BenchmarkOracleQueries(b *testing.B) {
	q := trace.NewQueryProcessor(trace.Generate(trace.GenOptions{Seed: 1, Packets: 20000}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.PairEqualProb("seq")
		q.FieldDist("proto")
	}
}
