package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Handler returns the coordinator mux: the exact job API a single daemon
// serves (so clients are shard-oblivious), the cluster status endpoint,
// liveness/readiness probes, and the observability endpoints.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", c.handleLive)
	mux.HandleFunc("GET /readyz", c.handleReady)
	mux.HandleFunc("GET /v1/healthz", c.handleHealth)
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", c.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /v1/cluster/status", c.handleClusterStatus)
	mux.HandleFunc("GET /debug/trace/{id}", c.handleTrace)
	obs.Mount(mux, c.reg)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (c *Coordinator) handleLive(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"state": "ok"})
}

func (c *Coordinator) handleReady(w http.ResponseWriter, _ *http.Request) {
	if c.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"state": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": "serving"})
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	state := "serving"
	if c.Draining() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": state, "role": "coordinator"})
}

func (c *Coordinator) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec serve.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"decode job spec: " + err.Error()})
		return
	}
	st, code, err := c.Submit(spec)
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, errorBody{err.Error()})
		return
	}
	writeJSON(w, code, st)
}

func (c *Coordinator) handleList(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	statuses := make([]serve.JobStatus, 0, len(c.jobs))
	for _, j := range c.jobs {
		statuses = append(statuses, j.Status())
	}
	c.mu.Unlock()
	sort.Slice(statuses, func(i, k int) bool {
		if statuses[i].SubmittedAt != statuses[k].SubmittedAt {
			return statuses[i].SubmittedAt < statuses[k].SubmittedAt
		}
		return statuses[i].ID < statuses[k].ID
	})
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := c.Job(id); ok {
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	if _, ok := c.cache.get(id); ok {
		writeJSON(w, http.StatusOK, serve.JobStatus{ID: id, State: serve.StateDone, Cached: true})
		return
	}
	// Not ours: the job may have been submitted straight to a shard. Ask
	// the ring owner chain.
	for _, addr := range c.ring.sequence(id) {
		sh := c.shardFor(addr)
		if sh == nil || !sh.isReady() {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		var st serve.JobStatus
		err := c.getJSON(ctx, addr+"/v1/jobs/"+id, &st)
		cancel()
		if err == nil {
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	writeJSON(w, http.StatusNotFound, errorBody{"unknown job " + id})
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := c.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown job " + id})
		return
	}
	j.markCanceled()
	if addr := j.currentWorker(); addr != "" {
		c.cancelOn(id, addr)
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if data, ok := c.cache.get(id); ok {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.Write(data)
		return
	}
	j, ok := c.Job(id)
	if !ok {
		// Unknown here: relay from the ring owner chain (covers results
		// evicted from the LRU and jobs submitted straight to shards).
		if data, addr := c.relayResult(r.Context(), id); data != nil {
			c.cache.put(id, data)
			c.reg.Counter(obs.Labeled("cluster.remote_hits", "shard", addr)).Inc()
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			w.Write(data)
			return
		}
		writeJSON(w, http.StatusNotFound, errorBody{"unknown job " + id})
		return
	}
	switch st := j.Status(); st.State {
	case serve.StateQueued, serve.StateRunning:
		writeJSON(w, http.StatusAccepted, st)
	case serve.StateCanceled:
		writeJSON(w, http.StatusGone, st)
	case serve.StateFailed:
		writeJSON(w, http.StatusInternalServerError, st)
	default:
		// Done, but evicted from the LRU: refetch from the shard that ran it
		// (or the ring owner chain after a topology of failures).
		if addr := j.currentWorker(); addr != "" {
			ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
			data, err := c.fetchResult(ctx, addr, id)
			cancel()
			if err == nil {
				c.cache.put(id, data)
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				w.Header().Set("Content-Length", strconv.Itoa(len(data)))
				w.Write(data)
				return
			}
		}
		if data, _ := c.relayResult(r.Context(), id); data != nil {
			c.cache.put(id, data)
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			w.Write(data)
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{"result missing for job " + id})
	}
}

// relayResult walks the key's ring sequence asking each ready shard's
// store for the result. Returns the bytes and the serving shard, or nil.
func (c *Coordinator) relayResult(ctx context.Context, id string) ([]byte, string) {
	for _, addr := range c.ring.sequence(id) {
		sh := c.shardFor(addr)
		if sh == nil || !sh.isReady() {
			continue
		}
		reqCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, addr+"/v1/jobs/"+id+"/result", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := c.client.Do(req)
		if err != nil {
			cancel()
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		cancel()
		if err == nil && resp.StatusCode == http.StatusOK && json.Valid(body) {
			return body, addr
		}
	}
	return nil, ""
}

// handleTrace exports the coordinator's span tree for a job — the
// cross-node hop (queued → forward → remote → fetch) — as Chrome
// trace_event JSON. The worker's own engine spans live on the worker under
// the same trace_id, so the two exports join on one trace.
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := c.Job(id)
	if !ok {
		// Relay the worker-side trace when the job is not ours.
		for _, addr := range c.ring.sequence(id) {
			sh := c.shardFor(addr)
			if sh == nil || !sh.isReady() {
				continue
			}
			ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/debug/trace/"+id, nil)
			if err != nil {
				cancel()
				continue
			}
			resp, err := c.client.Do(req)
			if err != nil {
				cancel()
				continue
			}
			body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
			resp.Body.Close()
			cancel()
			if err == nil && resp.StatusCode == http.StatusOK {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				w.Write(body)
				return
			}
		}
		writeJSON(w, http.StatusNotFound, errorBody{"unknown job " + id})
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Disposition", `attachment; filename="trace-`+j.traceID+`.json"`)
	j.tracer.WriteChromeTrace(w)
}

// handleEvents streams a job's progress as Server-Sent Events by relaying
// the assigned shard's stream, reconnecting across re-dispatches, and
// finishing with the coordinator's own terminal "done" event.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := c.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown job " + id})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{"streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	lastWorker := ""
	for {
		select {
		case <-j.done:
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", j.State())
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		default:
		}
		addr := j.currentWorker()
		if addr == "" {
			select {
			case <-j.done:
			case <-r.Context().Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		if addr != lastWorker && lastWorker != "" {
			fmt.Fprintf(w, "data: coordinator: shard %s failed; retrying on %s\n\n", lastWorker, addr)
			flusher.Flush()
		}
		lastWorker = addr
		c.relayEvents(w, flusher, r, j, addr)
		// Stream ended: either the job is terminal (loop exits on j.done)
		// or the shard died mid-stream (loop reconnects to the next one).
		select {
		case <-j.done:
		case <-r.Context().Done():
			return
		case <-time.After(c.cfg.PollEvery):
		}
	}
}

// relayEvents proxies one shard's SSE stream until it ends, forwarding
// data events and swallowing the shard's terminal event (the coordinator
// emits its own once the job is terminal on its side).
func (c *Coordinator) relayEvents(w io.Writer, flusher http.Flusher, r *http.Request, j *cjob, addr string) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		// Tear the relay down when the coordinator finishes the job (e.g.
		// re-dispatch after a stall the stream outlived).
		select {
		case <-j.done:
			cancel()
		case <-ctx.Done():
		}
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/jobs/"+j.ID+"/events", nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event == "done" {
				return
			}
			fmt.Fprintf(w, "%s\n\n", line)
			flusher.Flush()
		}
	}
}
