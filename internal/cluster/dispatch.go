package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// maxNoShardWait bounds how long a popped job waits for any live shard
// before failing outright (a fleet-wide outage must surface as an error,
// not a silent hang).
const maxNoShardWait = 30 * time.Second

// dispatcher pops jobs off the fair queue and follows each to its remote
// terminal state. Running follow synchronously bounds the coordinator's
// fleet-wide in-flight count to Config.Dispatchers, which is what makes
// the weighted-fair dequeue meaningful: the queue, not the fleet, is where
// jobs wait.
func (c *Coordinator) dispatcher() {
	defer c.dispWG.Done()
	for {
		j, ok := c.fq.pop()
		if !ok {
			return
		}
		if j.isCanceled() {
			j.finish(serve.StateCanceled, "canceled while queued", false, time.Now())
			continue
		}
		c.follow(j)
	}
}

// follow drives one job across the fleet: pick a shard, forward, poll to a
// terminal state, fetch and replicate the result. A shard failing at any
// step (connection refused mid-job, 5xx, vanished job) moves the job to the
// next candidate in its ring sequence; the content-addressed spec makes
// the retry byte-identical, so a worker kill degrades throughput but never
// output.
func (c *Coordinator) follow(j *cjob) {
	_, span := j.tracer.StartSpanCtx(j.rootCtx, "forward")
	defer span.End()
	start := time.Now()
	defer func() {
		c.reg.Histogram("cluster.forward_seconds").Observe(time.Since(start).Seconds())
	}()

	tried := map[string]bool{}
	waited := time.Duration(0)
	for {
		if j.isCanceled() {
			j.finish(serve.StateCanceled, "canceled", false, time.Now())
			return
		}
		if c.baseCtx.Err() != nil {
			j.finish(serve.StateFailed, "coordinator shutting down", false, time.Now())
			return
		}
		addr, stolen := c.pickShard(j.ID, tried)
		if addr == "" {
			// No untried ready shard right now. That can be transient — a
			// heartbeat false-negative, a shard mid-drain — so wait it out
			// up to maxNoShardWait before declaring the fleet unable.
			if waited >= maxNoShardWait {
				c.reg.Counter("cluster.jobs_failed").Inc()
				j.finish(serve.StateFailed, "no live worker could run the job", false, time.Now())
				return
			}
			select {
			case <-c.baseCtx.Done():
			case <-time.After(200 * time.Millisecond):
				waited += 200 * time.Millisecond
			}
			continue
		}
		tried[addr] = true
		if ok := c.runOn(j, addr, stolen); ok {
			return
		}
		// runOn already counted the retry and marked the shard; loop on to
		// the next ring candidate.
	}
}

// pickShard chooses the next shard for a key: the first untried ready node
// in the key's ring sequence, except that an overloaded owner is skipped
// in favor of the first idle candidate (a steal). Returns "" when no
// untried ready shard exists.
func (c *Coordinator) pickShard(key string, tried map[string]bool) (addr string, stolen bool) {
	seq := c.ring.sequence(key)
	var candidates []*shard
	for _, a := range seq {
		if tried[a] {
			continue
		}
		sh := c.shardFor(a)
		if sh != nil && sh.isReady() {
			candidates = append(candidates, sh)
		}
	}
	if len(candidates) == 0 {
		return "", false
	}
	owner := candidates[0]
	if owner.load() >= c.cfg.StealLoad {
		for _, cand := range candidates[1:] {
			if cand.load() == 0 {
				return cand.addr, true
			}
		}
	}
	return owner.addr, false
}

// runOn forwards the job to one shard and follows it to a terminal state.
// It returns true when the job finished there (any terminal state the
// shard is authoritative for), false when the shard failed and the job
// should move on.
func (c *Coordinator) runOn(j *cjob, addr string, stolen bool) bool {
	sh := c.shardFor(addr)
	sh.addDispatched(1)
	defer sh.addDispatched(-1)
	_, span := j.tracer.StartSpanCtx(j.rootCtx, "remote")
	span.Annotate(obs.F("attempt", float64(j.attempts+1)))
	defer span.End()

	st, err := c.forward(j, addr)
	if err != nil {
		c.shardFailed(j, addr, "forward", err)
		return false
	}
	j.setDispatched(addr, time.Now())
	c.reg.Counter(obs.Labeled("cluster.forwards", "shard", addr)).Inc()
	if stolen {
		c.reg.Counter(obs.Labeled("cluster.steals", "shard", addr)).Inc()
		c.jobLog(j).Info("job stolen onto idle shard", "shard", addr, "owner", c.ring.owner(j.ID))
	} else {
		c.jobLog(j).Info("job forwarded", "shard", addr)
	}
	if st.State == serve.StateDone {
		// The shard answered from its store: no poll needed.
		c.reg.Counter(obs.Labeled("cluster.remote_hits", "shard", addr)).Inc()
		return c.completeDone(j, addr, true)
	}

	// Poll the shard until the job is terminal there or the shard dies.
	consecFails := 0
	tick := time.NewTicker(c.cfg.PollEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			j.finish(serve.StateFailed, "coordinator shutting down", false, time.Now())
			return true
		case <-tick.C:
		}
		if j.isCanceled() {
			// Propagate the cancel to the shard; its answer decides the
			// final state on the next polls.
			c.cancelOn(j.ID, addr)
		}
		ctx, cancel := context.WithTimeout(c.baseCtx, 5*time.Second)
		var remote serve.JobStatus
		err := c.getJSON(ctx, addr+"/v1/jobs/"+j.ID, &remote)
		cancel()
		if err != nil {
			consecFails++
			if consecFails >= 3 {
				c.shardFailed(j, addr, "status poll", err)
				return false
			}
			continue
		}
		consecFails = 0
		switch remote.State {
		case serve.StateDone:
			return c.completeDone(j, addr, false)
		case serve.StateFailed:
			c.reg.Counter("cluster.jobs_failed").Inc()
			j.finish(serve.StateFailed, remote.Error, false, time.Now())
			return true
		case serve.StateCanceled:
			if j.isCanceled() {
				c.reg.Counter("cluster.jobs_canceled").Inc()
				j.finish(serve.StateCanceled, remote.Error, false, time.Now())
				return true
			}
			// Canceled on the worker without our asking (its drain deadline
			// hit): treat as a shard failure and rerun elsewhere.
			c.shardFailed(j, addr, "remote cancel", fmt.Errorf("shard canceled the job"))
			return false
		}
	}
}

// forward POSTs the job spec to a shard, with the coordinator's trace ID
// pinned via header so the worker's spans and log lines join this trace.
func (c *Coordinator) forward(j *cjob, addr string) (serve.JobStatus, error) {
	data, err := json.Marshal(j.Spec)
	if err != nil {
		return serve.JobStatus{}, err
	}
	ctx, cancel := context.WithTimeout(c.baseCtx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/jobs", bytes.NewReader(data))
	if err != nil {
		return serve.JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-P4wn-Trace-Id", j.traceID)
	resp, err := c.client.Do(req)
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return serve.JobStatus{}, err
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		var st serve.JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return serve.JobStatus{}, err
		}
		return st, nil
	default:
		// 429 (shard queue full) and 503 (shard draining) are routing
		// signals, not job failures: surface as an error so follow tries
		// the next candidate.
		return serve.JobStatus{}, fmt.Errorf("shard %s: %s: %s", addr, resp.Status, bytes.TrimSpace(body))
	}
}

// completeDone fetches the finished result from the shard, replicates it
// into the coordinator LRU, and finishes the job. remoteHit marks results
// the shard served from its store with no fresh engine run.
func (c *Coordinator) completeDone(j *cjob, addr string, remoteHit bool) bool {
	_, span := j.tracer.StartSpanCtx(j.rootCtx, "fetch")
	defer span.End()
	ctx, cancel := context.WithTimeout(c.baseCtx, 30*time.Second)
	defer cancel()
	data, err := c.fetchResult(ctx, addr, j.ID)
	if err != nil {
		c.shardFailed(j, addr, "result fetch", err)
		return false
	}
	span.Annotate(obs.F("bytes", float64(len(data))))
	c.cache.put(j.ID, data)
	c.reg.Counter("cluster.jobs_done").Inc()
	c.jobLog(j).Info("job done", "shard", addr, "bytes", len(data), "remote_hit", remoteHit)
	j.finish(serve.StateDone, "", remoteHit, time.Now())
	return true
}

// fetchResult downloads a stored result, retrying briefly while the shard
// finishes persisting (done state can precede store visibility).
func (c *Coordinator) fetchResult(ctx context.Context, addr, id string) ([]byte, error) {
	url := addr + "/v1/jobs/" + id + "/result"
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			if !json.Valid(body) {
				return nil, fmt.Errorf("shard %s returned torn result for %s", addr, id)
			}
			return body, nil
		case http.StatusAccepted:
			lastErr = fmt.Errorf("result for %s not yet persisted on %s", id, addr)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
		default:
			return nil, fmt.Errorf("shard %s: result %s: %s", addr, id, resp.Status)
		}
	}
	return nil, lastErr
}

// cancelOn forwards a cancellation to the shard running the job.
func (c *Coordinator) cancelOn(id, addr string) {
	ctx, cancel := context.WithTimeout(c.baseCtx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, addr+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := c.client.Do(req); err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}
}

// shardFailed records a shard failure for a job: the shard is marked down
// until the heartbeat revives it, and the per-shard retry counter ticks.
func (c *Coordinator) shardFailed(j *cjob, addr, stage string, err error) {
	if sh := c.shardFor(addr); sh != nil {
		sh.markDown()
	}
	c.reg.Counter(obs.Labeled("cluster.retries", "shard", addr)).Inc()
	c.jobLog(j).Warn("shard failed; rerouting job",
		"shard", addr, "stage", stage, "error", err.Error())
}
