package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

var ringNodes = []string{"http://w1:8471", "http://w2:8471", "http://w3:8471"}

// Two rings built from the same worker list — in any order, with
// duplicates — must agree on every key: ownership is a pure function of
// the fleet membership, never of construction history.
func TestRingDeterministic(t *testing.T) {
	a := newRing(ringNodes, 64)
	b := newRing([]string{ringNodes[2], ringNodes[0], ringNodes[1], ringNodes[0], ""}, 64)
	if !reflect.DeepEqual(a.nodes, b.nodes) {
		t.Fatalf("node sets differ: %v vs %v", a.nodes, b.nodes)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("job-%d", i)
		if got, want := b.owner(key), a.owner(key); got != want {
			t.Fatalf("key %q: owner %q on reordered ring, %q on original", key, got, want)
		}
		if !reflect.DeepEqual(a.sequence(key), b.sequence(key)) {
			t.Fatalf("key %q: sequences diverge", key)
		}
	}
}

// sequence must enumerate every node exactly once, owner first.
func TestRingSequenceCoversAllNodes(t *testing.T) {
	r := newRing(ringNodes, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("job-%d", i)
		seq := r.sequence(key)
		if len(seq) != len(ringNodes) {
			t.Fatalf("key %q: sequence %v misses nodes", key, seq)
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("key %q: node %q repeats in %v", key, n, seq)
			}
			seen[n] = true
		}
		if seq[0] != r.owner(key) {
			t.Fatalf("key %q: sequence head %q is not the owner %q", key, seq[0], r.owner(key))
		}
	}
}

// With 64 virtual nodes the keyspace split should be roughly even: no
// shard under ~half or over ~double its fair share across many keys.
func TestRingBalance(t *testing.T) {
	r := newRing(ringNodes, 64)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("job-%d", i))]++
	}
	fair := keys / len(ringNodes)
	for node, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("node %s owns %d of %d keys (fair share %d): ring too skewed", node, n, keys, fair)
		}
	}
}

// Removing one node must only move the keys it owned: every other key
// keeps its owner (the property that makes consistent hashing worth the
// trouble — a worker death invalidates one shard's cache affinity, not
// the whole fleet's).
func TestRingStabilityUnderNodeLoss(t *testing.T) {
	full := newRing(ringNodes, 64)
	reduced := newRing(ringNodes[:2], 64)
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("job-%d", i)
		was := full.owner(key)
		now := reduced.owner(key)
		if was == ringNodes[2] {
			moved++
			continue // owned by the removed node: must move somewhere
		}
		if was != now {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed node; balance test should have caught this")
	}
}
