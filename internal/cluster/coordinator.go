package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Config tunes the coordinator.
type Config struct {
	// Workers lists the shard daemons' base addresses (host:port or URL).
	// The consistent-hash ring is built over this list; order is
	// irrelevant, duplicates are dropped.
	Workers []string
	// Replicas is the virtual-node count per worker (default 64).
	Replicas int
	// TenantQuota bounds each tenant's pending submissions (default 32);
	// past it submissions get 429 + Retry-After.
	TenantQuota int
	// QueueDepth bounds total pending submissions across tenants
	// (default 256).
	QueueDepth int
	// TenantWeights sets fair-share weights; unlisted tenants weigh 1.
	TenantWeights map[string]float64
	// Dispatchers is how many jobs the coordinator keeps in flight across
	// the fleet at once (default 2 per worker, matching each daemon's
	// default job concurrency).
	Dispatchers int
	// CacheCap bounds the in-coordinator hot-result LRU (default 128).
	CacheCap int
	// StealLoad is the in-flight count past which a shard counts as
	// overloaded; an overloaded owner's job is stolen by the first idle
	// shard in its ring sequence (default 4).
	StealLoad int
	// HeartbeatEvery is the shard stats poll interval (default 1s).
	HeartbeatEvery time.Duration
	// PollEvery is the per-job remote status poll interval (default 150ms).
	PollEvery time.Duration
	// Registry receives the cluster metrics; fresh when nil.
	Registry *obs.Registry
	// Logger receives structured log lines (nil discards). Job-scoped
	// records carry job_id, trace_id, and shard.
	Logger *slog.Logger
	// Client performs shard HTTP calls; a default with sane timeouts is
	// built when nil.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = ringReplicas
	}
	if c.TenantQuota == 0 {
		c.TenantQuota = 32
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.Dispatchers == 0 {
		c.Dispatchers = 2 * len(c.Workers)
	}
	if c.CacheCap == 0 {
		c.CacheCap = 128
	}
	if c.StealLoad == 0 {
		c.StealLoad = 4
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.PollEvery == 0 {
		c.PollEvery = 150 * time.Millisecond
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// shard is the coordinator's view of one worker daemon.
type shard struct {
	addr string // canonical base URL

	mu         sync.Mutex
	alive      bool
	ready      bool // alive and not draining
	lastSeen   time.Time
	stats      serve.NodeStats
	dispatched int // jobs this coordinator has in flight here
}

func (sh *shard) isReady() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.ready
}

// load is the coordinator's own in-flight count on the shard — always
// current, unlike heartbeat stats, so steal decisions never act on stale
// data.
func (sh *shard) load() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.dispatched
}

func (sh *shard) addDispatched(d int) {
	sh.mu.Lock()
	sh.dispatched += d
	sh.mu.Unlock()
}

// markDown flips the shard dead immediately (a failed forward or poll);
// the next heartbeat may revive it.
func (sh *shard) markDown() {
	sh.mu.Lock()
	sh.alive = false
	sh.ready = false
	sh.mu.Unlock()
}

// Coordinator routes jobs across a fleet of p4wnd workers. It serves the
// same job API as a single daemon plus /v1/cluster/status, and owns no
// engine: every result is computed by a shard and content-addressed
// identically to a single-node run.
type Coordinator struct {
	cfg    Config
	reg    *obs.Registry
	log    *slog.Logger
	client *http.Client
	ring   *ring
	fq     *fairQueue
	cache  *resultCache

	mu       sync.Mutex
	jobs     map[string]*cjob
	shards   map[string]*shard
	draining bool

	baseCtx context.Context
	stopAll context.CancelFunc
	dispWG  sync.WaitGroup // dispatchers (and the follows they run)
	hbWG    sync.WaitGroup // heartbeat loop
}

// New builds a Coordinator over the configured workers and starts its
// dispatchers and heartbeat loop.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one worker address")
	}
	addrs := make([]string, 0, len(cfg.Workers))
	for _, w := range cfg.Workers {
		a := canonicalAddr(w)
		if a != "" {
			addrs = append(addrs, a)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:     cfg,
		reg:     cfg.Registry,
		log:     cfg.Logger,
		client:  cfg.Client,
		ring:    newRing(addrs, cfg.Replicas),
		fq:      newFairQueue(cfg.TenantQuota, cfg.QueueDepth, cfg.TenantWeights),
		cache:   newResultCache(cfg.CacheCap),
		jobs:    map[string]*cjob{},
		shards:  map[string]*shard{},
		baseCtx: ctx,
		stopAll: cancel,
	}
	if len(c.ring.nodes) == 0 {
		cancel()
		return nil, fmt.Errorf("cluster: no valid worker addresses in %v", cfg.Workers)
	}
	for _, a := range c.ring.nodes {
		c.shards[a] = &shard{addr: a}
	}
	c.reg.RegisterView("cluster", c.viewMetrics)
	c.reg.SetHelp("cluster.forwards", "Jobs forwarded to each shard.")
	c.reg.SetHelp("cluster.steals", "Jobs diverted to an idle shard off an overloaded ring owner.")
	c.reg.SetHelp("cluster.retries", "Jobs re-routed after a shard failed mid-flight.")
	c.reg.SetHelp("cluster.remote_hits", "Results answered from a shard's store with no engine run.")
	c.reg.SetHelp("cluster.quota_rejections", "Submissions refused by a tenant's pending quota.")
	c.reg.SetHelp("cluster.forward_seconds", "Wall time of one job's remote hop, dispatch to terminal state.")
	// Probe the fleet synchronously once so the first submission routes on
	// real liveness, then keep polling in the background.
	c.heartbeatOnce()
	c.hbWG.Add(1)
	go c.heartbeatLoop()
	for i := 0; i < cfg.Dispatchers; i++ {
		c.dispWG.Add(1)
		go c.dispatcher()
	}
	return c, nil
}

// canonicalAddr normalizes a worker address to a scheme-qualified base URL
// without a trailing slash.
func canonicalAddr(addr string) string {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return ""
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// Registry exposes the metrics registry backing /metrics.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// Workers returns the canonical shard addresses on the ring.
func (c *Coordinator) Workers() []string {
	return append([]string(nil), c.ring.nodes...)
}

// viewMetrics is the "cluster." gauge view: per-shard load and liveness
// plus coordinator queue state, labeled by shard address.
func (c *Coordinator) viewMetrics() map[string]float64 {
	out := map[string]float64{
		"pending": float64(c.fq.depth()),
	}
	c.mu.Lock()
	out["jobs"] = float64(len(c.jobs))
	shards := make([]*shard, 0, len(c.shards))
	for _, sh := range c.shards {
		shards = append(shards, sh)
	}
	draining := c.draining
	c.mu.Unlock()
	if draining {
		out["draining"] = 1
	} else {
		out["draining"] = 0
	}
	resident, hits := c.cache.stats()
	out["cache_resident"] = float64(resident)
	out["cache_hits"] = float64(hits)
	for _, sh := range shards {
		sh.mu.Lock()
		alive, ready := 0.0, 0.0
		if sh.alive {
			alive = 1
		}
		if sh.ready {
			ready = 1
		}
		out[obs.Labeled("shard_alive", "shard", sh.addr)] = alive
		out[obs.Labeled("shard_ready", "shard", sh.addr)] = ready
		out[obs.Labeled("shard_queue_depth", "shard", sh.addr)] = float64(sh.stats.QueueDepth)
		out[obs.Labeled("shard_running", "shard", sh.addr)] = float64(sh.stats.Running)
		out[obs.Labeled("shard_dispatched", "shard", sh.addr)] = float64(sh.dispatched)
		sh.mu.Unlock()
	}
	return out
}

// heartbeatLoop polls every shard's /v1/stats on the configured cadence.
func (c *Coordinator) heartbeatLoop() {
	defer c.hbWG.Done()
	tick := time.NewTicker(c.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-tick.C:
			c.heartbeatOnce()
		}
	}
}

// heartbeatOnce polls all shards concurrently with a bounded per-probe
// timeout. A reachable shard is alive; it is ready only while serving
// (draining shards finish their work but receive nothing new). The probe
// timeout is floored at 1s regardless of how fast the cadence is: a busy
// worker answering stats slowly is degraded, not dead, and a fleet-wide
// false "all down" would fail jobs that a moment's patience would save.
func (c *Coordinator) heartbeatOnce() {
	timeout := c.cfg.HeartbeatEvery
	if timeout < time.Second {
		timeout = time.Second
	}
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	var wg sync.WaitGroup
	c.mu.Lock()
	shards := make([]*shard, 0, len(c.shards))
	for _, sh := range c.shards {
		shards = append(shards, sh)
	}
	c.mu.Unlock()
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(c.baseCtx, timeout)
			defer cancel()
			var st serve.NodeStats
			err := c.getJSON(ctx, sh.addr+"/v1/stats", &st)
			sh.mu.Lock()
			wasAlive := sh.alive
			if err != nil {
				sh.alive, sh.ready = false, false
			} else {
				sh.alive = true
				sh.ready = st.State == "serving"
				sh.stats = st
				sh.lastSeen = time.Now()
			}
			nowAlive := sh.alive
			sh.mu.Unlock()
			if wasAlive != nowAlive {
				if nowAlive {
					c.log.Info("shard up", "shard", sh.addr)
				} else {
					c.log.Warn("shard down", "shard", sh.addr, "error", err.Error())
				}
			}
		}(sh)
	}
	wg.Wait()
}

// getJSON performs one GET against a shard and decodes the JSON body.
func (c *Coordinator) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	if out != nil {
		return json.Unmarshal(body, out)
	}
	return nil
}

// Submit runs the coordinator submission flow; the returned code is the
// HTTP status it maps to, mirroring serve.Server.Submit so the client
// surface is identical: 200 (cache or dedup), 202 (queued for dispatch),
// 400 (bad spec), 429 (quota/backpressure), 503 (draining).
func (c *Coordinator) Submit(spec serve.JobSpec) (serve.JobStatus, int, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return serve.JobStatus{}, http.StatusBadRequest, err
	}
	id := norm.ID()
	// The coordinator owns the trace identity for the whole hop: derive it
	// from the content address (like a worker would) and pin it on the
	// forwarded spec so both sides log the same trace_id.
	if norm.TraceID == "" {
		norm.TraceID = id[:16]
	}
	c.reg.Counter("cluster.submitted").Inc()

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return serve.JobStatus{}, http.StatusServiceUnavailable, ErrDraining
	}
	if j, ok := c.jobs[id]; ok && j.State() != serve.StateFailed && j.State() != serve.StateCanceled {
		st := j.Status()
		if st.State == serve.StateDone {
			st.Cached = true
		} else {
			c.reg.Counter("cluster.dedup_inflight").Inc()
		}
		c.mu.Unlock()
		return st, http.StatusOK, nil
	}
	c.mu.Unlock()

	// Local hot cache, then the ring owner's store: identical work finished
	// somewhere in the fleet is answered without dispatching anything.
	if _, ok := c.cache.get(id); ok {
		c.reg.Counter("cluster.cache_hits_total").Inc()
		return serve.JobStatus{
			ID: id, TraceID: norm.TraceID, Kind: norm.Kind,
			State: serve.StateDone, Cached: true, Priority: norm.Priority,
		}, http.StatusOK, nil
	}
	if st, ok := c.probeOwner(id, norm); ok {
		return st, http.StatusOK, nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return serve.JobStatus{}, http.StatusServiceUnavailable, ErrDraining
	}
	if j, ok := c.jobs[id]; ok && j.State() != serve.StateFailed && j.State() != serve.StateCanceled {
		c.reg.Counter("cluster.dedup_inflight").Inc()
		return j.Status(), http.StatusOK, nil
	}
	j := newCjob(id, norm, time.Now())
	if err := c.fq.push(j.Tenant, j); err != nil {
		code := http.StatusServiceUnavailable
		switch err {
		case ErrTenantQuota:
			code = http.StatusTooManyRequests
			c.reg.Counter(obs.Labeled("cluster.quota_rejections", "tenant", tenantLabel(j.Tenant))).Inc()
		case ErrQueueFull:
			code = http.StatusTooManyRequests
			c.reg.Counter("cluster.rejected_full").Inc()
		}
		return serve.JobStatus{}, code, err
	}
	c.jobs[id] = j
	c.trimJobsLocked()
	c.reg.Counter("cluster.enqueued").Inc()
	c.jobLog(j).Info("job enqueued",
		"kind", j.Spec.Kind, "tenant", j.Tenant, "owner", c.ring.owner(id),
		"pending", c.fq.depth())
	return j.Status(), http.StatusAccepted, nil
}

// tenantLabel names the default tenant in metrics ("" is not a useful
// label value).
func tenantLabel(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// probeOwner asks the key's ring owner for an already-stored result before
// enqueuing anything: one bounded GET against its store. On a hit the
// bytes are replicated into the coordinator LRU and the submission is
// answered as cached.
func (c *Coordinator) probeOwner(id string, norm serve.JobSpec) (serve.JobStatus, bool) {
	owner := c.ring.owner(id)
	sh := c.shardFor(owner)
	if sh == nil || !sh.isReady() {
		return serve.JobStatus{}, false
	}
	ctx, cancel := context.WithTimeout(c.baseCtx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return serve.JobStatus{}, false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return serve.JobStatus{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return serve.JobStatus{}, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil || !json.Valid(data) {
		return serve.JobStatus{}, false
	}
	c.cache.put(id, data)
	c.reg.Counter(obs.Labeled("cluster.remote_hits", "shard", owner)).Inc()
	c.log.Info("remote cache hit", "job_id", id, "shard", owner)
	return serve.JobStatus{
		ID: id, TraceID: norm.TraceID, Kind: norm.Kind,
		State: serve.StateDone, Cached: true, Priority: norm.Priority,
	}, true
}

// jobsCap bounds the coordinator's job table; terminal jobs are discarded
// oldest-first past it (results live on in shard stores and the LRU).
const jobsCap = 4096

// trimJobsLocked mirrors the worker-side policy; callers hold c.mu.
func (c *Coordinator) trimJobsLocked() {
	if len(c.jobs) <= jobsCap {
		return
	}
	type aged struct {
		id string
		at time.Time
	}
	var terminal []aged
	for id, j := range c.jobs {
		j.mu.Lock()
		if j.state == serve.StateDone || j.state == serve.StateFailed || j.state == serve.StateCanceled {
			terminal = append(terminal, aged{id, j.finished})
		}
		j.mu.Unlock()
	}
	sort.Slice(terminal, func(i, k int) bool { return terminal[i].at.Before(terminal[k].at) })
	for _, t := range terminal {
		if len(c.jobs) <= jobsCap {
			break
		}
		delete(c.jobs, t.id)
	}
}

func (c *Coordinator) jobLog(j *cjob) *slog.Logger {
	return c.log.With("job_id", j.ID, "trace_id", j.traceID)
}

// Job returns the coordinator's record for an ID.
func (c *Coordinator) Job(id string) (*cjob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

func (c *Coordinator) shardFor(addr string) *shard {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards[addr]
}

// Draining reports whether the coordinator has begun its graceful drain.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Status assembles the cluster status wire form.
func (c *Coordinator) Status() ClusterStatus {
	c.mu.Lock()
	shards := make([]*shard, 0, len(c.shards))
	for _, sh := range c.shards {
		shards = append(shards, sh)
	}
	st := ClusterStatus{
		Draining: c.draining,
		Jobs:     len(c.jobs),
	}
	c.mu.Unlock()
	st.Pending = c.fq.depth()
	st.Tenants = c.fq.tenantSnapshot()
	st.CacheResident, st.CacheHits = c.cache.stats()
	for _, sh := range shards {
		sh.mu.Lock()
		row := ShardStatus{
			Addr:       sh.addr,
			Alive:      sh.alive,
			Ready:      sh.ready,
			QueueDepth: sh.stats.QueueDepth,
			Running:    sh.stats.Running,
			JobWorkers: sh.stats.JobWorkers,
			Dispatched: sh.dispatched,
			LastSeen:   rfc(sh.lastSeen),
		}
		sh.mu.Unlock()
		row.Forwards = c.reg.Counter(obs.Labeled("cluster.forwards", "shard", sh.addr)).Value()
		row.Steals = c.reg.Counter(obs.Labeled("cluster.steals", "shard", sh.addr)).Value()
		row.RemoteHits = c.reg.Counter(obs.Labeled("cluster.remote_hits", "shard", sh.addr)).Value()
		row.Retries = c.reg.Counter(obs.Labeled("cluster.retries", "shard", sh.addr)).Value()
		st.Shards = append(st.Shards, row)
	}
	sort.Slice(st.Shards, func(i, j int) bool { return st.Shards[i].Addr < st.Shards[j].Addr })
	return st
}

// Drain performs the graceful shutdown: submissions get 503, queued jobs
// still dispatch, in-flight remote jobs are followed to their terminal
// state, then Drain returns. If ctx expires first the remaining follows
// are aborted and Drain returns ctx.Err().
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.fq.close()
	c.log.Info("drain started", "pending", c.fq.depth())
	done := make(chan struct{})
	go func() {
		c.dispWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
		c.log.Info("drain complete")
	case <-ctx.Done():
		c.stopAll()
		<-done
		c.log.Warn("drain deadline hit; in-flight follows aborted")
		err = ctx.Err()
	}
	// The heartbeat keeps running while jobs drain (shard liveness still
	// matters for reroutes); it stops with everything else once they're done.
	c.stopAll()
	c.hbWG.Wait()
	return err
}

// Close hard-stops the coordinator (tests): cancel everything and wait.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.fq.close()
	c.stopAll()
	c.dispWG.Wait()
	c.hbWG.Wait()
}
