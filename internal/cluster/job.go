package cluster

import (
	"container/list"
	"context"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// cjob is the coordinator's record of one routed job: the normalized spec,
// its current shard assignment, and a span tree covering the cross-node
// hop (queued → dispatch → remote run → fetch) that /debug/trace/{id}
// exports. The job and trace identity are the same content address a
// worker computes, so coordinator spans, worker spans, and worker log
// lines all join on one trace_id.
type cjob struct {
	ID     string
	Spec   serve.JobSpec // normalized; Spec.TraceID carries the trace hop
	Tenant string

	mu        sync.Mutex
	state     serve.JobState
	worker    string // current shard assignment ("" while queued)
	attempts  int    // dispatch attempts across shards
	errMsg    string
	cached    bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	canceled  bool

	done chan struct{}

	tracer  *obs.Tracer
	traceID string
	rootCtx context.Context
	root    obs.Span
	queued  obs.Span
}

func newCjob(id string, spec serve.JobSpec, now time.Time) *cjob {
	j := &cjob{
		ID:        id,
		Spec:      spec,
		Tenant:    spec.Tenant,
		state:     serve.StateQueued,
		submitted: now,
		done:      make(chan struct{}),
		tracer:    obs.NewTracer(nil),
	}
	j.traceID = spec.TraceID
	j.tracer.SetTraceID(j.traceID)
	j.rootCtx, j.root = j.tracer.StartSpanCtx(context.Background(), "job")
	_, j.queued = j.tracer.StartSpanCtx(j.rootCtx, "queued")
	return j
}

func (j *cjob) State() serve.JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *cjob) isCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// markCanceled flags a queued job for lazy discard at dispatch time.
func (j *cjob) markCanceled() {
	j.mu.Lock()
	j.canceled = true
	j.mu.Unlock()
}

// setDispatched records the shard now running the job. The first dispatch
// ends the queued span; each dispatch (first or retry) opens nothing here —
// the follower times the remote hop with its own spans.
func (j *cjob) setDispatched(addr string, now time.Time) {
	j.mu.Lock()
	first := j.attempts == 0
	j.attempts++
	j.worker = addr
	if j.state == serve.StateQueued {
		j.state = serve.StateRunning
		j.started = now
	}
	j.mu.Unlock()
	if first {
		j.queued.End()
	}
}

// currentWorker returns the shard currently assigned ("" while queued).
func (j *cjob) currentWorker() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.worker
}

// finish moves the job to a terminal state exactly once.
func (j *cjob) finish(state serve.JobState, errMsg string, cached bool, now time.Time) {
	j.mu.Lock()
	if j.state == serve.StateDone || j.state == serve.StateFailed || j.state == serve.StateCanceled {
		j.mu.Unlock()
		return
	}
	wasQueued := j.state == serve.StateQueued
	j.state = state
	j.errMsg = errMsg
	j.cached = cached
	j.finished = now
	j.mu.Unlock()
	if wasQueued {
		j.queued.End()
	}
	j.root.End()
	close(j.done)
}

// Status snapshots the job in the same wire form a single daemon serves,
// so clients cannot tell a coordinator from a worker.
func (j *cjob) Status() serve.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := serve.JobStatus{
		ID:          j.ID,
		TraceID:     j.traceID,
		Kind:        j.Spec.Kind,
		State:       j.state,
		Cached:      j.cached,
		Priority:    j.Spec.Priority,
		Error:       j.errMsg,
		SubmittedAt: rfc(j.submitted),
		StartedAt:   rfc(j.started),
		FinishedAt:  rfc(j.finished),
	}
	if !j.started.IsZero() {
		st.WaitSec = j.started.Sub(j.submitted).Seconds()
	}
	return st
}

func rfc(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// resultCache is the coordinator's bounded LRU over hot result bytes:
// results fetched from shards (or probed off a ring owner's store) are
// replicated here so repeat submissions are answered without any worker
// round trip.
type resultCache struct {
	mu   sync.Mutex
	cap  int
	lru  *list.List // front = most recent; values are *cacheEntry
	byID map[string]*list.Element
	hits int64
}

type cacheEntry struct {
	id   string
	data []byte
}

func newResultCache(capEntries int) *resultCache {
	if capEntries <= 0 {
		capEntries = 128
	}
	return &resultCache{cap: capEntries, lru: list.New(), byID: map[string]*list.Element{}}
}

func (c *resultCache) get(id string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).data, true
}

func (c *resultCache) put(id string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[id]; ok {
		el.Value.(*cacheEntry).data = data
		c.lru.MoveToFront(el)
		return
	}
	c.byID[id] = c.lru.PushFront(&cacheEntry{id: id, data: data})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		delete(c.byID, back.Value.(*cacheEntry).id)
		c.lru.Remove(back)
	}
}

func (c *resultCache) stats() (resident int, hits int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len(), c.hits
}
