package cluster

import (
	"fmt"
	"testing"
	"time"
)

func qjob(tenant, id string) *cjob {
	spec := testSpec(id)
	spec.Tenant = tenant
	return newCjob(id, spec, time.Unix(0, 0))
}

func pushN(t *testing.T, q *fairQueue, tenant string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := q.push(tenant, qjob(tenant, fmt.Sprintf("%s-%d", tenant, i))); err != nil {
			t.Fatalf("push %s #%d: %v", tenant, i, err)
		}
	}
}

// Under sustained backlog, dispatches must track the configured weights:
// a weight-3 tenant gets three dispatches for every one a weight-1 tenant
// gets, and within each tenant order stays FIFO.
func TestFairQueueWeightedShare(t *testing.T) {
	q := newFairQueue(64, 256, map[string]float64{"heavy": 3, "light": 1})
	pushN(t, q, "heavy", 40)
	pushN(t, q, "light", 40)

	counts := map[string]int{}
	lastIdx := map[string]int{"heavy": -1, "light": -1}
	for i := 0; i < 40; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		counts[j.Tenant]++
		var idx int
		fmt.Sscanf(j.ID, j.Tenant+"-%d", &idx)
		if idx <= lastIdx[j.Tenant] {
			t.Fatalf("tenant %s dispatched %d after %d: not FIFO", j.Tenant, idx, lastIdx[j.Tenant])
		}
		lastIdx[j.Tenant] = idx
	}
	if counts["heavy"] < 27 || counts["heavy"] > 33 {
		t.Fatalf("weight-3 tenant got %d of 40 dispatches, want ~30 (weight-1 got %d)",
			counts["heavy"], counts["light"])
	}
}

// The per-tenant quota must bound one tenant's backlog without touching
// the others, and the global cap must bound the sum.
func TestFairQueueQuotaAndCapacity(t *testing.T) {
	q := newFairQueue(4, 6, nil)
	pushN(t, q, "greedy", 4)
	if err := q.push("greedy", qjob("greedy", "greedy-over")); err != ErrTenantQuota {
		t.Fatalf("5th push for quota-4 tenant: err=%v, want ErrTenantQuota", err)
	}
	// Another tenant still has room until the global cap binds.
	pushN(t, q, "other", 2)
	if err := q.push("third", qjob("third", "third-0")); err != ErrQueueFull {
		t.Fatalf("push past global cap: err=%v, want ErrQueueFull", err)
	}
	snap := q.tenantSnapshot()
	for _, ts := range snap {
		if ts.Name == "greedy" && ts.Rejected != 1 {
			t.Fatalf("greedy rejected=%d, want 1", ts.Rejected)
		}
	}
}

// A tenant returning from idle must start at the current virtual clock:
// no banked credit, so it cannot monopolize the queue to "catch up" on
// bandwidth it never used.
func TestFairQueueIdleTenantNoBankedCredit(t *testing.T) {
	q := newFairQueue(64, 256, nil)
	// Tenant a runs alone for a while, advancing its vtime well past zero.
	pushN(t, q, "a", 10)
	for i := 0; i < 10; i++ {
		q.pop()
	}
	// Tenant b arrives fresh with a big backlog; a also has more work.
	pushN(t, q, "b", 10)
	pushN(t, q, "a", 10)
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		j, _ := q.pop()
		counts[j.Tenant]++
	}
	// Equal weights: the window must interleave, not be all-b.
	if counts["a"] < 3 || counts["b"] < 3 {
		t.Fatalf("post-idle window dispatched a=%d b=%d, want roughly even", counts["a"], counts["b"])
	}
}

// close stops intake immediately but lets queued jobs drain; pop returns
// false only once the backlog is gone.
func TestFairQueueCloseDrains(t *testing.T) {
	q := newFairQueue(64, 256, nil)
	pushN(t, q, "a", 3)
	q.close()
	if err := q.push("a", qjob("a", "late")); err != ErrDraining {
		t.Fatalf("push after close: err=%v, want ErrDraining", err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatalf("pop %d after close: queue refused its own backlog", i)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on a closed empty queue returned a job")
	}
}

// A blocked pop must wake on close (dispatcher shutdown path).
func TestFairQueuePopWakesOnClose(t *testing.T) {
	q := newFairQueue(64, 256, nil)
	done := make(chan bool)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop returned a job from an empty closed queue")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pop never woke after close")
	}
}
