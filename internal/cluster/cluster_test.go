package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// testSpec builds a minimal distinct job spec; only the unit tests that
// never dispatch use it (the e2e tests submit real zoo programs).
func testSpec(id string) serve.JobSpec {
	return serve.JobSpec{Program: id}
}

// worker wraps one real serve.Server behind an httptest listener, with a
// kill switch: once dead, every request gets 502 without reaching the
// daemon — the HTTP-level signature of a crashed box, while the test keeps
// control of the underlying server for cleanup.
type worker struct {
	srv  *serve.Server
	ts   *httptest.Server
	dead atomic.Bool
}

func (w *worker) kill() { w.dead.Store(true) }

func newWorker(t *testing.T, jobWorkers int) *worker {
	t.Helper()
	srv, err := serve.New(serve.Config{StoreDir: t.TempDir(), JobWorkers: jobWorkers})
	if err != nil {
		t.Fatal(err)
	}
	w := &worker{srv: srv}
	inner := srv.Handler()
	w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if w.dead.Load() {
			http.Error(rw, "worker down", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(rw, r)
	}))
	t.Cleanup(func() {
		w.ts.Close()
		srv.Close()
	})
	return w
}

// newTestCluster starts n real workers and a coordinator over them with
// test-speed heartbeat/poll intervals.
func newTestCluster(t *testing.T, n int, tune func(*Config)) (*Coordinator, []*worker) {
	t.Helper()
	workers := make([]*worker, n)
	addrs := make([]string, n)
	for i := range workers {
		workers[i] = newWorker(t, 2)
		addrs[i] = workers[i].ts.URL
	}
	cfg := Config{
		Workers:        addrs,
		HeartbeatEvery: 50 * time.Millisecond,
		PollEvery:      20 * time.Millisecond,
	}
	if tune != nil {
		tune(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, workers
}

// waitCdone blocks until the coordinator job is terminal.
func waitCdone(t *testing.T, j *cjob) {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s never reached a terminal state (now %s)", j.ID, j.State())
	}
}

// stripVolatile drops the run-specific fields of a result report — job
// metadata and timings — leaving exactly the content that must be
// byte-identical however the job was routed.
func stripVolatile(t *testing.T, data []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("result is not JSON: %v", err)
	}
	// iterations and hot_blocks are deterministic in their counts but carry
	// per-stage wall times; metrics/stages_sec/wall_sec are pure timing.
	for _, k := range []string{"job", "generated_at", "wall_sec", "stages_sec", "metrics", "hot_blocks", "iterations"} {
		delete(m, k)
	}
	return m
}

// The tentpole correctness bar: results served through the coordinator are
// identical to single-node daemon runs for a spread of zoo programs across
// two device targets. The comparison strips only job/timing metadata —
// nodes, coverage, convergence, options, schema all must match exactly.
func TestClusterByteIdentityAcrossPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker e2e")
	}
	c, _ := newTestCluster(t, 3, nil)
	single, err := serve.New(serve.Config{StoreDir: t.TempDir(), JobWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	programs := []string{"copy-to-cpu", "resubmit", "encap", "simple_router"}
	targets := []string{"idealized", "tofino"}
	for _, prog := range programs {
		for _, tgt := range targets {
			spec := serve.JobSpec{Program: prog, Options: core.WireOptions{Seed: 1, Target: tgt}}

			st, code, err := c.Submit(spec)
			if err != nil || (code != http.StatusAccepted && code != http.StatusOK) {
				t.Fatalf("%s/%s: cluster submit code=%d err=%v", prog, tgt, code, err)
			}
			j, ok := c.Job(st.ID)
			if !ok {
				t.Fatalf("%s/%s: coordinator lost job %s", prog, tgt, st.ID)
			}
			waitCdone(t, j)
			if j.State() != serve.StateDone {
				t.Fatalf("%s/%s: cluster job %s: %s", prog, tgt, j.State(), j.Status().Error)
			}
			viaCluster, ok := c.cache.get(st.ID)
			if !ok {
				t.Fatalf("%s/%s: done job %s not in coordinator cache", prog, tgt, st.ID)
			}

			sst, scode, err := single.Submit(spec)
			if err != nil || scode != http.StatusAccepted {
				t.Fatalf("%s/%s: single-node submit code=%d err=%v", prog, tgt, scode, err)
			}
			if sst.ID != st.ID {
				t.Fatalf("%s/%s: content address differs: cluster %s, single %s", prog, tgt, st.ID, sst.ID)
			}
			sj, _ := single.Job(sst.ID)
			deadline := time.Now().Add(120 * time.Second)
			for sj.State() != serve.StateDone {
				if time.Now().After(deadline) {
					t.Fatalf("%s/%s: single-node job stuck in %s", prog, tgt, sj.State())
				}
				time.Sleep(5 * time.Millisecond)
			}
			viaSingle, ok := single.Store().Get(sst.ID)
			if !ok {
				t.Fatalf("%s/%s: single-node result missing", prog, tgt)
			}

			got, want := stripVolatile(t, viaCluster), stripVolatile(t, viaSingle)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: coordinator result diverges from single-node", prog, tgt)
			}
		}
	}
}

// Killing one of three workers mid-flight must degrade, never corrupt:
// every job still completes, rerouted jobs carry retry attempts, and the
// rerouted results equal an untouched single-node run.
func TestClusterWorkerKillMidJobRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker e2e")
	}
	c, workers := newTestCluster(t, 3, nil)

	// Submit a batch of distinct jobs (seeds vary the content address), then
	// kill whichever worker the first still-running job landed on.
	var jobs []*cjob
	for seed := int64(1); seed <= 4; seed++ {
		spec := serve.JobSpec{Program: "simple_router", Options: core.WireOptions{Seed: seed}}
		st, code, err := c.Submit(spec)
		if err != nil || (code != http.StatusAccepted && code != http.StatusOK) {
			t.Fatalf("seed %d: submit code=%d err=%v", seed, code, err)
		}
		j, _ := c.Job(st.ID)
		jobs = append(jobs, j)
	}

	// Wait for some job to be dispatched, then kill its worker while the
	// others keep serving.
	killed := ""
	deadline := time.Now().Add(30 * time.Second)
	for killed == "" && time.Now().Before(deadline) {
		for _, j := range jobs {
			if addr := j.currentWorker(); addr != "" && j.State() == serve.StateRunning {
				for _, w := range workers {
					if canonicalAddr(w.ts.URL) == addr {
						w.kill()
						killed = addr
					}
				}
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	if killed == "" {
		t.Fatal("no job was ever dispatched; nothing to kill")
	}

	for i, j := range jobs {
		waitCdone(t, j)
		if j.State() != serve.StateDone {
			t.Fatalf("job %d (%s) finished %s after worker kill: %s",
				i, j.ID, j.State(), j.Status().Error)
		}
	}

	// Jobs that were on the killed worker must have been retried elsewhere —
	// and their results must match a clean single-node run.
	single, err := serve.New(serve.Config{StoreDir: t.TempDir(), JobWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	rerouted := 0
	for _, j := range jobs {
		j.mu.Lock()
		attempts, lastWorker := j.attempts, j.worker
		j.mu.Unlock()
		if attempts > 1 {
			rerouted++
			if lastWorker == killed {
				t.Fatalf("job %s says it finished on the killed worker %s", j.ID, killed)
			}
		}
		data, ok := c.cache.get(j.ID)
		if !ok {
			t.Fatalf("job %s has no cached result", j.ID)
		}
		sst, _, err := single.Submit(j.Spec)
		if err != nil {
			t.Fatal(err)
		}
		sj, _ := single.Job(sst.ID)
		for sj.State() != serve.StateDone {
			time.Sleep(5 * time.Millisecond)
		}
		ref, _ := single.Store().Get(sst.ID)
		if !reflect.DeepEqual(stripVolatile(t, data), stripVolatile(t, ref)) {
			t.Errorf("job %s: rerouted result diverges from single-node", j.ID)
		}
	}
	st := c.Status()
	var retries int64
	for _, sh := range st.Shards {
		retries += sh.Retries
	}
	if rerouted > 0 && retries == 0 {
		t.Error("jobs were rerouted but no shard retry was counted")
	}
	t.Logf("killed %s; %d of %d jobs rerouted, %d retries counted", killed, rerouted, len(jobs), retries)
}

// A fresh coordinator must answer a repeat submission from the ring
// owner's store — a remote cache hit, no dispatch, no engine run.
func TestClusterRemoteCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker e2e")
	}
	c, workers := newTestCluster(t, 2, nil)
	spec := serve.JobSpec{Program: "copy-to-cpu", Options: core.WireOptions{Seed: 7}}
	st, _, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j, _ := c.Job(st.ID)
	waitCdone(t, j)
	if j.State() != serve.StateDone {
		t.Fatalf("priming job failed: %s", j.Status().Error)
	}

	// Second coordinator, same fleet, empty caches: the submission must come
	// back done without entering the dispatch queue.
	c2, err := New(Config{
		Workers:        []string{workers[0].ts.URL, workers[1].ts.URL},
		HeartbeatEvery: 50 * time.Millisecond,
		PollEvery:      20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st2, code, err := c2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || st2.State != serve.StateDone || !st2.Cached {
		t.Fatalf("repeat submit: code=%d state=%s cached=%v, want 200/done/cached", code, st2.State, st2.Cached)
	}
	if n := c2.reg.Counter("cluster.enqueued").Value(); n != 0 {
		t.Fatalf("remote cache hit still enqueued %d jobs", n)
	}
	if _, ok := c2.cache.get(st.ID); !ok {
		t.Fatal("remote hit was not replicated into the coordinator LRU")
	}
}

// fakeShard is a scriptable worker for scheduler-level tests: it accepts
// every forward and holds each job "running" until released, so tests
// control exactly how loaded a shard looks. Cancels are honored like the
// real daemon's.
type fakeShard struct {
	ts      *httptest.Server
	accepts atomic.Int64
	release chan string // job IDs finish when sent here

	mu     sync.Mutex
	states map[string]serve.JobState
}

func (f *fakeShard) stateOf(id string) (serve.JobState, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		select {
		case rel := <-f.release:
			f.states[rel] = serve.StateDone
			continue
		default:
		}
		break
	}
	st, ok := f.states[id]
	return st, ok
}

func newFakeShard(t *testing.T) *fakeShard {
	t.Helper()
	f := &fakeShard{release: make(chan string, 64), states: map[string]serve.JobState{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serve.NodeStats{State: "serving", JobWorkers: 2})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec serve.JobSpec
		json.NewDecoder(r.Body).Decode(&spec)
		norm, err := spec.Normalize()
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		f.accepts.Add(1)
		id := norm.ID()
		f.mu.Lock()
		if _, ok := f.states[id]; !ok {
			f.states[id] = serve.StateRunning
		}
		f.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.JobStatus{ID: id, State: serve.StateRunning})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		st, ok := f.stateOf(id)
		if !ok {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(serve.JobStatus{ID: id, State: st})
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		f.mu.Lock()
		if st, ok := f.states[id]; ok && st != serve.StateDone {
			f.states[id] = serve.StateCanceled
		}
		st := f.states[id]
		f.mu.Unlock()
		json.NewEncoder(w).Encode(serve.JobStatus{ID: id, State: st})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if st, ok := f.stateOf(id); !ok || st != serve.StateDone {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, `{"fake_result_for": %q}`, id)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// specOwnedBy searches seeds until a valid spec's content address lands on
// the wanted shard, so scheduler tests can aim jobs at a known owner.
func specOwnedBy(t *testing.T, c *Coordinator, owner string, taken map[string]bool) serve.JobSpec {
	t.Helper()
	for seed := int64(1); seed < 10_000; seed++ {
		spec := serve.JobSpec{Program: "copy-to-cpu", Options: core.WireOptions{Seed: seed}}
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		id := norm.ID()
		if !taken[id] && c.ring.owner(id) == owner {
			taken[id] = true
			return spec
		}
	}
	t.Fatalf("no seed hashes onto %s", owner)
	return serve.JobSpec{}
}

// An overloaded ring owner must have its next job stolen by an idle shard.
func TestClusterWorkSteal(t *testing.T) {
	f1, f2 := newFakeShard(t), newFakeShard(t)
	c, err := New(Config{
		Workers:        []string{f1.ts.URL, f2.ts.URL},
		StealLoad:      1,
		Dispatchers:    2,
		HeartbeatEvery: 50 * time.Millisecond,
		PollEvery:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	owner := canonicalAddr(f1.ts.URL)
	thief := canonicalAddr(f2.ts.URL)
	taken := map[string]bool{}
	specA := specOwnedBy(t, c, owner, taken)
	specB := specOwnedBy(t, c, owner, taken)

	stA, _, err := c.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	jA, _ := c.Job(stA.ID)
	deadline := time.Now().Add(10 * time.Second)
	for jA.currentWorker() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := jA.currentWorker(); got != owner {
		t.Fatalf("job A dispatched to %s, want its ring owner %s", got, owner)
	}

	// Owner now has 1 in flight >= StealLoad: B must be stolen by the idle
	// second shard even though the owner is alive and ready.
	stB, _, err := c.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	jB, _ := c.Job(stB.ID)
	for jB.currentWorker() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := jB.currentWorker(); got != thief {
		t.Fatalf("job B ran on %s, want it stolen by the idle shard %s", got, thief)
	}
	f1.release <- stA.ID
	f2.release <- stB.ID
	waitCdone(t, jA)
	waitCdone(t, jB)
	if n := c.reg.Counter(labeledCounter("cluster.steals", thief)).Value(); n != 1 {
		t.Fatalf("steals{%s}=%d, want 1", thief, n)
	}
}

// Per-tenant quotas must 429 the over-quota tenant while other tenants
// keep submitting.
func TestClusterTenantQuota(t *testing.T) {
	f := newFakeShard(t)
	c, err := New(Config{
		Workers:        []string{f.ts.URL},
		TenantQuota:    2,
		Dispatchers:    1,
		HeartbeatEvery: 50 * time.Millisecond,
		PollEvery:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	submit := func(tenant string, seed int64) (serve.JobStatus, int, error) {
		return c.Submit(serve.JobSpec{
			Program: "copy-to-cpu", Tenant: tenant,
			Options: core.WireOptions{Seed: seed},
		})
	}
	// Seed 1 occupies the single dispatcher (fake shard holds it running);
	// wait until it leaves the queue so the quota applies to the backlog.
	if _, code, err := submit("greedy", 1); err != nil || code != http.StatusAccepted {
		t.Fatalf("first submit: code=%d err=%v", code, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.fq.depth() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for seed := int64(2); seed <= 3; seed++ {
		if _, code, err := submit("greedy", seed); err != nil || code != http.StatusAccepted {
			t.Fatalf("backlog submit seed %d: code=%d err=%v", seed, code, err)
		}
	}
	if _, code, err := submit("greedy", 4); code != http.StatusTooManyRequests || err != ErrTenantQuota {
		t.Fatalf("over-quota submit: code=%d err=%v, want 429/ErrTenantQuota", code, err)
	}
	if _, code, err := submit("modest", 5); err != nil || code != http.StatusAccepted {
		t.Fatalf("other tenant blocked by greedy's quota: code=%d err=%v", code, err)
	}
	if n := c.reg.Counter(labeledCounter("cluster.quota_rejections", "greedy")).Value(); n < 1 {
		t.Fatal("quota rejection not counted")
	}
}

// labeledCounter mirrors the metric names the coordinator uses.
func labeledCounter(base, label string) string {
	switch base {
	case "cluster.quota_rejections":
		if label == "" {
			label = "default"
		}
		return "cluster.quota_rejections{tenant=\"" + label + "\"}"
	default:
		return base + "{shard=\"" + label + "\"}"
	}
}

// A draining coordinator must refuse new submissions with 503 while
// finishing what it accepted.
func TestClusterDrainRefusesNewWork(t *testing.T) {
	f := newFakeShard(t)
	c, err := New(Config{
		Workers:        []string{f.ts.URL},
		HeartbeatEvery: 50 * time.Millisecond,
		PollEvery:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, _, err := c.Submit(serve.JobSpec{Program: "copy-to-cpu", Options: core.WireOptions{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := c.Job(st.ID)
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- c.Drain(ctx)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !c.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, code, err := c.Submit(serve.JobSpec{Program: "copy-to-cpu", Options: core.WireOptions{Seed: 2}}); code != http.StatusServiceUnavailable || err != ErrDraining {
		t.Fatalf("submit during drain: code=%d err=%v, want 503/ErrDraining", code, err)
	}
	f.release <- st.ID
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if j.State() != serve.StateDone {
		t.Fatalf("accepted job finished %s across the drain, want done", j.State())
	}
}

// The coordinator's HTTP surface must match a single daemon's: submit,
// status, result, cancel, health — exercised over real HTTP.
func TestClusterHandlerSurface(t *testing.T) {
	f := newFakeShard(t)
	c, err := New(Config{
		Workers:        []string{f.ts.URL},
		HeartbeatEvery: 50 * time.Millisecond,
		PollEvery:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz=%d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz=%d", code)
	}

	spec := serve.JobSpec{Program: "copy-to-cpu", Options: core.WireOptions{Seed: 11}}
	data, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: code=%d st=%+v", resp.StatusCode, st)
	}
	if st.TraceID != st.ID[:16] {
		t.Fatalf("trace ID %q not derived from content address %q", st.TraceID, st.ID)
	}

	if code, body := get("/v1/jobs/" + st.ID); code != http.StatusOK || !bytes.Contains(body, []byte(st.ID)) {
		t.Fatalf("status: code=%d body=%s", code, body)
	}
	if code, body := get("/v1/jobs"); code != http.StatusOK || !bytes.Contains(body, []byte(st.ID)) {
		t.Fatalf("list: code=%d body=%s", code, body)
	}
	if code, _ := get("/v1/jobs/" + st.ID + "/result"); code != http.StatusAccepted {
		t.Fatalf("result while running: code=%d, want 202", code)
	}
	if code, body := get("/v1/cluster/status"); code != http.StatusOK || !bytes.Contains(body, []byte("shards")) {
		t.Fatalf("cluster status: code=%d body=%s", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !bytes.Contains(body, []byte("cluster_forwards")) {
		t.Fatalf("metrics: code=%d missing cluster_forwards\n%s", code, body[:min(len(body), 400)])
	}

	f.release <- st.ID
	j, _ := c.Job(st.ID)
	waitCdone(t, j)
	if code, body := get("/v1/jobs/" + st.ID + "/result"); code != http.StatusOK || !json.Valid(body) {
		t.Fatalf("result after done: code=%d", code)
	}
	if code, body := get("/debug/trace/" + st.ID); code != http.StatusOK || !bytes.Contains(body, []byte("forward")) {
		t.Fatalf("trace: code=%d body=%.200s", code, body)
	}

	// Unknown job: clean 404s, not hangs.
	if code, _ := get("/v1/jobs/" + st.ID[:32] + "00000000000000000000000000000000"); code != http.StatusNotFound {
		t.Fatalf("unknown status code=%d", code)
	}

	// Cancel a queued job (fake shard never releases it): DELETE must land
	// a terminal canceled state.
	spec2 := serve.JobSpec{Program: "copy-to-cpu", Options: core.WireOptions{Seed: 12}}
	st2, _, err := c.Submit(spec2)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st2.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: code=%d", dresp.StatusCode)
	}
	j2, _ := c.Job(st2.ID)
	deadline := time.Now().Add(20 * time.Second)
	for j2.State() != serve.StateCanceled && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if j2.State() != serve.StateCanceled {
		t.Fatalf("canceled job stuck in %s", j2.State())
	}
}
