package cluster

// ClusterStatus is the wire form of GET /v1/cluster/status: one row per
// shard plus the coordinator's own queue state. `p4wn cluster status`
// renders it as the shard table.
type ClusterStatus struct {
	Draining bool `json:"draining"`
	// Pending is the coordinator-side dispatch backlog (jobs not yet
	// forwarded to any shard).
	Pending int `json:"pending"`
	// Jobs is how many jobs the coordinator currently tracks.
	Jobs    int            `json:"jobs"`
	Shards  []ShardStatus  `json:"shards"`
	Tenants []TenantStatus `json:"tenants,omitempty"`
	// CacheResident/CacheHits describe the coordinator's hot-result LRU.
	CacheResident int   `json:"cache_resident"`
	CacheHits     int64 `json:"cache_hits"`
}

// ShardStatus is one worker's row in the cluster status table.
type ShardStatus struct {
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	// Ready is alive and not draining: eligible for new forwards.
	Ready bool `json:"ready"`
	// QueueDepth/Running come from the shard's last /v1/stats heartbeat.
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
	JobWorkers int `json:"job_workers"`
	// Dispatched is how many jobs this coordinator currently has in flight
	// on the shard (its own view, not the heartbeat's).
	Dispatched int `json:"dispatched"`
	// Forwards/Steals/RemoteHits/Retries are cumulative per-shard counters:
	// jobs routed here, jobs diverted here off an overloaded owner, results
	// answered from this shard's store without an engine run, and jobs
	// re-routed away after this shard failed.
	Forwards   int64  `json:"forwards"`
	Steals     int64  `json:"steals"`
	RemoteHits int64  `json:"remote_hits"`
	Retries    int64  `json:"retries"`
	LastSeen   string `json:"last_seen,omitempty"`
}

// TenantStatus is one tenant's fair-share row.
type TenantStatus struct {
	Name    string  `json:"name"`
	Weight  float64 `json:"weight"`
	Pending int     `json:"pending"`
	// Rejected counts submissions refused by this tenant's quota.
	Rejected int64 `json:"rejected"`
}
