// Package cluster shards the p4wnd profiling service from one box to a
// fleet: a coordinator fronts N worker daemons, routes each submission to
// a shard by consistent hashing on the job's content address, forwards
// cache hits between nodes, steals work from overloaded shards onto idle
// ones, and enforces per-tenant quotas with weighted-fair dispatch. The
// coordinator serves the same /v1 job API as a single daemon, so
// `p4wn submit|status|result|cancel` work against it unchanged.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringReplicas is the default virtual-node count per worker. 64 points per
// node keeps the maximum/minimum keyspace share within ~2x for small
// fleets, which is plenty for a cache-affinity router (imbalance costs a
// recompute, never correctness).
const ringReplicas = 64

// ring is a consistent-hash ring over worker addresses. Hashing is FNV-64a
// of "addr#replica", so every process — coordinator or test harness —
// derives the identical ring from the same worker list, and a key's owner
// is stable across restarts.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // distinct, sorted
}

type ringPoint struct {
	hash uint64
	node string
}

func newRing(nodes []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = ringReplicas
	}
	seen := map[string]bool{}
	r := &ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hashString(n + "#" + strconv.Itoa(i)), n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// sequence returns every node in ring order starting from key's position:
// the first entry is the key's owner, the rest are its failover/steal
// candidates in deterministic preference order. Every node appears exactly
// once.
func (r *ring) sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.nodes))
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// owner returns the key's primary shard ("" on an empty ring).
func (r *ring) owner(key string) string {
	seq := r.sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}
