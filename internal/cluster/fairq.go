package cluster

import (
	"errors"
	"sort"
	"sync"
)

// Dispatch-queue errors; the HTTP layer maps quota and capacity to 429 +
// Retry-After (backpressure) and draining to 503.
var (
	ErrTenantQuota = errors.New("cluster: tenant quota exceeded")
	ErrQueueFull   = errors.New("cluster: dispatch queue full")
	ErrDraining    = errors.New("cluster: coordinator draining")
)

// fairQueue is the coordinator's pending-dispatch queue: one FIFO per
// tenant, dequeued by weighted fair queueing so a heavy submitter cannot
// starve the rest. Each tenant carries a virtual finish time advanced by
// 1/weight per dispatched job; pop always takes the tenant with the
// smallest virtual time, which converges to bandwidth proportional to the
// weights under sustained load while staying strictly FIFO within a
// tenant.
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	weights  map[string]float64 // default weight 1
	quota    int                // per-tenant pending bound
	capTotal int                // global pending bound

	tenants map[string]*tenantQ
	size    int
	clock   float64 // virtual time of the last dispatch
	closed  bool
}

type tenantQ struct {
	name  string
	items []*cjob
	vtime float64
	// rejected counts pushes refused by this tenant's quota (status table).
	rejected int64
}

func newFairQueue(quota, capTotal int, weights map[string]float64) *fairQueue {
	if quota <= 0 {
		quota = 32
	}
	if capTotal <= 0 {
		capTotal = 256
	}
	q := &fairQueue{
		weights:  map[string]float64{},
		quota:    quota,
		capTotal: capTotal,
		tenants:  map[string]*tenantQ{},
	}
	for k, w := range weights {
		if w > 0 {
			q.weights[k] = w
		}
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *fairQueue) weight(tenant string) float64 {
	if w, ok := q.weights[tenant]; ok {
		return w
	}
	return 1
}

// push enqueues a job under its tenant, enforcing the per-tenant quota and
// the global bound.
func (q *fairQueue) push(tenant string, j *cjob) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	t, ok := q.tenants[tenant]
	if !ok {
		t = &tenantQ{name: tenant}
		q.tenants[tenant] = t
	}
	if len(t.items) >= q.quota {
		t.rejected++
		return ErrTenantQuota
	}
	if q.size >= q.capTotal {
		return ErrQueueFull
	}
	if len(t.items) == 0 && t.vtime < q.clock {
		// A tenant returning from idle starts at the current virtual time:
		// it must not burn banked credit and lock everyone else out.
		t.vtime = q.clock
	}
	t.items = append(t.items, j)
	q.size++
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available or the queue is closed and drained.
// Among backlogged tenants it picks the smallest virtual finish time
// (ties broken by name for determinism), then advances that tenant's
// clock by 1/weight.
func (q *fairQueue) pop() (*cjob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		var best *tenantQ
		for _, t := range q.tenants {
			if len(t.items) == 0 {
				continue
			}
			if best == nil || t.vtime < best.vtime || (t.vtime == best.vtime && t.name < best.name) {
				best = t
			}
		}
		if best != nil {
			j := best.items[0]
			best.items[0] = nil
			best.items = best.items[1:]
			q.size--
			q.clock = best.vtime
			best.vtime += 1 / q.weight(best.name)
			return j, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// close stops intake and wakes every waiting dispatcher; queued jobs still
// pop (drain semantics match the worker queue's).
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *fairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// tenantSnapshot reports per-tenant backlog for the cluster status table,
// sorted by name.
func (q *fairQueue) tenantSnapshot() []TenantStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]TenantStatus, 0, len(q.tenants))
	for _, t := range q.tenants {
		out = append(out, TenantStatus{
			Name:     t.name,
			Weight:   q.weight(t.name),
			Pending:  len(t.items),
			Rejected: t.rejected,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
