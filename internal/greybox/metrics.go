package greybox

import "sync/atomic"

// Process-wide greybox instrumentation. Store objects are cloned per
// symbolic path, so per-instance counters would vanish with their clones;
// like the solver's, these counters are package-level atomics exposed to
// the obs registry as a view.

var metrics struct {
	hashAccesses   atomic.Int64
	bloomQueries   atomic.Int64
	bloomInserts   atomic.Int64
	sketchUpdates  atomic.Int64
	sketchEstimate atomic.Int64
}

// MetricsView snapshots the package counters for the obs registry
// (registered under the "greybox" prefix by the profiler).
func MetricsView() map[string]float64 {
	return map[string]float64{
		"hash_accesses":    float64(metrics.hashAccesses.Load()),
		"bloom_queries":    float64(metrics.bloomQueries.Load()),
		"bloom_inserts":    float64(metrics.bloomInserts.Load()),
		"sketch_updates":   float64(metrics.sketchUpdates.Load()),
		"sketch_estimates": float64(metrics.sketchEstimate.Load()),
	}
}
