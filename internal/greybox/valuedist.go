// Package greybox implements the paper's greybox analysis of approximate
// data structures. Instead of tracking every slot of a CRC hash table,
// Bloom filter, or count-min sketch symbolically (which scales with the
// structure size and produces unsolvable CRC constraints), each structure is
// replaced by a "probabilistic data store" that tracks only the statistics
// needed for profiling: the distribution of stored values, the number of
// active entries, and the structure's well-established collision rates.
// Each access forks a constant number of paths (empty/hit/collide), so the
// analysis scales independently of the structure size (paper Figures 4/5).
package greybox

import (
	"fmt"
	"sort"
	"strings"
)

// maxSupport bounds the tracked value-distribution support; the
// lowest-probability values are merged into their nearest neighbor when the
// support overflows. This is what keeps greybox state small.
const maxSupport = 64

// ValueDist is a bounded discrete probability distribution over stored
// values (the (v_i, p_i) tuples of paper Figure 4).
type ValueDist struct {
	vs []uint64
	ps []float64
}

// NewValueDist returns an empty distribution.
func NewValueDist() *ValueDist { return &ValueDist{} }

// PointDist returns a distribution concentrated on v.
func PointDist(v uint64) *ValueDist {
	return &ValueDist{vs: []uint64{v}, ps: []float64{1}}
}

// Len returns the support size.
func (d *ValueDist) Len() int { return len(d.vs) }

// Support returns the values and probabilities (shared slices; callers must
// not mutate).
func (d *ValueDist) Support() ([]uint64, []float64) { return d.vs, d.ps }

// Clone deep-copies the distribution.
func (d *ValueDist) Clone() *ValueDist {
	return &ValueDist{
		vs: append([]uint64(nil), d.vs...),
		ps: append([]float64(nil), d.ps...),
	}
}

// P returns the probability of value v.
func (d *ValueDist) P(v uint64) float64 {
	for i, x := range d.vs {
		if x == v {
			return d.ps[i]
		}
	}
	return 0
}

// AddMass adds probability mass to value v, keeping the support bounded.
func (d *ValueDist) AddMass(v uint64, p float64) {
	if p <= 0 {
		return
	}
	for i, x := range d.vs {
		if x == v {
			d.ps[i] += p
			return
		}
	}
	d.vs = append(d.vs, v)
	d.ps = append(d.ps, p)
	if len(d.vs) > maxSupport {
		d.compact()
	}
}

// Scale multiplies all masses by f.
func (d *ValueDist) Scale(f float64) {
	for i := range d.ps {
		d.ps[i] *= f
	}
}

// Shift translates all values by delta (saturating at 0 below).
func (d *ValueDist) Shift(delta int64) {
	merged := NewValueDist()
	for i, v := range d.vs {
		nv := int64(v) + delta
		if nv < 0 {
			nv = 0
		}
		merged.AddMass(uint64(nv), d.ps[i])
	}
	*d = *merged
}

// Normalize rescales masses to sum to 1 (no-op on an empty distribution).
func (d *ValueDist) Normalize() {
	t := d.Total()
	if t <= 0 {
		return
	}
	d.Scale(1 / t)
}

// Total returns the total mass.
func (d *ValueDist) Total() float64 {
	t := 0.0
	for _, p := range d.ps {
		t += p
	}
	return t
}

// MassWhere returns the mass of values satisfying pred.
func (d *ValueDist) MassWhere(pred func(uint64) bool) float64 {
	m := 0.0
	for i, v := range d.vs {
		if pred(v) {
			m += d.ps[i]
		}
	}
	return m
}

// Mix blends another distribution in with the given weight:
// d = (1-w)*d + w*o.
func (d *ValueDist) Mix(o *ValueDist, w float64) {
	d.Scale(1 - w)
	for i, v := range o.vs {
		d.AddMass(v, w*o.ps[i])
	}
}

// Min returns the distribution of min(X, Y) for independent X ~ d, Y ~ o —
// used to compose count-min sketch rows.
func (d *ValueDist) Min(o *ValueDist) *ValueDist {
	out := NewValueDist()
	for i, v := range d.vs {
		// P(min == v, X == v) = P(X==v) * P(Y >= v)
		out.AddMass(v, d.ps[i]*o.MassWhere(func(y uint64) bool { return y >= v }))
	}
	for j, y := range o.vs {
		// P(min == y, Y == y, X > y)
		out.AddMass(y, o.ps[j]*d.MassWhere(func(x uint64) bool { return x > y }))
	}
	return out
}

// Map returns a new distribution with every value transformed by f
// (masses of coinciding images merge).
func (d *ValueDist) Map(f func(uint64) uint64) *ValueDist {
	out := NewValueDist()
	for i, v := range d.vs {
		out.AddMass(f(v), d.ps[i])
	}
	return out
}

// compact merges the two lowest-mass support points.
func (d *ValueDist) compact() {
	if len(d.vs) <= 1 {
		return
	}
	lo1, lo2 := -1, -1
	for i := range d.ps {
		if lo1 == -1 || d.ps[i] < d.ps[lo1] {
			lo2 = lo1
			lo1 = i
		} else if lo2 == -1 || d.ps[i] < d.ps[lo2] {
			lo2 = i
		}
	}
	// Merge lo1 into lo2 (weighted value kept as lo2's).
	d.ps[lo2] += d.ps[lo1]
	d.vs = append(d.vs[:lo1], d.vs[lo1+1:]...)
	d.ps = append(d.ps[:lo1], d.ps[lo1+1:]...)
}

// Key returns a canonical state fingerprint used for path merging:
// probabilities are quantized so that paths whose store states differ only
// by floating-point noise coalesce.
func (d *ValueDist) Key() string {
	idx := make([]int, len(d.vs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d.vs[idx[a]] < d.vs[idx[b]] })
	var b strings.Builder
	for _, i := range idx {
		fmt.Fprintf(&b, "%d:%.4f;", d.vs[i], d.ps[i])
	}
	return b.String()
}

func (d *ValueDist) String() string {
	return "{" + d.Key() + "}"
}
