package greybox

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/testutil"
)

func almostEq(a, b, tol float64) bool { return testutil.ApproxEqual(a, b, tol, 0) }

func TestValueDistBasics(t *testing.T) {
	d := NewValueDist()
	d.AddMass(10, 0.5)
	d.AddMass(20, 0.5)
	if !almostEq(d.P(10), 0.5, 1e-12) || d.P(30) != 0 {
		t.Fatal("pmf wrong")
	}
	if !almostEq(d.Total(), 1, 1e-12) {
		t.Fatal("total wrong")
	}
	d.AddMass(10, 0.5)
	if !almostEq(d.P(10), 1.0, 1e-12) {
		t.Fatal("mass should accumulate on same value")
	}
}

func TestValueDistShift(t *testing.T) {
	d := PointDist(5)
	d.Shift(3)
	if d.P(8) != 1 {
		t.Fatal("shift up wrong")
	}
	d.Shift(-10)
	if d.P(0) != 1 {
		t.Fatal("shift should saturate at 0")
	}
	// Saturation merges mass.
	d2 := NewValueDist()
	d2.AddMass(1, 0.5)
	d2.AddMass(2, 0.5)
	d2.Shift(-5)
	if !almostEq(d2.P(0), 1, 1e-12) {
		t.Fatal("saturated masses should merge")
	}
}

func TestValueDistCompaction(t *testing.T) {
	d := NewValueDist()
	for i := 0; i < maxSupport*3; i++ {
		d.AddMass(uint64(i), 1.0/float64(maxSupport*3))
	}
	if d.Len() > maxSupport {
		t.Fatalf("support %d exceeds bound %d", d.Len(), maxSupport)
	}
	if !almostEq(d.Total(), 1, 1e-9) {
		t.Fatalf("compaction lost mass: %v", d.Total())
	}
}

func TestValueDistMin(t *testing.T) {
	a := NewValueDist()
	a.AddMass(1, 0.5)
	a.AddMass(3, 0.5)
	b := NewValueDist()
	b.AddMass(2, 1.0)
	m := a.Min(b)
	// min: X=1 (p=.5) -> 1; X=3,Y=2 -> 2.
	if !almostEq(m.P(1), 0.5, 1e-12) || !almostEq(m.P(2), 0.5, 1e-12) {
		t.Fatalf("min dist wrong: %v", m)
	}
	if !almostEq(m.Total(), 1, 1e-12) {
		t.Fatalf("min dist mass: %v", m.Total())
	}
}

func TestValueDistKeyDeterministic(t *testing.T) {
	a := NewValueDist()
	a.AddMass(5, 0.25)
	a.AddMass(1, 0.75)
	b := NewValueDist()
	b.AddMass(1, 0.75)
	b.AddMass(5, 0.25)
	if a.Key() != b.Key() {
		t.Fatal("key should be order-independent")
	}
}

func TestHashStoreEmptyAccess(t *testing.T) {
	h := NewHashStore(1024)
	pe, ph, pc := h.AccessProbs()
	if pe != 1 || ph != 0 || pc != 0 {
		t.Fatalf("empty table: %v %v %v", pe, ph, pc)
	}
}

func TestHashStoreFigure5Write(t *testing.T) {
	h := NewHashStore(4)
	h.ApplyEmptyWrite(15)
	h.ApplyEmptyWrite(0)
	h.ApplyEmptyWrite(0)
	// Figure 4's example: values {15: 1/3, 0: 2/3}, 3 entries of 4 slots.
	if !almostEq(h.Vals.P(15), 1.0/3, 1e-9) || !almostEq(h.Vals.P(0), 2.0/3, 1e-9) {
		t.Fatalf("value dist: %v", h.Vals)
	}
	if h.Entries != 3 {
		t.Fatalf("entries = %v", h.Entries)
	}
	pe, ph, pc := h.AccessProbs()
	if !almostEq(pe+ph+pc, 1, 1e-9) {
		t.Fatalf("probs don't sum to 1: %v %v %v", pe, ph, pc)
	}
	// With 3/4 occupancy, collide must outweigh empty for a fresh key.
	if pc <= pe {
		t.Fatalf("with high occupancy collide (%v) should exceed empty (%v)", pc, pe)
	}
}

func TestHashStoreFillsUp(t *testing.T) {
	h := NewHashStore(8)
	for i := 0; i < 8; i++ {
		h.ApplyEmptyWrite(uint64(i))
	}
	pe, _, _ := h.AccessProbs()
	if pe != 0 {
		t.Fatalf("full table should have pEmpty=0, got %v", pe)
	}
}

func TestHashStoreHitInc(t *testing.T) {
	h := NewHashStore(16)
	h.ApplyEmptyWrite(0)
	nd := h.ApplyHitInc(1)
	if nd.P(1) != 1 {
		t.Fatalf("incremented entry should be 1: %v", nd)
	}
	// After a few increments the new-value distribution moves right.
	for i := 0; i < 5; i++ {
		nd = h.ApplyHitInc(1)
	}
	mass := nd.MassWhere(func(v uint64) bool { return v >= 2 })
	if mass < 0.5 {
		t.Fatalf("after 6 increments most mass should be >= 2, got %v", mass)
	}
}

func TestHashStoreCloneIsolation(t *testing.T) {
	h := NewHashStore(16)
	h.ApplyEmptyWrite(7)
	c := h.Clone()
	c.ApplyEmptyWrite(9)
	if h.Entries != 1 || c.Entries != 2 {
		t.Fatal("clone should not share entry count")
	}
	if h.Vals.P(9) != 0 {
		t.Fatal("clone shares value dist")
	}
}

func TestBloomEmpty(t *testing.T) {
	b := NewBloomStore(1024, 3)
	if b.HitProb() != 0 {
		t.Fatal("empty filter should never hit")
	}
	if b.FalsePositiveRate() != 0 {
		t.Fatal("empty filter FPR should be 0")
	}
}

func TestBloomFPRGrowth(t *testing.T) {
	b := NewBloomStore(1024, 3)
	var prev float64
	for i := 0; i < 500; i++ {
		b.Insert()
		fpr := b.FalsePositiveRate()
		if fpr < prev {
			t.Fatalf("FPR should be monotone: %v < %v at %d inserts", fpr, prev, i)
		}
		prev = fpr
	}
	if prev <= 0 || prev >= 1 {
		t.Fatalf("FPR after 500 inserts = %v", prev)
	}
	// Textbook formula check at n=100.
	b2 := NewBloomStore(1024, 3)
	for i := 0; i < 100; i++ {
		b2.Insert()
	}
	want := math.Pow(1-math.Pow(1-1.0/1024, 300), 3)
	if !almostEq(b2.FalsePositiveRate(), want, 1e-12) {
		t.Fatalf("FPR = %v want %v", b2.FalsePositiveRate(), want)
	}
}

func TestBloomSmallerFilterWorseFPR(t *testing.T) {
	small := NewBloomStore(256, 3)
	large := NewBloomStore(65536, 3)
	for i := 0; i < 200; i++ {
		small.Insert()
		large.Insert()
	}
	if small.FalsePositiveRate() <= large.FalsePositiveRate() {
		t.Fatal("smaller filter should have higher FPR")
	}
}

func TestSketchUpdate(t *testing.T) {
	s := NewSketchStore(3, 1024)
	est := s.Update(1)
	if est.Total() <= 0 {
		t.Fatal("estimate dist empty")
	}
	if s.Total != 1 {
		t.Fatalf("total = %v", s.Total)
	}
	for i := 0; i < 100; i++ {
		est = s.Update(1)
	}
	// Estimates should mostly exceed 1 after 100 updates with locality.
	mass := est.MassWhere(func(v uint64) bool { return v >= 2 })
	if mass < 0.5 {
		t.Fatalf("estimate mass >= 2 is %v", mass)
	}
}

func TestSketchOvercountGrows(t *testing.T) {
	s := NewSketchStore(3, 64)
	for i := 0; i < 1000; i++ {
		s.Update(1)
	}
	if s.Overcount() <= 0 {
		t.Fatal("overcount should be positive after many updates")
	}
	s2 := NewSketchStore(3, 65536)
	for i := 0; i < 1000; i++ {
		s2.Update(1)
	}
	if s2.Overcount() >= s.Overcount() {
		t.Fatal("wider sketch should overcount less")
	}
}

func TestStoreKeysStable(t *testing.T) {
	h := NewHashStore(16)
	h.ApplyEmptyWrite(3)
	k1 := h.Key()
	h2 := NewHashStore(16)
	h2.ApplyEmptyWrite(3)
	if k1 != h2.Key() {
		t.Fatal("identical stores should share state keys")
	}
	h2.ApplyEmptyWrite(4)
	if k1 == h2.Key() {
		t.Fatal("different stores should differ")
	}
}

// Property: AccessProbs always forms a probability distribution.
func TestAccessProbsSumToOne(t *testing.T) {
	check := func(size uint8, entries uint8, loc uint8) bool {
		n := int(size)%1000 + 1
		h := NewHashStore(n)
		h.Entries = float64(entries)
		h.Locality = float64(loc%100) / 100
		if h.Entries == 0 {
			h.Locality = 0
		}
		pe, ph, pc := h.AccessProbs()
		if pe < 0 || ph < 0 || pc < 0 {
			return false
		}
		return almostEq(pe+ph+pc, 1, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ValueDist mass is conserved by Shift and Mix.
func TestMassConservation(t *testing.T) {
	check := func(vals []uint16, shift int8) bool {
		if len(vals) == 0 {
			return true
		}
		d := NewValueDist()
		for _, v := range vals {
			d.AddMass(uint64(v), 1)
		}
		d.Normalize()
		before := d.Total()
		d.Shift(int64(shift))
		return almostEq(d.Total(), before, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValueDistMap(t *testing.T) {
	d := NewValueDist()
	d.AddMass(5, 0.25)
	d.AddMass(13, 0.25)
	d.AddMass(21, 0.5)
	m := d.Map(func(v uint64) uint64 { return v % 8 })
	// 5%8=5, 13%8=5, 21%8=5: all collapse.
	if !almostEq(m.P(5), 1.0, 1e-12) {
		t.Fatalf("mapped mass = %v", m.P(5))
	}
	if !almostEq(m.Total(), 1, 1e-12) {
		t.Fatal("map lost mass")
	}
	// Original untouched.
	if !almostEq(d.P(21), 0.5, 1e-12) {
		t.Fatal("map mutated source")
	}
}

func TestValueDistMixWeights(t *testing.T) {
	a := PointDist(1)
	b := PointDist(2)
	a.Mix(b, 0.25)
	if !almostEq(a.P(1), 0.75, 1e-12) || !almostEq(a.P(2), 0.25, 1e-12) {
		t.Fatalf("mix wrong: %v", a)
	}
}
