package greybox

import (
	"fmt"
	"math"
)

// DefaultLocality is the default probability that an access's key belongs
// to a flow already tracked by the structure, given the structure is
// non-empty. Real traffic is flow-dominated: most packets belong to flows
// that have been seen before. Profiles can override it per store.
const DefaultLocality = 0.9

// HashStore is the probabilistic data store for a CRC hash table
// (paper Figure 4): slot count, active entries, the distribution of stored
// values, and a key-locality parameter.
type HashStore struct {
	Size     int
	Entries  float64 // expected active entries (fractional across paths)
	Vals     *ValueDist
	Locality float64
}

// NewHashStore creates an empty store with n slots.
func NewHashStore(n int) *HashStore {
	return &HashStore{Size: n, Vals: NewValueDist(), Locality: DefaultLocality}
}

// Clone deep-copies the store.
func (h *HashStore) Clone() *HashStore {
	c := *h
	c.Vals = h.Vals.Clone()
	return &c
}

// AccessProbs returns the three-way fork probabilities of paper Figure 5
// for an access with a fresh symbolic key:
//
//	empty:   the key's slot holds no entry            (N-k)/N scaled by miss
//	hit:     the slot holds an entry with the same key
//	collide: the slot holds an entry with a different key
//
// A returning flow (probability Locality when the table is non-empty) hits
// its own entry; a new flow lands on a uniformly random slot, which is
// occupied — a CRC collision — with probability k/N.
func (h *HashStore) AccessProbs() (pEmpty, pHit, pCollide float64) {
	metrics.hashAccesses.Add(1)
	if h.Size <= 0 {
		return 0, 0, 1
	}
	k := h.Entries
	if k > float64(h.Size) {
		k = float64(h.Size)
	}
	if k <= 0 {
		return 1, 0, 0
	}
	loc := h.Locality
	occ := k / float64(h.Size)
	pHit = loc
	pCollide = (1 - loc) * occ
	pEmpty = (1 - loc) * (1 - occ)
	return pEmpty, pHit, pCollide
}

// ApplyEmptyWrite installs a fresh entry with value v (Figure 5's write:
// entry count grows by one; the value distribution is reweighted
// k/(k+1) and the new value gets mass 1/(k+1)).
func (h *HashStore) ApplyEmptyWrite(v uint64) {
	k := h.Entries
	h.Vals.Scale(k / (k + 1))
	h.Vals.AddMass(v, 1/(k+1))
	h.Entries = k + 1
}

// ApplyHitWrite overwrites the matched entry's value with v. Entry count is
// unchanged; one expected entry's worth of mass moves to v.
func (h *HashStore) ApplyHitWrite(v uint64) {
	if h.Entries < 1 {
		h.ApplyEmptyWrite(v)
		return
	}
	w := 1 / h.Entries
	h.Vals.Scale(1 - w)
	h.Vals.AddMass(v, w)
	h.Vals.Normalize()
}

// ApplyHitInc adds inc to the matched entry's value and returns the
// distribution of the entry's new value (used to branch on the counter).
func (h *HashStore) ApplyHitInc(inc int64) *ValueDist {
	if h.Entries < 1 || h.Vals.Len() == 0 {
		h.ApplyEmptyWrite(uint64(maxI64(inc, 0)))
		return PointDist(uint64(maxI64(inc, 0)))
	}
	// Distribution of the matched entry's previous value is Vals itself;
	// its new value distribution is Vals shifted by inc.
	newVal := h.Vals.Clone()
	newVal.Normalize()
	newVal.Shift(inc)
	// The table's value distribution: one of k entries changed.
	w := 1 / h.Entries
	if w > 1 {
		w = 1
	}
	h.Vals.Mix(newVal, w)
	return newVal
}

// ApplyCollideEvict overwrites the colliding entry (the *Flow-style
// eviction): same update as a hit-write.
func (h *HashStore) ApplyCollideEvict(v uint64) { h.ApplyHitWrite(v) }

// Key returns a canonical state fingerprint for path merging.
func (h *HashStore) Key() string {
	return fmt.Sprintf("ht|%d|%.3f|%s", h.Size, h.Entries, h.Vals.Key())
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// BloomStore is the probabilistic data store for a Bloom filter: total bits,
// hash function count, and the number of insertions. A membership test
// forks only two paths (paper §3.4), with probabilities determined
// mathematically by the filter parameters.
type BloomStore struct {
	Bits     int
	Hashes   int
	Inserts  float64
	Locality float64
}

// NewBloomStore creates an empty filter model.
func NewBloomStore(bits, hashes int) *BloomStore {
	return &BloomStore{Bits: bits, Hashes: hashes, Locality: DefaultLocality}
}

// Clone copies the store.
func (b *BloomStore) Clone() *BloomStore {
	c := *b
	return &c
}

// FalsePositiveRate returns (1 - (1-1/m)^{kn})^k.
func (b *BloomStore) FalsePositiveRate() float64 {
	if b.Bits <= 0 || b.Inserts <= 0 {
		return 0
	}
	m := float64(b.Bits)
	kn := float64(b.Hashes) * b.Inserts
	pBitSet := 1 - pow(1-1/m, kn)
	return pow(pBitSet, float64(b.Hashes))
}

// HitProb returns the probability a membership test answers positive: a
// returning key (locality) is a true positive; a fresh key is a false
// positive at the filter's current rate.
func (b *BloomStore) HitProb() float64 {
	metrics.bloomQueries.Add(1)
	if b.Inserts <= 0 {
		return 0
	}
	fpr := b.FalsePositiveRate()
	return b.Locality + (1-b.Locality)*fpr
}

// Insert records one insertion.
func (b *BloomStore) Insert() {
	metrics.bloomInserts.Add(1)
	b.Inserts++
}

// Key returns a canonical state fingerprint.
func (b *BloomStore) Key() string {
	return fmt.Sprintf("bf|%d|%d|%.3f", b.Bits, b.Hashes, b.Inserts)
}

// SketchStore is the probabilistic data store for a count-min sketch: it
// keeps one per-flow true-count distribution plus the total update volume,
// from which per-row overcounts are derived. The estimate for a key is the
// row minimum; since row overcounts are i.i.d., the estimate distribution
// is the true-count distribution shifted by the expected minimum overcount.
type SketchStore struct {
	Rows     int
	Cols     int
	Total    float64 // total inserted weight
	Keys     float64 // expected distinct keys
	Vals     *ValueDist
	Locality float64
}

// NewSketchStore creates an empty sketch model.
func NewSketchStore(rows, cols int) *SketchStore {
	return &SketchStore{Rows: rows, Cols: cols, Vals: NewValueDist(), Locality: DefaultLocality}
}

// Clone deep-copies the store.
func (s *SketchStore) Clone() *SketchStore {
	c := *s
	c.Vals = s.Vals.Clone()
	return &c
}

// Update adds inc for a symbolic key and returns the distribution of the
// key's new count-min estimate.
func (s *SketchStore) Update(inc int64) *ValueDist {
	metrics.sketchUpdates.Add(1)
	var est *ValueDist
	if s.Keys < 1 || s.Vals.Len() == 0 {
		s.Keys = 1
		s.Vals = PointDist(uint64(maxI64(inc, 0)))
		est = s.Vals.Clone()
	} else {
		loc := s.Locality
		// Returning key: its count increments. New key: starts at inc.
		newVal := s.Vals.Clone()
		newVal.Normalize()
		newVal.Shift(inc)
		w := loc / s.Keys
		if w > 1 {
			w = 1
		}
		s.Vals.Mix(newVal, w)
		s.Keys += 1 - loc
		s.Vals.Mix(PointDist(uint64(maxI64(inc, 0))), (1-loc)/s.Keys)
		est = NewValueDist()
		est.Mix(newVal, 1) // estimate for the updated key
		est.Scale(loc)
		est.AddMass(uint64(maxI64(inc, 0)), 1-loc)
	}
	s.Total += float64(inc)
	est.Shift(int64(s.Overcount()))
	est.Normalize()
	return est
}

// Overcount returns the expected count-min overestimate: other keys' mass
// colliding into the minimum row, ≈ Total/Cols damped by the row minimum.
func (s *SketchStore) Overcount() float64 {
	if s.Cols <= 0 {
		return 0
	}
	base := s.Total / float64(s.Cols)
	// Taking the min over Rows i.i.d. overcounts shrinks the expectation.
	return base / float64(maxI(1, s.Rows))
}

// EstimateDist returns the estimate distribution for a fresh query without
// updating the sketch.
func (s *SketchStore) EstimateDist() *ValueDist {
	metrics.sketchEstimate.Add(1)
	est := s.Vals.Clone()
	est.Normalize()
	est.Shift(int64(s.Overcount()))
	return est
}

// Key returns a canonical state fingerprint.
func (s *SketchStore) Key() string {
	return fmt.Sprintf("cms|%dx%d|%.3f|%.3f|%s", s.Rows, s.Cols, s.Total, s.Keys, s.Vals.Key())
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
