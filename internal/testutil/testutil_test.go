package testutil

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, absTol, relTol float64
		want                 bool
	}{
		{1, 1, 0, 0, true},
		{0, 1e-13, 1e-12, 0, true},
		{0, 1e-11, 1e-12, 0, false},
		// Relative tolerance carries large magnitudes.
		{1e6, 1e6 + 0.5, 0, 1e-6, true},
		{1e6, 1e6 + 10, 0, 1e-6, false},
		// Either tolerance alone suffices.
		{100, 100.5, 1, 0, true},
		{100, 100.5, 0, 0.01, true},
		{math.Inf(1), math.Inf(1), 0, 0, true},
		{math.Inf(1), math.Inf(-1), 1e9, 1e9, false},
		{math.NaN(), math.NaN(), 1, 1, false},
		{1, math.NaN(), 1, 1, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.absTol, c.relTol); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v, %v) = %v, want %v",
				c.a, c.b, c.absTol, c.relTol, got, c.want)
		}
	}
}

func TestApproxEqualSymmetric(t *testing.T) {
	if ApproxEqual(1, 2, 0.1, 0.1) != ApproxEqual(2, 1, 0.1, 0.1) {
		t.Error("ApproxEqual is not symmetric")
	}
}
