// Package testutil holds shared test helpers. Probability and
// model-counting tests across the repository compare floating-point
// estimates; ApproxEqual centralizes the tolerance convention (absolute OR
// relative) that each package previously re-implemented ad hoc.
package testutil

import (
	"math"
	"testing"
)

// ApproxEqual reports whether a and b agree within absTol absolutely or
// within relTol relative to the larger magnitude. Either tolerance alone is
// sufficient: absolute tolerance governs values near zero, relative
// tolerance governs large values. NaN never compares equal; two equal
// infinities do.
func ApproxEqual(a, b, absTol, relTol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { // handles equal infinities
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal infinities: relTol*Inf would accept anything
	}
	diff := math.Abs(a - b)
	if diff <= absTol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= relTol*scale
}

// AssertApprox fails the test when got and want disagree beyond the
// tolerances (see ApproxEqual).
func AssertApprox(t *testing.T, got, want, absTol, relTol float64, what string) {
	t.Helper()
	if !ApproxEqual(got, want, absTol, relTol) {
		t.Errorf("%s = %v, want %v (absTol %g, relTol %g)", what, got, want, absTol, relTol)
	}
}
