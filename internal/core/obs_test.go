package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/ir"
	"repro/internal/obs"
)

func TestProbProfContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prof, err := ProbProf(counterProg(t, 8), nil, Options{Seed: 1, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if prof != nil {
		t.Fatal("canceled run should not return a profile")
	}
}

func TestProbProfContextDeadline(t *testing.T) {
	// A parent deadline far shorter than Timeout or the sampling phase must
	// abort the whole run promptly — this is the overshoot the plain
	// Timeout option could not prevent on path-explosion iterations.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ProbProf(counterProg(t, 64), nil, Options{
		Seed: 1, Context: ctx,
		MaxIters: 50, Timeout: 30 * time.Second, SampleBudget: 5_000_000,
		DisableTelescope: true, // force a long symbolic+sampling run
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("run overshot the 50ms parent deadline by %v", elapsed)
	}
}

func TestProbProfTimeoutStillSamples(t *testing.T) {
	// Timeout (the convenience wrapper) only ends the symbolic phase: the
	// sampling fallback still runs and the call succeeds.
	prof, err := ProbProf(counterProg(t, 40), nil, Options{
		Seed: 1, MaxIters: 50, Timeout: 50 * time.Millisecond,
		DisableTelescope: true, SampleBudget: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Stats.SampledNodes == 0 {
		t.Fatalf("expected sampling fallback after timeout: %+v", prof.Stats)
	}
}

func TestProbProfTraceAndReport(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	reg := obs.NewRegistry()
	opt := Options{Seed: 1, DisableSampling: true, Tracer: tr, Registry: reg}
	prof, err := ProbProf(counterProg(t, 8), nil, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Per-iteration records are always collected and mirror the tracer's.
	if len(prof.Stats.Iters) == 0 || len(prof.Stats.Iters) != prof.Stats.Iterations {
		t.Fatalf("iteration records = %d, iterations = %d",
			len(prof.Stats.Iters), prof.Stats.Iterations)
	}
	if got := tr.Iterations(); len(got) != len(prof.Stats.Iters) {
		t.Fatalf("tracer kept %d records, stats %d", len(got), len(prof.Stats.Iters))
	}
	out := buf.String()
	for _, want := range []string{"probprof start", "iter  0:", "probprof done"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}

	// The registry ends up holding the flattened run metrics plus the
	// solver's process-wide counters via the registered view.
	snap := reg.Snapshot()
	for _, key := range []string{"core.iterations", "sym.forks", "mc.queries", "solver.builds"} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("registry snapshot missing %q (have %d keys)", key, len(snap))
		}
	}
	if snap["core.iterations"] != float64(prof.Stats.Iterations) {
		t.Fatalf("core.iterations = %v, want %d", snap["core.iterations"], prof.Stats.Iterations)
	}

	// Report: schema-valid, stages accounted against wall time.
	rep := NewReport(prof, opt)
	if rep.SchemaVersion != obs.SchemaVersion || rep.Kind != "profile" {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Program != "counter" || len(rep.Nodes) != len(prof.Nodes) {
		t.Fatalf("report body: %+v", rep)
	}
	if rep.Nodes[0].Rank != 1 {
		t.Fatal("nodes must carry 1-based ranks")
	}
	sum := 0.0
	for _, s := range rep.Stages {
		if s < 0 {
			t.Fatalf("negative stage time: %v", rep.Stages)
		}
		sum += s
	}
	if sum > rep.WallSec*1.05 {
		t.Fatalf("stage sum %.4fs exceeds wall %.4fs", sum, rep.WallSec)
	}
	if rep.WallSec > 0.01 && sum < rep.WallSec*0.5 {
		t.Fatalf("stages only account for %.4fs of %.4fs wall", sum, rep.WallSec)
	}
	if rep.Options["max_iters"] != 12 { // defaulted value is recorded
		t.Fatalf("options not defaulted in report: %v", rep.Options["max_iters"])
	}
	if _, ok := rep.Metrics["solver.builds"]; !ok {
		t.Fatal("report metrics missing solver view")
	}
}

func TestStatsMetricsStageKeys(t *testing.T) {
	s := &Stats{SymTime: time.Second, SampleTime: 2 * time.Second}
	m := s.Metrics()
	if m["core.stage.sym_sec"] != 1 || m["core.stage.sample_sec"] != 2 {
		t.Fatalf("stage metrics: %v", m)
	}
	if len(s.Stages()) != 7 {
		t.Fatalf("expected 7 stages, got %v", s.Stages())
	}
}

// PacketSampler.Next must conform to a skewed oracle: empirical per-piece
// frequencies match dist.MassIn and the retransmission knob matches the
// pair-equality probability.
func TestPacketSamplerDistributionConformance(t *testing.T) {
	pieces := []dist.Piece{
		{Lo: 0, Hi: 5, Mass: 0.15},
		{Lo: 6, Hi: 6, Mass: 0.6},
		{Lo: 7, Hi: 255, Mass: 0.25},
	}
	d := dist.MustFromPieces(pieces)
	oracle := dist.NewProfile().SetField("proto", d).SetPairEq("seq", 0.1)
	prog := counterProg(t, 4)
	s := NewPacketSampler(prog, oracle, rand.New(rand.NewSource(7)))

	const n = 40000
	counts := make([]int, len(pieces))
	retrans := 0
	var prevSeq uint32
	for i := 0; i < n; i++ {
		p := s.Next()
		v, ok := p.Field("proto")
		if !ok {
			t.Fatal("packet missing proto")
		}
		for j, pc := range pieces {
			if v >= pc.Lo && v <= pc.Hi {
				counts[j]++
			}
		}
		if i > 0 && p.Seq == prevSeq {
			retrans++
		}
		prevSeq = p.Seq
	}
	for j, pc := range pieces {
		want := d.MassIn(pc.Lo, pc.Hi)
		got := float64(counts[j]) / n
		// 5 sigma on a binomial proportion.
		tol := 5 * math.Sqrt(want*(1-want)/n)
		if math.Abs(got-want) > tol {
			t.Fatalf("piece [%d,%d]: freq %.4f, want %.4f ± %.4f",
				pc.Lo, pc.Hi, got, want, tol)
		}
	}
	// Retransmissions replay the previous packet with P = pairEq; natural
	// seq collisions add a negligible epsilon on a 32-bit field.
	if got := float64(retrans) / n; math.Abs(got-0.1) > 0.01 {
		t.Fatalf("retrans rate %.4f, want ≈ 0.10", got)
	}
	// Unknown fields fall back to uniform: check the sampler still sets them.
	var p = s.Next()
	if _, ok := p.Field("sport"); !ok && hasField(prog, "sport") {
		t.Fatal("uniform-fallback field missing")
	}
}

func hasField(p *ir.Program, name string) bool {
	for _, f := range p.Fields {
		if f.Name == name {
			return true
		}
	}
	return false
}

func TestSamplePathsEarlyCancelNormalizes(t *testing.T) {
	// Cancel partway through sampling: estimates must be normalized by the
	// packets actually drawn, so probabilities stay calibrated (a near-sure
	// block still reads ≈ its true rate, not deflated by the unused budget).
	prog := counterProg(t, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	est := samplePaths(ctx, prog, &dist.UniformOracle{}, Options{
		Seed: 1, SampleBudget: 200_000_000, // would take minutes uncancelled
	}.withDefaults(), nil)
	if len(est) == 0 {
		t.Skip("sampling finished zero batches before the deadline")
	}
	// proto==TCP branch ~1/256, so the "udp" side is hit almost always.
	max := 0.0
	for _, v := range est {
		if v > max {
			max = v
		}
	}
	if max < 0.5 {
		t.Fatalf("estimates deflated after early cancel: max = %v", max)
	}
}

// The observability layer must be invisible when disabled: same estimates,
// and the benchmark pair below quantifies the overhead (<2% acceptance).
func TestProbProfObsOffUnchanged(t *testing.T) {
	prog := counterProg(t, 8)
	plain, err := ProbProf(prog, nil, Options{Seed: 1, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := ProbProf(prog, nil, Options{
		Seed: 1, DisableSampling: true,
		Tracer: obs.NewTracer(nil), Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := plain.Ranking(), traced.Ranking()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("tracing changed the profile")
		}
	}
}

func BenchmarkProbProfObsOff(b *testing.B) {
	prog := counterProg(b, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ProbProf(prog, nil, Options{Seed: 1, DisableSampling: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbProfObsOn(b *testing.B) {
	prog := counterProg(b, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := ProbProf(prog, nil, Options{
			Seed: 1, DisableSampling: true,
			Tracer: obs.NewTracer(nil), Registry: obs.NewRegistry(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
