package core

import (
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/prob"
)

// Information-flow joins between the analysis package's ifc pass and the
// profiler. The pass itself cannot import core (core imports analysis for
// the pruning hook), so the probability join happens here: the profile
// supplies per-block probabilities and each leak's witness chain is
// weighted by its rarest block.

// WeightIFC ranks an ifc result against a finished profile: each leak's P
// becomes the minimum block probability along its witness chain, and leaks
// re-sort most-probable first. A nil result or profile is a no-op.
func WeightIFC(res *analysis.IFCResult, pf *Profile) {
	if res == nil || pf == nil {
		return
	}
	res.Weight(func(node int) (prob.P, bool) {
		n, ok := pf.ByID(node)
		if !ok {
			return prob.Zero(), false
		}
		return n.P, true
	})
}

// AttachIFC runs the information-flow pass over the profiled program,
// weights it against the profile, and attaches the leak summary block to
// the run report. Programs without an inline policy are left untouched, so
// the report shape is unchanged for the rest of the zoo. Both the offline
// CLI and the serve worker call this, keeping their reports byte-identical.
func AttachIFC(rep *obs.Report, prog *ir.Program, pf *Profile) {
	res := analysis.IFCOnly(prog)
	if res == nil {
		return
	}
	WeightIFC(res, pf)
	rep.IFC = IFCSummaryOf(prog, res)
}

// IFCSummaryOf converts an ifc result into the report's summary block.
func IFCSummaryOf(prog *ir.Program, res *analysis.IFCResult) *obs.IFCSummary {
	if res == nil {
		return nil
	}
	sum := &obs.IFCSummary{Secrets: []string{}, Sinks: []string{}, Leaks: []obs.LeakReport{}}
	if res.Policy != nil {
		for _, ref := range res.Policy.Secrets {
			sum.Secrets = append(sum.Secrets, ref.String())
		}
		for _, ref := range res.Policy.Sinks {
			sum.Sinks = append(sum.Sinks, ref.String())
		}
	}
	for _, l := range res.Leaks {
		flow := "explicit"
		if l.Implicit {
			flow = "implicit"
		}
		sum.Leaks = append(sum.Leaks, obs.LeakReport{
			Source:   l.Source.String(),
			Sink:     l.Sink.String(),
			Node:     l.Node,
			Block:    l.Block,
			Flow:     flow,
			Witness:  res.WitnessString(prog, l),
			P:        l.P.Float(),
			Log10P:   l.P.Log10(),
			Weighted: l.Weighted,
		})
	}
	max := res.MaxP()
	sum.MaxP = max.Float()
	sum.MaxLog10P = max.Log10()
	return sum
}
