// Package core implements P4wn's probabilistic profiler — the ProbProf
// algorithm of paper Figure 3. It drives the symbolic engine over a growing
// sequence of symbolic packets, computes per-code-block probabilities via
// model counting (optionally weighted by a traffic oracle), telescopes
// counter-guarded "deep" code blocks, and falls back to informed concrete
// sampling for whatever has not converged when the symbolic budget runs out.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/dist"
	"repro/internal/greybox"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/prob"
	"repro/internal/solver"
	"repro/internal/sym"
	"repro/internal/target"
)

// solverMetricsView and greyboxMetricsView adapt the process-wide solver
// and greybox counters to the obs registry's view type.
var (
	solverMetricsView  = obs.ViewFunc(solver.MetricsView)
	greyboxMetricsView = obs.ViewFunc(greybox.MetricsView)
)

// Options tunes ProbProf. Zero values select the documented defaults.
type Options struct {
	// Alpha is the confidence level for convergence (default 0.99): it
	// maps to the number of consecutive stable rounds required.
	Alpha float64
	// Epsilon is the convergence error bound on per-block probabilities
	// (default 1e-4).
	Epsilon float64
	// Gamma is the telescoping probe length in packets (default 4).
	Gamma int
	// Delta is the sampling-phase growth factor (default 4; reserved).
	Delta int
	// MaxIters bounds the main loop's symbolic sequence length (default 12).
	MaxIters int
	// Timeout bounds the main symbolic loop before the sampling phase
	// takes over (default 10s).
	Timeout time.Duration
	// SampleBudget is the number of concrete packets drawn in the
	// sampling phase (default 50000).
	SampleBudget int
	// MaxPaths bounds live symbolic paths (default 200000).
	MaxPaths int

	// Telescope enables deep-block telescoping (default on; DisableTelescope
	// flips it for the ablation).
	DisableTelescope bool
	// DisableMerge turns off state merging (ablation).
	DisableMerge bool
	// DisableSampling turns off the concrete sampling fallback.
	DisableSampling bool
	// DisablePrune turns off static dead-branch pruning (repo-over-paper
	// extension; the paper's pipeline symbolically explores every syntactic
	// branch). With pruning on, blocks the analysis package proves
	// unreachable are reported as probability-0 without spending solver
	// time, and the engine discards paths before forking into them.
	DisablePrune bool

	// Locality overrides greybox key locality.
	Locality float64
	// Target names the device model to profile against (see
	// internal/target): "idealized" (the default), "tofino", or "ebpf".
	// The model parameterizes the symbolic engine, telescoping, and the
	// concrete sampling switch alike, so one profile describes one device.
	Target string
	// Seed drives sampling and Monte-Carlo determinism.
	Seed int64
	// Workers is the degree of parallelism for the profiler's hot loops:
	// frontier stepping, per-path model-counting queries, telescoping, and
	// the sampling fallback all share one worker pool. <= 0 (the default)
	// selects runtime.GOMAXPROCS. Results are bit-identical for every
	// worker count.
	Workers int

	// Context cancels the whole run (symbolic loop, telescoping, and the
	// sampling fallback); it is checked at engine fork points and inside
	// every per-path stage, so even a path-explosion iteration stops
	// promptly. Timeout remains the convenience wrapper bounding only the
	// symbolic phase before sampling takes over. Nil means no external
	// cancellation.
	Context context.Context
	// Tracer receives per-iteration records, stage spans, and telescope
	// decisions. Nil (the default) is a no-op with no per-event allocation.
	Tracer *obs.Tracer
	// Registry, when non-nil, is updated once per iteration (and at the
	// end of the run) with the core/sym/mc metric views plus the
	// process-wide solver counters, for the -metrics-addr endpoint.
	Registry *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.99
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1e-4
	}
	if o.Gamma == 0 {
		o.Gamma = 4
	}
	if o.Delta == 0 {
		o.Delta = 4
	}
	if o.MaxIters == 0 {
		o.MaxIters = 12
	}
	if o.Timeout == 0 {
		o.Timeout = 10 * time.Second
	}
	if o.SampleBudget == 0 {
		o.SampleBudget = 50000
	}
	if o.MaxPaths == 0 {
		o.MaxPaths = 200000
	}
	if o.Target == "" {
		o.Target = target.Idealized.Name
	}
	return o
}

// targetModel resolves the options' target name, falling back to the
// idealized device for unknown names (ProbProf validates the name up front,
// so internal callers never hit the fallback).
func (o Options) targetModel() *target.Model {
	m, err := target.Lookup(o.Target)
	if err != nil {
		return target.Idealized
	}
	return m
}

// stableRounds maps the confidence level to the number of consecutive
// ε-stable rounds required before the profile is declared converged.
func (o Options) stableRounds() int {
	switch {
	case o.Alpha >= 0.999:
		return 4
	case o.Alpha >= 0.99:
		return 3
	default:
		return 2
	}
}

// Source tags how a node's probability estimate was obtained.
type Source int

const (
	// SrcSymbex: converged symbolic estimate (model counted).
	SrcSymbex Source = iota
	// SrcTelescope: telescoped deep-block estimate.
	SrcTelescope
	// SrcSampled: concrete-sampling estimate.
	SrcSampled
	// SrcUnreached: never observed; probability is zero.
	SrcUnreached
	// SrcPruned: statically proven dead by the analysis package;
	// probability is exactly zero and no exploration was spent on it.
	SrcPruned
)

func (s Source) String() string {
	switch s {
	case SrcSymbex:
		return "symbex"
	case SrcTelescope:
		return "telescope"
	case SrcSampled:
		return "sampled"
	case SrcPruned:
		return "pruned"
	}
	return "unreached"
}

// NodeProb is one profiled code block.
type NodeProb struct {
	ID     int
	Label  string
	P      prob.P
	Source Source
}

// Stats instruments a profiling run.
type Stats struct {
	Duration       time.Duration
	AnalysisTime   time.Duration // static dead-block pre-analysis
	TelescopeTime  time.Duration // telescoping probe + generalization
	UpdateProbTime time.Duration
	SymTime        time.Duration
	MergeTime      time.Duration
	SampleTime     time.Duration
	FinalizeTime   time.Duration // distguard generalization + profile assembly
	Iterations     int
	Paths          int
	TelescopedNode int
	SampledNodes   int
	PrunedNodes    int // blocks reported probability-0 by static analysis
	Counter        mc.Stats
	Engine         sym.Stats
	OracleQueries  int
	// Pool is the shared worker pool's snapshot (workers, batches, tasks,
	// per-worker utilization); Cache is the memo cache's shard-level view
	// (shards, resident entries, lock contention). Both land in the run
	// report under "pool." / "mc.".
	Pool  map[string]float64
	Cache map[string]float64
	// Iters is the per-iteration convergence trajectory (always collected;
	// it is bounded by MaxIters and is what the run report serializes).
	Iters []obs.IterationRecord
	// Hot is the engine's per-block exploration cost table (visits, forks,
	// attributed solver time), the source of the report's hot_blocks section.
	Hot []sym.HotBlock
}

// Stages returns per-stage wall seconds under the report's stage names.
func (s *Stats) Stages() map[string]float64 {
	return map[string]float64{
		"analysis":   s.AnalysisTime.Seconds(),
		"telescope":  s.TelescopeTime.Seconds(),
		"sym":        s.SymTime.Seconds(),
		"updateprob": s.UpdateProbTime.Seconds(),
		"merge":      s.MergeTime.Seconds(),
		"sample":     s.SampleTime.Seconds(),
		"finalize":   s.FinalizeTime.Seconds(),
	}
}

// Metrics flattens the run's stats — including the nested engine and
// counter stats — into the fully-qualified registry/report namespace.
func (s *Stats) Metrics() map[string]float64 {
	m := map[string]float64{
		"core.duration_sec":     s.Duration.Seconds(),
		"core.iterations":       float64(s.Iterations),
		"core.paths":            float64(s.Paths),
		"core.telescoped_nodes": float64(s.TelescopedNode),
		"core.sampled_nodes":    float64(s.SampledNodes),
		"core.pruned_nodes":     float64(s.PrunedNodes),
		"core.oracle_queries":   float64(s.OracleQueries),
	}
	for k, v := range s.Stages() {
		m["core.stage."+k+"_sec"] = v
	}
	for k, v := range s.Engine.Metrics() {
		m["sym."+k] = v
	}
	for k, v := range s.Counter.Metrics() {
		m["mc."+k] = v
	}
	for k, v := range s.Pool {
		m["pool."+k] = v
	}
	for k, v := range s.Cache {
		m["mc."+k] = v
	}
	return m
}

// Profile is the probabilistic profile (N, µ̂) of a program: the per-packet
// steady-state probability that each CFG code block is exercised.
type Profile struct {
	Program   string
	Nodes     []NodeProb // ascending by probability (edge cases first)
	Converged bool
	Coverage  float64
	Stats     Stats
}

// ByID returns the node entry for a CFG node ID.
func (pf *Profile) ByID(id int) (NodeProb, bool) {
	for _, n := range pf.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return NodeProb{}, false
}

// ByLabel returns the first node entry with the given label.
func (pf *Profile) ByLabel(label string) (NodeProb, bool) {
	for _, n := range pf.Nodes {
		if n.Label == label {
			return n, true
		}
	}
	return NodeProb{}, false
}

// Ranking returns node IDs ordered by ascending probability.
func (pf *Profile) Ranking() []int {
	out := make([]int, len(pf.Nodes))
	for i, n := range pf.Nodes {
		out[i] = n.ID
	}
	return out
}

// ProbProf profiles a program against a traffic oracle (nil = uniform
// header space). This is the paper's main algorithm.
func ProbProf(progIn *ir.Program, oracle dist.Oracle, optIn Options) (*Profile, error) {
	opt := optIn.withDefaults()
	tgt, err := target.Lookup(opt.Target)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if oracle == nil {
		oracle = &dist.UniformOracle{}
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	tr := opt.Tracer
	reg := opt.Registry
	reg.RegisterView("solver", solverMetricsView)
	reg.RegisterView("greybox", greyboxMetricsView)

	// Root span of the run: every stage span and pool batch span below
	// parents into it through the context, so the exported trace renders the
	// whole lifecycle as one tree.
	ctx, rootSpan := tr.StartSpanCtx(ctx, "probprof")
	defer rootSpan.End()

	// One pool serves every parallel stage of the run (exploration, counting,
	// telescoping, sampling), so its utilization metrics describe the whole
	// profile rather than one phase.
	pool := par.New(opt.Workers, tr, "pool")
	reg.RegisterView("pool", obs.ViewFunc(pool.Metrics))

	numNodes := len(progIn.Nodes())
	tr.Event("core", "probprof start", obs.F("nodes", float64(numNodes)),
		obs.F("max_iters", float64(opt.MaxIters)))

	// Static pre-analysis (repo-over-paper extension): blocks proven
	// unreachable or statically dead are reported as probability-0 up front
	// and the engine never forks into them.
	dead := map[int]bool{}
	var stats Stats
	if !opt.DisablePrune {
		_, span := tr.StartSpanCtx(ctx, "analysis")
		anStart := time.Now()
		dead = analysis.DeadBlocks(progIn)
		stats.AnalysisTime = time.Since(anStart)
		span.Annotate(obs.F("dead_blocks", float64(len(dead))))
		span.End()
	}

	// Telescoping pass (Figure 3's Telescope): estimate counter-guarded
	// deep blocks from a short periodic probe. It runs under its own
	// budget so a branchy probe cannot starve the main loop.
	teleEst := map[int]prob.P{}
	if !opt.DisableTelescope {
		teleCtx, span := tr.StartSpanCtx(ctx, "telescope")
		teleStart := time.Now()
		teleEst = telescope(teleCtx, progIn, oracle, opt, pool)
		stats.TelescopeTime = time.Since(teleStart)
		span.Annotate(obs.F("estimates", float64(len(teleEst))))
		span.End()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// The main loop's deadline starts after the probe; Timeout remains a
	// convenience wrapper around the context deadline the engine checks at
	// every fork point.
	symCtx, cancelSym := context.WithTimeout(ctx, opt.Timeout)
	defer cancelSym()
	engine := sym.NewEngine(progIn, sym.Options{
		Greybox:  true,
		Merge:    !opt.DisableMerge,
		MaxPaths: opt.MaxPaths,
		Ctx:      symCtx,
		Locality: opt.Locality,
		Dead:     dead,
		Tracer:   tr,
		Workers:  opt.Workers,
		Pool:     pool,
		Target:   tgt,
	})
	counter := mc.NewCounter(engine.Space, oracle)
	counter.Seed = opt.Seed

	// Main iterative-deepening loop.
	cur := make([]float64, numNodes)
	prev := make([]float64, numNodes)
	best := make([]prob.P, numNodes)
	everSeen := make([]bool, numNodes)
	for i := range best {
		best[i] = prob.Zero()
	}
	stable := 0
	converged := false

	paths := engine.Initial()
	var symErr error
	prevForks, prevMCQ := 0, 0
	for iter := 0; iter < opt.MaxIters; iter++ {
		rec := obs.IterationRecord{Iter: iter}

		// Each iteration gets its own span under the run root; the engine and
		// pool calls below receive the iteration context, so their batch
		// spans (fanned out across workers) nest inside it.
		iterCtx, iterSpan := tr.StartSpanCtx(symCtx, "iter")
		engine.Opts.Ctx = iterCtx

		symStart := time.Now()
		var nps []*sym.Path
		nps, symErr = engine.Step(paths, iter)
		symDur := time.Since(symStart)
		stats.SymTime += symDur
		if symErr != nil {
			iterSpan.End()
			break
		}
		paths = nps
		stats.Iterations = iter + 1
		stats.Paths += len(paths)
		stepPaths := len(paths)
		// Open path-condition size before merging folds it away.
		cons := 0
		for _, p := range paths {
			cons += len(p.PC)
		}

		upStart := time.Now()
		probs, upErr := sym.NodeProbsPool(iterCtx, paths, counter, numNodes, pool)
		upDur := time.Since(upStart)
		stats.UpdateProbTime += upDur
		if upErr != nil {
			// Budget ran out mid-update: the partial sums are unusable, so
			// keep the previous iteration's estimates and hand over to the
			// sampling phase.
			symErr = sym.ErrBudget
			iterSpan.End()
			break
		}

		copy(prev, cur)
		for i, p := range probs {
			cur[i] = p.Float()
			if !p.IsZero() {
				best[i] = p
				everSeen[i] = true
			}
		}
		var mergeDur time.Duration
		if !opt.DisableMerge {
			mergeStart := time.Now()
			merged, mErr := sym.MergePool(iterCtx, paths, counter, pool)
			mergeDur = time.Since(mergeStart)
			stats.MergeTime += mergeDur
			if mErr != nil {
				symErr = sym.ErrBudget
				iterSpan.End()
				break
			}
			paths = merged
		}

		md := maxDiffExcluding(cur, prev, teleEst)
		if iter > 0 && md < opt.Epsilon {
			stable++
		} else {
			stable = 0
		}

		// Per-iteration observability: the record is always collected (it
		// is bounded by MaxIters and feeds the run report); the tracer and
		// registry fan-out are nil-safe no-ops by default.
		mcStats := counter.Stats()
		rec.Paths = stepPaths
		rec.MergedTo = len(paths)
		rec.PrunedPaths = engine.Stats.PrunedPaths
		rec.Forks = engine.Stats.Forks
		rec.Constraints = cons
		rec.MaxDiff = md
		rec.Stable = stable
		rec.MCQueries = mcStats.Queries
		rec.MCHitRate = mcStats.CacheHitRate()
		rec.SymSec = symDur.Seconds()
		rec.UpdateSec = upDur.Seconds()
		rec.MergeSec = mergeDur.Seconds()
		stats.Iters = append(stats.Iters, rec)
		tr.Iteration(rec)
		// Per-span registry deltas: what this iteration added, not the
		// cumulative totals the flat metrics carry.
		iterSpan.Annotate(
			obs.F("iter", float64(iter)),
			obs.F("paths", float64(rec.Paths)),
			obs.F("merged_to", float64(rec.MergedTo)),
			obs.F("forks_delta", float64(rec.Forks-prevForks)),
			obs.F("mc_queries_delta", float64(rec.MCQueries-prevMCQ)),
			obs.F("max_diff", rec.MaxDiff),
		)
		iterSpan.End()
		prevForks, prevMCQ = rec.Forks, rec.MCQueries
		if reg != nil {
			reg.SetAll("sym", engine.Stats.Metrics())
			reg.SetAll("mc", counter.Metrics())
			reg.Gauge("core.iterations").Set(float64(stats.Iterations))
			reg.Gauge("core.live_paths").Set(float64(len(paths)))
		}

		if stable >= opt.stableRounds() {
			converged = true
			break
		}
		if symCtx.Err() != nil {
			break
		}
	}
	// External cancellation aborts the run; a Timeout expiry merely ends
	// the symbolic phase and falls through to sampling.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Store-counter telescoping: guards over sketch estimates and
	// hash-table flow counters, generalized from the measured update-block
	// probabilities (see distguard.go).
	finStart := time.Now()
	distEst := distGuardEstimates(progIn, opt.Locality, func(id int) (prob.P, bool) {
		if id < numNodes && everSeen[id] {
			return best[id], true
		}
		return prob.Zero(), false
	})

	// Sampling fallback for whatever the symbolic loop never reached:
	// either the loop did not converge, or blocks remain that neither the
	// loop nor telescoping covered (the "unconverged portion").
	unreached := 0
	for _, blk := range progIn.Nodes() {
		_, tele := teleEst[blk.ID]
		_, dist := distEst[blk.ID]
		if !tele && !dist && !everSeen[blk.ID] && !dead[blk.ID] {
			unreached++
		}
	}
	stats.FinalizeTime += time.Since(finStart)
	sampled := map[int]float64{}
	if !opt.DisableSampling && (!converged || symErr != nil || unreached > 0) {
		sampCtx, span := tr.StartSpanCtx(ctx, "sample")
		sampStart := time.Now()
		sampled = samplePaths(sampCtx, progIn, oracle, opt, pool)
		stats.SampleTime = time.Since(sampStart)
		span.Annotate(obs.F("sampled_nodes", float64(len(sampled))))
		span.End()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Assemble the final profile with source attribution: telescoped
	// estimates own their nodes; converged symbex estimates everything it
	// reached; sampling covers the remainder.
	finStart = time.Now()
	nodes := make([]NodeProb, 0, numNodes)
	coverage := 0
	for _, blk := range progIn.Nodes() {
		np := NodeProb{ID: blk.ID, Label: blk.Label, P: prob.Zero(), Source: SrcUnreached}
		if dead[blk.ID] {
			np.Source = SrcPruned
			stats.PrunedNodes++
		} else if te, ok := teleEst[blk.ID]; ok && !te.IsZero() {
			np.P = te
			np.Source = SrcTelescope
			stats.TelescopedNode++
		} else if everSeen[blk.ID] {
			np.P = best[blk.ID]
			np.Source = SrcSymbex
		} else if de, ok := distEst[blk.ID]; ok && !de.IsZero() {
			np.P = de
			np.Source = SrcTelescope
			stats.TelescopedNode++
		} else if sp, ok := sampled[blk.ID]; ok && sp > 0 {
			np.P = prob.FromFloat(sp)
			np.Source = SrcSampled
			stats.SampledNodes++
		}
		if np.Source != SrcUnreached {
			coverage++
		}
		nodes = append(nodes, np)
	}
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].P.Less(nodes[j].P) })
	stats.FinalizeTime += time.Since(finStart)

	stats.Duration = time.Since(start)
	stats.Counter = counter.Stats()
	stats.Engine = engine.Stats
	stats.OracleQueries = oracle.QueryCount()
	stats.Pool = pool.Metrics()
	stats.Cache = counter.CacheMetrics()
	stats.Hot = engine.Hot.Snapshot()

	pf := &Profile{
		Program:   progIn.Name,
		Nodes:     nodes,
		Converged: converged,
		Coverage:  float64(coverage) / math.Max(1, float64(numNodes)),
		Stats:     stats,
	}
	reg.SetAll("", stats.Metrics())
	tr.Event("core", "probprof done",
		obs.F("wall_sec", stats.Duration.Seconds()),
		obs.F("converged", b2f(converged)), obs.F("coverage", pf.Coverage))
	return pf, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// maxDiffExcluding computes the L∞ distance between consecutive profiles,
// skipping nodes owned by telescoping (their estimates do not come from the
// main loop).
func maxDiffExcluding(cur, prev []float64, tele map[int]prob.P) float64 {
	d := 0.0
	for i := range cur {
		if _, ok := tele[i]; ok {
			continue
		}
		if diff := math.Abs(cur[i] - prev[i]); diff > d {
			d = diff
		}
	}
	return d
}

// String renders the profile as an aligned table, rarest blocks first.
func (pf *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile of %s: %d blocks, coverage %.0f%%, converged=%v\n",
		pf.Program, len(pf.Nodes), pf.Coverage*100, pf.Converged)
	if pf.Stats.PrunedNodes > 0 || pf.Stats.Engine.PrunedPaths > 0 {
		explored := pf.Stats.Paths
		fmt.Fprintf(&b, "pruning: %d dead block(s) skipped; paths %d -> %d (%d discarded at dead blocks)\n",
			pf.Stats.PrunedNodes, explored+pf.Stats.Engine.PrunedPaths, explored,
			pf.Stats.Engine.PrunedPaths)
	}
	fmt.Fprintf(&b, "%-6s %-28s %-14s %s\n", "rank", "block", "P(per pkt)", "source")
	for i, n := range pf.Nodes {
		fmt.Fprintf(&b, "%-6d %-28s %-14s %s\n", i+1, n.Label, n.P, n.Source)
	}
	return b.String()
}
