package core

import (
	"encoding/json"
	"math"
	"time"
)

// WireOptions is the JSON-marshallable form of Options: every knob that
// affects the computed profile, and nothing that is runtime plumbing.
// Context, Tracer, and Registry are attached by whoever executes the run,
// and Workers is deliberately excluded because profiles are bit-identical
// for every worker count — two submissions differing only in parallelism
// must content-address to the same result.
//
// The field set and JSON keys are shared with the run report's "options"
// block (see optionsMap), so a stored report always records exactly the
// wire options that produced it.
type WireOptions struct {
	Alpha            float64 `json:"alpha"`
	Epsilon          float64 `json:"epsilon"`
	Gamma            int     `json:"gamma"`
	Delta            int     `json:"delta"`
	MaxIters         int     `json:"max_iters"`
	TimeoutSec       float64 `json:"timeout_sec"`
	SampleBudget     int     `json:"sample_budget"`
	MaxPaths         int     `json:"max_paths"`
	DisableTelescope bool    `json:"disable_telescope"`
	DisableMerge     bool    `json:"disable_merge"`
	DisableSampling  bool    `json:"disable_sampling"`
	DisablePrune     bool    `json:"disable_prune"`
	Locality         float64 `json:"locality"`
	Seed             int64   `json:"seed"`
	// Target names the device model profiled against ("" normalizes to
	// "idealized"). It is part of the wire form — and therefore of the
	// content-addressed store key — because the same program produces a
	// different profile per target; cached results must never mix targets.
	Target string `json:"target"`
}

// WireFromOptions projects Options onto its wire form, dropping the
// runtime-only fields.
func WireFromOptions(o Options) WireOptions {
	return WireOptions{
		Alpha:            o.Alpha,
		Epsilon:          o.Epsilon,
		Gamma:            o.Gamma,
		Delta:            o.Delta,
		MaxIters:         o.MaxIters,
		TimeoutSec:       o.Timeout.Seconds(),
		SampleBudget:     o.SampleBudget,
		MaxPaths:         o.MaxPaths,
		DisableTelescope: o.DisableTelescope,
		DisableMerge:     o.DisableMerge,
		DisableSampling:  o.DisableSampling,
		DisablePrune:     o.DisablePrune,
		Locality:         o.Locality,
		Seed:             o.Seed,
		Target:           o.Target,
	}
}

// Options converts the wire form back into profiler options. Zero values
// keep their usual meaning ("use the documented default"); runtime fields
// are left for the caller to attach.
func (w WireOptions) Options() Options {
	return Options{
		Alpha:            w.Alpha,
		Epsilon:          w.Epsilon,
		Gamma:            w.Gamma,
		Delta:            w.Delta,
		MaxIters:         w.MaxIters,
		Timeout:          time.Duration(w.TimeoutSec * float64(time.Second)),
		SampleBudget:     w.SampleBudget,
		MaxPaths:         w.MaxPaths,
		DisableTelescope: w.DisableTelescope,
		DisableMerge:     w.DisableMerge,
		DisableSampling:  w.DisableSampling,
		DisablePrune:     w.DisablePrune,
		Locality:         w.Locality,
		Seed:             w.Seed,
		Target:           w.Target,
	}
}

// Normalized applies the profiler's documented defaults, so submissions
// that omit a knob and submissions that spell out its default value are
// the same wire options — and therefore the same content address.
func (w WireOptions) Normalized() WireOptions {
	return WireFromOptions(w.Options().withDefaults())
}

// optionsMap records the effective (defaulted) options as the run report's
// "options" block. It is derived from the wire form so the two schemas can
// never drift apart; integral knobs are kept as Go ints rather than the
// float64 a plain JSON round-trip would produce.
func optionsMap(optIn Options) map[string]any {
	data, err := json.Marshal(WireFromOptions(optIn.withDefaults()))
	if err != nil {
		return nil
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return nil
	}
	for k, v := range m {
		if f, ok := v.(float64); ok && f == math.Trunc(f) && math.Abs(f) < 1<<53 {
			m[k] = int(f)
		}
	}
	return m
}
