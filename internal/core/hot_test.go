package core

import (
	"testing"

	"repro/internal/sym"
)

// Hot-block visit and fork counts are pure exploration facts, so they must
// be identical at every worker count; only the solver wall-time column is
// timing and may differ between runs.
func TestHotBlockCountsDeterministicAcrossWorkers(t *testing.T) {
	prog := counterProg(t, 5)
	run := func(workers int) map[int][2]int64 {
		prof, err := ProbProf(prog, nil,
			Options{Seed: 1, MaxIters: 8, DisableSampling: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := map[int][2]int64{}
		for _, h := range prof.Stats.Hot {
			out[h.ID] = [2]int64{h.Visits, h.Forks}
		}
		return out
	}
	ref := run(1)
	if len(ref) == 0 {
		t.Fatal("profile recorded no hot blocks")
	}
	for _, w := range []int{3, 8} {
		got := run(w)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d hot blocks, want %d", w, len(got), len(ref))
		}
		for id, want := range ref {
			if got[id] != want {
				t.Errorf("workers=%d block %d: visits/forks %v, want %v", w, id, got[id], want)
			}
		}
	}
}

// The report ranks hot blocks most-solver-time first with deterministic
// tiebreaks, 1-based ranks, and labels joined from the profile's nodes.
func TestHotBlockReportRanking(t *testing.T) {
	pf := &Profile{
		Nodes: []NodeProb{{ID: 1, Label: "a"}, {ID: 2, Label: "b"}, {ID: 3, Label: "c"}},
	}
	pf.Stats.Hot = []sym.HotBlock{
		{ID: 1, Visits: 5, Forks: 0, SolverNS: 1000},
		{ID: 2, Visits: 9, Forks: 2, SolverNS: 2000},
		{ID: 3, Visits: 9, Forks: 1, SolverNS: 1000}, // ties ID 1 on solver, wins on visits
	}
	got := hotBlockReports(pf)
	if len(got) != 3 {
		t.Fatalf("got %d reports, want 3", len(got))
	}
	wantOrder := []int{2, 3, 1}
	for i, id := range wantOrder {
		if got[i].ID != id || got[i].Rank != i+1 {
			t.Fatalf("rank %d: got block %d (rank %d), want block %d", i+1, got[i].ID, got[i].Rank, id)
		}
	}
	if got[0].Label != "b" || got[0].SolverSec != 2e-6 {
		t.Fatalf("top block = %+v", got[0])
	}
}
