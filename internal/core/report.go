package core

import (
	"repro/internal/greybox"
	"repro/internal/obs"
	"repro/internal/solver"
)

// NewReport converts a finished profile into the versioned run report
// (kind "profile"). GeneratedAt is left empty for the caller to stamp, so
// golden tests stay byte-stable.
func NewReport(pf *Profile, opt Options) *obs.Report {
	r := &obs.Report{
		SchemaVersion: obs.SchemaVersion,
		Kind:          "profile",
		Program:       pf.Program,
		Options:       optionsMap(opt),
		WallSec:       pf.Stats.Duration.Seconds(),
		Stages:        pf.Stats.Stages(),
		Iterations:    pf.Stats.Iters,
		Converged:     pf.Converged,
		Coverage:      pf.Coverage,
		Metrics:       pf.Stats.Metrics(),
	}
	for k, v := range solver.MetricsView() {
		r.Metrics["solver."+k] = v
	}
	for k, v := range greybox.MetricsView() {
		r.Metrics["greybox."+k] = v
	}
	for i, n := range pf.Nodes {
		r.Nodes = append(r.Nodes, obs.NodeReport{
			Rank:   i + 1,
			ID:     n.ID,
			Label:  n.Label,
			P:      n.P.Float(),
			Log10P: n.P.Log10(),
			Source: n.Source.String(),
		})
	}
	return r
}
