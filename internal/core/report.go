package core

import (
	"sort"

	"repro/internal/greybox"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/sym"
)

// NewReport converts a finished profile into the versioned run report
// (kind "profile"). GeneratedAt is left empty for the caller to stamp, so
// golden tests stay byte-stable.
func NewReport(pf *Profile, opt Options) *obs.Report {
	r := &obs.Report{
		SchemaVersion: obs.SchemaVersion,
		Kind:          "profile",
		Program:       pf.Program,
		Target:        opt.withDefaults().Target,
		Options:       optionsMap(opt),
		WallSec:       pf.Stats.Duration.Seconds(),
		Stages:        pf.Stats.Stages(),
		Iterations:    pf.Stats.Iters,
		Converged:     pf.Converged,
		Coverage:      pf.Coverage,
		Metrics:       pf.Stats.Metrics(),
	}
	for k, v := range solver.MetricsView() {
		r.Metrics["solver."+k] = v
	}
	for k, v := range greybox.MetricsView() {
		r.Metrics["greybox."+k] = v
	}
	for i, n := range pf.Nodes {
		r.Nodes = append(r.Nodes, obs.NodeReport{
			Rank:   i + 1,
			ID:     n.ID,
			Label:  n.Label,
			P:      n.P.Float(),
			Log10P: n.P.Log10(),
			Source: n.Source.String(),
		})
	}
	r.HotBlocks = hotBlockReports(pf)
	return r
}

// hotBlockReports converts the engine's per-block cost table into the
// report's ranked hot-block section: most solver time first, visits as the
// tie breaker, block ID as the final deterministic tiebreak.
func hotBlockReports(pf *Profile) []obs.HotBlockReport {
	if len(pf.Stats.Hot) == 0 {
		return nil
	}
	labels := make(map[int]string, len(pf.Nodes))
	for _, n := range pf.Nodes {
		labels[n.ID] = n.Label
	}
	hot := append([]sym.HotBlock(nil), pf.Stats.Hot...)
	sort.SliceStable(hot, func(i, j int) bool {
		if hot[i].SolverNS != hot[j].SolverNS {
			return hot[i].SolverNS > hot[j].SolverNS
		}
		if hot[i].Visits != hot[j].Visits {
			return hot[i].Visits > hot[j].Visits
		}
		return hot[i].ID < hot[j].ID
	})
	out := make([]obs.HotBlockReport, len(hot))
	for i, h := range hot {
		out[i] = obs.HotBlockReport{
			Rank:      i + 1,
			ID:        h.ID,
			Label:     labels[h.ID],
			Visits:    h.Visits,
			Forks:     h.Forks,
			SolverSec: float64(h.SolverNS) / 1e9,
		}
	}
	return out
}
