package core

import (
	"context"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/dut"
	"repro/internal/ir"
	"repro/internal/par"
	"repro/internal/trace"
)

// samplePaths is the SampPaths phase of Figure 3: when symbolic exploration
// has not converged within its budget, the profiler estimates the remaining
// blocks by concrete informed sampling — packets drawn from the traffic
// oracle's marginals are streamed through the concrete interpreter, and
// per-packet block hit rates become the probability estimates. The
// resolution floor is 1/SampleBudget, which is exactly the coarse
// granularity the paper's Figure 8 demonstrates for the ps baseline.
//
// "Informed" part: the sampler honors the oracle's pair-equality answer by
// replaying the previous packet (a retransmission) with the reported
// probability, so flow-correlated branches are reachable at realistic rates.
//
// The budget is partitioned into fixed-size chunks distributed across the
// pool; each chunk runs its own deterministically seeded RNG, sampler, and
// switch, and the integer hit counts are summed. Results therefore depend
// only on (Seed, SampleBudget), never on the worker count. The pair-equality
// retransmission correlation spans packets within one chunk only (documented
// approximation: at 1024 packets per chunk the boundary effect on hit rates
// is far below the sampler's 1/SampleBudget resolution floor).
func samplePaths(ctx context.Context, progIn *ir.Program, oracle dist.Oracle, opt Options, pool *par.Pool) map[int]float64 {
	const chunkSize = 1024
	nChunks := (opt.SampleBudget + chunkSize - 1) / chunkSize
	if nChunks == 0 {
		return nil
	}
	chunkCounts := make([]map[int]int, nChunks)
	chunkDrawn := make([]int, nChunks)
	_ = pool.Run(ctx, nChunks, func(ci int) error {
		n := chunkSize
		if rem := opt.SampleBudget - ci*chunkSize; rem < n {
			n = rem
		}
		// The chunk seed mixes the chunk index with an odd constant so
		// neighboring chunks do not walk correlated rand.Source streams.
		rng := rand.New(rand.NewSource(opt.Seed + 1 + int64(ci)*0x5851f42d4c957f2d))
		gen := NewPacketSampler(progIn, oracle, rng)
		sw := dut.New(progIn, dut.Config{Target: opt.targetModel()})
		visitSet := map[int]bool{}
		sw.VisitHook = func(id int) { visitSet[id] = true }
		counts := map[int]int{}
		drawn := 0
		for i := 0; i < n; i++ {
			if i%512 == 0 && ctx.Err() != nil {
				break
			}
			pkt := gen.Next()
			for k := range visitSet {
				delete(visitSet, k)
			}
			sw.Process(&pkt)
			for id := range visitSet {
				counts[id]++
			}
			drawn++
		}
		chunkCounts[ci] = counts
		chunkDrawn[ci] = drawn
		return nil
	})
	counts := map[int]int{}
	drawn := 0
	for ci := range chunkCounts {
		for id, c := range chunkCounts[ci] {
			counts[id] += c
		}
		drawn += chunkDrawn[ci]
	}
	if drawn == 0 {
		return nil
	}
	out := make(map[int]float64, len(counts))
	for id, c := range counts {
		// Normalize by packets actually processed so an early ctx cut does
		// not deflate every estimate.
		out[id] = float64(c) / float64(drawn)
	}
	return out
}

// PacketSampler draws concrete packets from a traffic oracle's marginal
// distributions (uniform per field when the oracle has no answer).
type PacketSampler struct {
	fields  []ir.Field
	dists   []dist.Dist
	rng     *rand.Rand
	pairEq  float64
	havePkt bool
	last    trace.Packet
	ts      uint64
}

// NewPacketSampler builds a sampler for a program's header vocabulary.
func NewPacketSampler(progIn *ir.Program, oracle dist.Oracle, rng *rand.Rand) *PacketSampler {
	s := &PacketSampler{fields: progIn.Fields, rng: rng}
	for _, f := range s.fields {
		if d, ok := oracle.FieldDist(f.Name); ok {
			s.dists = append(s.dists, d)
		} else {
			s.dists = append(s.dists, dist.Uniform(f.Bits))
		}
	}
	if pe, ok := oracle.PairEqualProb("seq"); ok {
		s.pairEq = pe
	}
	return s
}

// Next draws one packet.
func (s *PacketSampler) Next() trace.Packet {
	s.ts += 1000
	if s.havePkt && s.pairEq > 0 && s.rng.Float64() < s.pairEq {
		// Retransmission: repeat the previous packet.
		p := s.last.Clone()
		p.TS = s.ts
		return p
	}
	var p trace.Packet
	p.TS = s.ts
	for i, f := range s.fields {
		p.SetField(f.Name, s.dists[i].Sample(s.rng))
	}
	s.last = p
	s.havePkt = true
	return p
}
