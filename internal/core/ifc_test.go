package core

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/obs"
)

// ifcLeakyProg mirrors examples/programs/ifc_leaky.p4w: a 16-bit secret
// register compared against dst_port, with matches digested.
func ifcLeakyProg() *ir.Program {
	p := &ir.Program{
		Name: "ifc-leaky",
		Regs: []ir.RegDecl{{Name: "secret_key", Bits: 16, Init: 1234}},
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindRegister, Name: "secret_key"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "digest"}},
		},
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("dst_port"), ir.R("secret_key")),
				ir.Blk("key_probe", ir.Digest(), ir.Fwd(1)),
				ir.Blk("normal", ir.Fwd(1))),
		),
	}
	return p.MustBuild()
}

// TestWeightIFCMatchesProfiler is the acceptance check for the weighted
// lint: the reported leak probability must equal the profiler's block
// probability along the witness chain (its minimum — here, the key_probe
// block at 2^-16 under a uniform header space).
func TestWeightIFCMatchesProfiler(t *testing.T) {
	prog := ifcLeakyProg()
	prof, err := ProbProf(prog, nil, Options{Seed: 1, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.IFCOnly(prog)
	if res == nil || len(res.Leaks) != 1 {
		t.Fatalf("ifc result: %+v", res)
	}
	WeightIFC(res, prof)
	l := res.Leaks[0]
	if !l.Weighted {
		t.Fatal("leak not weighted")
	}
	// The witness minimum must agree with the profile node-for-node.
	min := math.Inf(1)
	for _, id := range l.Witness {
		n, ok := prof.ByID(id)
		if !ok {
			t.Fatalf("witness node #%d missing from profile", id)
		}
		if f := n.P.Float(); f < min {
			min = f
		}
	}
	if got := l.P.Float(); got != min {
		t.Errorf("leak p = %g, want witness minimum %g", got, min)
	}
	// And under a uniform 16-bit dst_port the probe block is 2^-16 exactly.
	want := 1.0 / 65536.0
	if got := l.P.Float(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("leak p = %g, want %g (uniform 16-bit match)", got, want)
	}
	if res.MaxP().Float() != l.P.Float() {
		t.Errorf("MaxP = %v, want the single leak's p", res.MaxP())
	}
}

func TestAttachIFC(t *testing.T) {
	prog := ifcLeakyProg()
	prof, err := ProbProf(prog, nil, Options{Seed: 1, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := &obs.Report{}
	AttachIFC(rep, prog, prof)
	if rep.IFC == nil {
		t.Fatal("report has no ifc block")
	}
	if len(rep.IFC.Leaks) != 1 || rep.IFC.Leaks[0].Flow != "implicit" {
		t.Fatalf("ifc summary: %+v", rep.IFC)
	}
	if rep.IFC.Leaks[0].Witness == "" {
		t.Error("leak has no rendered witness")
	}
	if rep.IFC.MaxP != rep.IFC.Leaks[0].P {
		t.Errorf("summary MaxP %g != leak p %g", rep.IFC.MaxP, rep.IFC.Leaks[0].P)
	}

	// No inline policy: the report must keep its shape (no ifc block).
	clean := &ir.Program{
		Name: "nopolicy",
		Root: ir.Body(ir.Blk("b", ir.Fwd(1))),
	}
	cp := clean.MustBuild()
	cprof, err := ProbProf(cp, nil, Options{Seed: 1, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	crep := &obs.Report{}
	AttachIFC(crep, cp, cprof)
	if crep.IFC != nil {
		t.Errorf("policy-free program grew an ifc block: %+v", crep.IFC)
	}
}

func TestWeightIFCNilSafe(t *testing.T) {
	WeightIFC(nil, nil) // must not panic
	res := analysis.IFCOnly(ifcLeakyProg())
	WeightIFC(res, nil)
	if res.Leaks[0].Weighted {
		t.Error("nil profile must leave leaks unweighted")
	}
}
