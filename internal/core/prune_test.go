package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ir"
)

// pruneProg has a statically-dead branch: the inner proto == TCP test sits
// under a proto == UDP guard. Without pruning the engine forks on the inner
// condition (clone + two feasibility checks per path per packet) before the
// solver kills the contradictory arm; with pruning it skips the fork.
func pruneProg(t *testing.T) *ir.Program {
	t.Helper()
	p, err := (&ir.Program{
		Name: "prune-demo",
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoUDP)),
				ir.Blk("udp",
					ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoTCP)),
						ir.Blk("dead", ir.ToCPU()),
						ir.Blk("live", ir.Fwd(2)))),
				ir.Blk("other", ir.Fwd(1))),
		),
	}).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func profileOpts() Options {
	return Options{
		MaxIters:         4,
		Timeout:          5 * time.Second,
		DisableTelescope: true,
		DisableSampling:  true,
		Seed:             1,
	}
}

// The acceptance check for the pruning hook: a program with a statically-dead
// branch explores strictly fewer forks with pruning on than off, reports the
// dead block as probability-0 with source "pruned", and leaves every live
// block's estimate unchanged.
func TestPruningReducesForks(t *testing.T) {
	optOn := profileOpts()
	optOff := profileOpts()
	optOff.DisablePrune = true

	pfOn, err := ProbProf(pruneProg(t), nil, optOn)
	if err != nil {
		t.Fatalf("ProbProf(prune on): %v", err)
	}
	pfOff, err := ProbProf(pruneProg(t), nil, optOff)
	if err != nil {
		t.Fatalf("ProbProf(prune off): %v", err)
	}

	if pfOn.Stats.Engine.Forks >= pfOff.Stats.Engine.Forks {
		t.Errorf("forks with pruning (%d) not below forks without (%d)",
			pfOn.Stats.Engine.Forks, pfOff.Stats.Engine.Forks)
	}
	if pfOn.Stats.Engine.PrunedPaths == 0 {
		t.Error("no paths pruned despite dead branch")
	}
	if pfOn.Stats.PrunedNodes == 0 {
		t.Error("no nodes attributed to pruning")
	}

	deadOn, ok := pfOn.ByLabel("dead")
	if !ok {
		t.Fatal("dead block missing from profile")
	}
	if deadOn.Source != SrcPruned || !deadOn.P.IsZero() {
		t.Errorf("dead block: source=%v P=%v, want pruned with P=0", deadOn.Source, deadOn.P)
	}

	// Pruning must not change any live block's probability.
	for _, label := range []string{"udp", "live", "other", "entry"} {
		on, ok1 := pfOn.ByLabel(label)
		off, ok2 := pfOff.ByLabel(label)
		if !ok1 || !ok2 {
			t.Fatalf("block %q missing from a profile", label)
		}
		if diff := on.P.Float() - off.P.Float(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("block %q probability changed by pruning: %v vs %v", label, on.P, off.P)
		}
	}

	// The profile output carries the before/after path-count line.
	if s := pfOn.String(); !strings.Contains(s, "pruning:") ||
		!strings.Contains(s, "dead block(s) skipped") {
		t.Errorf("profile output missing pruning summary:\n%s", s)
	}
}

// Unreached-but-live blocks must still fall through to the sampling phase,
// not be confused with pruned ones: a register-guarded rare block is not in
// the prune set.
func TestPruneSetExcludesStatefulBranches(t *testing.T) {
	p, err := (&ir.Program{
		Name: "stateful-live",
		Regs: []ir.RegDecl{{Name: "n", Bits: 32}},
		Root: ir.Body(
			ir.Add1("n"),
			ir.If2(ir.Gt(ir.R("n"), ir.C(2)),
				ir.Blk("deep", ir.ToCPU()),
				ir.Blk("shallow", ir.Fwd(1))),
		),
	}).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	pf, err := ProbProf(p, nil, profileOpts())
	if err != nil {
		t.Fatalf("ProbProf: %v", err)
	}
	deep, ok := pf.ByLabel("deep")
	if !ok {
		t.Fatal("deep block missing")
	}
	if deep.Source == SrcPruned {
		t.Error("register-guarded block wrongly pruned")
	}
	if deep.P.IsZero() {
		t.Errorf("deep block should be reached after 3 packets, got P=%v", deep.P)
	}
}
