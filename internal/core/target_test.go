package core

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/programs"
	"repro/internal/trace"
)

// profileText profiles one zoo system under a named target and returns the
// rendered profile (the byte-stable text `p4wn profile` prints).
func profileText(t *testing.T, sid int, tgt string, workers int) string {
	t.Helper()
	m, ok := programs.SID(sid)
	if !ok {
		t.Fatalf("zoo program S%d missing", sid)
	}
	prog := m.Build()
	oracle := trace.NewQueryProcessor(trace.Generate(m.Workload(1)))
	prof, err := ProbProf(prog, oracle, Options{
		Seed: 1, SampleBudget: 4000, MaxIters: 6, Workers: workers, Target: tgt,
	})
	if err != nil {
		t.Fatalf("S%d target=%q: %v", sid, tgt, err)
	}
	return prof.String()
}

// The cross-target contract: "idealized" is a strict no-op — byte-identical
// to a run that never names a target, at any worker count — while the
// constrained device models produce genuinely different profiles.
func TestCrossTargetDivergence(t *testing.T) {
	cases := []struct {
		sid          int
		name         string
		tofinoDiffer bool // tofino's SRAM clamps bite this program
		ebpfDiffer   bool // map-backed state / no-recirc bites this program
	}{
		{6, "netcache", true, true},
		{7, "starflow", true, true},
		{9, "nethcf", true, true},
		{10, "poise", true, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			base := profileText(t, tc.sid, "", 1)
			for _, w := range []int{1, 2, 4} {
				if got := profileText(t, tc.sid, "idealized", w); got != base {
					t.Fatalf("idealized (workers=%d) drifted from the default profile:\n--- default\n%s\n--- idealized\n%s", w, base, got)
				}
			}
			tofino := profileText(t, tc.sid, "tofino", 1)
			if (tofino != base) != tc.tofinoDiffer {
				t.Fatalf("tofino differ=%v, want %v", tofino != base, tc.tofinoDiffer)
			}
			ebpf := profileText(t, tc.sid, "ebpf", 1)
			if (ebpf != base) != tc.ebpfDiffer {
				t.Fatalf("ebpf differ=%v, want %v", ebpf != base, tc.ebpfDiffer)
			}
		})
	}
}

// overBudgetProg chains more stateful operations than tofino's 12-stage
// pipeline fits, so every packet halts mid-pass on that target.
func overBudgetProg(t *testing.T) *ir.Program {
	t.Helper()
	var stmts []ir.Stmt
	for i := 0; i < 14; i++ {
		stmts = append(stmts, &ir.SketchUpdate{Sketch: "cnt", Key: ir.FlowKey(), Inc: ir.C(1)})
	}
	stmts = append(stmts, ir.Blk("deep", ir.Fwd(1)))
	p := &ir.Program{
		Name:     "overbudget",
		Sketches: []ir.SketchDecl{{Name: "cnt", Rows: 2, Cols: 128}},
		Root:     ir.Body(stmts...),
	}
	return p.MustBuild()
}

// A program exceeding the stage budget loses its deep blocks under tofino:
// the pass drops at stage 13, so the trailing block's probability collapses
// from 1 to 0 (the drop probability the constrained pipeline gains).
func TestStageBudgetGainsDropProbability(t *testing.T) {
	prog := overBudgetProg(t)
	run := func(tgt string) *Profile {
		prof, err := ProbProf(prog, nil, Options{
			Seed: 1, MaxIters: 3, DisableSampling: true, Target: tgt,
		})
		if err != nil {
			t.Fatalf("target=%q: %v", tgt, err)
		}
		return prof
	}
	ideal := run("idealized")
	deep, ok := ideal.ByLabel("deep")
	if !ok || deep.P.Float() < 0.99 {
		t.Fatalf("idealized must always reach the trailing block: %+v", deep)
	}
	tofino := run("tofino")
	deep, ok = tofino.ByLabel("deep")
	if ok && !deep.P.IsZero() {
		t.Fatalf("tofino must drop before the trailing block: %+v", deep)
	}
	// eBPF's 32-stage verifier bound fits the 14-op pass, so it keeps the
	// block reachable.
	ebpf := run("ebpf")
	deep, ok = ebpf.ByLabel("deep")
	if !ok || deep.P.Float() < 0.99 {
		t.Fatalf("ebpf (32-stage bound) must still reach the block: %+v", deep)
	}
}

// An unknown target name must fail loudly at the profiling boundary, not
// fall back to idealized silently.
func TestProbProfRejectsUnknownTarget(t *testing.T) {
	prog := counterProg(t, 3)
	_, err := ProbProf(prog, nil, Options{Seed: 1, MaxIters: 3, DisableSampling: true, Target: "bmv2"})
	if err == nil {
		t.Fatal("ProbProf must reject unknown targets")
	}
}
