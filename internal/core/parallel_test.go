package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/p4c"
	"repro/internal/programs"
	"repro/internal/trace"
)

// determinismSubjects returns the regression programs for the worker-count
// determinism guarantee: a zoo system with its trace oracle, the stateful
// counter program, and the example sources shipped in examples/programs/.
func determinismSubjects(t *testing.T) []struct {
	name string
	run  func(workers int) string
} {
	t.Helper()
	var subjects []struct {
		name string
		run  func(workers int) string
	}
	add := func(name string, run func(workers int) string) {
		subjects = append(subjects, struct {
			name string
			run  func(workers int) string
		}{name, run})
	}

	m, ok := programs.SID(2)
	if !ok {
		t.Fatal("zoo program S2 missing")
	}
	zooProg := m.Build()
	add(m.Name, func(workers int) string {
		oracle := trace.NewQueryProcessor(trace.Generate(m.Workload(1)))
		prof, err := ProbProf(zooProg, oracle,
			Options{Seed: 1, SampleBudget: 4000, MaxIters: 6, Workers: workers})
		if err != nil {
			t.Fatalf("%s workers=%d: %v", m.Name, workers, err)
		}
		return prof.String()
	})

	ctr := counterProg(t, 5)
	add("counter", func(workers int) string {
		prof, err := ProbProf(ctr, nil,
			Options{Seed: 1, MaxIters: 8, DisableSampling: true, Workers: workers})
		if err != nil {
			t.Fatalf("counter workers=%d: %v", workers, err)
		}
		return prof.String()
	})

	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.p4w"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := p4c.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		add(filepath.Base(f), func(workers int) string {
			prof, err := ProbProf(prog, nil,
				Options{Seed: 1, SampleBudget: 2000, MaxIters: 6, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", prog.Name, workers, err)
			}
			return prof.String()
		})
	}
	return subjects
}

// TestProfileDeterministicAcrossWorkers is the regression gate for the
// parallel engine: for every subject program the rendered profile at
// Workers=8 (and an in-between count) must be byte-identical to Workers=1.
// Any schedule-dependence in exploration order, merge order, havoc naming,
// or probability accumulation shows up here as a diff.
func TestProfileDeterministicAcrossWorkers(t *testing.T) {
	for _, s := range determinismSubjects(t) {
		ref := s.run(1)
		for _, w := range []int{3, 8} {
			if got := s.run(w); got != ref {
				t.Errorf("%s: profile at workers=%d differs from workers=1\n--- w=1 ---\n%s\n--- w=%d ---\n%s",
					s.name, w, ref, w, got)
			}
		}
	}
}
