package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/ir"
	"repro/internal/testutil"
)

func almostEq(a, b, tol float64) bool { return testutil.ApproxEqual(a, b, tol, 0) }

// counterProg mirrors S12 (counter.p4): count TCP/UDP and mirror every
// N-th packet of each kind.
func counterProg(t testing.TB, n uint64) *ir.Program {
	p := &ir.Program{
		Name: "counter",
		Regs: []ir.RegDecl{{Name: "tcp_cnt", Bits: 32}, {Name: "udp_cnt", Bits: 32}},
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoTCP)),
				ir.Blk("tcp",
					ir.Add1("tcp_cnt"),
					ir.If2(ir.Ge(ir.R("tcp_cnt"), ir.C(n)),
						ir.Blk("tcp_sample", ir.Mirror(7), ir.Set("tcp_cnt", ir.C(0))),
						ir.Blk("tcp_fwd", ir.Fwd(1)))),
				ir.Blk("udp",
					ir.Add1("udp_cnt"),
					ir.If2(ir.Ge(ir.R("udp_cnt"), ir.C(n)),
						ir.Blk("udp_sample", ir.Mirror(7), ir.Set("udp_cnt", ir.C(0))),
						ir.Blk("udp_fwd", ir.Fwd(2))))),
		),
	}
	return p.MustBuild()
}

func TestProfileStatelessProgram(t *testing.T) {
	p := &ir.Program{
		Name: "fwd",
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoTCP)),
				ir.Blk("tcp", ir.Fwd(1)),
				ir.Blk("other", ir.Fwd(2))),
		),
	}
	prof, err := ProbProf(p.MustBuild(), nil, Options{Seed: 1, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Converged {
		t.Fatal("stateless program should converge")
	}
	tcp, _ := prof.ByLabel("tcp")
	if !almostEq(tcp.P.Float(), 1.0/256, 1e-9) {
		t.Fatalf("P(tcp) = %v", tcp.P.Float())
	}
	if prof.Coverage != 1 {
		t.Fatalf("coverage = %v", prof.Coverage)
	}
	// Nodes sorted ascending.
	for i := 1; i < len(prof.Nodes); i++ {
		if prof.Nodes[i].P.Less(prof.Nodes[i-1].P) {
			t.Fatal("profile not sorted")
		}
	}
}

func TestProfileWithSkewedOracle(t *testing.T) {
	p := &ir.Program{
		Name: "fwd",
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoTCP)),
				ir.Blk("tcp", ir.Fwd(1)),
				ir.Blk("other", ir.Fwd(2))),
		),
	}
	oracle := dist.NewProfile().SetField("proto", dist.MustFromPieces([]dist.Piece{
		{Lo: 6, Hi: 6, Mass: 0.9}, {Lo: 17, Hi: 17, Mass: 0.1},
	}))
	prof, err := ProbProf(p.MustBuild(), oracle, Options{Seed: 1, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	tcp, _ := prof.ByLabel("tcp")
	if !almostEq(tcp.P.Float(), 0.9, 1e-9) {
		t.Fatalf("P(tcp) under 90%% profile = %v", tcp.P.Float())
	}
}

func TestShallowGuardConvergesInMainLoop(t *testing.T) {
	prog := counterProg(t, 3)
	prof, err := ProbProf(prog, nil, Options{Seed: 1, MaxIters: 10, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	// With N=3 the main loop reaches the sample blocks directly.
	ts, ok := prof.ByLabel("tcp_sample")
	if !ok || ts.P.IsZero() {
		t.Fatalf("tcp_sample unreached: %+v", ts)
	}
	if ts.Source == SrcTelescope {
		t.Fatal("shallow guard should not be telescoped")
	}
}

func TestTelescopeDeepGuard(t *testing.T) {
	prog := counterProg(t, 64)
	prof, err := ProbProf(prog, nil, Options{Seed: 1, MaxIters: 8, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := prof.ByLabel("tcp_sample")
	if !ok {
		t.Fatal("tcp_sample missing")
	}
	if ts.Source != SrcTelescope {
		t.Fatalf("deep guard should be telescoped, got %v", ts.Source)
	}
	// The telescoped estimate is ~(1/256)^64 — far below linear float
	// range in the tails but exactly representable in log space.
	wantLog := 64 * math.Log10(1.0/256)
	if math.Abs(ts.P.Log10()-wantLog) > 1.0 {
		t.Fatalf("telescoped log10 = %v, want ≈ %v", ts.P.Log10(), wantLog)
	}
	// UDP mirror: (255/256)^64 — moderately likely.
	us, _ := prof.ByLabel("udp_sample")
	wantU := math.Pow(255.0/256, 64)
	if math.Abs(us.P.Float()-wantU) > 0.05 {
		t.Fatalf("P(udp_sample) = %v, want ≈ %v", us.P.Float(), wantU)
	}
}

func TestTelescopeAblation(t *testing.T) {
	prog := counterProg(t, 64)
	prof, err := ProbProf(prog, nil, Options{
		Seed: 1, MaxIters: 6, DisableTelescope: true, DisableSampling: true,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := prof.ByLabel("tcp_sample")
	if ts.Source == SrcTelescope {
		t.Fatal("telescope disabled but used")
	}
	if !ts.P.IsZero() {
		t.Fatal("without telescoping the deep block should be unreached by 6 iters")
	}
}

func TestSamplingFallbackCoversDeepBlocks(t *testing.T) {
	// Deep-ish guard (N=40) with telescoping off: only sampling can see it.
	prog := counterProg(t, 40)
	oracle := dist.NewProfile().SetField("proto", dist.MustFromPieces([]dist.Piece{
		{Lo: 6, Hi: 6, Mass: 0.5}, {Lo: 17, Hi: 17, Mass: 0.5},
	}))
	prof, err := ProbProf(prog, oracle, Options{
		Seed: 3, MaxIters: 5, DisableTelescope: true,
		SampleBudget: 20000, Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := prof.ByLabel("tcp_sample")
	if ts.Source != SrcSampled {
		t.Fatalf("want sampled estimate, got %v (p=%v)", ts.Source, ts.P)
	}
	// Every 40th TCP packet at 50% TCP: about 1/80 per packet.
	if ts.P.Float() < 0.004 || ts.P.Float() > 0.05 {
		t.Fatalf("sampled P = %v, want ≈ 1/80", ts.P.Float())
	}
}

func TestTelescopeWithTraceOracle(t *testing.T) {
	// Retransmission counter: reroute after 32 retransmissions
	// (Blink's essence). With a 2% retrans oracle the telescoped estimate
	// is 0.02^32, not (2^-32)^32.
	p := &ir.Program{
		Name: "blinkette",
		Regs: []ir.RegDecl{{Name: "last", Bits: 32}, {Name: "seen", Bits: 1}, {Name: "retrans", Bits: 32}},
		Root: ir.Body(
			ir.If2(ir.And(ir.Eq(ir.R("seen"), ir.C(1)), ir.Eq(ir.F("seq"), ir.R("last"))),
				ir.Blk("retrans", ir.Add1("retrans")),
				ir.Blk("normal", ir.Fwd(1))),
			ir.Set("last", ir.F("seq")),
			ir.Set("seen", ir.C(1)),
			ir.If1(ir.Gt(ir.R("retrans"), ir.C(32)), ir.Blk("reroute", ir.Fwd(3))),
		),
	}
	prog := p.MustBuild()
	oracle := dist.NewProfile().SetPairEq("seq", 0.02)
	prof, err := ProbProf(prog, oracle, Options{Seed: 1, MaxIters: 6, Gamma: 6, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := prof.ByLabel("reroute")
	if !ok || rr.Source != SrcTelescope {
		t.Fatalf("reroute should be telescoped: %+v", rr)
	}
	wantLog := 33 * math.Log10(0.02)
	if math.Abs(rr.P.Log10()-wantLog) > 2 {
		t.Fatalf("reroute log10 = %v, want ≈ %v", rr.P.Log10(), wantLog)
	}
}

func TestFindGuards(t *testing.T) {
	prog := counterProg(t, 10)
	gs := FindGuards(prog)
	if len(gs) != 2 {
		t.Fatalf("want 2 guards, got %d", len(gs))
	}
	for _, g := range gs {
		if g.Thresh != 10 || g.Op != ir.CmpGe {
			t.Fatalf("bad guard %+v", g)
		}
	}
}

func TestRepetitionsNeeded(t *testing.T) {
	g := Guard{Op: ir.CmpGe, Thresh: 32}
	if g.RepetitionsNeeded(1) != 32 {
		t.Fatalf("Ge 32 by 1: %d", g.RepetitionsNeeded(1))
	}
	if g.RepetitionsNeeded(2) != 16 {
		t.Fatalf("Ge 32 by 2: %d", g.RepetitionsNeeded(2))
	}
	gt := Guard{Op: ir.CmpGt, Thresh: 32}
	if gt.RepetitionsNeeded(1) != 33 {
		t.Fatalf("Gt 32 by 1: %d", gt.RepetitionsNeeded(1))
	}
}

func TestProfileRankingStable(t *testing.T) {
	prog := counterProg(t, 64)
	a, err := ProbProf(prog, nil, Options{Seed: 1, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProbProf(prog, nil, Options{Seed: 1, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Ranking(), b.Ranking()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("profiling should be deterministic")
		}
	}
}

func TestPacketSampler(t *testing.T) {
	prog := counterProg(t, 4)
	oracle := dist.NewProfile().
		SetField("proto", dist.Point(6)).
		SetPairEq("seq", 0.5)
	s := NewPacketSampler(prog, oracle, rand.New(rand.NewSource(42)))
	retrans := 0
	var prev uint32
	for i := 0; i < 2000; i++ {
		p := s.Next()
		if v, _ := p.Field("proto"); v != 6 {
			t.Fatal("sampler should honor point dist")
		}
		if i > 0 && p.Seq == prev {
			retrans++
		}
		prev = p.Seq
	}
	if retrans < 800 || retrans > 1200 {
		t.Fatalf("retrans draws = %d, want ≈ 1000", retrans)
	}
}

func TestDistGuardTelescoping(t *testing.T) {
	// NetCache-style: a sketch-fed heat counter guards a hot-key report at
	// threshold 64; the main loop can never accumulate 64 misses, but the
	// store-counter post-pass estimates it from P(miss)^64.
	p := &ir.Program{
		Name:     "heat",
		Sketches: []ir.SketchDecl{{Name: "stats", Rows: 3, Cols: 1024}},
		Fields: append(append([]ir.Field(nil), ir.StdFields...),
			ir.Field{Name: "key", Bits: 16}),
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoTCP)),
				ir.Blk("miss",
					&ir.SketchUpdate{Sketch: "stats", Key: []ir.Expr{ir.F("key")}, Inc: ir.C(1), Dest: "heat"},
					ir.If1(ir.Ge(ir.M("heat"), ir.C(64)),
						ir.Blk("hot_report", ir.Digest()))),
				ir.Blk("fwd", ir.Fwd(1))),
		),
	}
	prog := p.MustBuild()
	prof, err := ProbProf(prog, nil, Options{Seed: 1, MaxIters: 5, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	hot, ok := prof.ByLabel("hot_report")
	if !ok || hot.Source != SrcTelescope || hot.P.IsZero() {
		t.Fatalf("hot_report should get a store-counter estimate: %+v", hot)
	}
	// P(miss)=1/256 per packet; 64 repetitions => log10 ≈ -154.
	wantLog := 64 * math.Log10(1.0/256)
	if math.Abs(hot.P.Log10()-wantLog) > 5 {
		t.Fatalf("hot_report log10 = %v, want ≈ %v", hot.P.Log10(), wantLog)
	}
}

func TestDistGuardModulo(t *testing.T) {
	// htable.p4-style: mirror every 16th packet of a flow.
	p := &ir.Program{
		Name:       "htmod",
		HashTables: []ir.HashTableDecl{{Name: "fc", Size: 256}},
		Root: ir.Body(
			&ir.HashAccess{
				Store: "fc", Key: ir.FlowKey(), Write: true, Inc: true, Value: ir.C(1), Dest: "cnt",
				OnEmpty: ir.Blk("newf", ir.Fwd(1)),
				OnHit: ir.Blk("seen",
					ir.If2(ir.Eq(ir.Mod(ir.M("cnt"), ir.C(16)), ir.C(0)),
						ir.Blk("sample", ir.Mirror(7)),
						ir.Blk("pass", ir.Fwd(1)))),
				OnCollide: ir.Blk("clash", ir.Recirc()),
			},
		),
	}
	prog := p.MustBuild()
	prof, err := ProbProf(prog, nil, Options{Seed: 1, MaxIters: 5, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	sample, ok := prof.ByLabel("sample")
	if !ok || sample.P.IsZero() {
		t.Fatalf("sample unreached: %+v", sample)
	}
	// Steady state ≈ P(hit)/16. P(hit) approaches locality 0.9.
	seen, _ := prof.ByLabel("seen")
	want := seen.P.Float() / 16
	if sample.Source == SrcTelescope {
		if math.Abs(sample.P.Float()-want) > want {
			t.Fatalf("P(sample) = %v, want ≈ %v", sample.P.Float(), want)
		}
	}
}

func TestFindDistGuards(t *testing.T) {
	p := &ir.Program{
		Name:     "dg",
		Sketches: []ir.SketchDecl{{Name: "s", Rows: 3, Cols: 64}},
		Root: ir.Body(
			&ir.SketchUpdate{Sketch: "s", Key: ir.FlowKey(), Inc: ir.C(2), Dest: "est"},
			ir.If1(ir.Ge(ir.M("est"), ir.C(100)), ir.Blk("hot", ir.Digest())),
			ir.If1(ir.Eq(ir.Mod(ir.M("est"), ir.C(8)), ir.C(0)), ir.Blk("periodic", ir.Mirror(7))),
		),
	}
	prog := p.MustBuild()
	gs := findDistGuards(prog)
	if len(gs) != 2 {
		t.Fatalf("want 2 dist guards, got %d", len(gs))
	}
	var thresh, mod *distGuard
	for i := range gs {
		if gs[i].ModN > 0 {
			mod = &gs[i]
		} else {
			thresh = &gs[i]
		}
	}
	if thresh == nil || thresh.Thresh != 100 || thresh.Inc != 2 {
		t.Fatalf("threshold guard wrong: %+v", thresh)
	}
	if mod == nil || mod.ModN != 8 {
		t.Fatalf("modulo guard wrong: %+v", mod)
	}
}

func TestDistGuardLocalityFactor(t *testing.T) {
	// The per-flow counter advance includes the key-repeat factor; with
	// update probability 1 the estimate is locality^rept, not 1.
	p := &ir.Program{
		Name:     "hh",
		Sketches: []ir.SketchDecl{{Name: "c", Rows: 3, Cols: 64}},
		Root: ir.Body(
			&ir.SketchUpdate{Sketch: "c", Key: ir.FlowKey(), Inc: ir.C(1), Dest: "est"},
			ir.If1(ir.Ge(ir.M("est"), ir.C(50)), ir.Blk("hot", ir.Digest())),
		),
	}
	prog := p.MustBuild()
	prof, err := ProbProf(prog, nil, Options{Seed: 1, MaxIters: 4, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	hot, _ := prof.ByLabel("hot")
	if hot.P.IsZero() || hot.P.Float() == 1 {
		t.Fatalf("hot estimate degenerate: %v", hot.P)
	}
	wantLog := 50 * math.Log10(0.9)
	if math.Abs(hot.P.Log10()-wantLog) > 1 {
		t.Fatalf("hot log10 = %v, want ≈ %v (0.9^50)", hot.P.Log10(), wantLog)
	}
}
