package core

import (
	"repro/internal/greybox"
	"repro/internal/ir"
	"repro/internal/prob"
)

// Store-counter telescoping: register telescoping (telescope.go) cannot see
// counters that live *inside* approximate data structures — a count-min
// estimate or a hash-table per-flow counter compared against a threshold
// (NetCache's hot-key heat ≥ 128, htable.p4's "every N-th packet of a
// flow"). This post-pass generalizes telescoping to those guards: the
// counter advances once per execution of its update block, whose
// steady-state per-packet probability the main loop has already measured,
// so
//
//	threshold guards  (m >= T):  Pr[guard] ≈ Pr[update]^ceil(T/inc)
//	modulo guards (m %% n == r): Pr[guard] ≈ Pr[update] / n   (steady state)
//
// Estimates are attributed like telescoped estimates and only fill blocks
// the main loop never reached.

// distGuard describes one threshold/modulo guard over a store-fed meta
// counter.
type distGuard struct {
	UpdateBlock *ir.Block // block containing the counter update
	Node        *ir.Block // guarded arm
	Inc         uint64    // counter increment per update (≥1)
	Thresh      uint64    // threshold (Ge/Gt/Eq form)
	ModN        uint64    // modulo divisor (modulo form; 0 = threshold form)
	Gt          bool      // strict threshold
}

// findDistGuards scans for guards over metadata fed by sketch estimates or
// hash-table increment counters.
func findDistGuards(p *ir.Program) []distGuard {
	// Map meta name -> (update block, increment).
	type feed struct {
		blk *ir.Block
		inc uint64
	}
	feeds := map[string]feed{}
	var walk func(s ir.Stmt, owner *ir.Block)
	walk = func(s ir.Stmt, owner *ir.Block) {
		switch t := s.(type) {
		case *ir.Block:
			for _, c := range t.Stmts {
				walk(c, t)
			}
		case *ir.If:
			walk(t.Then, owner)
			walk(t.Else, owner)
		case *ir.SketchUpdate:
			if t.Dest != "" {
				feeds[t.Dest] = feed{blk: owner, inc: constOr1(t.Inc)}
			}
		case *ir.HashAccess:
			if t.Dest != "" && t.Write && t.Inc {
				// The counter advances on the hit arm.
				if hb, ok := t.OnHit.(*ir.Block); ok {
					feeds[t.Dest] = feed{blk: hb, inc: constOr1(t.Value)}
				}
			}
			walk(t.OnEmpty, owner)
			walk(t.OnHit, owner)
			walk(t.OnCollide, owner)
		case *ir.BloomOp:
			walk(t.OnHit, owner)
			walk(t.OnMiss, owner)
		case *ir.SketchBranch:
			walk(t.OnTrue, owner)
			walk(t.OnFalse, owner)
		}
	}
	if root, ok := p.Root.(*ir.Block); ok {
		walk(root, root)
	}

	var out []distGuard
	p.Walk(func(s ir.Stmt) {
		f, ok := s.(*ir.If)
		if !ok {
			return
		}
		arm, ok := f.Then.(*ir.Block)
		if !ok {
			return
		}
		cmp, ok := f.Cond.(ir.Cmp)
		if !ok {
			return
		}
		// Threshold form: meta >= T (or > T, == T).
		if m, mok := cmp.A.(ir.MetaRef); mok {
			if k, kok := cmp.B.(ir.Const); kok {
				if fd, has := feeds[m.Name]; has &&
					(cmp.Op == ir.CmpGe || cmp.Op == ir.CmpGt || cmp.Op == ir.CmpEq) {
					out = append(out, distGuard{
						UpdateBlock: fd.blk, Node: arm, Inc: fd.inc,
						Thresh: k.V, Gt: cmp.Op == ir.CmpGt,
					})
				}
			}
		}
		// Modulo form: (meta % n) == r.
		if bin, bok := cmp.A.(ir.Bin); bok && bin.Op == ir.OpMod && cmp.Op == ir.CmpEq {
			m, mok := bin.A.(ir.MetaRef)
			n, nok := bin.B.(ir.Const)
			_, rok := cmp.B.(ir.Const)
			if mok && nok && rok && n.V > 0 {
				if fd, has := feeds[m.Name]; has {
					out = append(out, distGuard{
						UpdateBlock: fd.blk, Node: arm, Inc: fd.inc, ModN: n.V,
					})
				}
			}
		}
	})
	return out
}

func constOr1(e ir.Expr) uint64 {
	if c, ok := e.(ir.Const); ok && c.V > 0 {
		return c.V
	}
	return 1
}

// distGuardEstimates derives estimates for unreached dist-guarded blocks
// from the main loop's per-block probabilities. Store counters are
// per-key: a given flow's counter advances only when *that flow's* packet
// executes the update, so the per-packet advance probability is the update
// block's probability times the key-repeat (locality) factor.
func distGuardEstimates(p *ir.Program, locality float64, blockProb func(id int) (prob.P, bool)) map[int]prob.P {
	if locality <= 0 || locality > 1 {
		locality = greybox.DefaultLocality
	}
	out := map[int]prob.P{}
	for _, g := range findDistGuards(p) {
		if g.UpdateBlock == nil {
			continue
		}
		q, ok := blockProb(g.UpdateBlock.ID)
		if !ok || q.IsZero() {
			continue
		}
		var est prob.P
		if g.ModN > 0 {
			// Steady state: every ModN-th advance of some flow's counter.
			est = q.Mul(prob.FromFloat(1 / float64(g.ModN)))
		} else {
			need := g.Thresh
			if g.Gt {
				need++
			}
			if need == 0 {
				continue
			}
			rept := (need + g.Inc - 1) / g.Inc
			est = q.Mul(prob.FromFloat(locality)).Pow(float64(rept))
		}
		for _, blk := range ir.Blocks(g.Node) {
			if cur, has := out[blk.ID]; has {
				out[blk.ID] = cur.Add(est)
			} else {
				out[blk.ID] = est
			}
		}
	}
	return out
}
