package core

import (
	"encoding/json"
	"testing"
	"time"
)

// WireOptions must survive the round trip to profiler options and back for
// every knob it carries, and normalization must be idempotent.
func TestWireOptionsRoundTrip(t *testing.T) {
	o := Options{
		Alpha:            0.02,
		Epsilon:          0.001,
		Gamma:            7,
		Delta:            3,
		MaxIters:         42,
		Timeout:          90 * time.Second,
		SampleBudget:     123456,
		MaxPaths:         9999,
		DisableTelescope: true,
		DisableSampling:  true,
		Locality:         0.5,
		Seed:             17,
		Target:           "tofino",
	}
	got := WireFromOptions(o).Options()
	if got != o {
		t.Fatalf("round trip changed options:\n got %+v\nwant %+v", got, o)
	}

	// Runtime plumbing must not reach the wire: Workers differ, wire forms
	// do not.
	a, b := o, o
	a.Workers = 1
	b.Workers = 16
	if WireFromOptions(a) != WireFromOptions(b) {
		t.Fatal("Workers leaked into the wire form")
	}

	w := WireFromOptions(o).Normalized()
	if w != w.Normalized() {
		t.Fatal("Normalized is not idempotent")
	}
	// An all-zero wire form normalizes to the documented defaults.
	def := (WireOptions{}).Normalized()
	want := WireFromOptions(Options{}.withDefaults())
	if def != want {
		t.Fatalf("zero normalization:\n got %+v\nwant %+v", def, want)
	}
	// The empty target spelling and the explicit default are one canonical
	// wire form — and therefore one content address.
	if def.Target != "idealized" {
		t.Fatalf("normalized target = %q, want idealized", def.Target)
	}
	explicit := WireOptions{Target: "idealized"}.Normalized()
	if explicit != def {
		t.Fatalf("explicit idealized normalizes differently:\n got %+v\nwant %+v", explicit, def)
	}
}

// The report's options block is derived from the wire form; the two may
// never drift. Every wire JSON key must appear in the report options map
// and vice versa.
func TestOptionsMapMatchesWireSchema(t *testing.T) {
	m := optionsMap(Options{})
	data, err := json.Marshal(WireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	for k := range wire {
		if _, ok := m[k]; !ok {
			t.Errorf("wire key %q missing from report options", k)
		}
	}
	for k := range m {
		if _, ok := wire[k]; !ok {
			t.Errorf("report options key %q missing from wire schema", k)
		}
	}
	// Integral knobs stay integers in the report.
	if _, ok := m["max_iters"].(int); !ok {
		t.Fatalf("max_iters is %T, want int", m["max_iters"])
	}
}
