package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/prob"
	"repro/internal/solver"
	"repro/internal/sym"
)

// Guard describes one counter-guarded branch (IsGuard in Figure 3):
// a conditional of the form `reg op const` whose Then arm is the guarded
// code block.
type Guard struct {
	Reg    string
	Op     ir.CmpOp
	Thresh uint64
	Node   *ir.Block
}

// FindGuards scans a program's branches for register guards with the
// operators the paper telescopes: ">", ">=", "==".
func FindGuards(p *ir.Program) []Guard {
	var out []Guard
	for _, br := range p.Branches() {
		cmp, ok := br.Cond.(ir.Cmp)
		if !ok || br.Then == nil {
			continue
		}
		reg, rok := cmp.A.(ir.RegRef)
		k, kok := cmp.B.(ir.Const)
		op := cmp.Op
		if !rok || !kok {
			// Try the mirrored form const op reg.
			k2, kok2 := cmp.A.(ir.Const)
			reg2, rok2 := cmp.B.(ir.RegRef)
			if !kok2 || !rok2 {
				continue
			}
			reg, k = reg2, k2
			op = mirrorOp(cmp.Op)
		}
		switch op {
		case ir.CmpGt, ir.CmpGe, ir.CmpEq:
			out = append(out, Guard{Reg: reg.Reg, Op: op, Thresh: k.V, Node: br.Then})
		}
	}
	return out
}

func mirrorOp(op ir.CmpOp) ir.CmpOp {
	switch op {
	case ir.CmpLt:
		return ir.CmpGt
	case ir.CmpLe:
		return ir.CmpGe
	case ir.CmpGt:
		return ir.CmpLt
	case ir.CmpGe:
		return ir.CmpLe
	}
	return op
}

// repetitionsNeeded returns how many unit increments drive a fresh counter
// to satisfy the guard.
func (g Guard) RepetitionsNeeded(incPerPeriod uint64) uint64 {
	if incPerPeriod == 0 {
		incPerPeriod = 1
	}
	need := g.Thresh
	if g.Op == ir.CmpGt {
		need = g.Thresh + 1
	}
	if need == 0 {
		return 0
	}
	return (need + incPerPeriod - 1) / incPerPeriod
}

// telescope runs the Telescope pass of Figure 3: probe the program with a
// short symbolic sequence (γ packets), detect paths whose constraints
// repeat with some period, and generalize each periodic path to the length
// needed to trigger every counter-guarded deep block, estimating
// Pr[N] = Σ_paths q^rept.
func telescope(ctx context.Context, progIn *ir.Program, oracle dist.Oracle, opt Options, pool *par.Pool) map[int]prob.P {
	guards := FindGuards(progIn)
	if len(guards) == 0 {
		return nil
	}
	// Only guards the main loop cannot reach are telescoped.
	var deep []Guard
	for _, g := range guards {
		if g.RepetitionsNeeded(1) > uint64(opt.MaxIters) {
			deep = append(deep, g)
		}
	}
	opt.Tracer.Event("telescope", "guards",
		obs.F("found", float64(len(guards))), obs.F("deep", float64(len(deep))))
	if len(deep) == 0 {
		return nil
	}

	// The probe runs unmerged (periodicity analysis needs intact path
	// conditions), so branchy programs can explode; bound it and fall back
	// to the longest completed probe length (>= 3 packets) when it does.
	probeBudget := opt.Timeout / 2
	if probeBudget > 5*time.Second {
		probeBudget = 5 * time.Second
	}
	maxProbePaths := opt.MaxPaths
	if maxProbePaths > 1<<16 {
		maxProbePaths = 1 << 16
	}
	engine := sym.NewEngine(progIn, sym.Options{
		Greybox:  true,
		MaxPaths: maxProbePaths,
		Locality: opt.Locality,
		Deadline: time.Now().Add(probeBudget),
		Ctx:      ctx,
		Pool:     pool,
		Target:   opt.targetModel(),
	})
	counter := mc.NewCounter(engine.Space, oracle)
	counter.Seed = opt.Seed

	paths := engine.Initial()
	gamma := 0
	for step := 0; step < opt.Gamma; step++ {
		nps, err := engine.Step(paths, step)
		if err != nil {
			break
		}
		paths = nps
		gamma = step + 1
	}
	if gamma < 3 {
		return nil
	}
	opt.Gamma = gamma

	// Periodicity detection and the per-pattern model count fan out across
	// the pool; the dedup and the estimate accumulation stay sequential in
	// path order (prob.P addition is not associative). Duplicate patterns
	// cost one extra cache hit each instead of being skipped up front —
	// the single-flight memo makes that near-free.
	type probeResult struct {
		ok  bool
		d   int
		sig string
		q   prob.P
	}
	results := make([]probeResult, len(paths))
	if err := pool.Run(ctx, len(paths), func(i int) error {
		path := paths[i]
		d, ok := periodOf(path, opt.Gamma)
		if !ok {
			return nil
		}
		cons := blockConstraints(path, 1, d)
		q := counter.ProbOf(cons)
		// Greybox weight amortized per period.
		q = q.Mul(path.Grey.Pow(float64(d) / float64(opt.Gamma)))
		results[i] = probeResult{ok: true, d: d,
			sig: fmt.Sprintf("%d|%s", d, canonicalBlock(cons)), q: q}
		return nil
	}); err != nil {
		return nil
	}

	est := map[int]prob.P{}
	seenPattern := map[string]bool{}
	for i, path := range paths {
		r := results[i]
		if !r.ok {
			continue
		}
		// Paths differing only in their warm-up prefix stretch to the same
		// infinite behaviour; count each stationary pattern once.
		if seenPattern[r.sig] {
			continue
		}
		seenPattern[r.sig] = true
		numBlocks := opt.Gamma / r.d
		q := r.q
		if q.IsZero() {
			continue
		}
		for _, g := range deep {
			inc := regDeltaPerBlock(progIn, path, g.Reg, numBlocks)
			if inc == 0 {
				continue
			}
			rept := g.RepetitionsNeeded(inc)
			contribution := q.Pow(float64(rept))
			for _, blk := range ir.Blocks(g.Node) {
				if cur, ok := est[blk.ID]; ok {
					est[blk.ID] = cur.Add(contribution)
				} else {
					est[blk.ID] = contribution
				}
			}
		}
	}
	return est
}

// regDeltaPerBlock computes the per-period increment of a register along a
// probe path (0 when the register did not increase or is symbolic).
func regDeltaPerBlock(p *ir.Program, path *sym.Path, reg string, numBlocks int) uint64 {
	decl, ok := p.Reg(reg)
	if !ok {
		return 0
	}
	v, ok2 := path.Regs[reg]
	if !ok2 || !v.IsConcrete() || v.C <= decl.Init {
		return 0
	}
	delta := v.C - decl.Init
	// The register must increment in (almost) every block for the path to
	// drive the guard: warm-up effects may shave at most one block's worth
	// (e.g. the first packet cannot be a retransmission), but a register
	// touched only in the warm-up block is not periodic progress.
	if delta+1 < uint64(numBlocks) {
		return 0
	}
	return (delta + uint64(numBlocks) - 1) / uint64(numBlocks)
}

// periodOf detects the shortest period d (dividing γ) such that the path's
// constraints repeat from one d-packet block to the next (BinarySearch +
// "pc repeats pref" in Figure 3). Block 0 is excluded from the comparison —
// it contains warm-up constraints — so at least two stationary blocks are
// required to certify a period.
func periodOf(path *sym.Path, gamma int) (int, bool) {
	for d := 1; d <= gamma/3; d++ {
		if gamma%d != 0 {
			continue
		}
		if blocksRepeat(path, gamma, d) {
			return d, true
		}
	}
	return 0, false
}

func blocksRepeat(path *sym.Path, gamma, d int) bool {
	numBlocks := gamma / d
	if numBlocks < 3 {
		return false
	}
	ref := canonicalBlock(blockConstraints(path, 1, d))
	for k := 2; k < numBlocks; k++ {
		if canonicalBlock(blockConstraints(path, k, d)) != ref {
			return false
		}
	}
	return true
}

// blockConstraints extracts the constraints whose latest packet reference
// falls in block k (packets [k·d, (k+1)·d)), rebased so that the block
// starts at packet 0. References to earlier packets become negative
// indices, which preserves cross-block stitching patterns such as
// "pkt_i.seq == pkt_{i-1}.seq".
func blockConstraints(path *sym.Path, k, d int) []solver.Constraint {
	lo, hi := k*d, (k+1)*d-1
	var out []solver.Constraint
	for _, c := range path.PC {
		maxPkt := -1 << 30
		for _, v := range c.E.Vars() {
			if v.Pkt > maxPkt {
				maxPkt = v.Pkt
			}
		}
		if maxPkt < lo || maxPkt > hi {
			continue
		}
		out = append(out, rebase(c, -k*d))
	}
	return out
}

func rebase(c solver.Constraint, shift int) solver.Constraint {
	e := solver.LinExpr{K: c.E.K}
	for _, t := range c.E.Terms {
		e.Terms = append(e.Terms, solver.Term{
			Var:  solver.Var{Pkt: t.Var.Pkt + shift, Field: t.Var.Field},
			Coef: t.Coef,
		})
	}
	return solver.Constraint{E: e, Op: c.Op}
}

// canonicalBlock renders a block's constraint set order-independently, with
// havoc variables renamed by order of appearance so that distinct havoc
// instances across blocks compare equal.
func canonicalBlock(cs []solver.Constraint) string {
	rename := map[string]string{}
	var ss []string
	for _, c := range cs {
		ss = append(ss, canonicalConstraint(c, rename))
	}
	sort.Strings(ss)
	return strings.Join(ss, "&")
}

func canonicalConstraint(c solver.Constraint, rename map[string]string) string {
	var b strings.Builder
	for _, t := range c.E.Terms {
		f := t.Var.Field
		if strings.HasPrefix(f, "__") {
			if alias, ok := rename[f]; ok {
				f = alias
			} else {
				alias := fmt.Sprintf("__x%d", len(rename))
				rename[f] = alias
				f = alias
			}
		}
		fmt.Fprintf(&b, "%+d*p%d.%s", t.Coef, t.Var.Pkt, f)
	}
	fmt.Fprintf(&b, "%+d%s0", c.E.K, c.Op)
	return b.String()
}
