package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBounds are the fixed exponential bucket upper bounds (seconds-scale:
// 1 microsecond through ~100 seconds, three buckets per decade).
var histBounds = func() []float64 {
	var b []float64
	for exp := -6; exp <= 2; exp++ {
		for _, m := range []float64{1, 2, 5} {
			b = append(b, m*math.Pow(10, float64(exp)))
		}
	}
	return b
}()

// Histogram accumulates observations into fixed exponential buckets; it is
// sized for latency-style data (microseconds to minutes) but accepts any
// non-negative value.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	buckets  []int64 // len(histBounds)+1, allocated on first observation
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(histBounds, v)
	h.mu.Lock()
	if h.buckets == nil {
		h.buckets = make([]int64, len(histBounds)+1)
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[idx]++
	h.mu.Unlock()
}

// Summary returns count, sum, and approximate p50/p99. Quantiles are bucket
// upper bounds clamped to the observed [min, max] range, so they are always
// finite and defined: an empty histogram reports 0, a single observation
// reports that exact value, and values past the last bucket bound report
// the observed maximum rather than +Inf.
func (h *Histogram) Summary() (count int64, sum, p50, p99 float64) {
	if h == nil {
		return 0, 0, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	count, sum = h.count, h.sum
	p50 = h.quantileLocked(0.5)
	p99 = h.quantileLocked(0.99)
	return
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if h.count == 1 {
		return h.max
	}
	est := h.max
	target := int64(math.Ceil(q * float64(h.count)))
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= target {
			if i < len(histBounds) {
				est = histBounds[i]
			}
			break
		}
	}
	// Clamp the bucket bound to the observed range: the estimate must never
	// exceed the largest value actually seen (or undercut the smallest).
	return math.Min(math.Max(est, h.min), h.max)
}

// Buckets returns the histogram's bucket upper bounds and the cumulative
// count at or below each bound, plus the total count as the final entry
// (the "+Inf" bucket) — the shape Prometheus exposition needs.
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = append([]float64(nil), histBounds...)
	cumulative = make([]int64, len(histBounds)+1)
	if h == nil {
		return bounds, cumulative
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var run int64
	for i := range cumulative {
		if h.buckets != nil {
			run += h.buckets[i]
		}
		cumulative[i] = run
	}
	return bounds, cumulative
}

// ViewFunc snapshots an external stats source into a flat name->value map.
// Views are how the per-subsystem stats structs (core/sym/mc/solver) appear
// in the registry without being rewritten onto atomic primitives.
type ViewFunc func() map[string]float64

// Registry is a named collection of counters, gauges, histograms, and
// views. A nil *Registry ignores all updates and snapshots empty, so
// instrumented code passes it through unconditionally.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	views    map[string]ViewFunc
	help     map[string]string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		views:    map[string]ViewFunc{},
		help:     map[string]string{},
	}
}

// SetHelp attaches a HELP string to a metric name (the pre-sanitization
// base name, without any {label} suffix); WritePrometheus emits it.
func (r *Registry) SetHelp(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry returns a nil counter whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterView attaches a snapshot function under a name prefix; its keys
// appear in Snapshot as "<name>.<key>".
func (r *Registry) RegisterView(name string, view ViewFunc) {
	if r == nil || view == nil {
		return
	}
	r.mu.Lock()
	r.views[name] = view
	r.mu.Unlock()
}

// SetAll stores every entry of vals as a gauge named "<prefix>.<key>"
// (bare "<key>" when prefix is empty) — the bulk form used to publish a
// Stats.Metrics() map once per iteration.
func (r *Registry) SetAll(prefix string, vals map[string]float64) {
	if r == nil {
		return
	}
	if prefix != "" {
		prefix += "."
	}
	for k, v := range vals {
		r.Gauge(prefix + k).Set(v)
	}
}

// Snapshot flattens the registry into a single map: counters and gauges by
// name, histograms as .count/.sum/.p50/.p99, and each view's keys under its
// prefix. Entries are applied in a fixed layering — counters, then gauges,
// then histograms, then views in sorted name order — so when names collide
// (a SetAll gauge shadowing a live view, say) the winner is deterministic:
// later layers and later-sorted names overwrite earlier ones.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return map[string]float64{}
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	views := make(map[string]ViewFunc, len(r.views))
	for k, v := range r.views {
		views[k] = v
	}
	r.mu.RUnlock()

	out := map[string]float64{}
	for _, k := range sortedKeys(counters) {
		out[k] = float64(counters[k].Value())
	}
	for _, k := range sortedKeys(gauges) {
		out[k] = gauges[k].Value()
	}
	for _, k := range sortedKeys(hists) {
		count, sum, p50, p99 := hists[k].Summary()
		out[k+".count"] = float64(count)
		out[k+".sum"] = sum
		out[k+".p50"] = p50
		out[k+".p99"] = p99
	}
	for _, name := range sortedKeys(views) {
		vals := views[name]()
		for _, k := range sortedKeys(vals) {
			out[name+"."+k] = vals[k]
		}
	}
	return out
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Render returns the snapshot as sorted "name value" lines (the /metrics
// plain-text format).
func (r *Registry) Render() string {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %g\n", k, snap[k])
	}
	return b.String()
}

var expvarOnce sync.Once

// PublishExpvar exposes the registry's snapshot as the expvar variable
// "p4wn" (visible at /debug/vars). Safe to call more than once; only the
// first registry wins, matching expvar's global-namespace semantics.
func (r *Registry) PublishExpvar() {
	if r == nil {
		return
	}
	expvarOnce.Do(func() {
		expvar.Publish("p4wn", expvar.Func(func() any { return r.Snapshot() }))
	})
}
