package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus validates a Prometheus text-format (version 0.0.4)
// exposition and returns every conformance problem found. It checks line
// syntax, metric and label name charsets, HELP/TYPE placement and
// uniqueness, duplicate series, and histogram invariants (le label
// present, +Inf bucket, monotone cumulative buckets, _count consistent
// with the +Inf bucket). An empty slice means the payload conforms.
//
// This is the checker behind cmd/promlint, which CI points at a booted
// p4wnd's /metrics endpoint.
func LintPrometheus(data []byte) []error {
	l := &promLinter{
		types:  map[string]string{},
		helped: map[string]bool{},
		series: map[string]int{},
	}
	for i, line := range strings.Split(string(data), "\n") {
		l.lineNo = i + 1
		l.checkLine(line)
	}
	l.checkHistograms()
	return l.errs
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type promSeries struct {
	name   string
	labels map[string]string
	value  float64
	lineNo int
}

type promLinter struct {
	lineNo int
	errs   []error
	types  map[string]string // family -> declared type
	helped map[string]bool
	series map[string]int // rendered series key -> first line
	seen   []promSeries
	sawFor map[string]bool // families with at least one sample
}

func (l *promLinter) errf(format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: %s", l.lineNo, fmt.Sprintf(format, args...)))
}

func (l *promLinter) checkLine(line string) {
	if strings.TrimSpace(line) == "" {
		return
	}
	if strings.HasPrefix(line, "#") {
		l.checkComment(line)
		return
	}
	l.checkSample(line)
}

func (l *promLinter) checkComment(line string) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return // bare comment, allowed
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			l.errf("HELP without metric name")
			return
		}
		name := fields[2]
		if !promNameRe.MatchString(name) {
			l.errf("HELP for invalid metric name %q", name)
		}
		if l.helped[name] {
			l.errf("duplicate HELP for %q", name)
		}
		l.helped[name] = true
	case "TYPE":
		if len(fields) < 4 {
			l.errf("TYPE needs a metric name and a type")
			return
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !promNameRe.MatchString(name) {
			l.errf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.errf("unknown metric type %q for %q", typ, name)
		}
		if _, dup := l.types[name]; dup {
			l.errf("duplicate TYPE for %q", name)
		}
		if l.sawFor[name] {
			l.errf("TYPE for %q after its samples", name)
		}
		l.types[name] = typ
	}
	// other comments are free-form
}

func (l *promLinter) checkSample(line string) {
	name, rest := splitSampleName(line)
	if name == "" {
		l.errf("cannot parse sample %q", line)
		return
	}
	if !promNameRe.MatchString(name) {
		l.errf("invalid metric name %q", name)
		return
	}
	labels, rest, ok := parseSampleLabels(rest)
	if !ok {
		l.errf("malformed labels in %q", line)
		return
	}
	for k := range labels {
		if !promLabelRe.MatchString(k) {
			l.errf("invalid label name %q in %q", k, name)
		}
	}
	parts := strings.Fields(rest)
	if len(parts) < 1 || len(parts) > 2 {
		l.errf("expected value [timestamp] after %q, got %q", name, rest)
		return
	}
	val, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		l.errf("unparseable value %q for %q", parts[0], name)
		return
	}
	if len(parts) == 2 {
		if _, err := strconv.ParseInt(parts[1], 10, 64); err != nil {
			l.errf("unparseable timestamp %q for %q", parts[1], name)
		}
	}

	key := seriesKey(name, labels)
	if first, dup := l.series[key]; dup {
		l.errf("duplicate series %s (first at line %d)", key, first)
	} else {
		l.series[key] = l.lineNo
	}
	if l.sawFor == nil {
		l.sawFor = map[string]bool{}
	}
	l.sawFor[familyOf(name, l.types)] = true
	l.seen = append(l.seen, promSeries{name: name, labels: labels, value: val, lineNo: l.lineNo})
}

// familyOf maps a sample name to its family: histogram/summary samples
// carry _bucket/_sum/_count suffixes on the declared family name.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

// splitSampleName peels the metric name off the front of a sample line.
func splitSampleName(line string) (name, rest string) {
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '{' || c == ' ' || c == '\t' {
			return line[:i], line[i:]
		}
	}
	return line, ""
}

// parseSampleLabels parses an optional {k="v",...} block, returning the
// labels and the remainder of the line.
func parseSampleLabels(s string) (map[string]string, string, bool) {
	if !strings.HasPrefix(s, "{") {
		return nil, s, true
	}
	end := -1
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			if s[i-1] != '\\' {
				inQuote = !inQuote
			}
		case '}':
			if !inQuote {
				end = i
			}
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return nil, "", false
	}
	labels := map[string]string{}
	for _, pair := range splitLabelPairs(s[1:end]) {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		eq := strings.Index(pair, "=")
		if eq < 0 {
			return nil, "", false
		}
		k := strings.TrimSpace(pair[:eq])
		v := strings.TrimSpace(pair[eq+1:])
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return nil, "", false
		}
		unq, err := unquoteLabelValue(v[1 : len(v)-1])
		if err != nil {
			return nil, "", false
		}
		labels[k] = unq
	}
	return labels, s[end+1:], true
}

func unquoteLabelValue(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("bad escape \\%c", s[i])
		}
	}
	return b.String(), nil
}

func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// checkHistograms verifies per-family histogram invariants across all
// collected samples.
func (l *promLinter) checkHistograms() {
	for fam, typ := range l.types {
		if typ != "histogram" {
			continue
		}
		// Group bucket samples by their label set minus le.
		type group struct {
			buckets  []promSeries
			count    *promSeries
			inf      *promSeries
			anything bool
		}
		groups := map[string]*group{}
		get := func(labels map[string]string) *group {
			sub := map[string]string{}
			for k, v := range labels {
				if k != "le" {
					sub[k] = v
				}
			}
			key := seriesKey(fam, sub)
			g := groups[key]
			if g == nil {
				g = &group{}
				groups[key] = g
			}
			return g
		}
		for i := range l.seen {
			s := l.seen[i]
			switch s.name {
			case fam + "_bucket":
				g := get(s.labels)
				g.anything = true
				if le, ok := s.labels["le"]; !ok {
					l.errs = append(l.errs, fmt.Errorf("line %d: %s_bucket without le label", s.lineNo, fam))
				} else if le == "+Inf" {
					g.inf = &l.seen[i]
				}
				g.buckets = append(g.buckets, s)
			case fam + "_count":
				g := get(s.labels)
				g.anything = true
				g.count = &l.seen[i]
			case fam + "_sum":
				get(s.labels).anything = true
			}
		}
		for key, g := range groups {
			if !g.anything {
				continue
			}
			if g.inf == nil {
				l.errs = append(l.errs, fmt.Errorf("histogram %s: missing +Inf bucket", key))
			}
			if g.count == nil {
				l.errs = append(l.errs, fmt.Errorf("histogram %s: missing _count", key))
			}
			if g.inf != nil && g.count != nil && g.inf.value != g.count.value {
				l.errs = append(l.errs, fmt.Errorf("histogram %s: _count %g != +Inf bucket %g",
					key, g.count.value, g.inf.value))
			}
			// Buckets must be cumulative: sort by le and check monotonicity.
			type bkt struct {
				le float64
				v  float64
			}
			var bkts []bkt
			for _, s := range g.buckets {
				le := s.labels["le"]
				if le == "" || le == "+Inf" {
					continue
				}
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					l.errs = append(l.errs, fmt.Errorf("line %d: unparseable le %q", s.lineNo, le))
					continue
				}
				bkts = append(bkts, bkt{f, s.value})
			}
			sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
			for i := 1; i < len(bkts); i++ {
				if bkts[i].v < bkts[i-1].v {
					l.errs = append(l.errs, fmt.Errorf(
						"histogram %s: bucket le=%g count %g < previous bucket %g",
						key, bkts[i].le, bkts[i].v, bkts[i-1].v))
				}
			}
			if g.inf != nil && len(bkts) > 0 && g.inf.value < bkts[len(bkts)-1].v {
				l.errs = append(l.errs, fmt.Errorf(
					"histogram %s: +Inf bucket %g < largest finite bucket %g",
					key, g.inf.value, bkts[len(bkts)-1].v))
			}
		}
	}
}
