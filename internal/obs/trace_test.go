package obs

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// scriptedClock gives a tracer a deterministic clock: every read advances
// time by step, so span starts and durations are exact.
func scriptedClock(tr *Tracer, step time.Duration) {
	t0 := time.Unix(1000, 0)
	tr.start = t0
	ticks := 0
	tr.clock = func() time.Time {
		ticks++
		return t0.Add(time.Duration(ticks) * step)
	}
}

func TestSpanTreeContextPropagation(t *testing.T) {
	tr := NewTracer(nil)
	ctx, root := tr.StartSpanCtx(context.Background(), "root")
	childCtx, child := tr.StartSpanCtx(ctx, "child")
	_, grand := tr.StartSpanCtx(childCtx, "grandchild")
	// A sibling started from the root context parents under root, not child.
	_, sib := tr.StartSpanCtx(ctx, "sibling")
	grand.End()
	sib.End()
	child.End()
	root.End()

	recs := tr.Spans()
	if len(recs) != 4 {
		t.Fatalf("got %d spans, want 4", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %d, want root %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Errorf("grandchild parent = %d, want child %d", byName["grandchild"].Parent, byName["child"].ID)
	}
	if byName["sibling"].Parent != byName["root"].ID {
		t.Errorf("sibling parent = %d, want root %d", byName["sibling"].Parent, byName["root"].ID)
	}
	for _, r := range recs {
		if r.Open {
			t.Errorf("span %q still open after End", r.Name)
		}
	}
}

// The span tree must survive a worker-pool fan-out: children started from
// the same context on many goroutines all parent under the same span.
func TestSpanTreeAcrossGoroutines(t *testing.T) {
	tr := NewTracer(nil)
	ctx, batch := tr.StartSpanCtx(context.Background(), "batch")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := tr.StartSpanCtx(ctx, "task")
			s.Annotate(F("n", 1))
			s.End()
		}()
	}
	wg.Wait()
	batch.End()

	tasks := 0
	for _, r := range tr.Spans() {
		if r.Name != "task" {
			continue
		}
		tasks++
		if r.Parent != batch.id {
			t.Errorf("task parent = %d, want batch %d", r.Parent, batch.id)
		}
	}
	if tasks != 8 {
		t.Fatalf("recorded %d task spans, want 8", tasks)
	}
}

// A foreign span in the context (from another tracer) must not become the
// parent — span IDs are tracer-local.
func TestSpanCtxIgnoresForeignTracer(t *testing.T) {
	other := NewTracer(nil)
	_, foreign := other.StartSpanCtx(context.Background(), "foreign")
	ctx := WithSpan(context.Background(), foreign)

	tr := NewTracer(nil)
	_, s := tr.StartSpanCtx(ctx, "mine")
	s.End()
	recs := tr.Spans()
	if len(recs) != 1 || recs[0].Parent != 0 {
		t.Fatalf("span parented under a foreign tracer's span: %+v", recs)
	}
}

// Instrumentation must be free when tracing is off: a nil tracer's
// StartSpanCtx allocates nothing and returns the context unchanged.
func TestNilTracerSpanCtxZeroAlloc(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		c, s := tr.StartSpanCtx(ctx, "noop")
		if c != ctx {
			t.Fatal("nil tracer changed the context")
		}
		s.Annotate(F("k", 1))
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer span cost %v allocs, want 0", allocs)
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil tracer WriteChromeTrace: %v", err)
	}
}

func TestSpanRecordCap(t *testing.T) {
	tr := NewTracer(nil)
	for i := 0; i < maxSpanRecords+10; i++ {
		tr.StartSpan("s").End()
	}
	if got := len(tr.Spans()); got != maxSpanRecords {
		t.Fatalf("recorded %d spans, want cap %d", got, maxSpanRecords)
	}
	if got := tr.DroppedSpans(); got != 10 {
		t.Fatalf("dropped %d spans, want 10", got)
	}
	// Stage totals still accumulate past the cap.
	if tr.StageTotals()["s"] <= 0 {
		t.Fatal("stage totals stopped accumulating past the span cap")
	}
}

// The golden Chrome export: a scripted clock makes every timestamp exact,
// so the bytes served by /debug/trace/{id} are asserted verbatim. Refresh
// with UPDATE_GOLDEN=1 go test -run ChromeTraceGolden -count=1 ./internal/obs
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer(nil)
	scriptedClock(tr, 10*time.Millisecond)
	tr.SetTraceID("deadbeefcafe0123")

	ctx, job := tr.StartSpanCtx(context.Background(), "job")
	_, queued := tr.StartSpanCtx(ctx, "queued")
	queued.End()
	runCtx, run := tr.StartSpanCtx(ctx, "run")
	iterCtx, iter := tr.StartSpanCtx(runCtx, "iter")
	_, batch := tr.StartSpanCtx(iterCtx, "sym.batch")
	batch.Annotate(F("tasks", 64), F("workers", 4))
	batch.End()
	iter.Annotate(F("paths", 12))
	iter.End()
	run.End()
	job.End()
	_, open := tr.StartSpanCtx(ctx, "dangling")
	_ = open // deliberately left open: exports with "open": true

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// The export groups spans onto virtual threads by root ancestor and tags
// every event with pid 1; sanity-check the structural invariants Perfetto
// relies on.
func TestChromeTraceStructure(t *testing.T) {
	tr := NewTracer(nil)
	ctx, a := tr.StartSpanCtx(context.Background(), "a")
	_, a1 := tr.StartSpanCtx(ctx, "a1")
	a1.End()
	a.End()
	b := tr.StartSpan("b")
	b.End()

	events := tr.ChromeTrace()
	var meta, complete int
	tids := map[uint64]bool{}
	for _, ev := range events {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur == nil {
				t.Errorf("complete event %q missing dur", ev.Name)
			}
			tids[ev.Tid] = true
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.Pid != 1 {
			t.Errorf("event %q pid = %d, want 1", ev.Name, ev.Pid)
		}
	}
	if complete != 3 {
		t.Errorf("got %d X events, want 3", complete)
	}
	// process_name + one thread_name per root span (a and b).
	if meta != 3 {
		t.Errorf("got %d M events, want 3", meta)
	}
	if len(tids) != 2 {
		t.Errorf("got %d distinct tids, want 2 (one per root span)", len(tids))
	}
}
