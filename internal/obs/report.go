package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SchemaVersion is the run-report schema version. Bump it on any breaking
// change to the Report or BenchReport JSON shape; CI diffs reports across
// revisions and needs to detect incompatibility.
//
// v2 added the optional "job" block (service-layer job metadata) to Report.
// v3 added the optional "ifc" block (information-flow leak summary) to
// Report.
// v4 added the optional "hot_blocks" block (per-CFG-block exploration cost)
// and the job block's "trace_id" field.
// v5 added the top-level "target" field to Report and BenchReport: the
// device model (idealized/tofino/ebpf) the run was executed against.
const SchemaVersion = 5

// Report is the versioned machine-readable artifact of one profiling run:
// what was profiled, with which options, how the estimate converged, where
// the time went, and every metric the run accumulated. It is the seam
// p4wnbench and CI diff perf trajectories through.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"` // "profile"
	Program       string `json:"program"`
	// Target is the device model the profile describes ("idealized",
	// "tofino", "ebpf"): the same program yields a different profile per
	// target, so every report names the one that produced it (schema v5).
	Target      string `json:"target"`
	GeneratedAt string `json:"generated_at,omitempty"` // RFC3339; empty in golden tests

	Options map[string]any `json:"options,omitempty"`

	// Job carries service-layer metadata when the run was executed by the
	// p4wnd daemon rather than a one-shot CLI invocation; nil otherwise, so
	// offline and served reports differ only in this block (and the
	// timestamps), never in the profile itself.
	Job *JobMeta `json:"job,omitempty"`

	WallSec float64            `json:"wall_sec"`
	Stages  map[string]float64 `json:"stages_sec"` // per-stage wall seconds

	Iterations []IterationRecord `json:"iterations,omitempty"`

	Converged bool         `json:"converged"`
	Coverage  float64      `json:"coverage"`
	Nodes     []NodeReport `json:"nodes"`

	// IFC carries the information-flow lint summary when the profiled
	// program declares a security policy; nil otherwise (schema v3).
	IFC *IFCSummary `json:"ifc,omitempty"`

	// HotBlocks ranks CFG blocks by attributed exploration cost — visits,
	// forks, and solver wall time accumulated inside the symbolic engine —
	// most expensive first (schema v4). Blocks never visited are omitted.
	HotBlocks []HotBlockReport `json:"hot_blocks,omitempty"`

	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// HotBlockReport is one CFG block's exploration cost: how often the engine
// entered it, how many path forks it spawned, and how much solver wall time
// its feasibility checks consumed. Visits and forks are deterministic for a
// fixed seed at any worker count; solver seconds are wall time and vary.
type HotBlockReport struct {
	Rank      int     `json:"rank"`
	ID        int     `json:"id"`
	Label     string  `json:"label"`
	Visits    int64   `json:"visits"`
	Forks     int64   `json:"forks"`
	SolverSec float64 `json:"solver_sec"`
}

// IFCSummary summarizes the information-flow pass over the profiled
// program: the policy that was checked and every leak found, ranked by the
// probability real traffic exercises the leaking path (leaks are weighted
// against this report's own block probabilities).
type IFCSummary struct {
	Secrets []string     `json:"secrets"`
	Sinks   []string     `json:"sinks"`
	Leaks   []LeakReport `json:"leaks"`
	// MaxP / MaxLog10P give the most probable leak's path probability
	// (0 / clamped when no leak is weighted) — the single number a CI
	// gate compares against a threshold.
	MaxP      float64 `json:"max_p"`
	MaxLog10P float64 `json:"max_log10_p"`
}

// LeakReport is one secret-to-sink flow.
type LeakReport struct {
	Source  string `json:"source"` // "kind:name"
	Sink    string `json:"sink"`
	Node    int    `json:"node"` // sink CFG node
	Block   string `json:"block"`
	Flow    string `json:"flow"`    // "explicit" | "implicit"
	Witness string `json:"witness"` // source→sink chain as "label(#id) -> ..."
	// P / Log10P weight the leak by its witness path's block
	// probabilities; Weighted is false when no profile join happened.
	P        float64 `json:"p"`
	Log10P   float64 `json:"log10_p"`
	Weighted bool    `json:"weighted"`
}

// MarshalJSON clamps -Inf log probabilities the same way NodeReport does.
func (l LeakReport) MarshalJSON() ([]byte, error) {
	type alias LeakReport
	a := alias(l)
	if a.Log10P < minLog10 {
		a.Log10P = minLog10
	}
	return json.Marshal(a)
}

// MarshalJSON clamps the summary's -Inf max the same way.
func (s IFCSummary) MarshalJSON() ([]byte, error) {
	type alias IFCSummary
	a := alias(s)
	if a.MaxLog10P < minLog10 {
		a.MaxLog10P = minLog10
	}
	return json.Marshal(a)
}

// JobMeta identifies one service-layer job: the content-addressed job ID
// (fingerprint of program text + normalized options), its queue trajectory,
// and how long it waited before a worker picked it up.
type JobMeta struct {
	ID          string  `json:"id"`
	TraceID     string  `json:"trace_id,omitempty"` // request-scoped trace identifier
	Kind        string  `json:"kind"`               // "profile" | "adversarial"
	Priority    int     `json:"priority,omitempty"`
	SubmittedAt string  `json:"submitted_at,omitempty"` // RFC3339Nano
	StartedAt   string  `json:"started_at,omitempty"`
	FinishedAt  string  `json:"finished_at,omitempty"`
	WaitSec     float64 `json:"wait_sec,omitempty"` // queue wait before execution
}

// NodeReport is one profiled code block, rarest first.
type NodeReport struct {
	Rank   int     `json:"rank"`
	ID     int     `json:"id"`
	Label  string  `json:"label"`
	P      float64 `json:"p"`       // linear probability (0 on underflow)
	Log10P float64 `json:"log10_p"` // exact in log space; -Inf encodes as min float
	Source string  `json:"source"`
}

// MarshalJSON clamps the -Inf log probability of unreached blocks to a
// finite sentinel so the report stays valid JSON.
func (n NodeReport) MarshalJSON() ([]byte, error) {
	type alias NodeReport
	a := alias(n)
	if a.Log10P < minLog10 {
		a.Log10P = minLog10
	}
	return json.Marshal(a)
}

// minLog10 stands in for log10(0) in JSON output (JSON has no -Inf).
const minLog10 = -1e9

// Summary renders the report's stats as aligned human-readable text — the
// single renderer behind `p4wn profile` and the p4wnbench summaries.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run: %s  target %s  wall %.3fs  converged=%v  coverage %.0f%%  iterations %d\n",
		r.Program, r.targetName(), r.WallSec, r.Converged, r.Coverage*100, len(r.Iterations))

	if len(r.Stages) > 0 {
		names := make([]string, 0, len(r.Stages))
		for k := range r.Stages {
			names = append(names, k)
		}
		sort.Slice(names, func(i, j int) bool { return r.Stages[names[i]] > r.Stages[names[j]] })
		var rows [][]string
		total := 0.0
		for _, n := range names {
			total += r.Stages[n]
		}
		for _, n := range names {
			pct := 0.0
			if r.WallSec > 0 {
				pct = r.Stages[n] / r.WallSec * 100
			}
			rows = append(rows, []string{n, fmt.Sprintf("%.3f", r.Stages[n]), fmt.Sprintf("%.1f%%", pct)})
		}
		rows = append(rows, []string{"(sum)", fmt.Sprintf("%.3f", total), ""})
		b.WriteString(Table([]string{"stage", "sec", "of wall"}, rows))
	}

	if r.IFC != nil {
		fmt.Fprintf(&b, "ifc: %d leak(s), max leak p %.3g\n", len(r.IFC.Leaks), r.IFC.MaxP)
		var rows [][]string
		for _, l := range r.IFC.Leaks {
			pcell := "-"
			if l.Weighted {
				pcell = fmt.Sprintf("%.3g", l.P)
			}
			rows = append(rows, []string{l.Source, l.Sink, l.Flow, pcell, l.Witness})
		}
		if len(rows) > 0 {
			b.WriteString(Table([]string{"secret", "sink", "flow", "p", "witness"}, rows))
		}
	}

	if len(r.HotBlocks) > 0 {
		n := len(r.HotBlocks)
		if n > 10 {
			n = 10
		}
		fmt.Fprintf(&b, "hot blocks (top %d of %d):\n", n, len(r.HotBlocks))
		var rows [][]string
		for _, hb := range r.HotBlocks[:n] {
			rows = append(rows, []string{
				fmt.Sprintf("%d", hb.Rank), hb.Label,
				fmt.Sprintf("%d", hb.Visits), fmt.Sprintf("%d", hb.Forks),
				fmt.Sprintf("%.3f", hb.SolverSec),
			})
		}
		b.WriteString(Table([]string{"rank", "block", "visits", "forks", "solver s"}, rows))
	}

	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var rows [][]string
		for _, k := range keys {
			rows = append(rows, []string{k, fmt.Sprintf("%g", r.Metrics[k])})
		}
		b.WriteString(Table([]string{"metric", "value"}, rows))
	}
	return b.String()
}

// targetName spells out the report's target, defaulting the empty string
// of pre-v5 reports to "idealized" for display.
func (r *Report) targetName() string {
	if r.Target == "" {
		return "idealized"
	}
	return r.Target
}

// ExperimentResult is one p4wnbench experiment's outcome.
type ExperimentResult struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	OK      bool    `json:"ok"`
	Error   string  `json:"error,omitempty"`
}

// BenchReport is the machine-readable artifact of one p4wnbench invocation
// (kind "bench"): per-experiment wall times CI uploads as BENCH_<date>.json.
type BenchReport struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"` // "bench"
	GeneratedAt   string `json:"generated_at,omitempty"`
	Scale         string `json:"scale"`
	// Target labels which device model every experiment ran against
	// (schema v5), so BENCH_*.json rows are comparable across runs only
	// when their targets match.
	Target      string             `json:"target"`
	Seed        int64              `json:"seed"`
	Experiments []ExperimentResult `json:"experiments"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// NewBenchReport builds an empty bench report at the current schema version;
// target "" is recorded as "idealized".
func NewBenchReport(scale string, seed int64, target string) *BenchReport {
	if target == "" {
		target = "idealized"
	}
	return &BenchReport{SchemaVersion: SchemaVersion, Kind: "bench", Scale: scale, Target: target, Seed: seed}
}

// Summary renders the per-experiment timing table.
func (r *BenchReport) Summary() string {
	var rows [][]string
	for _, e := range r.Experiments {
		status := "ok"
		if !e.OK {
			status = "FAIL: " + e.Error
		}
		rows = append(rows, []string{e.Name, fmt.Sprintf("%.3f", e.Seconds), status})
	}
	tgt := r.Target
	if tgt == "" {
		tgt = "idealized"
	}
	return fmt.Sprintf("bench report (scale %s, target %s, seed %d)\n", r.Scale, tgt, r.Seed) +
		Table([]string{"experiment", "sec", "status"}, rows)
}

// WriteJSONAtomic marshals v with indentation and writes it to path via a
// temp file + rename, so a crashed run never leaves a truncated report for
// CI to misparse.
func WriteJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'))
}

// WriteFileAtomic writes data to path via a temp file + rename in the same
// directory — the durability primitive behind WriteJSONAtomic and the serve
// result store. Readers either see the previous complete file or the new
// one, never a torn write.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// Table renders aligned text columns with a dashed separator under the
// header — the shared renderer behind the eval tables and report summaries.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
