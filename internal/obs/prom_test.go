package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"serve.jobs_run":     "serve_jobs_run",
		"pool.worker0.util":  "pool_worker0_util",
		"9lives":             "_9lives",
		"ok_name":            "ok_name",
		"weird-chars %":      "weird_chars__",
		"solver:custom.name": "solver:custom_name",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusBasics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.jobs_run").Add(3)
	reg.Counter(`serve.jobs{outcome="done"}`).Add(2)
	reg.Counter(`serve.jobs{outcome="failed"}`).Add(1)
	reg.Gauge("serve.queue_depth").Set(7)
	reg.SetHelp("serve.jobs_run", "Jobs executed by the worker pool.")
	reg.RegisterView("pool", func() map[string]float64 {
		return map[string]float64{"utilization": 0.5}
	})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP serve_jobs_run Jobs executed by the worker pool.\n",
		"# TYPE serve_jobs_run counter\nserve_jobs_run 3\n",
		"# TYPE serve_jobs counter\n",
		`serve_jobs{outcome="done"} 2`,
		`serve_jobs{outcome="failed"} 1`,
		"serve_queue_depth 7",
		"pool_utilization 0.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := LintPrometheus(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("self-lint failed: %v", errs)
	}

	// Deterministic: a second write renders identical bytes.
	var buf2 bytes.Buffer
	reg.WritePrometheus(&buf2)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two renders of the same registry differ")
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram(`serve.job_run_seconds{outcome="done"}`)
	h.Observe(0.003)
	h.Observe(0.02)
	h.Observe(250) // past the last bound: lands in +Inf only
	reg.Histogram(`serve.job_run_seconds{outcome="failed"}`).Observe(1.5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	if !strings.Contains(out, "# TYPE serve_job_run_seconds histogram\n") {
		t.Fatalf("missing histogram TYPE line:\n%s", out)
	}
	for _, want := range []string{
		`serve_job_run_seconds_bucket{outcome="done",le="+Inf"} 3`,
		`serve_job_run_seconds_count{outcome="done"} 3`,
		`serve_job_run_seconds_sum{outcome="done"} 250.023`,
		`serve_job_run_seconds_bucket{outcome="failed",le="+Inf"} 1`,
		`serve_job_run_seconds_count{outcome="failed"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Buckets are cumulative: the le="0.005" bucket holds the 0.003
	// observation, le="0.05" holds both finite small ones.
	if !strings.Contains(out, `serve_job_run_seconds_bucket{outcome="done",le="0.005"} 1`) {
		t.Errorf("cumulative bucket at 0.005 wrong:\n%s", out)
	}
	if !strings.Contains(out, `serve_job_run_seconds_bucket{outcome="done",le="0.05"} 2`) {
		t.Errorf("cumulative bucket at 0.05 wrong:\n%s", out)
	}
	if errs := LintPrometheus(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("histogram exposition fails self-lint: %v", errs)
	}
}

// A base-name collision across kinds keeps the first-registered kind and
// drops the conflicting series instead of emitting a mixed family.
func TestWritePrometheusKindConflict(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dual.metric").Inc()
	reg.Gauge("dual.metric").Set(9)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE dual_metric counter\ndual_metric 1\n") {
		t.Errorf("counter series missing:\n%s", out)
	}
	if strings.Contains(out, "dual_metric 9") {
		t.Errorf("conflicting gauge series leaked into the exposition:\n%s", out)
	}
	if errs := LintPrometheus(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("self-lint failed: %v", errs)
	}
}

func TestWritePrometheusEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if errs := LintPrometheus(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("empty exposition fails lint: %v", errs)
	}
}

func TestLabeled(t *testing.T) {
	cases := []struct {
		base string
		kv   []string
		want string
	}{
		{"cluster.forwards", []string{"shard", "http://127.0.0.1:9101"},
			`cluster.forwards{shard="http://127.0.0.1:9101"}`},
		{"cluster.retries", []string{"shard", "a", "tenant", "b"},
			`cluster.retries{shard="a",tenant="b"}`},
		{"plain", nil, "plain"},
		{"odd", []string{"dangling_key"}, "odd"},
		{"odd.pair", []string{"k", "v", "dangling"}, `odd.pair{k="v"}`},
		{"esc", []string{"k", `quo"te\slash` + "\nline"}, `esc{k="quo\"te\\slash\nline"}`},
		{"bad.key", []string{"shard-addr", "x"}, `bad.key{shard_addr="x"}`},
	}
	for _, c := range cases {
		if got := Labeled(c.base, c.kv...); got != c.want {
			t.Errorf("Labeled(%q, %v) = %q, want %q", c.base, c.kv, got, c.want)
		}
	}
}

// Labeled names must survive the full trip: registry key, exposition
// writer, and the linter. Two series of one metric share a TYPE block.
func TestLabeledRendersThroughPrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Labeled("cluster.forwards", "shard", "http://127.0.0.1:9101")).Add(4)
	reg.Counter(Labeled("cluster.forwards", "shard", "http://127.0.0.1:9102")).Add(2)
	reg.Counter(Labeled("cluster.quota_rejections", "tenant", "team-a")).Inc()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`cluster_forwards{shard="http://127.0.0.1:9101"} 4`,
		`cluster_forwards{shard="http://127.0.0.1:9102"} 2`,
		`cluster_quota_rejections{tenant="team-a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE cluster_forwards counter") != 1 {
		t.Errorf("labeled series of one metric must share a single TYPE line:\n%s", out)
	}
	if errs := LintPrometheus(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("labeled exposition fails lint: %v", errs)
	}
}
