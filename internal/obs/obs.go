// Package obs is P4wn's observability layer: a low-overhead event/span
// tracer, a metrics registry unifying the per-subsystem stats structs, an
// optional expvar/pprof HTTP endpoint, and the versioned JSON run report
// that p4wnbench and CI diff across revisions.
//
// Everything is opt-in and nil-safe: a nil *Tracer is a no-op that
// allocates nothing per event, and a nil *Registry ignores updates, so the
// profiler hot path pays one predictable branch when observability is off.
// The package depends only on the standard library; the rest of the repo
// imports obs, never the reverse.
package obs

// Field is one key/value attribute attached to an event. Values are
// float64 because every attribute we emit (counts, probabilities, seconds)
// is numeric; stringly-typed events stay in the message.
type Field struct {
	Key string
	Val float64
}

// F builds a Field; it keeps call sites short enough to stay readable
// inside hot loops.
func F(key string, val float64) Field { return Field{Key: key, Val: val} }
