package obs

import (
	"compress/gzip"
	"io"
)

// WriteHotBlockPprof serializes a hot-block table as a gzipped
// pprof-compatible profile (`go tool pprof` opens it): one synthetic
// location per CFG block, named by its label, with three sample values per
// block — exploration visits, engine forks, and attributed solver
// nanoseconds. The encoding is hand-rolled protobuf against pprof's
// profile.proto, so the repo stays dependency-free.
func WriteHotBlockPprof(w io.Writer, program string, blocks []HotBlockReport) error {
	// String table: index 0 must be "".
	strs := []string{""}
	strIdx := map[string]int64{"": 0}
	intern := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strs = append(strs, s)
		strIdx[s] = i
		return i
	}

	type valueType struct{ typ, unit int64 }
	sampleTypes := []valueType{
		{intern("visits"), intern("count")},
		{intern("forks"), intern("count")},
		{intern("solver"), intern("nanoseconds")},
	}
	fileIdx := intern(program)

	var profile []byte

	// sample_type: repeated ValueType, field 1.
	for _, st := range sampleTypes {
		var vt []byte
		vt = appendVarintField(vt, 1, st.typ)
		vt = appendVarintField(vt, 2, st.unit)
		profile = appendBytesField(profile, 1, vt)
	}

	// One Function + Location per block; Sample references the location.
	for i, blk := range blocks {
		id := uint64(i + 1)

		var fn []byte // Function: id=1, name=2, system_name=3, filename=4
		fn = appendVarintField(fn, 1, int64(id))
		fn = appendVarintField(fn, 2, intern(blk.Label))
		fn = appendVarintField(fn, 4, fileIdx)

		var line []byte // Line: function_id=1, line=2
		line = appendVarintField(line, 1, int64(id))
		line = appendVarintField(line, 2, int64(blk.ID))

		var loc []byte // Location: id=1, line=4
		loc = appendVarintField(loc, 1, int64(id))
		loc = appendBytesField(loc, 4, line)

		var sample []byte // Sample: location_id=1 (packed), value=2 (packed)
		sample = appendPackedVarints(sample, 1, []int64{int64(id)})
		sample = appendPackedVarints(sample, 2, []int64{
			blk.Visits, blk.Forks, int64(blk.SolverSec * 1e9),
		})

		profile = appendBytesField(profile, 2, sample) // Profile.sample
		profile = appendBytesField(profile, 4, loc)    // Profile.location
		profile = appendBytesField(profile, 5, fn)     // Profile.function
	}

	// string_table: repeated string, field 6. Appended last because intern
	// ran while building the messages above.
	for _, s := range strs {
		profile = appendBytesField(profile, 6, []byte(s))
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(profile); err != nil {
		gz.Close()
		return err
	}
	return gz.Close()
}

// appendVarint appends v in protobuf base-128 varint encoding.
func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// appendVarintField appends a (field, wire type 0) key and varint value.
func appendVarintField(b []byte, field int, v int64) []byte {
	b = appendVarint(b, uint64(field)<<3|0)
	return appendVarint(b, uint64(v))
}

// appendBytesField appends a (field, wire type 2) key and length-delimited
// payload.
func appendBytesField(b []byte, field int, payload []byte) []byte {
	b = appendVarint(b, uint64(field)<<3|2)
	b = appendVarint(b, uint64(len(payload)))
	return append(b, payload...)
}

// appendPackedVarints appends a packed repeated varint field.
func appendPackedVarints(b []byte, field int, vals []int64) []byte {
	var payload []byte
	for _, v := range vals {
		payload = appendVarint(payload, uint64(v))
	}
	return appendBytesField(b, field, payload)
}
