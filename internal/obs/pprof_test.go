package obs

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"
)

// decodeVarints walks an uncompressed profile.proto message and collects
// the string table (field 6 of Profile) — enough structure to prove the
// hand-rolled encoder emits well-formed protobuf without a proto library.
func profileStrings(t *testing.T, msg []byte) []string {
	t.Helper()
	var strs []string
	for i := 0; i < len(msg); {
		key, n := uvarint(msg[i:])
		if n <= 0 {
			t.Fatalf("bad varint key at offset %d", i)
		}
		i += n
		field, wire := key>>3, key&7
		switch wire {
		case 0: // varint
			_, n := uvarint(msg[i:])
			if n <= 0 {
				t.Fatalf("bad varint value at offset %d", i)
			}
			i += n
		case 2: // length-delimited
			l, n := uvarint(msg[i:])
			if n <= 0 || i+n+int(l) > len(msg) {
				t.Fatalf("bad length at offset %d", i)
			}
			i += n
			if field == 6 {
				strs = append(strs, string(msg[i:i+int(l)]))
			}
			i += int(l)
		default:
			t.Fatalf("unexpected wire type %d for field %d", wire, field)
		}
	}
	return strs
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i]&0x80 == 0 {
			return v, i + 1
		}
	}
	return 0, 0
}

func TestWriteHotBlockPprof(t *testing.T) {
	blocks := []HotBlockReport{
		{Rank: 1, ID: 2, Label: "tcp", Visits: 40, Forks: 19, SolverSec: 0.125},
		{Rank: 2, ID: 5, Label: "tcp_sample", Visits: 12, Forks: 0, SolverSec: 0.004},
	}
	var buf bytes.Buffer
	if err := WriteHotBlockPprof(&buf, "syn_guard", blocks); err != nil {
		t.Fatal(err)
	}

	// pprof files are gzip-wrapped protobuf.
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if err := zr.Close(); err != nil {
		t.Fatal(err)
	}

	strs := profileStrings(t, raw)
	if len(strs) == 0 || strs[0] != "" {
		t.Fatalf("string table must start with the empty string, got %q", strs)
	}
	want := map[string]bool{
		"visits": false, "forks": false, "solver": false,
		"count": false, "nanoseconds": false,
		"tcp": false, "tcp_sample": false, "syn_guard": false,
	}
	for _, s := range strs {
		if _, ok := want[s]; ok {
			want[s] = true
		}
	}
	for s, seen := range want {
		if !seen {
			t.Errorf("string table missing %q (have %q)", s, strs)
		}
	}
}

func TestWriteHotBlockPprofEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHotBlockPprof(&buf, "p", nil); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("empty profile is not gzip: %v", err)
	}
	if _, err := io.ReadAll(zr); err != nil {
		t.Fatal(err)
	}
}
