package obs

import (
	"strings"
	"testing"
)

func TestLintPrometheus(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		wantErr string // substring of some reported error; "" = clean
	}{
		{
			name:  "clean counter with help and type",
			input: "# HELP a_total Things.\n# TYPE a_total counter\na_total 3\n",
		},
		{
			name:  "clean labeled samples",
			input: "# TYPE jobs counter\njobs{outcome=\"done\"} 2\njobs{outcome=\"failed\"} 1\n",
		},
		{
			name:  "clean untyped sample",
			input: "up 1\n",
		},
		{
			name:    "bad metric name",
			input:   "9lives 1\n",
			wantErr: "invalid metric name",
		},
		{
			name:    "bad label name",
			input:   "a{9bad=\"x\"} 1\n",
			wantErr: "invalid label name",
		},
		{
			name:    "unparseable value",
			input:   "a one\n",
			wantErr: "unparseable value",
		},
		{
			name:    "duplicate series",
			input:   "a{l=\"x\"} 1\na{l=\"x\"} 2\n",
			wantErr: "duplicate series",
		},
		{
			name:    "duplicate TYPE",
			input:   "# TYPE a counter\n# TYPE a counter\na 1\n",
			wantErr: "duplicate TYPE",
		},
		{
			name:    "TYPE after samples",
			input:   "a 1\n# TYPE a counter\n",
			wantErr: "TYPE",
		},
		{
			name:    "unknown type keyword",
			input:   "# TYPE a enum\na 1\n",
			wantErr: "type",
		},
		{
			name:    "unterminated label block",
			input:   "a{l=\"x\" 1\n",
			wantErr: "label",
		},
		{
			name: "clean histogram",
			input: "# TYPE h histogram\n" +
				"h_bucket{le=\"0.1\"} 1\n" +
				"h_bucket{le=\"1\"} 2\n" +
				"h_bucket{le=\"+Inf\"} 3\n" +
				"h_sum 1.5\n" +
				"h_count 3\n",
		},
		{
			name: "histogram missing +Inf bucket",
			input: "# TYPE h histogram\n" +
				"h_bucket{le=\"0.1\"} 1\n" +
				"h_sum 0.05\n" +
				"h_count 1\n",
			wantErr: "+Inf",
		},
		{
			name: "histogram count disagrees with +Inf",
			input: "# TYPE h histogram\n" +
				"h_bucket{le=\"+Inf\"} 3\n" +
				"h_sum 1\n" +
				"h_count 2\n",
			wantErr: "count",
		},
		{
			name: "histogram buckets not cumulative",
			input: "# TYPE h histogram\n" +
				"h_bucket{le=\"0.1\"} 5\n" +
				"h_bucket{le=\"1\"} 2\n" +
				"h_bucket{le=\"+Inf\"} 5\n" +
				"h_sum 1\n" +
				"h_count 5\n",
			wantErr: "previous bucket",
		},
		{
			name:  "escaped label values",
			input: "a{l=\"line\\nbreak \\\"quoted\\\" back\\\\slash\"} 1\n",
		},
		{
			name:  "comments and blank lines ignored",
			input: "\n# just a comment\n\na 1\n",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := LintPrometheus([]byte(tc.input))
			if tc.wantErr == "" {
				if len(errs) != 0 {
					t.Fatalf("want clean, got %v", errs)
				}
				return
			}
			for _, e := range errs {
				if strings.Contains(strings.ToLower(e.Error()), strings.ToLower(tc.wantErr)) {
					return
				}
			}
			t.Fatalf("no error mentioning %q in %v", tc.wantErr, errs)
		})
	}
}
