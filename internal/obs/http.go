package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rtpprof "runtime/pprof"
	"time"
)

// Mount registers the observability handlers on an existing mux:
//
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/debug/vars    expvar (including the registry via PublishExpvar)
//	/debug/pprof/  the standard pprof handlers
//
// It is the shared wiring behind ServeMetrics and the p4wnd daemon, which
// mounts these next to its job API on one listener.
func Mount(mux *http.ServeMux, reg *Registry) {
	reg.PublishExpvar()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeMetrics starts the observability HTTP endpoint on addr (see Mount
// for the routes). It returns the bound address (useful with ":0") and a
// shutdown function. The endpoint is meant for long `monitor`/`backtest`/
// bench runs; profiling one-shot commands should prefer the
// -cpuprofile/-memprofile flags.
func ServeMetrics(addr string, reg *Registry) (string, func() error, error) {
	mux := http.NewServeMux()
	Mount(mux, reg)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

// StartProfiles starts a CPU profile and/or arranges a heap profile, per
// the -cpuprofile/-memprofile flags. The returned stop function flushes
// both; it is safe to call when both paths are empty.
func StartProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := rtpprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	stop := func() error {
		if cpuFile != nil {
			rtpprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := rtpprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}
	return stop, nil
}
