package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// ChromeEvent is one entry of the Chrome trace_event JSON format (the
// subset Perfetto and chrome://tracing consume): "X" complete events carry
// a start timestamp and duration in microseconds; "M" metadata events name
// the process and threads.
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace start
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object form of the format.
type chromeTrace struct {
	TraceEvents     []ChromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// ChromeTrace converts the recorded span tree into trace_event entries.
// Spans are grouped onto virtual threads by their root ancestor: every
// top-level span (a job lifecycle stage, a profiler phase) gets its own
// track, and its descendants — including pool batch spans fanned out by
// par workers — nest under it. Events are sorted by start time then span
// ID, so the output is deterministic for a fixed clock.
func (t *Tracer) ChromeTrace() []ChromeEvent {
	recs := t.Spans()
	if len(recs) == 0 {
		return nil
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Start != recs[j].Start {
			return recs[i].Start < recs[j].Start
		}
		return recs[i].ID < recs[j].ID
	})

	parent := make(map[uint64]uint64, len(recs))
	for _, r := range recs {
		parent[r.ID] = r.Parent
	}
	rootOf := func(id uint64) uint64 {
		for {
			p, ok := parent[id]
			if !ok || p == 0 {
				return id
			}
			id = p
		}
	}

	events := []ChromeEvent{{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "p4wn"},
	}}

	seenTid := map[uint64]bool{}
	for _, r := range recs {
		tid := rootOf(r.ID)
		if !seenTid[tid] {
			seenTid[tid] = true
			name := r.Name
			for _, rr := range recs {
				if rr.ID == tid {
					name = rr.Name
					break
				}
			}
			events = append(events, ChromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": name},
			})
		}
		dur := float64(r.Dur.Microseconds())
		ev := ChromeEvent{
			Name: r.Name,
			Ph:   "X",
			Ts:   float64(r.Start.Microseconds()),
			Dur:  &dur,
			Pid:  1,
			Tid:  tid,
		}
		if len(r.Attrs) > 0 || r.Open {
			ev.Args = map[string]any{}
			for _, a := range r.Attrs {
				ev.Args[a.Key] = a.Val
			}
			if r.Open {
				ev.Args["open"] = true
			}
		}
		events = append(events, ev)
	}
	return events
}

// WriteChromeTrace serializes the span tree as Chrome trace_event JSON
// (object form, ready for chrome://tracing or ui.perfetto.dev). Returns an
// error only from the writer; a nil or empty tracer writes an empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	tr := chromeTrace{
		TraceEvents:     t.ChromeTrace(),
		DisplayTimeUnit: "ms",
	}
	if tr.TraceEvents == nil {
		tr.TraceEvents = []ChromeEvent{}
	}
	if id := t.TraceID(); id != "" {
		tr.OtherData = map[string]any{"trace_id": id}
	}
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
