package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Tracer records structured events, spans, and per-iteration profiler
// records. A nil *Tracer is the default and is a complete no-op; every
// method checks the receiver first, so instrumented code never branches on
// "is tracing enabled" itself.
//
// When constructed with a non-nil writer, each event and span end is also
// rendered as one indented text line (the `p4wn profile -v` output).
// Regardless of the writer, the tracer retains iteration records and
// accumulates per-stage wall time for the run report.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	start  time.Time
	depth  int
	stages map[string]time.Duration
	iters  []IterationRecord
	events int
	spans  int
}

// NewTracer builds a tracer. w may be nil to collect silently (records and
// stage totals only, no text output).
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, start: time.Now(), stages: map[string]time.Duration{}}
}

// Event emits one structured event. Nil-safe and allocation-free when the
// tracer is nil (the variadic slice stays on the caller's stack).
func (t *Tracer) Event(scope, msg string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events++
	if t.w != nil {
		t.line(scope, msg, fields)
	}
	t.mu.Unlock()
}

// line renders one event line; caller holds t.mu.
func (t *Tracer) line(scope, msg string, fields []Field) {
	var b strings.Builder
	fmt.Fprintf(&b, "[%8.3fs] %s%s: %s", time.Since(t.start).Seconds(),
		strings.Repeat("  ", t.depth), scope, msg)
	for _, f := range fields {
		fmt.Fprintf(&b, " %s=%g", f.Key, f.Val)
	}
	b.WriteByte('\n')
	io.WriteString(t.w, b.String())
}

// Span is an open trace region. The zero Span (from a nil tracer) is a
// no-op; End may be called exactly once.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
}

// StartSpan opens a named span. Stage wall time accumulates under the span
// name when the span ends, and nested spans indent the -v output.
func (t *Tracer) StartSpan(name string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	t.spans++
	t.depth++
	t.mu.Unlock()
	return Span{t: t, name: name, start: time.Now()}
}

// End closes the span, returning its duration (0 for the no-op span).
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := time.Since(s.start)
	s.t.mu.Lock()
	s.t.stages[s.name] += d
	if s.t.depth > 0 {
		s.t.depth--
	}
	if s.t.w != nil {
		s.t.line(s.name, fmt.Sprintf("done in %.3fs", d.Seconds()), nil)
	}
	s.t.mu.Unlock()
	return d
}

// IterationRecord is one main-loop iteration of the profiler: the
// per-iteration visibility the paper's Figures 7-9 are built from.
type IterationRecord struct {
	Iter        int     `json:"iter"`
	Paths       int     `json:"paths"`         // live paths after the step
	MergedTo    int     `json:"merged_to"`     // live paths after merging
	PrunedPaths int     `json:"pruned_paths"`  // cumulative statically-pruned paths
	Forks       int     `json:"forks"`         // cumulative engine forks
	Constraints int     `json:"constraints"`   // open path-condition size, summed
	MaxDiff     float64 `json:"max_diff"`      // L-inf distance vs previous profile
	Stable      int     `json:"stable_rounds"` // consecutive epsilon-stable rounds
	MCQueries   int     `json:"mc_queries"`    // cumulative model-counter queries
	MCHitRate   float64 `json:"mc_cache_hit_rate"`
	SymSec      float64 `json:"sym_sec"`
	UpdateSec   float64 `json:"update_sec"`
	MergeSec    float64 `json:"merge_sec"`
}

// Iteration records one profiler iteration and, with a writer attached,
// prints it as a single trace line.
func (t *Tracer) Iteration(rec IterationRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.iters = append(t.iters, rec)
	if t.w != nil {
		fmt.Fprintf(t.w,
			"[%8.3fs] iter %2d: paths=%d merged=%d forks=%d cons=%d maxdiff=%.2e stable=%d mc(q=%d hit=%.0f%%) sym=%.3fs update=%.3fs merge=%.3fs\n",
			time.Since(t.start).Seconds(), rec.Iter, rec.Paths, rec.MergedTo,
			rec.Forks, rec.Constraints, rec.MaxDiff, rec.Stable,
			rec.MCQueries, rec.MCHitRate*100, rec.SymSec, rec.UpdateSec, rec.MergeSec)
	}
	t.mu.Unlock()
}

// Iterations returns a copy of the recorded iteration trajectory.
func (t *Tracer) Iterations() []IterationRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]IterationRecord(nil), t.iters...)
}

// StageTotals returns accumulated span wall time per stage name, in seconds.
func (t *Tracer) StageTotals() map[string]float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]float64, len(t.stages))
	for k, d := range t.stages {
		out[k] = d.Seconds()
	}
	return out
}

// Counts returns how many events and spans were recorded.
func (t *Tracer) Counts() (events, spans int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events, t.spans
}

// Depth returns the current span nesting depth (for tests).
func (t *Tracer) Depth() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.depth
}
