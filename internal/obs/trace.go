package obs

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// maxSpanRecords bounds the per-tracer span tree. A runaway run (millions
// of pool batches) must not hold the whole tree in memory; past the cap,
// spans still time their stage totals but stop being recorded, and the
// tracer counts how many were dropped.
const maxSpanRecords = 1 << 16

// SpanRecord is one completed (or still-open) span in the tracer's span
// tree. Start and Dur are offsets from the tracer's start time, so a whole
// tree serializes without absolute timestamps.
type SpanRecord struct {
	ID     uint64
	Parent uint64 // 0 = root
	Name   string
	Start  time.Duration
	Dur    time.Duration
	Attrs  []Field
	Open   bool // still running when the tree was read
}

// Tracer records structured events, spans, and per-iteration profiler
// records. A nil *Tracer is the default and is a complete no-op; every
// method checks the receiver first, so instrumented code never branches on
// "is tracing enabled" itself.
//
// When constructed with a non-nil writer, each event and span end is also
// rendered as one indented text line (the `p4wn profile -v` output).
// Regardless of the writer, the tracer retains iteration records,
// accumulates per-stage wall time for the run report, and keeps a bounded
// span tree (parent/child links plus attributes) exportable as Chrome
// trace_event JSON via WriteChromeTrace.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	start   time.Time
	depth   int
	stages  map[string]time.Duration
	iters   []IterationRecord
	events  int
	spans   int
	traceID string

	// span tree
	nextSpan uint64
	recs     []SpanRecord
	recIdx   map[uint64]int // span ID -> index into recs
	dropped  int64          // spans not recorded past maxSpanRecords

	// clock is swappable in tests so golden trace exports are
	// deterministic; nil means time.Now.
	clock func() time.Time
}

// NewTracer builds a tracer. w may be nil to collect silently (records and
// stage totals only, no text output).
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, start: time.Now(), stages: map[string]time.Duration{}}
}

func (t *Tracer) now() time.Time {
	if t.clock != nil {
		return t.clock()
	}
	return time.Now()
}

// SetTraceID tags the tracer with a request-scoped trace identifier; it is
// carried into the Chrome export and the daemon's structured logs.
func (t *Tracer) SetTraceID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.traceID = id
	t.mu.Unlock()
}

// TraceID returns the tracer's trace identifier ("" for a nil tracer).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// Event emits one structured event. Nil-safe and allocation-free when the
// tracer is nil (the variadic slice stays on the caller's stack).
func (t *Tracer) Event(scope, msg string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events++
	if t.w != nil {
		t.line(scope, msg, fields)
	}
	t.mu.Unlock()
}

// line renders one event line; caller holds t.mu.
func (t *Tracer) line(scope, msg string, fields []Field) {
	var b strings.Builder
	fmt.Fprintf(&b, "[%8.3fs] %s%s: %s", t.now().Sub(t.start).Seconds(),
		strings.Repeat("  ", t.depth), scope, msg)
	for _, f := range fields {
		fmt.Fprintf(&b, " %s=%g", f.Key, f.Val)
	}
	b.WriteByte('\n')
	io.WriteString(t.w, b.String())
}

// Span is an open trace region. The zero Span (from a nil tracer) is a
// no-op; End may be called exactly once.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
	id    uint64
}

// spanCtxKey carries the current Span through a context chain.
type spanCtxKey struct{}

// WithSpan returns a context carrying s as the current span; children
// started via StartSpanCtx parent under it.
func WithSpan(ctx context.Context, s Span) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx (the zero Span if none).
func SpanFromContext(ctx context.Context) Span {
	if ctx == nil {
		return Span{}
	}
	s, _ := ctx.Value(spanCtxKey{}).(Span)
	return s
}

// StartSpan opens a named root-level span. Stage wall time accumulates
// under the span name when the span ends, and nested spans indent the -v
// output.
func (t *Tracer) StartSpan(name string) Span {
	return t.startSpan(name, 0)
}

// StartSpanCtx opens a named span parented under the span carried by ctx
// (root-level if none) and returns a derived context carrying the new span,
// so the tree survives function and worker-pool boundaries. A nil tracer
// returns ctx unchanged and the no-op span without allocating.
func (t *Tracer) StartSpanCtx(ctx context.Context, name string) (context.Context, Span) {
	if t == nil {
		return ctx, Span{}
	}
	var parent uint64
	if p := SpanFromContext(ctx); p.t == t {
		parent = p.id
	}
	s := t.startSpan(name, parent)
	return WithSpan(ctx, s), s
}

func (t *Tracer) startSpan(name string, parent uint64) Span {
	if t == nil {
		return Span{}
	}
	start := t.now()
	t.mu.Lock()
	t.spans++
	t.depth++
	t.nextSpan++
	id := t.nextSpan
	if len(t.recs) < maxSpanRecords {
		if t.recIdx == nil {
			t.recIdx = make(map[uint64]int)
		}
		t.recIdx[id] = len(t.recs)
		t.recs = append(t.recs, SpanRecord{
			ID:     id,
			Parent: parent,
			Name:   name,
			Start:  start.Sub(t.start),
			Open:   true,
		})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	return Span{t: t, name: name, start: start, id: id}
}

// Annotate attaches key/value attributes to the span's record. No-op on
// the zero span or when the span fell past the record cap.
func (s Span) Annotate(attrs ...Field) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if i, ok := s.t.recIdx[s.id]; ok {
		s.t.recs[i].Attrs = append(s.t.recs[i].Attrs, attrs...)
	}
	s.t.mu.Unlock()
}

// End closes the span, returning its duration (0 for the no-op span).
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := s.t.now().Sub(s.start)
	s.t.mu.Lock()
	s.t.stages[s.name] += d
	if s.t.depth > 0 {
		s.t.depth--
	}
	if i, ok := s.t.recIdx[s.id]; ok {
		s.t.recs[i].Dur = d
		s.t.recs[i].Open = false
	}
	if s.t.w != nil {
		s.t.line(s.name, fmt.Sprintf("done in %.3fs", d.Seconds()), nil)
	}
	s.t.mu.Unlock()
	return d
}

// Spans returns a copy of the recorded span tree in start order (the order
// spans were opened). Open spans are reported with their duration so far.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.recs))
	copy(out, t.recs)
	for i := range out {
		if out[i].Open {
			out[i].Dur = now.Sub(t.start) - out[i].Start
		}
		out[i].Attrs = append([]Field(nil), out[i].Attrs...)
	}
	return out
}

// DroppedSpans returns how many spans fell past the record cap.
func (t *Tracer) DroppedSpans() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// IterationRecord is one main-loop iteration of the profiler: the
// per-iteration visibility the paper's Figures 7-9 are built from.
type IterationRecord struct {
	Iter        int     `json:"iter"`
	Paths       int     `json:"paths"`         // live paths after the step
	MergedTo    int     `json:"merged_to"`     // live paths after merging
	PrunedPaths int     `json:"pruned_paths"`  // cumulative statically-pruned paths
	Forks       int     `json:"forks"`         // cumulative engine forks
	Constraints int     `json:"constraints"`   // open path-condition size, summed
	MaxDiff     float64 `json:"max_diff"`      // L-inf distance vs previous profile
	Stable      int     `json:"stable_rounds"` // consecutive epsilon-stable rounds
	MCQueries   int     `json:"mc_queries"`    // cumulative model-counter queries
	MCHitRate   float64 `json:"mc_cache_hit_rate"`
	SymSec      float64 `json:"sym_sec"`
	UpdateSec   float64 `json:"update_sec"`
	MergeSec    float64 `json:"merge_sec"`
}

// Iteration records one profiler iteration and, with a writer attached,
// prints it as a single trace line.
func (t *Tracer) Iteration(rec IterationRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.iters = append(t.iters, rec)
	if t.w != nil {
		fmt.Fprintf(t.w,
			"[%8.3fs] iter %2d: paths=%d merged=%d forks=%d cons=%d maxdiff=%.2e stable=%d mc(q=%d hit=%.0f%%) sym=%.3fs update=%.3fs merge=%.3fs\n",
			t.now().Sub(t.start).Seconds(), rec.Iter, rec.Paths, rec.MergedTo,
			rec.Forks, rec.Constraints, rec.MaxDiff, rec.Stable,
			rec.MCQueries, rec.MCHitRate*100, rec.SymSec, rec.UpdateSec, rec.MergeSec)
	}
	t.mu.Unlock()
}

// Iterations returns a copy of the recorded iteration trajectory.
func (t *Tracer) Iterations() []IterationRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]IterationRecord(nil), t.iters...)
}

// StageTotals returns accumulated span wall time per stage name, in seconds.
func (t *Tracer) StageTotals() map[string]float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]float64, len(t.stages))
	for k, d := range t.stages {
		out[k] = d.Seconds()
	}
	return out
}

// Counts returns how many events and spans were recorded.
func (t *Tracer) Counts() (events, spans int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events, t.spans
}

// Depth returns the current span nesting depth (for tests).
func (t *Tracer) Depth() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.depth
}
