package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The disabled (nil) tracer must cost nothing: no allocations even with
// field arguments, so instrumentation can stay unconditionally inline in
// the profiler's hot loop.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Event("core", "step", F("paths", 12), F("forks", 3))
		sp := tr.StartSpan("sym")
		sp.End()
		tr.Iteration(IterationRecord{Iter: 1})
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %v per op, want 0", allocs)
	}
}

func BenchmarkNilTracerEvent(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Event("core", "step", F("paths", float64(i)))
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Iterations() != nil || tr.StageTotals() != nil || tr.Depth() != 0 {
		t.Fatal("nil tracer accessors should return zero values")
	}
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(1)
	reg.Histogram("z").Observe(1)
	reg.SetAll("p", map[string]float64{"a": 1})
	reg.RegisterView("v", func() map[string]float64 { return nil })
	if len(reg.Snapshot()) != 0 {
		t.Fatal("nil registry should snapshot empty")
	}
	var c *Counter
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge")
	}
	var h *Histogram
	h.Observe(3)
	if n, _, _, _ := h.Summary(); n != 0 {
		t.Fatal("nil histogram")
	}
}

func TestSpanNesting(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	outer := tr.StartSpan("outer")
	if tr.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", tr.Depth())
	}
	inner := tr.StartSpan("inner")
	if tr.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", tr.Depth())
	}
	tr.Event("sym", "probe", F("paths", 4))
	if d := inner.End(); d < 0 {
		t.Fatalf("inner duration %v", d)
	}
	outer.End()
	if tr.Depth() != 0 {
		t.Fatalf("depth after ends = %d, want 0", tr.Depth())
	}

	stages := tr.StageTotals()
	if stages["outer"] < stages["inner"] {
		t.Fatalf("outer (%v) should contain inner (%v)", stages["outer"], stages["inner"])
	}
	out := buf.String()
	// The event inside two open spans is indented two levels.
	if !strings.Contains(out, "    sym: probe paths=4") {
		t.Fatalf("missing indented event line in:\n%s", out)
	}
	events, spans := tr.Counts()
	if events != 1 || spans != 2 {
		t.Fatalf("counts = (%d events, %d spans), want (1, 2)", events, spans)
	}
}

func TestTracerIterationLine(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Iteration(IterationRecord{Iter: 3, Paths: 40, MergedTo: 9, MaxDiff: 1e-5})
	if got := len(tr.Iterations()); got != 1 {
		t.Fatalf("iterations = %d, want 1", got)
	}
	if !strings.Contains(buf.String(), "iter  3: paths=40 merged=9") {
		t.Fatalf("bad iteration line: %q", buf.String())
	}
}

// The registry must stay consistent when many goroutines write while others
// snapshot (exercised under -race in CI).
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterView("view", func() map[string]float64 { return map[string]float64{"k": 7} })
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("ops").Inc()
				reg.Gauge("last").Set(float64(i))
				reg.Histogram("lat").Observe(float64(i%10) * 1e-4)
				if i%100 == 0 {
					reg.SetAll("bulk", map[string]float64{"x": float64(i)})
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				reg.Snapshot()
				reg.Render()
			}
		}
	}()
	wg.Wait()
	close(done)

	snap := reg.Snapshot()
	if snap["ops"] != workers*perWorker {
		t.Fatalf("ops = %v, want %d", snap["ops"], workers*perWorker)
	}
	if snap["lat.count"] != workers*perWorker {
		t.Fatalf("lat.count = %v", snap["lat.count"])
	}
	if snap["view.k"] != 7 {
		t.Fatalf("view.k = %v", snap["view.k"])
	}
	if _, ok := snap["bulk.x"]; !ok {
		t.Fatal("bulk gauge missing")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(0.001) // lands in the 1ms bucket
	}
	h.Observe(50) // one outlier
	count, sum, p50, p99 := h.Summary()
	if count != 101 {
		t.Fatalf("count = %d", count)
	}
	if math.Abs(sum-(0.1+50)) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
	if p50 != 0.001 {
		t.Fatalf("p50 = %v, want 0.001", p50)
	}
	if p99 != 0.001 && p99 != 50 {
		t.Fatalf("p99 = %v", p99)
	}
}

// goldenReport is a fixed report exercising every schema field; the golden
// file locks the v5 JSON shape (key names, nesting, clamping, the job
// metadata block with trace_id, the target field, the ifc leak summary,
// the hot-block table).
func goldenReport() *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Kind:          "profile",
		Program:       "counter",
		Target:        "idealized",
		Options:       map[string]any{"max_iters": 8, "seed": 1},
		Job: &JobMeta{
			ID:          "9c2f4e8a1b3d5c7e9c2f4e8a1b3d5c7e9c2f4e8a1b3d5c7e9c2f4e8a1b3d5c7e",
			TraceID:     "9c2f4e8a1b3d5c7e",
			Kind:        "profile",
			Priority:    2,
			SubmittedAt: "2026-01-02T03:04:05.000000006Z",
			StartedAt:   "2026-01-02T03:04:05.250000006Z",
			FinishedAt:  "2026-01-02T03:04:06.500000006Z",
			WaitSec:     0.25,
		},
		WallSec: 1.25,
		Stages:  map[string]float64{"sym": 0.75, "merge": 0.25, "sample": 0.2},
		Iterations: []IterationRecord{
			{Iter: 0, Paths: 12, MergedTo: 4, Forks: 11, Constraints: 30,
				MaxDiff: 0.5, MCQueries: 12, MCHitRate: 0.25, SymSec: 0.4,
				UpdateSec: 0.05, MergeSec: 0.1},
			{Iter: 1, Paths: 20, MergedTo: 5, Forks: 19, Constraints: 44,
				MaxDiff: 5e-5, Stable: 1, MCQueries: 30, MCHitRate: 0.6,
				SymSec: 0.35, UpdateSec: 0.04, MergeSec: 0.15},
		},
		Converged: true,
		Coverage:  1,
		Nodes: []NodeReport{
			{Rank: 1, ID: 3, Label: "tcp_sample", P: 0, Log10P: math.Inf(-1), Source: "telescope"},
			{Rank: 2, ID: 1, Label: "tcp", P: 0.00390625, Log10P: -2.408239965311849, Source: "symbex"},
		},
		IFC: &IFCSummary{
			Secrets: []string{"register:tcp_cnt"},
			Sinks:   []string{"action:mirror"},
			Leaks: []LeakReport{
				{Source: "register:tcp_cnt", Sink: "action:mirror", Node: 3,
					Block: "tcp_sample", Flow: "implicit",
					Witness: "tcp(#1) -> tcp_sample(#3)",
					P:       0.00390625, Log10P: -2.408239965311849, Weighted: true},
				{Source: "register:tcp_cnt", Sink: "action:mirror", Node: 5,
					Block: "udp_sample", Flow: "implicit",
					Witness: "udp(#4) -> udp_sample(#5)",
					P:       0, Log10P: math.Inf(-1), Weighted: true},
			},
			MaxP:      0.00390625,
			MaxLog10P: -2.408239965311849,
		},
		HotBlocks: []HotBlockReport{
			{Rank: 1, ID: 1, Label: "tcp", Visits: 40, Forks: 19, SolverSec: 0.125},
			{Rank: 2, ID: 3, Label: "tcp_sample", Visits: 12, Forks: 0, SolverSec: 0.004},
		},
		Metrics: map[string]float64{"core.iterations": 2, "sym.forks": 30},
	}
}

func TestReportGolden(t *testing.T) {
	data, err := json.MarshalIndent(goldenReport(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	golden := filepath.Join("testdata", "report_v5.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("report JSON drifted from %s (run with UPDATE_GOLDEN=1 after intentional schema changes, and bump SchemaVersion)\ngot:\n%s", golden, data)
	}
	// The golden bytes must round-trip: -Inf clamps to the sentinel, the
	// rest survives exactly.
	var back Report
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion || back.Kind != "profile" {
		t.Fatalf("round-trip header: %+v", back)
	}
	if back.Nodes[0].Log10P != minLog10 {
		t.Fatalf("-Inf should clamp to %g, got %g", minLog10, back.Nodes[0].Log10P)
	}
	if len(back.Iterations) != 2 || back.Iterations[1].Stable != 1 {
		t.Fatalf("iterations round-trip: %+v", back.Iterations)
	}
	if back.Job == nil || back.Job.ID != goldenReport().Job.ID || back.Job.WaitSec != 0.25 {
		t.Fatalf("job metadata round-trip: %+v", back.Job)
	}
	if back.IFC == nil || len(back.IFC.Leaks) != 2 || back.IFC.Leaks[0].Flow != "implicit" {
		t.Fatalf("ifc summary round-trip: %+v", back.IFC)
	}
	if back.IFC.Leaks[1].Log10P != minLog10 {
		t.Fatalf("leak -Inf should clamp to %g, got %g", minLog10, back.IFC.Leaks[1].Log10P)
	}
	if back.Job.TraceID != "9c2f4e8a1b3d5c7e" {
		t.Fatalf("trace_id round-trip: %+v", back.Job)
	}
	if len(back.HotBlocks) != 2 || back.HotBlocks[0].Label != "tcp" || back.HotBlocks[0].Visits != 40 {
		t.Fatalf("hot_blocks round-trip: %+v", back.HotBlocks)
	}
	// Offline reports must omit the job block entirely, and policy-free
	// programs the ifc block.
	plain := goldenReport()
	plain.Job = nil
	plain.IFC = nil
	plain.HotBlocks = nil
	data, err = json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"job"`)) {
		t.Fatalf("nil Job must not serialize: %s", data)
	}
	if bytes.Contains(data, []byte(`"ifc"`)) {
		t.Fatalf("nil IFC must not serialize: %s", data)
	}
	if bytes.Contains(data, []byte(`"hot_blocks"`)) {
		t.Fatalf("empty HotBlocks must not serialize: %s", data)
	}
}

func TestWriteJSONAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteJSONAtomic(path, goldenReport()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("unparsable report: %v", err)
	}
	// No temp files may linger after a successful write.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("leftover temp files: %v", entries)
	}
	// Overwrite must also succeed (rename over existing).
	if err := WriteJSONAtomic(path, goldenReport()); err != nil {
		t.Fatal(err)
	}
}

func TestReportSummary(t *testing.T) {
	s := goldenReport().Summary()
	for _, want := range []string{"counter", "wall 1.250s", "stage", "sym", "(sum)", "core.iterations"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestBenchReportSummary(t *testing.T) {
	r := NewBenchReport("quick", 1, "")
	r.Experiments = []ExperimentResult{
		{Name: "fig7", Seconds: 1.5, OK: true},
		{Name: "fig8", Seconds: 0.2, OK: false, Error: "boom"},
	}
	s := r.Summary()
	if !strings.Contains(s, "fig7") || !strings.Contains(s, "FAIL: boom") {
		t.Fatalf("bench summary:\n%s", s)
	}
	if r.SchemaVersion != SchemaVersion || r.Kind != "bench" {
		t.Fatalf("bench header: %+v", r)
	}
	if r.Target != "idealized" || !strings.Contains(s, "target idealized") {
		t.Fatalf("bench target defaulting: %+v\n%s", r, s)
	}
	if tr := NewBenchReport("quick", 1, "tofino"); tr.Target != "tofino" {
		t.Fatalf("bench target = %q, want tofino", tr.Target)
	}
}

func TestTableAlignment(t *testing.T) {
	got := Table([]string{"a", "long"}, [][]string{{"xxxx", "1"}})
	want := "a     long\n----  ----\nxxxx  1   \n"
	if got != want {
		t.Fatalf("table = %q, want %q", got, want)
	}
}
