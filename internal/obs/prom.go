package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// PrometheusContentType is the content type of the text exposition format
// WritePrometheus emits.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promSample is one exposition sample: a sanitized base name, sorted
// rendered labels ("" or `{k="v",...}`), and a value.
type promSample struct {
	labels string
	value  float64
}

// promFamily is one metric family: every sample sharing a sanitized base
// name, with its type and optional help text.
type promFamily struct {
	kind    string // "counter" | "gauge" | "histogram"
	help    string
	samples []promSample
	hist    []*promHist
}

type promHist struct {
	labels []promLabel
	h      *Histogram
}

type promLabel struct{ name, value string }

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): names sanitized to [a-zA-Z_:][a-zA-Z0-9_:]*,
// one # HELP/# TYPE pair per family, histograms as cumulative _bucket
// series with le labels plus _sum and _count, and views flattened as
// gauges. Registry metric names may carry a `{key="value",...}` suffix to
// emit labeled series (e.g. `serve.job_run_seconds{outcome="done"}`);
// label sets are re-sorted by label name. Output is deterministic: families
// and samples are sorted. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	views := make(map[string]ViewFunc, len(r.views))
	for k, v := range r.views {
		views[k] = v
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	families := map[string]*promFamily{}
	add := func(rawName, kind string, value float64, h *Histogram) {
		base, labels, ok := splitPromName(rawName)
		if !ok {
			return // malformed label suffix; drop rather than emit garbage
		}
		name := SanitizeMetricName(base)
		fam := families[name]
		if fam == nil {
			fam = &promFamily{kind: kind, help: help[base]}
			families[name] = fam
		}
		if fam.kind != kind {
			// First registered kind wins; conflicting series are dropped so
			// the exposition never mixes types under one family.
			return
		}
		if fam.help == "" {
			fam.help = help[base]
		}
		if kind == "histogram" {
			fam.hist = append(fam.hist, &promHist{labels: labels, h: h})
			return
		}
		fam.samples = append(fam.samples, promSample{labels: renderLabels(labels), value: value})
	}

	// Counters first, then histograms, then gauges and views: on a base-name
	// collision across kinds the earlier registration order decides, and the
	// order here is fixed so the outcome is deterministic.
	for _, k := range sortedKeys(counters) {
		add(k, "counter", float64(counters[k].Value()), nil)
	}
	for _, k := range sortedKeys(hists) {
		add(k, "histogram", 0, hists[k])
	}
	for _, k := range sortedKeys(gauges) {
		add(k, "gauge", gauges[k].Value(), nil)
	}
	for _, name := range sortedKeys(views) {
		vals := views[name]()
		for _, k := range sortedKeys(vals) {
			add(name+"."+k, "gauge", vals[k], nil)
		}
	}

	var b strings.Builder
	for _, name := range sortedKeys(families) {
		fam := families[name]
		if fam.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(fam.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, fam.kind)
		if fam.kind == "histogram" {
			for _, ph := range fam.hist {
				writePromHistogram(&b, name, ph)
			}
			continue
		}
		sort.Slice(fam.samples, func(i, j int) bool { return fam.samples[i].labels < fam.samples[j].labels })
		for _, s := range fam.samples {
			fmt.Fprintf(&b, "%s%s %s\n", name, s.labels, formatPromValue(s.value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writePromHistogram(b *strings.Builder, name string, ph *promHist) {
	bounds, cum := ph.h.Buckets()
	count, sum, _, _ := ph.h.Summary()
	for i, bound := range bounds {
		labels := append(append([]promLabel(nil), ph.labels...),
			promLabel{"le", formatPromValue(bound)})
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(labels), cum[i])
	}
	labels := append(append([]promLabel(nil), ph.labels...), promLabel{"le", "+Inf"})
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(labels), cum[len(cum)-1])
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(ph.labels), formatPromValue(sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(ph.labels), count)
}

// SanitizeMetricName maps an internal dotted metric name onto the
// Prometheus name charset: every run of invalid characters becomes one
// underscore, and a leading digit gets an underscore prefix.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// splitPromName splits an internal metric name into its base and an
// optional parsed `{k="v",...}` label suffix. Returns ok=false when the
// suffix is present but malformed.
func splitPromName(name string) (base string, labels []promLabel, ok bool) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, nil, true
	}
	base = name[:i]
	rest := name[i:]
	if !strings.HasSuffix(rest, "}") {
		return "", nil, false
	}
	inner := rest[1 : len(rest)-1]
	for _, pair := range splitLabelPairs(inner) {
		eq := strings.Index(pair, "=")
		if eq < 0 {
			return "", nil, false
		}
		k := strings.TrimSpace(pair[:eq])
		v := strings.TrimSpace(pair[eq+1:])
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return "", nil, false
		}
		labels = append(labels, promLabel{SanitizeLabelName(k), v[1 : len(v)-1]})
	}
	sort.Slice(labels, func(a, b int) bool { return labels[a].name < labels[b].name })
	return base, labels, true
}

// splitLabelPairs splits `k="v",k2="v2"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// Labeled builds a registry metric name carrying a `{k="v",...}` label
// suffix from alternating key/value arguments, escaping the values so the
// name round-trips through the exposition parser. It is the safe way to
// attach runtime-valued labels (shard addresses, tenant names) to a metric:
//
//	reg.Counter(obs.Labeled("cluster.forwards", "shard", addr)).Inc()
//
// An odd trailing key is dropped rather than emitting a malformed suffix.
func Labeled(base string, kv ...string) string {
	if len(kv) < 2 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(kv[i+1])
		fmt.Fprintf(&b, `%s="%s"`, SanitizeLabelName(kv[i]), v)
	}
	b.WriteByte('}')
	return b.String()
}

// SanitizeLabelName maps a label name onto [a-zA-Z_][a-zA-Z0-9_]*.
func SanitizeLabelName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func renderLabels(labels []promLabel) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, l.name, l.value)
	}
	b.WriteByte('}')
	return b.String()
}

func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
