package obs

import (
	"reflect"
	"testing"
)

// Quantiles must be defined and finite at every sample count: 0 samples
// report 0, 1 sample reports that value exactly, and estimates never leave
// the observed [min, max] range (in particular never +Inf past the last
// bucket bound).
func TestHistogramSummaryEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		count, sum, p50, p99 := h.Summary()
		if count != 0 || sum != 0 || p50 != 0 || p99 != 0 {
			t.Fatalf("empty histogram: count=%d sum=%g p50=%g p99=%g, want all 0",
				count, sum, p50, p99)
		}
	})
	t.Run("single sample", func(t *testing.T) {
		var h Histogram
		h.Observe(0.0042)
		count, sum, p50, p99 := h.Summary()
		if count != 1 || sum != 0.0042 {
			t.Fatalf("count=%d sum=%g", count, sum)
		}
		if p50 != 0.0042 || p99 != 0.0042 {
			t.Fatalf("single-sample quantiles p50=%g p99=%g, want both 0.0042", p50, p99)
		}
	})
	t.Run("overflow bucket clamps to max", func(t *testing.T) {
		var h Histogram
		h.Observe(500) // past the last bound (~500s decade ends at 500)
		h.Observe(9000)
		_, _, p50, p99 := h.Summary()
		if p50 > 9000 || p99 > 9000 {
			t.Fatalf("quantile escaped the observed max: p50=%g p99=%g", p50, p99)
		}
		if p99 != 9000 {
			t.Fatalf("p99=%g, want the observed max 9000", p99)
		}
	})
	t.Run("quantile within observed range", func(t *testing.T) {
		var h Histogram
		for i := 0; i < 100; i++ {
			h.Observe(0.010)
		}
		h.Observe(3.5)
		_, _, p50, p99 := h.Summary()
		if p50 < 0.010 || p50 > 3.5 {
			t.Fatalf("p50=%g outside observed [0.010, 3.5]", p50)
		}
		if p99 < p50 {
			t.Fatalf("p99=%g < p50=%g", p99, p50)
		}
	})
	t.Run("nil histogram", func(t *testing.T) {
		var h *Histogram
		h.Observe(1) // must not panic
		if c, s, a, b := h.Summary(); c != 0 || s != 0 || a != 0 || b != 0 {
			t.Fatal("nil histogram summary not zero")
		}
	})
}

func TestHistogramBucketsCumulative(t *testing.T) {
	var h Histogram
	h.Observe(0.0015) // le=0.002 bucket
	h.Observe(0.0015)
	h.Observe(0.04) // le=0.05 bucket
	h.Observe(1e6)  // overflow: +Inf only

	bounds, cum := h.Buckets()
	if len(cum) != len(bounds)+1 {
		t.Fatalf("len(cum)=%d, want len(bounds)+1=%d", len(cum), len(bounds)+1)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts decrease at %d: %v", i, cum)
		}
	}
	if cum[len(cum)-1] != 4 {
		t.Fatalf("+Inf bucket = %d, want total 4", cum[len(cum)-1])
	}
	for i, b := range bounds {
		if b >= 0.002 {
			if cum[i] != 2 {
				t.Fatalf("cum at first bound >= 0.002 is %d, want 2", cum[i])
			}
			break
		}
	}
}

// Snapshot applies its sources in a fixed layering (counters, gauges,
// histograms, views — each in sorted name order), so two snapshots of the
// same registry are identical even with colliding names.
func TestRegistrySnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("shared.name").Add(1)
		r.Gauge("shared.name").Set(2) // gauge layer overwrites the counter
		r.Counter("only.counter").Add(7)
		r.Histogram("lat").Observe(0.5)
		r.RegisterView("v", func() map[string]float64 {
			return map[string]float64{"x": 3, "y": 4}
		})
		return r
	}
	a, b := build().Snapshot(), build().Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots of identical registries differ:\n%v\n%v", a, b)
	}
	if a["shared.name"] != 2 {
		t.Fatalf("gauge layer should overwrite counter: shared.name=%g, want 2", a["shared.name"])
	}
	if a["only.counter"] != 7 {
		t.Fatalf("only.counter=%g, want 7", a["only.counter"])
	}
}
