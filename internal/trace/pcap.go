package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Pcap export: the paper's workload generator converts generated test
// sequences into pcap traces replayable against a DUT. WritePcap serializes
// a trace as a classic libpcap file (LINKTYPE_ETHERNET) with synthesized
// Ethernet/IPv4/TCP|UDP framing so standard tooling (tcpdump, tcpreplay,
// Wireshark) can read it. Program-specific Extra fields ride in the first
// bytes of the payload, length-prefixed, so ReadPcap round-trips them.

const (
	pcapMagic   = 0xa1b2c3d4 // microsecond-resolution, native byte order
	pcapVersion = 0x0002_0004
	linkEther   = 1
)

// WritePcap serializes the trace as a libpcap capture.
func (t *Trace) WritePcap(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := [6]uint32{pcapMagic, pcapVersion, 0, 0, 65535, linkEther}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for i := range t.Packets {
		frame := buildFrame(&t.Packets[i])
		rec := [4]uint32{
			uint32(t.Packets[i].TS / 1e6), // seconds
			uint32(t.Packets[i].TS % 1e6), // microseconds
			uint32(len(frame)),            // captured length
			uint32(len(frame)),            // original length
		}
		for _, v := range rec {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		if _, err := bw.Write(frame); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePcapFile writes the trace to a .pcap file.
func (t *Trace) WritePcapFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WritePcap(f); err != nil {
		return err
	}
	return f.Close()
}

// buildFrame synthesizes Ethernet + IPv4 + TCP/UDP bytes for a packet.
// Payload layout: extraCount(u16), then per extra: nameLen(u16), name,
// value(u64); padding to reach the packet's declared length.
func buildFrame(p *Packet) []byte {
	const (
		etherLen = 14
		ipLen    = 20
	)
	l4len := 20 // TCP
	if p.Proto == ProtoUDP {
		l4len = 8
	}

	payload := encodeExtras(p)
	total := etherLen + ipLen + l4len + len(payload)
	if int(p.Len) > total {
		payload = append(payload, make([]byte, int(p.Len)-total)...)
		total = int(p.Len)
	}

	frame := make([]byte, total)
	// Ethernet: synthetic MACs derived from the IPs, EtherType IPv4.
	copy(frame[0:6], []byte{0x02, 0, byte(p.DstIP >> 24), byte(p.DstIP >> 16), byte(p.DstIP >> 8), byte(p.DstIP)})
	copy(frame[6:12], []byte{0x02, 0, byte(p.SrcIP >> 24), byte(p.SrcIP >> 16), byte(p.SrcIP >> 8), byte(p.SrcIP)})
	binary.BigEndian.PutUint16(frame[12:14], 0x0800)

	ip := frame[etherLen:]
	ip[0] = 0x45 // v4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(total-etherLen))
	ip[8] = p.TTL
	ip[9] = p.Proto
	binary.BigEndian.PutUint32(ip[12:16], p.SrcIP)
	binary.BigEndian.PutUint32(ip[16:20], p.DstIP)
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:ipLen]))

	l4 := ip[ipLen:]
	binary.BigEndian.PutUint16(l4[0:2], p.SrcPort)
	binary.BigEndian.PutUint16(l4[2:4], p.DstPort)
	if p.Proto == ProtoUDP {
		binary.BigEndian.PutUint16(l4[4:6], uint16(l4len+len(payload)))
		copy(l4[8:], payload)
	} else {
		binary.BigEndian.PutUint32(l4[4:8], p.Seq)
		binary.BigEndian.PutUint32(l4[8:12], p.Ack)
		l4[12] = 5 << 4 // data offset
		l4[13] = p.TCPFlags
		copy(l4[20:], payload)
	}
	return frame
}

func encodeExtras(p *Packet) []byte {
	names := make([]string, 0, len(p.Extra)+1)
	for k := range p.Extra {
		names = append(names, k)
	}
	sortStrings(names)
	// IPD is carried as a pseudo-extra so the round trip preserves it.
	out := make([]byte, 2)
	count := len(names) + 1
	binary.LittleEndian.PutUint16(out, uint16(count))
	emit := func(name string, val uint64) {
		var nl [2]byte
		binary.LittleEndian.PutUint16(nl[:], uint16(len(name)))
		out = append(out, nl[:]...)
		out = append(out, name...)
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], val)
		out = append(out, v[:]...)
	}
	emit("__ipd", uint64(p.IPD))
	for _, n := range names {
		emit(n, p.Extra[n])
	}
	return out
}

func ipChecksum(b []byte) uint16 {
	sum := uint32(0)
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ReadPcap parses a libpcap capture produced by WritePcap (or any
// Ethernet/IPv4 capture; foreign payloads simply carry no Extra fields).
func ReadPcap(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [6]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("trace: pcap header: %w", err)
		}
	}
	if hdr[0] != pcapMagic {
		return nil, fmt.Errorf("trace: bad pcap magic %#x", hdr[0])
	}
	if hdr[5] != linkEther {
		return nil, fmt.Errorf("trace: unsupported link type %d", hdr[5])
	}
	out := &Trace{}
	for {
		var rec [4]uint32
		if err := binary.Read(br, binary.LittleEndian, &rec[0]); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		for i := 1; i < 4; i++ {
			if err := binary.Read(br, binary.LittleEndian, &rec[i]); err != nil {
				return nil, err
			}
		}
		frame := make([]byte, rec[2])
		if _, err := io.ReadFull(br, frame); err != nil {
			return nil, err
		}
		p, ok := parseFrame(frame)
		if !ok {
			continue
		}
		p.TS = uint64(rec[0])*1e6 + uint64(rec[1])
		out.Packets = append(out.Packets, p)
	}
}

// ReadPcapFile loads a pcap capture from disk.
func ReadPcapFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPcap(f)
}

func parseFrame(frame []byte) (Packet, bool) {
	var p Packet
	if len(frame) < 14+20 || binary.BigEndian.Uint16(frame[12:14]) != 0x0800 {
		return p, false
	}
	ip := frame[14:]
	ihl := int(ip[0]&0xf) * 4
	if len(ip) < ihl+8 {
		return p, false
	}
	p.Len = uint16(len(frame))
	p.TTL = ip[8]
	p.Proto = ip[9]
	p.SrcIP = binary.BigEndian.Uint32(ip[12:16])
	p.DstIP = binary.BigEndian.Uint32(ip[16:20])
	l4 := ip[ihl:]
	p.SrcPort = binary.BigEndian.Uint16(l4[0:2])
	p.DstPort = binary.BigEndian.Uint16(l4[2:4])
	var payload []byte
	if p.Proto == ProtoUDP {
		if len(l4) >= 8 {
			payload = l4[8:]
		}
	} else if p.Proto == ProtoTCP && len(l4) >= 20 {
		p.Seq = binary.BigEndian.Uint32(l4[4:8])
		p.Ack = binary.BigEndian.Uint32(l4[8:12])
		p.TCPFlags = l4[13]
		off := int(l4[12]>>4) * 4
		if len(l4) >= off {
			payload = l4[off:]
		}
	}
	decodeExtras(&p, payload)
	return p, true
}

func decodeExtras(p *Packet, payload []byte) {
	if len(payload) < 2 {
		return
	}
	count := int(binary.LittleEndian.Uint16(payload))
	pos := 2
	for i := 0; i < count; i++ {
		if pos+2 > len(payload) {
			return
		}
		nl := int(binary.LittleEndian.Uint16(payload[pos:]))
		pos += 2
		if nl == 0 || nl > 64 || pos+nl+8 > len(payload) {
			return
		}
		name := string(payload[pos : pos+nl])
		pos += nl
		val := binary.LittleEndian.Uint64(payload[pos:])
		pos += 8
		if name == "__ipd" {
			p.IPD = uint16(val)
		} else {
			p.SetField(name, val)
		}
	}
}
