package trace

import (
	"math"
	"math/rand"
)

// GenOptions parameterizes the synthetic CAIDA-like workload generator.
// Zero values select the defaults noted per field.
type GenOptions struct {
	Seed    int64
	Packets int // default 20000
	Flows   int // default 500

	TCPShare    float64 // fraction of TCP flows (default 0.9)
	RetransRate float64 // P(TCP packet repeats its flow's previous seq) (default 0.02)
	FlowZipfS   float64 // flow-popularity skew, >1 (default 1.2)
	MeanIPDms   float64 // mean inter-packet delay in ms (default 5)

	// TTLSpoofRate randomizes the TTL of a packet independent of its
	// source, modelling spoofed traffic for NetHCF (default 0.01).
	TTLSpoofRate float64

	// CtxRate emits Poise-style context packets carrying Extra["ctx"]
	// (default 0: no context packets).
	CtxRate float64
	// CtxTypes is the number of distinct context types (default 4).
	CtxTypes int

	// KeySpace > 0 adds NetCache-style Extra["key"]/Extra["op"] fields:
	// keys are Zipf-distributed over [0,KeySpace) with skew KeyZipfS, and
	// ops are writes with probability WriteRatio.
	KeySpace   int
	KeyZipfS   float64 // default 1.3
	WriteRatio float64 // default 0.05

	// SrcIPBase/SrcIPSpan restrict flow source addresses to a block
	// (0 span = unrestricted). SrcPortBase/SrcPortSpan likewise.
	SrcIPBase   uint32
	SrcIPSpan   int
	SrcPortBase uint16
	SrcPortSpan int

	// DupAckRate injects duplicate-ACK packets (NetWarden loss signals).
	DupAckRate float64
	// WideIPDRate injects abnormally large inter-packet delays
	// (NetWarden covert-timing suspects).
	WideIPDRate float64
}

func (o GenOptions) withDefaults() GenOptions {
	if o.Packets == 0 {
		o.Packets = 20000
	}
	if o.Flows == 0 {
		o.Flows = 500
	}
	if o.TCPShare == 0 {
		o.TCPShare = 0.9
	}
	if o.RetransRate == 0 {
		o.RetransRate = 0.02
	}
	if o.FlowZipfS == 0 {
		o.FlowZipfS = 1.2
	}
	if o.MeanIPDms == 0 {
		o.MeanIPDms = 5
	}
	if o.TTLSpoofRate == 0 {
		o.TTLSpoofRate = 0.01
	}
	if o.CtxTypes == 0 {
		o.CtxTypes = 4
	}
	if o.KeyZipfS == 0 {
		o.KeyZipfS = 1.3
	}
	if o.WriteRatio == 0 {
		o.WriteRatio = 0.05
	}
	return o
}

// Epoch presets emulate CAIDA captures from different years: the traffic
// mix drifts (Figure 13 uses 2016/2018/2019 traces with query results
// varying by up to two orders of magnitude).
func Epoch(year int) GenOptions {
	switch year {
	case 2016:
		return GenOptions{Seed: 2016, TCPShare: 0.85, RetransRate: 0.035, FlowZipfS: 1.1, MeanIPDms: 8}
	case 2018:
		return GenOptions{Seed: 2018, TCPShare: 0.90, RetransRate: 0.015, FlowZipfS: 1.3, MeanIPDms: 4}
	default: // 2019
		return GenOptions{Seed: 2019, TCPShare: 0.93, RetransRate: 0.008, FlowZipfS: 1.5, MeanIPDms: 3}
	}
}

type flowState struct {
	srcIP, dstIP     uint32
	srcPort, dstPort uint16
	proto            uint8
	ttl              uint8
	seq              uint32
	started          bool
	lastTS           uint64
}

// Generate produces a synthetic trace.
func Generate(opt GenOptions) *Trace {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))

	flows := make([]flowState, opt.Flows)
	for i := range flows {
		proto := uint8(ProtoUDP)
		if rng.Float64() < opt.TCPShare {
			proto = ProtoTCP
		}
		srcIP := rng.Uint32()
		if opt.SrcIPSpan > 0 {
			srcIP = opt.SrcIPBase + uint32(rng.Intn(opt.SrcIPSpan))
		}
		srcPort := uint16(1024 + rng.Intn(64000))
		if opt.SrcPortSpan > 0 {
			srcPort = opt.SrcPortBase + uint16(rng.Intn(opt.SrcPortSpan))
		}
		flows[i] = flowState{
			srcIP:   srcIP,
			dstIP:   rng.Uint32(),
			srcPort: srcPort,
			dstPort: wellKnownPort(rng),
			proto:   proto,
			ttl:     uint8(64 - rng.Intn(30)),
			seq:     rng.Uint32(),
		}
	}
	zipf := rand.NewZipf(rng, opt.FlowZipfS, 1, uint64(opt.Flows-1))

	var keyZipf *rand.Zipf
	if opt.KeySpace > 0 {
		keyZipf = rand.NewZipf(rng, opt.KeyZipfS, 1, uint64(opt.KeySpace-1))
	}

	t := &Trace{Packets: make([]Packet, 0, opt.Packets)}
	ts := uint64(0)
	for i := 0; i < opt.Packets; i++ {
		f := &flows[zipf.Uint64()]
		ipdMS := expDelay(rng, opt.MeanIPDms)
		if opt.WideIPDRate > 0 && rng.Float64() < opt.WideIPDRate {
			ipdMS = opt.MeanIPDms * (50 + rng.Float64()*200)
		}
		ts += uint64(ipdMS * 1000)

		p := Packet{
			TS:      ts,
			Proto:   f.proto,
			SrcIP:   f.srcIP,
			DstIP:   f.dstIP,
			SrcPort: f.srcPort,
			DstPort: f.dstPort,
			TTL:     f.ttl,
			Len:     uint16(64 + rng.Intn(1400)),
		}
		flowIPD := uint64(0)
		if f.lastTS != 0 {
			flowIPD = (ts - f.lastTS) / 1000
		}
		if flowIPD > 65535 {
			flowIPD = 65535
		}
		p.IPD = uint16(flowIPD)
		f.lastTS = ts

		if f.proto == ProtoTCP {
			switch {
			case !f.started:
				p.TCPFlags = FlagSYN
				f.started = true
			case opt.DupAckRate > 0 && rng.Float64() < opt.DupAckRate:
				p.TCPFlags = FlagACK
				p.Len = 64
				// Duplicate ACK: same ack number as a loss signal.
				p.Ack = f.seq
			default:
				p.TCPFlags = FlagACK
				p.Ack = rng.Uint32()
			}
			if rng.Float64() < opt.RetransRate {
				// Retransmission: repeat the flow's current seq.
				p.Seq = f.seq
			} else {
				f.seq += uint32(p.Len)
				p.Seq = f.seq
			}
		} else {
			// seq is undefined for non-TCP packets; fill with noise so
			// distribution queries are not skewed by a constant.
			p.Seq = rng.Uint32()
		}

		if rng.Float64() < opt.TTLSpoofRate {
			p.TTL = uint8(1 + rng.Intn(255))
		}
		if opt.CtxRate > 0 {
			// Non-context packets carry an explicit ctx=0 so that marginal
			// queries see the full distribution, zero included.
			ctx := uint64(0)
			if rng.Float64() < opt.CtxRate {
				ctx = uint64(1 + rng.Intn(opt.CtxTypes))
			}
			p.SetField("ctx", ctx)
		}
		if keyZipf != nil {
			p.SetField("key", keyZipf.Uint64())
			op := uint64(0)
			if rng.Float64() < opt.WriteRatio {
				op = 1
			}
			p.SetField("op", op)
		}
		t.Packets = append(t.Packets, p)
	}
	return t
}

// Protocol constants (duplicated from ir to keep the package standalone).
const (
	ProtoTCP = 6
	ProtoUDP = 17

	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

func wellKnownPort(rng *rand.Rand) uint16 {
	ports := []uint16{80, 443, 22, 53, 8080, 3306, 6379}
	if rng.Float64() < 0.8 {
		return ports[rng.Intn(len(ports))]
	}
	return uint16(1024 + rng.Intn(64000))
}

func expDelay(rng *rand.Rand, mean float64) float64 {
	return -mean * math.Log(1-rng.Float64())
}
