package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

func TestPacketFieldRoundtrip(t *testing.T) {
	var p Packet
	fields := []string{"proto", "src_ip", "dst_ip", "src_port", "dst_port",
		"tcp_flags", "seq", "ack", "ttl", "pkt_len", "ipd", "key"}
	for i, f := range fields {
		p.SetField(f, uint64(i+1))
	}
	for i, f := range fields {
		v, ok := p.Field(f)
		if !ok || v != uint64(i+1) {
			t.Fatalf("field %s: got %d ok=%v", f, v, ok)
		}
	}
	if _, ok := p.Field("nonexistent"); ok {
		t.Fatal("unknown field should report !ok")
	}
}

func TestPacketClone(t *testing.T) {
	p := Packet{Proto: 6, Extra: map[string]uint64{"key": 1}}
	q := p.Clone()
	q.Extra["key"] = 2
	if p.Extra["key"] != 1 {
		t.Fatal("clone shares Extra map")
	}
}

func TestBinaryRoundtrip(t *testing.T) {
	tr := Generate(GenOptions{Seed: 1, Packets: 500, Flows: 20, CtxRate: 0.1, KeySpace: 100})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("len %d != %d", got.Len(), tr.Len())
	}
	for i := range tr.Packets {
		a, b := tr.Packets[i], got.Packets[i]
		if a.TS != b.TS || a.Proto != b.Proto || a.Seq != b.Seq || a.IPD != b.IPD {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a, b)
		}
		for k, v := range a.Extra {
			if b.Extra[k] != v {
				t.Fatalf("packet %d extra %s differs", i, k)
			}
		}
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTMAGIC...."))); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestFileRoundtrip(t *testing.T) {
	tr := Generate(GenOptions{Seed: 2, Packets: 100, Flows: 5})
	path := filepath.Join(t.TempDir(), "t.p4wntrc")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 100 {
		t.Fatalf("got %d packets", got.Len())
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(GenOptions{Seed: 7, Packets: 300})
	b := Generate(GenOptions{Seed: 7, Packets: 300})
	for i := range a.Packets {
		if a.Packets[i].TS != b.Packets[i].TS || a.Packets[i].Seq != b.Packets[i].Seq {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateTCPShare(t *testing.T) {
	tr := Generate(GenOptions{Seed: 3, Packets: 5000, TCPShare: 0.9})
	tcp := 0
	for i := range tr.Packets {
		if tr.Packets[i].Proto == ProtoTCP {
			tcp++
		}
	}
	share := float64(tcp) / float64(tr.Len())
	if share < 0.75 || share > 0.99 {
		t.Fatalf("TCP share %v far from configured 0.9 (flow popularity skews packet share)", share)
	}
}

func TestGenerateRetransRate(t *testing.T) {
	tr := Generate(GenOptions{Seed: 4, Packets: 20000, RetransRate: 0.05})
	q := NewQueryProcessor(tr)
	pe, ok := q.PairEqualProb("seq")
	if !ok {
		t.Fatal("no pair-equality answer")
	}
	if math.Abs(pe-0.05) > 0.02 {
		t.Fatalf("measured retrans ratio %v, configured 0.05", pe)
	}
}

func TestQueryProcessorMarginals(t *testing.T) {
	tr := Generate(GenOptions{Seed: 5, Packets: 10000, TCPShare: 0.9})
	q := NewQueryProcessor(tr)
	d, ok := q.FieldDist("proto")
	if !ok {
		t.Fatal("proto dist missing")
	}
	pTCP := d.P(ProtoTCP)
	if pTCP < 0.7 || pTCP > 1.0 {
		t.Fatalf("P(tcp) = %v", pTCP)
	}
	// Mass normalized.
	if m := d.MassIn(0, 255); math.Abs(m-1) > 1e-9 {
		t.Fatalf("proto mass = %v", m)
	}
	// High-cardinality field gets bucketed but stays normalized.
	d2, ok := q.FieldDist("src_ip")
	if !ok {
		t.Fatal("src_ip dist missing")
	}
	if m := d2.MassIn(0, ^uint64(0)>>1); m <= 0 {
		t.Fatal("src_ip dist empty")
	}
}

func TestQueryCache(t *testing.T) {
	tr := Generate(GenOptions{Seed: 6, Packets: 1000})
	q := NewQueryProcessor(tr)
	q.FieldDist("proto")
	scans := q.Scans()
	q.FieldDist("proto")
	if q.Scans() != scans {
		t.Fatal("second query should hit cache")
	}
	if q.QueryCount() != 2 {
		t.Fatalf("query count = %d", q.QueryCount())
	}
	q.FieldDistNoCache("proto")
	if q.Scans() != scans+1 {
		t.Fatal("no-cache query should rescan")
	}
}

func TestUnknownFieldQueries(t *testing.T) {
	tr := Generate(GenOptions{Seed: 8, Packets: 100})
	q := NewQueryProcessor(tr)
	if _, ok := q.FieldDist("key"); ok {
		t.Fatal("key not generated: should be unknown")
	}
	if _, ok := q.PairEqualProb("key"); ok {
		t.Fatal("key pair-equality should be unknown")
	}
}

func TestRatioWhere(t *testing.T) {
	tr := Generate(GenOptions{Seed: 9, Packets: 5000})
	q := NewQueryProcessor(tr)
	syn := q.RatioWhere(func(p *Packet) bool { return p.TCPFlags&FlagSYN != 0 })
	if syn <= 0 || syn > 0.5 {
		t.Fatalf("SYN ratio %v implausible", syn)
	}
}

func TestTopValues(t *testing.T) {
	tr := Generate(GenOptions{Seed: 10, Packets: 10000, KeySpace: 1000})
	q := NewQueryProcessor(tr)
	top := q.TopValues("key", 10)
	if len(top) != 10 {
		t.Fatalf("want 10 hot keys, got %d", len(top))
	}
	// Zipf: key 0 should be the hottest.
	if top[0] != 0 {
		t.Fatalf("hottest key = %d, expected 0 under Zipf", top[0])
	}
}

func TestSliceAndDuration(t *testing.T) {
	tr := Generate(GenOptions{Seed: 11, Packets: 1000})
	mid := tr.Packets[500].TS
	first := tr.Slice(0, mid)
	second := tr.Slice(mid, ^uint64(0))
	if first.Len()+second.Len() != tr.Len() {
		t.Fatalf("slices don't partition: %d + %d != %d", first.Len(), second.Len(), tr.Len())
	}
	if tr.Duration() == 0 {
		t.Fatal("duration should be positive")
	}
}

func TestEpochsDiffer(t *testing.T) {
	qa := NewQueryProcessor(Generate(Epoch(2016)))
	qb := NewQueryProcessor(Generate(Epoch(2019)))
	pa, _ := qa.PairEqualProb("seq")
	pb, _ := qb.PairEqualProb("seq")
	if pa <= pb {
		t.Fatalf("2016 retrans (%v) should exceed 2019 (%v)", pa, pb)
	}
}

func TestRetime(t *testing.T) {
	tr := Generate(GenOptions{Seed: 20, Packets: 1000})
	tr.Retime(5_000_000, 500)
	if tr.Packets[0].TS != 5_000_000 {
		t.Fatalf("start TS = %d", tr.Packets[0].TS)
	}
	if got := tr.Packets[1].TS - tr.Packets[0].TS; got != 2000 {
		t.Fatalf("spacing = %d us, want 2000", got)
	}
	// 1000 packets at 500 pps spans ~2 virtual seconds.
	if d := tr.Duration(); d < 1_900_000 || d > 2_100_000 {
		t.Fatalf("duration = %d us", d)
	}
}

func TestConcat(t *testing.T) {
	a := Generate(GenOptions{Seed: 21, Packets: 100})
	b := Generate(GenOptions{Seed: 22, Packets: 50})
	a.Retime(0, 100)
	b.Retime(0, 100)
	c := Concat(a, b)
	if c.Len() != 150 {
		t.Fatalf("len = %d", c.Len())
	}
	// Second half starts right after the first and preserves ordering.
	if c.Packets[100].TS <= c.Packets[99].TS {
		t.Fatal("concat halves overlap in time")
	}
	for i := 1; i < c.Len(); i++ {
		if c.Packets[i].TS < c.Packets[i-1].TS {
			t.Fatalf("timestamps regress at %d", i)
		}
	}
	// Concat must not alias the source packets.
	c.Packets[120].SetField("key", 99)
	if v, _ := b.Packets[20].Field("key"); v == 99 {
		t.Fatal("Concat aliases source Extra maps")
	}
}
