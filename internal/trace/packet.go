// Package trace provides packet traces: the container and binary format,
// a synthetic CAIDA-like workload generator, and the interactive query
// processor that serves as P4wn's traffic oracle (the paper pins a pcap
// trace in memory and answers header-distribution queries against it,
// caching results).
package trace

import (
	"fmt"
	"sort"
)

// Packet is one packet record. Fixed header fields mirror ir.StdFields;
// Extra carries program-specific fields (NetCache keys, Poise context
// types, ...).
type Packet struct {
	TS       uint64 // virtual time, microseconds
	Proto    uint8
	SrcIP    uint32
	DstIP    uint32
	SrcPort  uint16
	DstPort  uint16
	TCPFlags uint8
	Seq      uint32
	Ack      uint32
	TTL      uint8
	Len      uint16
	IPD      uint16 // inter-packet delay, milliseconds

	Extra map[string]uint64
}

// Field reads a header field by its IR name.
func (p *Packet) Field(name string) (uint64, bool) {
	switch name {
	case "proto":
		return uint64(p.Proto), true
	case "src_ip":
		return uint64(p.SrcIP), true
	case "dst_ip":
		return uint64(p.DstIP), true
	case "src_port":
		return uint64(p.SrcPort), true
	case "dst_port":
		return uint64(p.DstPort), true
	case "tcp_flags":
		return uint64(p.TCPFlags), true
	case "seq":
		return uint64(p.Seq), true
	case "ack":
		return uint64(p.Ack), true
	case "ttl":
		return uint64(p.TTL), true
	case "pkt_len":
		return uint64(p.Len), true
	case "ipd":
		return uint64(p.IPD), true
	}
	if p.Extra != nil {
		if v, ok := p.Extra[name]; ok {
			return v, true
		}
	}
	return 0, false
}

// SetField writes a header field by its IR name; unknown names go to Extra.
func (p *Packet) SetField(name string, v uint64) {
	switch name {
	case "proto":
		p.Proto = uint8(v)
	case "src_ip":
		p.SrcIP = uint32(v)
	case "dst_ip":
		p.DstIP = uint32(v)
	case "src_port":
		p.SrcPort = uint16(v)
	case "dst_port":
		p.DstPort = uint16(v)
	case "tcp_flags":
		p.TCPFlags = uint8(v)
	case "seq":
		p.Seq = uint32(v)
	case "ack":
		p.Ack = uint32(v)
	case "ttl":
		p.TTL = uint8(v)
	case "pkt_len":
		p.Len = uint16(v)
	case "ipd":
		p.IPD = uint16(v)
	default:
		if p.Extra == nil {
			p.Extra = map[string]uint64{}
		}
		p.Extra[name] = v
	}
}

// FlowID returns a canonical 5-tuple identifier string.
func (p *Packet) FlowID() string {
	return fmt.Sprintf("%d:%d:%d:%d:%d", p.SrcIP, p.DstIP, p.SrcPort, p.DstPort, p.Proto)
}

// Clone deep-copies the packet.
func (p *Packet) Clone() Packet {
	q := *p
	if p.Extra != nil {
		q.Extra = make(map[string]uint64, len(p.Extra))
		for k, v := range p.Extra {
			q.Extra[k] = v
		}
	}
	return q
}

// Trace is an ordered packet sequence.
type Trace struct {
	Packets []Packet
}

// Len returns the number of packets.
func (t *Trace) Len() int { return len(t.Packets) }

// Append adds a packet.
func (t *Trace) Append(p Packet) { t.Packets = append(t.Packets, p) }

// Duration returns the covered virtual time in microseconds.
func (t *Trace) Duration() uint64 {
	if len(t.Packets) == 0 {
		return 0
	}
	return t.Packets[len(t.Packets)-1].TS - t.Packets[0].TS
}

// Slice returns the sub-trace within [fromTS, toTS).
func (t *Trace) Slice(fromTS, toTS uint64) *Trace {
	out := &Trace{}
	for i := range t.Packets {
		if ts := t.Packets[i].TS; ts >= fromTS && ts < toTS {
			out.Packets = append(out.Packets, t.Packets[i])
		}
	}
	return out
}

// Flows returns the distinct flow IDs in first-seen order.
func (t *Trace) Flows() []string {
	seen := map[string]bool{}
	var out []string
	for i := range t.Packets {
		id := t.Packets[i].FlowID()
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Retime rewrites timestamps so the trace starts at startTS and carries
// pps packets per second (used to replay workloads at a controlled rate).
func (t *Trace) Retime(startTS uint64, pps int) {
	if pps <= 0 {
		pps = 1000
	}
	step := uint64(1e6) / uint64(pps)
	for i := range t.Packets {
		t.Packets[i].TS = startTS + uint64(i)*step
	}
}

// Concat appends o's packets after t's, preserving each packet's offset
// within its half (o is shifted to start right after t ends).
func Concat(t, o *Trace) *Trace {
	out := &Trace{Packets: append([]Packet(nil), t.Packets...)}
	var base uint64
	if n := len(t.Packets); n > 0 {
		base = t.Packets[n-1].TS + 1
	}
	var first uint64
	if len(o.Packets) > 0 {
		first = o.Packets[0].TS
	}
	for i := range o.Packets {
		p := o.Packets[i].Clone()
		p.TS = base + (o.Packets[i].TS - first)
		out.Packets = append(out.Packets, p)
	}
	return out
}

// FieldValues returns the sorted distinct values of a field with counts.
func (t *Trace) FieldValues(field string) ([]uint64, []int) {
	counts := map[uint64]int{}
	for i := range t.Packets {
		if v, ok := t.Packets[i].Field(field); ok {
			counts[v]++
		}
	}
	vals := make([]uint64, 0, len(counts))
	for v := range counts {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	cnts := make([]int, len(vals))
	for i, v := range vals {
		cnts[i] = counts[v]
	}
	return vals, cnts
}
