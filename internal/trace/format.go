package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary trace format (the repository's pcap stand-in):
//
//	magic   [8]byte  "P4WNTRC1"
//	count   uint32
//	per packet:
//	  fixed fields in declaration order (little endian)
//	  extraCount uint16, then per extra: nameLen uint16, name, value uint64
const magic = "P4WNTRC1"

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.Packets))); err != nil {
		return err
	}
	for i := range t.Packets {
		p := &t.Packets[i]
		fixed := []interface{}{
			p.TS, p.Proto, p.SrcIP, p.DstIP, p.SrcPort, p.DstPort,
			p.TCPFlags, p.Seq, p.Ack, p.TTL, p.Len, p.IPD,
		}
		for _, f := range fixed {
			if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(p.Extra))); err != nil {
			return err
		}
		// Deterministic order for reproducible files.
		names := make([]string, 0, len(p.Extra))
		for k := range p.Extra {
			names = append(names, k)
		}
		sortStrings(names)
		for _, name := range names {
			if err := binary.Write(bw, binary.LittleEndian, uint16(len(name))); err != nil {
				return err
			}
			if _, err := bw.WriteString(name); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, p.Extra[name]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	t := &Trace{Packets: make([]Packet, 0, count)}
	for i := uint32(0); i < count; i++ {
		var p Packet
		fixed := []interface{}{
			&p.TS, &p.Proto, &p.SrcIP, &p.DstIP, &p.SrcPort, &p.DstPort,
			&p.TCPFlags, &p.Seq, &p.Ack, &p.TTL, &p.Len, &p.IPD,
		}
		for _, f := range fixed {
			if err := binary.Read(br, binary.LittleEndian, f); err != nil {
				return nil, fmt.Errorf("trace: packet %d: %w", i, err)
			}
		}
		var nExtra uint16
		if err := binary.Read(br, binary.LittleEndian, &nExtra); err != nil {
			return nil, fmt.Errorf("trace: packet %d extras: %w", i, err)
		}
		if nExtra > 0 {
			p.Extra = make(map[string]uint64, nExtra)
		}
		for j := uint16(0); j < nExtra; j++ {
			var nameLen uint16
			if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
				return nil, err
			}
			name := make([]byte, nameLen)
			if _, err := io.ReadFull(br, name); err != nil {
				return nil, err
			}
			var val uint64
			if err := binary.Read(br, binary.LittleEndian, &val); err != nil {
				return nil, err
			}
			p.Extra[string(name)] = val
		}
		t.Packets = append(t.Packets, p)
	}
	return t, nil
}

// WriteFile writes a trace to disk.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile loads a trace from disk.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
