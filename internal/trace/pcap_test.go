package trace

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"testing"
)

func TestPcapRoundtrip(t *testing.T) {
	tr := Generate(GenOptions{Seed: 31, Packets: 400, Flows: 20, KeySpace: 64, CtxRate: 0.1})
	var buf bytes.Buffer
	if err := tr.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("len %d != %d", got.Len(), tr.Len())
	}
	for i := range tr.Packets {
		a, b := &tr.Packets[i], &got.Packets[i]
		if a.SrcIP != b.SrcIP || a.DstIP != b.DstIP || a.SrcPort != b.SrcPort ||
			a.DstPort != b.DstPort || a.Proto != b.Proto || a.TTL != b.TTL {
			t.Fatalf("packet %d header mismatch: %+v vs %+v", i, a, b)
		}
		if a.Proto == ProtoTCP && (a.Seq != b.Seq || a.TCPFlags != b.TCPFlags || a.Ack != b.Ack) {
			t.Fatalf("packet %d TCP fields mismatch", i)
		}
		if a.TS != b.TS {
			t.Fatalf("packet %d timestamp mismatch: %d vs %d", i, a.TS, b.TS)
		}
		if a.IPD != b.IPD {
			t.Fatalf("packet %d IPD mismatch", i)
		}
		for k, v := range a.Extra {
			if got, ok := b.Extra[k]; !ok || got != v {
				t.Fatalf("packet %d extra %q mismatch", i, k)
			}
		}
	}
}

func TestPcapFileRoundtrip(t *testing.T) {
	tr := Generate(GenOptions{Seed: 32, Packets: 50})
	path := filepath.Join(t.TempDir(), "t.pcap")
	if err := tr.WritePcapFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 50 {
		t.Fatalf("len = %d", got.Len())
	}
}

func TestPcapHeaderWellFormed(t *testing.T) {
	tr := Generate(GenOptions{Seed: 33, Packets: 3})
	var buf bytes.Buffer
	if err := tr.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if binary.LittleEndian.Uint32(b[0:4]) != pcapMagic {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint32(b[20:24]) != linkEther {
		t.Fatal("bad link type")
	}
	// First record's frame must be a valid IPv4-over-Ethernet packet.
	frame := b[24+16:]
	if binary.BigEndian.Uint16(frame[12:14]) != 0x0800 {
		t.Fatal("not IPv4")
	}
	// IPv4 checksum must verify (sums to 0xffff with the checksum field).
	ip := frame[14 : 14+20]
	sum := uint32(0)
	for i := 0; i < 20; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if uint16(sum) != 0xffff {
		t.Fatalf("IP checksum does not verify: %#x", sum)
	}
}

func TestPcapRejectsGarbage(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader([]byte("not a pcap file at all....."))); err == nil {
		t.Fatal("garbage should be rejected")
	}
}

func TestPcapMinFrameLengths(t *testing.T) {
	// Tiny declared lengths must still produce valid frames.
	tr := &Trace{Packets: []Packet{{Proto: ProtoTCP, Len: 1}, {Proto: ProtoUDP, Len: 1}}}
	var buf bytes.Buffer
	if err := tr.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("len = %d", got.Len())
	}
}
