package trace

import (
	"sort"
	"sync"

	"repro/internal/dist"
)

// QueryProcessor answers P4wn's interactive traffic-composition queries
// against a pinned in-memory trace, mirroring the paper's query processor:
// the trace is loaded once, and query results are cached and reused.
//
// It implements dist.Oracle. Marginal distributions are estimated from the
// empirical histogram; pair-equality queries (e.g. "how often does a flow
// repeat a seq?") are answered from within-flow adjacent packet pairs,
// which is exactly the correlation retransmission-style constraints need.
//
// All methods are safe for concurrent use: parallel model-counting workers
// hit the oracle simultaneously, so the caches and counters sit behind one
// mutex (queries are cheap relative to the counting they feed — a sharded
// cache here would be over-engineering).
type QueryProcessor struct {
	tr *Trace

	mu        sync.Mutex
	distCache map[string]dist.Dist
	pairCache map[string]float64
	queries   int
	scans     int
}

// NewQueryProcessor pins a trace and prepares the cache.
func NewQueryProcessor(tr *Trace) *QueryProcessor {
	return &QueryProcessor{
		tr:        tr,
		distCache: map[string]dist.Dist{},
		pairCache: map[string]float64{},
	}
}

// QueryCount implements dist.Oracle.
func (q *QueryProcessor) QueryCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queries
}

// Scans reports how many full trace scans were performed (cache misses).
func (q *QueryProcessor) Scans() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.scans
}

// FieldDist implements dist.Oracle. Distributions for low-cardinality
// fields are exact (one point piece per value); high-cardinality fields are
// bucketed into up to 64 quantile ranges.
func (q *QueryProcessor) FieldDist(field string) (dist.Dist, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.queries++
	if d, ok := q.distCache[field]; ok {
		return d, true
	}
	q.scans++
	vals, counts := q.tr.FieldValues(field)
	if len(vals) == 0 {
		return dist.Dist{}, false
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	var pieces []dist.Piece
	if len(vals) <= 64 {
		for i, v := range vals {
			pieces = append(pieces, dist.Piece{Lo: v, Hi: v, Mass: float64(counts[i]) / float64(total)})
		}
	} else {
		// Quantile buckets: ~equal sample mass per bucket, uniform inside.
		perBucket := (total + 63) / 64
		i := 0
		for i < len(vals) {
			lo := vals[i]
			mass := 0
			j := i
			for j < len(vals) && mass < perBucket {
				mass += counts[j]
				j++
			}
			hi := vals[j-1]
			pieces = append(pieces, dist.Piece{Lo: lo, Hi: hi, Mass: float64(mass) / float64(total)})
			i = j
		}
	}
	d, err := dist.FromPieces(pieces)
	if err != nil {
		return dist.Dist{}, false
	}
	q.distCache[field] = d
	return d, true
}

// FieldDistNoCache recomputes a marginal bypassing the cache (for the
// query-cache ablation).
func (q *QueryProcessor) FieldDistNoCache(field string) (dist.Dist, bool) {
	q.mu.Lock()
	delete(q.distCache, field)
	q.mu.Unlock()
	return q.FieldDist(field)
}

// PairEqualProb implements dist.Oracle: the fraction of within-flow
// adjacent packet pairs whose field values coincide. For "seq" this is the
// retransmission ratio; for IPD-like fields it measures timing regularity.
func (q *QueryProcessor) PairEqualProb(field string) (float64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.queries++
	if p, ok := q.pairCache[field]; ok {
		return p, true
	}
	q.scans++
	last := map[string]uint64{}
	pairs, equal := 0, 0
	for i := range q.tr.Packets {
		p := &q.tr.Packets[i]
		v, ok := p.Field(field)
		if !ok {
			continue
		}
		id := p.FlowID()
		if prev, seen := last[id]; seen {
			pairs++
			if prev == v {
				equal++
			}
		}
		last[id] = v
	}
	if pairs == 0 {
		return 0, false
	}
	pe := float64(equal) / float64(pairs)
	q.pairCache[field] = pe
	return pe, true
}

// RatioWhere returns the fraction of packets for which pred holds — the
// general-purpose query form ("what fraction of traffic is TCP SYN?").
func (q *QueryProcessor) RatioWhere(pred func(*Packet) bool) float64 {
	q.mu.Lock()
	q.queries++
	q.scans++
	q.mu.Unlock()
	if len(q.tr.Packets) == 0 {
		return 0
	}
	n := 0
	for i := range q.tr.Packets {
		if pred(&q.tr.Packets[i]) {
			n++
		}
	}
	return float64(n) / float64(len(q.tr.Packets))
}

// TopValues returns the k most frequent values of a field, most frequent
// first (used to pick NetCache hot keys and similar workload facts).
func (q *QueryProcessor) TopValues(field string, k int) []uint64 {
	q.mu.Lock()
	q.queries++
	q.scans++
	q.mu.Unlock()
	vals, counts := q.tr.FieldValues(field)
	type vc struct {
		v uint64
		c int
	}
	vcs := make([]vc, len(vals))
	for i := range vals {
		vcs[i] = vc{vals[i], counts[i]}
	}
	sort.Slice(vcs, func(i, j int) bool {
		if vcs[i].c != vcs[j].c {
			return vcs[i].c > vcs[j].c
		}
		return vcs[i].v < vcs[j].v
	})
	if k > len(vcs) {
		k = len(vcs)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = vcs[i].v
	}
	return out
}
