package eval

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/prob"
	"repro/internal/programs"
)

// Fig8Point is one ps-baseline measurement.
type Fig8Point struct {
	Elapsed     time.Duration
	Samples     int
	Granularity float64 // the finest probability 1/samples can resolve
}

// Fig8Panel is one system of Figure 8.
type Fig8Panel struct {
	Name string
	// TargetLabel is the rare code block whose probability is estimated.
	TargetLabel string
	// P4wnEstimate is the telescoped estimate (log10) for the target.
	P4wnEstimate prob.P
	P4wnTime     time.Duration
	// Sampling is the ps baseline's granularity trajectory.
	Sampling []Fig8Point
}

// Fig8Result reproduces Figures 8a–8c.
type Fig8Result struct{ Panels []Fig8Panel }

func (r *Fig8Result) String() string {
	out := "Figure 8: sampling baseline (ps) granularity vs P4wn telescoped estimates\n"
	for _, p := range r.Panels {
		out += fmt.Sprintf("\n%s — target %q: P4wn estimate %s in %s\n",
			p.Name, p.TargetLabel, p.P4wnEstimate, p.P4wnTime.Round(time.Millisecond))
		header := []string{"elapsed (s)", "samples", "finest granularity"}
		var rows [][]string
		for _, pt := range p.Sampling {
			rows = append(rows, []string{
				fmtDur(pt.Elapsed),
				fmt.Sprintf("%d", pt.Samples),
				fmt.Sprintf("%.2e", pt.Granularity),
			})
		}
		out += renderTable(header, rows)
	}
	return out
}

// fig8Targets maps the three systems to their rare expensive block.
var fig8Targets = map[int]string{
	5:  "reroute",
	6:  "overload_alarm",
	11: "dup_ack",
}

// Figure8 compares P4wn's telescoped estimates with the ps path-sampling
// baseline on Blink, NetCache, and NetWarden. Sampling improves its
// granularity with running time but stays orders of magnitude coarser than
// the telescoped estimates.
func Figure8(cfg Config) (*Fig8Result, error) {
	res := &Fig8Result{}
	for _, id := range []int{5, 6, 11} {
		m, _ := programs.SID(id)
		prog := m.Build()
		oracle := cfg.oracleFor(m)

		opt := cfg.profileOptions()
		opt.SampleBudget = 2000
		start := time.Now()
		prof, err := core.ProbProf(prog, oracle, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		p4wnTime := time.Since(start)

		label := fig8Targets[id]
		np, ok := prof.ByLabel(label)
		if !ok {
			return nil, fmt.Errorf("%s: target %q missing", m.Name, label)
		}

		points := baseline.PathSample(prog, cfg.oracleFor(m), cfg.Seed,
			cfg.SampleBudget*4, cfg.BaselineBudget*2)
		panel := Fig8Panel{
			Name:         m.Name,
			TargetLabel:  label,
			P4wnEstimate: np.P,
			P4wnTime:     p4wnTime,
		}
		for _, pt := range points {
			panel.Sampling = append(panel.Sampling, Fig8Point{
				Elapsed:     pt.Elapsed,
				Samples:     pt.Samples,
				Granularity: pt.Granularity,
			})
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}
