package eval

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/programs"
	"repro/internal/sym"
)

// SweepPoint is one (x, baseline, p4wn) measurement of a Figure 6 sweep.
type SweepPoint struct {
	X                int
	BaselineTime     time.Duration
	BaselineTimedOut bool
	P4wnTime         time.Duration
}

// SweepResult is one Figure 6 panel.
type SweepResult struct {
	Title  string
	XLabel string
	Points []SweepPoint
}

func (r *SweepResult) String() string {
	header := []string{r.XLabel, "baseline KLEE (s)", "P4wn (s)"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.X),
			fmtTimeout(p.BaselineTime, p.BaselineTimedOut),
			fmtDur(p.P4wnTime),
		})
	}
	return r.Title + "\n" + renderTable(header, rows)
}

// p4wnTime profiles a program and returns the wall time.
func p4wnTime(cfg Config, prog *ir.Program) (time.Duration, error) {
	opt := cfg.profileOptions()
	opt.SampleBudget = 2000
	start := time.Now()
	_, err := core.ProbProf(prog, nil, opt)
	return time.Since(start), err
}

// Figure6a sweeps the counter threshold N of S12: the baseline must unroll
// N packets (2^N paths) while telescoping stays flat.
func Figure6a(cfg Config) (*SweepResult, error) {
	res := &SweepResult{Title: "Figure 6a: telescoping (counter.p4, threshold sweep)", XLabel: "threshold"}
	for _, n := range cfg.ThresholdSweep {
		prog := programs.Counter(uint64(n))
		b := baseline.Exhaustive(prog, n+1, cfg.BaselineBudget, cfg.BaselineMaxPaths)
		pt, err := p4wnTime(cfg, programs.Counter(uint64(n)))
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, SweepPoint{
			X: n, BaselineTime: b.Duration, BaselineTimedOut: b.TimedOut, P4wnTime: pt,
		})
	}
	return res, nil
}

// sizeSweep runs a Figure 6b/6c/6d panel: 5 symbolic packets over a
// structure of growing size.
func sizeSweep(cfg Config, title string, build func(size int) *ir.Program) (*SweepResult, error) {
	res := &SweepResult{Title: title, XLabel: "size"}
	const packets = 5
	for _, lg := range cfg.SizeSweep {
		size := 1 << uint(lg)
		b := baseline.Exhaustive(build(size), packets, cfg.BaselineBudget, cfg.BaselineMaxPaths)

		prog := build(size)
		start := time.Now()
		e := sym.NewEngine(prog, sym.Options{Greybox: true, Merge: true, MaxPaths: 1 << 18})
		counter := mc.NewCounter(e.Space, nil)
		paths := e.Initial()
		var err error
		for i := 0; i < packets; i++ {
			paths, err = e.Step(paths, i)
			if err != nil {
				return nil, err
			}
			paths = sym.Merge(paths, counter)
		}
		res.Points = append(res.Points, SweepPoint{
			X: size, BaselineTime: b.Duration, BaselineTimedOut: b.TimedOut,
			P4wnTime: time.Since(start),
		})
	}
	return res, nil
}

// Figure6b: greybox hash tables vs symbolic arrays (S13).
func Figure6b(cfg Config) (*SweepResult, error) {
	return sizeSweep(cfg, "Figure 6b: greybox analysis, hash tables (htable.p4)",
		func(size int) *ir.Program { return programs.HTable(size, 16) })
}

// Figure6c: greybox Bloom filters (S15).
func Figure6c(cfg Config) (*SweepResult, error) {
	return sizeSweep(cfg, "Figure 6c: greybox analysis, Bloom filters (bfilter.p4)",
		func(size int) *ir.Program { return programs.BFilter(size, 16) })
}

// Figure6d: greybox count-min sketches (S14).
func Figure6d(cfg Config) (*SweepResult, error) {
	return sizeSweep(cfg, "Figure 6d: greybox analysis, count-min sketches (cmsketch.p4)",
		func(size int) *ir.Program { return programs.CMSketch(size, 16) })
}

// Fig6eRow is one system of Figure 6e.
type Fig6eRow struct {
	Name             string
	BaselineTime     time.Duration
	BaselineTimedOut bool
	P4wnTime         time.Duration
	Coverage         float64
}

// Fig6eResult compares P4wn and the baseline end-to-end on S1–S11.
type Fig6eResult struct{ Rows []Fig6eRow }

func (r *Fig6eResult) String() string {
	header := []string{"system", "baseline KLEE (s)", "P4wn (s)", "P4wn coverage"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmtTimeout(row.BaselineTime, row.BaselineTimedOut),
			fmtDur(row.P4wnTime),
			fmt.Sprintf("%.0f%%", row.Coverage*100),
		})
	}
	return "Figure 6e: P4wn vs baseline on S1-S11\n" + renderTable(header, rows)
}

// Figure6e profiles every data-plane system with both engines.
func Figure6e(cfg Config) (*Fig6eResult, error) {
	res := &Fig6eResult{}
	for _, m := range S1toS11() {
		// Baseline gets the number of packets the deepest guard needs,
		// capped at 12 (it times out far earlier anyway).
		pkts := 12
		b := baseline.Exhaustive(m.Build(), pkts, cfg.BaselineBudget, cfg.BaselineMaxPaths)

		prog := m.Build()
		opt := cfg.profileOptions()
		opt.SampleBudget = 4000
		start := time.Now()
		prof, err := core.ProbProf(prog, cfg.oracleFor(m), opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		res.Rows = append(res.Rows, Fig6eRow{
			Name:             m.Name,
			BaselineTime:     b.Duration,
			BaselineTimedOut: b.TimedOut,
			P4wnTime:         time.Since(start),
			Coverage:         prof.Coverage,
		})
	}
	return res, nil
}

// Figure6f sweeps the symbolic sequence length on Blink: the baseline dies
// around 8 packets; P4wn's cost stays flat thanks to merging+telescoping.
func Figure6f(cfg Config) (*SweepResult, error) {
	res := &SweepResult{Title: "Figure 6f: telescoping Blink (sequence length sweep)", XLabel: "packets"}
	for _, n := range cfg.SeqLenSweep {
		b := baseline.Exhaustive(programs.Blink(), n, cfg.BaselineBudget, cfg.BaselineMaxPaths)

		// P4wn's cost stays near-constant in the requested sequence
		// length: the profile converges after a few packets and the deep
		// reroute block is telescoped rather than unrolled.
		start := time.Now()
		if _, err := core.ProbProf(programs.Blink(), nil, core.Options{
			Seed: cfg.Seed, MaxIters: n, Timeout: cfg.ProfileTimeout,
			DisableSampling: true,
		}); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, SweepPoint{
			X: n, BaselineTime: b.Duration, BaselineTimedOut: b.TimedOut,
			P4wnTime: time.Since(start),
		})
	}
	return res, nil
}
