package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
)

// Fig7Row compares model-counting and trace-query probability backends for
// one system.
type Fig7Row struct {
	Name string
	// End-to-end profiling time per backend.
	MCTotal    time.Duration
	TraceTotal time.Duration
	// Time inside UpdateProb (probability computation) per backend.
	MCUpdate    time.Duration
	TraceUpdate time.Duration
	// Query counts.
	TraceQueries int
}

// Fig7Result reproduces Figures 7a/7b.
type Fig7Result struct{ Rows []Fig7Row }

func (r *Fig7Result) String() string {
	header := []string{"system", "MC total (s)", "trace total (s)", "MC updateProb (s)", "trace updateProb (s)", "queries"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmtDur(row.MCTotal),
			fmtDur(row.TraceTotal),
			fmtDur(row.MCUpdate),
			fmtDur(row.TraceUpdate),
			fmt.Sprintf("%d", row.TraceQueries),
		})
	}
	return "Figure 7: model counting vs trace queries (a: end-to-end, b: updateProb)\n" +
		renderTable(header, rows)
}

// Figure7 profiles S1–S11 twice: once against the model-counting backend
// (uniform header space — the LattE mode) and once against the
// trace-backed query processor.
func Figure7(cfg Config) (*Fig7Result, error) {
	res := &Fig7Result{}
	for _, m := range S1toS11() {
		opt := cfg.profileOptions()
		opt.SampleBudget = 2000

		startMC := time.Now()
		profMC, err := core.ProbProf(m.Build(), &dist.UniformOracle{}, opt)
		if err != nil {
			return nil, fmt.Errorf("%s (mc): %w", m.Name, err)
		}
		mcTotal := time.Since(startMC)

		oracle := cfg.oracleFor(m)
		startTr := time.Now()
		profTr, err := core.ProbProf(m.Build(), oracle, opt)
		if err != nil {
			return nil, fmt.Errorf("%s (trace): %w", m.Name, err)
		}
		trTotal := time.Since(startTr)

		res.Rows = append(res.Rows, Fig7Row{
			Name:         m.Name,
			MCTotal:      mcTotal,
			TraceTotal:   trTotal,
			MCUpdate:     profMC.Stats.UpdateProbTime,
			TraceUpdate:  profTr.Stats.UpdateProbTime,
			TraceQueries: profTr.Stats.OracleQueries,
		})
	}
	return res, nil
}
