package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/ir"
	"repro/internal/programs"
	"repro/internal/trace"
)

// OffloadResult reproduces the §6 profile-guided NF offloading case study
// on the eBPF port-knocking function: hot components move to the switch;
// packets whose whole processing path is offloaded skip the server.
type OffloadResult struct {
	// Latencies in microseconds per packet (averages over the workload).
	BaselineLatency float64 // all processing on the middlebox server
	GuidedLatency   float64 // hotspots offloaded (profile-guided)
	FullLatency     float64 // entire NF rewritten onto the switch
	// Improvements relative to the baseline.
	GuidedImprovement float64
	FullImprovement   float64
	// Resource usage of full offload relative to guided offload.
	SRAMRatio   float64
	VLIWRatio   float64
	StagesRatio float64
	// GuidedBlocks / TotalBlocks count offloaded components.
	GuidedBlocks int
	TotalBlocks  int
}

func (r *OffloadResult) String() string {
	return fmt.Sprintf(`§6 case study: profile-guided offloading (port-knocking NF)
  baseline (all on server): %.2f us/pkt
  guided offload:           %.2f us/pkt (%.0f%% improvement, %d/%d blocks offloaded)
  full offload:             %.2f us/pkt (additional %.1f%% improvement)
  full vs guided resources: %.1fx SRAM, %.1fx VLIW, %.1fx stages
`,
		r.BaselineLatency,
		r.GuidedLatency, r.GuidedImprovement*100, r.GuidedBlocks, r.TotalBlocks,
		r.FullLatency, (r.GuidedImprovement-r.FullImprovement)*-100,
		r.SRAMRatio, r.VLIWRatio, r.StagesRatio)
}

// Switch/server per-packet costs (microseconds): the switch forwards at
// line rate; the middlebox server adds software processing latency.
const (
	switchCostUS = 2.0
	serverCostUS = 25.0
)

// OffloadCaseStudy profiles the port-knocking NF, offloads the
// highest-probability blocks (the non-SSH/knock hotspots), and measures the
// average packet latency of baseline / guided / full deployments over the
// default workload.
func OffloadCaseStudy(cfg Config) (*OffloadResult, error) {
	m, _ := programs.ByName("portknock (eBPF)")
	prog := m.Build()

	opt := cfg.profileOptions()
	opt.SampleBudget = 5000
	prof, err := core.ProbProf(prog, cfg.oracleFor(m), opt)
	if err != nil {
		return nil, err
	}

	// Guided offload: the profile's hotspots — blocks a substantial share
	// of traffic exercises. Rare blocks (and the stateful SSH gating they
	// belong to) stay on the server, which is what keeps the offload cheap.
	offloaded := map[int]bool{}
	for _, n := range prof.Nodes {
		if n.P.Float() >= 0.2 {
			offloaded[n.ID] = true
		}
	}

	workload := trace.Generate(m.Workload(cfg.Seed))

	lat := func(offl map[int]bool, all bool) float64 {
		sw := dut.New(prog, dut.Config{})
		visited := map[int]bool{}
		sw.VisitHook = func(id int) { visited[id] = true }
		total := 0.0
		for i := range workload.Packets {
			for k := range visited {
				delete(visited, k)
			}
			sw.Process(&workload.Packets[i])
			fast := all
			if !all && offl != nil {
				fast = true
				for id := range visited {
					if !offl[id] {
						fast = false
						break
					}
				}
			}
			if offl == nil && !all {
				fast = false
			}
			if fast {
				total += switchCostUS
			} else {
				total += serverCostUS
			}
		}
		return total / float64(workload.Len())
	}

	res := &OffloadResult{
		BaselineLatency: lat(nil, false),
		GuidedLatency:   lat(offloaded, false),
		FullLatency:     lat(nil, true),
		GuidedBlocks:    len(offloaded),
		TotalBlocks:     len(prog.Nodes()),
	}
	res.GuidedImprovement = 1 - res.GuidedLatency/res.BaselineLatency
	res.FullImprovement = 1 - res.FullLatency/res.BaselineLatency

	// Switch resource accounting: SRAM scales with the state each block
	// touches, VLIW with its statement count, stages with nesting depth.
	guidedSRAM, fullSRAM := blockResources(prog, offloaded)
	res.SRAMRatio = ratio(fullSRAM.sram, guidedSRAM.sram)
	res.VLIWRatio = ratio(fullSRAM.vliw, guidedSRAM.vliw)
	res.StagesRatio = ratio(fullSRAM.stages, guidedSRAM.stages)
	return res, nil
}

type resources struct{ sram, vliw, stages float64 }

// blockResources estimates resources for the guided subset and the full
// program: SRAM follows the stores a deployment's blocks actually touch,
// VLIW follows statement counts, stages follow block counts.
func blockResources(prog *ir.Program, offloaded map[int]bool) (guided, full resources) {
	const baseSRAM = 512 // parser/deparser scratch any deployment needs

	storeSRAM := func(store string) float64 {
		if h, ok := prog.HashTable(store); ok {
			return float64(h.Size)
		}
		if b, ok := prog.Bloom(store); ok {
			return float64(b.Bits) / 8
		}
		if s, ok := prog.Sketch(store); ok {
			return float64(s.Rows * s.Cols)
		}
		return 0
	}
	storesOf := func(b *ir.Block) []string {
		var out []string
		for _, st := range b.Stmts {
			switch t := st.(type) {
			case *ir.HashAccess:
				out = append(out, t.Store)
			case *ir.BloomOp:
				out = append(out, t.Filter)
			case *ir.SketchUpdate:
				out = append(out, t.Sketch)
			case *ir.SketchBranch:
				out = append(out, t.Sketch)
			}
		}
		return out
	}

	guided.sram, full.sram = baseSRAM, baseSRAM
	guidedStores, fullStores := map[string]bool{}, map[string]bool{}
	for _, b := range prog.Nodes() {
		w := float64(len(b.Stmts))
		full.vliw += w
		full.stages++
		for _, s := range storesOf(b) {
			fullStores[s] = true
		}
		if offloaded[b.ID] {
			guided.vliw += w
			guided.stages++
			for _, s := range storesOf(b) {
				guidedStores[s] = true
			}
		}
	}
	for s := range fullStores {
		full.sram += storeSRAM(s)
	}
	for s := range guidedStores {
		guided.sram += storeSRAM(s)
	}
	if guided.stages == 0 {
		guided.stages = 1
	}
	if guided.vliw == 0 {
		guided.vliw = 1
	}
	return guided, full
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
