package eval

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/trace"
)

// Fig12Block is one profiled code block in the cross-system ranking.
type Fig12Block struct {
	System    string
	Label     string
	Rank      int // global rank by ascending probability
	Log10P    float64
	Expensive bool
}

// Fig12Result reproduces Figure 12: the correlation between a block's
// probability rank and whether it performs expensive processing.
type Fig12Result struct {
	Blocks []Fig12Block
	// ExpensiveInRarestHalf / ExpensiveInCommonHalf summarize the
	// correlation the paper's coloring shows.
	ExpensiveInRarestHalf int
	ExpensiveInCommonHalf int
}

func (r *Fig12Result) String() string {
	header := []string{"rank", "system", "block", "log10(P)", "expensive"}
	var rows [][]string
	limit := len(r.Blocks) / 2 // paper plots the rarest half
	for _, b := range r.Blocks[:limit] {
		rows = append(rows, []string{
			fmt.Sprintf("%d", b.Rank),
			b.System,
			b.Label,
			fmt.Sprintf("%.1f", b.Log10P),
			boolMark(b.Expensive),
		})
	}
	return fmt.Sprintf(
		"Figure 12: probability rank vs expensive processing (%d blocks; expensive: %d in rarest half vs %d in common half)\n",
		len(r.Blocks), r.ExpensiveInRarestHalf, r.ExpensiveInCommonHalf) +
		renderTable(header, rows)
}

// Figure12 profiles S1–S11, pools all code blocks, ranks them by
// probability, and marks the expensive ones.
func Figure12(cfg Config) (*Fig12Result, error) {
	res := &Fig12Result{}
	for _, m := range S1toS11() {
		prog := m.Build()
		opt := cfg.profileOptions()
		opt.SampleBudget = 2000
		prof, err := core.ProbProf(prog, cfg.oracleFor(m), opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		expensive := prog.ExpensiveNodes()
		for _, n := range prof.Nodes {
			res.Blocks = append(res.Blocks, Fig12Block{
				System:    m.Name,
				Label:     n.Label,
				Log10P:    n.P.Log10(),
				Expensive: expensive[n.ID],
			})
		}
	}
	sort.SliceStable(res.Blocks, func(i, j int) bool {
		return res.Blocks[i].Log10P < res.Blocks[j].Log10P
	})
	for i := range res.Blocks {
		res.Blocks[i].Rank = i + 1
		if res.Blocks[i].Expensive {
			if i < len(res.Blocks)/2 {
				res.ExpensiveInRarestHalf++
			} else {
				res.ExpensiveInCommonHalf++
			}
		}
	}
	return res, nil
}

// Fig13Point is one block's rank across traffic profiles.
type Fig13Point struct {
	System   string
	Label    string
	BaseRank int
	// MaxRank is the rank in the other profiles that deviates the most.
	MaxRank int
}

// Fig13Result reproduces Figure 13: rank robustness across traffic epochs.
type Fig13Result struct {
	Points []Fig13Point
	// AvgMovement is the mean |MaxRank-BaseRank| over moved blocks
	// (the paper reports 3.23).
	AvgMovement float64
	// OnDiagonal counts blocks whose rank never moved.
	OnDiagonal int
}

func (r *Fig13Result) String() string {
	header := []string{"system", "block", "rank (2016)", "max rank (2018/2019)"}
	var rows [][]string
	for _, p := range r.Points {
		if p.BaseRank != p.MaxRank { // the off-diagonal dots
			rows = append(rows, []string{
				p.System, p.Label,
				fmt.Sprintf("%d", p.BaseRank),
				fmt.Sprintf("%d", p.MaxRank),
			})
		}
	}
	return fmt.Sprintf(
		"Figure 13: rank robustness across traffic profiles (%d blocks, %d on diagonal, avg movement %.2f)\n",
		len(r.Points), r.OnDiagonal, r.AvgMovement) +
		renderTable(header, rows)
}

// Figure13 profiles every system under three CAIDA-like epochs (2016/2018/
// 2019 analogs; Poise and NetCache additionally vary their context/skew
// parameters via the epoch seed) and measures how much each block's
// probability ranking moves.
func Figure13(cfg Config) (*Fig13Result, error) {
	res := &Fig13Result{}
	years := []int{2016, 2018, 2019}
	for _, m := range S1toS11() {
		// Rankings per epoch.
		var ranks []map[string]int
		for _, y := range years {
			opts := trace.Epoch(y)
			// System-specific extras (context packets, key skews) follow
			// the system's own workload defaults, scaled by epoch.
			base := m.Workload(int64(y))
			opts.CtxRate = base.CtxRate
			opts.CtxTypes = base.CtxTypes
			opts.KeySpace = base.KeySpace
			opts.KeyZipfS = base.KeyZipfS + float64(y%3)*0.1
			opts.WriteRatio = base.WriteRatio
			opts.DupAckRate = base.DupAckRate
			opts.WideIPDRate = base.WideIPDRate
			oracle := trace.NewQueryProcessor(trace.Generate(opts))

			opt := cfg.profileOptions()
			opt.SampleBudget = 2000
			prof, err := core.ProbProf(m.Build(), oracle, opt)
			if err != nil {
				return nil, fmt.Errorf("%s (%d): %w", m.Name, y, err)
			}
			rk := map[string]int{}
			for i, n := range prof.Nodes {
				rk[fmt.Sprintf("%d:%s", n.ID, n.Label)] = i + 1
			}
			ranks = append(ranks, rk)
		}
		// Compare epoch 0 against the others.
		for key, base := range ranks[0] {
			maxRank := base
			for _, other := range ranks[1:] {
				if r2, ok := other[key]; ok {
					if abs(r2-base) > abs(maxRank-base) {
						maxRank = r2
					}
				}
			}
			res.Points = append(res.Points, Fig13Point{
				System: m.Name, Label: key, BaseRank: base, MaxRank: maxRank,
			})
		}
	}
	moved, sum := 0, 0
	for _, p := range res.Points {
		if p.BaseRank == p.MaxRank {
			res.OnDiagonal++
		} else {
			moved++
			sum += abs(p.MaxRank - p.BaseRank)
		}
	}
	if moved > 0 {
		res.AvgMovement = float64(sum) / float64(moved)
	}
	sort.SliceStable(res.Points, func(i, j int) bool {
		if res.Points[i].System != res.Points[j].System {
			return res.Points[i].System < res.Points[j].System
		}
		return res.Points[i].BaseRank < res.Points[j].BaseRank
	})
	return res, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
