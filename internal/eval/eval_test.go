package eval

import (
	"strings"
	"testing"
	"time"
)

// quickConfig keeps the experiment suite testable in seconds.
func quickConfig() Config { return Quick() }

func TestTable1(t *testing.T) {
	res, err := Table1(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vera) != 11 {
		t.Fatalf("Vera rows = %d", len(res.Vera))
	}
	if len(res.New) != 13 { // S1,S2,S5..S15 (S3/S4 are in the Vera half)
		t.Fatalf("New rows = %d", len(res.New))
	}
	for _, row := range res.Vera {
		if row.Stateful {
			t.Errorf("%s misclassified as stateful", row.Name)
		}
	}
	for _, row := range res.New {
		if !row.Stateful {
			t.Errorf("%s misclassified as stateless", row.Name)
		}
		if row.VeraSupports {
			t.Errorf("Vera should not support %s", row.Name)
		}
	}
	if !strings.Contains(res.String(), "Blink (S5)") {
		t.Fatal("render missing systems")
	}
}

func TestFigure6a(t *testing.T) {
	res, err := Figure6a(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// The deepest threshold must time the baseline out while P4wn stays fast.
	last := res.Points[len(res.Points)-1]
	if !last.BaselineTimedOut {
		t.Fatal("baseline should time out at threshold 64 with the quick budget")
	}
	if last.P4wnTime > 5*time.Second {
		t.Fatalf("P4wn took %v on threshold 64", last.P4wnTime)
	}
}

func TestFigure6bGreyboxFlat(t *testing.T) {
	res, err := Figure6b(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	small, large := res.Points[0], res.Points[len(res.Points)-1]
	// Greybox cost must not scale with structure size (allow 20x noise);
	// the baseline cost must grow or time out.
	if large.P4wnTime > small.P4wnTime*20+50*time.Millisecond {
		t.Fatalf("greybox not size-independent: %v -> %v", small.P4wnTime, large.P4wnTime)
	}
	if !large.BaselineTimedOut && large.BaselineTime < small.BaselineTime {
		t.Fatal("baseline cost should grow with size")
	}
}

func TestFigure6f(t *testing.T) {
	res, err := Figure6f(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	last := res.Points[len(res.Points)-1]
	if !last.BaselineTimedOut {
		t.Fatal("baseline should time out on 16-packet Blink")
	}
}

func TestFigure7(t *testing.T) {
	res, err := Figure7(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	queries := 0
	for _, r := range res.Rows {
		queries += r.TraceQueries
	}
	if queries == 0 {
		t.Fatal("no oracle queries recorded across systems")
	}
}

func TestFigure8(t *testing.T) {
	res, err := Figure8(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 3 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	blink := res.Panels[0]
	if blink.P4wnEstimate.IsZero() {
		t.Fatal("Blink reroute estimate missing")
	}
	// The sampling baseline's finest granularity must be orders of
	// magnitude coarser than the telescoped estimate.
	finest := blink.Sampling[len(blink.Sampling)-1].Granularity
	if blink.P4wnEstimate.Log10() > -6 {
		t.Fatalf("telescoped estimate suspiciously large: %v", blink.P4wnEstimate)
	}
	if finest < 1e-7 {
		t.Fatalf("sampling granularity implausibly fine: %v", finest)
	}
}

func TestFigure9(t *testing.T) {
	res, err := Figure9(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	totalFailed := 0
	for _, r := range res.Rows {
		totalFailed += r.Failed
		if r.Targets == 0 {
			t.Errorf("%s: no targets attempted", r.Name)
		}
	}
	// Generation succeeds for the large majority of rare blocks.
	if totalFailed > 25 {
		t.Fatalf("too many generation failures: %d", totalFailed)
	}
}

func TestFigure10(t *testing.T) {
	res, err := Figure10(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 13 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	disrupted := 0
	for _, r := range res.Rows {
		if r.Ratio >= 2 {
			disrupted++
		}
	}
	// The paper reports 2-64x degradation; most workloads must disrupt.
	if disrupted < 9 {
		t.Fatalf("only %d/13 workloads disrupt >= 2x:\n%s", disrupted, res)
	}
}

func TestFigure11(t *testing.T) {
	cfg := quickConfig()
	res, err := Figure11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 13 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	for _, p := range res.Panels {
		if len(p.Values) < cfg.ReplaySeconds {
			t.Errorf("(%s) series too short: %d", p.Panel, len(p.Values))
		}
	}
}

func TestFigure12(t *testing.T) {
	res, err := Figure12(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) < 100 {
		t.Fatalf("only %d blocks pooled", len(res.Blocks))
	}
	// The correlation: expensive blocks concentrate in the rarest half.
	if res.ExpensiveInRarestHalf <= res.ExpensiveInCommonHalf {
		t.Fatalf("no rank/expense correlation: %d rare vs %d common",
			res.ExpensiveInRarestHalf, res.ExpensiveInCommonHalf)
	}
}

func TestFigure13(t *testing.T) {
	res, err := Figure13(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	diagFrac := float64(res.OnDiagonal) / float64(len(res.Points))
	if diagFrac < 0.5 {
		t.Fatalf("rankings too unstable: only %.0f%% on diagonal", diagFrac*100)
	}
	if res.AvgMovement > 10 {
		t.Fatalf("average movement %.2f too large", res.AvgMovement)
	}
}

func TestAccuracyVsExhaustive(t *testing.T) {
	res, err := AccuracyVsExhaustive(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.ExTimedOut {
			continue
		}
		if r.Gamma > 0.25 {
			t.Errorf("%s: inaccuracy %.3f too high", r.Name, r.Gamma)
		}
		if r.Blocks == 0 {
			t.Errorf("%s: nothing compared", r.Name)
		}
	}
}

func TestOffloadCaseStudy(t *testing.T) {
	res, err := OffloadCaseStudy(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.GuidedImprovement <= 0.1 {
		t.Fatalf("guided offload improvement %.2f too small", res.GuidedImprovement)
	}
	if res.FullImprovement < res.GuidedImprovement {
		t.Fatal("full offload cannot be slower than guided")
	}
	// Diminishing returns: full offload buys little extra latency but
	// costs much more switch resources.
	extra := res.FullImprovement - res.GuidedImprovement
	if extra > 0.2 {
		t.Fatalf("full offload gains too much over guided: %.2f", extra)
	}
	if res.SRAMRatio < 2 {
		t.Fatalf("full offload should cost much more SRAM: %.1fx", res.SRAMRatio)
	}
}

func TestRenderHelpers(t *testing.T) {
	s := renderTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(s, "333") || !strings.Contains(s, "--") {
		t.Fatalf("bad render:\n%s", s)
	}
	if fmtTimeout(time.Second, true) != "timeout" {
		t.Fatal("timeout marker broken")
	}
}

func TestAdvCasesResolve(t *testing.T) {
	// Every adversarial case must name a real system, a real block label,
	// and a metric the replay machinery understands.
	seen := map[string]bool{}
	for _, c := range AdvCases() {
		if seen[c.Panel] {
			t.Errorf("duplicate panel %q", c.Panel)
		}
		seen[c.Panel] = true
		m := mustMetaByID(c.SystemID)
		prog := m.Build()
		if prog.NodeByLabel(c.Label) == nil {
			t.Errorf("panel %s: %s has no block %q", c.Panel, m.Name, c.Label)
		}
		switch c.Metric {
		case "cpu", "digest", "recirc", "mirror", "backend", "drop", "backup", "port_imbalance":
		default:
			t.Errorf("panel %s: unknown metric %q", c.Panel, c.Metric)
		}
	}
	if len(seen) != 13 {
		t.Fatalf("want 13 panels, got %d", len(seen))
	}
}

func TestConfigScales(t *testing.T) {
	q, d, f := Quick(), DefaultConfig(), Full()
	if !(q.BaselineBudget < d.BaselineBudget && d.BaselineBudget < f.BaselineBudget) {
		t.Fatal("budgets should grow with scale")
	}
	if q.SampleBudget >= f.SampleBudget {
		t.Fatal("sampling budget should grow with scale")
	}
	if len(q.SizeSweep) > len(d.SizeSweep) {
		t.Fatal("quick sweep should not exceed default")
	}
}

func TestS1toS11Complete(t *testing.T) {
	ms := S1toS11()
	if len(ms) != 11 {
		t.Fatalf("S1toS11 returned %d systems", len(ms))
	}
	for i, m := range ms {
		if m.ID != i+1 {
			t.Fatalf("position %d has ID %d", i, m.ID)
		}
	}
}

func TestAblations(t *testing.T) {
	res, err := Ablations(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	if r := byName["state merging"]; !r.OffTimedOut && r.OffTime < r.OnTime {
		t.Fatalf("merging off should cost more: %+v", r)
	}
	if r := byName["greybox data stores"]; !r.OffTimedOut && r.OffTime < r.OnTime*2 {
		t.Fatalf("greybox off should cost much more: %+v", r)
	}
	if r := byName["telescoping"]; r.Note == "" || !strings.Contains(r.Note, "on=") {
		t.Fatalf("telescoping note missing estimates: %+v", r)
	}
}
