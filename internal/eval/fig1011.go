package eval

import (
	"fmt"
	"strings"

	"repro/internal/dut"
	"repro/internal/testgen"
	"repro/internal/trace"
)

// Fig10Row is one adversarial workload's disruption measurement.
type Fig10Row struct {
	Panel      string
	System     string
	Target     string
	Metric     string
	NormalRate float64
	AdvRate    float64
	// Ratio is adversarial/normal (the 2-64x bars of Figure 10).
	Ratio float64
	// Validated is false when trace generation failed for this target.
	Validated bool
}

// Fig10Result reproduces Figure 10.
type Fig10Result struct{ Rows []Fig10Row }

func (r *Fig10Result) String() string {
	header := []string{"panel", "system", "target", "metric", "normal/s", "adversarial/s", "disruption"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Panel, row.System, row.Target, row.Metric,
			fmt.Sprintf("%.2f", row.NormalRate),
			fmt.Sprintf("%.2f", row.AdvRate),
			fmt.Sprintf("%.1fx", row.Ratio),
		})
	}
	return "Figure 10: adversarial disruption ratios (13 workloads)\n" + renderTable(header, rows)
}

// metricRate extracts the named per-second rate from a replay.
func metricRate(m *dut.Metrics, metric string, seconds int) float64 {
	tot := m.Totals()
	if metric == "backup" {
		// Blink: traffic diverted to backup ports (>= 2).
		kb := 0.0
		for p := 2; p < len(tot.PortKB); p++ {
			kb += tot.PortKB[p]
		}
		if seconds <= 0 {
			seconds = 1
		}
		return kb / float64(seconds)
	}
	return tot.Rate(metric, seconds)
}

// advWorkloadFor generates and amplifies the adversarial workload of a case.
func advWorkloadFor(cfg Config, c AdvCase) (*trace.Trace, bool, error) {
	m := mustMetaByID(c.SystemID)
	prog := m.Build()
	node := prog.NodeByLabel(c.Label)
	if node == nil {
		return nil, false, fmt.Errorf("%s: label %q not found", m.Name, c.Label)
	}
	adv, err := testgen.Generate(prog, node.ID, testgen.Options{Seed: cfg.Seed})
	if err != nil && adv == nil {
		return nil, false, fmt.Errorf("%s/%s: %w", m.Name, c.Label, err)
	}
	w := testgen.WorkloadFor(adv, cfg.ReplaySeconds, cfg.ReplayPPS)
	return w, adv.Validated, nil
}

// warmup brings a switch to steady state before measurement (caches
// populated, learning tables filled), as a production deployment would be.
func warmup(cfg Config, c AdvCase, sw *dut.Switch) {
	m := mustMetaByID(c.SystemID)
	opts := m.Workload(cfg.Seed + 99)
	opts.Packets = cfg.ReplaySeconds * cfg.ReplayPPS
	tr := trace.Generate(opts)
	for i := range tr.Packets {
		sw.Process(&tr.Packets[i])
	}
}

// normalWorkloadFor produces the system's normal traffic at the replay rate.
func normalWorkloadFor(cfg Config, c AdvCase) *trace.Trace {
	m := mustMetaByID(c.SystemID)
	opts := m.Workload(cfg.Seed)
	opts.Packets = cfg.ReplaySeconds * cfg.ReplayPPS
	tr := trace.Generate(opts)
	tr.Retime(0, cfg.ReplayPPS)
	return tr
}

// Figure10 replays normal and adversarial workloads on fresh switches and
// reports the per-metric disruption ratio for each of the 13 cases.
func Figure10(cfg Config) (*Fig10Result, error) {
	res := &Fig10Result{}
	for _, c := range AdvCases() {
		m := mustMetaByID(c.SystemID)

		normal := normalWorkloadFor(cfg, c)
		swN := dut.New(m.Build(), dut.Config{})
		warmup(cfg, c, swN)
		mN := swN.Replay(normal)

		advTr, validated, err := advWorkloadFor(cfg, c)
		if err != nil {
			return nil, err
		}
		swA := dut.New(m.Build(), dut.Config{})
		warmup(cfg, c, swA)
		mA := swA.Replay(advTr)

		nr := metricRate(mN, c.Metric, cfg.ReplaySeconds)
		ar := metricRate(mA, c.Metric, cfg.ReplaySeconds)
		ratio := ar / (nr + 1e-9)
		if nr == 0 {
			ratio = ar // rate was zero under normal traffic: report absolute
		}
		res.Rows = append(res.Rows, Fig10Row{
			Panel: c.Panel, System: m.Name, Target: c.Label, Metric: c.Metric,
			NormalRate: nr, AdvRate: ar, Ratio: ratio, Validated: validated,
		})
	}
	return res, nil
}

// Fig11Series is one panel's time series: normal phase then adversarial.
type Fig11Series struct {
	Panel    string
	System   string
	Target   string
	Metric   string
	SwitchAt int // second at which the adversarial phase starts
	Values   []float64
}

// Fig11Result reproduces Figure 11's thirteen time-series panels.
type Fig11Result struct{ Panels []Fig11Series }

func (r *Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 11: per-second impact, normal phase then adversarial phase\n")
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "\n(%s) %s — %s [%s], adversarial from t=%ds\n",
			p.Panel, p.System, p.Target, p.Metric, p.SwitchAt)
		header := []string{"sec", p.Metric + "/s"}
		var rows [][]string
		for s, v := range p.Values {
			marker := ""
			if s == p.SwitchAt {
				marker = "  <- attack starts"
			}
			rows = append(rows, []string{fmt.Sprintf("%d", s), fmt.Sprintf("%.1f%s", v, marker)})
		}
		b.WriteString(renderTable(header, rows))
	}
	return b.String()
}

// Figure11 replays each case on one switch: the normal workload for the
// first half, the adversarial workload for the second, binned per second.
func Figure11(cfg Config) (*Fig11Result, error) {
	res := &Fig11Result{}
	for _, c := range AdvCases() {
		m := mustMetaByID(c.SystemID)

		normal := normalWorkloadFor(cfg, c)
		advTr, _, err := advWorkloadFor(cfg, c)
		if err != nil {
			return nil, err
		}
		full := trace.Concat(normal, advTr)

		sw := dut.New(m.Build(), dut.Config{})
		warmup(cfg, c, sw)
		metrics := sw.Replay(full)

		series := perSecond(metrics, c.Metric)
		res.Panels = append(res.Panels, Fig11Series{
			Panel: c.Panel, System: m.Name, Target: c.Label, Metric: c.Metric,
			SwitchAt: cfg.ReplaySeconds, Values: series,
		})
	}
	return res, nil
}

// perSecond extracts the named metric's per-second series.
func perSecond(m *dut.Metrics, metric string) []float64 {
	switch metric {
	case "cpu":
		return dut.IntSeries(m.CPUPkts)
	case "digest":
		return dut.IntSeries(m.Digests)
	case "recirc":
		return dut.IntSeries(m.Recircs)
	case "mirror":
		return dut.IntSeries(m.Mirrors)
	case "backend":
		return dut.IntSeries(m.BackendPkts)
	case "drop":
		return dut.IntSeries(m.Dropped)
	case "backup":
		out := make([]float64, m.Seconds)
		for p := 2; p < len(m.PortKBps); p++ {
			for s, v := range m.PortKBps[p] {
				out[s] += v
			}
		}
		return out
	case "port_imbalance":
		// Per-second max port load (KBps) — collisions pile onto one port.
		out := make([]float64, m.Seconds)
		for s := 0; s < m.Seconds; s++ {
			for p := range m.PortKBps {
				if m.PortKBps[p][s] > out[s] {
					out[s] = m.PortKBps[p][s]
				}
			}
		}
		return out
	}
	return nil
}
