package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/programs"
	"repro/internal/solver"
	"repro/internal/sym"
	"repro/internal/trace"

	"repro/internal/ir"
)

// AblationRow is one design-choice measurement: the technique on vs off.
type AblationRow struct {
	Name    string
	OnTime  time.Duration
	OffTime time.Duration
	// OffTimedOut marks the off arm exhausting its budget.
	OffTimedOut bool
	// Note captures a quality difference money can't buy back (e.g. the
	// estimate that exists only with the technique enabled).
	Note string
}

// AblationResult collects the design-choice ablations DESIGN.md calls out.
type AblationResult struct{ Rows []AblationRow }

func (r *AblationResult) String() string {
	header := []string{"technique", "on (s)", "off (s)", "note"}
	var rows [][]string
	for _, row := range r.Rows {
		off := fmtDur(row.OffTime)
		if row.OffTimedOut {
			off = "timeout"
		}
		rows = append(rows, []string{row.Name, fmtDur(row.OnTime), off, row.Note})
	}
	return "Ablations: each P4wn design choice on vs off\n" + renderTable(header, rows)
}

// Ablations measures every design choice in isolation.
func Ablations(cfg Config) (*AblationResult, error) {
	res := &AblationResult{}

	// State merging: counter.p4 with 12 packets is polynomial merged,
	// exponential unmerged.
	runMerge := func(merge bool) (time.Duration, bool) {
		start := time.Now()
		prog := programs.Counter(16)
		e := sym.NewEngine(prog, sym.Options{
			Greybox: true, Merge: merge, MaxPaths: cfg.BaselineMaxPaths,
			Deadline: start.Add(cfg.BaselineBudget * 4),
		})
		counter := mc.NewCounter(e.Space, nil)
		paths := e.Initial()
		var err error
		for k := 0; k < 12; k++ {
			paths, err = e.Step(paths, k)
			if err != nil {
				return time.Since(start), true
			}
			if merge {
				paths = sym.Merge(paths, counter)
			}
		}
		return time.Since(start), false
	}
	onT, _ := runMerge(true)
	offT, offTO := runMerge(false)
	res.Rows = append(res.Rows, AblationRow{
		Name: "state merging", OnTime: onT, OffTime: offT, OffTimedOut: offTO,
		Note: "12-packet counter.p4: merged states grow linearly, unmerged 2^t",
	})

	// Telescoping: Blink's reroute estimate exists only with it.
	runTele := func(disable bool) (time.Duration, string) {
		start := time.Now()
		prof, err := core.ProbProf(programs.Blink(), nil, core.Options{
			Seed: cfg.Seed, MaxIters: 8, DisableTelescope: disable,
			DisableSampling: true, Timeout: cfg.ProfileTimeout,
		})
		if err != nil {
			return time.Since(start), "error"
		}
		rr, _ := prof.ByLabel("reroute")
		return time.Since(start), rr.P.String()
	}
	onT, onEst := runTele(false)
	offT, offEst := runTele(true)
	res.Rows = append(res.Rows, AblationRow{
		Name: "telescoping", OnTime: onT, OffTime: offT,
		Note: fmt.Sprintf("Pr[reroute]: on=%s, off=%s", onEst, offEst),
	})

	// Greybox analysis: symbolic arrays explode with structure size.
	runGrey := func(grey bool) (time.Duration, bool) {
		start := time.Now()
		prog := programs.HTable(1024, 8)
		e := sym.NewEngine(prog, sym.Options{
			Greybox: grey, MaxPaths: cfg.BaselineMaxPaths,
			Deadline: start.Add(cfg.BaselineBudget * 4),
		})
		paths := e.Initial()
		var err error
		for k := 0; k < 5; k++ {
			paths, err = e.Step(paths, k)
			if err != nil {
				return time.Since(start), true
			}
		}
		return time.Since(start), false
	}
	onT, _ = runGrey(true)
	offT, offTO = runGrey(false)
	res.Rows = append(res.Rows, AblationRow{
		Name: "greybox data stores", OnTime: onT, OffTime: offT, OffTimedOut: offTO,
		Note: "5 packets over a 2^10-slot hash table",
	})

	// Exact counting vs Monte Carlo on a coupled pair.
	space := solver.NewSpace(ir.StdFields)
	cs := []solver.Constraint{
		solver.NewCmp(ir.CmpLt,
			solver.VarExpr(solver.Var{Pkt: 0, Field: "src_port"}),
			solver.VarExpr(solver.Var{Pkt: 0, Field: "dst_port"})),
	}
	runCount := func(forceMC bool) time.Duration {
		start := time.Now()
		for i := 0; i < 50; i++ {
			c := mc.NewCounter(space, nil)
			c.ForceMC = forceMC
			c.Seed = int64(i)
			_ = c.ProbOf(cs)
		}
		return time.Since(start)
	}
	res.Rows = append(res.Rows, AblationRow{
		Name: "exact pair counting", OnTime: runCount(false), OffTime: runCount(true),
		Note: "50 counts of P(src_port < dst_port); off = Monte Carlo",
	})

	// Oracle query cache.
	tr := trace.Generate(trace.GenOptions{Seed: cfg.Seed, Packets: 20000})
	q := trace.NewQueryProcessor(tr)
	runCache := func(cached bool) time.Duration {
		start := time.Now()
		for i := 0; i < 20; i++ {
			if cached {
				q.FieldDist("proto")
			} else {
				q.FieldDistNoCache("proto")
			}
		}
		return time.Since(start)
	}
	res.Rows = append(res.Rows, AblationRow{
		Name: "oracle query cache", OnTime: runCache(true), OffTime: runCache(false),
		Note: "20 marginal queries against a 20k-packet trace",
	})

	return res, nil
}
