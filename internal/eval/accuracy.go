package eval

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/programs"
)

// AccuracyRow is one shrunk program's P4wn-vs-ex comparison.
type AccuracyRow struct {
	Name string
	// Gamma is the worst-case relative inaccuracy
	// max_N |p̂(N)-p(N)| / p(N) over blocks with p > 0 (paper: ≤ 0.04).
	Gamma float64
	// Blocks compared.
	Blocks int
	// ExTimedOut indicates the ground-truth baseline did not finish.
	ExTimedOut bool
}

// AccuracyResult reproduces the §5.2 accuracy study: P4wn's estimates
// against the exhaustive `ex` baseline on shrunk program versions.
type AccuracyResult struct{ Rows []AccuracyRow }

func (r *AccuracyResult) String() string {
	header := []string{"program", "blocks", "gamma (rel. err)", "ex status"}
	var rows [][]string
	for _, row := range r.Rows {
		status := "ok"
		if row.ExTimedOut {
			status = "timeout"
		}
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%d", row.Blocks),
			fmt.Sprintf("%.4f", row.Gamma),
			status,
		})
	}
	return "§5.2 accuracy: P4wn vs exhaustive ex baseline (shrunk programs)\n" +
		renderTable(header, rows)
}

// AccuracyVsExhaustive compares P4wn's per-packet profile after `packets`
// symbolic packets against the ex baseline's exhaustive enumeration on
// shrunk programs (e.g. a 4-retransmission Blink stand-in).
func AccuracyVsExhaustive(cfg Config) (*AccuracyResult, error) {
	shrunk := []struct {
		name    string
		prog    func() *ir.Program
		packets int
	}{
		{"counter-4", func() *ir.Program { return programs.Counter(4) }, 6},
		{"htable-small", func() *ir.Program { return programs.HTable(64, 4) }, 5},
		{"bfilter-small", func() *ir.Program { return programs.BFilter(256, 4) }, 5},
		{"cmsketch-small", func() *ir.Program { return programs.CMSketch(64, 4) }, 5},
	}
	res := &AccuracyResult{}
	for _, s := range shrunk {
		truth, ok := baseline.ExProfile(s.prog(), nil, s.packets, cfg.BaselineBudget*4)
		if !ok {
			res.Rows = append(res.Rows, AccuracyRow{Name: s.name, ExTimedOut: true})
			continue
		}
		prog := s.prog()
		opt := cfg.profileOptions()
		opt.MaxIters = s.packets
		opt.DisableSampling = true
		opt.Epsilon = 1e-12 // run all packets; don't converge early
		prof, err := core.ProbProf(prog, nil, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		row := AccuracyRow{Name: s.name}
		for id, p := range truth {
			if p.IsZero() {
				continue
			}
			est, found := prof.ByID(id)
			if !found {
				continue
			}
			row.Blocks++
			rel := math.Abs(est.P.Float()-p.Float()) / p.Float()
			// Telescoped estimates use a different (asymptotic) semantics;
			// compare only blocks both engines measured directly.
			if est.Source == core.SrcSymbex && rel > row.Gamma {
				row.Gamma = rel
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
