package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/programs"
)

// Table1Row is one program of paper Table 1.
type Table1Row struct {
	Name      string
	LoC       int
	Stateful  bool
	HasApprox bool
	// VeraSupports mirrors the paper: Vera only analyzes stateless
	// programs.
	VeraSupports bool
	// Time is this repository's P4wn analysis time.
	Time time.Duration
	// Converged/Coverage qualify the analysis.
	Coverage float64
}

// Table1Result reproduces paper Table 1.
type Table1Result struct {
	Vera []Table1Row // the stateless comparison set
	New  []Table1Row // the stateful systems only P4wn analyzes
}

// Table1 profiles every zoo program: the stateless Vera set (which both
// tools handle — we report this repo's P4wn time) and the stateful systems
// (which only P4wn can analyze).
func Table1(cfg Config) (*Table1Result, error) {
	res := &Table1Result{}
	run := func(m programs.Meta) (Table1Row, error) {
		prog := m.Build()
		opt := cfg.profileOptions()
		opt.SampleBudget = 5000 // keep Table 1 brisk
		start := time.Now()
		prof, err := core.ProbProf(prog, nil, opt)
		if err != nil {
			return Table1Row{}, fmt.Errorf("%s: %w", m.Name, err)
		}
		return Table1Row{
			Name:         m.Name,
			LoC:          m.PaperLoC,
			Stateful:     m.Stateful,
			HasApprox:    prog.HasApprox(),
			VeraSupports: !m.Stateful && !prog.HasApprox(),
			Time:         time.Since(start),
			Coverage:     prof.Coverage,
		}, nil
	}
	for _, m := range programs.Stateless() {
		row, err := run(m)
		if err != nil {
			return nil, err
		}
		res.Vera = append(res.Vera, row)
	}
	for _, m := range programs.Systems() {
		if m.VeraSet || m.ID > 15 {
			continue // NAT/ACL already in the Vera half; portknock is §6
		}
		row, err := run(m)
		if err != nil {
			return nil, err
		}
		res.New = append(res.New, row)
	}
	return res, nil
}

func (r *Table1Result) String() string {
	header := []string{"program", "LoC", "stateful", "approx-DS", "Vera", "P4wn (s)", "coverage"}
	var rows [][]string
	add := func(rs []Table1Row) {
		for _, row := range rs {
			vera := "ok"
			if !row.VeraSupports {
				vera = "✗"
			}
			rows = append(rows, []string{
				row.Name,
				fmt.Sprintf("%d", row.LoC),
				boolMark(row.Stateful),
				boolMark(row.HasApprox),
				vera,
				fmtDur(row.Time),
				fmt.Sprintf("%.0f%%", row.Coverage*100),
			})
		}
	}
	add(r.Vera)
	rows = append(rows, []string{"---", "", "", "", "", "", ""})
	add(r.New)
	return "Table 1: stateless (Vera set) and stateful programs\n" + renderTable(header, rows)
}
