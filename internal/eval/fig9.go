package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/programs"
	"repro/internal/testgen"
)

// AdvCase names one adversarial target (the 13 workloads of Figure 11 plus
// the generic per-system targets of Figures 9/10).
type AdvCase struct {
	SystemID int
	Label    string // target block label
	Metric   string // disruption metric
	Panel    string // Figure 11 panel id ("a".."m")
	Desc     string
}

// AdvCases lists the paper's 13 adversarial workloads.
func AdvCases() []AdvCase {
	return []AdvCase{
		{1, "conn_collision", "recirc", "a", "lb: connection-table collisions overload the victim path"},
		{2, "flowlet_collision", "recirc", "b", "flowlet: collisions defeat rebalancing"},
		{3, "nat_miss", "cpu", "c", "nat: unmapped flows flood the control plane"},
		{4, "acl_miss", "cpu", "d", "acl: unmatched packets escalate to the CPU"},
		{5, "reroute", "backup", "e", "Blink: fabricated retransmissions flip the route"},
		{6, "cache_miss", "backend", "f", "NetCache: cold keys bypass the cache"},
		{7, "gpv_evict", "backend", "g", "*Flow: collisions evict telemetry buffers"},
		{8, "db_followup", "backend", "h", "p40f: unknown signature floods the DB"},
		{9, "hc_learn", "cpu", "i", "NetHCF: spoofed new sources flood CPU learning"},
		{10, "ctx_collision", "digest", "j", "Poise: context collisions storm digests"},
		{10, "data_collision", "recirc", "k", "Poise: data collisions recirculate"},
		{11, "timing_suspect", "backend", "l", "NetWarden: wide IPDs flood the slowpath"},
		{11, "dup_ack", "backend", "m", "NetWarden: duplicate ACKs buffer forever"},
	}
}

// Fig9Row is one system's trace-generation cost, decomposed by phase.
type Fig9Row struct {
	Name    string
	Targets int
	Symbex  time.Duration
	Havoc   time.Duration
	Solver  time.Duration
	Failed  int
}

// Fig9Result reproduces Figure 9.
type Fig9Result struct{ Rows []Fig9Row }

func (r *Fig9Result) String() string {
	header := []string{"system", "targets", "symbex (s)", "havocing (s)", "solver (s)", "failed"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%d", row.Targets),
			fmtDur(row.Symbex),
			fmtDur(row.Havoc),
			fmtDur(row.Solver),
			fmt.Sprintf("%d", row.Failed),
		})
	}
	return "Figure 9: adversarial trace generation time (top-10 rarest blocks per system)\n" +
		renderTable(header, rows)
}

// topTargets returns up to k of the lowest-probability CFG nodes of a
// profile, skipping the entry node.
func topTargets(prof *core.Profile, prog *ir.Program, k int) []int {
	var out []int
	for _, n := range prof.Nodes {
		if n.Label == "entry" {
			continue
		}
		out = append(out, n.ID)
		if len(out) == k {
			break
		}
	}
	return out
}

// Figure9 generates adversarial traces for the top-10 lowest-probability
// code blocks of every system and reports the per-phase time decomposition.
func Figure9(cfg Config) (*Fig9Result, error) {
	res := &Fig9Result{}
	for _, m := range S1toS11() {
		prog := m.Build()
		opt := cfg.profileOptions()
		opt.SampleBudget = 2000
		prof, err := core.ProbProf(prog, cfg.oracleFor(m), opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		row := Fig9Row{Name: m.Name}
		for _, target := range topTargets(prof, prog, 10) {
			adv, err := testgen.Generate(prog, target, testgen.Options{Seed: cfg.Seed})
			if err != nil || !adv.Validated {
				row.Failed++
			}
			if adv != nil {
				row.Symbex += adv.Decomp.Symbex
				row.Havoc += adv.Decomp.Havoc
				row.Solver += adv.Decomp.Solver
			}
			row.Targets++
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// mustMetaByID panics on an unregistered system id (registry is static).
func mustMetaByID(id int) programs.Meta {
	m, ok := programs.SID(id)
	if !ok {
		panic(fmt.Sprintf("eval: system S%d not registered", id))
	}
	return m
}
