// Package eval regenerates every table and figure of the paper's
// evaluation section. Each Figure*/Table* function runs the corresponding
// experiment and returns a result struct whose String method renders the
// same rows/series the paper reports. Config scales the experiments:
// DefaultConfig finishes on a laptop in minutes, Full approaches the
// paper's parameters.
package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/programs"
	"repro/internal/trace"
)

// Config scales experiment parameters.
type Config struct {
	// Seed drives all randomized components.
	Seed int64
	// BaselineBudget is the per-run wall-clock budget standing in for the
	// paper's one-hour KLEE timeout.
	BaselineBudget time.Duration
	// BaselineMaxPaths bounds baseline path explosion.
	BaselineMaxPaths int
	// ProfileTimeout bounds each P4wn profiling run.
	ProfileTimeout time.Duration
	// SampleBudget is the profiler's sampling-phase packet budget.
	SampleBudget int
	// ProfileMaxIters bounds the profiler's main symbolic loop.
	ProfileMaxIters int
	// ReplaySeconds is the backtesting duration per phase (Figures 10/11).
	ReplaySeconds int
	// ReplayPPS is the replay packet rate.
	ReplayPPS int
	// SizeSweep lists structure sizes (log2) for Figures 6b–6d.
	SizeSweep []int
	// ThresholdSweep lists counter thresholds for Figure 6a.
	ThresholdSweep []int
	// SeqLenSweep lists symbolic sequence lengths for Figure 6f.
	SeqLenSweep []int
	// Workers is the profiler's degree of parallelism (<= 0 selects
	// GOMAXPROCS); results are bit-identical for every worker count.
	Workers int
	// Target names the device model every experiment profiles against
	// ("idealized" when empty; "tofino", "ebpf"). Bench rows produced
	// under different targets are not comparable, so the bench report
	// carries the target alongside the scale.
	Target string
}

// DefaultConfig returns laptop-scale parameters.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		BaselineBudget:   2 * time.Second,
		BaselineMaxPaths: 1 << 17,
		ProfileTimeout:   15 * time.Second,
		SampleBudget:     20000,
		ProfileMaxIters:  8,
		ReplaySeconds:    7,
		ReplayPPS:        400,
		SizeSweep:        []int{6, 8, 10, 12, 14, 16},
		ThresholdSweep:   []int{1, 2, 4, 8, 16, 32, 64, 128},
		SeqLenSweep:      []int{1, 2, 4, 8, 16, 32, 64, 128},
	}
}

// Quick returns the fastest parameters that still show every shape —
// what the benchmark suite and smoke tests use.
func Quick() Config {
	c := DefaultConfig()
	c.BaselineBudget = 300 * time.Millisecond
	c.BaselineMaxPaths = 1 << 13
	c.ProfileTimeout = 5 * time.Second
	c.SampleBudget = 2000
	c.ProfileMaxIters = 5
	c.ReplaySeconds = 2
	c.ReplayPPS = 100
	c.SizeSweep = []int{6, 10}
	c.ThresholdSweep = []int{2, 16, 64}
	c.SeqLenSweep = []int{1, 4, 16}
	return c
}

// Full returns parameters closer to the paper's scale.
func Full() Config {
	c := DefaultConfig()
	c.BaselineBudget = 30 * time.Second
	c.ProfileTimeout = 60 * time.Second
	c.SampleBudget = 200000
	c.ReplaySeconds = 7
	c.ReplayPPS = 2000
	return c
}

// Preset maps a scale name to its Config — the seam the serve subsystem
// uses to let wire submissions pick an experiment scale by name.
func Preset(name string) (Config, bool) {
	switch name {
	case "quick":
		return Quick(), true
	case "default", "":
		return DefaultConfig(), true
	case "full":
		return Full(), true
	}
	return Config{}, false
}

// ProfileOptions builds the standard P4wn profiling options for this
// config — the exported form wire submissions are normalized through.
func (c Config) ProfileOptions() core.Options { return c.profileOptions() }

// profileOptions builds the standard P4wn profiling options.
func (c Config) profileOptions() core.Options {
	return core.Options{
		Seed:         c.Seed,
		Timeout:      c.ProfileTimeout,
		SampleBudget: c.SampleBudget,
		MaxIters:     c.ProfileMaxIters,
		Workers:      c.Workers,
		Target:       c.Target,
	}
}

// oracleFor returns a trace-backed oracle for a system.
func (c Config) oracleFor(m programs.Meta) dist.Oracle {
	return trace.NewQueryProcessor(trace.Generate(m.Workload(c.Seed)))
}

// S1toS11 returns the eleven data-plane systems of Figures 6e–10.
func S1toS11() []programs.Meta {
	var out []programs.Meta
	for id := 1; id <= 11; id++ {
		if m, ok := programs.SID(id); ok {
			out = append(out, m)
		}
	}
	return out
}

// renderTable renders aligned columns via the shared obs renderer, keeping
// every experiment's output format identical to the run-report summaries.
func renderTable(header []string, rows [][]string) string {
	return obs.Table(header, rows)
}

// fmtDur renders a duration in seconds with sensible precision.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// fmtTimeout renders a duration or the timeout marker.
func fmtTimeout(d time.Duration, timedOut bool) string {
	if timedOut {
		return "timeout"
	}
	return fmtDur(d)
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}
