package mc

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/ir"
	"repro/internal/solver"
	"repro/internal/testutil"
)

func sp() *solver.Space {
	return solver.NewSpace([]ir.Field{
		{Name: "a", Bits: 8}, {Name: "b", Bits: 8}, {Name: "c", Bits: 8},
		{Name: "w", Bits: 16},
	})
}

func v(pkt int, f string) solver.Var { return solver.Var{Pkt: pkt, Field: f} }

func con(op ir.CmpOp, a, b solver.LinExpr) solver.Constraint { return solver.NewCmp(op, a, b) }

func almostEq(a, b, tol float64) bool { return testutil.ApproxEqual(a, b, tol, 0) }

func TestUniformInterval(t *testing.T) {
	c := NewCounter(sp(), nil)
	// a <= 63 over an 8-bit field: 64/256 = 0.25.
	p := c.ProbOf([]solver.Constraint{
		con(ir.CmpLe, solver.VarExpr(v(0, "a")), solver.ConstExpr(63)),
	})
	if !almostEq(p.Float(), 0.25, 1e-9) {
		t.Fatalf("P = %v, want 0.25", p.Float())
	}
}

func TestEmptyConjunction(t *testing.T) {
	c := NewCounter(sp(), nil)
	if got := c.ProbOf(nil).Float(); got != 1 {
		t.Fatalf("empty pc should have probability 1, got %v", got)
	}
}

func TestInfeasible(t *testing.T) {
	c := NewCounter(sp(), nil)
	p := c.ProbOf([]solver.Constraint{
		con(ir.CmpGt, solver.VarExpr(v(0, "a")), solver.ConstExpr(100)),
		con(ir.CmpLt, solver.VarExpr(v(0, "a")), solver.ConstExpr(50)),
	})
	if !p.IsZero() {
		t.Fatalf("infeasible pc should be zero, got %v", p)
	}
}

func TestConjunctionIndependentFields(t *testing.T) {
	c := NewCounter(sp(), nil)
	// P(a == 5) * P(b <= 127) = (1/256)*(1/2).
	p := c.ProbOf([]solver.Constraint{
		con(ir.CmpEq, solver.VarExpr(v(0, "a")), solver.ConstExpr(5)),
		con(ir.CmpLe, solver.VarExpr(v(0, "b")), solver.ConstExpr(127)),
	})
	want := (1.0 / 256) * 0.5
	if !almostEq(p.Float(), want, 1e-12) {
		t.Fatalf("P = %v, want %v", p.Float(), want)
	}
}

func TestCrossPacketEqualityUniform(t *testing.T) {
	c := NewCounter(sp(), nil)
	// P(p0.a == p1.a) under independence/uniform = 1/256.
	p := c.ProbOf([]solver.Constraint{
		con(ir.CmpEq, solver.VarExpr(v(0, "a")), solver.VarExpr(v(1, "a"))),
	})
	if !almostEq(p.Float(), 1.0/256, 1e-12) {
		t.Fatalf("P = %v, want 1/256", p.Float())
	}
	// Three-way equality: 1/256^2.
	p3 := c.ProbOf([]solver.Constraint{
		con(ir.CmpEq, solver.VarExpr(v(0, "a")), solver.VarExpr(v(1, "a"))),
		con(ir.CmpEq, solver.VarExpr(v(1, "a")), solver.VarExpr(v(2, "a"))),
	})
	if !almostEq(p3.Float(), 1.0/(256*256), 1e-14) {
		t.Fatalf("P3 = %v, want 1/65536", p3.Float())
	}
}

func TestCrossPacketEqualityOracle(t *testing.T) {
	// A trace oracle reporting a 1% retransmission (pair-equality) ratio.
	profile := dist.NewProfile().SetPairEq("a", 0.01)
	c := NewCounter(sp(), profile)
	p := c.ProbOf([]solver.Constraint{
		con(ir.CmpEq, solver.VarExpr(v(0, "a")), solver.VarExpr(v(1, "a"))),
	})
	if !almostEq(p.Float(), 0.01, 1e-9) {
		t.Fatalf("P = %v, want 0.01", p.Float())
	}
}

func TestSkewedMarginal(t *testing.T) {
	profile := dist.NewProfile().SetField("a", dist.MustFromPieces([]dist.Piece{
		{Lo: 6, Hi: 6, Mass: 0.9}, {Lo: 17, Hi: 17, Mass: 0.1},
	}))
	c := NewCounter(sp(), profile)
	pTCP := c.ProbOf([]solver.Constraint{
		con(ir.CmpEq, solver.VarExpr(v(0, "a")), solver.ConstExpr(6)),
	})
	if !almostEq(pTCP.Float(), 0.9, 1e-12) {
		t.Fatalf("P(tcp) = %v", pTCP.Float())
	}
	pOther := c.ProbOf([]solver.Constraint{
		con(ir.CmpEq, solver.VarExpr(v(0, "a")), solver.ConstExpr(7)),
	})
	if !pOther.IsZero() {
		t.Fatalf("P(proto 7) should be 0 under the profile, got %v", pOther)
	}
}

func TestDisequality(t *testing.T) {
	c := NewCounter(sp(), nil)
	// P(a != 5) = 255/256.
	p := c.ProbOf([]solver.Constraint{
		con(ir.CmpNe, solver.VarExpr(v(0, "a")), solver.ConstExpr(5)),
	})
	if !almostEq(p.Float(), 255.0/256, 1e-12) {
		t.Fatalf("P = %v", p.Float())
	}
	// P(a != b) = 1 - 1/256.
	p2 := c.ProbOf([]solver.Constraint{
		con(ir.CmpNe, solver.VarExpr(v(0, "a")), solver.VarExpr(v(0, "b"))),
	})
	if !almostEq(p2.Float(), 255.0/256, 1e-9) {
		t.Fatalf("P(a!=b) = %v", p2.Float())
	}
}

func TestVarVarInequality(t *testing.T) {
	c := NewCounter(sp(), nil)
	// P(a < b) over two uniform 8-bit fields = C(256,2)/256^2.
	p := c.ProbOf([]solver.Constraint{
		con(ir.CmpLt, solver.VarExpr(v(0, "a")), solver.VarExpr(v(0, "b"))),
	})
	want := (256.0 * 255 / 2) / (256.0 * 256)
	if !almostEq(p.Float(), want, 1e-9) {
		t.Fatalf("P(a<b) = %v, want %v", p.Float(), want)
	}
	// P(a <= b) = (C(256,2)+256)/256^2.
	p2 := c.ProbOf([]solver.Constraint{
		con(ir.CmpLe, solver.VarExpr(v(0, "a")), solver.VarExpr(v(0, "b"))),
	})
	want2 := (256.0*255/2 + 256) / (256.0 * 256)
	if !almostEq(p2.Float(), want2, 1e-9) {
		t.Fatalf("P(a<=b) = %v, want %v", p2.Float(), want2)
	}
}

func TestBandConstraint(t *testing.T) {
	c := NewCounter(sp(), nil)
	// |a - b| <= 1: 256 + 2*255 pairs.
	p := c.ProbOf([]solver.Constraint{
		con(ir.CmpLe, solver.VarExpr(v(0, "a")), solver.VarExpr(v(0, "b")).Add(solver.ConstExpr(1))),
		con(ir.CmpGe, solver.VarExpr(v(0, "a")), solver.VarExpr(v(0, "b")).Sub(solver.ConstExpr(1))),
	})
	want := (256.0 + 2*255) / (256.0 * 256)
	if !almostEq(p.Float(), want, 1e-9) {
		t.Fatalf("P(|a-b|<=1) = %v, want %v", p.Float(), want)
	}
}

func TestPairWithNeqCorrection(t *testing.T) {
	c := NewCounter(sp(), nil)
	// a <= b and a != b: (C(256,2)) pairs.
	p := c.ProbOf([]solver.Constraint{
		con(ir.CmpLe, solver.VarExpr(v(0, "a")), solver.VarExpr(v(0, "b"))),
		con(ir.CmpNe, solver.VarExpr(v(0, "a")), solver.VarExpr(v(0, "b"))),
	})
	want := (256.0 * 255 / 2) / (256.0 * 256)
	if !almostEq(p.Float(), want, 1e-9) {
		t.Fatalf("P = %v, want %v", p.Float(), want)
	}
}

func TestMonteCarloFallback(t *testing.T) {
	c := NewCounter(sp(), nil)
	c.Seed = 7
	// a + b <= 255 is generic: exact answer is (257*256/2)/256^2 ≈ 0.502.
	p := c.ProbOf([]solver.Constraint{
		solver.NewCmp(ir.CmpLe,
			solver.VarExpr(v(0, "a")).Add(solver.VarExpr(v(0, "b"))),
			solver.ConstExpr(255)),
	})
	want := (257.0 * 256 / 2) / (256.0 * 256)
	if !testutil.ApproxEqual(p.Float(), want, 0.02, 0) {
		t.Fatalf("MC estimate %v too far from %v", p.Float(), want)
	}
	if c.Stats().MCFallbacks == 0 {
		t.Fatal("expected an MC fallback")
	}
}

func TestMonteCarloDeterminism(t *testing.T) {
	mk := func() float64 {
		c := NewCounter(sp(), nil)
		c.Seed = 42
		c.DisableCache = true
		p := c.ProbOf([]solver.Constraint{
			solver.NewCmp(ir.CmpLe,
				solver.VarExpr(v(0, "a")).Add(solver.VarExpr(v(0, "b"))),
				solver.ConstExpr(100)),
		})
		return p.Float()
	}
	if mk() != mk() {
		t.Fatal("MC fallback should be deterministic for a fixed seed")
	}
}

func TestCache(t *testing.T) {
	c := NewCounter(sp(), nil)
	cs := []solver.Constraint{
		con(ir.CmpLe, solver.VarExpr(v(0, "a")), solver.ConstExpr(10)),
	}
	p1 := c.ProbOf(cs)
	p2 := c.ProbOf(cs)
	if p1.Cmp(p2) != 0 {
		t.Fatal("cached result differs")
	}
	if c.Stats().CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", c.Stats().CacheHits)
	}
}

func TestCountPairsGeometry(t *testing.T) {
	// Brute-force cross-check on small rectangles.
	brute := func(a0, a1, b0, b1 uint64, dlo, dhi int64) float64 {
		n := 0
		for x := a0; x <= a1; x++ {
			for y := b0; y <= b1; y++ {
				d := int64(x) - int64(y)
				if d >= dlo && d <= dhi {
					n++
				}
			}
		}
		return float64(n)
	}
	cases := []struct {
		a0, a1, b0, b1 uint64
		dlo, dhi       int64
	}{
		{0, 9, 0, 9, -3, 3},
		{0, 9, 5, 14, 0, 0},
		{3, 20, 0, 7, -100, 2},
		{0, 15, 0, 15, 1, 100},
		{0, 5, 10, 12, -2, 2},
		{7, 7, 7, 7, 0, 0},
		{0, 30, 10, 20, -5, -5},
	}
	for _, tc := range cases {
		got := countPairs(tc.a0, tc.a1, tc.b0, tc.b1, tc.dlo, tc.dhi)
		want := brute(tc.a0, tc.a1, tc.b0, tc.b1, tc.dlo, tc.dhi)
		if got != want {
			t.Errorf("countPairs(%v)=%v want %v", tc, got, want)
		}
	}
}

func TestCountPairsRandomized(t *testing.T) {
	brute := func(a0, a1, b0, b1 uint64, dlo, dhi int64) float64 {
		n := 0
		for x := a0; x <= a1; x++ {
			for y := b0; y <= b1; y++ {
				d := int64(x) - int64(y)
				if d >= dlo && d <= dhi {
					n++
				}
			}
		}
		return float64(n)
	}
	seed := int64(12345)
	rnd := func() uint64 { seed = seed*6364136223846793005 + 1442695040888963407; return uint64(seed>>33) % 40 }
	for i := 0; i < 500; i++ {
		a0 := rnd()
		a1 := a0 + rnd()
		b0 := rnd()
		b1 := b0 + rnd()
		dlo := int64(rnd()) - 20
		dhi := dlo + int64(rnd())
		got := countPairs(a0, a1, b0, b1, dlo, dhi)
		want := brute(a0, a1, b0, b1, dlo, dhi)
		if got != want {
			t.Fatalf("case %d: countPairs(%d,%d,%d,%d,%d,%d)=%v want %v", i, a0, a1, b0, b1, dlo, dhi, got, want)
		}
	}
}

func TestHolePunching(t *testing.T) {
	segs := []wseg{{lo: 0, hi: 9, dens: 0.1}}
	out := punchHoles(segs, []uint64{3, 7})
	total := 0.0
	for _, s := range out {
		total += s.dens * (float64(s.hi-s.lo) + 1)
	}
	if !almostEq(total, 0.8, 1e-12) {
		t.Fatalf("after punching two holes mass = %v, want 0.8", total)
	}
}

func TestForceMCAgreesWithExact(t *testing.T) {
	cs := []solver.Constraint{
		con(ir.CmpLt, solver.VarExpr(v(0, "a")), solver.VarExpr(v(0, "b"))),
	}
	exact := NewCounter(sp(), nil)
	pe := exact.ProbOf(cs).Float()
	mcc := NewCounter(sp(), nil)
	mcc.ForceMC = true
	mcc.Seed = 3
	pm := mcc.ProbOf(cs).Float()
	if !testutil.ApproxEqual(pe, pm, 0.02, 0) {
		t.Fatalf("exact %v vs MC %v diverge", pe, pm)
	}
}

func TestMaskedDistExact(t *testing.T) {
	// Skewed tcp_flags: 60% pure SYN (0x02), 40% pure ACK (0x10).
	profile := dist.NewProfile().SetField("tcp_flags", dist.MustFromPieces([]dist.Piece{
		{Lo: 0x02, Hi: 0x02, Mass: 0.6}, {Lo: 0x10, Hi: 0x10, Mass: 0.4},
	}))
	c := NewCounter(solver.NewSpace([]ir.Field{{Name: "tcp_flags", Bits: 8}}), profile)
	// P((flags & 0x02) == 0x02) must be exactly the SYN share.
	p := c.ProbOf([]solver.Constraint{
		con(ir.CmpEq, solver.VarExpr(v(0, "tcp_flags&2")), solver.ConstExpr(2)),
	})
	if !almostEq(p.Float(), 0.6, 1e-9) {
		t.Fatalf("P(masked SYN) = %v, want 0.6", p.Float())
	}
}

func TestMaskedDistUniformBase(t *testing.T) {
	c := NewCounter(solver.NewSpace([]ir.Field{{Name: "tcp_flags", Bits: 8}}), nil)
	// Uniform 8-bit flags: each bit set with probability 1/2.
	p := c.ProbOf([]solver.Constraint{
		con(ir.CmpEq, solver.VarExpr(v(0, "tcp_flags&18")), solver.ConstExpr(18)),
	})
	if !almostEq(p.Float(), 0.25, 1e-9) {
		t.Fatalf("P(two masked bits) = %v, want 0.25", p.Float())
	}
}

func TestMaskedDistWideBaseSubmasks(t *testing.T) {
	// 32-bit base falls back to the submask-uniform model.
	c := NewCounter(solver.NewSpace([]ir.Field{{Name: "dst_ip", Bits: 32}}), nil)
	p := c.ProbOf([]solver.Constraint{
		con(ir.CmpEq, solver.VarExpr(v(0, "dst_ip&3")), solver.ConstExpr(0)),
	})
	if !almostEq(p.Float(), 0.25, 1e-9) {
		t.Fatalf("P(two wide bits clear) = %v, want 0.25", p.Float())
	}
}
