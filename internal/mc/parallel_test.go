package mc

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/prob"
	"repro/internal/solver"
)

// workload builds a mix of constraint sets: single-field intervals, two-field
// conjunctions, and cross-packet equalities — enough distinct keys to spread
// over several cache shards, with every set queried by every goroutine so the
// single-flight path is exercised constantly.
func workload() [][]solver.Constraint {
	var out [][]solver.Constraint
	for k := int64(1); k <= 32; k++ {
		out = append(out, []solver.Constraint{
			con(ir.CmpLe, solver.VarExpr(v(0, "a")), solver.ConstExpr(k)),
		})
		out = append(out, []solver.Constraint{
			con(ir.CmpLe, solver.VarExpr(v(0, "b")), solver.ConstExpr(k)),
			con(ir.CmpGe, solver.VarExpr(v(0, "c")), solver.ConstExpr(k)),
		})
		out = append(out, []solver.Constraint{
			con(ir.CmpEq, solver.VarExpr(v(0, "w")), solver.VarExpr(v(1, "w"))),
			con(ir.CmpLt, solver.VarExpr(v(0, "a")), solver.ConstExpr(k)),
		})
	}
	return out
}

// TestCounterConcurrent hammers one Counter from 16 goroutines (run under
// -race in CI). Every goroutine queries the full workload, so all cache
// shards see concurrent lookups, claims, and waits; the results must match a
// sequential reference counter exactly and the stats must balance.
func TestCounterConcurrent(t *testing.T) {
	work := workload()

	ref := NewCounter(sp(), nil)
	want := make([]prob.P, len(work))
	for i, cs := range work {
		want[i] = ref.ProbOf(cs)
	}

	const goroutines = 16
	c := NewCounter(sp(), nil)
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Stagger the iteration order so goroutines collide on
			// different keys at different times.
			for j := range work {
				i := (j + g*7) % len(work)
				if got := c.ProbOf(work[i]); got.Cmp(want[i]) != 0 {
					errs <- "concurrent result differs from sequential reference"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	st := c.Stats()
	if st.Queries != goroutines*len(work) {
		t.Fatalf("queries = %d, want %d", st.Queries, goroutines*len(work))
	}
	// Single-flight: exactly one goroutine computes each distinct key; every
	// other query is a hit (possibly after waiting on the in-flight entry).
	if wantHits := st.Queries - len(work); st.CacheHits != wantHits {
		t.Fatalf("cache hits = %d, want %d", st.CacheHits, wantHits)
	}
}

// TestCacheKeyCanonical checks the two key properties ProbOf relies on:
// permutation invariance (conjunction order must not split cache entries)
// and sensitivity to every constraint field.
func TestCacheKeyCanonical(t *testing.T) {
	cs := []solver.Constraint{
		con(ir.CmpLe, solver.VarExpr(v(0, "a")), solver.ConstExpr(10)),
		con(ir.CmpEq, solver.VarExpr(v(0, "w")), solver.VarExpr(v(1, "w"))),
		con(ir.CmpGt, solver.VarExpr(v(2, "b")), solver.ConstExpr(3)),
	}
	perm := []solver.Constraint{cs[2], cs[0], cs[1]}
	if cacheKey(cs) != cacheKey(perm) {
		t.Fatal("cache key depends on constraint order")
	}
	if cacheKey(cs) == cacheKey(cs[:2]) {
		t.Fatal("subset conjunction collides")
	}
	mut := []solver.Constraint{cs[0], cs[1],
		con(ir.CmpGt, solver.VarExpr(v(2, "b")), solver.ConstExpr(4))}
	if cacheKey(cs) == cacheKey(mut) {
		t.Fatal("changed constant collides")
	}
	mutOp := []solver.Constraint{cs[0], cs[1],
		con(ir.CmpGe, solver.VarExpr(v(2, "b")), solver.ConstExpr(3))}
	if cacheKey(cs) == cacheKey(mutOp) {
		t.Fatal("changed operator collides")
	}
}

// legacyCacheKey is the fmt/String-based key this package used before the
// FNV fingerprint, kept here as the benchmark baseline.
func legacyCacheKey(cs []solver.Constraint) string {
	ss := make([]string, len(cs))
	for i, c := range cs {
		ss[i] = c.String()
	}
	sort.Strings(ss)
	return strings.Join(ss, "&")
}

// benchConstraints is a representative conjunction: the size a merged
// greybox path typically carries into ProbOf.
func benchConstraints() []solver.Constraint {
	var cs []solver.Constraint
	for k := int64(0); k < 8; k++ {
		cs = append(cs,
			con(ir.CmpLe, solver.VarExpr(v(int(k), "a")), solver.ConstExpr(100+k)),
			con(ir.CmpEq, solver.VarExpr(v(int(k), "w")), solver.VarExpr(v(int(k)+1, "w"))))
	}
	return cs
}

func BenchmarkCacheKey(b *testing.B) {
	cs := benchConstraints()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cacheKey(cs)
	}
}

func BenchmarkCacheKeyLegacy(b *testing.B) {
	cs := benchConstraints()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = legacyCacheKey(cs)
	}
}
