package mc

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/prob"
	"repro/internal/solver"
)

// key128 is a 128-bit fingerprint of a sorted constraint conjunction. Two
// independent 64-bit FNV-style folds make accidental collisions negligible
// (a 64-bit key alone would risk silent cross-path cache corruption at the
// millions-of-queries scale of a full profiling run).
type key128 struct{ hi, lo uint64 }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// Second fold uses splitmix64-style odd multipliers so hi and lo are
	// independent functions of the same per-constraint hashes.
	mixMul64 = 0xbf58476d1ce4e5b9
)

// cacheKey fingerprints a conjunction order-insensitively: each constraint
// hashes independently over its canonical fields (terms are already sorted
// by solver.LinExpr.canon), the per-constraint hashes are sorted as
// integers, then folded twice. Unlike the fmt/String-based key this used to
// be, it allocates only one small scratch slice (see BenchmarkCacheKey).
func cacheKey(cs []solver.Constraint) key128 {
	hs := make([]uint64, len(cs))
	for i := range cs {
		hs[i] = hashConstraint(&cs[i])
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	lo := uint64(fnvOffset64)
	hi := uint64(fnvOffset64) ^ 0x9e3779b97f4a7c15
	for _, h := range hs {
		lo = (lo ^ h) * fnvPrime64
		hi = (hi + h) * mixMul64
		hi ^= hi >> 29
	}
	return key128{hi: hi, lo: lo}
}

// hashConstraint is FNV-1a over the canonical bytes of one constraint:
// operator, constant, and each term's packet index, coefficient, and field
// name. No formatting, no intermediate strings.
func hashConstraint(c *solver.Constraint) uint64 {
	h := uint64(fnvOffset64)
	h = hashByte(h, byte(c.Op))
	h = hashU64(h, uint64(c.E.K))
	for _, t := range c.E.Terms {
		h = hashU64(h, uint64(t.Var.Pkt))
		h = hashU64(h, uint64(t.Coef))
		for i := 0; i < len(t.Var.Field); i++ {
			h = hashByte(h, t.Var.Field[i])
		}
		h = hashByte(h, 0xff) // field terminator
	}
	return h
}

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func hashU64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(v))
		v >>= 8
	}
	return h
}

// numShards is the fan-out of the memo cache. 64 shards keeps per-shard
// mutex contention negligible for any realistic worker count while the
// whole shard array stays a few cache lines of header data.
const numShards = 64

// cacheEntry is a single-flight slot: the first goroutine to claim a key
// computes the probability and closes done; later goroutines wait on done
// and read p. The claim is made under the shard lock, the (expensive) count
// happens outside it.
type cacheEntry struct {
	done chan struct{}
	p    prob.P
}

type cacheShard struct {
	mu sync.Mutex
	m  map[key128]*cacheEntry
}

// shardedCache is the concurrency-safe memo cache behind Counter.ProbOf:
// N-way sharded by key hash with per-shard mutexes and single-flight
// semantics, so two workers never redundantly count the same component.
type shardedCache struct {
	shards     [numShards]cacheShard
	contention atomic.Int64 // lock acquisitions that had to wait
	entries    atomic.Int64
}

func newShardedCache() *shardedCache {
	c := &shardedCache{}
	for i := range c.shards {
		c.shards[i].m = map[key128]*cacheEntry{}
	}
	return c
}

// lookupOrClaim returns the entry for key and whether it already existed.
// When existed is false the caller owns the entry: it must set p and close
// done exactly once (callers use publish). When existed is true the caller
// must wait on done before reading p.
func (sc *shardedCache) lookupOrClaim(key key128) (e *cacheEntry, existed bool) {
	s := &sc.shards[key.lo%numShards]
	if !s.mu.TryLock() {
		sc.contention.Add(1)
		s.mu.Lock()
	}
	e, existed = s.m[key]
	if !existed {
		e = &cacheEntry{done: make(chan struct{})}
		s.m[key] = e
		sc.entries.Add(1)
	}
	s.mu.Unlock()
	return e, existed
}

// publish completes a claimed entry, releasing every waiter.
func (sc *shardedCache) publish(e *cacheEntry, p prob.P) {
	e.p = p
	close(e.done)
}
