package mc

import (
	"math"
	"sort"

	"repro/internal/prob"
	"repro/internal/solver"
)

// pairProb exactly counts a two-class component linked by difference and
// disequality constraints: P = Σ_{x,y} wA(x)·wB(y)·[dlo ≤ x−y ≤ dhi]·[x ≠ y+c ...].
func (c *Counter) pairProb(sys *solver.System, comp component) prob.P {
	a, b := comp.roots[0], comp.roots[1]

	// Fold all difference constraints into a single window on x−y.
	dlo := int64(math.MinInt64 / 4)
	dhi := int64(math.MaxInt64 / 4)
	for _, d := range comp.diffs {
		switch {
		case d.A == a && d.B == b: // x − y <= C
			if d.C < dhi {
				dhi = d.C
			}
		case d.A == b && d.B == a: // y − x <= C  =>  x − y >= −C
			if -d.C > dlo {
				dlo = -d.C
			}
		}
	}
	if dlo > dhi {
		return prob.Zero()
	}

	// Disequalities become excluded diagonals x − y == c.
	exSet := map[int64]bool{}
	for _, n := range comp.neqs {
		switch {
		case n.A == a && n.B == b: // x != y + C
			exSet[n.C] = true
		case n.A == b && n.B == a: // y != x + C  =>  x != y − C
			exSet[-n.C] = true
		}
	}
	var excluded []int64
	for e := range exSet {
		if e >= dlo && e <= dhi {
			excluded = append(excluded, e)
		}
	}
	sort.Slice(excluded, func(i, j int) bool { return excluded[i] < excluded[j] })

	segsA := punchHoles(c.classSegments(sys, a), sys.Holes[a])
	segsB := punchHoles(c.classSegments(sys, b), sys.Holes[b])

	total := 0.0
	for _, sa := range segsA {
		for _, sb := range segsB {
			n := countPairs(sa.lo, sa.hi, sb.lo, sb.hi, dlo, dhi)
			if n <= 0 {
				continue
			}
			for _, e := range excluded {
				n -= countDiagonal(sa.lo, sa.hi, sb.lo, sb.hi, e)
			}
			if n > 0 {
				total += sa.dens * sb.dens * n
			}
		}
	}
	return prob.FromFloat(total)
}

// punchHoles removes single excluded root values from weight segments.
func punchHoles(segs []wseg, holes []uint64) []wseg {
	if len(holes) == 0 {
		return segs
	}
	out := make([]wseg, 0, len(segs)+len(holes))
	for _, s := range segs {
		cur := s
		intact := true
		for _, h := range holes {
			if h < cur.lo || h > cur.hi {
				continue
			}
			intact = false
			if h > cur.lo {
				out = append(out, wseg{lo: cur.lo, hi: h - 1, dens: cur.dens})
			}
			if h < cur.hi {
				cur = wseg{lo: h + 1, hi: cur.hi, dens: cur.dens}
			} else {
				cur = wseg{lo: 1, hi: 0}
				break
			}
		}
		if intact {
			out = append(out, s)
		} else if cur.lo <= cur.hi {
			out = append(out, cur)
		}
	}
	return out
}

// countPairs returns |{(x,y) : x∈[a0,a1], y∈[b0,b1], dlo ≤ x−y ≤ dhi}| as a
// float64 (exact for counts below 2^53). The per-y count
// f(y) = max(0, min(a1, y+dhi) − max(a0, y+dlo) + 1) is piecewise linear
// with slopes in {−1,0,1}; we sum arithmetic series between breakpoints.
func countPairs(a0u, a1u, b0u, b1u uint64, dlo, dhi int64) float64 {
	a0, a1 := int64(a0u), int64(a1u)
	b0, b1 := int64(b0u), int64(b1u)
	if a0 > a1 || b0 > b1 {
		return 0
	}
	// f may go negative; seriesSum clamps it, which is essential for
	// detecting sign changes inside a segment.
	f := func(y int64) int64 {
		hi := y + dhi
		if a1 < hi {
			hi = a1
		}
		lo := y + dlo
		if a0 > lo {
			lo = a0
		}
		return hi - lo + 1
	}
	// Candidate breakpoints: where either clamp switches regime.
	cands := []int64{b0, b1, a1 - dhi, a1 - dhi + 1, a0 - dlo, a0 - dlo - 1, a0 - dlo + 1, a1 - dhi - 1, a0 - dhi, a1 - dlo}
	var cuts []int64
	for _, cd := range cands {
		if cd >= b0 && cd <= b1 {
			cuts = append(cuts, cd)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	// Dedup.
	uniq := cuts[:0]
	for i, v := range cuts {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	cuts = uniq

	total := 0.0
	for i := 0; i < len(cuts); i++ {
		s := cuts[i]
		var e int64
		if i+1 < len(cuts) {
			e = cuts[i+1] - 1
		} else {
			e = b1
		}
		if s > e {
			continue
		}
		fs, fe := f(s), f(e)
		// Between consecutive breakpoints f is linear; clamping to 0
		// cannot flip sign inside because the zero boundary is itself a
		// breakpoint candidate (a0−dhi, a1−dlo cover f==1 edges); still,
		// guard by splitting on sign just in case.
		total += seriesSum(s, e, fs, fe)
	}
	return total
}

// seriesSum sums max(0, f(y)) for y in [s,e] where f is linear with f(s)=fs,
// f(e)=fe and integer slope.
func seriesSum(s, e, fs, fe int64) float64 {
	n := e - s + 1
	if n <= 0 {
		return 0
	}
	if fs <= 0 && fe <= 0 {
		return 0
	}
	if fs >= 0 && fe >= 0 {
		return float64(fs+fe) * float64(n) / 2
	}
	// Sign change: slope is (fe-fs)/(e-s) = ±1 for our f.
	if n == 1 {
		if fs > 0 {
			return float64(fs)
		}
		return 0
	}
	m := (fe - fs) / (e - s)
	if m == 0 {
		return 0 // can't happen with a sign change
	}
	// f(y) = fs + m(y−s); zero at y0 = s − fs/m.
	y0 := s - fs/m
	if fs < 0 {
		// positive part is (y0', e] where f > 0
		start := y0
		for start <= e && fs+m*(start-s) <= 0 {
			start++
		}
		if start > e {
			return 0
		}
		return seriesSum(start, e, fs+m*(start-s), fe)
	}
	// fs > 0, fe < 0: positive part is [s, end]
	end := y0
	for end >= s && fs+m*(end-s) <= 0 {
		end--
	}
	if end < s {
		return 0
	}
	return seriesSum(s, end, fs, fs+m*(end-s))
}

// countDiagonal counts pairs with x − y == c in the rectangle.
func countDiagonal(a0u, a1u, b0u, b1u uint64, c int64) float64 {
	a0, a1 := int64(a0u), int64(a1u)
	b0, b1 := int64(b0u), int64(b1u)
	lo := b0
	if a0-c > lo {
		lo = a0 - c
	}
	hi := b1
	if a1-c < hi {
		hi = a1 - c
	}
	if lo > hi {
		return 0
	}
	return float64(hi - lo + 1)
}
