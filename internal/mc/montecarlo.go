package mc

import (
	"hash/fnv"
	"math/rand"

	"repro/internal/prob"
	"repro/internal/solver"
)

// monteCarlo estimates the probability of a component that is too entangled
// for closed-form counting. Each class root is drawn from its conditional
// weight function; the hit rate over the samples scales the product of the
// class masses. The RNG is derived deterministically from the counter seed
// and the component's constraints, so estimates are reproducible.
func (c *Counter) monteCarlo(sys *solver.System, comp component) prob.P {
	// Base: product of class masses (the probability of the "box" before
	// the coupling constraints).
	base := prob.One()
	type classInfo struct {
		root solver.Var
		segs []wseg
		mass float64
		cum  []float64
	}
	infos := make([]classInfo, 0, len(comp.roots))
	for _, r := range comp.roots {
		segs := punchHoles(c.classSegments(sys, r), sys.Holes[r])
		mass := 0.0
		for _, s := range segs {
			mass += s.dens * (float64(s.hi-s.lo) + 1)
		}
		if mass <= 0 {
			return prob.Zero()
		}
		cum := make([]float64, len(segs))
		acc := 0.0
		for i, s := range segs {
			acc += s.dens * (float64(s.hi-s.lo) + 1)
			cum[i] = acc
		}
		infos = append(infos, classInfo{root: r, segs: segs, mass: mass, cum: cum})
		base = base.Mul(prob.FromFloat(mass))
	}
	if base.IsZero() {
		return prob.Zero()
	}

	h := fnv.New64a()
	for _, d := range comp.diffs {
		h.Write([]byte(d.A.String()))
		h.Write([]byte(d.B.String()))
	}
	for _, g := range comp.generic {
		h.Write([]byte(g.String()))
	}
	for _, r := range comp.roots {
		h.Write([]byte(r.String()))
	}
	rng := rand.New(rand.NewSource(c.Seed ^ int64(h.Sum64())))

	samples := c.MCSamples
	if samples <= 0 {
		samples = 20000
	}
	hits := 0
	asn := map[solver.Var]uint64{}
	for i := 0; i < samples; i++ {
		for _, ci := range infos {
			asn[ci.root] = sampleSegs(rng, ci.segs, ci.cum, ci.mass)
		}
		if satisfies(comp, asn) {
			hits++
		}
	}
	rate := float64(hits) / float64(samples)
	return base.Mul(prob.FromFloat(rate))
}

func sampleSegs(rng *rand.Rand, segs []wseg, cum []float64, mass float64) uint64 {
	u := rng.Float64() * mass
	idx := len(segs) - 1
	for i, cm := range cum {
		if u <= cm {
			idx = i
			break
		}
	}
	s := segs[idx]
	span := s.hi - s.lo
	if span == ^uint64(0) {
		return rng.Uint64()
	}
	lim := span + 1
	if lim > 1<<62 {
		lim = 1 << 62
	}
	return s.lo + uint64(rng.Int63n(int64(lim)))
}

func satisfies(comp component, asn map[solver.Var]uint64) bool {
	for _, d := range comp.diffs {
		if int64(asn[d.A])-int64(asn[d.B]) > d.C {
			return false
		}
	}
	for _, n := range comp.neqs {
		if int64(asn[n.A]) == int64(asn[n.B])+n.C {
			return false
		}
	}
	for _, g := range comp.generic {
		if !g.Holds(asn) {
			return false
		}
	}
	return true
}
