// Package mc implements weighted model counting over the normalized
// constraint systems produced by internal/solver. It fills the role LattE
// plays in the paper's prototype: given a path condition, it computes the
// probability mass of the satisfying header-space polytope under a traffic
// profile (or the uniform distribution when no profile is supplied).
//
// Constraint systems decompose into independent components. Single-class
// components and two-class components (connected by difference and
// disequality constraints) are counted exactly in closed form; larger or
// generic-residue components fall back to a deterministic Monte-Carlo
// estimator, mirroring how approximate #SMT solvers handle theories exact
// counters cannot.
package mc

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/prob"
	"repro/internal/solver"
)

// Stats instruments the counter for the Figure 7 experiments.
type Stats struct {
	Queries      int // total ProbOf calls
	CacheHits    int
	ExactClasses int // components counted in closed form
	ExactPairs   int
	MCFallbacks  int // components estimated by Monte Carlo
}

// CacheHitRate returns the fraction of queries served from the memo cache.
func (s Stats) CacheHitRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Queries)
}

// Metrics flattens the stats into the registry/report namespace.
func (s Stats) Metrics() map[string]float64 {
	return map[string]float64{
		"queries":        float64(s.Queries),
		"cache_hits":     float64(s.CacheHits),
		"cache_hit_rate": s.CacheHitRate(),
		"exact_classes":  float64(s.ExactClasses),
		"exact_pairs":    float64(s.ExactPairs),
		"mc_fallbacks":   float64(s.MCFallbacks),
	}
}

// Counter computes path-condition probabilities. It is safe for concurrent
// use: the memo cache is sharded with per-shard mutexes and single-flight
// semantics (two workers never redundantly count the same conjunction — the
// second blocks until the first publishes), and the instrumentation counters
// are atomic. The tuning fields must be set before the first ProbOf call.
type Counter struct {
	Space  *solver.Space
	Oracle dist.Oracle

	// MCSamples bounds Monte-Carlo fallback sample counts (default 20000).
	MCSamples int
	// Seed makes the Monte-Carlo fallback deterministic.
	Seed int64
	// DisableCache turns off memoization (for the cache ablation).
	DisableCache bool
	// ForceMC forces the Monte-Carlo path even for exactly countable
	// components (for the exact-vs-MC ablation).
	ForceMC bool

	cache *shardedCache
	stats counterStats
}

// counterStats is the atomic backing store for Stats snapshots.
type counterStats struct {
	queries      atomic.Int64
	cacheHits    atomic.Int64
	exactClasses atomic.Int64
	exactPairs   atomic.Int64
	mcFallbacks  atomic.Int64
}

// NewCounter builds a counter over the given variable space and oracle.
// A nil oracle means uniform header space.
func NewCounter(space *solver.Space, oracle dist.Oracle) *Counter {
	if oracle == nil {
		oracle = &dist.UniformOracle{}
	}
	return &Counter{
		Space:     space,
		Oracle:    oracle,
		MCSamples: 20000,
		cache:     newShardedCache(),
	}
}

// Stats returns a snapshot of the counter's instrumentation counters.
func (c *Counter) Stats() Stats {
	return Stats{
		Queries:      int(c.stats.queries.Load()),
		CacheHits:    int(c.stats.cacheHits.Load()),
		ExactClasses: int(c.stats.exactClasses.Load()),
		ExactPairs:   int(c.stats.exactPairs.Load()),
		MCFallbacks:  int(c.stats.mcFallbacks.Load()),
	}
}

// CacheMetrics is the sharded-cache view on its own: shard count, resident
// entries, and how often a worker found a shard lock held (the contention
// signal the obs registry and the run report expose).
func (c *Counter) CacheMetrics() map[string]float64 {
	m := map[string]float64{"cache_shards": float64(numShards)}
	if c.cache != nil {
		m["cache_entries"] = float64(c.cache.entries.Load())
		m["cache_shard_contention"] = float64(c.cache.contention.Load())
	}
	return m
}

// Metrics extends Stats.Metrics with the sharded-cache view.
func (c *Counter) Metrics() map[string]float64 {
	m := c.Stats().Metrics()
	for k, v := range c.CacheMetrics() {
		m[k] = v
	}
	return m
}

// ProbOf returns the probability that a random packet sequence (fields
// drawn independently per the oracle's marginals) satisfies the
// conjunction. Concurrent callers with the same conjunction single-flight:
// one computes, the rest block on its result and count as cache hits.
func (c *Counter) ProbOf(cs []solver.Constraint) prob.P {
	c.stats.queries.Add(1)
	if c.DisableCache || c.cache == nil {
		return c.ProbOfSystem(solver.Build(cs, c.Space))
	}
	e, existed := c.cache.lookupOrClaim(cacheKey(cs))
	if existed {
		c.stats.cacheHits.Add(1)
		<-e.done
		return e.p
	}
	p := c.ProbOfSystem(solver.Build(cs, c.Space))
	c.cache.publish(e, p)
	return p
}

// ProbOfSystem counts an already-normalized system.
func (c *Counter) ProbOfSystem(sys *solver.System) prob.P {
	if !sys.Feasible {
		return prob.Zero()
	}
	comps := components(sys)
	result := prob.One()
	for _, comp := range comps {
		var p prob.P
		switch {
		case c.ForceMC:
			c.stats.mcFallbacks.Add(1)
			p = c.monteCarlo(sys, comp)
		case len(comp.roots) == 1 && len(comp.generic) == 0 && len(comp.diffs) == 0 && len(comp.neqs) == 0:
			c.stats.exactClasses.Add(1)
			p = prob.FromFloat(c.classMass(sys, comp.roots[0]))
		case len(comp.roots) == 2 && len(comp.generic) == 0:
			c.stats.exactPairs.Add(1)
			p = c.pairProb(sys, comp)
		default:
			c.stats.mcFallbacks.Add(1)
			p = c.monteCarlo(sys, comp)
		}
		result = result.Mul(p)
	}
	return result
}

// component groups roots linked by diffs, neqs, or generic constraints.
type component struct {
	roots   []solver.Var
	diffs   []solver.Diff
	neqs    []solver.Neq
	generic []solver.Constraint
}

func components(sys *solver.System) []component {
	idx := map[solver.Var]int{}
	for i, r := range sys.Roots {
		idx[r] = i
	}
	parent := make([]int, len(sys.Roots))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for _, d := range sys.Diffs {
		union(idx[d.A], idx[d.B])
	}
	for _, n := range sys.Neqs {
		union(idx[n.A], idx[n.B])
	}
	for _, g := range sys.Generic {
		vs := g.E.Vars()
		for i := 1; i < len(vs); i++ {
			union(idx[vs[0]], idx[vs[i]])
		}
	}

	byRoot := map[int]*component{}
	order := []int{}
	for i, r := range sys.Roots {
		k := find(i)
		cp, ok := byRoot[k]
		if !ok {
			cp = &component{}
			byRoot[k] = cp
			order = append(order, k)
		}
		cp.roots = append(cp.roots, r)
	}
	for _, d := range sys.Diffs {
		byRoot[find(idx[d.A])].diffs = append(byRoot[find(idx[d.A])].diffs, d)
	}
	for _, n := range sys.Neqs {
		byRoot[find(idx[n.A])].neqs = append(byRoot[find(idx[n.A])].neqs, n)
	}
	for _, g := range sys.Generic {
		vs := g.E.Vars()
		if len(vs) > 0 {
			byRoot[find(idx[vs[0]])].generic = append(byRoot[find(idx[vs[0]])].generic, g)
		}
	}
	out := make([]component, 0, len(order))
	for _, k := range order {
		out = append(out, *byRoot[k])
	}
	return out
}

// distFor returns the marginal distribution of a variable: havoc variables
// are uniform over their registered domain, derived masked fields
// ("tcp_flags&18") get the exact image distribution of their base field,
// and header fields come from the oracle (uniform over the field width when
// the oracle has no answer).
func (c *Counter) distFor(v solver.Var) dist.Dist {
	if strings.HasPrefix(v.Field, "__") {
		dom := c.Space.Domain(v)
		return dist.UniformRange(dom.Lo, dom.Hi)
	}
	if i := strings.LastIndex(v.Field, "&"); i > 0 {
		return c.maskedDist(v, v.Field[:i], v.Field[i+1:])
	}
	if d, ok := c.Oracle.FieldDist(v.Field); ok {
		return d
	}
	dom := c.Space.Domain(v)
	return dist.UniformRange(dom.Lo, dom.Hi)
}

// maskedDist computes the distribution of (base & mask).
func (c *Counter) maskedDist(v solver.Var, base, maskStr string) dist.Dist {
	var mask uint64
	fmt.Sscanf(maskStr, "%d", &mask)
	baseBits, ok := c.Space.FieldBits[base]
	if !ok {
		baseBits = 32
	}
	baseDist, known := c.Oracle.FieldDist(base)
	if !known {
		baseDist = dist.Uniform(baseBits)
	}
	// Exact image by enumeration for small base domains.
	if baseBits <= 16 {
		masses := map[uint64]float64{}
		max := (uint64(1) << uint(baseBits)) - 1
		for x := uint64(0); ; x++ {
			if p := baseDist.P(x); p > 0 {
				masses[x&mask] += p
			}
			if x == max {
				break
			}
		}
		pieces := make([]dist.Piece, 0, len(masses))
		for val, m := range masses {
			pieces = append(pieces, dist.Piece{Lo: val, Hi: val, Mass: m})
		}
		if d, err := dist.FromPieces(pieces); err == nil {
			return d
		}
	}
	// Wide base: assume masked bits are uniform, so every submask of mask
	// is equally likely.
	pc := popcount(mask)
	if pc <= 12 {
		p := 1 / float64(uint64(1)<<uint(pc))
		var pieces []dist.Piece
		for sub := mask; ; sub = (sub - 1) & mask {
			pieces = append(pieces, dist.Piece{Lo: sub, Hi: sub, Mass: p})
			if sub == 0 {
				break
			}
		}
		if d, err := dist.FromPieces(pieces); err == nil {
			return d
		}
	}
	return dist.UniformRange(0, mask)
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// sameFieldClass reports whether all members of a class read the same
// header field of distinct packets with identical offsets — the
// cross-packet-equality pattern where a pair-equality oracle query applies.
func sameFieldClass(members []solver.Member) (string, int64, bool) {
	if len(members) < 2 {
		return "", 0, false
	}
	field := members[0].Var.Field
	off := members[0].Off
	pkts := map[int]bool{}
	for _, m := range members {
		if m.Var.Field != field || m.Off != off {
			return "", 0, false
		}
		if pkts[m.Var.Pkt] {
			return "", 0, false
		}
		pkts[m.Var.Pkt] = true
	}
	return field, off, true
}

// classMass computes the probability mass of one equality class within its
// propagated interval, excluding punched holes.
func (c *Counter) classMass(sys *solver.System, root solver.Var) float64 {
	members := sys.Members[root]
	iv := sys.RootIv[root]
	if iv.Empty() {
		return 0
	}

	// Cross-packet equality: ask the oracle for the pair-equality
	// probability (e.g. the retransmission ratio for seq numbers).
	if field, off, ok := sameFieldClass(members); ok {
		if pe, known := c.Oracle.PairEqualProb(field); known {
			d := c.distFor(members[0].Var)
			shifted := iv.Shift(off) // value-space interval
			mass := d.MassIn(shifted.Lo, shifted.Hi)
			p := mass
			for i := 1; i < len(members); i++ {
				p *= pe
			}
			// Holes are in root space; translate and discount.
			for _, h := range sys.Holes[root] {
				vh := uint64(int64(h) + off)
				p -= d.P(vh) * powf(pe, len(members)-1)
			}
			if p < 0 {
				p = 0
			}
			return p
		}
	}

	segs := c.classSegments(sys, root)
	mass := 0.0
	for _, s := range segs {
		mass += s.dens * (float64(s.hi-s.lo) + 1)
	}
	for _, h := range sys.Holes[root] {
		mass -= segDensityAt(segs, h)
	}
	if mass < 0 {
		mass = 0
	}
	return mass
}

func powf(p float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= p
	}
	return out
}

// wseg is a segment of the class weight function: for root values in
// [lo,hi], the probability that every member takes its implied value is
// dens per root value.
type wseg struct {
	lo, hi uint64
	dens   float64
}

func segDensityAt(segs []wseg, v uint64) float64 {
	for _, s := range segs {
		if v >= s.lo && v <= s.hi {
			return s.dens
		}
	}
	return 0
}

// classSegments computes the piecewise-constant weight function of an
// equality class over root space: w(x) = ∏_i P_i(x + off_i), restricted to
// the propagated interval.
func (c *Counter) classSegments(sys *solver.System, root solver.Var) []wseg {
	members := sys.Members[root]
	iv := sys.RootIv[root]
	if iv.Empty() {
		return nil
	}
	// Shift every member's distribution into root coordinates and collect
	// breakpoints.
	type shifted struct {
		pieces []dist.Piece
	}
	sh := make([]shifted, len(members))
	cutSet := map[uint64]bool{iv.Lo: true}
	addCut := func(v uint64) {
		if v >= iv.Lo && v <= iv.Hi {
			cutSet[v] = true
		}
	}
	for i, m := range members {
		d := c.distFor(m.Var)
		for _, p := range d.Pieces {
			lo := solver.Interval{Lo: p.Lo, Hi: p.Hi}.Shift(-m.Off)
			if lo.Empty() {
				continue
			}
			sh[i].pieces = append(sh[i].pieces, dist.Piece{Lo: lo.Lo, Hi: lo.Hi, Mass: p.Mass})
			addCut(lo.Lo)
			if lo.Hi < ^uint64(0) {
				addCut(lo.Hi + 1)
			}
		}
	}
	cuts := make([]uint64, 0, len(cutSet))
	for v := range cutSet {
		cuts = append(cuts, v)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	densAt := func(pieces []dist.Piece, v uint64) float64 {
		for _, p := range pieces {
			if v >= p.Lo && v <= p.Hi {
				return p.Mass / (float64(p.Hi-p.Lo) + 1)
			}
		}
		return 0
	}

	var segs []wseg
	for i, lo := range cuts {
		var hi uint64
		if i+1 < len(cuts) {
			hi = cuts[i+1] - 1
		} else {
			hi = iv.Hi
		}
		if hi > iv.Hi {
			hi = iv.Hi
		}
		if lo > hi {
			continue
		}
		dens := 1.0
		for _, s := range sh {
			dens *= densAt(s.pieces, lo)
			if dens == 0 {
				break
			}
		}
		if dens > 0 {
			segs = append(segs, wseg{lo: lo, hi: hi, dens: dens})
		}
	}
	return segs
}
