package solver

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/ir"
)

// SolveOptions tunes the assignment search.
type SolveOptions struct {
	// Seed drives the randomized restarts; the same seed yields the same
	// witness.
	Seed int64
	// Restarts bounds the number of randomized restarts (default 64).
	Restarts int
	// Ctx cancels the search: it is checked once per restart attempt and
	// stride-checked inside the generic-repair loop, so a canceled job
	// stops solving promptly. A canceled search reports no witness; the
	// caller distinguishes cancellation from unsatisfiability by
	// inspecting the context. Nil means no cancellation.
	Ctx context.Context
}

// ctxCanceled is the nil-safe cancellation probe the search loops use.
func (o SolveOptions) ctxCanceled() bool {
	if o.Ctx == nil {
		return false
	}
	select {
	case <-o.Ctx.Done():
		return true
	default:
		return false
	}
}

// Solve finds a concrete satisfying assignment for the conjunction, or
// reports unsatisfiability. The assignment covers every variable mentioned
// by the constraints.
func Solve(cs []Constraint, space *Space, opt SolveOptions) (map[Var]uint64, bool) {
	sys := Build(cs, space)
	return sys.Solve(opt)
}

// Feasible runs propagation only: a fast, conservative satisfiability check
// used to prune symbolic paths. It never reports a satisfiable system as
// infeasible; with disequality or generic residue it may (rarely) report an
// infeasible one as feasible.
func Feasible(cs []Constraint, space *Space) bool {
	metrics.feasible.Add(1)
	return Build(cs, space).Feasible
}

// Solve searches for a witness of the normalized system.
func (s *System) Solve(opt SolveOptions) (map[Var]uint64, bool) {
	asn, ok := s.solve(opt)
	metrics.solves.Add(1)
	if ok {
		metrics.solveSat.Add(1)
	} else {
		metrics.solveUnsat.Add(1)
	}
	return asn, ok
}

func (s *System) solve(opt SolveOptions) (map[Var]uint64, bool) {
	if !s.Feasible {
		return nil, false
	}
	if opt.Restarts == 0 {
		opt.Restarts = 64
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	for attempt := 0; attempt <= opt.Restarts; attempt++ {
		if opt.ctxCanceled() {
			return nil, false
		}
		rootVal, ok := s.assignRoots(rng, attempt > 0)
		if !ok {
			continue
		}
		asn := s.expand(rootVal)
		if s.checkGeneric(asn) {
			return asn, true
		}
		// Generic residue failed: try perturbing the variables involved.
		if asn2, ok := s.repairGeneric(rng, rootVal, opt); ok {
			return asn2, true
		}
	}
	return nil, false
}

// assignRoots picks a value per root honoring intervals, diffs, holes and
// neqs. Roots are processed in deterministic order; when randomize is set,
// the initial pick within the feasible range is randomized, which serves as
// the restart strategy.
func (s *System) assignRoots(rng *rand.Rand, randomize bool) (map[Var]uint64, bool) {
	val := map[Var]uint64{}
	for _, r := range s.Roots {
		iv := s.RootIv[r]
		// Tighten with diffs against already-assigned roots.
		for _, d := range s.Diffs {
			if d.A == r {
				if bv, ok := val[d.B]; ok {
					hi := satAdd(int64(bv), d.C)
					if hi < 0 {
						return nil, false
					}
					if uint64(hi) < iv.Hi {
						iv.Hi = uint64(hi)
					}
				}
			}
			if d.B == r {
				if av, ok := val[d.A]; ok {
					lo := satAdd(int64(av), -d.C)
					if lo > 0 && uint64(lo) > iv.Lo {
						iv.Lo = uint64(lo)
					}
				}
			}
		}
		if iv.Empty() {
			return nil, false
		}
		// Collect forbidden values: holes plus neqs against assigned roots.
		forbidden := map[uint64]bool{}
		for _, h := range s.Holes[r] {
			forbidden[h] = true
		}
		for _, n := range s.Neqs {
			if n.A == r {
				if bv, ok := val[n.B]; ok {
					t := satAdd(int64(bv), n.C)
					if t >= 0 {
						forbidden[uint64(t)] = true
					}
				}
			}
			if n.B == r {
				if av, ok := val[n.A]; ok {
					t := satAdd(int64(av), -n.C)
					if t >= 0 {
						forbidden[uint64(t)] = true
					}
				}
			}
		}
		v, ok := pick(iv, forbidden, rng, randomize)
		if !ok {
			return nil, false
		}
		val[r] = v
	}
	return val, true
}

// pick chooses a value in iv avoiding the forbidden set.
func pick(iv Interval, forbidden map[uint64]bool, rng *rand.Rand, randomize bool) (uint64, bool) {
	width := iv.Hi - iv.Lo // may be MaxUint64-0; handled below
	start := iv.Lo
	if randomize {
		if width == ^uint64(0) {
			start = rng.Uint64()
		} else {
			start = iv.Lo + uint64(rng.Int63n(int64(min64(width+1, 1<<62))))
		}
	}
	// Scan upward from start, wrapping once at Hi.
	limit := 4096 // forbidden sets are tiny in practice
	v := start
	for i := 0; i <= limit; i++ {
		if !forbidden[v] {
			return v, true
		}
		if v == iv.Hi {
			v = iv.Lo
		} else {
			v++
		}
		if v == start {
			break
		}
	}
	// Exhaustive fallback for small intervals.
	if !iv.Empty() && iv.Size() <= float64(len(forbidden)+1) {
		for v := iv.Lo; ; v++ {
			if !forbidden[v] {
				return v, true
			}
			if v == iv.Hi {
				break
			}
		}
	}
	return 0, false
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// expand derives every member variable's value from its root value.
func (s *System) expand(rootVal map[Var]uint64) map[Var]uint64 {
	asn := make(map[Var]uint64, len(rootVal))
	for r, ms := range s.Members {
		rv := int64(rootVal[r])
		for _, m := range ms {
			asn[m.Var] = uint64(rv + m.Off)
		}
	}
	return asn
}

// checkGeneric verifies the generic residue under an assignment.
func (s *System) checkGeneric(asn map[Var]uint64) bool {
	for _, c := range s.Generic {
		if !c.Holds(asn) {
			return false
		}
	}
	return true
}

// repairGeneric retries random values for the roots involved in failing
// generic constraints. The 512-try loop is stride-checked against the
// caller's context (every 64 tries, matching the engine's tickBudget
// stride) so a canceled job never rides out the full repair budget.
func (s *System) repairGeneric(rng *rand.Rand, rootVal map[Var]uint64, opt SolveOptions) (map[Var]uint64, bool) {
	involved := map[Var]bool{}
	for _, c := range s.Generic {
		for _, v := range c.E.Vars() {
			involved[v] = true
		}
	}
	if len(involved) == 0 {
		return nil, false
	}
	var roots []Var
	for v := range involved {
		roots = append(roots, v)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Less(roots[j]) })

	for try := 0; try < 512; try++ {
		if try%64 == 63 && opt.ctxCanceled() {
			return nil, false
		}
		trial := make(map[Var]uint64, len(rootVal))
		for k, v := range rootVal {
			trial[k] = v
		}
		for _, r := range roots {
			iv := s.RootIv[r]
			if iv.Empty() {
				return nil, false
			}
			span := iv.Hi - iv.Lo
			if span == ^uint64(0) {
				trial[r] = rng.Uint64()
			} else {
				trial[r] = iv.Lo + uint64(rng.Int63n(int64(min64(span+1, 1<<62))))
			}
		}
		// Pivot-solve each equality constraint for one of its variables:
		// with the others fixed, coef*pivot = -(K + rest) has at most one
		// solution, which we take when it lands in the pivot's interval.
		for _, c := range s.Generic {
			if c.Op != ir.CmpEq || c.Holds(trial) {
				continue
			}
			for _, t := range c.E.Terms {
				rest := c.E.K
				for _, o := range c.E.Terms {
					if o.Var != t.Var {
						rest += o.Coef * int64(trial[o.Var])
					}
				}
				if t.Coef == 0 || rest%t.Coef != 0 {
					continue
				}
				want := -rest / t.Coef
				if want >= 0 && s.RootIv[t.Var].Contains(uint64(want)) {
					trial[t.Var] = uint64(want)
					break
				}
			}
		}
		if !s.consistent(trial) {
			continue
		}
		asn := s.expand(trial)
		if s.checkGeneric(asn) {
			return asn, true
		}
	}
	return nil, false
}

// consistent re-verifies diffs/neqs/holes for a candidate root valuation.
func (s *System) consistent(val map[Var]uint64) bool {
	for _, d := range s.Diffs {
		if int64(val[d.A])-int64(val[d.B]) > d.C {
			return false
		}
	}
	for _, n := range s.Neqs {
		if int64(val[n.A]) == satAdd(int64(val[n.B]), n.C) {
			return false
		}
	}
	for r, hs := range s.Holes {
		v, ok := val[r]
		if !ok {
			continue
		}
		for _, h := range hs {
			if v == h {
				return false
			}
		}
	}
	return true
}
