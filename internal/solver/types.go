// Package solver implements an SMT-lite decision procedure for the
// constraint fragment emitted by data-plane programs: conjunctions of
// comparisons over bounded unsigned header fields, where each side is a
// linear expression (in practice: field-vs-constant, field-vs-field with an
// offset, and the occasional multi-term expression).
//
// It plays the role of Z3 in the paper's prototype. The normalized System it
// produces — interval bounds, equality classes with offsets, difference and
// disequality constraints — is also the input to the model counter
// (internal/mc), which plays the role of LattE.
package solver

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/ir"
)

// Var identifies one symbolic variable: header field Field of the Pkt-th
// packet in the symbolic sequence. Havoc variables (fresh unknowns created
// for hash outputs) use synthetic field names and carry explicit domains in
// the Space.
type Var struct {
	Pkt   int
	Field string
}

func (v Var) String() string { return fmt.Sprintf("p%d.%s", v.Pkt, v.Field) }

// Less orders variables deterministically.
func (v Var) Less(o Var) bool {
	if v.Pkt != o.Pkt {
		return v.Pkt < o.Pkt
	}
	return v.Field < o.Field
}

// Interval is an inclusive unsigned range. An empty interval has Lo > Hi.
type Interval struct{ Lo, Hi uint64 }

// FullInterval returns the domain of a width-bit field.
func FullInterval(bits int) Interval {
	if bits >= 64 {
		return Interval{0, math.MaxUint64}
	}
	return Interval{0, (uint64(1) << uint(bits)) - 1}
}

// Empty reports whether the interval contains no values.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Size returns the number of values in the interval as a float64.
func (iv Interval) Size() float64 {
	if iv.Empty() {
		return 0
	}
	return float64(iv.Hi-iv.Lo) + 1
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v uint64) bool { return v >= iv.Lo && v <= iv.Hi }

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	r := iv
	if o.Lo > r.Lo {
		r.Lo = o.Lo
	}
	if o.Hi < r.Hi {
		r.Hi = o.Hi
	}
	return r
}

// Shift returns the interval translated by the signed offset, clamped to
// [0, MaxUint64]; an interval shifted entirely out of range becomes empty.
func (iv Interval) Shift(off int64) Interval {
	if iv.Empty() {
		return iv
	}
	if off >= 0 {
		u := uint64(off)
		if iv.Lo > math.MaxUint64-u { // fully overflows
			return Interval{1, 0}
		}
		hi := uint64(math.MaxUint64)
		if iv.Hi <= math.MaxUint64-u {
			hi = iv.Hi + u
		}
		return Interval{iv.Lo + u, hi}
	}
	u := uint64(-off)
	if iv.Hi < u {
		return Interval{1, 0}
	}
	lo := uint64(0)
	if iv.Lo >= u {
		lo = iv.Lo - u
	}
	return Interval{lo, iv.Hi - u}
}

// Term is one summand of a linear expression.
type Term struct {
	Var  Var
	Coef int64
}

// LinExpr is a canonical linear expression: sorted unique vars with nonzero
// coefficients plus a constant.
type LinExpr struct {
	Terms []Term
	K     int64
}

// ConstExpr makes a constant linear expression.
func ConstExpr(k int64) LinExpr { return LinExpr{K: k} }

// VarExpr makes a single-variable linear expression.
func VarExpr(v Var) LinExpr { return LinExpr{Terms: []Term{{Var: v, Coef: 1}}} }

// IsConst reports whether the expression has no variables.
func (e LinExpr) IsConst() bool { return len(e.Terms) == 0 }

// Add returns e + o in canonical form.
func (e LinExpr) Add(o LinExpr) LinExpr {
	out := LinExpr{K: e.K + o.K}
	out.Terms = append(append([]Term(nil), e.Terms...), o.Terms...)
	return out.canon()
}

// Sub returns e - o in canonical form.
func (e LinExpr) Sub(o LinExpr) LinExpr { return e.Add(o.Scale(-1)) }

// Scale returns c*e.
func (e LinExpr) Scale(c int64) LinExpr {
	out := LinExpr{K: e.K * c, Terms: make([]Term, 0, len(e.Terms))}
	for _, t := range e.Terms {
		out.Terms = append(out.Terms, Term{Var: t.Var, Coef: t.Coef * c})
	}
	return out.canon()
}

func (e LinExpr) canon() LinExpr {
	sort.Slice(e.Terms, func(i, j int) bool { return e.Terms[i].Var.Less(e.Terms[j].Var) })
	out := e.Terms[:0]
	for _, t := range e.Terms {
		if n := len(out); n > 0 && out[n-1].Var == t.Var {
			out[n-1].Coef += t.Coef
		} else {
			out = append(out, t)
		}
	}
	final := out[:0]
	for _, t := range out {
		if t.Coef != 0 {
			final = append(final, t)
		}
	}
	e.Terms = final
	return e
}

// Eval evaluates the expression under an assignment (as signed arithmetic).
func (e LinExpr) Eval(asn map[Var]uint64) int64 {
	s := e.K
	for _, t := range e.Terms {
		s += t.Coef * int64(asn[t.Var])
	}
	return s
}

// Vars returns the variables mentioned by the expression.
func (e LinExpr) Vars() []Var {
	out := make([]Var, len(e.Terms))
	for i, t := range e.Terms {
		out[i] = t.Var
	}
	return out
}

func (e LinExpr) String() string {
	var b strings.Builder
	for i, t := range e.Terms {
		if i > 0 && t.Coef >= 0 {
			b.WriteString("+")
		}
		if t.Coef == 1 {
			b.WriteString(t.Var.String())
		} else if t.Coef == -1 {
			b.WriteString("-" + t.Var.String())
		} else {
			fmt.Fprintf(&b, "%d*%s", t.Coef, t.Var)
		}
	}
	if e.K != 0 || len(e.Terms) == 0 {
		if e.K >= 0 && len(e.Terms) > 0 {
			b.WriteString("+")
		}
		fmt.Fprintf(&b, "%d", e.K)
	}
	return b.String()
}

// Constraint asserts "E Op 0" (e.g. E == 0, E <= 0). All comparisons are
// over signed values of the linear expression; variables themselves are
// unsigned and bounded by their domains.
type Constraint struct {
	E  LinExpr
	Op ir.CmpOp
}

// NewCmp builds the constraint "a op b".
func NewCmp(op ir.CmpOp, a, b LinExpr) Constraint {
	return Constraint{E: a.Sub(b), Op: op}
}

// Holds evaluates the constraint under an assignment.
func (c Constraint) Holds(asn map[Var]uint64) bool {
	v := c.E.Eval(asn)
	switch c.Op {
	case ir.CmpEq:
		return v == 0
	case ir.CmpNe:
		return v != 0
	case ir.CmpLt:
		return v < 0
	case ir.CmpLe:
		return v <= 0
	case ir.CmpGt:
		return v > 0
	case ir.CmpGe:
		return v >= 0
	}
	return false
}

// Negate returns the negated constraint.
func (c Constraint) Negate() Constraint {
	return Constraint{E: c.E, Op: c.Op.Negate()}
}

func (c Constraint) String() string {
	return fmt.Sprintf("%s %s 0", c.E, c.Op)
}

// Space carries the variable domains of a constraint system: header field
// bit widths plus explicit per-variable overrides for havoc variables.
// Domain registration and lookup are safe for concurrent use: engine workers
// register havoc domains while sibling workers run feasibility checks, and
// model-counting workers read domains while resolving marginals. FieldBits
// is immutable after construction and read without locking.
type Space struct {
	FieldBits map[string]int

	mu        sync.RWMutex
	varDomain map[Var]Interval
}

// NewSpace builds a Space from header field declarations.
func NewSpace(fields []ir.Field) *Space {
	s := &Space{FieldBits: make(map[string]int, len(fields)), varDomain: map[Var]Interval{}}
	for _, f := range fields {
		s.FieldBits[f.Name] = f.Bits
	}
	return s
}

// SetDomain overrides the domain of one variable (used for havoc vars).
func (s *Space) SetDomain(v Var, iv Interval) {
	s.mu.Lock()
	s.varDomain[v] = iv
	s.mu.Unlock()
}

// Domain returns the domain interval of a variable.
func (s *Space) Domain(v Var) Interval {
	s.mu.RLock()
	iv, ok := s.varDomain[v]
	s.mu.RUnlock()
	if ok {
		return iv
	}
	if bits, ok := s.FieldBits[v.Field]; ok {
		return FullInterval(bits)
	}
	// Unknown variables get the widest sensible default.
	return FullInterval(32)
}

// Clone returns a deep copy of the Space.
func (s *Space) Clone() *Space {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := &Space{
		FieldBits: s.FieldBits, // immutable after construction
		varDomain: make(map[Var]Interval, len(s.varDomain)),
	}
	for k, v := range s.varDomain {
		c.varDomain[k] = v
	}
	return c
}
