package solver

import (
	"context"
	"testing"

	"repro/internal/ir"
)

// A canceled context must stop the search before it reports a witness,
// even for a trivially satisfiable system.
func TestSolveCanceledContext(t *testing.T) {
	sp := space16()
	cs := []Constraint{
		cmp(ir.CmpGe, VarExpr(v(0, "a")), ConstExpr(10)),
		cmp(ir.CmpLe, VarExpr(v(0, "a")), ConstExpr(20)),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := Solve(cs, sp, SolveOptions{Ctx: ctx}); ok {
		t.Fatal("canceled solve reported a witness")
	}
	// Sanity: the same system solves when the context is live.
	if _, ok := Solve(cs, sp, SolveOptions{Ctx: context.Background()}); !ok {
		t.Fatal("live-context solve failed on a satisfiable system")
	}
}

// A nil context means "no cancellation" and must behave like before the
// knob existed.
func TestSolveNilContext(t *testing.T) {
	sp := space16()
	cs := []Constraint{cmp(ir.CmpEq, VarExpr(v(0, "a")), ConstExpr(7))}
	asn, ok := Solve(cs, sp, SolveOptions{})
	if !ok || asn[v(0, "a")] != 7 {
		t.Fatalf("nil-ctx solve: ok=%v asn=%v", ok, asn)
	}
}
