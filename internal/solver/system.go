package solver

import (
	"sort"

	"repro/internal/ir"
)

// Member records that a variable equals its equivalence-class root plus a
// constant offset: val(Var) = val(root) + Off.
type Member struct {
	Var Var
	Off int64
}

// Diff is a difference constraint over class roots: val(A) - val(B) <= C.
type Diff struct {
	A, B Var
	C    int64
}

// Neq is a disequality over class roots: val(A) != val(B) + C.
type Neq struct {
	A, B Var
	C    int64
}

// System is the normal form of a conjunction of constraints: interval bounds
// per equality class, difference constraints, disequalities, punched holes
// (unary disequalities), and a residue of generic constraints that did not
// fit the structured fragment. It is consumed both by the concrete solver
// (Solve) and by the model counter.
type System struct {
	Space *Space

	// Roots lists equality-class roots in deterministic order.
	Roots []Var
	// RootIv is the propagated interval of each root.
	RootIv map[Var]Interval
	// Members maps each root to its class members (always including the
	// root itself with offset 0).
	Members map[Var][]Member

	Diffs   []Diff
	Neqs    []Neq
	Holes   map[Var][]uint64 // root -> excluded root-values
	Generic []Constraint

	// Feasible is false when propagation proved the system unsatisfiable.
	Feasible bool
}

type unionFind struct {
	parent map[Var]Var
	off    map[Var]int64 // val(v) = val(parent[v]) + off[v]
}

func newUnionFind() *unionFind {
	return &unionFind{parent: map[Var]Var{}, off: map[Var]int64{}}
}

// find returns the root of v and the offset such that val(v) = val(root)+off.
func (u *unionFind) find(v Var) (Var, int64) {
	p, ok := u.parent[v]
	if !ok {
		u.parent[v] = v
		u.off[v] = 0
		return v, 0
	}
	if p == v {
		return v, 0
	}
	root, poff := u.find(p)
	u.parent[v] = root
	u.off[v] += poff
	return root, u.off[v]
}

// union merges so that val(a) = val(b) + k. Returns false on contradiction.
func (u *unionFind) union(a, b Var, k int64) bool {
	ra, oa := u.find(a) // val(a) = val(ra) + oa
	rb, ob := u.find(b) // val(b) = val(rb) + ob
	if ra == rb {
		// val(ra)+oa = val(ra)+ob+k  =>  oa == ob+k
		return oa == ob+k
	}
	// Attach ra under rb: val(ra) = val(a) - oa = val(b)+k-oa = val(rb)+ob+k-oa.
	u.parent[ra] = rb
	u.off[ra] = ob + k - oa
	return true
}

// classify splits a linear expression into the structured fragments.
type kind int

const (
	kConst  kind = iota
	kUnary       // c*x + k  (|c| may be > 1)
	kBinary      // x - y + k (unit coefficients of opposite sign)
	kGeneric
)

func classify(e LinExpr) kind {
	switch len(e.Terms) {
	case 0:
		return kConst
	case 1:
		return kUnary
	case 2:
		a, b := e.Terms[0].Coef, e.Terms[1].Coef
		if (a == 1 && b == -1) || (a == -1 && b == 1) {
			return kBinary
		}
	}
	return kGeneric
}

// Build normalizes a conjunction of constraints over the given space.
// The returned system has Feasible == false when propagation found a
// contradiction; it is conservative in the other direction (Feasible true
// does not guarantee satisfiability when disequalities or generic residue
// are present — use Solve for a definitive witness).
func Build(cs []Constraint, space *Space) *System {
	metrics.builds.Add(1)
	sys := &System{
		Space:    space,
		RootIv:   map[Var]Interval{},
		Members:  map[Var][]Member{},
		Holes:    map[Var][]uint64{},
		Feasible: true,
	}
	uf := newUnionFind()
	vars := map[Var]bool{}
	for _, c := range cs {
		for _, v := range c.E.Vars() {
			vars[v] = true
			uf.find(v)
		}
	}

	// Pass 1: equalities between two unit-coefficient variables define the
	// classes.
	var rest []Constraint
	for _, c := range cs {
		if c.Op == ir.CmpEq && classify(c.E) == kBinary {
			// x - y + k == 0  =>  val(x) = val(y) - k.
			x, y, k := binaryParts(c.E)
			if !uf.union(x, y, -k) {
				sys.Feasible = false
			}
			continue
		}
		rest = append(rest, c)
	}

	// Initialize root intervals from member domains.
	var allVars []Var
	for v := range vars {
		allVars = append(allVars, v)
	}
	sort.Slice(allVars, func(i, j int) bool { return allVars[i].Less(allVars[j]) })
	for _, v := range allVars {
		r, off := uf.find(v)
		sys.Members[r] = append(sys.Members[r], Member{Var: v, Off: off})
		// val(v) = val(r) + off, and val(v) ∈ Domain(v)
		// => val(r) ∈ Domain(v) - off.
		dom := space.Domain(v).Shift(-off)
		if cur, ok := sys.RootIv[r]; ok {
			sys.RootIv[r] = cur.Intersect(dom)
		} else {
			sys.RootIv[r] = dom
		}
	}
	for r := range sys.Members {
		sys.Roots = append(sys.Roots, r)
	}
	sort.Slice(sys.Roots, func(i, j int) bool { return sys.Roots[i].Less(sys.Roots[j]) })

	// Pass 2: everything else, rewritten onto roots.
	for _, c := range rest {
		switch classify(c.E) {
		case kConst:
			if !c.Holds(nil) {
				sys.Feasible = false
			}
		case kUnary:
			sys.addUnary(uf, c)
		case kBinary:
			sys.addBinary(uf, c)
		default:
			sys.Generic = append(sys.Generic, rewriteOnRoots(uf, c))
		}
	}

	sys.propagate()
	return sys
}

func binaryParts(e LinExpr) (x, y Var, k int64) {
	a, b := e.Terms[0], e.Terms[1]
	if a.Coef == 1 {
		return a.Var, b.Var, e.K // x - y + k
	}
	return b.Var, a.Var, e.K // (b is +1)
}

// addUnary handles c*x + k op 0.
func (s *System) addUnary(uf *unionFind, con Constraint) {
	t := con.E.Terms[0]
	r, off := uf.find(t.Var)
	c, k := t.Coef, con.E.K
	// c*(val(r)+off) + k op 0  =>  c*val(r) op -(k + c*off)
	rhs := -(k + c*off)
	op := con.Op
	if c < 0 {
		c = -c
		rhs = -rhs
		op = flipIneq(op)
	}
	// Now: c*val(r) op rhs with c > 0.
	switch op {
	case ir.CmpEq:
		if rhs < 0 || rhs%c != 0 {
			s.Feasible = false
			return
		}
		v := uint64(rhs / c)
		s.RootIv[r] = s.RootIv[r].Intersect(Interval{v, v})
	case ir.CmpNe:
		if rhs >= 0 && rhs%c == 0 {
			s.addHole(r, uint64(rhs/c))
		}
	case ir.CmpLe, ir.CmpLt:
		// c*v <= rhs (or < rhs): v <= floor(rhs'/c)
		limit := rhs
		if op == ir.CmpLt {
			limit--
		}
		if limit < 0 {
			s.Feasible = false
			return
		}
		hi := uint64(limit / c) // floor for non-negative
		s.RootIv[r] = s.RootIv[r].Intersect(Interval{0, hi})
	case ir.CmpGe, ir.CmpGt:
		limit := rhs
		if op == ir.CmpGt {
			limit++
		}
		if limit <= 0 {
			return // always true for unsigned v
		}
		lo := uint64((limit + c - 1) / c) // ceil
		iv := s.RootIv[r]
		if lo > iv.Lo {
			iv.Lo = lo
		}
		s.RootIv[r] = iv
	}
}

func flipIneq(op ir.CmpOp) ir.CmpOp {
	switch op {
	case ir.CmpLt:
		return ir.CmpGt
	case ir.CmpLe:
		return ir.CmpGe
	case ir.CmpGt:
		return ir.CmpLt
	case ir.CmpGe:
		return ir.CmpLe
	}
	return op // Eq/Ne unchanged
}

// addBinary handles x - y + k op 0 for non-Eq operators.
func (s *System) addBinary(uf *unionFind, con Constraint) {
	x, y, k := binaryParts(con.E)
	rx, ox := uf.find(x)
	ry, oy := uf.find(y)
	// val(x)-val(y)+k = val(rx)+ox-val(ry)-oy+k op 0
	kk := ox - oy + k
	if rx == ry {
		// constant: kk op 0
		if !(Constraint{E: ConstExpr(kk), Op: con.Op}).Holds(nil) {
			s.Feasible = false
		}
		return
	}
	switch con.Op {
	case ir.CmpNe:
		// val(rx) != val(ry) - kk
		s.Neqs = append(s.Neqs, Neq{A: rx, B: ry, C: -kk})
	case ir.CmpLe:
		s.Diffs = append(s.Diffs, Diff{A: rx, B: ry, C: -kk})
	case ir.CmpLt:
		s.Diffs = append(s.Diffs, Diff{A: rx, B: ry, C: -kk - 1})
	case ir.CmpGe:
		s.Diffs = append(s.Diffs, Diff{A: ry, B: rx, C: kk})
	case ir.CmpGt:
		s.Diffs = append(s.Diffs, Diff{A: ry, B: rx, C: kk - 1})
	case ir.CmpEq:
		// Handled in pass 1; defensive fallback.
		if !uf.union(x, y, -k) {
			s.Feasible = false
		}
	}
}

func (s *System) addHole(r Var, v uint64) {
	for _, h := range s.Holes[r] {
		if h == v {
			return
		}
	}
	s.Holes[r] = append(s.Holes[r], v)
	sort.Slice(s.Holes[r], func(i, j int) bool { return s.Holes[r][i] < s.Holes[r][j] })
}

func rewriteOnRoots(uf *unionFind, con Constraint) Constraint {
	out := LinExpr{K: con.E.K}
	for _, t := range con.E.Terms {
		r, off := uf.find(t.Var)
		out.Terms = append(out.Terms, Term{Var: r, Coef: t.Coef})
		out.K += t.Coef * off
	}
	return Constraint{E: out.canon(), Op: con.Op}
}

// propagate tightens root intervals through the difference constraints until
// a fixpoint (bounded by the number of constraints to guarantee
// termination on negative cycles, which are reported as infeasible).
func (s *System) propagate() {
	if !s.Feasible {
		return
	}
	maxRounds := len(s.Diffs) + len(s.Roots) + 1
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, d := range s.Diffs {
			a := s.RootIv[d.A]
			b := s.RootIv[d.B]
			// val(a) <= val(b) + C  =>  hi(a) <= hi(b)+C, lo(b) >= lo(a)-C.
			hiB := int64(0)
			// Use signed arithmetic carefully; values fit in int64 for <=2^32 domains,
			// but 64-bit domains could overflow. Saturate.
			hiLimit := satAdd(int64(b.Hi), d.C)
			if hiLimit < 0 {
				s.Feasible = false
				return
			}
			if uint64(hiLimit) < a.Hi {
				a.Hi = uint64(hiLimit)
				changed = true
			}
			loLimit := satAdd(int64(a.Lo), -d.C)
			_ = hiB
			if loLimit > 0 && uint64(loLimit) > b.Lo {
				b.Lo = uint64(loLimit)
				changed = true
			}
			s.RootIv[d.A] = a
			s.RootIv[d.B] = b
			if a.Empty() || b.Empty() {
				s.Feasible = false
				return
			}
		}
		if !changed {
			break
		}
		if round == maxRounds-1 {
			// Still changing after |V|+|E| rounds: negative cycle.
			s.Feasible = false
			return
		}
	}
	for _, iv := range s.RootIv {
		if iv.Empty() {
			s.Feasible = false
			return
		}
	}
	// Disequalities on identical roots.
	for _, n := range s.Neqs {
		if n.A == n.B && n.C == 0 {
			s.Feasible = false
			return
		}
	}
	// Singleton intervals fully consumed by holes.
	for r, iv := range s.RootIv {
		holes := s.Holes[r]
		if len(holes) == 0 {
			continue
		}
		if iv.Size() <= float64(len(holes)) {
			free := iv.Size()
			for _, h := range holes {
				if iv.Contains(h) {
					free--
				}
			}
			if free <= 0 {
				s.Feasible = false
				return
			}
		}
	}
}

func satAdd(a, b int64) int64 {
	s := a + b
	if b > 0 && s < a {
		return int64(^uint64(0) >> 1)
	}
	if b < 0 && s > a {
		return -int64(^uint64(0)>>1) - 1
	}
	return s
}

// RootOf returns the class root and offset of a variable in the system
// (identity for variables the system never saw).
func (s *System) RootOf(v Var) (Var, int64) {
	for r, ms := range s.Members {
		for _, m := range ms {
			if m.Var == v {
				return r, m.Off
			}
		}
	}
	return v, 0
}
