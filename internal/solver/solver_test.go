package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func space16() *Space {
	return NewSpace([]ir.Field{{Name: "a", Bits: 16}, {Name: "b", Bits: 16}, {Name: "c", Bits: 16}})
}

func v(pkt int, f string) Var { return Var{Pkt: pkt, Field: f} }

func cmp(op ir.CmpOp, a LinExpr, b LinExpr) Constraint { return NewCmp(op, a, b) }

func TestIntervalBasics(t *testing.T) {
	iv := Interval{10, 20}
	if iv.Empty() || iv.Size() != 11 {
		t.Fatalf("interval size = %v", iv.Size())
	}
	if !iv.Contains(10) || !iv.Contains(20) || iv.Contains(21) || iv.Contains(9) {
		t.Fatal("contains wrong")
	}
	got := iv.Intersect(Interval{15, 30})
	if got != (Interval{15, 20}) {
		t.Fatalf("intersect = %+v", got)
	}
	if !(Interval{5, 3}).Empty() {
		t.Fatal("5..3 should be empty")
	}
}

func TestIntervalShift(t *testing.T) {
	iv := Interval{10, 20}
	if got := iv.Shift(5); got != (Interval{15, 25}) {
		t.Fatalf("shift +5 = %+v", got)
	}
	if got := iv.Shift(-5); got != (Interval{5, 15}) {
		t.Fatalf("shift -5 = %+v", got)
	}
	if got := iv.Shift(-15); got != (Interval{0, 5}) {
		t.Fatalf("shift -15 (clamped) = %+v", got)
	}
	if got := iv.Shift(-25); !got.Empty() {
		t.Fatalf("shift -25 should be empty, got %+v", got)
	}
}

func TestLinExprCanon(t *testing.T) {
	a := VarExpr(v(0, "a"))
	e := a.Add(a).Sub(a.Scale(2)) // 2a - 2a = 0
	if !e.IsConst() || e.K != 0 {
		t.Fatalf("canon failed: %v", e)
	}
	e2 := a.Add(ConstExpr(3)).Sub(VarExpr(v(0, "b")))
	if len(e2.Terms) != 2 || e2.K != 3 {
		t.Fatalf("e2 = %v", e2)
	}
}

func TestSolveSimpleBounds(t *testing.T) {
	sp := space16()
	cs := []Constraint{
		cmp(ir.CmpGe, VarExpr(v(0, "a")), ConstExpr(100)),
		cmp(ir.CmpLt, VarExpr(v(0, "a")), ConstExpr(200)),
	}
	asn, ok := Solve(cs, sp, SolveOptions{})
	if !ok {
		t.Fatal("expected SAT")
	}
	if got := asn[v(0, "a")]; got < 100 || got >= 200 {
		t.Fatalf("witness %d out of range", got)
	}
}

func TestSolveContradiction(t *testing.T) {
	sp := space16()
	cs := []Constraint{
		cmp(ir.CmpGt, VarExpr(v(0, "a")), ConstExpr(100)),
		cmp(ir.CmpLt, VarExpr(v(0, "a")), ConstExpr(50)),
	}
	if _, ok := Solve(cs, sp, SolveOptions{}); ok {
		t.Fatal("expected UNSAT")
	}
	if Feasible(cs, sp) {
		t.Fatal("Feasible should detect interval contradiction")
	}
}

func TestSolveEqualityChain(t *testing.T) {
	sp := space16()
	// a == b, b == c + 5, c == 7  =>  a = b = 12, c = 7.
	cs := []Constraint{
		cmp(ir.CmpEq, VarExpr(v(0, "a")), VarExpr(v(0, "b"))),
		cmp(ir.CmpEq, VarExpr(v(0, "b")), VarExpr(v(0, "c")).Add(ConstExpr(5))),
		cmp(ir.CmpEq, VarExpr(v(0, "c")), ConstExpr(7)),
	}
	asn, ok := Solve(cs, sp, SolveOptions{})
	if !ok {
		t.Fatal("expected SAT")
	}
	if asn[v(0, "a")] != 12 || asn[v(0, "b")] != 12 || asn[v(0, "c")] != 7 {
		t.Fatalf("bad witness: %v", asn)
	}
}

func TestSolveEqualityContradiction(t *testing.T) {
	sp := space16()
	cs := []Constraint{
		cmp(ir.CmpEq, VarExpr(v(0, "a")), VarExpr(v(0, "b"))),
		cmp(ir.CmpEq, VarExpr(v(0, "a")), ConstExpr(1)),
		cmp(ir.CmpEq, VarExpr(v(0, "b")), ConstExpr(2)),
	}
	if Feasible(cs, sp) {
		t.Fatal("expected propagation to find contradiction")
	}
}

func TestSolveCrossPacketEquality(t *testing.T) {
	sp := space16()
	// Retransmission-style: p0.a == p1.a, p0.a == 42.
	cs := []Constraint{
		cmp(ir.CmpEq, VarExpr(v(0, "a")), VarExpr(v(1, "a"))),
		cmp(ir.CmpEq, VarExpr(v(0, "a")), ConstExpr(42)),
	}
	asn, ok := Solve(cs, sp, SolveOptions{})
	if !ok {
		t.Fatal("expected SAT")
	}
	if asn[v(0, "a")] != 42 || asn[v(1, "a")] != 42 {
		t.Fatalf("bad witness: %v", asn)
	}
}

func TestSolveDisequality(t *testing.T) {
	sp := space16()
	// a == 5 and a != 5 is UNSAT.
	cs := []Constraint{
		cmp(ir.CmpEq, VarExpr(v(0, "a")), ConstExpr(5)),
		cmp(ir.CmpNe, VarExpr(v(0, "a")), ConstExpr(5)),
	}
	if _, ok := Solve(cs, sp, SolveOptions{}); ok {
		t.Fatal("expected UNSAT")
	}
	// a in [5,6], a != 5 forces 6.
	cs2 := []Constraint{
		cmp(ir.CmpGe, VarExpr(v(0, "a")), ConstExpr(5)),
		cmp(ir.CmpLe, VarExpr(v(0, "a")), ConstExpr(6)),
		cmp(ir.CmpNe, VarExpr(v(0, "a")), ConstExpr(5)),
	}
	asn, ok := Solve(cs2, sp, SolveOptions{})
	if !ok || asn[v(0, "a")] != 6 {
		t.Fatalf("expected a=6, got %v ok=%v", asn, ok)
	}
}

func TestSolveVarVarDisequality(t *testing.T) {
	sp := space16()
	cs := []Constraint{
		cmp(ir.CmpEq, VarExpr(v(0, "a")), ConstExpr(9)),
		cmp(ir.CmpEq, VarExpr(v(0, "b")), ConstExpr(9)),
		cmp(ir.CmpNe, VarExpr(v(0, "a")), VarExpr(v(0, "b"))),
	}
	if _, ok := Solve(cs, sp, SolveOptions{}); ok {
		t.Fatal("expected UNSAT: both pinned to 9 but must differ")
	}
	cs2 := []Constraint{
		cmp(ir.CmpNe, VarExpr(v(0, "a")), VarExpr(v(0, "b"))),
	}
	asn, ok := Solve(cs2, sp, SolveOptions{})
	if !ok || asn[v(0, "a")] == asn[v(0, "b")] {
		t.Fatalf("expected distinct witness, got %v", asn)
	}
}

func TestSolveDifferenceConstraints(t *testing.T) {
	sp := space16()
	// a < b, b < c, c <= 2  =>  a=0,b=1,c=2 forced.
	cs := []Constraint{
		cmp(ir.CmpLt, VarExpr(v(0, "a")), VarExpr(v(0, "b"))),
		cmp(ir.CmpLt, VarExpr(v(0, "b")), VarExpr(v(0, "c"))),
		cmp(ir.CmpLe, VarExpr(v(0, "c")), ConstExpr(2)),
	}
	asn, ok := Solve(cs, sp, SolveOptions{})
	if !ok {
		t.Fatal("expected SAT")
	}
	if asn[v(0, "a")] != 0 || asn[v(0, "b")] != 1 || asn[v(0, "c")] != 2 {
		t.Fatalf("forced chain wrong: %v", asn)
	}
}

func TestSolveNegativeCycle(t *testing.T) {
	sp := space16()
	// a < b and b < a is a negative cycle.
	cs := []Constraint{
		cmp(ir.CmpLt, VarExpr(v(0, "a")), VarExpr(v(0, "b"))),
		cmp(ir.CmpLt, VarExpr(v(0, "b")), VarExpr(v(0, "a"))),
	}
	if Feasible(cs, sp) {
		t.Fatal("expected negative cycle to be infeasible")
	}
}

func TestSolveGenericResidue(t *testing.T) {
	sp := space16()
	// a + b == 10 is generic (two positive coefficients).
	cs := []Constraint{
		NewCmp(ir.CmpEq, VarExpr(v(0, "a")).Add(VarExpr(v(0, "b"))), ConstExpr(10)),
	}
	asn, ok := Solve(cs, sp, SolveOptions{Seed: 1})
	if !ok {
		t.Fatal("expected SAT for a+b==10")
	}
	if asn[v(0, "a")]+asn[v(0, "b")] != 10 {
		t.Fatalf("generic witness wrong: %v", asn)
	}
}

func TestSolveCoefficientBounds(t *testing.T) {
	sp := space16()
	// 3a == 12 => a == 4; 3a == 13 => UNSAT.
	cs := []Constraint{NewCmp(ir.CmpEq, VarExpr(v(0, "a")).Scale(3), ConstExpr(12))}
	asn, ok := Solve(cs, sp, SolveOptions{})
	if !ok || asn[v(0, "a")] != 4 {
		t.Fatalf("3a==12: got %v ok=%v", asn, ok)
	}
	cs2 := []Constraint{NewCmp(ir.CmpEq, VarExpr(v(0, "a")).Scale(3), ConstExpr(13))}
	if Feasible(cs2, sp) {
		t.Fatal("3a==13 should be infeasible")
	}
}

func TestSolveHoleExhaustion(t *testing.T) {
	sp := space16()
	cs := []Constraint{
		cmp(ir.CmpGe, VarExpr(v(0, "a")), ConstExpr(3)),
		cmp(ir.CmpLe, VarExpr(v(0, "a")), ConstExpr(4)),
		cmp(ir.CmpNe, VarExpr(v(0, "a")), ConstExpr(3)),
		cmp(ir.CmpNe, VarExpr(v(0, "a")), ConstExpr(4)),
	}
	if Feasible(cs, sp) {
		t.Fatal("all values excluded: should be infeasible")
	}
}

func TestSystemRootOf(t *testing.T) {
	sp := space16()
	cs := []Constraint{
		cmp(ir.CmpEq, VarExpr(v(0, "a")), VarExpr(v(0, "b")).Add(ConstExpr(3))),
	}
	sys := Build(cs, sp)
	ra, oa := sys.RootOf(v(0, "a"))
	rb, ob := sys.RootOf(v(0, "b"))
	if ra != rb {
		t.Fatal("a and b should share a root")
	}
	// val(a) = root+oa, val(b) = root+ob, and a = b+3 => oa-ob == 3.
	if oa-ob != 3 {
		t.Fatalf("offset difference = %d, want 3", oa-ob)
	}
}

// Property: any witness Solve returns satisfies every input constraint.
func TestSolveWitnessAlwaysSatisfies(t *testing.T) {
	sp := space16()
	fields := []string{"a", "b", "c"}
	ops := []ir.CmpOp{ir.CmpEq, ir.CmpNe, ir.CmpLt, ir.CmpLe, ir.CmpGt, ir.CmpGe}

	gen := func(seed int64) []Constraint {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		cs := make([]Constraint, 0, n)
		for i := 0; i < n; i++ {
			a := VarExpr(v(rng.Intn(2), fields[rng.Intn(3)]))
			var b LinExpr
			if rng.Intn(2) == 0 {
				b = ConstExpr(int64(rng.Intn(1000)))
			} else {
				b = VarExpr(v(rng.Intn(2), fields[rng.Intn(3)])).Add(ConstExpr(int64(rng.Intn(10))))
			}
			cs = append(cs, NewCmp(ops[rng.Intn(len(ops))], a, b))
		}
		return cs
	}

	check := func(seed int64) bool {
		cs := gen(seed)
		asn, ok := Solve(cs, sp, SolveOptions{Seed: seed})
		if !ok {
			return true // UNSAT claims are exercised elsewhere
		}
		for _, c := range cs {
			if !c.Holds(asn) {
				t.Logf("seed %d: constraint %v violated by %v", seed, c, asn)
				return false
			}
		}
		// Domains respected.
		for vr, val := range asn {
			if !sp.Domain(vr).Contains(val) {
				t.Logf("seed %d: %v=%d out of domain", seed, vr, val)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Feasible never rejects a system that Solve can solve.
func TestFeasibleNeverRejectsSAT(t *testing.T) {
	sp := space16()
	check := func(lo, span uint16) bool {
		hi := uint32(lo) + uint32(span)%1000
		cs := []Constraint{
			cmp(ir.CmpGe, VarExpr(v(0, "a")), ConstExpr(int64(lo))),
			cmp(ir.CmpLe, VarExpr(v(0, "a")), ConstExpr(int64(hi))),
		}
		_, ok := Solve(cs, sp, SolveOptions{})
		feas := Feasible(cs, sp)
		if ok && !feas {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
