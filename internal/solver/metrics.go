package solver

import "sync/atomic"

// metrics are process-wide instrumentation counters for the solver. The
// solver's entry points are stateless package functions, so unlike the
// engine/counter stats there is no per-run object to hang counts off;
// atomic package counters keep the hot path allocation-free and the obs
// registry exposes them through MetricsView.
var metrics struct {
	builds     atomic.Int64 // constraint-system normalizations
	feasible   atomic.Int64 // propagation-only satisfiability checks
	solves     atomic.Int64 // witness searches
	solveSat   atomic.Int64 // searches that found a witness
	solveUnsat atomic.Int64 // searches that reported unsat
}

// MetricsView snapshots the solver counters for the obs registry
// (registered under the "solver" prefix). Counts are cumulative for the
// process, matching expvar semantics.
func MetricsView() map[string]float64 {
	return map[string]float64{
		"builds":      float64(metrics.builds.Load()),
		"feasible":    float64(metrics.feasible.Load()),
		"solves":      float64(metrics.solves.Load()),
		"solve_sat":   float64(metrics.solveSat.Load()),
		"solve_unsat": float64(metrics.solveUnsat.Load()),
	}
}
