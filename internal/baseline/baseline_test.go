package baseline

import (
	"math"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/programs"
)

func TestExhaustiveStatelessCompletes(t *testing.T) {
	prog := programs.CopyToCPU()
	res := Exhaustive(prog, 3, 5*time.Second, 1<<16)
	if res.TimedOut {
		t.Fatal("stateless program should not time out")
	}
	if res.Paths != 8 { // 2 branches per packet, 3 packets
		t.Fatalf("paths = %d, want 8", res.Paths)
	}
	if res.Coverage != 1 {
		t.Fatalf("coverage = %v", res.Coverage)
	}
}

func TestExhaustiveDeepStateTimesOut(t *testing.T) {
	prog := programs.Counter(64)
	res := Exhaustive(prog, 64, 300*time.Millisecond, 1<<12)
	if !res.TimedOut {
		t.Fatal("64-deep counter should exceed the quick budget")
	}
}

func TestExhaustiveLargeHashTableTimesOut(t *testing.T) {
	small := Exhaustive(programs.HTable(64, 8), 5, 2*time.Second, 1<<14)
	large := Exhaustive(programs.HTable(1<<14, 8), 5, 300*time.Millisecond, 1<<14)
	if small.TimedOut && !large.TimedOut {
		t.Fatal("cost should grow with table size")
	}
	if !large.TimedOut && large.Duration < small.Duration {
		t.Fatalf("large table (%v) finished faster than small (%v)", large.Duration, small.Duration)
	}
}

func TestExProfileMatchesClosedForm(t *testing.T) {
	prog := programs.Counter(2)
	truth, ok := ExProfile(prog, nil, 3, 10*time.Second)
	if !ok {
		t.Fatal("ex baseline timed out on a tiny program")
	}
	// tcp_sample at packet 3 requires >=2 TCP among... counter resets; per
	// packet-3 probability: P(cnt reaches 2 at pkt3). Just sanity-check
	// the entry node has probability 1 and tcp node 1/256.
	entry := prog.NodeByLabel("entry")
	if math.Abs(truth[entry.ID].Float()-1) > 1e-9 {
		t.Fatalf("entry prob = %v", truth[entry.ID].Float())
	}
	tcp := prog.NodeByLabel("tcp")
	if math.Abs(truth[tcp.ID].Float()-1.0/256) > 1e-9 {
		t.Fatalf("tcp prob = %v", truth[tcp.ID].Float())
	}
}

func TestExProfileTimesOutGracefully(t *testing.T) {
	prog := programs.Blink()
	if _, ok := ExProfile(prog, nil, 40, 200*time.Millisecond); ok {
		t.Fatal("full Blink should exceed a 200ms exhaustive budget")
	}
}

func TestPathSampleGranularity(t *testing.T) {
	prog := programs.Counter(4)
	points := PathSample(prog, &dist.UniformOracle{}, 1, 8000, 5*time.Second)
	if len(points) < 2 {
		t.Fatalf("want multiple measurement points, got %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Samples <= points[i-1].Samples {
			t.Fatal("sample counts should grow")
		}
		if points[i].Granularity >= points[i-1].Granularity {
			t.Fatal("granularity should get finer")
		}
	}
	last := points[len(points)-1]
	if last.Granularity != 1/float64(last.Samples) {
		t.Fatal("granularity must be 1/samples")
	}
	// The TCP branch (P = 1/256 uniform) should be estimated roughly.
	tcp := prog.NodeByLabel("tcp")
	est := last.Estimates[tcp.ID]
	if est <= 0 || est > 0.05 {
		t.Fatalf("P(tcp) sampled as %v", est)
	}
}

func TestPathSampleRespectsBudget(t *testing.T) {
	prog := programs.Counter(4)
	points := PathSample(prog, nil, 1, 1<<30, 100*time.Millisecond)
	if len(points) == 0 {
		t.Fatal("no points under time budget")
	}
}

func TestPathSampleDeterministic(t *testing.T) {
	prog := programs.BFilter(1024, 4)
	a := PathSample(prog, &dist.UniformOracle{}, 9, 2000, 5*time.Second)
	b := PathSample(prog, &dist.UniformOracle{}, 9, 2000, 5*time.Second)
	la, lb := a[len(a)-1], b[len(b)-1]
	if la.Samples != lb.Samples {
		t.Fatal("sample counts differ")
	}
	for id, v := range la.Estimates {
		if lb.Estimates[id] != v {
			t.Fatal("estimates differ across identical seeded runs")
		}
	}
}
