// Package baseline implements the three comparison systems of the paper's
// evaluation:
//
//   - Exhaustive ("KLEE"): general-purpose symbolic execution with no
//     greybox analysis, no state merging, and no telescoping. Approximate
//     data structures are materialized as symbolic arrays, so cost grows
//     with structure size and the search times out on deep or large state
//     (Figures 6a–6f).
//
//   - Ex: exhaustive search *with* greybox analysis — the accuracy ground
//     truth used in §5.2 (it still enumerates, so it only completes on
//     shrunk program versions).
//
//   - PS: path sampling with informed concrete packets — Figure 8's
//     sampling baseline, whose resolution is bounded by 1/samples.
package baseline

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dut"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/prob"
	"repro/internal/sym"

	"math/rand"
)

// Result summarizes a baseline run.
type Result struct {
	Paths    int
	TimedOut bool
	Duration time.Duration
	Coverage float64 // fraction of CFG nodes reached
	Stats    sym.Stats
}

// Exhaustive runs the KLEE-like baseline for `packets` symbolic packets
// under a wall-clock budget. It reports a timeout exactly as the paper
// reports KLEE timeouts.
func Exhaustive(prog *ir.Program, packets int, budget time.Duration, maxPaths int) Result {
	start := time.Now()
	e := sym.NewEngine(prog, sym.Options{
		Greybox:  false,
		Merge:    false,
		MaxPaths: maxPaths,
		Deadline: start.Add(budget),
	})
	paths := e.Initial()
	var err error
	reached := map[int]bool{}
	for i := 0; i < packets; i++ {
		paths, err = e.Step(paths, i)
		if err != nil {
			return Result{TimedOut: true, Duration: time.Since(start), Stats: e.Stats,
				Coverage: float64(len(reached)) / float64(max(1, len(prog.Nodes())))}
		}
		for _, p := range paths {
			for id := range p.Visits {
				reached[id] = true
			}
		}
	}
	return Result{
		Paths:    len(paths),
		Duration: time.Since(start),
		Coverage: float64(len(reached)) / float64(max(1, len(prog.Nodes()))),
		Stats:    e.Stats,
	}
}

// ExProfile is the `ex` baseline: exhaustive enumeration (no merging, no
// telescoping) with greybox stores, model-counting every final path. It is
// the accuracy ground truth for small/shrunk programs.
func ExProfile(prog *ir.Program, oracle dist.Oracle, packets int, budget time.Duration) (map[int]prob.P, bool) {
	start := time.Now()
	e := sym.NewEngine(prog, sym.Options{
		Greybox:  true,
		Merge:    false,
		MaxPaths: 1 << 22,
		Deadline: start.Add(budget),
	})
	counter := mc.NewCounter(e.Space, oracle)
	paths := e.Initial()
	var err error
	for i := 0; i < packets; i++ {
		paths, err = e.Step(paths, i)
		if err != nil {
			return nil, false
		}
	}
	// The final model-counting pass reuses the engine's worker pool, bounded
	// by the same wall-clock budget the exploration ran under (enumerated
	// path sets dwarf the frontier, so this is where ex actually times out).
	ctx, cancel := context.WithDeadline(context.Background(), start.Add(budget))
	defer cancel()
	probs, perr := sym.NodeProbsPool(ctx, paths, counter, len(prog.Nodes()), e.Pool())
	if perr != nil {
		return nil, false
	}
	out := make(map[int]prob.P, len(probs))
	for id, p := range probs {
		out[id] = p
	}
	return out, true
}

// SamplePoint is one measurement of the ps baseline: after Samples packets,
// the estimate for each node and the resolution floor 1/Samples.
type SamplePoint struct {
	Samples     int
	Elapsed     time.Duration
	Granularity float64
	Estimates   map[int]float64
}

// PathSample runs the ps baseline: concrete informed sampling with
// measurements at exponentially spaced sample counts, until the budget or
// maxSamples is exhausted. The confidence level is fixed at 99% as in the
// paper; the reported granularity is the finest probability the sample size
// can resolve.
func PathSample(prog *ir.Program, oracle dist.Oracle, seed int64, maxSamples int, budget time.Duration) []SamplePoint {
	if oracle == nil {
		oracle = &dist.UniformOracle{}
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	gen := core.NewPacketSampler(prog, oracle, rng)
	sw := dut.New(prog, dut.Config{})
	visit := map[int]bool{}
	sw.VisitHook = func(id int) { visit[id] = true }

	counts := map[int]int{}
	var points []SamplePoint
	next := 100
	n := 0
	for n < maxSamples && time.Since(start) < budget {
		pkt := gen.Next()
		for k := range visit {
			delete(visit, k)
		}
		sw.Process(&pkt)
		for id := range visit {
			counts[id]++
		}
		n++
		if n == next {
			points = append(points, snapshot(n, time.Since(start), counts))
			next *= 4
		}
	}
	if len(points) == 0 || points[len(points)-1].Samples != n {
		points = append(points, snapshot(n, time.Since(start), counts))
	}
	return points
}

func snapshot(n int, elapsed time.Duration, counts map[int]int) SamplePoint {
	est := make(map[int]float64, len(counts))
	for id, c := range counts {
		est[id] = float64(c) / float64(n)
	}
	return SamplePoint{
		Samples:     n,
		Elapsed:     elapsed,
		Granularity: 1 / float64(n),
		Estimates:   est,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
