package ir

import (
	"fmt"
	"strings"
)

// Information-flow policy metadata. A program may carry an optional
// SecPolicy naming its secret sources (header fields, registers, state
// structures, metadata) and its public sinks (observable actions and
// control-plane-readable structures). The policy is pure metadata: it does
// not affect execution, profiling, or model counting — only the
// information-flow lint pass in internal/analysis consumes it.

// Policy reference kinds. Secrets may use any kind except KindAction;
// sinks may use any kind except KindField and KindMeta.
const (
	KindField    = "field"    // packet header field
	KindRegister = "register" // scalar register
	KindArray    = "array"    // register array
	KindHash     = "hash"     // CRC hash table
	KindBloom    = "bloom"    // Bloom filter
	KindSketch   = "sketch"   // count-min sketch
	KindMeta     = "meta"     // per-packet metadata slot
	KindAction   = "action"   // terminal action (forward, digest, to_cpu, ...)
)

// SecRef names one policy object: a secret source or a public sink.
type SecRef struct {
	Kind string // one of the Kind* constants
	Name string // object name; for KindAction, an ActionKind string
}

func (r SecRef) String() string { return r.Kind + ":" + r.Name }

// SecPolicy is a program's information-flow policy: which objects hold
// secrets and which observation points are public. It is declared inline
// in the mini-language (`policy { secret field src_ip; sink action digest; }`),
// set directly on zoo builders, or loaded from a JSON file by the lint CLI.
type SecPolicy struct {
	Secrets []SecRef
	Sinks   []SecRef
}

// Empty reports whether the policy declares neither secrets nor sinks.
func (sp *SecPolicy) Empty() bool {
	return sp == nil || (len(sp.Secrets) == 0 && len(sp.Sinks) == 0)
}

// Merge appends the other policy's entries, dropping exact duplicates.
// Parsing multiple `policy` blocks folds them into one.
func (sp *SecPolicy) Merge(other *SecPolicy) {
	if other == nil {
		return
	}
	sp.Secrets = mergeRefs(sp.Secrets, other.Secrets)
	sp.Sinks = mergeRefs(sp.Sinks, other.Sinks)
}

func mergeRefs(dst, add []SecRef) []SecRef {
	for _, r := range add {
		dup := false
		for _, d := range dst {
			if d == r {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, r)
		}
	}
	return dst
}

// Format renders the policy as a mini-language block (two-space indented),
// the inverse of the p4c front end's `policy { ... }` parser.
func (sp *SecPolicy) Format() string {
	if sp.Empty() {
		return ""
	}
	var b strings.Builder
	b.WriteString("  policy {\n")
	for _, r := range sp.Secrets {
		fmt.Fprintf(&b, "    secret %s %s;\n", r.Kind, r.Name)
	}
	for _, r := range sp.Sinks {
		fmt.Fprintf(&b, "    sink %s %s;\n", r.Kind, r.Name)
	}
	b.WriteString("  }\n")
	return b.String()
}

// ActionKindByName maps an action's String() form back to its kind, for
// policy references like `sink action digest`.
func ActionKindByName(name string) (ActionKind, bool) {
	for k := ActNoOp; k <= ActToBackend; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// ValidSecretKind reports whether kind may appear in a `secret` reference.
func ValidSecretKind(kind string) bool {
	switch kind {
	case KindField, KindRegister, KindArray, KindHash, KindBloom, KindSketch, KindMeta:
		return true
	}
	return false
}

// ValidSinkKind reports whether kind may appear in a `sink` reference.
// Header fields and metadata are inputs, not observation points; the
// observable surface is the action vocabulary plus control-plane-readable
// state structures.
func ValidSinkKind(kind string) bool {
	switch kind {
	case KindAction, KindRegister, KindArray, KindHash, KindBloom, KindSketch:
		return true
	}
	return false
}
