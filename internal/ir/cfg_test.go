package ir

import "testing"

func hasEdge(g *CFG, from, to int) bool {
	for _, s := range g.Succ(from) {
		if s == to {
			return true
		}
	}
	return false
}

// BuildCFG must wire every extern arm — hash empty/hit/collide, bloom
// hit/miss, sketch true/false — as a successor of its owning block, and give
// every terminal block the per-packet back-edge to the entry.
func TestBuildCFGExternArms(t *testing.T) {
	p, err := (&Program{
		Name:       "externs",
		HashTables: []HashTableDecl{{Name: "flows", Size: 64}},
		Blooms:     []BloomDecl{{Name: "seen", Bits: 512, Hashes: 3}},
		Sketches:   []SketchDecl{{Name: "freq", Rows: 2, Cols: 64}},
		Root: Body(
			&HashAccess{
				Store: "flows", Key: FlowKey(), Write: true,
				OnEmpty:   Blk("h.empty", Fwd(1)),
				OnHit:     Blk("h.hit", Fwd(2)),
				OnCollide: Blk("h.collide", Drop()),
			},
			&BloomOp{
				Filter: "seen", Key: FlowKey(), Insert: true,
				OnHit:  Blk("b.hit", Fwd(3)),
				OnMiss: Blk("b.miss", Fwd(4)),
			},
			&SketchBranch{
				Sketch: "freq", Key: FlowKey(), Op: CmpGt, Threshold: 100,
				OnTrue:  Blk("s.heavy", ToCPU()),
				OnFalse: Blk("s.light", Fwd(5)),
			},
		),
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCFG(p)
	entry := p.Root.(*Block).ID

	arms := []string{"h.empty", "h.hit", "h.collide", "b.hit", "b.miss", "s.heavy", "s.light"}
	for _, label := range arms {
		b := p.NodeByLabel(label)
		if b == nil {
			t.Fatalf("block %q missing", label)
		}
		if !hasEdge(g, entry, b.ID) {
			t.Errorf("no edge entry -> %q", label)
		}
		// Every arm here is terminal: it must loop back to the entry for
		// the next packet.
		if !hasEdge(g, b.ID, entry) {
			t.Errorf("no back-edge %q -> entry", label)
		}
	}
	if hasEdge(g, entry, entry) {
		t.Error("entry must not be its own successor")
	}
	if got := g.NumNodes(); got != len(arms)+1 {
		t.Errorf("NumNodes() = %d, want %d", got, len(arms)+1)
	}
}

// Table actions (including the symbolic arm) hang off the applying block.
func TestBuildCFGTableEdges(t *testing.T) {
	p, err := (&Program{
		Name: "tbl",
		Tables: []TableDecl{{
			Name: "acl",
			Keys: []Expr{F("dst_port")},
			Entries: []Entry{
				{Match: []MatchSpec{Exact(80)}, Action: Blk("acl.web", Fwd(2))},
			},
			Default:         Blk("acl.def", Fwd(1)),
			SymbolicEntries: 2,
			SymbolicAction:  Blk("acl.sym", Drop()),
		}},
		Root: Body(&TableApply{Table: "acl"}),
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCFG(p)
	entry := p.Root.(*Block).ID
	for _, label := range []string{"acl.web", "acl.def", "acl.sym"} {
		b := p.NodeByLabel(label)
		if b == nil {
			t.Fatalf("block %q missing", label)
		}
		if !hasEdge(g, entry, b.ID) {
			t.Errorf("no edge entry -> %q", label)
		}
		if !hasEdge(g, b.ID, entry) {
			t.Errorf("no back-edge %q -> entry", label)
		}
	}
}

// A table whose action re-applies itself must not hang CFG construction
// (the analysis verifier reports it; BuildCFG just has to terminate).
func TestBuildCFGRecursiveApplyTerminates(t *testing.T) {
	p, err := (&Program{
		Name: "recur",
		Tables: []TableDecl{{
			Name:    "loop",
			Keys:    []Expr{F("proto")},
			Default: Blk("loop.def", &TableApply{Table: "loop"}, Fwd(1)),
		}},
		Root: Body(&TableApply{Table: "loop"}),
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCFG(p) // must return, not recurse forever
	if g.NumNodes() != 2 {
		t.Errorf("NumNodes() = %d, want 2", g.NumNodes())
	}
	def := p.NodeByLabel("loop.def")
	if !hasEdge(g, p.Root.(*Block).ID, def.ID) {
		t.Error("no edge entry -> loop.def")
	}
}

// Nested arms chain: a branch inside a hash arm is a successor of the arm,
// not of the entry.
func TestBuildCFGNestedArms(t *testing.T) {
	p, err := (&Program{
		Name:       "nested",
		HashTables: []HashTableDecl{{Name: "h", Size: 16}},
		Root: Body(
			&HashAccess{
				Store: "h", Key: FlowKey(), Write: true,
				OnHit: Blk("hit",
					If2(Eq(F("proto"), C(ProtoTCP)),
						Blk("hit.tcp", Fwd(1)),
						Blk("hit.other", Drop()))),
			},
			Fwd(9),
		),
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCFG(p)
	entry := p.Root.(*Block).ID
	hit := p.NodeByLabel("hit").ID
	tcp := p.NodeByLabel("hit.tcp").ID
	other := p.NodeByLabel("hit.other").ID
	if !hasEdge(g, entry, hit) || !hasEdge(g, hit, tcp) || !hasEdge(g, hit, other) {
		t.Errorf("nested arm edges wrong: succ(entry)=%v succ(hit)=%v",
			g.Succ(entry), g.Succ(hit))
	}
	if hasEdge(g, entry, tcp) || hasEdge(g, entry, other) {
		t.Error("inner arms must not be direct successors of the entry")
	}
}
