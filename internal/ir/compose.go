package ir

import "fmt"

// ComposePipeline glues two data-plane programs into one monolithic program
// for joint analysis — the multi-device direction the paper's §6 sketches
// ("composing multiple switch programs as one monolithic system").
//
// The upstream program runs first; when it forwards a packet to linkPort,
// the packet continues into the downstream program. Drops and punts in the
// upstream stage terminate processing as they would on a real wire. All
// state and table names are prefixed (up_/dn_) so the stages remain
// independent; block labels are prefixed likewise.
//
// Upstream forwarding decisions are captured in metadata rather than
// emitted as terminal actions: a Forward(p) in the upstream stage becomes
// "meta.__link = p+1" plus, when p != linkPort, a real Forward (the packet
// leaves the pipeline at the upstream switch).
func ComposePipeline(name string, up, dn *Program, linkPort uint64) (*Program, error) {
	if up.Root == nil || dn.Root == nil {
		return nil, fmt.Errorf("ir: compose: both programs must have bodies")
	}
	out := &Program{Name: name}

	// Merge header vocabularies (union by name; widths must agree).
	seen := map[string]int{}
	for _, f := range append(append([]Field{}, up.Fields...), dn.Fields...) {
		if w, dup := seen[f.Name]; dup {
			if w != f.Bits {
				return nil, fmt.Errorf("ir: compose: field %q has conflicting widths %d/%d", f.Name, w, f.Bits)
			}
			continue
		}
		seen[f.Name] = f.Bits
		out.Fields = append(out.Fields, f)
	}
	if len(out.Fields) == 0 {
		out.Fields = append([]Field(nil), StdFields...)
	}

	upRW := &Rewriter{
		Label: func(l string) string { return "up." + l },
		State: func(s string) string { return "up_" + s },
		Action: func(a *Action) Stmt {
			if a.Kind != ActForward {
				return a
			}
			// Capture the forwarding decision; the inter-switch link is
			// resolved after the upstream stage.
			port := a.Arg
			if port == nil {
				port = Const{V: 0}
			}
			return &Assign{Target: MetaLV{Name: "__link"}, Expr: Bin{Op: OpAdd, A: port, B: Const{V: 1}}}
		},
	}
	dnRW := &Rewriter{
		Label: func(l string) string { return "dn." + l },
		State: func(s string) string { return "dn_" + s },
	}

	prefixDecls(out, up, "up_", upRW)
	prefixDecls(out, dn, "dn_", dnRW)

	upBody := CloneStmt(up.Root, upRW)
	dnBody := CloneStmt(dn.Root, dnRW)

	out.Root = Body(
		upBody,
		&If{
			Cond: Cmp{Op: CmpEq, A: MetaRef{Name: "__link"}, B: Const{V: linkPort + 1}},
			Then: Blk("wire", dnBody),
			// Anything forwarded elsewhere leaves at the upstream switch;
			// packets that never forwarded (punt-only paths) terminate.
			Else: &If{
				Cond: Cmp{Op: CmpNe, A: MetaRef{Name: "__link"}, B: Const{V: 0}},
				Then: Blk("egress_upstream", &Action{Kind: ActForward, Arg: Bin{Op: OpSub, A: MetaRef{Name: "__link"}, B: Const{V: 1}}}),
				Else: Blk("upstream_terminal", &Action{Kind: ActNoOp}),
			},
		},
	)
	// Rewrite table entry actions too (they live outside Root).
	return out.Build()
}

// prefixDecls copies a program's state declarations into out with a prefix,
// rewriting the statement trees referenced by its tables with the stage's
// rewriter (so upstream table actions get their forwards captured too).
func prefixDecls(out, src *Program, prefix string, rw *Rewriter) {
	for _, r := range src.Regs {
		out.Regs = append(out.Regs, RegDecl{Name: prefix + r.Name, Bits: r.Bits, Init: r.Init})
	}
	for _, a := range src.RegArrays {
		out.RegArrays = append(out.RegArrays, RegArrayDecl{Name: prefix + a.Name, Size: a.Size, Bits: a.Bits})
	}
	for _, h := range src.HashTables {
		out.HashTables = append(out.HashTables, HashTableDecl{Name: prefix + h.Name, Size: h.Size, Seed: h.Seed})
	}
	for _, b := range src.Blooms {
		out.Blooms = append(out.Blooms, BloomDecl{Name: prefix + b.Name, Bits: b.Bits, Hashes: b.Hashes})
	}
	for _, s := range src.Sketches {
		out.Sketches = append(out.Sketches, SketchDecl{Name: prefix + s.Name, Rows: s.Rows, Cols: s.Cols})
	}
	for _, t := range src.Tables {
		nt := TableDecl{
			Name:     prefix + t.Name,
			Keys:     cloneExprs(t.Keys, rw),
			Default:  CloneStmt(t.Default, rw),
			Disjoint: t.Disjoint,
		}
		for _, e := range t.Entries {
			nt.Entries = append(nt.Entries, Entry{
				Match:  append([]MatchSpec(nil), e.Match...),
				Action: CloneStmt(e.Action, rw),
			})
		}
		out.Tables = append(out.Tables, nt)
	}
}
