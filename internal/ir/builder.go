package ir

// Builder helpers. These keep program-zoo definitions terse and readable:
//
//	ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoTCP)),
//	    ir.Blk("tcp", ir.Add1("tcp_cnt"), ir.Fwd(1)),
//	    ir.Blk("udp", ir.Fwd(2)))

// C makes a constant expression.
func C(v uint64) Const { return Const{V: v} }

// F reads a header field of the current packet.
func F(name string) FieldRef { return FieldRef{Name: name} }

// R reads a scalar register.
func R(name string) RegRef { return RegRef{Reg: name} }

// M reads per-packet metadata.
func M(name string) MetaRef { return MetaRef{Name: name} }

// Add, Sub, Mul, BitAnd, BitOr, Xor, Mod build binary expressions.
func Add(a, b Expr) Bin    { return Bin{Op: OpAdd, A: a, B: b} }
func Sub(a, b Expr) Bin    { return Bin{Op: OpSub, A: a, B: b} }
func Mul(a, b Expr) Bin    { return Bin{Op: OpMul, A: a, B: b} }
func BitAnd(a, b Expr) Bin { return Bin{Op: OpAnd, A: a, B: b} }
func BitOr(a, b Expr) Bin  { return Bin{Op: OpOr, A: a, B: b} }
func Xor(a, b Expr) Bin    { return Bin{Op: OpXor, A: a, B: b} }
func Mod(a, b Expr) Bin    { return Bin{Op: OpMod, A: a, B: b} }

// Hash builds a CRC hash expression over args reduced modulo mod.
func Hash(seed uint32, mod uint64, args ...Expr) HashExpr {
	return HashExpr{Seed: seed, Args: args, Mod: mod}
}

// Comparison conditions.
func Eq(a, b Expr) Cmp { return Cmp{Op: CmpEq, A: a, B: b} }
func Ne(a, b Expr) Cmp { return Cmp{Op: CmpNe, A: a, B: b} }
func Lt(a, b Expr) Cmp { return Cmp{Op: CmpLt, A: a, B: b} }
func Le(a, b Expr) Cmp { return Cmp{Op: CmpLe, A: a, B: b} }
func Gt(a, b Expr) Cmp { return Cmp{Op: CmpGt, A: a, B: b} }
func Ge(a, b Expr) Cmp { return Cmp{Op: CmpGe, A: a, B: b} }

// And and Or combine conditions; Neg negates one.
func And(a, b Cond) AndC { return AndC{A: a, B: b} }
func Or(a, b Cond) OrC   { return OrC{A: a, B: b} }
func Neg(c Cond) Not     { return Not{C: c} }

// FlagSet tests whether the given TCP flag bits are all set.
func FlagSet(bits uint64) Cond {
	return Cmp{Op: CmpEq, A: Bin{Op: OpAnd, A: F("tcp_flags"), B: C(bits)}, B: C(bits)}
}

// Blk makes a labeled basic block.
func Blk(label string, stmts ...Stmt) *Block {
	return &Block{Label: label, Stmts: stmts}
}

// Body makes the unlabeled root block of a program.
func Body(stmts ...Stmt) *Block {
	return &Block{Label: "entry", Stmts: stmts}
}

// If2 makes a two-armed branch; If1 a one-armed branch.
func If2(c Cond, then, els Stmt) *If { return &If{Cond: c, Then: then, Else: els} }
func If1(c Cond, then Stmt) *If      { return &If{Cond: c, Then: then} }

// Set assigns an expression to a scalar register.
func Set(reg string, e Expr) *Assign { return &Assign{Target: RegLV{Reg: reg}, Expr: e} }

// SetM assigns an expression to a metadata slot.
func SetM(name string, e Expr) *Assign { return &Assign{Target: MetaLV{Name: name}, Expr: e} }

// Add1 increments a scalar register by one.
func Add1(reg string) *Assign {
	return &Assign{Target: RegLV{Reg: reg}, Expr: Bin{Op: OpAdd, A: RegRef{Reg: reg}, B: Const{V: 1}}}
}

// AddN adds a constant to a scalar register.
func AddN(reg string, n uint64) *Assign {
	return &Assign{Target: RegLV{Reg: reg}, Expr: Bin{Op: OpAdd, A: RegRef{Reg: reg}, B: Const{V: n}}}
}

// Actions.
func Fwd(port uint64) *Action    { return &Action{Kind: ActForward, Arg: Const{V: port}} }
func FwdE(port Expr) *Action     { return &Action{Kind: ActForward, Arg: port} }
func Drop() *Action              { return &Action{Kind: ActDrop} }
func ToCPU() *Action             { return &Action{Kind: ActToCPU} }
func Digest() *Action            { return &Action{Kind: ActDigest} }
func Recirc() *Action            { return &Action{Kind: ActRecirculate} }
func Mirror(port uint64) *Action { return &Action{Kind: ActMirror, Arg: Const{V: port}} }
func ToBackend(port uint64) *Action {
	return &Action{Kind: ActToBackend, Arg: Const{V: port}}
}

// FlowKey is the conventional 5-tuple key expression list.
func FlowKey() []Expr {
	return []Expr{F("src_ip"), F("dst_ip"), F("src_port"), F("dst_port"), F("proto")}
}

// Exact builds an exact MatchSpec; Range a range; Wild a wildcard.
func Exact(v uint64) MatchSpec      { return MatchSpec{Kind: MatchExact, Lo: v} }
func Range(lo, hi uint64) MatchSpec { return MatchSpec{Kind: MatchRange, Lo: lo, Hi: hi} }
func Wild() MatchSpec               { return MatchSpec{Kind: MatchWildcard} }
