package ir

import "testing"

func sample() *Program {
	return &Program{
		Name: "sample",
		Regs: []RegDecl{{Name: "cnt", Bits: 32}},
		Root: Body(
			If2(Eq(F("proto"), C(ProtoTCP)),
				Blk("tcp", Add1("cnt"), Fwd(1)),
				Blk("udp", Fwd(2))),
			If1(Ge(R("cnt"), C(100)), Blk("hot", ToCPU())),
		),
	}
}

func TestBuildAssignsNodeIDs(t *testing.T) {
	p, err := sample().Build()
	if err != nil {
		t.Fatal(err)
	}
	nodes := p.Nodes()
	if len(nodes) != 4 { // entry, tcp, udp, hot
		t.Fatalf("want 4 nodes, got %d", len(nodes))
	}
	for i, n := range nodes {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
	}
	if p.NodeByLabel("tcp") == nil || p.NodeByLabel("hot") == nil {
		t.Fatal("labels not found")
	}
	if p.NodeByLabel("nope") != nil {
		t.Fatal("unknown label should be nil")
	}
}

func TestBuildTwiceFails(t *testing.T) {
	p := sample().MustBuild()
	if _, err := p.Build(); err == nil {
		t.Fatal("second Build should error")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []*Program{
		{Name: "no-root"},
		{Name: "bad-field", Root: Body(If1(Eq(F("nonexistent"), C(1)), Blk("x", Drop())))},
		{Name: "bad-reg", Root: Body(Add1("missing"))},
		{Name: "bad-ht", Root: Body(&HashAccess{Store: "missing", Key: FlowKey()})},
		{Name: "bad-bloom", Root: Body(&BloomOp{Filter: "missing", Key: FlowKey()})},
		{Name: "bad-sketch", Root: Body(&SketchUpdate{Sketch: "missing", Key: FlowKey()})},
		{Name: "bad-array", Root: Body(&ArrayRead{Array: "missing", Index: C(0), Dest: "v"})},
		{Name: "bad-table", Root: Body(&TableApply{Table: "missing"})},
		{Name: "dup-field", Fields: []Field{{"a", 8}, {"a", 8}}, Root: Body(Drop())},
		{Name: "bad-width", Fields: []Field{{"a", 99}}, Root: Body(Drop())},
	}
	for _, p := range cases {
		if _, err := p.Build(); err == nil {
			t.Errorf("program %q should fail validation", p.Name)
		}
	}
}

func TestTableEntryArityCheck(t *testing.T) {
	p := &Program{
		Name: "t",
		Tables: []TableDecl{{
			Name:    "tbl",
			Keys:    []Expr{F("dst_port"), F("proto")},
			Entries: []Entry{{Match: []MatchSpec{Exact(80)}, Action: Fwd(1)}},
		}},
		Root: Body(&TableApply{Table: "tbl"}),
	}
	if _, err := p.Build(); err == nil {
		t.Fatal("entry arity mismatch should fail")
	}
}

func TestBranchesScan(t *testing.T) {
	p := sample().MustBuild()
	brs := p.Branches()
	if len(brs) != 2 {
		t.Fatalf("want 2 branches, got %d", len(brs))
	}
	// Second branch is the register guard.
	if brs[1].Then.Label != "hot" {
		t.Fatalf("guard branch arm = %q", brs[1].Then.Label)
	}
}

func TestExpensiveNodes(t *testing.T) {
	p := sample().MustBuild()
	exp := p.ExpensiveNodes()
	hot := p.NodeByLabel("hot")
	if !exp[hot.ID] {
		t.Fatal("ToCPU block should be expensive")
	}
	tcp := p.NodeByLabel("tcp")
	if exp[tcp.ID] {
		t.Fatal("forward block should not be expensive")
	}
}

func TestStatefulDetection(t *testing.T) {
	if !sample().MustBuild().Stateful() {
		t.Fatal("register program should be stateful")
	}
	stateless := (&Program{Name: "s", Root: Body(Fwd(1))}).MustBuild()
	if stateless.Stateful() {
		t.Fatal("no-state program misdetected")
	}
	approx := (&Program{
		Name:   "a",
		Blooms: []BloomDecl{{Name: "b", Bits: 64, Hashes: 2}},
		Root:   Body(&BloomOp{Filter: "b", Key: FlowKey(), OnHit: Fwd(1), OnMiss: Drop()}),
	}).MustBuild()
	if !approx.HasApprox() {
		t.Fatal("bloom program should have approx structures")
	}
}

func TestCFGDistances(t *testing.T) {
	p := sample().MustBuild()
	g := BuildCFG(p)
	if g.NumNodes() != 4 {
		t.Fatalf("cfg nodes = %d", g.NumNodes())
	}
	hot := p.NodeByLabel("hot")
	d := g.DistanceTo(hot.ID)
	if d[hot.ID] != 0 {
		t.Fatal("self distance nonzero")
	}
	entry := p.NodeByLabel("entry")
	if d[entry.ID] <= 0 || d[entry.ID] > 4 {
		t.Fatalf("entry->hot distance = %d", d[entry.ID])
	}
	// tcp reaches hot within the same packet or via the loop edge.
	tcp := p.NodeByLabel("tcp")
	if d[tcp.ID] >= 1<<29 {
		t.Fatal("tcp should reach hot")
	}
}

func TestCmpNegate(t *testing.T) {
	pairs := map[CmpOp]CmpOp{
		CmpEq: CmpNe, CmpNe: CmpEq, CmpLt: CmpGe, CmpLe: CmpGt, CmpGt: CmpLe, CmpGe: CmpLt,
	}
	for op, want := range pairs {
		if op.Negate() != want {
			t.Errorf("%v.Negate() = %v, want %v", op, op.Negate(), want)
		}
		if op.Negate().Negate() != op {
			t.Errorf("double negation of %v broken", op)
		}
	}
}

func TestFieldMax(t *testing.T) {
	if (Field{"x", 8}).Max() != 255 {
		t.Fatal("8-bit max wrong")
	}
	if (Field{"x", 64}).Max() != ^uint64(0) {
		t.Fatal("64-bit max wrong")
	}
	if (Field{"x", 16}).Size() != 65536 {
		t.Fatal("16-bit size wrong")
	}
}

func TestExprStrings(t *testing.T) {
	e := Add(F("seq"), C(5))
	if e.String() != "(pkt.seq + 5)" {
		t.Fatalf("expr string = %q", e.String())
	}
	c := And(Eq(F("proto"), C(6)), Neg(Lt(F("ttl"), C(2))))
	if c.String() == "" {
		t.Fatal("cond string empty")
	}
	h := Hash(7, 1024, F("src_ip"))
	if h.String() != "hash7(pkt.src_ip)%1024" {
		t.Fatalf("hash string = %q", h.String())
	}
}

func TestStmtCountAndWalk(t *testing.T) {
	p := sample().MustBuild()
	if p.StmtCount() < 8 {
		t.Fatalf("stmt count = %d", p.StmtCount())
	}
	blocks := 0
	p.Walk(func(s Stmt) {
		if _, ok := s.(*Block); ok {
			blocks++
		}
	})
	if blocks != 4 {
		t.Fatalf("walk found %d blocks", blocks)
	}
}
