// Package ir defines the intermediate representation for P4-like data-plane
// programs. It mirrors the representation P4wn analyzes: a packet-processing
// body (executed once per packet) over header fields, scalar registers,
// register arrays, match/action tables, and approximate data structures
// (CRC hash tables, Bloom filters, count-min sketches).
//
// Programs are built with the builder helpers in builder.go, then finalized
// with Build, which assigns CFG node IDs to every basic block and validates
// all references.
package ir

import "fmt"

// Field describes one packet header field with its bit width.
type Field struct {
	Name string
	Bits int
}

// Max returns the largest value representable in the field.
func (f Field) Max() uint64 {
	if f.Bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(f.Bits)) - 1
}

// Size returns the number of distinct values of the field.
func (f Field) Size() float64 {
	return float64(f.Max()) + 1
}

// StdFields is the default header vocabulary shared by the program zoo.
// Programs may declare additional fields.
var StdFields = []Field{
	{"proto", 8},
	{"src_ip", 32},
	{"dst_ip", 32},
	{"src_port", 16},
	{"dst_port", 16},
	{"tcp_flags", 8},
	{"seq", 32},
	{"ack", 32},
	{"ttl", 8},
	{"pkt_len", 16},
	{"ipd", 16},
}

// Well-known protocol numbers and TCP flag bits used across the program zoo.
const (
	ProtoTCP = 6
	ProtoUDP = 17

	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// BinOp enumerates binary arithmetic/bitwise operators.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpMod
	OpShl
	OpShr
)

func (o BinOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpAnd:
		return "&"
	case OpOr:
		return "|"
	case OpXor:
		return "^"
	case OpMod:
		return "%"
	case OpShl:
		return "<<"
	case OpShr:
		return ">>"
	}
	return "?"
}

// CmpOp enumerates comparison operators.
type CmpOp int

const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (o CmpOp) String() string {
	switch o {
	case CmpEq:
		return "=="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "?"
}

// Negate returns the comparison operator for the negated comparison.
func (o CmpOp) Negate() CmpOp {
	switch o {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpLe:
		return CmpGt
	case CmpGt:
		return CmpLe
	case CmpGe:
		return CmpLt
	}
	// Out-of-range operators (from hand-built or fuzzed IR) negate to
	// themselves; the analysis verifier reports them as malformed rather
	// than crashing the profiler mid-run.
	return o
}

// Valid reports whether the operator is one of the defined comparisons.
func (o CmpOp) Valid() bool { return o >= CmpEq && o <= CmpGe }

// Expr is a packet-processing expression. Expressions reference the current
// packet's header fields, scalar registers, and per-packet metadata.
type Expr interface {
	exprNode()
	String() string
}

// Const is an unsigned integer literal.
type Const struct{ V uint64 }

// FieldRef reads a header field of the packet being processed.
type FieldRef struct{ Name string }

// RegRef reads a scalar register.
type RegRef struct{ Reg string }

// MetaRef reads per-packet metadata previously written by Assign.
type MetaRef struct{ Name string }

// Bin applies a binary operator to two sub-expressions.
type Bin struct {
	Op   BinOp
	A, B Expr
}

// HashExpr computes a CRC-style hash of the argument expressions, reduced
// modulo Mod (Mod == 0 means no reduction). Symbolic engines havoc it;
// concrete interpreters evaluate crc32 over the argument values.
type HashExpr struct {
	Seed uint32
	Args []Expr
	Mod  uint64
}

func (Const) exprNode()    {}
func (FieldRef) exprNode() {}
func (RegRef) exprNode()   {}
func (MetaRef) exprNode()  {}
func (Bin) exprNode()      {}
func (HashExpr) exprNode() {}

func (e Const) String() string    { return fmt.Sprintf("%d", e.V) }
func (e FieldRef) String() string { return "pkt." + e.Name }
func (e RegRef) String() string   { return "reg." + e.Reg }
func (e MetaRef) String() string  { return "meta." + e.Name }
func (e Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", e.A.String(), e.Op, e.B.String())
}
func (e HashExpr) String() string {
	s := fmt.Sprintf("hash%d(", e.Seed)
	for i, a := range e.Args {
		if i > 0 {
			s += ","
		}
		s += a.String()
	}
	s += ")"
	if e.Mod != 0 {
		s += fmt.Sprintf("%%%d", e.Mod)
	}
	return s
}

// Cond is a boolean branch condition.
type Cond interface {
	condNode()
	String() string
}

// Cmp compares two expressions.
type Cmp struct {
	Op   CmpOp
	A, B Expr
}

// Not negates a condition.
type Not struct{ C Cond }

// AndC is conjunction.
type AndC struct{ A, B Cond }

// OrC is disjunction.
type OrC struct{ A, B Cond }

func (Cmp) condNode()  {}
func (Not) condNode()  {}
func (AndC) condNode() {}
func (OrC) condNode()  {}

func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.A.String(), c.Op, c.B.String())
}
func (c Not) String() string  { return "!(" + c.C.String() + ")" }
func (c AndC) String() string { return "(" + c.A.String() + " && " + c.B.String() + ")" }
func (c OrC) String() string  { return "(" + c.A.String() + " || " + c.B.String() + ")" }

// ActionKind enumerates terminal packet actions.
type ActionKind int

const (
	ActNoOp ActionKind = iota
	ActForward
	ActDrop
	ActToCPU       // punt to switch control plane
	ActDigest      // generate a control-plane digest message
	ActRecirculate // send through the recirculation pipeline
	ActMirror      // mirror to a port (e.g. sampling to a collector)
	ActToBackend   // forward to a backend server port
)

func (k ActionKind) String() string {
	switch k {
	case ActNoOp:
		return "noop"
	case ActForward:
		return "forward"
	case ActDrop:
		return "drop"
	case ActToCPU:
		return "to_cpu"
	case ActDigest:
		return "digest"
	case ActRecirculate:
		return "recirculate"
	case ActMirror:
		return "mirror"
	case ActToBackend:
		return "to_backend"
	}
	return "?"
}

// Expensive reports whether the action is costly at runtime (involves the
// control plane, recirculation, or a backend server). Figure 12 colors code
// blocks containing expensive actions.
func (k ActionKind) Expensive() bool {
	switch k {
	case ActToCPU, ActDigest, ActRecirculate, ActMirror, ActToBackend:
		return true
	}
	return false
}

// LValue is an assignment target.
type LValue interface {
	lvNode()
	String() string
}

// RegLV targets a scalar register.
type RegLV struct{ Reg string }

// MetaLV targets per-packet metadata.
type MetaLV struct{ Name string }

func (RegLV) lvNode()  {}
func (MetaLV) lvNode() {}

func (l RegLV) String() string  { return "reg." + l.Reg }
func (l MetaLV) String() string { return "meta." + l.Name }

// Stmt is a program statement.
type Stmt interface{ stmtNode() }

// Block is a labeled basic block; it becomes one CFG node. Unlabeled branch
// arms are auto-wrapped into Blocks by Build.
type Block struct {
	Label string
	Stmts []Stmt

	// ID is the CFG node index, assigned by Build.
	ID int
}

// If branches on a condition.
type If struct {
	Cond       Cond
	Then, Else Stmt // Else may be nil
}

// Assign writes an expression to a register or metadata slot.
type Assign struct {
	Target LValue
	Expr   Expr
}

// Action performs a terminal packet action. Arg is the port for
// Forward/Mirror/ToBackend (may be nil otherwise).
type Action struct {
	Kind ActionKind
	Arg  Expr
}

// HashAccess reads (and optionally writes) a CRC hash table keyed by Key.
// Per the paper's greybox model it has a three-way continuation:
// the slot is empty, the slot holds the same key (hit), or the slot holds a
// different key (collision). Any of the arms may be nil.
//
// If Write is true the access installs Value under Key (on empty or hit;
// a collision leaves the table unchanged unless Evict is set, which
// overwrites the colliding entry — the *Flow-style eviction behaviour).
type HashAccess struct {
	Store     string
	Key       []Expr
	Write     bool
	Value     Expr // value to install when Write (nil means 0)
	Evict     bool
	Inc       bool // when set with Write, add Value to the stored value on hit
	Dest      string
	OnEmpty   Stmt
	OnHit     Stmt
	OnCollide Stmt
}

// BloomOp tests Key against a Bloom filter and optionally inserts it.
type BloomOp struct {
	Filter string
	Key    []Expr
	Insert bool
	OnHit  Stmt
	OnMiss Stmt
}

// SketchUpdate adds Inc to Key's counters in a count-min sketch. When Dest
// is set, the key's new count-min estimate is stored into that metadata
// slot (as a value distribution under greybox analysis).
type SketchUpdate struct {
	Sketch string
	Key    []Expr
	Inc    Expr
	Dest   string
}

// SketchBranch branches on the count-min estimate of Key compared with a
// constant threshold.
type SketchBranch struct {
	Sketch    string
	Key       []Expr
	Op        CmpOp
	Threshold uint64
	OnTrue    Stmt
	OnFalse   Stmt
}

// ArrayRead loads Array[Index] into metadata Dest.
type ArrayRead struct {
	Array string
	Index Expr
	Dest  string
}

// ArrayWrite stores Value into Array[Index].
type ArrayWrite struct {
	Array string
	Index Expr
	Value Expr
}

// TableApply matches Keys against the named match/action table.
// One path per entry (plus the default) is explored symbolically.
type TableApply struct {
	Table string
}

func (*Block) stmtNode()        {}
func (*If) stmtNode()           {}
func (*Assign) stmtNode()       {}
func (*Action) stmtNode()       {}
func (*HashAccess) stmtNode()   {}
func (*BloomOp) stmtNode()      {}
func (*SketchUpdate) stmtNode() {}
func (*SketchBranch) stmtNode() {}
func (*ArrayRead) stmtNode()    {}
func (*ArrayWrite) stmtNode()   {}
func (*TableApply) stmtNode()   {}

// RegDecl declares a scalar register.
type RegDecl struct {
	Name string
	Bits int
	Init uint64
}

// RegArrayDecl declares a plain register array (concrete indexing).
type RegArrayDecl struct {
	Name string
	Size int
	Bits int
}

// HashTableDecl declares a CRC hash table with Size slots.
type HashTableDecl struct {
	Name string
	Size int
	Seed uint32
}

// BloomDecl declares a Bloom filter with Bits bits and Hashes hash functions.
type BloomDecl struct {
	Name   string
	Bits   int
	Hashes int
}

// SketchDecl declares a count-min sketch with Rows x Cols counters.
type SketchDecl struct {
	Name string
	Rows int
	Cols int
}

// MatchKind selects how a table entry key matches.
type MatchKind int

const (
	MatchExact MatchKind = iota
	MatchRange
	MatchWildcard
)

// MatchSpec matches one table key field.
type MatchSpec struct {
	Kind   MatchKind
	Lo, Hi uint64 // Exact uses Lo; Range uses [Lo,Hi]
}

// Entry is one match/action table entry.
type Entry struct {
	Match  []MatchSpec
	Action Stmt
}

// TableDecl declares a match/action table. Entries are concrete (the
// paper's prototype assumes entries are known); SymbolicEntries > 0
// additionally models that many *unknown* installed entries, each matching
// an unconstrained key value — the Vera-style symbolic-entry extension the
// paper's §6 proposes. Symbolic entries execute SymbolicAction when
// matched; concretely (on the DUT) they do not exist until a controller
// installs them, so the interpreter skips them. Entries are assumed
// disjoint when Disjoint is true, which avoids negated-match constraints
// during symbex.
type TableDecl struct {
	Name     string
	Keys     []Expr
	Entries  []Entry
	Default  Stmt
	Disjoint bool

	SymbolicEntries int
	SymbolicAction  Stmt
}

// Program is a finalized data-plane program.
type Program struct {
	Name string

	Fields     []Field
	Regs       []RegDecl
	RegArrays  []RegArrayDecl
	HashTables []HashTableDecl
	Blooms     []BloomDecl
	Sketches   []SketchDecl
	Tables     []TableDecl

	// Root is the per-packet processing body.
	Root Stmt

	// Policy is the optional information-flow policy (secret sources and
	// public sinks) consumed by the analysis package's ifc pass. Nil means
	// no policy: the ifc pass is skipped. Pure metadata — execution,
	// profiling, and model counting ignore it.
	Policy *SecPolicy

	// Assigned by Build.
	nodes       []*Block
	fieldByName map[string]Field
	regByName   map[string]RegDecl
	built       bool
}

// Nodes returns all CFG nodes (labeled basic blocks) in ID order.
func (p *Program) Nodes() []*Block {
	return p.nodes
}

// Node returns the CFG node with the given ID.
func (p *Program) Node(id int) *Block {
	return p.nodes[id]
}

// NodeByLabel returns the first CFG node with the given label, or nil.
func (p *Program) NodeByLabel(label string) *Block {
	for _, n := range p.nodes {
		if n.Label == label {
			return n
		}
	}
	return nil
}

// Field returns the declaration of a header field.
func (p *Program) Field(name string) (Field, bool) {
	f, ok := p.fieldByName[name]
	return f, ok
}

// Reg returns the declaration of a scalar register.
func (p *Program) Reg(name string) (RegDecl, bool) {
	r, ok := p.regByName[name]
	return r, ok
}

// Table returns the declaration of a match/action table.
func (p *Program) Table(name string) (*TableDecl, bool) {
	for i := range p.Tables {
		if p.Tables[i].Name == name {
			return &p.Tables[i], true
		}
	}
	return nil, false
}

// HashTable returns a hash table declaration by name.
func (p *Program) HashTable(name string) (HashTableDecl, bool) {
	for _, d := range p.HashTables {
		if d.Name == name {
			return d, true
		}
	}
	return HashTableDecl{}, false
}

// Bloom returns a Bloom filter declaration by name.
func (p *Program) Bloom(name string) (BloomDecl, bool) {
	for _, d := range p.Blooms {
		if d.Name == name {
			return d, true
		}
	}
	return BloomDecl{}, false
}

// Sketch returns a sketch declaration by name.
func (p *Program) Sketch(name string) (SketchDecl, bool) {
	for _, d := range p.Sketches {
		if d.Name == name {
			return d, true
		}
	}
	return SketchDecl{}, false
}

// RegArray returns a register array declaration by name.
func (p *Program) RegArray(name string) (RegArrayDecl, bool) {
	for _, d := range p.RegArrays {
		if d.Name == name {
			return d, true
		}
	}
	return RegArrayDecl{}, false
}

// Stateful reports whether the program has any persistent state.
func (p *Program) Stateful() bool {
	return len(p.Regs) > 0 || len(p.RegArrays) > 0 || len(p.HashTables) > 0 ||
		len(p.Blooms) > 0 || len(p.Sketches) > 0
}

// HasApprox reports whether the program uses approximate data structures.
func (p *Program) HasApprox() bool {
	return len(p.HashTables) > 0 || len(p.Blooms) > 0 || len(p.Sketches) > 0
}
