package ir

// CFG is the control-flow graph over a program's basic blocks. Edges follow
// syntactic structure: a block has an edge to every block that can execute
// immediately within or after it during one packet's processing, plus a
// back-edge from every terminal block to the entry (the implicit
// infinite per-packet loop of a data-plane system).
type CFG struct {
	prog *Program
	succ [][]int
}

// BuildCFG computes the control-flow graph of a built program.
func BuildCFG(p *Program) *CFG {
	g := &CFG{prog: p, succ: make([][]int, len(p.nodes))}
	// Structural edges: parent block -> child arm blocks. applying guards
	// against unbounded recursion when a table's action re-applies the same
	// table (the verifier reports that as an error, but the CFG must still
	// terminate so the report can be produced).
	applying := map[string]bool{}
	var visit func(s Stmt, owner int)
	visit = func(s Stmt, owner int) {
		if s == nil {
			return
		}
		switch t := s.(type) {
		case *Block:
			if owner >= 0 {
				g.addEdge(owner, t.ID)
			}
			for _, c := range t.Stmts {
				visit(c, t.ID)
			}
		case *If:
			visit(t.Then, owner)
			visit(t.Else, owner)
		case *HashAccess:
			visit(t.OnEmpty, owner)
			visit(t.OnHit, owner)
			visit(t.OnCollide, owner)
		case *BloomOp:
			visit(t.OnHit, owner)
			visit(t.OnMiss, owner)
		case *SketchBranch:
			visit(t.OnTrue, owner)
			visit(t.OnFalse, owner)
		case *TableApply:
			if tbl, ok := p.Table(t.Table); ok && !applying[t.Table] {
				applying[t.Table] = true
				for _, e := range tbl.Entries {
					visit(e.Action, owner)
				}
				visit(tbl.Default, owner)
				visit(tbl.SymbolicAction, owner)
				delete(applying, t.Table)
			}
		}
	}
	root, _ := p.Root.(*Block)
	visit(root, -1)
	// Loop edges: every leaf block returns to entry for the next packet.
	if root != nil {
		for id := range g.succ {
			if len(g.succ[id]) == 0 && id != root.ID {
				g.addEdge(id, root.ID)
			}
		}
	}
	return g
}

func (g *CFG) addEdge(from, to int) {
	for _, s := range g.succ[from] {
		if s == to {
			return
		}
	}
	g.succ[from] = append(g.succ[from], to)
}

// Succ returns the successor node IDs of a node.
func (g *CFG) Succ(id int) []int { return g.succ[id] }

// NumNodes returns the number of CFG nodes.
func (g *CFG) NumNodes() int { return len(g.succ) }

// DistanceTo computes, for every node, the minimum number of edges to reach
// target (possibly across the per-packet loop edge). Unreachable nodes get
// a large sentinel. This drives directed symbolic execution: exploration
// prefers successors with smaller distance to the target block.
func (g *CFG) DistanceTo(target int) []int {
	const inf = 1 << 30
	n := len(g.succ)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = inf
	}
	// Reverse BFS from the target.
	radj := make([][]int, n)
	for u, ss := range g.succ {
		for _, v := range ss {
			radj[v] = append(radj[v], u)
		}
	}
	queue := []int{target}
	dist[target] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range radj[u] {
			if dist[v] > dist[u]+1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
