package ir

import "testing"

// Two toy stages: an upstream filter that forwards good traffic to the
// inter-switch link (port 1) and drops bad TTLs, and a downstream counter.
func upStage() *Program {
	return (&Program{
		Name: "filter",
		Regs: []RegDecl{{Name: "drops", Bits: 32}},
		Root: Body(
			If2(Le(F("ttl"), C(1)),
				Blk("bad", Add1("drops"), Drop()),
				If2(Eq(F("proto"), C(ProtoTCP)),
					Blk("to_link", Fwd(1)),
					Blk("local", Fwd(3)))),
		),
	}).MustBuild()
}

func dnStage() *Program {
	return (&Program{
		Name: "counter",
		Regs: []RegDecl{{Name: "cnt", Bits: 32}},
		Root: Body(
			Blk("count", Add1("cnt"), Fwd(2)),
		),
	}).MustBuild()
}

func TestComposePipelineStructure(t *testing.T) {
	prog, err := ComposePipeline("pipe", upStage(), dnStage(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// State is merged with prefixes.
	if _, ok := prog.Reg("up_drops"); !ok {
		t.Fatal("upstream register not prefixed/merged")
	}
	if _, ok := prog.Reg("dn_cnt"); !ok {
		t.Fatal("downstream register not prefixed/merged")
	}
	// Blocks from both stages are present with stage prefixes.
	if prog.NodeByLabel("up.bad") == nil {
		t.Fatal("upstream block missing")
	}
	if prog.NodeByLabel("dn.count") == nil {
		t.Fatal("downstream block missing")
	}
	if prog.NodeByLabel("wire") == nil {
		t.Fatal("wire block missing")
	}
}

func TestComposePipelineNameCollisions(t *testing.T) {
	a := (&Program{
		Name: "a",
		Regs: []RegDecl{{Name: "cnt", Bits: 32}},
		Root: Body(Add1("cnt"), Fwd(1)),
	}).MustBuild()
	b := (&Program{
		Name: "b",
		Regs: []RegDecl{{Name: "cnt", Bits: 32}},
		Root: Body(Add1("cnt"), Fwd(2)),
	}).MustBuild()
	prog, err := ComposePipeline("pipe", a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := prog.Reg("up_cnt"); !ok {
		t.Fatal("up_cnt missing")
	}
	if _, ok := prog.Reg("dn_cnt"); !ok {
		t.Fatal("dn_cnt missing")
	}
}

func TestComposePipelineFieldConflict(t *testing.T) {
	a := (&Program{
		Name:   "a",
		Fields: append(append([]Field{}, StdFields...), Field{Name: "x", Bits: 8}),
		Root:   Body(Fwd(1)),
	}).MustBuild()
	b := (&Program{
		Name:   "b",
		Fields: append(append([]Field{}, StdFields...), Field{Name: "x", Bits: 16}),
		Root:   Body(Fwd(1)),
	}).MustBuild()
	if _, err := ComposePipeline("pipe", a, b, 1); err == nil {
		t.Fatal("conflicting field widths should error")
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := upStage()
	clone := CloneStmt(orig.Root, nil).(*Block)
	// Mutating the clone must not affect the original.
	clone.Stmts = nil
	if len(orig.Root.(*Block).Stmts) == 0 {
		t.Fatal("clone aliases original statements")
	}
}

func TestCloneRewritesState(t *testing.T) {
	rw := &Rewriter{State: func(s string) string { return "p_" + s }}
	c := CloneStmt(Add1("cnt"), rw).(*Assign)
	if c.Target.(RegLV).Reg != "p_cnt" {
		t.Fatalf("target not rewritten: %v", c.Target)
	}
	if c.Expr.(Bin).A.(RegRef).Reg != "p_cnt" {
		t.Fatalf("expr not rewritten: %v", c.Expr)
	}
}
