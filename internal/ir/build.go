package ir

import (
	"fmt"
	"sort"
)

// Build finalizes a program: it wraps every branch arm into a labeled Block,
// assigns CFG node IDs, fills lookup maps, and validates all references.
// Build must be called exactly once before the program is executed or
// analyzed; it returns the program to allow chaining.
func (p *Program) Build() (*Program, error) {
	return p.build(true)
}

// BuildUnvalidated finalizes a program without reference validation: blocks
// are labeled and numbered and lookup maps are filled, but unknown fields,
// registers, tables, or out-of-range operators are tolerated. It exists so
// the analysis verifier can walk a malformed program and report every
// problem as a structured diagnostic instead of stopping at Build's first
// error. Programs built this way must not be executed.
func (p *Program) BuildUnvalidated() (*Program, error) {
	return p.build(false)
}

func (p *Program) build(validated bool) (*Program, error) {
	if p.built {
		return p, fmt.Errorf("ir: program %q already built", p.Name)
	}
	if p.Root == nil {
		return nil, fmt.Errorf("ir: program %q has no root", p.Name)
	}
	if len(p.Fields) == 0 {
		p.Fields = append([]Field(nil), StdFields...)
	}
	p.fieldByName = make(map[string]Field, len(p.Fields))
	for _, f := range p.Fields {
		if validated {
			if f.Bits <= 0 || f.Bits > 64 {
				return nil, fmt.Errorf("ir: field %q has invalid width %d", f.Name, f.Bits)
			}
			if _, dup := p.fieldByName[f.Name]; dup {
				return nil, fmt.Errorf("ir: duplicate field %q", f.Name)
			}
		}
		p.fieldByName[f.Name] = f
	}
	p.regByName = make(map[string]RegDecl, len(p.Regs))
	for _, r := range p.Regs {
		if validated {
			if r.Bits <= 0 || r.Bits > 64 {
				return nil, fmt.Errorf("ir: register %q has invalid width %d", r.Name, r.Bits)
			}
			if _, dup := p.regByName[r.Name]; dup {
				return nil, fmt.Errorf("ir: duplicate register %q", r.Name)
			}
		}
		p.regByName[r.Name] = r
	}

	// Normalize: ensure the root and every branch arm is a *Block.
	p.Root = p.normalize(p.Root, "entry")
	n := &nodeAssigner{p: p}
	n.assign(p.Root)
	// Table actions live outside Root; normalize and number them too.
	for ti := range p.Tables {
		t := &p.Tables[ti]
		for ei := range t.Entries {
			if t.Entries[ei].Action != nil {
				t.Entries[ei].Action = p.normalize(t.Entries[ei].Action,
					fmt.Sprintf("%s.entry%d", t.Name, ei))
				n.assign(t.Entries[ei].Action)
			}
		}
		if t.Default != nil {
			t.Default = p.normalize(t.Default, t.Name+".default")
			n.assign(t.Default)
		}
		if t.SymbolicAction != nil {
			t.SymbolicAction = p.normalize(t.SymbolicAction, t.Name+".symbolic")
			n.assign(t.SymbolicAction)
		}
	}
	if n.err != nil {
		return nil, n.err
	}
	p.built = true
	if validated {
		if err := p.validate(); err != nil {
			p.built = false
			return nil, err
		}
	}
	return p, nil
}

// MustBuild is Build that panics on error; used by the static program zoo.
func (p *Program) MustBuild() *Program {
	q, err := p.Build()
	if err != nil {
		panic(err)
	}
	return q
}

// normalize wraps a non-Block statement into a Block with the given label.
func (p *Program) normalize(s Stmt, label string) *Block {
	if b, ok := s.(*Block); ok {
		if b.Label == "" {
			b.Label = label
		}
		return b
	}
	return &Block{Label: label, Stmts: []Stmt{s}}
}

type nodeAssigner struct {
	p   *Program
	err error
}

// assign walks the statement tree, wrapping branch arms into Blocks and
// assigning sequential node IDs in pre-order.
func (n *nodeAssigner) assign(s Stmt) {
	if n.err != nil || s == nil {
		return
	}
	switch t := s.(type) {
	case *Block:
		t.ID = len(n.p.nodes)
		n.p.nodes = append(n.p.nodes, t)
		for _, c := range t.Stmts {
			n.assign(c)
		}
	case *If:
		t.Then = n.wrapBranch(t.Then, "then")
		n.assign(t.Then)
		if t.Else != nil {
			t.Else = n.wrapBranch(t.Else, "else")
			n.assign(t.Else)
		}
	case *HashAccess:
		if t.OnEmpty != nil {
			t.OnEmpty = n.wrapBranch(t.OnEmpty, t.Store+".empty")
			n.assign(t.OnEmpty)
		}
		if t.OnHit != nil {
			t.OnHit = n.wrapBranch(t.OnHit, t.Store+".hit")
			n.assign(t.OnHit)
		}
		if t.OnCollide != nil {
			t.OnCollide = n.wrapBranch(t.OnCollide, t.Store+".collide")
			n.assign(t.OnCollide)
		}
	case *BloomOp:
		if t.OnHit != nil {
			t.OnHit = n.wrapBranch(t.OnHit, t.Filter+".hit")
			n.assign(t.OnHit)
		}
		if t.OnMiss != nil {
			t.OnMiss = n.wrapBranch(t.OnMiss, t.Filter+".miss")
			n.assign(t.OnMiss)
		}
	case *SketchBranch:
		if t.OnTrue != nil {
			t.OnTrue = n.wrapBranch(t.OnTrue, t.Sketch+".true")
			n.assign(t.OnTrue)
		}
		if t.OnFalse != nil {
			t.OnFalse = n.wrapBranch(t.OnFalse, t.Sketch+".false")
			n.assign(t.OnFalse)
		}
	case *Assign, *Action, *SketchUpdate, *ArrayRead, *ArrayWrite, *TableApply:
		// Leaves.
	default:
		n.err = fmt.Errorf("ir: unknown statement type %T", s)
	}
}

func (n *nodeAssigner) wrapBranch(s Stmt, hint string) *Block {
	if b, ok := s.(*Block); ok {
		if b.Label == "" {
			b.Label = hint
		}
		return b
	}
	return &Block{Label: hint, Stmts: []Stmt{s}}
}

// validate checks every field, register and structure reference.
func (p *Program) validate() error {
	seenLabels := map[string]int{}
	for _, b := range p.nodes {
		seenLabels[b.Label]++
	}
	// Duplicate labels are allowed (auto-generated arms) but warn-worthy;
	// uniqueness is guaranteed by IDs.
	var werr error
	walkStmt(p.Root, func(s Stmt) {
		if werr != nil {
			return
		}
		switch t := s.(type) {
		case *Assign:
			werr = firstErr(werr, p.checkLV(t.Target), p.checkExpr(t.Expr))
		case *If:
			werr = firstErr(werr, p.checkCond(t.Cond))
		case *Action:
			if t.Arg != nil {
				werr = firstErr(werr, p.checkExpr(t.Arg))
			}
		case *HashAccess:
			if _, ok := p.HashTable(t.Store); !ok {
				werr = fmt.Errorf("ir: %s: unknown hash table %q", p.Name, t.Store)
				return
			}
			for _, k := range t.Key {
				werr = firstErr(werr, p.checkExpr(k))
			}
			if t.Value != nil {
				werr = firstErr(werr, p.checkExpr(t.Value))
			}
		case *BloomOp:
			if _, ok := p.Bloom(t.Filter); !ok {
				werr = fmt.Errorf("ir: %s: unknown bloom filter %q", p.Name, t.Filter)
				return
			}
			for _, k := range t.Key {
				werr = firstErr(werr, p.checkExpr(k))
			}
		case *SketchUpdate:
			if _, ok := p.Sketch(t.Sketch); !ok {
				werr = fmt.Errorf("ir: %s: unknown sketch %q", p.Name, t.Sketch)
				return
			}
			for _, k := range t.Key {
				werr = firstErr(werr, p.checkExpr(k))
			}
			if t.Inc != nil {
				werr = firstErr(werr, p.checkExpr(t.Inc))
			}
		case *SketchBranch:
			if _, ok := p.Sketch(t.Sketch); !ok {
				werr = fmt.Errorf("ir: %s: unknown sketch %q", p.Name, t.Sketch)
				return
			}
			for _, k := range t.Key {
				werr = firstErr(werr, p.checkExpr(k))
			}
		case *ArrayRead:
			if _, ok := p.RegArray(t.Array); !ok {
				werr = fmt.Errorf("ir: %s: unknown register array %q", p.Name, t.Array)
				return
			}
			werr = firstErr(werr, p.checkExpr(t.Index))
		case *ArrayWrite:
			if _, ok := p.RegArray(t.Array); !ok {
				werr = fmt.Errorf("ir: %s: unknown register array %q", p.Name, t.Array)
				return
			}
			werr = firstErr(werr, p.checkExpr(t.Index), p.checkExpr(t.Value))
		case *TableApply:
			if _, ok := p.Table(t.Table); !ok {
				werr = fmt.Errorf("ir: %s: unknown table %q", p.Name, t.Table)
			}
		}
	})
	if werr != nil {
		return werr
	}
	for _, t := range p.Tables {
		for _, k := range t.Keys {
			if err := p.checkExpr(k); err != nil {
				return err
			}
		}
		for i, e := range t.Entries {
			if len(e.Match) != len(t.Keys) {
				return fmt.Errorf("ir: %s: table %q entry %d has %d match specs for %d keys",
					p.Name, t.Name, i, len(e.Match), len(t.Keys))
			}
		}
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func (p *Program) checkLV(l LValue) error {
	switch t := l.(type) {
	case RegLV:
		if _, ok := p.regByName[t.Reg]; !ok {
			return fmt.Errorf("ir: %s: unknown register %q", p.Name, t.Reg)
		}
	case MetaLV:
		// Metadata is declared implicitly by first write.
	}
	return nil
}

func (p *Program) checkExpr(e Expr) error {
	switch t := e.(type) {
	case Const, MetaRef:
		return nil
	case FieldRef:
		if _, ok := p.fieldByName[t.Name]; !ok {
			return fmt.Errorf("ir: %s: unknown field %q", p.Name, t.Name)
		}
	case RegRef:
		if _, ok := p.regByName[t.Reg]; !ok {
			return fmt.Errorf("ir: %s: unknown register %q", p.Name, t.Reg)
		}
	case Bin:
		return firstErr(p.checkExpr(t.A), p.checkExpr(t.B))
	case HashExpr:
		for _, a := range t.Args {
			if err := p.checkExpr(a); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Program) checkCond(c Cond) error {
	switch t := c.(type) {
	case Cmp:
		return firstErr(p.checkExpr(t.A), p.checkExpr(t.B))
	case Not:
		return p.checkCond(t.C)
	case AndC:
		return firstErr(p.checkCond(t.A), p.checkCond(t.B))
	case OrC:
		return firstErr(p.checkCond(t.A), p.checkCond(t.B))
	}
	return nil
}

// walkStmt calls fn on s and every statement nested beneath it, including
// table actions reachable via TableApply (once per table).
func walkStmt(s Stmt, fn func(Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch t := s.(type) {
	case *Block:
		for _, c := range t.Stmts {
			walkStmt(c, fn)
		}
	case *If:
		walkStmt(t.Then, fn)
		walkStmt(t.Else, fn)
	case *HashAccess:
		walkStmt(t.OnEmpty, fn)
		walkStmt(t.OnHit, fn)
		walkStmt(t.OnCollide, fn)
	case *BloomOp:
		walkStmt(t.OnHit, fn)
		walkStmt(t.OnMiss, fn)
	case *SketchBranch:
		walkStmt(t.OnTrue, fn)
		walkStmt(t.OnFalse, fn)
	}
}

// Blocks returns every labeled block nested in (and including) a statement.
func Blocks(s Stmt) []*Block {
	var out []*Block
	walkStmt(s, func(st Stmt) {
		if b, ok := st.(*Block); ok {
			out = append(out, b)
		}
	})
	return out
}

// Walk calls fn on every statement of the program, including table actions.
func (p *Program) Walk(fn func(Stmt)) {
	walkStmt(p.Root, fn)
	for _, t := range p.Tables {
		for _, e := range t.Entries {
			walkStmt(e.Action, fn)
		}
		walkStmt(t.Default, fn)
		walkStmt(t.SymbolicAction, fn)
	}
}

// Branch describes one conditional branch of the program, used by the
// telescoping guard scan (IsGuard in the paper's Figure 3).
type Branch struct {
	Cond Cond
	Then *Block
	Else *Block // may be nil
}

// Branches returns every If branch in the program.
func (p *Program) Branches() []Branch {
	var out []Branch
	p.Walk(func(s Stmt) {
		if f, ok := s.(*If); ok {
			b := Branch{Cond: f.Cond}
			if t, ok := f.Then.(*Block); ok {
				b.Then = t
			}
			if e, ok := f.Else.(*Block); ok {
				b.Else = e
			}
			out = append(out, b)
		}
	})
	return out
}

// StmtCount returns the total number of statements, a rough program size.
func (p *Program) StmtCount() int {
	n := 0
	p.Walk(func(Stmt) { n++ })
	return n
}

// ExpensiveNodes returns the IDs of CFG nodes that contain an expensive
// action (control-plane punt, digest, recirculation, mirror, or backend).
func (p *Program) ExpensiveNodes() map[int]bool {
	out := map[int]bool{}
	for _, b := range p.nodes {
		for _, s := range b.Stmts {
			if a, ok := s.(*Action); ok && a.Kind.Expensive() {
				out[b.ID] = true
			}
		}
	}
	return out
}

// SortedLabels returns all node labels sorted, for deterministic reports.
func (p *Program) SortedLabels() []string {
	out := make([]string, len(p.nodes))
	for i, b := range p.nodes {
		out[i] = b.Label
	}
	sort.Strings(out)
	return out
}
