package ir

// Deep-clone and rewrite support, used by pipeline composition: cloned
// statement trees can be re-Built under a new program (fresh node IDs), and
// a rewriter can rename state references and relabel blocks along the way.

// Rewriter customizes a clone pass. Nil members are identity.
type Rewriter struct {
	// Label rewrites block labels.
	Label func(string) string
	// State rewrites register/array/store/table names.
	State func(string) string
	// Action rewrites terminal actions (may return a different statement,
	// e.g. to capture forwarding decisions in metadata).
	Action func(*Action) Stmt
}

func (r *Rewriter) label(s string) string {
	if r == nil || r.Label == nil {
		return s
	}
	return r.Label(s)
}

func (r *Rewriter) state(s string) string {
	if r == nil || r.State == nil {
		return s
	}
	return r.State(s)
}

// CloneExpr deep-copies an expression, applying the rewriter to register
// references.
func CloneExpr(e Expr, rw *Rewriter) Expr {
	switch t := e.(type) {
	case nil:
		return nil
	case Const, FieldRef, MetaRef:
		return t
	case RegRef:
		return RegRef{Reg: rw.state(t.Reg)}
	case Bin:
		return Bin{Op: t.Op, A: CloneExpr(t.A, rw), B: CloneExpr(t.B, rw)}
	case HashExpr:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = CloneExpr(a, rw)
		}
		return HashExpr{Seed: t.Seed, Args: args, Mod: t.Mod}
	}
	return e
}

func cloneExprs(es []Expr, rw *Rewriter) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = CloneExpr(e, rw)
	}
	return out
}

// CloneCond deep-copies a condition.
func CloneCond(c Cond, rw *Rewriter) Cond {
	switch t := c.(type) {
	case nil:
		return nil
	case Cmp:
		return Cmp{Op: t.Op, A: CloneExpr(t.A, rw), B: CloneExpr(t.B, rw)}
	case Not:
		return Not{C: CloneCond(t.C, rw)}
	case AndC:
		return AndC{A: CloneCond(t.A, rw), B: CloneCond(t.B, rw)}
	case OrC:
		return OrC{A: CloneCond(t.A, rw), B: CloneCond(t.B, rw)}
	}
	return c
}

// CloneStmt deep-copies a statement tree, applying the rewriter. The clone
// carries no node IDs; Build on the enclosing program assigns fresh ones.
func CloneStmt(s Stmt, rw *Rewriter) Stmt {
	switch t := s.(type) {
	case nil:
		return nil
	case *Block:
		out := &Block{Label: rw.label(t.Label)}
		for _, c := range t.Stmts {
			out.Stmts = append(out.Stmts, CloneStmt(c, rw))
		}
		return out
	case *If:
		return &If{
			Cond: CloneCond(t.Cond, rw),
			Then: CloneStmt(t.Then, rw),
			Else: CloneStmt(t.Else, rw),
		}
	case *Assign:
		out := &Assign{Expr: CloneExpr(t.Expr, rw)}
		switch lv := t.Target.(type) {
		case RegLV:
			out.Target = RegLV{Reg: rw.state(lv.Reg)}
		case MetaLV:
			out.Target = lv
		}
		return out
	case *Action:
		cp := &Action{Kind: t.Kind, Arg: CloneExpr(t.Arg, rw)}
		if rw != nil && rw.Action != nil {
			return rw.Action(cp)
		}
		return cp
	case *HashAccess:
		return &HashAccess{
			Store: rw.state(t.Store), Key: cloneExprs(t.Key, rw),
			Write: t.Write, Value: CloneExpr(t.Value, rw),
			Evict: t.Evict, Inc: t.Inc, Dest: t.Dest,
			OnEmpty:   CloneStmt(t.OnEmpty, rw),
			OnHit:     CloneStmt(t.OnHit, rw),
			OnCollide: CloneStmt(t.OnCollide, rw),
		}
	case *BloomOp:
		return &BloomOp{
			Filter: rw.state(t.Filter), Key: cloneExprs(t.Key, rw),
			Insert: t.Insert,
			OnHit:  CloneStmt(t.OnHit, rw),
			OnMiss: CloneStmt(t.OnMiss, rw),
		}
	case *SketchUpdate:
		return &SketchUpdate{
			Sketch: rw.state(t.Sketch), Key: cloneExprs(t.Key, rw),
			Inc: CloneExpr(t.Inc, rw), Dest: t.Dest,
		}
	case *SketchBranch:
		return &SketchBranch{
			Sketch: rw.state(t.Sketch), Key: cloneExprs(t.Key, rw),
			Op: t.Op, Threshold: t.Threshold,
			OnTrue:  CloneStmt(t.OnTrue, rw),
			OnFalse: CloneStmt(t.OnFalse, rw),
		}
	case *ArrayRead:
		return &ArrayRead{Array: rw.state(t.Array), Index: CloneExpr(t.Index, rw), Dest: t.Dest}
	case *ArrayWrite:
		return &ArrayWrite{Array: rw.state(t.Array), Index: CloneExpr(t.Index, rw), Value: CloneExpr(t.Value, rw)}
	case *TableApply:
		return &TableApply{Table: rw.state(t.Table)}
	}
	return s
}
