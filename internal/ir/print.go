package ir

import (
	"fmt"
	"strings"
)

// Format renders a program as P4-like pseudocode — the inverse of the
// mini-language front end in internal/p4c and the form DESIGN.md inventories
// reference. Round-tripping through p4c.Parse(prog.Format()) reproduces an
// equivalent program.
func (p *Program) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %q {\n", p.Name)
	for _, f := range p.Fields {
		if isStdField(f.Name) {
			continue
		}
		fmt.Fprintf(&b, "  field %s : %d;\n", f.Name, f.Bits)
	}
	for _, r := range p.Regs {
		if r.Init != 0 {
			fmt.Fprintf(&b, "  register %s : %d = %d;\n", r.Name, r.Bits, r.Init)
		} else {
			fmt.Fprintf(&b, "  register %s : %d;\n", r.Name, r.Bits)
		}
	}
	for _, a := range p.RegArrays {
		fmt.Fprintf(&b, "  register_array %s[%d] : %d;\n", a.Name, a.Size, a.Bits)
	}
	for _, h := range p.HashTables {
		fmt.Fprintf(&b, "  hash_table %s[%d] seed %d;\n", h.Name, h.Size, h.Seed)
	}
	for _, bl := range p.Blooms {
		fmt.Fprintf(&b, "  bloom %s[%d] hashes %d;\n", bl.Name, bl.Bits, bl.Hashes)
	}
	for _, s := range p.Sketches {
		fmt.Fprintf(&b, "  sketch %s[%dx%d];\n", s.Name, s.Rows, s.Cols)
	}
	if !p.Policy.Empty() {
		b.WriteString(p.Policy.Format())
	}
	for _, t := range p.Tables {
		formatTable(&b, p, &t, 1)
	}
	b.WriteString("  apply {\n")
	formatStmt(&b, p.Root, 2, true)
	b.WriteString("  }\n}\n")
	return b.String()
}

func isStdField(name string) bool {
	for _, f := range StdFields {
		if f.Name == name {
			return true
		}
	}
	return false
}

func indent(b *strings.Builder, level int) {
	for i := 0; i < level; i++ {
		b.WriteString("  ")
	}
}

func formatTable(b *strings.Builder, p *Program, t *TableDecl, level int) {
	indent(b, level)
	keys := make([]string, len(t.Keys))
	for i, k := range t.Keys {
		keys[i] = k.String()
	}
	attrs := ""
	if t.Disjoint {
		attrs = " disjoint"
	}
	fmt.Fprintf(b, "table %s(%s)%s {\n", t.Name, strings.Join(keys, ", "), attrs)
	for _, e := range t.Entries {
		indent(b, level+1)
		specs := make([]string, len(e.Match))
		for i, m := range e.Match {
			switch m.Kind {
			case MatchExact:
				specs[i] = fmt.Sprintf("%d", m.Lo)
			case MatchRange:
				specs[i] = fmt.Sprintf("%d..%d", m.Lo, m.Hi)
			case MatchWildcard:
				specs[i] = "*"
			}
		}
		fmt.Fprintf(b, "entry (%s) ->\n", strings.Join(specs, ", "))
		formatStmt(b, e.Action, level+2, false)
	}
	if t.Default != nil {
		indent(b, level+1)
		b.WriteString("default ->\n")
		formatStmt(b, t.Default, level+2, false)
	}
	indent(b, level)
	b.WriteString("}\n")
}

// formatStmt writes a statement; bare unwraps the outermost block's braces
// (used for the root body).
func formatStmt(b *strings.Builder, s Stmt, level int, bare bool) {
	switch t := s.(type) {
	case *Block:
		if bare {
			for _, c := range t.Stmts {
				formatStmt(b, c, level, false)
			}
			return
		}
		indent(b, level)
		fmt.Fprintf(b, "block %q {\n", t.Label)
		for _, c := range t.Stmts {
			formatStmt(b, c, level+1, false)
		}
		indent(b, level)
		b.WriteString("}\n")
	case *If:
		indent(b, level)
		fmt.Fprintf(b, "if (%s)\n", t.Cond.String())
		formatStmt(b, t.Then, level+1, false)
		if t.Else != nil {
			indent(b, level)
			b.WriteString("else\n")
			formatStmt(b, t.Else, level+1, false)
		}
	case *Assign:
		indent(b, level)
		fmt.Fprintf(b, "%s = %s;\n", t.Target.String(), t.Expr.String())
	case *Action:
		indent(b, level)
		if t.Arg != nil {
			fmt.Fprintf(b, "%s(%s);\n", t.Kind, t.Arg.String())
		} else {
			fmt.Fprintf(b, "%s();\n", t.Kind)
		}
	case *HashAccess:
		indent(b, level)
		attrs := ""
		if t.Write {
			attrs += " write " + exprOrZero(t.Value)
		}
		if t.Inc {
			attrs += " inc"
		}
		if t.Evict {
			attrs += " evict"
		}
		if t.Dest != "" {
			attrs += " into meta." + t.Dest
		}
		fmt.Fprintf(b, "access %s(%s)%s {\n", t.Store, exprList(t.Key), attrs)
		formatArm(b, "empty", t.OnEmpty, level+1)
		formatArm(b, "hit", t.OnHit, level+1)
		formatArm(b, "collide", t.OnCollide, level+1)
		indent(b, level)
		b.WriteString("}\n")
	case *BloomOp:
		indent(b, level)
		attrs := ""
		if t.Insert {
			attrs = " insert"
		}
		fmt.Fprintf(b, "bloom_test %s(%s)%s {\n", t.Filter, exprList(t.Key), attrs)
		formatArm(b, "hit", t.OnHit, level+1)
		formatArm(b, "miss", t.OnMiss, level+1)
		indent(b, level)
		b.WriteString("}\n")
	case *SketchUpdate:
		indent(b, level)
		attrs := ""
		if t.Dest != "" {
			attrs = " into meta." + t.Dest
		}
		fmt.Fprintf(b, "sketch_update %s(%s) by %s%s;\n", t.Sketch, exprList(t.Key), exprOrOne(t.Inc), attrs)
	case *SketchBranch:
		indent(b, level)
		fmt.Fprintf(b, "sketch_if %s(%s) %s %d {\n", t.Sketch, exprList(t.Key), t.Op, t.Threshold)
		formatArm(b, "true", t.OnTrue, level+1)
		formatArm(b, "false", t.OnFalse, level+1)
		indent(b, level)
		b.WriteString("}\n")
	case *ArrayRead:
		indent(b, level)
		fmt.Fprintf(b, "meta.%s = %s[%s];\n", t.Dest, t.Array, t.Index.String())
	case *ArrayWrite:
		indent(b, level)
		fmt.Fprintf(b, "%s[%s] = %s;\n", t.Array, t.Index.String(), t.Value.String())
	case *TableApply:
		indent(b, level)
		fmt.Fprintf(b, "apply_table %s;\n", t.Table)
	}
}

func formatArm(b *strings.Builder, name string, s Stmt, level int) {
	if s == nil {
		return
	}
	indent(b, level)
	fmt.Fprintf(b, "on %s ->\n", name)
	formatStmt(b, s, level+1, false)
}

func exprList(es []Expr) string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.String()
	}
	return strings.Join(out, ", ")
}

func exprOrZero(e Expr) string {
	if e == nil {
		return "0"
	}
	return e.String()
}

func exprOrOne(e Expr) string {
	if e == nil {
		return "1"
	}
	return e.String()
}
