package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunCoversEverySlot(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		p := New(w, nil, "test")
		const n = 300
		out := make([]int, n)
		if err := p.Run(context.Background(), n, func(i int) error {
			out[i] = i + 1
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: slot %d not written", w, i)
			}
		}
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	sum := 0
	if err := p.Run(context.Background(), 10, func(i int) error {
		sum += i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Fatalf("sum = %d", sum)
	}
	if got := p.Workers(); got != 1 {
		t.Fatalf("nil pool workers = %d", got)
	}
	if got := p.Metrics()["workers"]; got != 1 {
		t.Fatalf("nil pool metrics workers = %v", got)
	}
}

// TestFirstErrorByLowestIndex: whatever the schedule, the reported error is
// the one a sequential in-order loop would have hit first.
func TestFirstErrorByLowestIndex(t *testing.T) {
	for _, w := range []int{1, 8} {
		p := New(w, nil, "test")
		err := p.Run(context.Background(), 100, func(i int) error {
			if i%10 == 7 {
				return fmt.Errorf("task %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 7" {
			t.Fatalf("workers=%d: err = %v, want task 7", w, err)
		}
	}
}

func TestRunStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		p := New(w, nil, "test")
		var ran atomic.Int64
		err := p.Run(ctx, 1000, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", w, err)
		}
		// Inline checks the ctx on a stride of 64; workers check per claim.
		if ran.Load() >= 1000 {
			t.Fatalf("workers=%d: cancellation did not stop the batch", w)
		}
	}
}

func TestMetricsAccumulate(t *testing.T) {
	p := New(2, nil, "test")
	for b := 0; b < 3; b++ {
		if err := p.Run(context.Background(), 50, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	m := p.Metrics()
	if m["workers"] != 2 || m["batches"] != 3 || m["tasks"] != 150 {
		t.Fatalf("metrics = %v", m)
	}
	if _, ok := m["worker0.util"]; !ok {
		t.Fatalf("missing per-worker utilization: %v", m)
	}
}
