// Package par provides the bounded worker pool shared by the profiler's
// embarrassingly parallel hot loops: per-packet frontier stepping in the
// symbolic engine, per-path model-counting queries (the paper's LattE calls,
// which Figure 7 shows dominating exploration time), and the concrete
// sampling fallback.
//
// The pool is a degree-of-parallelism plus a metrics aggregator, not a set
// of long-lived goroutines: each Run spawns at most Workers() goroutines for
// the batch (cheap next to a single model-counting query) and accumulates
// per-worker busy time across batches, so utilization is observable over a
// whole profiling run. Determinism is the caller's contract: tasks write
// only to their own index's slot and callers reduce in index order, so
// results are bit-identical for every worker count — the pool only changes
// the schedule.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Workers resolves a requested degree of parallelism: n <= 0 selects
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool is a bounded-parallelism executor. A nil *Pool (or a pool with one
// worker) runs every batch inline on the calling goroutine, so sequential
// callers pay nothing and Workers=1 is exactly the sequential engine.
type Pool struct {
	workers int
	tracer  *obs.Tracer
	scope   string

	batches atomic.Int64
	tasks   atomic.Int64
	wallNS  atomic.Int64
	busyNS  []atomic.Int64 // per-worker cumulative busy time
}

// New builds a pool with the given degree of parallelism (<= 0 selects
// GOMAXPROCS). The tracer may be nil; scope labels the pool's trace spans
// (e.g. "sym").
func New(workers int, tr *obs.Tracer, scope string) *Pool {
	w := Workers(workers)
	return &Pool{workers: w, tracer: tr, scope: scope, busyNS: make([]atomic.Int64, w)}
}

// Workers returns the pool's degree of parallelism (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run executes fn(i) for every i in [0, n), fanning tasks out across the
// pool's workers. Tasks are claimed from an atomic cursor, so scheduling is
// work-stealing-like; callers that need determinism must make fn(i) write
// only to slot i and reduce in index order afterwards.
//
// The first error (by lowest task index) is returned, matching what a
// sequential in-order loop would report; once any task errors, remaining
// unclaimed tasks are skipped. The context is checked before each claim:
// cancellation surfaces as ctx.Err() unless an earlier-indexed task failed
// first.
func (p *Pool) Run(ctx context.Context, n int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		return p.runInline(ctx, n, fn)
	}

	// The batch span parents under whatever span the caller's context
	// carries (an iteration span, the sampling stage, ...), so pool fan-outs
	// render nested inside the phase that issued them.
	var span obs.Span
	if p.tracer != nil {
		_, span = p.tracer.StartSpanCtx(ctx, p.scope+".batch")
	}
	start := time.Now()

	var cursor atomic.Int64
	var stop atomic.Bool
	// First error by lowest task index, so the parallel schedule reports
	// exactly what a sequential in-order loop would have reported.
	errIdx := int64(n)
	var errVal error
	var errMu sync.Mutex
	record := func(i int, err error) {
		errMu.Lock()
		if int64(i) < errIdx {
			errIdx, errVal = int64(i), err
		}
		errMu.Unlock()
		stop.Store(true)
	}

	var wg sync.WaitGroup
	var batchBusy atomic.Int64
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			busy := time.Duration(0)
			for !stop.Load() {
				if err := ctx.Err(); err != nil {
					record(n-1, err) // lowest-index real failure still wins
					break
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					break
				}
				t0 := time.Now()
				err := fn(i)
				busy += time.Since(t0)
				p.tasks.Add(1)
				if err != nil {
					record(i, err)
					break
				}
			}
			p.busyNS[wk].Add(int64(busy))
			batchBusy.Add(int64(busy))
		}(wk)
	}
	wg.Wait()

	wall := time.Since(start)
	p.batches.Add(1)
	p.wallNS.Add(int64(wall))
	if p.tracer != nil {
		util := 0.0
		if wall > 0 {
			util = time.Duration(batchBusy.Load()).Seconds() / (wall.Seconds() * float64(w))
		}
		span.Annotate(obs.F("tasks", float64(n)), obs.F("workers", float64(w)),
			obs.F("util", util))
		span.End()
		p.tracer.Event(p.scope, "batch",
			obs.F("tasks", float64(n)), obs.F("workers", float64(w)),
			obs.F("util", util))
	}
	if errVal != nil {
		return errVal
	}
	return nil
}

// runInline is the Workers<=1 fast path: no goroutines, no spans, identical
// control flow to a plain sequential loop (including its early-exit-on-error
// semantics), with a stride-64 context check.
func (p *Pool) runInline(ctx context.Context, n int, fn func(int) error) error {
	start := time.Now()
	for i := 0; i < n; i++ {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := fn(i); err != nil {
			return err
		}
	}
	if p != nil {
		d := time.Since(start)
		p.batches.Add(1)
		p.tasks.Add(int64(n))
		p.wallNS.Add(int64(d))
		p.busyNS[0].Add(int64(d))
	}
	return nil
}

// Metrics snapshots the pool for the obs registry: worker count, batches,
// tasks, cumulative wall seconds, and per-worker utilization (busy time over
// pool wall time).
func (p *Pool) Metrics() map[string]float64 {
	if p == nil {
		return map[string]float64{"workers": 1}
	}
	out := map[string]float64{
		"workers":  float64(p.workers),
		"batches":  float64(p.batches.Load()),
		"tasks":    float64(p.tasks.Load()),
		"wall_sec": time.Duration(p.wallNS.Load()).Seconds(),
	}
	wall := time.Duration(p.wallNS.Load()).Seconds()
	totalBusy := 0.0
	for i := range p.busyNS {
		busy := time.Duration(p.busyNS[i].Load()).Seconds()
		totalBusy += busy
		u := 0.0
		if wall > 0 {
			u = busy / wall
		}
		out["worker"+itoa(i)+".util"] = u
	}
	if wall > 0 {
		out["utilization"] = totalBusy / (wall * float64(p.workers))
	}
	return out
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
