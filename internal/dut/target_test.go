package dut

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/target"
	"repro/internal/trace"
)

// manyStages builds a program whose packet pass executes n stateful
// operations (sketch updates) before forwarding out of a labeled block.
func manyStages(t *testing.T, n int) *ir.Program {
	t.Helper()
	stmts := make([]ir.Stmt, 0, n+1)
	for i := 0; i < n; i++ {
		stmts = append(stmts, &ir.SketchUpdate{Sketch: "cnt", Key: ir.FlowKey(), Inc: ir.C(1)})
	}
	stmts = append(stmts, ir.Blk("out", ir.Fwd(1)))
	p := &ir.Program{
		Name:     "stages",
		Sketches: []ir.SketchDecl{{Name: "cnt", Rows: 2, Cols: 64}},
		Root:     ir.Body(stmts...),
	}
	return p.MustBuild()
}

func TestStageOverflowDrops(t *testing.T) {
	prog := manyStages(t, 5)
	model := &target.Model{Name: "tiny", MaxStages: 3, OnOverflow: target.OverflowDrop}
	sw := New(prog, Config{Target: model})
	hit := false
	sw.VisitHook = func(id int) {
		if prog.Node(id) != nil && prog.Node(id).Label == "out" {
			hit = true
		}
	}
	pkt := trace.Packet{SrcIP: 1, DstIP: 2, Len: 64}
	res := sw.Process(&pkt)
	if !res.Dropped || res.Forwarded {
		t.Fatalf("over-budget pass must drop: %+v", res)
	}
	if hit {
		t.Fatal("blocks past the stage budget must not execute")
	}
}

func TestStageOverflowPunts(t *testing.T) {
	prog := manyStages(t, 5)
	model := &target.Model{Name: "tiny", MaxStages: 3, OnOverflow: target.OverflowPunt}
	sw := New(prog, Config{Target: model})
	pkt := trace.Packet{SrcIP: 1, DstIP: 2, Len: 64}
	res := sw.Process(&pkt)
	if res.CPUPunts == 0 || res.Dropped {
		t.Fatalf("over-budget pass must punt, not drop: %+v", res)
	}
}

func TestStageBudgetUnderLimitUnaffected(t *testing.T) {
	prog := manyStages(t, 5)
	model := &target.Model{Name: "roomy", MaxStages: 12, OnOverflow: target.OverflowDrop}
	sw := New(prog, Config{Target: model})
	pkt := trace.Packet{SrcIP: 1, DstIP: 2, Len: 64}
	res := sw.Process(&pkt)
	if !res.Forwarded || res.Dropped {
		t.Fatalf("pass within budget must behave as idealized: %+v", res)
	}
}

func TestNoRecircPunts(t *testing.T) {
	p := &ir.Program{
		Name: "loop",
		Root: ir.Body(ir.Blk("spin", ir.Recirc())),
	}
	prog := p.MustBuild()
	pkt := trace.Packet{SrcIP: 1, DstIP: 2, Len: 64}

	ideal := New(prog, Config{})
	r := ideal.Process(&pkt)
	if r.Recircs == 0 || r.CPUPunts != 0 {
		t.Fatalf("idealized must recirculate: %+v", r)
	}

	noRecirc := New(prog, Config{Target: &target.Model{Name: "flat", NoRecirc: true}})
	r = noRecirc.Process(&pkt)
	if r.Recircs != 0 || r.CPUPunts == 0 {
		t.Fatalf("no-recirc target must punt the recirculation: %+v", r)
	}
}

// exactProg stores flows in a 1-slot hash table, so the slot-addressed
// interpreter collides any two distinct keys while a map-backed target
// never does.
func exactProg(t *testing.T) *ir.Program {
	t.Helper()
	p := &ir.Program{
		Name:       "exact",
		HashTables: []ir.HashTableDecl{{Name: "flows", Size: 1, Seed: 7}},
		Root: ir.Body(
			&ir.HashAccess{
				Store: "flows", Key: []ir.Expr{ir.F("src_ip")}, Write: true, Value: ir.C(1),
				OnEmpty:   ir.Blk("fresh", ir.Fwd(1)),
				OnHit:     ir.Blk("known", ir.Fwd(2)),
				OnCollide: ir.Blk("clash", ir.Drop()),
			},
		),
	}
	return p.MustBuild()
}

func TestExactStateRemovesCollisions(t *testing.T) {
	prog := exactProg(t)
	visits := map[string]int{}
	record := func(sw *Switch) {
		sw.VisitHook = func(id int) {
			if n := prog.Node(id); n != nil {
				visits[n.Label]++
			}
		}
	}
	a := trace.Packet{SrcIP: 1, Len: 64}
	b := trace.Packet{SrcIP: 2, Len: 64}

	// Slot-addressed: the second flow collides in the single slot.
	sw := New(prog, Config{})
	record(sw)
	sw.Process(&a)
	sw.Process(&b)
	if visits["fresh"] != 1 || visits["clash"] != 1 {
		t.Fatalf("slot-addressed visits = %v, want one fresh + one clash", visits)
	}

	// Map-backed: both flows get their own entry; re-seeing a key hits.
	visits = map[string]int{}
	sw = New(prog, Config{Target: &target.Model{Name: "maps", ExactState: true}})
	record(sw)
	sw.Process(&a)
	sw.Process(&b)
	sw.Process(&a)
	if visits["clash"] != 0 {
		t.Fatalf("exact-state target must never collide: %v", visits)
	}
	if visits["fresh"] != 2 || visits["known"] != 1 {
		t.Fatalf("exact-state visits = %v, want two fresh + one known", visits)
	}
}

func TestTargetClampedHashTable(t *testing.T) {
	// A 1024-slot table clamped to 2 slots collides quickly: with three
	// distinct keys at least two share one of the two slots.
	p := &ir.Program{
		Name:       "clamped",
		HashTables: []ir.HashTableDecl{{Name: "flows", Size: 1024, Seed: 7}},
		Root: ir.Body(
			&ir.HashAccess{
				Store: "flows", Key: []ir.Expr{ir.F("src_ip")}, Write: true, Value: ir.C(1),
				OnEmpty:   ir.Blk("fresh", ir.Fwd(1)),
				OnHit:     ir.Blk("known", ir.Fwd(2)),
				OnCollide: ir.Blk("clash", ir.Drop()),
			},
		),
	}
	prog := p.MustBuild()
	model := &target.Model{Name: "small", MaxHashSlots: 2}
	sw := New(prog, Config{Target: model})
	clash := false
	sw.VisitHook = func(id int) {
		if n := prog.Node(id); n != nil && n.Label == "clash" {
			clash = true
		}
	}
	for i := uint32(1); i <= 3; i++ {
		pkt := trace.Packet{SrcIP: i, Len: 64}
		sw.Process(&pkt)
	}
	if !clash {
		t.Fatal("three keys in a 2-slot clamped table must collide")
	}
}
