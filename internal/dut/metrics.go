package dut

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Metrics is a per-second time series of switch measurements over a replay,
// binned by virtual packet timestamps.
type Metrics struct {
	Seconds int

	// PortKBps is per-port traffic in kilobytes per second.
	PortKBps [][]float64 // [port][second]
	// CPUPkts counts control-plane punts per second.
	CPUPkts []int
	// Digests counts control-plane digests per second.
	Digests []int
	// Recircs counts recirculated packets per second.
	Recircs []int
	// Mirrors counts mirrored packets per second.
	Mirrors []int
	// BackendPkts counts packets sent to backend servers per second.
	BackendPkts []int
	// Dropped counts drops per second.
	Dropped []int
}

// NewMetrics allocates a time series covering the given duration.
func NewMetrics(seconds, ports int) *Metrics {
	m := &Metrics{Seconds: seconds}
	m.PortKBps = make([][]float64, ports)
	for i := range m.PortKBps {
		m.PortKBps[i] = make([]float64, seconds)
	}
	m.CPUPkts = make([]int, seconds)
	m.Digests = make([]int, seconds)
	m.Recircs = make([]int, seconds)
	m.Mirrors = make([]int, seconds)
	m.BackendPkts = make([]int, seconds)
	m.Dropped = make([]int, seconds)
	return m
}

// Replay runs a trace through the switch and bins results per virtual
// second (relative to the trace's first packet).
func (s *Switch) Replay(tr *trace.Trace) *Metrics {
	if tr.Len() == 0 {
		return NewMetrics(0, s.Cfg.Ports)
	}
	t0 := tr.Packets[0].TS
	dur := int((tr.Packets[tr.Len()-1].TS-t0)/1e6) + 1
	m := NewMetrics(dur, s.Cfg.Ports)
	for i := range tr.Packets {
		p := &tr.Packets[i]
		bin := int((p.TS - t0) / 1e6)
		if bin >= dur {
			bin = dur - 1
		}
		res := s.Process(p)
		if res.Forwarded && !res.Dropped {
			m.PortKBps[res.OutPort%uint64(s.Cfg.Ports)][bin] += float64(p.Len) / 1000
		}
		if res.Dropped {
			m.Dropped[bin]++
		}
		m.CPUPkts[bin] += res.CPUPunts
		m.Digests[bin] += res.Digests
		m.Recircs[bin] += res.Recircs
		m.Mirrors[bin] += res.Mirrors
		m.BackendPkts[bin] += res.BackendPkts
	}
	return m
}

// Totals aggregates the series into scalars.
type Totals struct {
	PortKB      []float64
	CPUPkts     int
	Digests     int
	Recircs     int
	Mirrors     int
	BackendPkts int
	Dropped     int
}

// Totals sums the time series.
func (m *Metrics) Totals() Totals {
	t := Totals{PortKB: make([]float64, len(m.PortKBps))}
	for p := range m.PortKBps {
		for _, v := range m.PortKBps[p] {
			t.PortKB[p] += v
		}
	}
	for i := 0; i < m.Seconds; i++ {
		t.CPUPkts += m.CPUPkts[i]
		t.Digests += m.Digests[i]
		t.Recircs += m.Recircs[i]
		t.Mirrors += m.Mirrors[i]
		t.BackendPkts += m.BackendPkts[i]
		t.Dropped += m.Dropped[i]
	}
	return t
}

// Rate returns a named per-second mean rate, for disruption comparisons.
func (t Totals) Rate(metric string, seconds int) float64 {
	if seconds <= 0 {
		seconds = 1
	}
	s := float64(seconds)
	switch metric {
	case "cpu":
		return float64(t.CPUPkts) / s
	case "digest":
		return float64(t.Digests) / s
	case "recirc":
		return float64(t.Recircs) / s
	case "mirror":
		return float64(t.Mirrors) / s
	case "backend":
		return float64(t.BackendPkts) / s
	case "drop":
		return float64(t.Dropped) / s
	case "port_imbalance":
		// Hottest port's load relative to the fair share: 1.0 means
		// perfectly balanced, numPorts means all traffic on one port.
		maxV, total := 0.0, 0.0
		for _, v := range t.PortKB {
			if v > maxV {
				maxV = v
			}
			total += v
		}
		if total <= 0 {
			return 0
		}
		return maxV * float64(len(t.PortKB)) / total
	}
	return 0
}

// Render formats selected series as aligned text columns (the repository's
// stand-in for the paper's time-series plots).
func (m *Metrics) Render(series map[string][]float64) string {
	var names []string
	for k := range series {
		names = append(names, k)
	}
	sortStrings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%6s", "sec")
	for _, n := range names {
		fmt.Fprintf(&b, " %14s", n)
	}
	b.WriteByte('\n')
	for s := 0; s < m.Seconds; s++ {
		fmt.Fprintf(&b, "%6d", s)
		for _, n := range names {
			v := 0.0
			if s < len(series[n]) {
				v = series[n][s]
			}
			fmt.Fprintf(&b, " %14.1f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// IntSeries converts an int series to float for Render.
func IntSeries(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
