// Package dut implements the backtesting engine: a software switch that
// executes IR programs concretely over packet traces (the repository's
// bmv2/Tofino stand-in). It maintains real register state, real CRC hash
// tables, Bloom filters and count-min sketches, counts per-port traffic and
// control-plane interactions, and produces per-second time series — the
// measurements behind paper Figures 10 and 11.
//
// The same interpreter doubles as the concrete executor for path sampling
// (the profiler's SampPaths phase and the ps baseline) via VisitHook.
package dut

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/ir"
	"repro/internal/target"
	"repro/internal/trace"
)

// Config tunes the switch.
type Config struct {
	// Ports is the number of egress ports (default 8).
	Ports int
	// RecircLimit bounds re-processing of recirculated packets (default 4).
	// Recirculations are counted rather than re-executed (the Figure 11k
	// metric is the recirculation count); the limit guards any future
	// program that loops on Recirculate.
	RecircLimit int
	// Target is the device model the switch enforces — the same limits and
	// semantics the symbolic engine assumes, so concrete replays and
	// profiles describe the same machine. Nil is the idealized switch.
	Target *target.Model
}

func (c Config) withDefaults() Config {
	if c.Ports == 0 {
		c.Ports = 8
	}
	if c.RecircLimit == 0 {
		c.RecircLimit = 4
	}
	return c
}

// HashOf is the concrete CRC hash shared by the switch and the adversarial
// test generator (which searches it for collisions).
func HashOf(seed uint32, vals []uint64, mod uint64) uint64 {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	h := crc32.Update(seed, crc32.IEEETable, buf)
	if mod == 0 {
		return uint64(h)
	}
	return uint64(h) % mod
}

type htEntry struct {
	occupied bool
	key      []uint64
	val      uint64
}

type hashTable struct {
	seed  uint32
	slots []htEntry
	// exact backs the table with a real key-value map instead of hashed
	// slots (map-backed targets: lookups never collide).
	exact map[string]*htEntry
}

type bloomFilter struct {
	bits   []bool
	hashes int
}

type cmSketch struct {
	rows, cols int
	counters   []uint64
}

// Result reports what happened to one packet.
type Result struct {
	Forwarded   bool
	OutPort     uint64
	Dropped     bool
	CPUPunts    int
	Digests     int
	Recircs     int
	Mirrors     int
	BackendPkts int
}

// Switch is a concrete interpreter instance with live state.
type Switch struct {
	Prog *ir.Program
	Cfg  Config

	regs     map[string]uint64
	arrays   map[string][]uint64
	tables   map[string]*hashTable
	blooms   map[string]*bloomFilter
	sketches map[string]*cmSketch
	meta     map[string]uint64

	// VisitHook, when set, is called for every CFG block entered.
	VisitHook func(nodeID int)

	processed uint64
	// stages counts the current packet's stateful operations; overflowed
	// halts the pass once the target's stage budget is exhausted.
	stages     int
	overflowed bool
}

// New builds a switch for a program.
func New(prog *ir.Program, cfg Config) *Switch {
	s := &Switch{
		Prog:     prog,
		Cfg:      cfg.withDefaults(),
		regs:     map[string]uint64{},
		arrays:   map[string][]uint64{},
		tables:   map[string]*hashTable{},
		blooms:   map[string]*bloomFilter{},
		sketches: map[string]*cmSketch{},
	}
	for _, r := range prog.Regs {
		s.regs[r.Name] = r.Init
	}
	tgt := s.Cfg.Target
	for _, a := range prog.RegArrays {
		s.arrays[a.Name] = make([]uint64, tgt.ClampArrayCells(a.Size))
	}
	for _, h := range prog.HashTables {
		ht := &hashTable{seed: h.Seed, slots: make([]htEntry, tgt.ClampHashSlots(h.Size))}
		if tgt.Exact() {
			ht.exact = map[string]*htEntry{}
		}
		s.tables[h.Name] = ht
	}
	for _, b := range prog.Blooms {
		s.blooms[b.Name] = &bloomFilter{bits: make([]bool, tgt.ClampBloomBits(b.Bits)), hashes: b.Hashes}
	}
	for _, sk := range prog.Sketches {
		cols := tgt.ClampSketchCols(sk.Cols)
		s.sketches[sk.Name] = &cmSketch{rows: sk.Rows, cols: cols, counters: make([]uint64, sk.Rows*cols)}
	}
	return s
}

// Reg reads a register (for tests and inspection).
func (s *Switch) Reg(name string) uint64 { return s.regs[name] }

// Processed returns the number of packets processed.
func (s *Switch) Processed() uint64 { return s.processed }

// Process runs one packet through the pipeline.
func (s *Switch) Process(p *trace.Packet) Result {
	s.processed++
	s.meta = map[string]uint64{}
	s.stages = 0
	s.overflowed = false
	var res Result
	s.exec(s.Prog.Root, p, &res, 0)
	return res
}

// stageOK charges one pipeline stage for a stateful operation when the
// target sets a stage budget; over budget the packet takes the target's
// overflow action and the pass halts (mirroring sym.Engine.stageOK).
func (s *Switch) stageOK(res *Result) bool {
	limit := s.Cfg.Target.StageLimit()
	if limit <= 0 {
		return true
	}
	if s.stages < limit {
		s.stages++
		return true
	}
	s.overflowed = true
	if s.Cfg.Target.Overflow() == target.OverflowPunt {
		res.CPUPunts++
	} else {
		res.Dropped = true
	}
	return false
}

func (s *Switch) exec(st ir.Stmt, p *trace.Packet, res *Result, depth int) {
	if st == nil || res.Dropped || s.overflowed {
		return
	}
	switch t := st.(type) {
	case *ir.Block:
		if s.VisitHook != nil {
			s.VisitHook(t.ID)
		}
		for _, c := range t.Stmts {
			if res.Dropped {
				return
			}
			s.exec(c, p, res, depth)
		}
	case *ir.If:
		if s.cond(t.Cond, p) {
			s.exec(t.Then, p, res, depth)
		} else {
			s.exec(t.Else, p, res, depth)
		}
	case *ir.Assign:
		v := s.eval(t.Expr, p)
		switch lv := t.Target.(type) {
		case ir.RegLV:
			s.regs[lv.Reg] = v
		case ir.MetaLV:
			s.meta[lv.Name] = v
		}
	case *ir.Action:
		s.act(t, p, res)
	case *ir.HashAccess:
		if s.stageOK(res) {
			s.hashAccess(t, p, res, depth)
		}
	case *ir.BloomOp:
		if s.stageOK(res) {
			s.bloomOp(t, p, res, depth)
		}
	case *ir.SketchUpdate:
		if s.stageOK(res) {
			s.sketchUpdate(t, p)
		}
	case *ir.SketchBranch:
		if s.stageOK(res) {
			s.sketchBranch(t, p, res, depth)
		}
	case *ir.ArrayRead:
		if !s.stageOK(res) {
			return
		}
		arr := s.arrays[t.Array]
		idx := s.eval(t.Index, p)
		if int(idx) < len(arr) {
			s.meta[t.Dest] = arr[idx]
		}
	case *ir.ArrayWrite:
		if !s.stageOK(res) {
			return
		}
		arr := s.arrays[t.Array]
		idx := s.eval(t.Index, p)
		if int(idx) < len(arr) {
			arr[idx] = s.eval(t.Value, p)
		}
	case *ir.TableApply:
		if s.stageOK(res) {
			s.applyTable(t, p, res, depth)
		}
	}
}

func (s *Switch) act(a *ir.Action, p *trace.Packet, res *Result) {
	switch a.Kind {
	case ir.ActForward:
		res.Forwarded = true
		if a.Arg != nil {
			res.OutPort = s.eval(a.Arg, p) % uint64(s.Cfg.Ports)
		}
	case ir.ActDrop:
		res.Dropped = true
	case ir.ActToCPU:
		res.CPUPunts++
	case ir.ActDigest:
		res.Digests++
	case ir.ActRecirculate:
		if !s.Cfg.Target.Recirculates() {
			// No recirculation path on this target: punt to the CPU instead.
			res.CPUPunts++
			break
		}
		res.Recircs++
	case ir.ActMirror:
		res.Mirrors++
	case ir.ActToBackend:
		res.BackendPkts++
		res.Forwarded = true
		if a.Arg != nil {
			res.OutPort = s.eval(a.Arg, p) % uint64(s.Cfg.Ports)
		}
	}
}

func (s *Switch) hashAccess(h *ir.HashAccess, p *trace.Packet, res *Result, depth int) {
	ht := s.tables[h.Store]
	key := make([]uint64, len(h.Key))
	for i, k := range h.Key {
		key[i] = s.eval(k, p)
	}
	wv := uint64(0)
	if h.Value != nil {
		wv = s.eval(h.Value, p)
	}
	if ht.exact != nil {
		s.hashAccessExact(ht, h, key, wv, p, res, depth)
		return
	}
	idx := HashOf(ht.seed, key, uint64(len(ht.slots)))
	slot := &ht.slots[idx]
	switch {
	case !slot.occupied:
		if h.Write {
			slot.occupied = true
			slot.key = key
			slot.val = wv
			if h.Dest != "" {
				s.meta[h.Dest] = wv
			}
		} else if h.Dest != "" {
			s.meta[h.Dest] = 0
		}
		s.exec(h.OnEmpty, p, res, depth)
	case keysEqual(slot.key, key):
		// Reads observe the pre-write value (read-modify-write), except
		// increments, whose consumers want the updated count.
		old := slot.val
		if h.Write {
			if h.Inc {
				slot.val += wv
			} else {
				slot.val = wv
			}
		}
		if h.Dest != "" {
			if h.Write && h.Inc {
				s.meta[h.Dest] = slot.val
			} else {
				s.meta[h.Dest] = old
			}
		}
		s.exec(h.OnHit, p, res, depth)
	default:
		if h.Dest != "" {
			s.meta[h.Dest] = slot.val // the resident (foreign) value
		}
		if h.Write && h.Evict {
			slot.key = key
			slot.val = wv
		}
		s.exec(h.OnCollide, p, res, depth)
	}
}

// hashAccessExact is the map-backed (ExactState) variant of hashAccess:
// lookups are keyed by the full key, so the collision arm never executes —
// an unseen key takes the empty arm, a seen key always hits.
func (s *Switch) hashAccessExact(ht *hashTable, h *ir.HashAccess, key []uint64, wv uint64, p *trace.Packet, res *Result, depth int) {
	fp := keyFP(key)
	slot, ok := ht.exact[fp]
	if !ok {
		if h.Write {
			ht.exact[fp] = &htEntry{occupied: true, key: key, val: wv}
			if h.Dest != "" {
				s.meta[h.Dest] = wv
			}
		} else if h.Dest != "" {
			s.meta[h.Dest] = 0
		}
		s.exec(h.OnEmpty, p, res, depth)
		return
	}
	old := slot.val
	if h.Write {
		if h.Inc {
			slot.val += wv
		} else {
			slot.val = wv
		}
	}
	if h.Dest != "" {
		if h.Write && h.Inc {
			s.meta[h.Dest] = slot.val
		} else {
			s.meta[h.Dest] = old
		}
	}
	s.exec(h.OnHit, p, res, depth)
}

// keyFP fingerprints a full key for the exact-map backing store.
func keyFP(key []uint64) string {
	buf := make([]byte, 8*len(key))
	for i, v := range key {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	return string(buf)
}

func keysEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s *Switch) bloomOp(b *ir.BloomOp, p *trace.Packet, res *Result, depth int) {
	bf := s.blooms[b.Filter]
	key := make([]uint64, len(b.Key))
	for i, k := range b.Key {
		key[i] = s.eval(k, p)
	}
	hit := true
	for i := 0; i < bf.hashes; i++ {
		idx := HashOf(uint32(i)*0x9e3779b9+1, key, uint64(len(bf.bits)))
		if !bf.bits[idx] {
			hit = false
		}
	}
	if b.Insert {
		for i := 0; i < bf.hashes; i++ {
			idx := HashOf(uint32(i)*0x9e3779b9+1, key, uint64(len(bf.bits)))
			bf.bits[idx] = true
		}
	}
	if hit {
		s.exec(b.OnHit, p, res, depth)
	} else {
		s.exec(b.OnMiss, p, res, depth)
	}
}

func (s *Switch) sketchEstimate(sk *cmSketch, key []uint64) uint64 {
	est := ^uint64(0)
	for r := 0; r < sk.rows; r++ {
		idx := HashOf(uint32(r)*0x85ebca6b+7, key, uint64(sk.cols))
		if v := sk.counters[r*sk.cols+int(idx)]; v < est {
			est = v
		}
	}
	if est == ^uint64(0) {
		return 0
	}
	return est
}

func (s *Switch) sketchUpdate(u *ir.SketchUpdate, p *trace.Packet) {
	sk := s.sketches[u.Sketch]
	key := make([]uint64, len(u.Key))
	for i, k := range u.Key {
		key[i] = s.eval(k, p)
	}
	inc := uint64(1)
	if u.Inc != nil {
		inc = s.eval(u.Inc, p)
	}
	for r := 0; r < sk.rows; r++ {
		idx := HashOf(uint32(r)*0x85ebca6b+7, key, uint64(sk.cols))
		sk.counters[r*sk.cols+int(idx)] += inc
	}
	if u.Dest != "" {
		s.meta[u.Dest] = s.sketchEstimate(sk, key)
	}
}

func (s *Switch) sketchBranch(b *ir.SketchBranch, p *trace.Packet, res *Result, depth int) {
	sk := s.sketches[b.Sketch]
	key := make([]uint64, len(b.Key))
	for i, k := range b.Key {
		key[i] = s.eval(k, p)
	}
	est := s.sketchEstimate(sk, key)
	if cmpU(b.Op, est, b.Threshold) {
		s.exec(b.OnTrue, p, res, depth)
	} else {
		s.exec(b.OnFalse, p, res, depth)
	}
}

func (s *Switch) applyTable(t *ir.TableApply, p *trace.Packet, res *Result, depth int) {
	tbl, ok := s.Prog.Table(t.Table)
	if !ok {
		return
	}
	keys := make([]uint64, len(tbl.Keys))
	for i, k := range tbl.Keys {
		keys[i] = s.eval(k, p)
	}
	entries := tbl.Entries
	if n := s.Cfg.Target.ClampTableEntries(len(entries)); n < len(entries) {
		entries = entries[:n]
	}
	for _, e := range entries {
		if matchEntry(e.Match, keys) {
			s.exec(e.Action, p, res, depth)
			return
		}
	}
	s.exec(tbl.Default, p, res, depth)
}

func matchEntry(specs []ir.MatchSpec, keys []uint64) bool {
	for i, sp := range specs {
		switch sp.Kind {
		case ir.MatchExact:
			if keys[i] != sp.Lo {
				return false
			}
		case ir.MatchRange:
			if keys[i] < sp.Lo || keys[i] > sp.Hi {
				return false
			}
		case ir.MatchWildcard:
		}
	}
	return true
}

func (s *Switch) cond(c ir.Cond, p *trace.Packet) bool {
	switch t := c.(type) {
	case ir.Cmp:
		return cmpU(t.Op, s.eval(t.A, p), s.eval(t.B, p))
	case ir.Not:
		return !s.cond(t.C, p)
	case ir.AndC:
		return s.cond(t.A, p) && s.cond(t.B, p)
	case ir.OrC:
		return s.cond(t.A, p) || s.cond(t.B, p)
	}
	return false
}

func cmpU(op ir.CmpOp, a, b uint64) bool {
	switch op {
	case ir.CmpEq:
		return a == b
	case ir.CmpNe:
		return a != b
	case ir.CmpLt:
		return a < b
	case ir.CmpLe:
		return a <= b
	case ir.CmpGt:
		return a > b
	case ir.CmpGe:
		return a >= b
	}
	return false
}

func (s *Switch) eval(e ir.Expr, p *trace.Packet) uint64 {
	switch t := e.(type) {
	case ir.Const:
		return t.V
	case ir.FieldRef:
		v, _ := p.Field(t.Name)
		return v
	case ir.RegRef:
		return s.regs[t.Reg]
	case ir.MetaRef:
		return s.meta[t.Name]
	case ir.Bin:
		a, b := s.eval(t.A, p), s.eval(t.B, p)
		switch t.Op {
		case ir.OpAdd:
			return a + b
		case ir.OpSub:
			return a - b
		case ir.OpMul:
			return a * b
		case ir.OpAnd:
			return a & b
		case ir.OpOr:
			return a | b
		case ir.OpXor:
			return a ^ b
		case ir.OpMod:
			if b == 0 {
				return 0
			}
			return a % b
		case ir.OpShl:
			return a << (b & 63)
		case ir.OpShr:
			return a >> (b & 63)
		}
	case ir.HashExpr:
		vals := make([]uint64, len(t.Args))
		for i, a := range t.Args {
			vals[i] = s.eval(a, p)
		}
		return HashOf(t.Seed, vals, t.Mod)
	}
	return 0
}
