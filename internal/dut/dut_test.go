package dut

import (
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/trace"
)

func lbProg(t *testing.T) *ir.Program {
	t.Helper()
	p := &ir.Program{
		Name: "lb",
		Root: ir.Body(
			ir.SetM("h", ir.Hash(1, 4, ir.F("src_ip"), ir.F("dst_ip"), ir.F("src_port"), ir.F("dst_port"), ir.F("proto"))),
			ir.Blk("route", ir.FwdE(ir.M("h"))),
		),
	}
	return p.MustBuild()
}

func TestProcessForwarding(t *testing.T) {
	sw := New(lbProg(t), Config{Ports: 4})
	p := trace.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6, Len: 100}
	r := sw.Process(&p)
	if !r.Forwarded || r.Dropped {
		t.Fatal("packet should forward")
	}
	if r.OutPort >= 4 {
		t.Fatalf("port %d out of range", r.OutPort)
	}
	// Deterministic per 5-tuple.
	r2 := sw.Process(&p)
	if r2.OutPort != r.OutPort {
		t.Fatal("same flow must hash to the same port")
	}
}

func TestHashOfDeterministicAndModded(t *testing.T) {
	a := HashOf(7, []uint64{1, 2, 3}, 1024)
	b := HashOf(7, []uint64{1, 2, 3}, 1024)
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if a >= 1024 {
		t.Fatal("hash not reduced")
	}
	if HashOf(8, []uint64{1, 2, 3}, 1024) == a && HashOf(9, []uint64{1, 2, 3}, 1024) == a {
		t.Fatal("seeds should give different hashes (with high probability)")
	}
}

func TestRegistersAndGuard(t *testing.T) {
	p := &ir.Program{
		Name: "cnt",
		Regs: []ir.RegDecl{{Name: "c", Bits: 32}},
		Root: ir.Body(
			ir.Add1("c"),
			ir.If2(ir.Ge(ir.R("c"), ir.C(3)),
				ir.Blk("cpu", ir.ToCPU(), ir.Set("c", ir.C(0))),
				ir.Blk("fwd", ir.Fwd(1))),
		),
	}
	sw := New(p.MustBuild(), Config{})
	pkt := trace.Packet{Len: 64}
	punts := 0
	for i := 0; i < 9; i++ {
		punts += sw.Process(&pkt).CPUPunts
	}
	if punts != 3 {
		t.Fatalf("every 3rd packet should punt: got %d punts in 9 packets", punts)
	}
	if sw.Reg("c") != 0 {
		t.Fatalf("counter should have reset, is %d", sw.Reg("c"))
	}
}

func TestHashTableConcrete(t *testing.T) {
	p := &ir.Program{
		Name:       "ht",
		HashTables: []ir.HashTableDecl{{Name: "flows", Size: 1024}},
		Root: ir.Body(
			&ir.HashAccess{
				Store: "flows", Key: ir.FlowKey(), Write: true, Inc: true, Value: ir.C(1), Dest: "cnt",
				OnEmpty:   ir.Blk("newf", ir.Fwd(1)),
				OnHit:     ir.Blk("hit", ir.Fwd(1)),
				OnCollide: ir.Blk("col", ir.Recirc()),
			},
		),
	}
	sw := New(p.MustBuild(), Config{})
	var hits, news int
	newHook := func(id int) {
		if lbl := sw.Prog.Node(id).Label; lbl == "hit" {
			hits++
		} else if lbl := sw.Prog.Node(id).Label; lbl == "newf" {
			news++
		}
	}
	sw.VisitHook = newHook
	a := trace.Packet{SrcIP: 1, Proto: 6}
	b := trace.Packet{SrcIP: 2, Proto: 6}
	sw.Process(&a)
	sw.Process(&a)
	sw.Process(&b)
	sw.Process(&a)
	if news != 2 {
		t.Fatalf("2 new flows expected, got %d", news)
	}
	if hits != 2 {
		t.Fatalf("2 hits expected, got %d", hits)
	}
}

func TestHashTableCollision(t *testing.T) {
	// Size-1 table: any two distinct keys collide.
	p := &ir.Program{
		Name:       "ht1",
		HashTables: []ir.HashTableDecl{{Name: "f", Size: 1}},
		Root: ir.Body(
			&ir.HashAccess{
				Store: "f", Key: []ir.Expr{ir.F("src_ip")}, Write: true,
				OnEmpty:   ir.Blk("e", ir.Fwd(1)),
				OnHit:     ir.Blk("h", ir.Fwd(1)),
				OnCollide: ir.Blk("c", ir.Recirc()),
			},
		),
	}
	sw := New(p.MustBuild(), Config{})
	r1 := sw.Process(&trace.Packet{SrcIP: 1})
	r2 := sw.Process(&trace.Packet{SrcIP: 2})
	if r1.Recircs != 0 || r2.Recircs != 1 {
		t.Fatalf("second distinct key should collide: %+v %+v", r1, r2)
	}
}

func TestBloomConcrete(t *testing.T) {
	p := &ir.Program{
		Name:   "bf",
		Blooms: []ir.BloomDecl{{Name: "seen", Bits: 4096, Hashes: 3}},
		Root: ir.Body(
			&ir.BloomOp{Filter: "seen", Key: ir.FlowKey(), Insert: true,
				OnHit:  ir.Blk("hit", ir.Fwd(1)),
				OnMiss: ir.Blk("miss", ir.ToCPU())},
		),
	}
	sw := New(p.MustBuild(), Config{})
	a := trace.Packet{SrcIP: 42}
	if sw.Process(&a).CPUPunts != 1 {
		t.Fatal("first sighting should miss")
	}
	if sw.Process(&a).CPUPunts != 0 {
		t.Fatal("second sighting should hit")
	}
}

func TestSketchConcrete(t *testing.T) {
	p := &ir.Program{
		Name:     "cms",
		Sketches: []ir.SketchDecl{{Name: "cnt", Rows: 3, Cols: 4096}},
		Root: ir.Body(
			&ir.SketchUpdate{Sketch: "cnt", Key: ir.FlowKey(), Inc: ir.C(1), Dest: "est"},
			ir.If2(ir.Ge(ir.M("est"), ir.C(5)),
				ir.Blk("heavy", ir.Mirror(7)),
				ir.Blk("light", ir.Fwd(1))),
		),
	}
	sw := New(p.MustBuild(), Config{})
	a := trace.Packet{SrcIP: 9}
	mirrors := 0
	for i := 0; i < 10; i++ {
		mirrors += sw.Process(&a).Mirrors
	}
	if mirrors != 6 { // packets 5..10
		t.Fatalf("mirrors = %d, want 6", mirrors)
	}
}

func TestTableMatch(t *testing.T) {
	p := &ir.Program{
		Name: "acl",
		Tables: []ir.TableDecl{{
			Name: "acl",
			Keys: []ir.Expr{ir.F("dst_port")},
			Entries: []ir.Entry{
				{Match: []ir.MatchSpec{ir.Exact(22)}, Action: ir.Blk("deny", ir.Drop())},
				{Match: []ir.MatchSpec{ir.Range(80, 90)}, Action: ir.Blk("web", ir.Fwd(2))},
			},
			Default: ir.Blk("cpu", ir.ToCPU()),
		}},
		Root: ir.Body(&ir.TableApply{Table: "acl"}),
	}
	sw := New(p.MustBuild(), Config{})
	if !sw.Process(&trace.Packet{DstPort: 22}).Dropped {
		t.Fatal("port 22 should drop")
	}
	if r := sw.Process(&trace.Packet{DstPort: 85}); !r.Forwarded || r.OutPort != 2 {
		t.Fatal("port 85 should forward to 2")
	}
	if sw.Process(&trace.Packet{DstPort: 9999}).CPUPunts != 1 {
		t.Fatal("unmatched should punt")
	}
}

func TestReplayMetrics(t *testing.T) {
	tr := trace.Generate(trace.GenOptions{Seed: 1, Packets: 2000, MeanIPDms: 5})
	sw := New(lbProg(t), Config{Ports: 4})
	m := sw.Replay(tr)
	if m.Seconds <= 0 {
		t.Fatal("no time bins")
	}
	tot := m.Totals()
	sum := 0.0
	for _, kb := range tot.PortKB {
		sum += kb
	}
	if sum <= 0 {
		t.Fatal("no traffic recorded")
	}
	if tot.CPUPkts != 0 {
		t.Fatal("lb should not punt")
	}
	if m.Render(map[string][]float64{"p0": m.PortKBps[0]}) == "" {
		t.Fatal("render empty")
	}
}

func TestRateMetrics(t *testing.T) {
	tot := Totals{PortKB: []float64{100, 10, 0}, CPUPkts: 30}
	if got := tot.Rate("cpu", 10); got != 3 {
		t.Fatalf("cpu rate = %v", got)
	}
	// Hottest port (100) vs fair share (110/3): 100*3/110.
	want := 100.0 * 3 / 110
	if got := tot.Rate("port_imbalance", 10); math.Abs(got-want) > 1e-9 {
		t.Fatalf("imbalance = %v, want %v", got, want)
	}
	balanced := Totals{PortKB: []float64{50, 50}}
	if got := balanced.Rate("port_imbalance", 1); got != 1 {
		t.Fatalf("balanced imbalance = %v, want 1", got)
	}
}

func TestVisitHookCoverage(t *testing.T) {
	prog := lbProg(t)
	sw := New(prog, Config{})
	visited := map[int]bool{}
	sw.VisitHook = func(id int) { visited[id] = true }
	sw.Process(&trace.Packet{})
	if len(visited) != len(prog.Nodes()) {
		t.Fatalf("visited %d of %d nodes", len(visited), len(prog.Nodes()))
	}
}
