package randprog

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dut"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/prob"
	"repro/internal/solver"
	"repro/internal/sym"
	"repro/internal/trace"
)

// Soundness: for every symbolic path of a deterministic program, solving the
// path condition and replaying the witness packets on the concrete
// interpreter must visit exactly the blocks the path visited. This ties the
// symbolic engine, the solver, and the DUT together end to end.
func TestSymbexMatchesDUT(t *testing.T) {
	const (
		programs  = 60
		packets   = 2
		maxChecks = 12 // witness paths validated per program
	)
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := Deterministic(rng, Options{WithTables: seed%3 == 0})

		e := sym.NewEngine(prog, sym.Options{Greybox: true, MaxPaths: 1 << 14})
		var paths []*sym.Path
		paths = e.Initial()
		var err error
		ok := true
		for i := 0; i < packets; i++ {
			paths, err = e.Step(paths, i)
			if err != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}

		checked := 0
		for _, path := range paths {
			if checked >= maxChecks {
				break
			}
			asn, sat := solver.Solve(path.PC, e.Space, solver.SolveOptions{Seed: seed})
			if !sat {
				// Feasibility pruning is conservative; a path that the
				// full solver rejects must carry no probability mass.
				continue
			}
			checked++
			pkts := witnessPackets(prog, asn, packets)

			sw := dut.New(prog, dut.Config{})
			got := map[int]int{}
			sw.VisitHook = func(id int) { got[id]++ }
			for i := range pkts {
				sw.Process(&pkts[i])
			}

			for id, n := range path.AllVisits {
				if got[id] != n {
					t.Fatalf("seed %d: block %q visited %d times concretely, %d symbolically\nprogram:\n%s",
						seed, prog.Node(id).Label, got[id], n, prog.Format())
				}
			}
			for id := range got {
				if path.AllVisits[id] == 0 {
					t.Fatalf("seed %d: DUT visited %q which the path did not\nprogram:\n%s",
						seed, prog.Node(id).Label, prog.Format())
				}
			}
		}
	}
}

// witnessPackets lays a solver assignment into concrete packets, defaulting
// unconstrained fields to zero (any value satisfies the path condition).
func witnessPackets(prog *ir.Program, asn map[solver.Var]uint64, n int) []trace.Packet {
	pkts := make([]trace.Packet, n)
	for i := range pkts {
		for _, f := range prog.Fields {
			if v, ok := asn[solver.Var{Pkt: i, Field: f.Name}]; ok {
				pkts[i].SetField(f.Name, v)
			}
		}
	}
	return pkts
}

// Completeness of probability: over all paths of a deterministic program,
// the probabilities must sum to 1 (the paths partition the packet space).
func TestPathProbabilitiesPartitionSpace(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := Deterministic(rng, Options{})

		e := sym.NewEngine(prog, sym.Options{Greybox: true, MaxPaths: 1 << 14})
		counter := mc.NewCounter(e.Space, nil)
		paths, err := e.Run(1)
		if err != nil {
			continue
		}
		total := prob.Zero()
		for _, p := range paths {
			total = total.Add(sym.PathProb(p, counter))
		}
		if math.Abs(total.Float()-1) > 1e-6 {
			t.Fatalf("seed %d: path mass %v != 1\nprogram:\n%s", seed, total.Float(), prog.Format())
		}
	}
}

// The generator itself must produce valid, non-trivial programs.
func TestGeneratorWellFormed(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := Deterministic(rng, Options{WithTables: seed%2 == 0})
		if len(prog.Nodes()) < 1 {
			t.Fatalf("seed %d: empty program", seed)
		}
		ids := map[int]bool{}
		for _, n := range prog.Nodes() {
			if ids[n.ID] {
				t.Fatalf("seed %d: duplicate node ID %d", seed, n.ID)
			}
			ids[n.ID] = true
		}
	}
}
