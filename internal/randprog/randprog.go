// Package randprog generates random (but well-formed) IR programs for
// property-based testing. The Deterministic class — registers, branches,
// tables, arithmetic, but no hash-based structures — has the property that
// a program's behaviour is a pure function of the packet sequence, which
// lets tests assert that symbolic execution and the concrete interpreter
// agree exactly.
package randprog

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
)

// Options bounds generated programs.
type Options struct {
	// MaxDepth bounds statement nesting (default 3).
	MaxDepth int
	// MaxRegs bounds register count (default 3).
	MaxRegs int
	// WithTables allows a match/action table (default off).
	WithTables bool
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 3
	}
	if o.MaxRegs == 0 {
		o.MaxRegs = 3
	}
	return o
}

// fields the generator draws from (small widths keep probabilities visible).
var genFields = []string{"proto", "ttl", "dst_port", "src_port", "pkt_len", "tcp_flags"}

type gen struct {
	rng   *rand.Rand
	opt   Options
	regs  []string
	label int
}

// Deterministic generates a random program with no approximate data
// structures and no hash expressions: behaviour depends only on packet
// headers and register state.
func Deterministic(rng *rand.Rand, opt Options) *ir.Program {
	g := &gen{rng: rng, opt: opt.withDefaults()}
	nRegs := 1 + rng.Intn(g.opt.MaxRegs)
	var decls []ir.RegDecl
	for i := 0; i < nRegs; i++ {
		name := fmt.Sprintf("r%d", i)
		g.regs = append(g.regs, name)
		decls = append(decls, ir.RegDecl{Name: name, Bits: 32, Init: uint64(rng.Intn(4))})
	}
	p := &ir.Program{
		Name: fmt.Sprintf("rand%d", rng.Intn(1<<30)),
		Regs: decls,
		Root: ir.Body(g.stmts(g.opt.MaxDepth)...),
	}
	if g.opt.WithTables {
		p.Tables = []ir.TableDecl{g.table()}
		root := p.Root.(*ir.Block)
		root.Stmts = append(root.Stmts, &ir.TableApply{Table: "t0"})
	}
	return p.MustBuild()
}

func (g *gen) nextLabel(prefix string) string {
	g.label++
	return fmt.Sprintf("%s%d", prefix, g.label)
}

func (g *gen) stmts(depth int) []ir.Stmt {
	n := 1 + g.rng.Intn(3)
	out := make([]ir.Stmt, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.stmt(depth))
	}
	return out
}

func (g *gen) stmt(depth int) ir.Stmt {
	if depth <= 0 {
		return g.leaf()
	}
	switch g.rng.Intn(4) {
	case 0:
		return ir.If2(g.cond(),
			ir.Blk(g.nextLabel("then"), g.stmts(depth-1)...),
			ir.Blk(g.nextLabel("else"), g.stmts(depth-1)...))
	case 1:
		return ir.If1(g.cond(), ir.Blk(g.nextLabel("arm"), g.stmts(depth-1)...))
	default:
		return g.leaf()
	}
}

func (g *gen) leaf() ir.Stmt {
	switch g.rng.Intn(5) {
	case 0:
		return ir.Set(g.reg(), g.expr(1))
	case 1:
		return ir.AddN(g.reg(), uint64(1+g.rng.Intn(3)))
	case 2:
		return ir.Fwd(uint64(g.rng.Intn(4)))
	case 3:
		return ir.ToCPU()
	default:
		return ir.SetM(g.nextLabel("m"), g.expr(1))
	}
}

func (g *gen) reg() string { return g.regs[g.rng.Intn(len(g.regs))] }

func (g *gen) field() string { return genFields[g.rng.Intn(len(genFields))] }

func (g *gen) expr(depth int) ir.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return ir.C(uint64(g.rng.Intn(256)))
		case 1:
			return ir.F(g.field())
		default:
			return ir.R(g.reg())
		}
	}
	a, b := g.expr(depth-1), g.expr(depth-1)
	if g.rng.Intn(2) == 0 {
		return ir.Add(a, b)
	}
	return ir.Sub(a, b)
}

func (g *gen) cond() ir.Cond {
	ops := []func(a, b ir.Expr) ir.Cmp{ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge}
	base := func() ir.Cond {
		op := ops[g.rng.Intn(len(ops))]
		// Comparisons against small constants keep both arms feasible
		// often enough to be interesting.
		return op(ir.F(g.field()), ir.C(uint64(g.rng.Intn(256))))
	}
	switch g.rng.Intn(5) {
	case 0:
		return ir.And(base(), base())
	case 1:
		return ir.Or(base(), base())
	case 2:
		return ir.Neg(base())
	default:
		return base()
	}
}

func (g *gen) table() ir.TableDecl {
	n := 1 + g.rng.Intn(3)
	entries := make([]ir.Entry, 0, n)
	used := map[uint64]bool{}
	for i := 0; i < n; i++ {
		v := uint64(g.rng.Intn(1024))
		if used[v] {
			continue
		}
		used[v] = true
		entries = append(entries, ir.Entry{
			Match:  []ir.MatchSpec{ir.Exact(v)},
			Action: ir.Blk(g.nextLabel("te"), g.leaf()),
		})
	}
	return ir.TableDecl{
		Name:     "t0",
		Keys:     []ir.Expr{ir.F("dst_port")},
		Entries:  entries,
		Default:  ir.Blk(g.nextLabel("td"), g.leaf()),
		Disjoint: true,
	}
}
