package programs

import "repro/internal/ir"

// S1/S2: the stateful P4-repository programs.

func init() {
	register(Meta{
		Name: "lb (S1)", ID: 1, PaperLoC: 200, Stateful: true, UsesHash: true,
		Build: LB, Workload: defaultWorkload, DisruptMetric: "port_imbalance",
	})
	register(Meta{
		Name: "flowlet (S2)", ID: 2, PaperLoC: 250, Stateful: true, UsesHash: true,
		Build: Flowlet, Workload: defaultWorkload, DisruptMetric: "port_imbalance",
	})
	register(Meta{
		Name: "counter (S12)", ID: 12, PaperLoC: 90, Stateful: true, DeepState: true,
		Build: func() *ir.Program { return Counter(32) }, Workload: defaultWorkload,
		DisruptMetric: "mirror",
	})
	register(Meta{
		Name: "htable (S13)", ID: 13, PaperLoC: 160, Stateful: true, UsesHash: true,
		Build: func() *ir.Program { return HTable(1024, 16) }, Workload: defaultWorkload,
		DisruptMetric: "mirror",
	})
	register(Meta{
		Name: "cmsketch (S14)", ID: 14, PaperLoC: 225, Stateful: true, UsesSketch: true,
		Build: func() *ir.Program { return CMSketch(1024, 16) }, Workload: defaultWorkload,
		DisruptMetric: "mirror",
	})
	register(Meta{
		Name: "bfilter (S15)", ID: 15, PaperLoC: 185, Stateful: true, UsesBloom: true,
		Build: func() *ir.Program { return BFilter(4096, 16) }, Workload: defaultWorkload,
		DisruptMetric: "mirror",
	})
}

// LB (S1, lb.p4) hashes the 5-tuple onto four ports and tracks per-port
// load in registers. Hash collisions concentrate flows on a victim port.
func LB() *ir.Program {
	return mustBuild(&ir.Program{
		Name: "lb",
		Regs: []ir.RegDecl{
			{Name: "load0", Bits: 32}, {Name: "load1", Bits: 32},
			{Name: "load2", Bits: 32}, {Name: "load3", Bits: 32},
		},
		HashTables: []ir.HashTableDecl{{Name: "conn", Size: 256, Seed: 1}},
		// The connection-pinning table encodes which flows exist; a
		// recirculation observably depends on its occupancy (collisions).
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindHash, Name: "conn"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "recirculate"}},
		},
		Root: ir.Body(
			ir.SetM("slot", ir.Hash(1, 4, ir.F("src_ip"), ir.F("dst_ip"), ir.F("src_port"), ir.F("dst_port"), ir.F("proto"))),
			// Connection table pins flows to their slot (SilkRoad-style).
			&ir.HashAccess{
				Store: "conn", Key: ir.FlowKey(), Write: true, Value: ir.M("slot"),
				OnEmpty:   ir.Blk("new_conn", ir.Fwd(0)),
				OnHit:     ir.Blk("pinned", ir.Fwd(0)),
				OnCollide: ir.Blk("conn_collision", ir.Recirc()),
			},
			ir.If2(ir.Eq(ir.M("slot"), ir.C(0)),
				ir.Blk("port0", ir.Add1("load0"), ir.Fwd(0)),
				ir.If2(ir.Eq(ir.M("slot"), ir.C(1)),
					ir.Blk("port1", ir.Add1("load1"), ir.Fwd(1)),
					ir.If2(ir.Eq(ir.M("slot"), ir.C(2)),
						ir.Blk("port2", ir.Add1("load2"), ir.Fwd(2)),
						ir.Blk("port3", ir.Add1("load3"), ir.Fwd(3))))),
		),
	})
}

// Flowlet (S2, flowlet.p4) batches closely spaced packets of a flow into
// flowlets pinned to one port; a gap starts a new flowlet on a fresh port.
func Flowlet() *ir.Program {
	const gapMS = 50
	return mustBuild(&ir.Program{
		Name: "flowlet",
		Regs: []ir.RegDecl{{Name: "flowlet_cnt", Bits: 32}},
		HashTables: []ir.HashTableDecl{
			{Name: "flowlet_port", Size: 1024, Seed: 2},
		},
		// Flowlet pinning state leaks through observable recirculations on
		// collisions, exactly like the LB connection table.
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindHash, Name: "flowlet_port"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "recirculate"}},
		},
		Root: ir.Body(
			ir.SetM("newport", ir.Hash(3, 4, ir.F("src_ip"), ir.F("dst_ip"), ir.F("src_port"), ir.F("dst_port"), ir.F("ipd"))),
			ir.If2(ir.Gt(ir.F("ipd"), ir.C(gapMS)),
				// Gap expired: start a new flowlet, rebalance.
				ir.Blk("new_flowlet",
					ir.Add1("flowlet_cnt"),
					&ir.HashAccess{
						Store: "flowlet_port", Key: ir.FlowKey(), Write: true, Value: ir.M("newport"),
						OnEmpty:   ir.Blk("fresh_flow", ir.FwdE(ir.M("newport"))),
						OnHit:     ir.Blk("rotate_port", ir.FwdE(ir.M("newport"))),
						OnCollide: ir.Blk("flowlet_collision", ir.Recirc(), ir.FwdE(ir.M("newport"))),
					}),
				// Within the gap: stick to the stored port.
				ir.Blk("same_flowlet",
					&ir.HashAccess{
						Store: "flowlet_port", Key: ir.FlowKey(), Dest: "port",
						OnEmpty:   ir.Blk("no_state", ir.FwdE(ir.M("newport"))),
						OnHit:     ir.Blk("sticky", ir.FwdE(ir.M("port"))),
						OnCollide: ir.Blk("sticky_collision", ir.FwdE(ir.M("port"))),
					})),
		),
	})
}

// Counter (S12, counter.p4) counts TCP and UDP packets and mirrors every
// N-th packet of each kind to a collector.
func Counter(n uint64) *ir.Program {
	return mustBuild(&ir.Program{
		Name: "counter",
		Regs: []ir.RegDecl{{Name: "tcp_cnt", Bits: 32}, {Name: "udp_cnt", Bits: 32}},
		// The counters are cross-packet state; whether the N-th packet gets
		// mirrored reveals their value to whoever watches the mirror port.
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{
				{Kind: ir.KindRegister, Name: "tcp_cnt"},
				{Kind: ir.KindRegister, Name: "udp_cnt"},
			},
			Sinks: []ir.SecRef{{Kind: ir.KindAction, Name: "mirror"}},
		},
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoTCP)),
				ir.Blk("tcp",
					ir.Add1("tcp_cnt"),
					ir.If2(ir.Ge(ir.R("tcp_cnt"), ir.C(n)),
						ir.Blk("tcp_sample", ir.Mirror(7), ir.Set("tcp_cnt", ir.C(0))),
						ir.Blk("tcp_fwd", ir.Fwd(1)))),
				ir.Blk("udp",
					ir.Add1("udp_cnt"),
					ir.If2(ir.Ge(ir.R("udp_cnt"), ir.C(n)),
						ir.Blk("udp_sample", ir.Mirror(7), ir.Set("udp_cnt", ir.C(0))),
						ir.Blk("udp_fwd", ir.Fwd(2))))),
		),
	})
}

// HTable (S13, htable.p4) tracks exact per-flow packet counts in a CRC
// hash table of the given size, mirroring every n-th packet of each flow.
func HTable(size int, n uint64) *ir.Program {
	return mustBuild(&ir.Program{
		Name:       "htable",
		HashTables: []ir.HashTableDecl{{Name: "flow_cnt", Size: size, Seed: 5}},
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindHash, Name: "flow_cnt"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "mirror"}},
		},
		Root: ir.Body(
			&ir.HashAccess{
				Store: "flow_cnt", Key: ir.FlowKey(), Write: true, Inc: true,
				Value: ir.C(1), Dest: "cnt",
				OnEmpty: ir.Blk("flow_new", ir.Fwd(1)),
				OnHit: ir.Blk("flow_seen",
					ir.If2(ir.Eq(ir.Mod(ir.M("cnt"), ir.C(n)), ir.C(0)),
						ir.Blk("flow_sample", ir.Mirror(7)),
						ir.Blk("flow_fwd", ir.Fwd(1)))),
				OnCollide: ir.Blk("flow_collision", ir.Recirc(), ir.Fwd(1)),
			},
		),
	})
}

// CMSketch (S14, cmsketch.p4) tracks approximate per-flow counts in a
// count-min sketch, mirroring every n-th packet of each flow.
func CMSketch(cols int, n uint64) *ir.Program {
	return mustBuild(&ir.Program{
		Name:     "cmsketch",
		Sketches: []ir.SketchDecl{{Name: "flow_cnt", Rows: 3, Cols: cols}},
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindSketch, Name: "flow_cnt"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "mirror"}},
		},
		Root: ir.Body(
			&ir.SketchUpdate{Sketch: "flow_cnt", Key: ir.FlowKey(), Inc: ir.C(1), Dest: "est"},
			ir.If2(ir.Eq(ir.Mod(ir.M("est"), ir.C(n)), ir.C(0)),
				ir.Blk("cms_sample", ir.Mirror(7)),
				ir.Blk("cms_fwd", ir.Fwd(1))),
		),
	})
}

// BFilter (S15, bfilter.p4) tests membership in a Bloom filter, counts
// hits, and mirrors a packet to the controller every n hits.
func BFilter(bits int, n uint64) *ir.Program {
	return mustBuild(&ir.Program{
		Name:   "bfilter",
		Regs:   []ir.RegDecl{{Name: "hit_cnt", Bits: 32}},
		Blooms: []ir.BloomDecl{{Name: "seen", Bits: bits, Hashes: 3}},
		// Filter membership (which flows were seen before) is the secret;
		// the sampled mirror reveals it.
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindBloom, Name: "seen"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "mirror"}},
		},
		Root: ir.Body(
			&ir.BloomOp{
				Filter: "seen", Key: ir.FlowKey(), Insert: true,
				OnHit: ir.Blk("bf_hit",
					ir.Add1("hit_cnt"),
					ir.If2(ir.Ge(ir.R("hit_cnt"), ir.C(n)),
						ir.Blk("bf_sample", ir.Mirror(7), ir.Set("hit_cnt", ir.C(0))),
						ir.Blk("bf_fwd", ir.Fwd(1)))),
				OnMiss: ir.Blk("bf_miss", ir.Fwd(1)),
			},
		),
	})
}
