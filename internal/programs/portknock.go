package programs

import (
	"repro/internal/ir"
	"repro/internal/trace"
)

// PortKnock models the BEBA eBPF port-knocking network function of the §6
// offloading case study: a sender must knock on a predefined port sequence
// (1111, 2222, 3333) before SSH connections are admitted. The hotspot
// components — handling of non-SSH and knock traffic — are what
// profile-guided offloading moves onto the switch.
func PortKnock() *ir.Program {
	return mustBuild(&ir.Program{
		Name:       "portknock",
		HashTables: []ir.HashTableDecl{{Name: "knock_state", Size: 1024, Seed: 31}},
		// The canonical IFC example: the knock-progress table is the
		// secret, and whether an SSH packet gets forwarded reveals whether
		// its sender completed the sequence — an implicit flow through the
		// ssh_allow branch.
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindHash, Name: "knock_state"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "forward"}},
		},
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("dst_port"), ir.C(1111)),
				ir.Blk("knock1",
					&ir.HashAccess{Store: "knock_state", Key: []ir.Expr{ir.F("src_ip")}, Write: true, Value: ir.C(1),
						OnEmpty:   ir.Blk("k1_start", ir.Drop()),
						OnHit:     ir.Blk("k1_restart", ir.Drop()),
						OnCollide: ir.Blk("k1_conflict", ir.Drop())}),
				ir.If2(ir.Eq(ir.F("dst_port"), ir.C(2222)),
					ir.Blk("knock2",
						&ir.HashAccess{Store: "knock_state", Key: []ir.Expr{ir.F("src_ip")}, Dest: "st1",
							OnHit: ir.Blk("k2_check",
								ir.If2(ir.Eq(ir.M("st1"), ir.C(1)),
									ir.Blk("k2_advance",
										&ir.HashAccess{Store: "knock_state", Key: []ir.Expr{ir.F("src_ip")}, Write: true, Value: ir.C(2),
											OnHit:     ir.Blk("k2_store", ir.Drop()),
											OnEmpty:   ir.Blk("k2_store_new", ir.Drop()),
											OnCollide: ir.Blk("k2_conflict", ir.Drop())}),
									ir.Blk("k2_reset",
										&ir.HashAccess{Store: "knock_state", Key: []ir.Expr{ir.F("src_ip")}, Write: true, Value: ir.C(0),
											OnHit:     ir.Blk("k2r_store", ir.Drop()),
											OnEmpty:   ir.Blk("k2r_new", ir.Drop()),
											OnCollide: ir.Blk("k2r_conflict", ir.Drop())}))),
							OnEmpty:   ir.Blk("k2_no_state", ir.Drop()),
							OnCollide: ir.Blk("k2_collision", ir.Drop())}),
					ir.If2(ir.Eq(ir.F("dst_port"), ir.C(3333)),
						ir.Blk("knock3",
							&ir.HashAccess{Store: "knock_state", Key: []ir.Expr{ir.F("src_ip")}, Dest: "st2",
								OnHit: ir.Blk("k3_check",
									ir.If2(ir.Eq(ir.M("st2"), ir.C(2)),
										ir.Blk("k3_open",
											&ir.HashAccess{Store: "knock_state", Key: []ir.Expr{ir.F("src_ip")}, Write: true, Value: ir.C(3),
												OnHit:     ir.Blk("k3_store", ir.Drop()),
												OnEmpty:   ir.Blk("k3_new", ir.Drop()),
												OnCollide: ir.Blk("k3_conflict", ir.Drop())}),
										ir.Blk("k3_reset", ir.Drop()))),
								OnEmpty:   ir.Blk("k3_no_state", ir.Drop()),
								OnCollide: ir.Blk("k3_collision", ir.Drop())}),
						ir.If2(ir.Eq(ir.F("dst_port"), ir.C(22)),
							ir.Blk("ssh_gate",
								&ir.HashAccess{Store: "knock_state", Key: []ir.Expr{ir.F("src_ip")}, Dest: "st3",
									OnHit: ir.Blk("ssh_check",
										ir.If2(ir.Eq(ir.M("st3"), ir.C(3)),
											ir.Blk("ssh_allow", ir.Fwd(1)),
											ir.Blk("ssh_deny", ir.Drop()))),
									OnEmpty:   ir.Blk("ssh_unknocked", ir.Drop()),
									OnCollide: ir.Blk("ssh_collision", ir.Drop())}),
							// The hotspot: ordinary traffic just forwarded.
							ir.Blk("non_ssh_forward", ir.Fwd(1)))))),
		),
	})
}

func init() {
	register(Meta{
		Name: "portknock (eBPF)", ID: 16, PaperLoC: 180, Stateful: true, UsesHash: true,
		Build: PortKnock, DisruptMetric: "drop",
		Workload: func(seed int64) trace.GenOptions {
			return trace.GenOptions{Seed: seed, Packets: 20000}
		},
	})
}
