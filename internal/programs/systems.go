package programs

import (
	"repro/internal/ir"
	"repro/internal/trace"
)

// The seven research data-plane systems (S5–S11). Each model keeps the
// state structure and decision logic the paper's analysis exercises; see
// DESIGN.md for the per-system fidelity notes.

func init() {
	register(Meta{
		Name: "Blink (S5)", ID: 5, PaperLoC: 928, Stateful: true, UsesHash: true, DeepState: true,
		Build: Blink, DisruptMetric: "port_imbalance",
		Workload: func(seed int64) trace.GenOptions {
			return trace.GenOptions{Seed: seed, Packets: 20000, RetransRate: 0.02}
		},
	})
	register(Meta{
		Name: "NetCache (S6)", ID: 6, PaperLoC: 674, Stateful: true, UsesHash: true, UsesBloom: true, UsesSketch: true, DeepState: true,
		Build: NetCache, BackendPort: 5, DisruptMetric: "backend",
		Workload: func(seed int64) trace.GenOptions {
			return trace.GenOptions{Seed: seed, Packets: 20000, KeySpace: 4096, KeyZipfS: 1.3, WriteRatio: 0.05}
		},
	})
	register(Meta{
		Name: "*Flow (S7)", ID: 7, PaperLoC: 1728, Stateful: true, UsesHash: true,
		Build: StarFlow, BackendPort: 5, DisruptMetric: "backend",
		Workload: defaultWorkload,
	})
	register(Meta{
		Name: "p40f (S8)", ID: 8, PaperLoC: 884, Stateful: true, UsesBloom: true,
		Build: P40f, BackendPort: 5, DisruptMetric: "backend",
		Workload: defaultWorkload,
	})
	register(Meta{
		Name: "NetHCF (S9)", ID: 9, PaperLoC: 822, Stateful: true, UsesHash: true,
		Build: NetHCF, DisruptMetric: "cpu",
		Workload: func(seed int64) trace.GenOptions {
			return trace.GenOptions{Seed: seed, Packets: 20000, TTLSpoofRate: 0.01}
		},
	})
	register(Meta{
		Name: "Poise (S10)", ID: 10, PaperLoC: 842, Stateful: true, UsesHash: true, UsesBloom: true,
		Build: Poise, DisruptMetric: "digest",
		Workload: func(seed int64) trace.GenOptions {
			return trace.GenOptions{Seed: seed, Packets: 20000, CtxRate: 0.05}
		},
	})
	register(Meta{
		Name: "NetWarden (S11)", ID: 11, PaperLoC: 1332, Stateful: true, UsesSketch: true, DeepState: true,
		Build: NetWarden, BackendPort: 5, DisruptMetric: "backend",
		Workload: func(seed int64) trace.GenOptions {
			return trace.GenOptions{Seed: seed, Packets: 20000, DupAckRate: 0.01, WideIPDRate: 0.005}
		},
	})
}

// Blink (S5) detects remote link failures from TCP retransmissions: it
// samples flows into a monitoring table, tracks retransmissions in a
// sliding window, and activates a round-robin backup path once more than 32
// monitored flows retransmit (the 64-flow / 32-threshold structure of the
// original). The reroute block is the deep, low-probability edge case.
func Blink() *ir.Program {
	return mustBuild(&ir.Program{
		Name: "blink",
		Regs: []ir.RegDecl{
			{Name: "last_seq", Bits: 32},
			{Name: "seen", Bits: 1},
			{Name: "retrans_cnt", Bits: 32},
			{Name: "win_cnt", Bits: 32},
			{Name: "backup_rr", Bits: 8},
			{Name: "rerouted", Bits: 1},
		},
		RegArrays:  []ir.RegArrayDecl{{Name: "backup_paths", Size: 2, Bits: 8}},
		HashTables: []ir.HashTableDecl{{Name: "monitored", Size: 64, Seed: 7}},
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoTCP)),
				ir.Blk("tcp_path",
					// Sample the flow into the 64-entry monitoring table.
					&ir.HashAccess{
						Store: "monitored", Key: ir.FlowKey(), Write: true, Value: ir.F("seq"),
						OnEmpty: ir.Blk("monitor_new", ir.Fwd(1)),
						OnHit: ir.Blk("monitor_hit",
							// Retransmission: same seq as last time.
							ir.If2(ir.And(ir.Eq(ir.R("seen"), ir.C(1)), ir.Eq(ir.F("seq"), ir.R("last_seq"))),
								ir.Blk("retransmission", ir.AddN("retrans_cnt", 1)),
								ir.Blk("fresh_seq", ir.Fwd(1)))),
						OnCollide: ir.Blk("monitor_evict", ir.Fwd(1)),
					},
					ir.Set("last_seq", ir.F("seq")),
					ir.Set("seen", ir.C(1)),
					// Sliding window: every 64 packets the counts decay.
					ir.AddN("win_cnt", 1),
					ir.If1(ir.Ge(ir.R("win_cnt"), ir.C(64)),
						ir.Blk("window_slide",
							ir.Set("win_cnt", ir.C(0)),
							ir.Set("retrans_cnt", ir.C(0)))),
					// Failure inference: >32 retransmissions in the window.
					ir.If2(ir.Gt(ir.R("retrans_cnt"), ir.C(32)),
						ir.Blk("reroute",
							&ir.ArrayRead{Array: "backup_paths", Index: ir.R("backup_rr"), Dest: "bp"},
							ir.Set("backup_rr", ir.Mod(ir.Add(ir.R("backup_rr"), ir.C(1)), ir.C(2))),
							ir.Set("rerouted", ir.C(1)),
							ir.Digest(),
							ir.FwdE(ir.Add(ir.M("bp"), ir.C(2)))),
						ir.Blk("primary",
							ir.If2(ir.Eq(ir.R("rerouted"), ir.C(1)),
								ir.Blk("on_backup", ir.Fwd(2)),
								ir.Blk("on_primary", ir.Fwd(1)))))),
				ir.Blk("non_tcp", ir.Fwd(1))),
		),
	})
}

// NetCache (S6) serves hot key/value pairs from the switch. Reads hit the
// in-switch cache; misses go to the backend and bump a hot-key sketch that
// eventually reports new hot keys to the controller. Writes invalidate.
func NetCache() *ir.Program {
	extra := append(append([]ir.Field(nil), ir.StdFields...),
		ir.Field{Name: "key", Bits: 32}, ir.Field{Name: "op", Bits: 8})
	return mustBuild(&ir.Program{
		Name:       "netcache",
		Fields:     extra,
		Regs:       []ir.RegDecl{{Name: "miss_cnt", Bits: 32}},
		HashTables: []ir.HashTableDecl{{Name: "cache", Size: 1024, Seed: 9}},
		Sketches:   []ir.SketchDecl{{Name: "hotstats", Rows: 3, Cols: 2048}},
		Blooms:     []ir.BloomDecl{{Name: "reported", Bits: 4096, Hashes: 3}},
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("op"), ir.C(0)),
				// Read path.
				ir.Blk("read",
					&ir.HashAccess{
						Store: "cache", Key: []ir.Expr{ir.F("key")},
						OnHit: ir.Blk("cache_hit", ir.Fwd(1)),
						OnEmpty: ir.Blk("cache_miss",
							ir.AddN("miss_cnt", 1),
							// Overload telemetry: every 2^20th miss raises
							// an alarm digest (the paper's "every millionth
							// packet" deep-block example).
							ir.If1(ir.Ge(ir.R("miss_cnt"), ir.C(1<<20)),
								ir.Blk("overload_alarm", ir.Digest(), ir.Set("miss_cnt", ir.C(0)))),
							&ir.SketchUpdate{Sketch: "hotstats", Key: []ir.Expr{ir.F("key")}, Inc: ir.C(1), Dest: "heat"},
							ir.If1(ir.Ge(ir.M("heat"), ir.C(128)),
								ir.Blk("hot_key",
									&ir.BloomOp{
										Filter: "reported", Key: []ir.Expr{ir.F("key")}, Insert: true,
										OnMiss: ir.Blk("hot_report", ir.Digest()),
										OnHit:  ir.Blk("already_reported", &ir.Action{Kind: ir.ActNoOp}),
									})),
							ir.ToBackend(5)),
						OnCollide: ir.Blk("cache_conflict", ir.ToBackend(5)),
					}),
				// Write path: write-allocate into the cache (modelling the
				// controller's population of hot items) and write through
				// to the store.
				ir.Blk("write",
					&ir.HashAccess{
						Store: "cache", Key: []ir.Expr{ir.F("key")}, Write: true, Value: ir.F("key"),
						OnHit:     ir.Blk("write_update", ir.ToBackend(5)),
						OnEmpty:   ir.Blk("write_allocate", ir.ToBackend(5)),
						OnCollide: ir.Blk("write_conflict", ir.ToBackend(5)),
					})),
		),
	})
}

// StarFlow (S7) collects per-flow telemetry into grouped packet vectors;
// full buffers and collisions evict records to the analytics backend.
func StarFlow() *ir.Program {
	return mustBuild(&ir.Program{
		Name:       "starflow",
		Regs:       []ir.RegDecl{{Name: "buf_used", Bits: 32}},
		HashTables: []ir.HashTableDecl{{Name: "gpv", Size: 2048, Seed: 13}},
		Root: ir.Body(
			&ir.HashAccess{
				Store: "gpv", Key: ir.FlowKey(), Write: true, Inc: true, Value: ir.C(1), Dest: "cnt",
				OnEmpty: ir.Blk("gpv_alloc",
					ir.AddN("buf_used", 1),
					ir.If2(ir.Ge(ir.R("buf_used"), ir.C(2048)),
						ir.Blk("buffer_full", ir.ToBackend(5), ir.Set("buf_used", ir.C(0))),
						ir.Blk("gpv_track", ir.Fwd(1)))),
				OnHit: ir.Blk("gpv_append",
					// A full vector (64 packet records) flushes.
					ir.If2(ir.Eq(ir.Mod(ir.M("cnt"), ir.C(64)), ir.C(0)),
						ir.Blk("gpv_flush", ir.ToBackend(5)),
						ir.Blk("gpv_store", ir.Fwd(1)))),
				// Collision: evict the resident vector to the backend.
				OnCollide: ir.Blk("gpv_evict", ir.ToBackend(5), ir.Fwd(1)),
				Evict:     true,
			},
		),
	})
}

// P40f (S8) fingerprints operating systems from SYN signatures; unknown
// signatures and all subsequent packets of their flows are escalated to the
// signature database.
func P40f() *ir.Program {
	return mustBuild(&ir.Program{
		Name:   "p40f",
		Blooms: []ir.BloomDecl{{Name: "unknown_flows", Bits: 8192, Hashes: 3}},
		Tables: []ir.TableDecl{{
			Name: "signatures",
			Keys: []ir.Expr{ir.F("ttl"), ir.F("pkt_len")},
			Entries: []ir.Entry{
				{Match: []ir.MatchSpec{ir.Range(30, 64), ir.Range(60, 1500)}, Action: ir.Blk("os_linux", ir.SetM("os", ir.C(1)), ir.Fwd(1))},
				{Match: []ir.MatchSpec{ir.Range(65, 128), ir.Range(60, 1500)}, Action: ir.Blk("os_windows", ir.SetM("os", ir.C(2)), ir.Fwd(1))},
				{Match: []ir.MatchSpec{ir.Range(129, 255), ir.Range(60, 1500)}, Action: ir.Blk("os_solaris", ir.SetM("os", ir.C(3)), ir.Fwd(1))},
			},
			Default: ir.Blk("unknown_sig",
				&ir.BloomOp{Filter: "unknown_flows", Key: ir.FlowKey(), Insert: true,
					OnMiss: ir.Blk("mark_unknown", &ir.Action{Kind: ir.ActNoOp}),
					OnHit:  ir.Blk("still_unknown", &ir.Action{Kind: ir.ActNoOp})},
				ir.ToBackend(5)),
			Disjoint: true,
		}},
		Root: ir.Body(
			ir.If2(ir.FlagSet(ir.FlagSYN),
				ir.Blk("syn_fingerprint", &ir.TableApply{Table: "signatures"}),
				ir.Blk("non_syn",
					// Flows with unknown signatures keep hitting the DB.
					&ir.BloomOp{Filter: "unknown_flows", Key: ir.FlowKey(),
						OnHit:  ir.Blk("db_followup", ir.ToBackend(5)),
						OnMiss: ir.Blk("known_flow", ir.Fwd(1))})),
		),
	})
}

// NetHCF (S9) filters spoofed traffic by checking hop counts (derived from
// TTL) against a learned per-source table; misses punt to the control plane
// for learning, mismatches count towards spoof detection.
func NetHCF() *ir.Program {
	return mustBuild(&ir.Program{
		Name:       "nethcf",
		Regs:       []ir.RegDecl{{Name: "spoof_cnt", Bits: 32}},
		HashTables: []ir.HashTableDecl{{Name: "ip2hc", Size: 4096, Seed: 17}},
		Root: ir.Body(
			// Normalize TTL to its initial class (64/128/255) remainder.
			ir.SetM("hc", ir.BitAnd(ir.F("ttl"), ir.C(63))),
			&ir.HashAccess{
				Store: "ip2hc", Key: []ir.Expr{ir.F("src_ip")}, Write: true, Value: ir.M("hc"), Dest: "stored",
				OnEmpty: ir.Blk("hc_learn", ir.ToCPU(), ir.Fwd(1)),
				OnHit: ir.Blk("hc_check",
					ir.If2(ir.Eq(ir.M("stored"), ir.M("hc")),
						ir.Blk("hc_match", ir.Fwd(1)),
						ir.Blk("hc_mismatch",
							ir.AddN("spoof_cnt", 1),
							ir.If2(ir.Ge(ir.R("spoof_cnt"), ir.C(16)),
								ir.Blk("filter_mode", ir.Drop()),
								ir.Blk("watch_mode", ir.ToCPU(), ir.Fwd(1)))))),
				OnCollide: ir.Blk("hc_conflict", ir.ToCPU(), ir.Fwd(1)),
			},
		),
	})
}

// Poise (S10) enforces context-aware policies: context packets from
// clients update a per-source context table (digesting new contexts to the
// controller); data packets are checked against the stored context, and
// hash collisions recirculate until the control plane resolves them.
func Poise() *ir.Program {
	extra := append(append([]ir.Field(nil), ir.StdFields...),
		ir.Field{Name: "ctx", Bits: 8})
	return mustBuild(&ir.Program{
		Name:       "poise",
		Fields:     extra,
		HashTables: []ir.HashTableDecl{{Name: "ctx_table", Size: 1024, Seed: 21}},
		Blooms:     []ir.BloomDecl{{Name: "enrolled", Bits: 4096, Hashes: 3}},
		Root: ir.Body(
			ir.If2(ir.Ne(ir.F("ctx"), ir.C(0)),
				// Context packet: install/update client context and enroll
				// the client.
				ir.Blk("ctx_update",
					&ir.BloomOp{Filter: "enrolled", Key: []ir.Expr{ir.F("src_ip")}, Insert: true,
						OnMiss: ir.Blk("enroll", &ir.Action{Kind: ir.ActNoOp}),
						OnHit:  ir.Blk("enrolled_already", &ir.Action{Kind: ir.ActNoOp})},
					&ir.HashAccess{
						Store: "ctx_table", Key: []ir.Expr{ir.F("src_ip")}, Write: true, Value: ir.F("ctx"),
						OnEmpty:   ir.Blk("ctx_new", ir.Digest(), ir.Fwd(1)),
						OnHit:     ir.Blk("ctx_refresh", ir.Fwd(1)),
						OnCollide: ir.Blk("ctx_collision", ir.Recirc(), ir.Digest()),
					}),
				// Data packet: policy decision on the stored context.
				ir.Blk("data_packet",
					&ir.HashAccess{
						Store: "ctx_table", Key: []ir.Expr{ir.F("src_ip")}, Dest: "cctx",
						OnEmpty: ir.Blk("no_ctx", ir.ToCPU(), ir.Drop()),
						OnHit: ir.Blk("policy_check",
							ir.If2(ir.Ge(ir.M("cctx"), ir.C(3)),
								ir.Blk("ctx_allow", ir.Fwd(1)),
								ir.Blk("ctx_deny", ir.Drop()))),
						OnCollide: ir.Blk("data_collision", ir.Recirc()),
					})),
		),
	})
}

// NetWarden (S11) defends against covert channels: abnormal inter-packet
// delays and duplicate ACKs are diverted to the software defense slowpath,
// and suspicious header values are rewritten.
func NetWarden() *ir.Program {
	return mustBuild(&ir.Program{
		Name: "netwarden",
		Regs: []ir.RegDecl{
			{Name: "last_ack", Bits: 32},
			{Name: "dup_cnt", Bits: 32},
			{Name: "buffered", Bits: 32},
		},
		Sketches: []ir.SketchDecl{{Name: "ipd_stats", Rows: 3, Cols: 1024}},
		Root: ir.Body(
			// Timing channel: IPDs above the covert threshold go to the
			// slowpath for reshaping.
			ir.If2(ir.Gt(ir.F("ipd"), ir.C(1000)),
				ir.Blk("timing_suspect",
					&ir.SketchUpdate{Sketch: "ipd_stats", Key: ir.FlowKey(), Inc: ir.C(1)},
					ir.ToBackend(5)),
				ir.Blk("timing_ok",
					// Storage channel: odd TTLs are rewritten in place.
					ir.If1(ir.Gt(ir.F("ttl"), ir.C(128)),
						ir.Blk("ttl_rewrite", ir.SetM("new_ttl", ir.C(64)))),
					// Loss signals: duplicate ACKs buffer packets on the
					// slowpath perpetually.
					ir.If2(ir.And(ir.FlagSet(ir.FlagACK), ir.Eq(ir.F("ack"), ir.R("last_ack"))),
						ir.Blk("dup_ack",
							ir.AddN("dup_cnt", 1),
							ir.AddN("buffered", 1),
							ir.ToBackend(5)),
						ir.Blk("fresh_ack",
							ir.Set("last_ack", ir.F("ack")),
							ir.Fwd(1))))),
		),
	})
}
