// Package programs contains the evaluation program zoo: the eleven
// stateless programs Vera is evaluated on, the four P4-repository stateful
// programs (S1–S4), the seven research data-plane systems (S5–S11), the
// four stateful microbenchmarks (S12–S15), and the eBPF port-knocking NF of
// the §6 offloading case study — all expressed in the repository's IR.
package programs

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/ir"
	"repro/internal/trace"
)

// Meta describes one zoo entry.
type Meta struct {
	// Name as used in the paper's tables (e.g. "Blink (S5)").
	Name string
	// ID is the S-number, 0 for the Vera stateless set.
	ID int
	// PaperLoC is the line count the paper's Table 1 reports.
	PaperLoC int
	// VeraSet marks programs in the Vera stateless comparison set.
	VeraSet bool
	// Stateful / UsesHash / UsesBloom / UsesSketch / DeepState mirror the
	// paper's Table 1 markers.
	Stateful   bool
	UsesHash   bool
	UsesBloom  bool
	UsesSketch bool
	DeepState  bool

	// Build constructs a fresh program instance.
	Build func() *ir.Program

	// Workload returns the generator options for the system's default
	// traffic (CAIDA-like unless the paper used a custom trace).
	Workload func(seed int64) trace.GenOptions

	// BackendPort is the port wired to a backend server, if any.
	BackendPort uint64

	// DisruptMetric names the Figure 10/11 metric for this system.
	DisruptMetric string
}

var registry []Meta

func register(m Meta) {
	registry = append(registry, m)
}

// All returns every zoo entry (stateless first, then S1–S15).
func All() []Meta {
	out := append([]Meta(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		if (out[i].ID == 0) != (out[j].ID == 0) {
			return out[i].ID == 0
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Stateless returns the Vera comparison set (Table 1, upper half).
func Stateless() []Meta {
	var out []Meta
	for _, m := range All() {
		if m.VeraSet {
			out = append(out, m)
		}
	}
	return out
}

// Systems returns S1..S15 in order.
func Systems() []Meta {
	var out []Meta
	for _, m := range All() {
		if m.ID > 0 {
			out = append(out, m)
		}
	}
	return out
}

// ByName finds a zoo entry.
func ByName(name string) (Meta, bool) {
	for _, m := range registry {
		if m.Name == name {
			return m, true
		}
	}
	return Meta{}, false
}

// SID finds a system by its S-number.
func SID(id int) (Meta, bool) {
	for _, m := range registry {
		if m.ID == id {
			return m, true
		}
	}
	return Meta{}, false
}

// Names lists all registered names.
func Names() []string {
	var out []string
	for _, m := range All() {
		out = append(out, m.Name)
	}
	return out
}

// defaultWorkload is the CAIDA-like default.
func defaultWorkload(seed int64) trace.GenOptions {
	return trace.GenOptions{Seed: seed, Packets: 20000}
}

// OracleFor builds a trace-backed oracle using the system's default
// workload.
func OracleFor(m Meta, seed int64) dist.Oracle {
	return trace.NewQueryProcessor(trace.Generate(m.Workload(seed)))
}

func mustBuild(p *ir.Program) *ir.Program {
	q, err := p.Build()
	if err != nil {
		panic(fmt.Sprintf("programs: %s: %v", p.Name, err))
	}
	return q
}
