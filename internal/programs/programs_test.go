package programs

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	if len(Stateless()) != 11 {
		t.Fatalf("want 11 stateless programs, got %d", len(Stateless()))
	}
	ids := map[int]bool{}
	for _, m := range Systems() {
		ids[m.ID] = true
	}
	for want := 1; want <= 16; want++ {
		if !ids[want] {
			t.Errorf("missing S%d", want)
		}
	}
}

func TestAllProgramsBuildAndValidate(t *testing.T) {
	for _, m := range All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			p := m.Build()
			if p == nil || len(p.Nodes()) == 0 {
				t.Fatal("empty program")
			}
			if p.Stateful() != (m.Stateful || m.Name == "switch.p4") {
				// switch.p4 carries a token register but is classified
				// stateless in the paper's table.
				if m.Name != "switch.p4" {
					t.Fatalf("stateful flag mismatch: prog=%v meta=%v", p.Stateful(), m.Stateful)
				}
			}
			if m.UsesHash && len(p.HashTables) == 0 {
				t.Fatal("meta says hash tables but program has none")
			}
			if m.UsesBloom && len(p.Blooms) == 0 {
				t.Fatal("meta says bloom filters but program has none")
			}
			if m.UsesSketch && len(p.Sketches) == 0 {
				t.Fatal("meta says sketches but program has none")
			}
		})
	}
}

func TestAllProgramsRunConcretely(t *testing.T) {
	for _, m := range All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			prog := m.Build()
			sw := dut.New(prog, dut.Config{})
			tr := trace.Generate(m.Workload(1))
			visited := map[int]bool{}
			sw.VisitHook = func(id int) { visited[id] = true }
			for i := 0; i < 2000 && i < tr.Len(); i++ {
				sw.Process(&tr.Packets[i])
			}
			if len(visited) < 2 {
				t.Fatalf("only %d nodes visited under normal traffic", len(visited))
			}
		})
	}
}

func TestAllProgramsProfileWithoutError(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep skipped in -short")
	}
	for _, m := range All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			prog := m.Build()
			prof, err := core.ProbProf(prog, nil, core.Options{
				Seed: 1, MaxIters: 6, Timeout: 20 * time.Second,
				SampleBudget: 4000, MaxPaths: 300000,
			})
			if err != nil {
				t.Fatalf("profile error: %v", err)
			}
			if prof.Coverage < 0.5 {
				t.Fatalf("coverage %.2f too low", prof.Coverage)
			}
		})
	}
}

func TestBlinkRerouteIsDeepEdgeCase(t *testing.T) {
	prog := Blink()
	oracle := OracleFor(mustMeta(t, "Blink (S5)"), 42)
	prof, err := core.ProbProf(prog, oracle, core.Options{Seed: 1, MaxIters: 5, SampleBudget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := prof.ByLabel("reroute")
	if !ok {
		t.Fatal("reroute block missing from profile")
	}
	if rr.Source != core.SrcTelescope {
		t.Fatalf("reroute should be telescoped, got %v", rr.Source)
	}
	// Retransmissions are ~2%: the 33-repetition estimate is astronomically
	// small but strictly positive.
	if rr.P.IsZero() || rr.P.Log10() > -20 {
		t.Fatalf("reroute probability implausible: %v", rr.P)
	}
	// And it should rank among the rarest blocks.
	rank := -1
	for i, n := range prof.Nodes {
		if n.ID == rr.ID {
			rank = i
		}
	}
	if rank > len(prof.Nodes)/4 {
		t.Fatalf("reroute rank %d not in the rarest quartile", rank)
	}
}

func TestNetCacheHitDominatesUnderZipf(t *testing.T) {
	m := mustMeta(t, "NetCache (S6)")
	prog := m.Build()
	sw := dut.New(prog, dut.Config{})
	hits, misses := 0, 0
	sw.VisitHook = func(id int) {
		switch prog.Node(id).Label {
		case "cache_hit":
			hits++
		case "cache_miss":
			misses++
		}
	}
	tr := trace.Generate(m.Workload(7))
	for i := range tr.Packets {
		sw.Process(&tr.Packets[i])
	}
	// Write-allocate populates hot keys; Zipf reads then hit in-switch.
	if hits <= misses {
		t.Fatalf("cache should mostly hit under Zipf: hits=%d misses=%d", hits, misses)
	}
}

func mustMeta(t *testing.T, name string) Meta {
	t.Helper()
	m, ok := ByName(name)
	if !ok {
		t.Fatalf("program %q not registered", name)
	}
	return m
}

func TestEpochWorkloadsDiffer(t *testing.T) {
	m := mustMeta(t, "Blink (S5)")
	a := trace.Generate(m.Workload(1))
	b := trace.Generate(m.Workload(2))
	if a.Packets[100].SrcIP == b.Packets[100].SrcIP && a.Packets[100].Seq == b.Packets[100].Seq {
		t.Fatal("different seeds should give different traffic")
	}
}
