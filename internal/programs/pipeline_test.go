package programs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/ir"
	"repro/internal/trace"
)

// The §6 multi-device direction: an ACL switch feeding a counter switch
// over port 1, composed into one monolithic program and analyzed jointly.
func TestComposedPipelineEndToEnd(t *testing.T) {
	up := ACL() // forwards allowed traffic to port 1
	down := Counter(8)

	pipe, err := ir.ComposePipeline("acl-then-counter", up, down, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Concretely: allowed packets traverse both stages; denied ones stop.
	sw := dut.New(pipe, dut.Config{})
	visited := map[string]bool{}
	sw.VisitHook = func(id int) { visited[pipe.Node(id).Label] = true }

	allowed := trace.Packet{DstPort: 80, Proto: ir.ProtoTCP, Len: 100}
	sw.Process(&allowed)
	if !visited["up.allow_http"] || !visited["wire"] || !visited["dn.tcp"] {
		t.Fatalf("allowed packet should traverse both stages: %v", visited)
	}

	visited = map[string]bool{}
	denied := trace.Packet{DstPort: 22, Proto: ir.ProtoTCP, Len: 100}
	sw.Process(&denied)
	if visited["wire"] {
		t.Fatal("denied packet must not reach the downstream stage")
	}

	// Downstream state accumulates only for traffic crossing the wire.
	if sw.Reg("dn_tcp_cnt") != 1 {
		t.Fatalf("dn_tcp_cnt = %d, want 1", sw.Reg("dn_tcp_cnt"))
	}

	// And the composed program profiles like any other.
	prof, err := core.ProbProf(pipe, nil, core.Options{Seed: 1, MaxIters: 5, SampleBudget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	wire, ok := prof.ByLabel("wire")
	if !ok || wire.P.IsZero() {
		t.Fatalf("wire block unprofiled: %+v", wire)
	}
	deny, _ := prof.ByLabel("up.deny_ssh")
	if !deny.P.Less(wire.P) {
		t.Fatalf("deny (%v) should be rarer than the wire (%v)", deny.P, wire.P)
	}
}

func TestComposedDeepBlockTelescopes(t *testing.T) {
	// The downstream deep guard is still telescoped through the pipeline.
	up := CopyToCPU()
	down := Counter(64)
	pipe, err := ir.ComposePipeline("cpu-then-counter", up, down, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := core.ProbProf(pipe, nil, core.Options{Seed: 1, MaxIters: 5, DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := prof.ByLabel("dn.tcp_sample")
	if !ok {
		t.Fatal("downstream sample block missing")
	}
	if ts.Source != core.SrcTelescope || ts.P.IsZero() {
		t.Fatalf("composed deep block should telescope: %+v", ts)
	}
}
