package programs

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/trace"
)

// The eleven stateless forwarding programs of the Vera comparison
// (paper Table 1, upper half). These exercise parsing-style branching and
// match/action tables but keep no cross-packet state.

func init() {
	register(Meta{Name: "copy-to-cpu", VeraSet: true, PaperLoC: 70, Build: CopyToCPU, Workload: defaultWorkload, DisruptMetric: "cpu"})
	register(Meta{Name: "resubmit", VeraSet: true, PaperLoC: 70, Build: Resubmit, Workload: defaultWorkload, DisruptMetric: "recirc"})
	register(Meta{Name: "encap", VeraSet: true, PaperLoC: 130, Build: Encap, Workload: defaultWorkload})
	register(Meta{Name: "simple_router", VeraSet: true, PaperLoC: 145, Build: SimpleRouter, Workload: defaultWorkload})
	register(Meta{Name: "NAT (S3)", ID: 3, VeraSet: true, PaperLoC: 290, Build: NAT, DisruptMetric: "cpu",
		Workload: func(seed int64) trace.GenOptions {
			// Normal traffic comes from the mapped internal block.
			return trace.GenOptions{Seed: seed, Packets: 20000,
				SrcIPBase: 0x0A000001, SrcIPSpan: 8, SrcPortBase: 5000, SrcPortSpan: 64}
		}})
	register(Meta{Name: "ACL (S4)", ID: 4, VeraSet: true, PaperLoC: 200, Build: ACL, Workload: defaultWorkload, DisruptMetric: "cpu"})
	register(Meta{Name: "Axon", VeraSet: true, PaperLoC: 100, Build: Axon, Workload: defaultWorkload})
	register(Meta{Name: "NDP switch", VeraSet: true, PaperLoC: 210, Build: NDP, Workload: defaultWorkload})
	register(Meta{Name: "Beamer mux", VeraSet: true, PaperLoC: 340, Build: Beamer, Workload: defaultWorkload})
	register(Meta{Name: "P4xos", VeraSet: true, PaperLoC: 260, Build: P4xos, Workload: defaultWorkload})
	register(Meta{Name: "switch.p4", VeraSet: true, PaperLoC: 6000, Build: SwitchP4, Workload: defaultWorkload})
}

// CopyToCPU punts TCP SYNs to the control plane while forwarding a copy.
func CopyToCPU() *ir.Program {
	return mustBuild(&ir.Program{
		Name: "copy-to-cpu",
		Root: ir.Body(
			ir.If1(ir.FlagSet(ir.FlagSYN), ir.Blk("to_cpu", ir.ToCPU())),
			ir.Blk("fwd", ir.Fwd(1)),
		),
	})
}

// Resubmit recirculates packets with a marker TTL once.
func Resubmit() *ir.Program {
	return mustBuild(&ir.Program{
		Name: "resubmit",
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("ttl"), ir.C(255)),
				ir.Blk("resubmit", ir.Recirc(), ir.Fwd(1)),
				ir.Blk("direct", ir.Fwd(1))),
		),
	})
}

// Encap pushes a VXLAN-style tunnel header for traffic to the tunnel port.
func Encap() *ir.Program {
	return mustBuild(&ir.Program{
		Name: "encap",
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("dst_port"), ir.C(4789)),
				ir.Blk("tunnel",
					ir.SetM("vni", ir.BitAnd(ir.F("dst_ip"), ir.C(0xFFFFFF))),
					ir.Fwd(2)),
				ir.Blk("plain", ir.Fwd(1))),
		),
	})
}

// SimpleRouter is the classic ipv4 LPM + TTL check pipeline.
func SimpleRouter() *ir.Program {
	return mustBuild(&ir.Program{
		Name: "simple_router",
		Tables: []ir.TableDecl{{
			Name: "ipv4_lpm",
			Keys: []ir.Expr{ir.F("dst_ip")},
			Entries: []ir.Entry{
				{Match: []ir.MatchSpec{ir.Range(0x0A000000, 0x0AFFFFFF)}, Action: ir.Blk("net10", ir.Fwd(1))},
				{Match: []ir.MatchSpec{ir.Range(0xC0A80000, 0xC0A8FFFF)}, Action: ir.Blk("net192", ir.Fwd(2))},
				{Match: []ir.MatchSpec{ir.Range(0xAC100000, 0xAC1FFFFF)}, Action: ir.Blk("net172", ir.Fwd(3))},
			},
			Default:  ir.Blk("lpm_miss", ir.Drop()),
			Disjoint: true,
		}},
		Root: ir.Body(
			ir.If2(ir.Le(ir.F("ttl"), ir.C(1)),
				ir.Blk("ttl_expired", ir.Drop()),
				ir.Blk("route", &ir.TableApply{Table: "ipv4_lpm"})),
		),
	})
}

// NAT maps internal/external addresses; unmapped flows go to the control
// plane for mapping installation (S3; the first-packet punt is its
// adversarial edge case).
func NAT() *ir.Program {
	// Installed mappings cover the internal address/port block; traffic
	// from outside the block (new flows) goes to the control plane.
	entries := make([]ir.Entry, 0, 8)
	for i := 0; i < 8; i++ {
		entries = append(entries, ir.Entry{
			Match: []ir.MatchSpec{
				ir.Exact(uint64(0x0A000001 + i)),
				ir.Range(5000, 5063),
			},
			Action: ir.Blk(fmt.Sprintf("rewrite%d", i),
				ir.SetM("new_src", ir.C(uint64(0xC0000001+i))),
				ir.Fwd(1)),
		})
	}
	return mustBuild(&ir.Program{
		Name: "nat",
		Tables: []ir.TableDecl{{
			Name:     "nat_map",
			Keys:     []ir.Expr{ir.F("src_ip"), ir.F("src_port")},
			Entries:  entries,
			Default:  ir.Blk("nat_miss", ir.ToCPU()),
			Disjoint: true,
		}},
		Root: ir.Body(&ir.TableApply{Table: "nat_map"}),
	})
}

// ACL filters by address/port; unmatched packets escalate to the control
// plane (S4).
func ACL() *ir.Program {
	return mustBuild(&ir.Program{
		Name: "acl",
		Tables: []ir.TableDecl{{
			Name: "acl",
			Keys: []ir.Expr{ir.F("dst_port"), ir.F("proto")},
			Entries: []ir.Entry{
				{Match: []ir.MatchSpec{ir.Exact(22), ir.Exact(ir.ProtoTCP)}, Action: ir.Blk("deny_ssh", ir.Drop())},
				{Match: []ir.MatchSpec{ir.Exact(80), ir.Exact(ir.ProtoTCP)}, Action: ir.Blk("allow_http", ir.Fwd(1))},
				{Match: []ir.MatchSpec{ir.Exact(443), ir.Exact(ir.ProtoTCP)}, Action: ir.Blk("allow_https", ir.Fwd(1))},
				{Match: []ir.MatchSpec{ir.Exact(53), ir.Exact(ir.ProtoUDP)}, Action: ir.Blk("allow_dns", ir.Fwd(1))},
				{Match: []ir.MatchSpec{ir.Exact(53), ir.Exact(ir.ProtoTCP)}, Action: ir.Blk("allow_dns_tcp", ir.Fwd(1))},
				{Match: []ir.MatchSpec{ir.Exact(8080), ir.Exact(ir.ProtoTCP)}, Action: ir.Blk("allow_altweb", ir.Fwd(1))},
				{Match: []ir.MatchSpec{ir.Exact(3306), ir.Exact(ir.ProtoTCP)}, Action: ir.Blk("allow_db", ir.Fwd(1))},
				{Match: []ir.MatchSpec{ir.Exact(6379), ir.Exact(ir.ProtoTCP)}, Action: ir.Blk("allow_cache", ir.Fwd(1))},
			},
			Default:  ir.Blk("acl_miss", ir.ToCPU()),
			Disjoint: true,
		}},
		Root: ir.Body(&ir.TableApply{Table: "acl"}),
	})
}

// Axon forwards source-routed packets: the next hop is carried in the
// header; non-Axon traffic drops.
func Axon() *ir.Program {
	return mustBuild(&ir.Program{
		Name: "axon",
		Fields: append(append([]ir.Field(nil), ir.StdFields...),
			ir.Field{Name: "axon_hop", Bits: 8}),
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("proto"), ir.C(253)),
				ir.Blk("source_route", ir.FwdE(ir.Mod(ir.F("axon_hop"), ir.C(8)))),
				ir.Blk("not_axon", ir.Drop())),
		),
	})
}

// NDP trims oversized low-priority packets and prioritizes control packets.
func NDP() *ir.Program {
	return mustBuild(&ir.Program{
		Name: "ndp",
		Root: ir.Body(
			ir.If2(ir.Gt(ir.F("pkt_len"), ir.C(1000)),
				ir.Blk("trim",
					ir.SetM("trimmed", ir.C(1)),
					ir.Fwd(2)),
				ir.If2(ir.FlagSet(ir.FlagACK),
					ir.Blk("ctrl_priority", ir.Fwd(3)),
					ir.Blk("data", ir.Fwd(1)))),
		),
	})
}

// Beamer is the stateless mux of the Beamer load balancer: buckets by
// hash, with a dedicated table for pinned buckets.
func Beamer() *ir.Program {
	return mustBuild(&ir.Program{
		Name: "beamer",
		Tables: []ir.TableDecl{{
			Name: "buckets",
			Keys: []ir.Expr{ir.F("dst_ip")},
			Entries: []ir.Entry{
				{Match: []ir.MatchSpec{ir.Exact(0x08080808)}, Action: ir.Blk("pinned_a", ir.Fwd(4))},
				{Match: []ir.MatchSpec{ir.Exact(0x08080404)}, Action: ir.Blk("pinned_b", ir.Fwd(5))},
			},
			Default: ir.Blk("hashed",
				ir.SetM("bkt", ir.Hash(11, 4, ir.F("src_ip"), ir.F("src_port"))),
				ir.FwdE(ir.M("bkt"))),
			Disjoint: true,
		}},
		Root: ir.Body(&ir.TableApply{Table: "buckets"}),
	})
}

// P4xos dispatches Paxos roles by message type carried in dst_port.
func P4xos() *ir.Program {
	return mustBuild(&ir.Program{
		Name: "p4xos",
		Tables: []ir.TableDecl{{
			Name: "paxos_role",
			Keys: []ir.Expr{ir.F("dst_port")},
			Entries: []ir.Entry{
				{Match: []ir.MatchSpec{ir.Exact(0x8888)}, Action: ir.Blk("phase1a", ir.Fwd(1))},
				{Match: []ir.MatchSpec{ir.Exact(0x8889)}, Action: ir.Blk("phase1b", ir.Fwd(2))},
				{Match: []ir.MatchSpec{ir.Exact(0x888A)}, Action: ir.Blk("phase2a", ir.Fwd(3))},
				{Match: []ir.MatchSpec{ir.Exact(0x888B)}, Action: ir.Blk("phase2b", ir.Fwd(4))},
				{Match: []ir.MatchSpec{ir.Exact(0x888C)}, Action: ir.Blk("learner", ir.ToCPU())},
			},
			Default:  ir.Blk("non_paxos", ir.Fwd(0)),
			Disjoint: true,
		}},
		Root: ir.Body(&ir.TableApply{Table: "paxos_role"}),
	})
}

// SwitchP4 is the branch-heavy full-pipeline program: many tables, simple
// state. It stresses branching rather than stateful depth (paper §A.2).
func SwitchP4() *ir.Program {
	mkTable := func(name string, key ir.Expr, ports []uint64, punt bool) ir.TableDecl {
		entries := make([]ir.Entry, 0, len(ports))
		for i, pt := range ports {
			entries = append(entries, ir.Entry{
				Match:  []ir.MatchSpec{ir.Exact(uint64(i + 1))},
				Action: ir.Blk(fmt.Sprintf("%s_e%d", name, i), ir.SetM(name+"_hit", ir.C(pt))),
			})
		}
		var def ir.Stmt
		if punt {
			def = ir.Blk(name+"_miss", ir.ToCPU())
		} else {
			def = ir.Blk(name+"_miss", ir.SetM(name+"_hit", ir.C(0)))
		}
		return ir.TableDecl{Name: name, Keys: []ir.Expr{key}, Entries: entries, Default: def, Disjoint: true}
	}
	tables := []ir.TableDecl{
		mkTable("port_cfg", ir.Mod(ir.F("src_port"), ir.C(5)), []uint64{1, 2, 3, 4}, false),
		mkTable("vlan", ir.Mod(ir.F("dst_port"), ir.C(5)), []uint64{1, 2, 3, 4}, false),
		mkTable("smac", ir.Mod(ir.F("src_ip"), ir.C(5)), []uint64{1, 2, 3}, true),
		mkTable("dmac", ir.Mod(ir.F("dst_ip"), ir.C(5)), []uint64{1, 2, 3}, false),
		mkTable("ipv4_fib", ir.Mod(ir.F("dst_ip"), ir.C(7)), []uint64{1, 2, 3, 4, 5}, false),
		mkTable("ecmp", ir.Mod(ir.F("seq"), ir.C(5)), []uint64{1, 2, 3, 4}, false),
		mkTable("ingress_acl", ir.Mod(ir.F("src_port"), ir.C(4)), []uint64{1, 2}, false),
		mkTable("egress_acl", ir.Mod(ir.F("dst_port"), ir.C(4)), []uint64{1, 2}, false),
		mkTable("qos", ir.Mod(ir.F("pkt_len"), ir.C(4)), []uint64{1, 2, 3}, false),
		mkTable("meter", ir.Mod(ir.F("pkt_len"), ir.C(3)), []uint64{1, 2}, false),
	}
	var body []ir.Stmt
	// Early drop for malformed packets — with drop optimization this cuts
	// the branch product, which is the Vera technique P4wn ports.
	body = append(body, ir.If1(ir.Le(ir.F("ttl"), ir.C(1)), ir.Blk("bad_ttl", ir.Drop())))
	for _, t := range tables {
		body = append(body, &ir.TableApply{Table: t.Name})
	}
	body = append(body, ir.Blk("deliver", ir.FwdE(ir.Mod(ir.F("dst_ip"), ir.C(8)))))
	return mustBuild(&ir.Program{
		Name:   "switch.p4",
		Regs:   []ir.RegDecl{{Name: "pkt_cnt", Bits: 32}},
		Tables: tables,
		Root:   ir.Body(body...),
	})
}
