package dist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/testutil"
)

func almostEq(a, b, tol float64) bool { return testutil.ApproxEqual(a, b, tol, 0) }

func TestUniform(t *testing.T) {
	d := Uniform(8)
	if !almostEq(d.P(0), 1.0/256, 1e-12) || !almostEq(d.P(255), 1.0/256, 1e-12) {
		t.Fatalf("uniform pmf wrong: %v", d.P(0))
	}
	if d.P(256) != 0 {
		t.Fatal("out of domain should be 0")
	}
	if !almostEq(d.MassIn(0, 255), 1, 1e-12) {
		t.Fatalf("total mass = %v", d.MassIn(0, 255))
	}
	if !almostEq(d.MassIn(0, 127), 0.5, 1e-12) {
		t.Fatalf("half mass = %v", d.MassIn(0, 127))
	}
}

func TestPoint(t *testing.T) {
	d := Point(42)
	if d.P(42) != 1 || d.P(41) != 0 {
		t.Fatal("point dist wrong")
	}
	if d.CollisionMass() != 1 {
		t.Fatal("point collision mass should be 1")
	}
}

func TestFromPiecesValidation(t *testing.T) {
	if _, err := FromPieces([]Piece{{Lo: 5, Hi: 3, Mass: 1}}); err == nil {
		t.Fatal("Hi<Lo should error")
	}
	if _, err := FromPieces([]Piece{{Lo: 0, Hi: 10, Mass: 1}, {Lo: 5, Hi: 20, Mass: 1}}); err == nil {
		t.Fatal("overlap should error")
	}
	if _, err := FromPieces([]Piece{{Lo: 0, Hi: 10, Mass: 0}}); err == nil {
		t.Fatal("zero mass should error")
	}
	d, err := FromPieces([]Piece{{Lo: 0, Hi: 9, Mass: 3}, {Lo: 10, Hi: 19, Mass: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d.MassIn(0, 9), 0.75, 1e-12) {
		t.Fatalf("normalization wrong: %v", d.MassIn(0, 9))
	}
}

func TestSkewedDist(t *testing.T) {
	// 90% TCP (proto 6), 10% UDP (proto 17) — the DCTCP-style profile.
	d := MustFromPieces([]Piece{{Lo: 6, Hi: 6, Mass: 0.9}, {Lo: 17, Hi: 17, Mass: 0.1}})
	if !almostEq(d.P(6), 0.9, 1e-12) || !almostEq(d.P(17), 0.1, 1e-12) {
		t.Fatalf("pmf: tcp=%v udp=%v", d.P(6), d.P(17))
	}
	if !almostEq(d.CollisionMass(), 0.81+0.01, 1e-12) {
		t.Fatalf("collision mass = %v", d.CollisionMass())
	}
}

func TestRestrict(t *testing.T) {
	d := Uniform(8)
	r, mass := d.Restrict(0, 63)
	if !almostEq(mass, 0.25, 1e-12) {
		t.Fatalf("restrict mass = %v", mass)
	}
	if !almostEq(r.MassIn(0, 63), 1, 1e-12) {
		t.Fatal("restricted dist should be normalized")
	}
	if _, m := d.Restrict(300, 400); m != 0 {
		t.Fatal("empty restrict should have zero mass")
	}
}

func TestMixture(t *testing.T) {
	a := UniformRange(0, 9)
	b := UniformRange(10, 19)
	m, err := Mixture([]Dist{a, b}, []float64{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.MassIn(0, 9), 0.7, 1e-9) || !almostEq(m.MassIn(10, 19), 0.3, 1e-9) {
		t.Fatalf("mixture masses: %v %v", m.MassIn(0, 9), m.MassIn(10, 19))
	}
}

func TestSampleRespectsSupport(t *testing.T) {
	d := MustFromPieces([]Piece{{Lo: 100, Hi: 199, Mass: 0.5}, {Lo: 300, Hi: 399, Mass: 0.5}})
	rng := rand.New(rand.NewSource(1))
	inFirst := 0
	for i := 0; i < 2000; i++ {
		v := d.Sample(rng)
		if !((v >= 100 && v <= 199) || (v >= 300 && v <= 399)) {
			t.Fatalf("sample %d out of support", v)
		}
		if v <= 199 {
			inFirst++
		}
	}
	if inFirst < 800 || inFirst > 1200 {
		t.Fatalf("first-piece sample count %d far from 1000", inFirst)
	}
}

func TestSampleIn(t *testing.T) {
	d := Uniform(16)
	rng := rand.New(rand.NewSource(2))
	v, ok := d.SampleIn(rng, 1000, 1010)
	if !ok || v < 1000 || v > 1010 {
		t.Fatalf("SampleIn out of range: %d ok=%v", v, ok)
	}
	if _, ok := Point(5).SampleIn(rng, 6, 10); ok {
		t.Fatal("SampleIn on empty support should fail")
	}
}

func TestOracleProfile(t *testing.T) {
	p := NewProfile().
		SetField("proto", MustFromPieces([]Piece{{Lo: 6, Hi: 6, Mass: 0.9}, {Lo: 17, Hi: 17, Mass: 0.1}})).
		SetPairEq("seq", 0.01)
	if d, ok := p.FieldDist("proto"); !ok || !almostEq(d.P(6), 0.9, 1e-12) {
		t.Fatal("profile field lookup failed")
	}
	if _, ok := p.FieldDist("nope"); ok {
		t.Fatal("unknown field should report !ok")
	}
	if pe, ok := p.PairEqualProb("seq"); !ok || pe != 0.01 {
		t.Fatal("pair-eq lookup failed")
	}
	if p.QueryCount() != 3 {
		t.Fatalf("query count = %d", p.QueryCount())
	}
}

func TestUniformOracle(t *testing.T) {
	var u UniformOracle
	if _, ok := u.FieldDist("x"); ok {
		t.Fatal("uniform oracle should know nothing")
	}
	if _, ok := u.PairEqualProb("x"); ok {
		t.Fatal("uniform oracle should know nothing")
	}
	if u.QueryCount() != 2 {
		t.Fatal("query counting broken")
	}
}

// Property: MassIn is additive over a split point.
func TestMassAdditivity(t *testing.T) {
	d := MustFromPieces([]Piece{{Lo: 0, Hi: 999, Mass: 0.25}, {Lo: 2000, Hi: 2999, Mass: 0.75}})
	check := func(cut uint16) bool {
		c := uint64(cut) % 3000
		left := d.MassIn(0, c)
		right := 0.0
		if c < 2999 {
			right = d.MassIn(c+1, 2999)
		}
		return almostEq(left+right, 1, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: CollisionMass is between 1/support and 1.
func TestCollisionMassBounds(t *testing.T) {
	check := func(span uint8) bool {
		hi := uint64(span)%100 + 1
		d := UniformRange(0, hi)
		cm := d.CollisionMass()
		return almostEq(cm, 1/(float64(hi)+1), 1e-12)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
