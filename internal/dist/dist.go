// Package dist models header-field value distributions and the traffic
// oracle interface. P4wn weighs the volume of path-constraint polytopes by
// these distributions ("skewed multi-dimensional space" in the paper): a
// traffic profile maps each header field to a piecewise-uniform marginal
// distribution, and optionally answers correlation queries such as "how
// likely do two successive packets carry the same seq?" — the
// retransmission-ratio style query Blink's analysis needs.
package dist

import (
	"fmt"
	"math/rand"
	"sort"
)

// Piece is one segment of a piecewise-uniform distribution: total
// probability Mass spread uniformly over the inclusive range [Lo, Hi].
type Piece struct {
	Lo, Hi uint64
	Mass   float64
}

func (p Piece) width() float64 { return float64(p.Hi-p.Lo) + 1 }

// Density returns the per-value probability within the piece.
func (p Piece) Density() float64 {
	return p.Mass / p.width()
}

// Dist is a piecewise-uniform distribution over an unsigned domain.
// Pieces are sorted, non-overlapping, and masses sum to ~1.
type Dist struct {
	Pieces []Piece
}

// Uniform returns the uniform distribution over a width-bit field.
func Uniform(bits int) Dist {
	var hi uint64
	if bits >= 64 {
		hi = ^uint64(0)
	} else {
		hi = (uint64(1) << uint(bits)) - 1
	}
	return Dist{Pieces: []Piece{{Lo: 0, Hi: hi, Mass: 1}}}
}

// UniformRange returns the uniform distribution over [lo, hi].
func UniformRange(lo, hi uint64) Dist {
	return Dist{Pieces: []Piece{{Lo: lo, Hi: hi, Mass: 1}}}
}

// Point returns the distribution concentrated on a single value.
func Point(v uint64) Dist {
	return Dist{Pieces: []Piece{{Lo: v, Hi: v, Mass: 1}}}
}

// FromPieces builds a distribution from raw pieces, sorting and normalizing
// them. Overlapping pieces are rejected.
func FromPieces(pieces []Piece) (Dist, error) {
	ps := append([]Piece(nil), pieces...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Lo < ps[j].Lo })
	total := 0.0
	for i, p := range ps {
		if p.Hi < p.Lo {
			return Dist{}, fmt.Errorf("dist: piece %d has Hi < Lo", i)
		}
		if i > 0 && p.Lo <= ps[i-1].Hi {
			return Dist{}, fmt.Errorf("dist: pieces %d and %d overlap", i-1, i)
		}
		if p.Mass < 0 {
			return Dist{}, fmt.Errorf("dist: piece %d has negative mass", i)
		}
		total += p.Mass
	}
	if total <= 0 {
		return Dist{}, fmt.Errorf("dist: zero total mass")
	}
	for i := range ps {
		ps[i].Mass /= total
	}
	return Dist{Pieces: ps}, nil
}

// MustFromPieces is FromPieces that panics on error.
func MustFromPieces(pieces []Piece) Dist {
	d, err := FromPieces(pieces)
	if err != nil {
		panic(err)
	}
	return d
}

// Mixture blends distributions with the given weights.
func Mixture(ds []Dist, ws []float64) (Dist, error) {
	if len(ds) != len(ws) {
		return Dist{}, fmt.Errorf("dist: %d dists but %d weights", len(ds), len(ws))
	}
	// Collect all boundaries, then sum densities per segment.
	bounds := map[uint64]bool{}
	for _, d := range ds {
		for _, p := range d.Pieces {
			bounds[p.Lo] = true
			if p.Hi != ^uint64(0) {
				bounds[p.Hi+1] = true
			}
		}
	}
	var cuts []uint64
	for b := range bounds {
		cuts = append(cuts, b)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	var out []Piece
	for i := 0; i < len(cuts); i++ {
		lo := cuts[i]
		var hi uint64
		if i+1 < len(cuts) {
			hi = cuts[i+1] - 1
		} else {
			hi = ^uint64(0)
		}
		den := 0.0
		for k, d := range ds {
			den += ws[k] * d.densityAt(lo)
		}
		if den > 0 {
			out = append(out, Piece{Lo: lo, Hi: hi, Mass: den * (float64(hi-lo) + 1)})
		}
	}
	return FromPieces(out)
}

func (d Dist) densityAt(v uint64) float64 {
	for _, p := range d.Pieces {
		if v >= p.Lo && v <= p.Hi {
			return p.Density()
		}
	}
	return 0
}

// P returns the probability of a single value.
func (d Dist) P(v uint64) float64 { return d.densityAt(v) }

// MassIn returns the probability of the inclusive range [lo, hi].
func (d Dist) MassIn(lo, hi uint64) float64 {
	if hi < lo {
		return 0
	}
	m := 0.0
	for _, p := range d.Pieces {
		l, h := max64(lo, p.Lo), min64(hi, p.Hi)
		if l > h {
			continue
		}
		m += p.Density() * (float64(h-l) + 1)
	}
	return m
}

// CollisionMass returns Σ_v P(v)^2: the probability that two independent
// draws coincide. This is the independence-based answer to a pair-equality
// query.
func (d Dist) CollisionMass() float64 {
	s := 0.0
	for _, p := range d.Pieces {
		den := p.Density()
		s += den * den * p.width()
	}
	return s
}

// Sample draws one value.
func (d Dist) Sample(rng *rand.Rand) uint64 {
	u := rng.Float64()
	acc := 0.0
	for _, p := range d.Pieces {
		acc += p.Mass
		if u <= acc || p.Hi == d.Pieces[len(d.Pieces)-1].Hi {
			span := p.Hi - p.Lo
			if span == ^uint64(0) {
				return rng.Uint64()
			}
			return p.Lo + uint64(rng.Int63n(int64(minU(span+1, 1<<62))))
		}
	}
	return 0
}

// SampleIn draws one value conditioned on [lo, hi]; ok is false when the
// range has zero mass.
func (d Dist) SampleIn(rng *rand.Rand, lo, hi uint64) (uint64, bool) {
	total := d.MassIn(lo, hi)
	if total <= 0 {
		return 0, false
	}
	u := rng.Float64() * total
	acc := 0.0
	for _, p := range d.Pieces {
		l, h := max64(lo, p.Lo), min64(hi, p.Hi)
		if l > h {
			continue
		}
		m := p.Density() * (float64(h-l) + 1)
		acc += m
		if u <= acc {
			span := h - l
			if span == ^uint64(0) {
				return rng.Uint64(), true
			}
			return l + uint64(rng.Int63n(int64(minU(span+1, 1<<62)))), true
		}
	}
	return 0, false
}

// Restrict returns the distribution conditioned on [lo, hi] along with the
// mass of that range (the conditioning constant).
func (d Dist) Restrict(lo, hi uint64) (Dist, float64) {
	var out []Piece
	for _, p := range d.Pieces {
		l, h := max64(lo, p.Lo), min64(hi, p.Hi)
		if l > h {
			continue
		}
		out = append(out, Piece{Lo: l, Hi: h, Mass: p.Density() * (float64(h-l) + 1)})
	}
	if len(out) == 0 {
		return Dist{}, 0
	}
	total := 0.0
	for _, p := range out {
		total += p.Mass
	}
	for i := range out {
		out[i].Mass /= total
	}
	return Dist{Pieces: out}, total
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
