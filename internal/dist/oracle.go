package dist

import (
	"sort"
	"sync/atomic"
)

// Oracle answers the interactive traffic-composition queries the profiler
// issues at runtime (the paper's "oracle", which may be a spec, a human
// analyst, or a collected trace).
type Oracle interface {
	// FieldDist returns the marginal distribution of a header field.
	// ok is false when the oracle has no information for the field, in
	// which case callers fall back to the uniform distribution.
	FieldDist(field string) (Dist, bool)

	// PairEqualProb returns the probability that two packets drawn from
	// the traffic carry the same value in the field (the correlation that
	// captures, e.g., TCP retransmission ratios). ok is false when the
	// oracle cannot answer, in which case independence (CollisionMass) is
	// assumed.
	PairEqualProb(field string) (float64, bool)

	// QueryCount reports how many (possibly cached) queries were served;
	// used by the Figure 7 instrumentation.
	QueryCount() int
}

// Profile is a static traffic profile: a prespecified oracle, like the
// "TCP accounts for 90% of traffic" facts an operator supplies up front.
// Queries are safe for concurrent use once the profile is built; SetField
// and SetPairEq are setup-time only.
type Profile struct {
	Fields  map[string]Dist
	PairEq  map[string]float64
	queries atomic.Int64
}

// NewProfile creates an empty static profile.
func NewProfile() *Profile {
	return &Profile{Fields: map[string]Dist{}, PairEq: map[string]float64{}}
}

// SetField sets the marginal distribution of a field.
func (p *Profile) SetField(name string, d Dist) *Profile {
	p.Fields[name] = d
	return p
}

// SetPairEq sets the pair-equality probability of a field.
func (p *Profile) SetPairEq(name string, prob float64) *Profile {
	p.PairEq[name] = prob
	return p
}

// FieldDist implements Oracle.
func (p *Profile) FieldDist(field string) (Dist, bool) {
	p.queries.Add(1)
	d, ok := p.Fields[field]
	return d, ok
}

// PairEqualProb implements Oracle.
func (p *Profile) PairEqualProb(field string) (float64, bool) {
	p.queries.Add(1)
	v, ok := p.PairEq[field]
	return v, ok
}

// QueryCount implements Oracle.
func (p *Profile) QueryCount() int { return int(p.queries.Load()) }

// FieldNames returns the fields the profile covers, sorted.
func (p *Profile) FieldNames() []string {
	out := make([]string, 0, len(p.Fields))
	for k := range p.Fields {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// UniformOracle answers every query with "unknown", making the profiler
// fall back to uniform header spaces — the pure model-counting mode. Safe
// for concurrent use.
type UniformOracle struct{ queries atomic.Int64 }

// FieldDist implements Oracle.
func (u *UniformOracle) FieldDist(string) (Dist, bool) {
	u.queries.Add(1)
	return Dist{}, false
}

// PairEqualProb implements Oracle.
func (u *UniformOracle) PairEqualProb(string) (float64, bool) {
	u.queries.Add(1)
	return 0, false
}

// QueryCount implements Oracle.
func (u *UniformOracle) QueryCount() int { return int(u.queries.Load()) }
