package serve

import (
	"bytes"
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// Job is one unit of service work: a normalized spec plus its lifecycle
// state. A job is created per unique fingerprint; concurrent identical
// submissions share the one Job (single-flight).
type Job struct {
	ID   string
	Spec JobSpec // normalized

	seq uint64 // queue FIFO order within a priority

	mu        sync.Mutex
	state     JobState
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc

	// done closes on reaching a terminal state; SSE handlers select on it.
	done chan struct{}
	hub  *hub

	// tracer records the job's span tree (submit → queue → run → persist,
	// with the profiler's spans nested inside) and streams its text lines to
	// the hub. It lives as long as the Job record, so /debug/trace/{id}
	// serves the trace after the run finishes.
	tracer  *obs.Tracer
	traceID string
	rootCtx context.Context // carries the root "job" span
	root    obs.Span
	queued  obs.Span
	run     obs.Span
	running bool
}

// traceIDLen is how much of the content-addressed job ID names the trace.
const traceIDLen = 16

func newJob(id string, spec JobSpec, now time.Time, replayCap int) *Job {
	j := &Job{
		ID:        id,
		Spec:      spec,
		state:     StateQueued,
		submitted: now,
		done:      make(chan struct{}),
		hub:       newHub(replayCap),
	}
	j.tracer = obs.NewTracer(j.hub)
	// A propagated trace ID (the coordinator's, forwarded with the spec)
	// wins over the derived one, so spans and log lines on both sides of
	// the forwarding hop share one identifier. Absent that, the trace ID is
	// the job ID's prefix — deterministic, so retries on another node
	// produce the same trace identity.
	j.traceID = spec.TraceID
	if j.traceID == "" {
		j.traceID = id
		if len(j.traceID) > traceIDLen {
			j.traceID = j.traceID[:traceIDLen]
		}
	}
	j.tracer.SetTraceID(j.traceID)
	j.rootCtx, j.root = j.tracer.StartSpanCtx(context.Background(), "job")
	_, j.queued = j.tracer.StartSpanCtx(j.rootCtx, "queued")
	return j
}

// TraceID returns the job's request-scoped trace identifier.
func (j *Job) TraceID() string { return j.traceID }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setRunning transitions queued → running, attaching the cancel function
// for the job's context. It reports false when the job was canceled while
// queued (the worker must skip it). The queued span ends and the run span
// opens here, so the exported trace shows the queue wait as its own region.
func (j *Job) setRunning(cancel context.CancelFunc, now time.Time) bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	j.running = true
	j.mu.Unlock()
	j.queued.End()
	_, j.run = j.tracer.StartSpanCtx(j.rootCtx, "run")
	return true
}

// runContext derives the context a worker executes the job under: ctx's
// cancellation and deadline, plus the job's run span for the profiler's
// spans to nest into.
func (j *Job) runContext(ctx context.Context) context.Context {
	return obs.WithSpan(ctx, j.run)
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state JobState, errMsg string, now time.Time) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	wasRunning := j.running
	j.state = state
	j.err = errMsg
	j.finished = now
	cancel := j.cancel
	j.mu.Unlock()
	if wasRunning {
		j.run.End()
	} else {
		j.queued.End() // canceled while queued
	}
	j.root.End()
	if cancel != nil {
		cancel()
	}
	j.hub.close()
	close(j.done)
}

// Cancel requests cancellation: a queued job becomes canceled immediately
// (workers discard it on pop); a running job has its context canceled and
// reaches the canceled state when the engine unwinds.
func (j *Job) Cancel() {
	j.mu.Lock()
	state := j.state
	cancel := j.cancel
	j.mu.Unlock()
	switch state {
	case StateQueued:
		j.finish(StateCanceled, "canceled while queued", time.Now())
	case StateRunning:
		if cancel != nil {
			cancel()
		}
	}
}

// Status snapshots the job for the wire.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		TraceID:     j.traceID,
		Kind:        j.Spec.Kind,
		State:       j.state,
		Priority:    j.Spec.Priority,
		Error:       j.err,
		SubmittedAt: timeRFC(j.submitted),
		StartedAt:   timeRFC(j.started),
		FinishedAt:  timeRFC(j.finished),
	}
	if !j.started.IsZero() {
		st.WaitSec = j.started.Sub(j.submitted).Seconds()
	}
	return st
}

// hub broadcasts a job's progress lines (the obs tracer output) to any
// number of SSE subscribers, buffering bounded history so late subscribers
// replay the run from the start.
type hub struct {
	mu        sync.Mutex
	replayCap int
	lines     []string
	subs      map[chan string]struct{}
	closed    bool

	// dropped counts lines discarded for slow subscribers (bounded send).
	dropped int64

	// Optional instrumentation, set by the server: lag observes each live
	// subscriber's channel backlog (in lines) per published line, dropCtr
	// counts lines dropped on full subscriber channels.
	lag     *obs.Histogram
	dropCtr *obs.Counter
}

// hubReplayCap is the default bound on the per-job replay buffer; beyond it
// only live lines reach subscribers. Profiler runs emit a handful of lines
// per iteration, so the cap is generous.
const hubReplayCap = 4096

func newHub(replayCap int) *hub {
	if replayCap <= 0 {
		replayCap = hubReplayCap
	}
	return &hub{replayCap: replayCap, subs: map[chan string]struct{}{}}
}

// Write ingests tracer output; each call carries one or more whole
// newline-terminated lines (the tracer renders a full line per call).
func (h *hub) Write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return len(p), nil
	}
	for _, raw := range bytes.Split(bytes.TrimRight(p, "\n"), []byte("\n")) {
		if len(raw) == 0 {
			continue
		}
		line := string(raw)
		if len(h.lines) < h.replayCap {
			h.lines = append(h.lines, line)
		}
		for ch := range h.subs {
			h.lag.Observe(float64(len(ch)))
			select {
			case ch <- line:
			default:
				h.dropped++
				h.dropCtr.Inc()
			}
		}
	}
	return len(p), nil
}

// subscribe returns a live channel plus the replay buffer accumulated so
// far. The channel is closed when the hub closes (job reached a terminal
// state).
func (h *hub) subscribe() (ch chan string, replay []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = append([]string(nil), h.lines...)
	ch = make(chan string, 256)
	if h.closed {
		close(ch)
		return ch, replay
	}
	h.subs[ch] = struct{}{}
	return ch, replay
}

func (h *hub) unsubscribe(ch chan string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
	}
}

// close ends the stream: subscribers' channels close after pending lines
// drain.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
	}
	h.subs = map[chan string]struct{}{}
}
