package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// Submissions racing the drain barrier must split cleanly: everything
// accepted before the barrier runs to a persisted terminal state, everything
// after gets a clean 503/ErrDraining, and nothing lands in the queue once
// the barrier is down. Run under -race this also checks the Submit/Drain
// paths share no unsynchronized state.
func TestDrainBackpressureConcurrentSubmits(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 2, QueueDepth: 64})
	hold := make(chan struct{})
	s.testHold = hold
	src := synGuardSrc(t)

	const submitters = 12
	type outcome struct {
		id   string
		code int
		err  error
	}
	results := make([]outcome, submitters)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			st, code, err := s.Submit(JobSpec{
				Source:  src,
				Options: core.WireOptions{Seed: int64(i + 1)},
			})
			results[i] = outcome{id: st.ID, code: code, err: err}
		}(i)
	}

	drainErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	close(start)
	go func() {
		// Land the barrier mid-burst: some submitters have won, some lose.
		time.Sleep(2 * time.Millisecond)
		drainErr <- s.Drain(ctx)
	}()
	wg.Wait()

	// Everything the workers were holding can now run to completion.
	close(hold)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}

	accepted := 0
	for i, r := range results {
		switch r.code {
		case http.StatusAccepted:
			accepted++
			j, ok := s.Job(r.id)
			if !ok {
				t.Fatalf("accepted job %s vanished", r.id)
			}
			waitDone(t, j)
			if j.State() != StateDone {
				t.Fatalf("accepted job %s drained to %s (%s)", r.id, j.State(), j.Status().Error)
			}
			if _, ok := s.store.Get(r.id); !ok {
				t.Fatalf("accepted job %s finished without a persisted result", r.id)
			}
		case http.StatusServiceUnavailable:
			if r.err != ErrDraining {
				t.Fatalf("submitter %d rejected with err=%v, want ErrDraining", i, r.err)
			}
		default:
			t.Fatalf("submitter %d: code=%d err=%v, want 202 or 503", i, r.code, r.err)
		}
	}

	// The barrier is permanent: no submission sneaks in after Drain returns,
	// and the job table holds exactly the accepted set.
	if _, code, err := s.Submit(JobSpec{Source: src, Options: core.WireOptions{Seed: 9999}}); code != http.StatusServiceUnavailable || err != ErrDraining {
		t.Fatalf("post-drain submit: code=%d err=%v, want 503/ErrDraining", code, err)
	}
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	if jobs != accepted {
		t.Fatalf("job table holds %d jobs, accepted %d: something enqueued past the barrier", jobs, accepted)
	}
	rejected := int64(submitters - accepted + 1) // +1 for the post-drain probe
	if got := s.reg.Counter("serve.rejected_draining").Value(); got != rejected {
		t.Fatalf("rejected_draining = %d, want %d", got, rejected)
	}
}

// During a drain /readyz must flip to 503 (so the balancer routes around
// this node) while /healthz stays 200 (so the orchestrator does not kill
// the node mid-flush) and the in-flight job still finishes.
func TestReadyzFlipsDuringDrain(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1})
	hold := make(chan struct{})
	s.testHold = hold
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	statusOf := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := statusOf("/readyz"); code != http.StatusOK {
		t.Fatalf("pre-drain readyz = %d", code)
	}
	if code := statusOf("/healthz"); code != http.StatusOK {
		t.Fatalf("pre-drain healthz = %d", code)
	}

	st, code, err := s.Submit(JobSpec{Source: synGuardSrc(t), Scale: "quick"})
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("submit: code=%d err=%v", code, err)
	}
	waitPopped(t, s)

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for statusOf("/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 after drain started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code := statusOf("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", code)
	}

	close(hold)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	j, _ := s.Job(st.ID)
	if j.State() != StateDone {
		t.Fatalf("held job drained to %s, want done", j.State())
	}
	if code := statusOf("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain readyz = %d, want 503 forever", code)
	}
}
