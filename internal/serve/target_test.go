package serve

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// Two submissions that differ only in the device target compute different
// answers, so they must occupy distinct content-addressed cache entries.
func TestTargetDistinguishesStoreKey(t *testing.T) {
	base := JobSpec{Kind: KindProfile, Program: "counter (S12)"}
	ids := map[string]string{}
	for _, tgt := range []string{"idealized", "tofino", "ebpf"} {
		spec := base
		spec.Options.Target = tgt
		norm, err := spec.normalize()
		if err != nil {
			t.Fatalf("normalize(target=%q): %v", tgt, err)
		}
		ids[tgt] = norm.id()
	}
	if ids["idealized"] == ids["tofino"] || ids["idealized"] == ids["ebpf"] ||
		ids["tofino"] == ids["ebpf"] {
		t.Fatalf("targets must fingerprint distinctly: %v", ids)
	}

	// The omitted spelling and the explicit default share one entry.
	implicit, err := base.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if implicit.id() != ids["idealized"] {
		t.Fatalf("default target must share the idealized cache entry:\n %s\n %s",
			implicit.id(), ids["idealized"])
	}
}

func TestNormalizeRejectsUnknownTarget(t *testing.T) {
	spec := JobSpec{Kind: KindProfile, Program: "counter (S12)",
		Options: core.WireOptions{Target: "bmv2"}}
	if _, err := spec.normalize(); err == nil || !strings.Contains(err.Error(), "bmv2") {
		t.Fatalf("unknown target must be rejected at submission, got %v", err)
	}
}

// A scale preset fixes every profiling knob except the device target, which
// is orthogonal and may ride along; any other explicit knob still conflicts.
func TestScaleAllowsTargetOption(t *testing.T) {
	spec := JobSpec{Kind: KindProfile, Program: "counter (S12)", Scale: "quick",
		Options: core.WireOptions{Target: "tofino"}}
	norm, err := spec.normalize()
	if err != nil {
		t.Fatalf("scale+target must normalize: %v", err)
	}
	if norm.Options.Target != "tofino" {
		t.Fatalf("target lost through preset expansion: %+v", norm.Options)
	}

	conflict := JobSpec{Kind: KindProfile, Program: "counter (S12)", Scale: "quick",
		Options: core.WireOptions{Target: "tofino", MaxIters: 3}}
	if _, err := conflict.normalize(); err == nil {
		t.Fatal("scale plus a non-target option must still conflict")
	}
}
