package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testID builds a distinct valid store ID (64 lowercase hex chars).
func testID(n int) string {
	return fmt.Sprintf("%064x", n)
}

func TestStoreRoundTripAndDiskReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	id := testID(1)
	want := []byte(`{"hello":"world"}`)
	if _, ok := st.Get(id); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := st.Put(id, want); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(id)
	if !ok || string(got) != string(want) {
		t.Fatalf("get after put: ok=%v data=%q", ok, got)
	}

	// A second store over the same directory — a restarted daemon — must
	// replay the result from disk.
	st2, err := OpenStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = st2.Get(id)
	if !ok || string(got) != string(want) {
		t.Fatalf("disk replay: ok=%v data=%q", ok, got)
	}
	if m := st2.Metrics(); m["hits_disk"] != 1 {
		t.Fatalf("disk hit not counted: %v", m)
	}
}

// A torn write — a partial file left by a crash that predates the
// atomic-rename discipline, or manual tampering — must read as a miss, not
// as a corrupt result.
func TestStoreTornFileIgnored(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	id := testID(2)
	torn := []byte(`{"schema_version": 2, "nodes": [{"label": "a", "p"`)
	if err := os.WriteFile(filepath.Join(dir, id+".json"), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(id); ok {
		t.Fatal("torn file served as a result")
	}
	m := st.Metrics()
	if m["bad_files"] != 1 || m["misses"] != 1 {
		t.Fatalf("torn file not counted: %v", m)
	}
	// A subsequent Put must repair the entry.
	if err := st.Put(id, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(id); !ok {
		t.Fatal("put after torn file did not repair the entry")
	}
}

// Put must never leave temp files behind, and a crash can only ever leave
// the old or the new content — which the atomic rename guarantees as long
// as the temp file lives in the same directory.
func TestStorePutLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Put(testID(100+i), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			t.Fatalf("leftover non-result file %q", e.Name())
		}
	}
	if len(entries) != 10 {
		t.Fatalf("expected 10 result files, found %d", len(entries))
	}
}

// The memory layer is bounded: past the cap the least-recently-used entry
// is evicted, while every result stays reachable through disk.
func TestStoreLRUEvictionBounds(t *testing.T) {
	dir := t.TempDir()
	const capEntries = 4
	st, err := OpenStore(dir, capEntries)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if err := st.Put(testID(i), []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
		if r := st.Resident(); r > capEntries {
			t.Fatalf("resident %d exceeds cap %d", r, capEntries)
		}
	}
	m := st.Metrics()
	if m["resident"] != capEntries {
		t.Fatalf("resident = %v, want %v", m["resident"], capEntries)
	}
	if m["evictions"] != n-capEntries {
		t.Fatalf("evictions = %v, want %v", m["evictions"], n-capEntries)
	}
	// Evicted entries fall back to disk and get promoted back into memory.
	if _, ok := st.Get(testID(0)); !ok {
		t.Fatal("evicted entry lost from disk")
	}
	if st.Metrics()["hits_disk"] != 1 {
		t.Fatal("disk fallback not counted")
	}
	if r := st.Resident(); r > capEntries {
		t.Fatalf("promotion broke the cap: resident %d", r)
	}
}

// Get touches refresh LRU order: the most recently read entry must survive
// the next eviction.
func TestStoreLRUOrder(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	st.Put(testID(1), []byte(`1`))
	st.Put(testID(2), []byte(`2`))
	st.Get(testID(1))              // 1 is now most recent
	st.Put(testID(3), []byte(`3`)) // evicts 2
	if m := st.Metrics(); m["evictions"] != 1 {
		t.Fatalf("evictions = %v", m["evictions"])
	}
	st.Get(testID(1))
	if m := st.Metrics(); m["hits_mem"] != 2 {
		t.Fatalf("entry 1 was evicted despite being most recent: %v", m)
	}
}

// IDs are validated before touching the filesystem; traversal attempts and
// malformed hashes must never map to paths.
func TestStoreRejectsInvalidIDs(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"",
		"abc",
		"../../../../etc/passwd",
		strings.Repeat("g", 64),                // not hex
		strings.Repeat("A", 64),                // uppercase rejected
		strings.Repeat("a", 63),                // short
		strings.Repeat("a", 65),                // long
		"..%2f" + strings.Repeat("a", 59),      // encoded traversal
		strings.Repeat("a", 32) + "/.." + "aa", // embedded separator
	}
	for _, id := range bad {
		if _, ok := st.Get(id); ok {
			t.Fatalf("Get accepted invalid id %q", id)
		}
		if err := st.Put(id, []byte(`{}`)); err == nil {
			t.Fatalf("Put accepted invalid id %q", id)
		}
	}
}
