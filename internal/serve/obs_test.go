package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// The replay buffer is bounded: past the cap, subscribers still receive
// live lines but the stored history stops growing.
func TestHubReplayBounded(t *testing.T) {
	h := newHub(8)
	for i := 0; i < 50; i++ {
		fmt.Fprintf(h, "line %d\n", i)
	}
	_, replay := h.subscribe()
	if len(replay) != 8 {
		t.Fatalf("replay holds %d lines, want cap 8", len(replay))
	}
	if replay[0] != "line 0" || replay[7] != "line 7" {
		t.Fatalf("replay kept the wrong lines: %v", replay)
	}

	if def := newHub(0); def.replayCap != hubReplayCap {
		t.Fatalf("default replay cap = %d, want %d", def.replayCap, hubReplayCap)
	}
}

// Subscribers churning while a writer floods and the hub finally closes:
// the -race build is the real assertion here, plus every subscriber channel
// must end closed with no deadlock.
func TestHubConcurrentChurn(t *testing.T) {
	h := newHub(64)
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fmt.Fprintf(h, "w%d line %d\n", w, i)
			}
		}(w)
	}

	var subs sync.WaitGroup
	for s := 0; s < 16; s++ {
		subs.Add(1)
		go func() {
			defer subs.Done()
			for k := 0; k < 20; k++ {
				ch, replay := h.subscribe()
				_ = replay
				// Drain a few lines (or hit closed), then churn away.
				for i := 0; i < 5; i++ {
					if _, open := <-ch; !open {
						return
					}
				}
				h.unsubscribe(ch)
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)
	close(stop)
	writers.Wait()
	h.close()
	subs.Wait()

	// Post-close: writes are dropped, subscribe returns a closed channel
	// plus the replay history.
	fmt.Fprintf(h, "after close\n")
	ch, replay := h.subscribe()
	if _, open := <-ch; open {
		t.Fatal("subscribe after close returned an open channel")
	}
	for _, l := range replay {
		if l == "after close" {
			t.Fatal("write after close reached the replay buffer")
		}
	}
}

// Every job-scoped daemon log line carries job_id and trace_id, so JSON
// logs join against /debug/trace exports and the report's job block.
func TestSlogLinesCarryJobAndTraceID(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	s := newTestServer(t, Config{JobWorkers: 1, Logger: logger})

	spec := JobSpec{Source: synGuardSrc(t), Scale: "quick"}
	st, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := s.Job(st.ID)
	if !ok {
		t.Fatal("job not registered")
	}
	select {
	case <-j.done:
	case <-time.After(60 * time.Second):
		t.Fatal("job did not finish")
	}
	if st.TraceID == "" || len(st.TraceID) != traceIDLen {
		t.Fatalf("status trace_id = %q, want %d hex chars", st.TraceID, traceIDLen)
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	var sawEnqueued, sawStarted, sawFinished bool
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q", sc.Text())
		}
		msg, _ := rec["msg"].(string)
		if !strings.HasPrefix(msg, "job ") {
			continue
		}
		if rec["job_id"] != st.ID {
			t.Errorf("%q log line job_id = %v, want %s", msg, rec["job_id"], st.ID)
		}
		if rec["trace_id"] != st.TraceID {
			t.Errorf("%q log line trace_id = %v, want %s", msg, rec["trace_id"], st.TraceID)
		}
		switch msg {
		case "job enqueued":
			sawEnqueued = true
		case "job started":
			sawStarted = true
		case "job finished":
			sawFinished = true
			if rec["outcome"] != "done" {
				t.Errorf("finish outcome = %v, want done", rec["outcome"])
			}
		}
	}
	if !sawEnqueued || !sawStarted || !sawFinished {
		t.Fatalf("lifecycle log lines missing (enqueued=%v started=%v finished=%v):\n%s",
			sawEnqueued, sawStarted, sawFinished, out)
	}
}

type lockedWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// The SLO histograms land under the right labeled names after a run.
func TestSLOMetricsRecorded(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1})
	st, _, err := s.Submit(JobSpec{Source: synGuardSrc(t), Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.Job(st.ID)
	select {
	case <-j.done:
	case <-time.After(60 * time.Second):
		t.Fatal("job did not finish")
	}

	snap := s.Registry().Snapshot()
	if snap[`serve.queue_wait_seconds{outcome="run"}.count`] < 1 {
		t.Errorf("queue-wait histogram not observed: %v", snapKeys(snap, "queue_wait"))
	}
	if snap[`serve.job_run_seconds{outcome="done"}.count`] < 1 {
		t.Errorf("run-duration histogram not observed: %v", snapKeys(snap, "job_run"))
	}
	if _, ok := snap["serve.store_hit_ratio"]; !ok {
		t.Error("store_hit_ratio gauge missing from the serve view")
	}
}

func snapKeys(m map[string]float64, substr string) []string {
	var out []string
	for k := range m {
		if strings.Contains(k, substr) {
			out = append(out, k)
		}
	}
	return out
}
