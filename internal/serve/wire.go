// Package serve wraps the P4wn profiler pipeline in a long-running
// service: a bounded priority job queue with per-job deadlines and
// cancellation, a content-addressed result store with single-flight
// deduplication, and a JSON-over-HTTP API with per-job streaming progress.
// cmd/p4wnd is the daemon front end; `p4wn submit|status|result|cancel`
// are the matching client subcommands.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/programs"
	"repro/internal/target"
	"repro/internal/testgen"
	"repro/internal/trace"
)

// JobSpec is the wire form of one job submission.
type JobSpec struct {
	// Kind selects the pipeline: "profile" (default) computes the
	// probabilistic profile; "adversarial" generates a concrete packet
	// sequence exercising Target.
	Kind string `json:"kind,omitempty"`
	// Program names a zoo program; Source is inline mini-language text.
	// Exactly one must be set.
	Program string `json:"program,omitempty"`
	Source  string `json:"source,omitempty"`
	// Uniform profiles against the uniform header space instead of the
	// program's synthetic workload trace (profile jobs).
	Uniform bool `json:"uniform,omitempty"`
	// Target is the code-block label for adversarial jobs.
	Target string `json:"target,omitempty"`
	// Scale seeds Options from an eval preset ("quick", "default", "full").
	// It is mutually exclusive with a non-zero Options block, so a scaled
	// submission and the equivalent spelled-out one content-address
	// identically.
	Scale string `json:"scale,omitempty"`
	// Options are the profiler options; zero values select the documented
	// defaults (see core.WireOptions).
	Options core.WireOptions `json:"options"`
	// Priority orders the queue: higher-priority jobs run first, FIFO
	// within a priority.
	Priority int `json:"priority,omitempty"`
	// TimeoutSec bounds the whole job's wall clock (0 = server default;
	// the server clamps it to its configured maximum). Unlike the profiler
	// options, it does not contribute to the job's content address: it
	// decides whether a result is produced, never what the result is.
	TimeoutSec float64 `json:"job_timeout_sec,omitempty"`
	// Tenant names the submitting party for the cluster coordinator's
	// weighted-fair scheduling and per-tenant quotas. Like Priority it is a
	// scheduling knob, excluded from the content address: the same work
	// submitted by two tenants shares one result.
	Tenant string `json:"tenant,omitempty"`
	// TraceID, when set, pins the job's trace identifier (16 lowercase hex
	// characters) instead of deriving it from the job ID. The coordinator
	// propagates its own trace ID here so worker spans and log lines join
	// the coordinator's across the forwarding hop. Excluded from the
	// content address.
	TraceID string `json:"trace_id,omitempty"`
}

// Job kinds.
const (
	KindProfile     = "profile"
	KindAdversarial = "adversarial"
)

// normalize validates the spec and folds every defaulting rule in, so all
// spellings of the same work share one canonical form.
func (s JobSpec) normalize() (JobSpec, error) {
	if s.Kind == "" {
		s.Kind = KindProfile
	}
	if s.Kind != KindProfile && s.Kind != KindAdversarial {
		return s, fmt.Errorf("unknown job kind %q", s.Kind)
	}
	if (s.Program == "") == (s.Source == "") {
		return s, fmt.Errorf("exactly one of program, source required")
	}
	if s.Program != "" {
		if _, ok := programs.ByName(s.Program); !ok {
			return s, fmt.Errorf("unknown program %q", s.Program)
		}
	}
	if s.Kind == KindAdversarial && s.Target == "" {
		return s, fmt.Errorf("adversarial jobs require a target block label")
	}
	if s.Kind == KindProfile && s.Target != "" {
		return s, fmt.Errorf("target is only meaningful for adversarial jobs")
	}
	if _, err := target.Lookup(s.Options.Target); err != nil {
		return s, err
	}
	if s.Scale != "" {
		// The device-target choice is orthogonal to the scale preset, so
		// options.target may accompany scale; any other options knob still
		// conflicts with a preset.
		rest := s.Options
		rest.Target = ""
		if rest != (core.WireOptions{}) {
			return s, fmt.Errorf("scale and options are mutually exclusive")
		}
		cfg, ok := eval.Preset(s.Scale)
		if !ok {
			return s, fmt.Errorf("unknown scale %q (quick, default, full)", s.Scale)
		}
		cfg.Target = s.Options.Target
		s.Options = core.WireFromOptions(cfg.ProfileOptions())
		s.Scale = ""
	}
	s.Options = s.Options.Normalized()
	if s.TimeoutSec < 0 {
		return s, fmt.Errorf("job_timeout_sec must be >= 0")
	}
	if s.TraceID != "" && !validTraceID(s.TraceID) {
		return s, fmt.Errorf("trace_id must be %d lowercase hex characters", traceIDLen)
	}
	return s, nil
}

// validTraceID accepts exactly the 16-lowercase-hex identifiers newJob
// derives from content addresses.
func validTraceID(id string) bool {
	if len(id) != traceIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Normalize returns the spec's canonical form, validating it along the
// way. Exported for the cluster coordinator, which must compute the same
// canonical identity a worker will before routing by it.
func (s JobSpec) Normalize() (JobSpec, error) { return s.normalize() }

// ID content-addresses a normalized spec (see id). Exported alongside
// Normalize so the coordinator shards by the exact store key.
func (s JobSpec) ID() string { return s.id() }

// fingerprint is the canonical identity of a job: exactly the inputs the
// result bytes depend on. Priority and the job timeout are excluded — they
// change scheduling, not the answer.
type fingerprint struct {
	Kind    string           `json:"kind"`
	Program string           `json:"program,omitempty"`
	Source  string           `json:"source,omitempty"`
	Uniform bool             `json:"uniform,omitempty"`
	Target  string           `json:"target,omitempty"`
	Options core.WireOptions `json:"options"`
}

// id content-addresses a normalized spec: the hex SHA-256 of its canonical
// JSON fingerprint. Identical submissions — however they were spelled —
// share one ID, one queue slot, and one stored result.
func (s JobSpec) id() string {
	data, err := json.Marshal(fingerprint{
		Kind:    s.Kind,
		Program: s.Program,
		Source:  s.Source,
		Uniform: s.Uniform,
		Target:  s.Target,
		Options: s.Options,
	})
	if err != nil {
		// fingerprint marshals plain structs; this cannot fail.
		panic("serve: fingerprint marshal: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID      string   `json:"id"`
	TraceID string   `json:"trace_id,omitempty"`
	Kind    string   `json:"kind"`
	State   JobState `json:"state"`
	// Cached marks a submission answered straight from the result store,
	// with no engine run.
	Cached      bool    `json:"cached,omitempty"`
	Priority    int     `json:"priority,omitempty"`
	Error       string  `json:"error,omitempty"`
	SubmittedAt string  `json:"submitted_at,omitempty"`
	StartedAt   string  `json:"started_at,omitempty"`
	FinishedAt  string  `json:"finished_at,omitempty"`
	WaitSec     float64 `json:"wait_sec,omitempty"`
}

// NodeStats is the wire form of one daemon's load snapshot, served at
// GET /v1/stats. The cluster coordinator's heartbeat loop polls it to
// drive liveness, steal, and readiness decisions.
type NodeStats struct {
	// State is "serving" or "draining"; a draining node still finishes
	// queued work but must not receive new forwards.
	State      string `json:"state"`
	QueueDepth int    `json:"queue_depth"`
	Running    int    `json:"running"`
	JobWorkers int    `json:"job_workers"`
	Jobs       int    `json:"jobs"`
	// StoreResident is the memory-layer entry count of the result store.
	StoreResident int `json:"store_resident"`
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

// AdvResult is the stored result of an adversarial job (kind
// "adversarial"): the generated packet sequence plus the Figure 9 phase
// decomposition. Profile jobs store the obs.Report run report instead.
type AdvResult struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"` // "adversarial"
	Program       string `json:"program"`
	Target        string `json:"target"`
	GeneratedAt   string `json:"generated_at,omitempty"`

	Job *obs.JobMeta `json:"job,omitempty"`

	Validated     bool           `json:"validated"`
	HasCollisions bool           `json:"has_collisions,omitempty"`
	Packets       []trace.Packet `json:"packets"`
	SymbexSec     float64        `json:"symbex_sec"`
	SolverSec     float64        `json:"solver_sec"`
	HavocSec      float64        `json:"havoc_sec"`
}

// timeRFC renders a timestamp for the wire; zero times render empty.
func timeRFC(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// advResultFrom converts a generated trace into its stored form.
func advResultFrom(adv *testgen.AdvTrace, schemaVersion int) *AdvResult {
	return &AdvResult{
		SchemaVersion: schemaVersion,
		Kind:          KindAdversarial,
		Program:       adv.Program,
		Target:        adv.Label,
		Validated:     adv.Validated,
		HasCollisions: adv.HasCollisions,
		Packets:       adv.Packets,
		SymbexSec:     adv.Decomp.Symbex.Seconds(),
		SolverSec:     adv.Decomp.Solver.Seconds(),
		HavocSec:      adv.Decomp.Havoc.Seconds(),
	}
}
