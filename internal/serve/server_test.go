package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/p4c"
)

// synGuardSrc loads the quickstart example program; tests share it so the
// served-vs-offline comparison exercises the same source the e2e smoke
// script uses.
func synGuardSrc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../examples/programs/syn_guard.p4w")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.ID, j.State(), want)
}

// waitDone blocks on the job's terminal signal.
func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s never reached a terminal state (now %s)", j.ID, j.State())
	}
}

// waitPopped waits until the held worker has taken everything off the queue.
func waitPopped(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.queue.depth() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("queue never drained to the held worker")
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	s := newTestServer(t, Config{})
	src := synGuardSrc(t)
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"empty", JobSpec{}},
		{"both program and source", JobSpec{Program: "copy-to-cpu", Source: src}},
		{"unknown program", JobSpec{Program: "no-such-system"}},
		{"unknown kind", JobSpec{Kind: "bench", Source: src}},
		{"profile with target", JobSpec{Source: src, Target: "syn"}},
		{"adversarial without target", JobSpec{Kind: KindAdversarial, Source: src}},
		{"scale and options", JobSpec{Source: src, Scale: "quick", Options: core.WireOptions{Seed: 3}}},
		{"unknown scale", JobSpec{Source: src, Scale: "gigantic"}},
		{"negative timeout", JobSpec{Source: src, TimeoutSec: -1}},
	}
	for _, tc := range cases {
		if _, code, err := s.Submit(tc.spec); code != http.StatusBadRequest || err == nil {
			t.Errorf("%s: code=%d err=%v, want 400", tc.name, code, err)
		}
	}
}

// The content address must identify the work, not the scheduling: priority
// and job timeout do not change it, every profile knob does, and a preset
// fingerprint equals its spelled-out form.
func TestFingerprintIdentity(t *testing.T) {
	src := synGuardSrc(t)
	id := func(s JobSpec) string {
		t.Helper()
		norm, err := s.normalize()
		if err != nil {
			t.Fatal(err)
		}
		return norm.id()
	}
	base := JobSpec{Source: src, Options: core.WireOptions{Seed: 1}}
	if id(base) != id(JobSpec{Source: src, Options: core.WireOptions{Seed: 1}, Priority: 9, TimeoutSec: 30}) {
		t.Fatal("priority/timeout changed the content address")
	}
	if id(base) == id(JobSpec{Source: src, Options: core.WireOptions{Seed: 2}}) {
		t.Fatal("seed change did not change the content address")
	}
	if id(base) == id(JobSpec{Source: src, Uniform: true, Options: core.WireOptions{Seed: 1}}) {
		t.Fatal("uniform flag did not change the content address")
	}

	// A spec that spells out a preset's options addresses identically to the
	// preset itself.
	scaled := JobSpec{Source: src, Scale: "quick"}
	norm, err := scaled.normalize()
	if err != nil {
		t.Fatal(err)
	}
	spelled := JobSpec{Source: src, Options: norm.Options}
	if id(scaled) != id(spelled) {
		t.Fatal("preset and spelled-out options fingerprint differently")
	}

	// Spelling out a default equals omitting it.
	explicit := JobSpec{Source: src, Options: norm.Options.Normalized()}
	if id(scaled) != id(explicit) {
		t.Fatal("normalized options fingerprint differently")
	}
}

// Sixteen concurrent identical submissions must collapse onto one engine
// run: one 202, fifteen deduplicated 200s, and exactly one jobs_run tick.
func TestSingleFlightConcurrentSubmissions(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 2})
	hold := make(chan struct{})
	s.testHold = hold
	spec := JobSpec{Source: synGuardSrc(t), Scale: "quick"}

	const n = 16
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, code, err := s.Submit(spec)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
			codes[i] = code
		}(i)
	}
	wg.Wait()

	accepted, deduped := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusAccepted:
			accepted++
		case http.StatusOK:
			deduped++
		default:
			t.Fatalf("unexpected submit code %d", c)
		}
	}
	if accepted != 1 || deduped != n-1 {
		t.Fatalf("accepted=%d deduped=%d, want 1/%d", accepted, deduped, n-1)
	}

	close(hold)
	norm, _ := spec.normalize()
	j, ok := s.Job(norm.id())
	if !ok {
		t.Fatal("job missing from table")
	}
	waitDone(t, j)
	if st := j.State(); st != StateDone {
		t.Fatalf("job state %s: %s", st, j.Status().Error)
	}
	if runs := s.reg.Counter("serve.jobs_run").Value(); runs != 1 {
		t.Fatalf("jobs_run = %d, want 1", runs)
	}
	if d := s.reg.Counter("serve.dedup_inflight").Value(); d != n-1 {
		t.Fatalf("dedup_inflight = %d, want %d", d, n-1)
	}
	if _, ok := s.store.Get(norm.id()); !ok {
		t.Fatal("result not persisted")
	}
}

// Resubmitting finished work is answered from the store without another
// engine run — including by a fresh server over the same store directory
// (a daemon restart).
func TestResubmitServedFromStore(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{StoreDir: dir, JobWorkers: 1})
	spec := JobSpec{Source: synGuardSrc(t), Scale: "quick"}

	st, code, err := s.Submit(spec)
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("first submit: code=%d err=%v", code, err)
	}
	j, _ := s.Job(st.ID)
	waitDone(t, j)
	if j.State() != StateDone {
		t.Fatalf("job failed: %s", j.Status().Error)
	}

	st2, code, err := s.Submit(spec)
	if err != nil || code != http.StatusOK || !st2.Cached {
		t.Fatalf("resubmit: code=%d cached=%v err=%v", code, st2.Cached, err)
	}
	if runs := s.reg.Counter("serve.jobs_run").Value(); runs != 1 {
		t.Fatalf("resubmit re-ran the engine: jobs_run=%d", runs)
	}
	if hits := s.reg.Counter("serve.store_hits").Value(); hits != 1 {
		t.Fatalf("store_hits = %d, want 1", hits)
	}

	// Restart: a new server over the same directory replays from disk.
	s2 := newTestServer(t, Config{StoreDir: dir, JobWorkers: 1})
	st3, code, err := s2.Submit(spec)
	if err != nil || code != http.StatusOK || !st3.Cached {
		t.Fatalf("post-restart resubmit: code=%d cached=%v err=%v", code, st3.Cached, err)
	}
	if runs := s2.reg.Counter("serve.jobs_run").Value(); runs != 0 {
		t.Fatalf("post-restart resubmit ran the engine: jobs_run=%d", runs)
	}
}

// The served profile must be identical to what the offline pipeline
// produces for the same program and options — the service is a cache in
// front of the engine, never a different engine. Everything except the
// run-specific job/timing metadata is compared.
func TestServedProfileMatchesOffline(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1})
	src := synGuardSrc(t)
	spec := JobSpec{Source: src, Options: core.WireOptions{Seed: 1}}

	st, code, err := s.Submit(spec)
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("submit: code=%d err=%v", code, err)
	}
	j, _ := s.Job(st.ID)
	waitDone(t, j)
	if j.State() != StateDone {
		t.Fatalf("job failed: %s", j.Status().Error)
	}
	data, ok := s.store.Get(st.ID)
	if !ok {
		t.Fatal("no stored result")
	}
	var served obs.Report
	if err := json.Unmarshal(data, &served); err != nil {
		t.Fatalf("stored result is not a report: %v", err)
	}
	if served.Job == nil || served.Job.ID != st.ID || served.Job.Kind != KindProfile {
		t.Fatalf("served report job block: %+v", served.Job)
	}

	// Offline run with the identical normalized options.
	norm, err := spec.normalize()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p4c.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opt := norm.Options.Options()
	prof, err := core.ProbProf(prog, oracleFor(norm, nil), opt)
	if err != nil {
		t.Fatal(err)
	}
	offline := core.NewReport(prof, opt)

	if !reflect.DeepEqual(served.Nodes, offline.Nodes) {
		t.Fatalf("served nodes differ from offline:\nserved:  %+v\noffline: %+v", served.Nodes, offline.Nodes)
	}
	if served.Converged != offline.Converged || served.Coverage != offline.Coverage {
		t.Fatalf("served converged/coverage %v/%v, offline %v/%v",
			served.Converged, served.Coverage, offline.Converged, offline.Coverage)
	}
	servedOpts, _ := json.Marshal(served.Options)
	offlineOpts, _ := json.Marshal(offline.Options)
	if !bytes.Equal(servedOpts, offlineOpts) {
		t.Fatalf("served options %s differ from offline %s", servedOpts, offlineOpts)
	}
	if served.Program != offline.Program || served.SchemaVersion != offline.SchemaVersion {
		t.Fatalf("report headers differ: %s/%d vs %s/%d",
			served.Program, served.SchemaVersion, offline.Program, offline.SchemaVersion)
	}
}

// Past the queue bound submissions are rejected with 429 (the HTTP layer
// adds Retry-After); they succeed again once the queue drains.
func TestQueueFullBackpressure(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 2})
	hold := make(chan struct{})
	s.testHold = hold
	src := synGuardSrc(t)
	spec := func(seed int64) JobSpec {
		return JobSpec{Source: src, Scale: "", Options: core.WireOptions{Seed: seed}}
	}

	// First job lands on the held worker; the next two fill the queue.
	if _, code, err := s.Submit(spec(1)); code != http.StatusAccepted || err != nil {
		t.Fatalf("submit 1: code=%d err=%v", code, err)
	}
	waitPopped(t, s)
	for seed := int64(2); seed <= 3; seed++ {
		if _, code, err := s.Submit(spec(seed)); code != http.StatusAccepted || err != nil {
			t.Fatalf("submit %d: code=%d err=%v", seed, code, err)
		}
	}
	_, code, err := s.Submit(spec(4))
	if code != http.StatusTooManyRequests || err != ErrQueueFull {
		t.Fatalf("over-bound submit: code=%d err=%v, want 429/ErrQueueFull", code, err)
	}
	if rej := s.reg.Counter("serve.rejected_full").Value(); rej != 1 {
		t.Fatalf("rejected_full = %d", rej)
	}

	close(hold)
	for seed := int64(1); seed <= 3; seed++ {
		norm, _ := spec(seed).normalize()
		j, ok := s.Job(norm.id())
		if !ok {
			t.Fatalf("job for seed %d missing", seed)
		}
		waitDone(t, j)
	}
	// Capacity is available again.
	if _, code, _ := s.Submit(spec(4)); code != http.StatusAccepted {
		t.Fatalf("post-drain submit: code=%d, want 202", code)
	}
}

// Canceling a queued job keeps it off the engine entirely.
func TestCancelQueuedJob(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1})
	hold := make(chan struct{})
	s.testHold = hold
	src := synGuardSrc(t)

	stA, _, err := s.Submit(JobSpec{Source: src, Options: core.WireOptions{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitPopped(t, s) // A is on the held worker
	stB, _, err := s.Submit(JobSpec{Source: src, Options: core.WireOptions{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	jB, _ := s.Job(stB.ID)
	jB.Cancel()
	waitDone(t, jB)
	if jB.State() != StateCanceled {
		t.Fatalf("canceled queued job state = %s", jB.State())
	}

	close(hold)
	jA, _ := s.Job(stA.ID)
	waitDone(t, jA)
	if jA.State() != StateDone {
		t.Fatalf("job A: %s", jA.Status().Error)
	}
	if runs := s.reg.Counter("serve.jobs_run").Value(); runs != 1 {
		t.Fatalf("jobs_run = %d, want 1 (canceled job must not run)", runs)
	}
	if _, ok := s.store.Get(stB.ID); ok {
		t.Fatal("canceled job has a stored result")
	}
}

// Canceling a running job stops the engine mid-run: the context threads
// down through the profiler's stride checks, the job lands in the canceled
// state, and nothing is persisted.
func TestCancelRunningJob(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1})
	// A deliberately enormous sampling budget: the job cannot finish fast,
	// so the cancel always lands mid-run.
	spec := JobSpec{
		Source: synGuardSrc(t),
		Options: core.WireOptions{
			Seed:             1,
			MaxIters:         1,
			SampleBudget:     1 << 30,
			DisableTelescope: true,
		},
	}
	st, code, err := s.Submit(spec)
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("submit: code=%d err=%v", code, err)
	}
	j, _ := s.Job(st.ID)
	waitState(t, j, StateRunning)
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	j.Cancel()
	waitDone(t, j)
	if j.State() != StateCanceled {
		t.Fatalf("state = %s (%s), want canceled", j.State(), j.Status().Error)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if _, ok := s.store.Get(st.ID); ok {
		t.Fatal("canceled job persisted a result")
	}
	if c := s.reg.Counter("serve.jobs_canceled").Value(); c != 1 {
		t.Fatalf("jobs_canceled = %d", c)
	}
}

// A panicking engine fails its job — with the panic in the job error — and
// leaves the daemon serving.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1})
	src := synGuardSrc(t)
	s.testFault = func(spec JobSpec) {
		if spec.Options.Seed == 666 {
			panic("injected engine fault")
		}
	}

	st, _, err := s.Submit(JobSpec{Source: src, Options: core.WireOptions{Seed: 666}})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.Job(st.ID)
	waitDone(t, j)
	if j.State() != StateFailed {
		t.Fatalf("state = %s, want failed", j.State())
	}
	if msg := j.Status().Error; !strings.Contains(msg, "injected engine fault") {
		t.Fatalf("job error does not carry the panic: %q", msg)
	}
	if p := s.reg.Counter("serve.panics").Value(); p != 1 {
		t.Fatalf("panics = %d", p)
	}

	// The worker survived; the next job runs normally.
	st2, _, err := s.Submit(JobSpec{Source: src, Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := s.Job(st2.ID)
	waitDone(t, j2)
	if j2.State() != StateDone {
		t.Fatalf("follow-up job: %s (%s)", j2.State(), j2.Status().Error)
	}
}

// Drain with a job in flight: intake stops immediately, the in-flight job
// finishes and persists its result, and Drain returns cleanly.
func TestDrainPersistsInFlight(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1})
	hold := make(chan struct{})
	s.testHold = hold
	spec := JobSpec{Source: synGuardSrc(t), Scale: "quick"}

	st, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitPopped(t, s)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Intake is closed before the drain completes.
	deadline := time.Now().Add(10 * time.Second)
	for !s.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, code, err := s.Submit(JobSpec{Source: synGuardSrc(t), Options: core.WireOptions{Seed: 7}}); code != http.StatusServiceUnavailable || err != ErrDraining {
		t.Fatalf("submit during drain: code=%d err=%v, want 503/ErrDraining", code, err)
	}

	close(hold) // let the held job run to completion
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	j, _ := s.Job(st.ID)
	if j.State() != StateDone {
		t.Fatalf("in-flight job after drain: %s (%s)", j.State(), j.Status().Error)
	}
	if _, ok := s.store.Get(st.ID); !ok {
		t.Fatal("drained job's result not persisted")
	}
}

// Adversarial jobs flow through the same lifecycle and store a validated
// packet sequence.
func TestAdversarialJob(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1})
	spec := JobSpec{
		Kind:    KindAdversarial,
		Source:  synGuardSrc(t),
		Target:  "alarm",
		Options: core.WireOptions{Seed: 1},
	}
	st, code, err := s.Submit(spec)
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("submit: code=%d err=%v", code, err)
	}
	j, _ := s.Job(st.ID)
	waitDone(t, j)
	if j.State() != StateDone {
		t.Fatalf("adversarial job: %s (%s)", j.State(), j.Status().Error)
	}
	data, ok := s.store.Get(st.ID)
	if !ok {
		t.Fatal("no stored result")
	}
	var res AdvResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindAdversarial || res.Target != "alarm" || !res.Validated || len(res.Packets) == 0 {
		t.Fatalf("adversarial result: kind=%s target=%s validated=%v packets=%d",
			res.Kind, res.Target, res.Validated, len(res.Packets))
	}
	if res.Job == nil || res.Job.ID != st.ID {
		t.Fatalf("adversarial result job block: %+v", res.Job)
	}
}

// End-to-end over HTTP: submit, poll status, stream events, fetch the
// result, list, cancel errors, health, and metrics — all on one mux.
func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	if resp, body := get("/v1/healthz"); resp.StatusCode != 200 || !strings.Contains(string(body), "serving") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	spec := JobSpec{Source: synGuardSrc(t), Scale: "quick"}
	payload, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}

	// Unknown-field payloads are rejected.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"source": "x", "bogus_field": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", resp.StatusCode)
	}

	// The SSE stream ends with a done event carrying the terminal state.
	sseResp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	sawDone := false
	sc := bufio.NewScanner(sseResp.Body)
	for sc.Scan() {
		if sc.Text() == "event: done" {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("SSE stream ended without a done event")
	}

	// Status and result are now served.
	resp, body := get("/v1/jobs/" + st.ID)
	var fin JobStatus
	json.Unmarshal(body, &fin)
	if resp.StatusCode != 200 || fin.State != StateDone {
		t.Fatalf("status after done: %d %+v", resp.StatusCode, fin)
	}
	resp, body = get("/v1/jobs/" + st.ID + "/result")
	if resp.StatusCode != 200 || !json.Valid(body) {
		t.Fatalf("result: %d (%d bytes)", resp.StatusCode, len(body))
	}
	var rep obs.Report
	if err := json.Unmarshal(body, &rep); err != nil || rep.SchemaVersion != obs.SchemaVersion {
		t.Fatalf("result is not a v%d report: %v", obs.SchemaVersion, err)
	}

	resp, body = get("/v1/jobs")
	if resp.StatusCode != 200 || !strings.Contains(string(body), st.ID) {
		t.Fatalf("list does not include the job: %d %s", resp.StatusCode, body)
	}

	if resp, _ := get("/v1/jobs/" + strings.Repeat("0", 64)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status: %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+strings.Repeat("0", 64), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job: %d", resp.StatusCode)
	}

	resp, body = get("/metrics")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "serve_jobs_run") {
		t.Fatalf("metrics endpoint: %d %.200s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("metrics content type = %q, want %q", ct, obs.PrometheusContentType)
	}
	if errs := obs.LintPrometheus(body); len(errs) != 0 {
		t.Fatalf("metrics exposition fails lint: %v", errs)
	}

	// The job's span tree exports as Chrome trace_event JSON.
	resp, body = get("/debug/trace/" + st.ID)
	if resp.StatusCode != 200 {
		t.Fatalf("trace endpoint: %d %.200s", resp.StatusCode, body)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		if n, _ := ev["name"].(string); n != "" {
			names[n] = true
		}
	}
	for _, want := range []string{"job", "queued", "run", "probprof", "persist"} {
		if !names[want] {
			t.Fatalf("trace missing span %q; got %v", want, names)
		}
	}
	if resp, _ := get("/debug/trace/" + strings.Repeat("0", 64)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace of unknown job: %d", resp.StatusCode)
	}
}

// A 429 response carries Retry-After so clients know to back off.
func TestHTTPBackpressureRetryAfter(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 1})
	hold := make(chan struct{})
	s.testHold = hold
	defer close(hold)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	src := synGuardSrc(t)
	submit := func(seed int64) *http.Response {
		t.Helper()
		payload, _ := json.Marshal(JobSpec{Source: src, Options: core.WireOptions{Seed: seed}})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := submit(1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: %d", resp.StatusCode)
	}
	waitPopped(t, s)
	if resp := submit(2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: %d", resp.StatusCode)
	}
	resp := submit(3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 3: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}
