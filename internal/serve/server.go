package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/p4c"
	"repro/internal/programs"
	"repro/internal/testgen"
	"repro/internal/trace"
)

// Config tunes the profiling service.
type Config struct {
	// StoreDir roots the content-addressed result store
	// (default "results/store").
	StoreDir string
	// StoreCap bounds the store's in-memory LRU layer (default 256).
	StoreCap int
	// QueueDepth bounds queued jobs; past it submissions get 429 +
	// Retry-After (default 64).
	QueueDepth int
	// JobWorkers is how many jobs run concurrently (default 2).
	JobWorkers int
	// ProfWorkers is each job's profiler parallelism (0 = GOMAXPROCS).
	// Profiles are byte-identical for every value, so it is a throughput
	// knob, never a correctness one.
	ProfWorkers int
	// DefaultJobTimeout bounds jobs that do not ask for a timeout
	// (default 5m); MaxJobTimeout clamps jobs that do (default 30m).
	DefaultJobTimeout time.Duration
	MaxJobTimeout     time.Duration
	// MaxPathsQuota caps the per-job MaxPaths option (default 1<<20;
	// negative disables the cap). It only binds when a submission asks for
	// more than the quota, so default-option jobs stay byte-identical to
	// offline runs.
	MaxPathsQuota int
	// ReplayCap bounds each job's SSE replay buffer in lines (default 4096);
	// past it late subscribers only see live lines.
	ReplayCap int
	// Registry receives the service counters and views; a fresh registry
	// is created when nil.
	Registry *obs.Registry
	// Logger receives the daemon's structured log lines; every record tagged
	// with a job carries job_id and trace_id attributes. Nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.StoreDir == "" {
		c.StoreDir = "results/store"
	}
	if c.StoreCap == 0 {
		c.StoreCap = 256
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.JobWorkers == 0 {
		c.JobWorkers = 2
	}
	if c.DefaultJobTimeout == 0 {
		c.DefaultJobTimeout = 5 * time.Minute
	}
	if c.MaxJobTimeout == 0 {
		c.MaxJobTimeout = 30 * time.Minute
	}
	if c.MaxPathsQuota == 0 {
		c.MaxPathsQuota = 1 << 20
	}
	if c.ReplayCap == 0 {
		c.ReplayCap = hubReplayCap
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the profiling service: it owns the queue, the store, and the
// worker pool of job runners, and serves the JSON HTTP API.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	log   *slog.Logger
	store *Store
	queue *queue

	mu   sync.Mutex
	jobs map[string]*Job

	draining bool

	baseCtx  context.Context
	stopAll  context.CancelFunc
	workerWG sync.WaitGroup

	// testHold, when non-nil, gates job execution: each worker receives
	// from it before running a job. Tests use it to pile up concurrent
	// identical submissions behind one in-flight job.
	testHold chan struct{}
	// testFault, when non-nil, runs at the head of execute; tests use it to
	// inject engine panics and verify per-job isolation.
	testFault func(spec JobSpec)
}

// jobsCap bounds the in-memory job table; terminal jobs are discarded
// oldest-first past it (their results live on in the store).
const jobsCap = 1024

// New builds a Server and starts its job workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	store, err := OpenStore(cfg.StoreDir, cfg.StoreCap)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		log:     cfg.Logger,
		store:   store,
		queue:   newQueue(cfg.QueueDepth),
		jobs:    map[string]*Job{},
		baseCtx: ctx,
		stopAll: cancel,
	}
	s.reg.RegisterView("store", store.Metrics)
	s.reg.RegisterView("serve", s.viewMetrics)
	s.reg.SetHelp("serve.queue_wait_seconds", "Time jobs spend queued before running, by outcome.")
	s.reg.SetHelp("serve.job_run_seconds", "Job run duration from start to terminal state, by outcome.")
	s.reg.SetHelp("serve.sse_lag_lines", "Per-line backlog of live SSE subscriber channels.")
	s.reg.SetHelp("serve.store_hit_ratio", "Fraction of store lookups served from cache.")
	for i := 0; i < cfg.JobWorkers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// Store exposes the result store (the daemon logs its directory).
func (s *Server) Store() *Store { return s.store }

// Registry exposes the metrics registry backing /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// viewMetrics is the "serve." gauge view.
func (s *Server) viewMetrics() map[string]float64 {
	s.mu.Lock()
	jobs := len(s.jobs)
	running := 0
	for _, j := range s.jobs {
		if j.State() == StateRunning {
			running++
		}
	}
	draining := 0.0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	out := map[string]float64{
		"queue_depth": float64(s.queue.depth()),
		"jobs":        float64(jobs),
		"running":     float64(running),
		"draining":    draining,
	}
	// Store hit ratio as a gauge: hits over lookups, 0 before any traffic.
	sm := s.store.Metrics()
	if total := sm["hits_total"] + sm["misses"]; total > 0 {
		out["store_hit_ratio"] = sm["hits_total"] / total
	} else {
		out["store_hit_ratio"] = 0
	}
	return out
}

// Submit runs the single-flight submission flow shared by the HTTP handler
// and in-process tests. The returned code is the HTTP status the outcome
// maps to: 200 (served from store or deduplicated onto an existing job),
// 202 (newly enqueued), 400 (bad spec), 429 (queue full), 503 (draining).
func (s *Server) Submit(spec JobSpec) (JobStatus, int, error) {
	norm, err := spec.normalize()
	if err != nil {
		return JobStatus{}, http.StatusBadRequest, err
	}
	id := norm.id()
	s.reg.Counter("serve.submitted").Inc()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reg.Counter("serve.rejected_draining").Inc()
		return JobStatus{}, http.StatusServiceUnavailable, ErrDraining
	}
	if j, ok := s.jobs[id]; ok && j.State() != StateFailed && j.State() != StateCanceled {
		// Single-flight: an identical job is queued, running, or done.
		st := j.Status()
		if st.State == StateDone {
			st.Cached = true
			s.reg.Counter("serve.store_hits").Inc()
		} else {
			s.reg.Counter("serve.dedup_inflight").Inc()
		}
		s.mu.Unlock()
		return st, http.StatusOK, nil
	}
	s.mu.Unlock()

	// Replay from the content-addressed store: identical work was finished
	// in this or an earlier daemon life.
	if _, ok := s.store.Get(id); ok {
		s.reg.Counter("serve.store_hits").Inc()
		return JobStatus{
			ID: id, Kind: norm.Kind, State: StateDone, Cached: true,
			Priority: norm.Priority,
		}, http.StatusOK, nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.reg.Counter("serve.rejected_draining").Inc()
		return JobStatus{}, http.StatusServiceUnavailable, ErrDraining
	}
	// Re-check under the lock: a racing identical submission may have won.
	if j, ok := s.jobs[id]; ok && j.State() != StateFailed && j.State() != StateCanceled {
		s.reg.Counter("serve.dedup_inflight").Inc()
		return j.Status(), http.StatusOK, nil
	}
	j := newJob(id, norm, time.Now(), s.cfg.ReplayCap)
	j.hub.lag = s.reg.Histogram("serve.sse_lag_lines")
	j.hub.dropCtr = s.reg.Counter("serve.sse_dropped_lines")
	if err := s.queue.push(j); err != nil {
		code := http.StatusServiceUnavailable
		if err == ErrQueueFull {
			code = http.StatusTooManyRequests
			s.reg.Counter("serve.rejected_full").Inc()
		}
		return JobStatus{}, code, err
	}
	s.jobs[id] = j
	s.trimJobsLocked()
	s.reg.Counter("serve.enqueued").Inc()
	s.jobLog(j).Info("job enqueued",
		"kind", j.Spec.Kind, "priority", j.Spec.Priority,
		"queue_depth", s.queue.depth())
	return j.Status(), http.StatusAccepted, nil
}

// jobLog returns the server logger scoped to a job: every record carries
// the job and trace identifiers.
func (s *Server) jobLog(j *Job) *slog.Logger {
	return s.log.With("job_id", j.ID, "trace_id", j.traceID)
}

// trimJobsLocked discards the oldest terminal jobs past jobsCap; callers
// hold s.mu. Results remain addressable through the store.
func (s *Server) trimJobsLocked() {
	if len(s.jobs) <= jobsCap {
		return
	}
	type aged struct {
		id string
		at time.Time
	}
	var terminal []aged
	for id, j := range s.jobs {
		j.mu.Lock()
		if j.state.terminal() {
			terminal = append(terminal, aged{id, j.finished})
		}
		j.mu.Unlock()
	}
	sort.Slice(terminal, func(i, k int) bool { return terminal[i].at.Before(terminal[k].at) })
	for _, t := range terminal {
		if len(s.jobs) <= jobsCap {
			break
		}
		delete(s.jobs, t.id)
	}
}

// Job returns the in-memory job record for an ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// worker pulls jobs off the queue until the queue closes and drains.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		if hold := s.testHold; hold != nil {
			<-hold
		}
		s.runJob(j)
	}
}

// runJob executes one job under its deadline with panic isolation: a
// panicking engine fails the job, never the daemon.
func (s *Server) runJob(j *Job) {
	timeout := s.cfg.DefaultJobTimeout
	if j.Spec.TimeoutSec > 0 {
		timeout = time.Duration(j.Spec.TimeoutSec * float64(time.Second))
	}
	if timeout > s.cfg.MaxJobTimeout {
		timeout = s.cfg.MaxJobTimeout
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	started := time.Now()
	if !j.setRunning(cancel, started) {
		// Canceled while queued: the wait still ended, just not in a run.
		s.reg.Histogram(`serve.queue_wait_seconds{outcome="canceled"}`).
			Observe(started.Sub(j.submitted).Seconds())
		return
	}
	s.reg.Counter("serve.jobs_run").Inc()
	s.reg.Histogram(`serve.queue_wait_seconds{outcome="run"}`).
		Observe(started.Sub(j.submitted).Seconds())
	s.jobLog(j).Info("job started",
		"kind", j.Spec.Kind, "timeout", timeout.String(),
		"wait_sec", started.Sub(j.submitted).Seconds())

	finish := func(state JobState, errMsg, outcome string) {
		now := time.Now()
		dur := now.Sub(started)
		s.reg.Histogram(`serve.job_run_seconds{outcome="`+outcome+`"}`).
			Observe(dur.Seconds())
		j.finish(state, errMsg, now)
		lg := s.jobLog(j)
		if errMsg == "" {
			lg.Info("job finished", "outcome", outcome, "run_sec", dur.Seconds())
		} else {
			lg.Warn("job finished", "outcome", outcome, "run_sec", dur.Seconds(),
				"error", firstLine(errMsg))
		}
	}

	defer func() {
		if rec := recover(); rec != nil {
			s.reg.Counter("serve.panics").Inc()
			s.reg.Counter("serve.jobs_failed").Inc()
			finish(StateFailed, fmt.Sprintf("panic: %v\n%s", rec, debug.Stack()), "failed")
		}
	}()

	data, err := s.execute(ctx, j)
	switch {
	case err == nil:
		if perr := s.persist(j, data); perr != nil {
			s.reg.Counter("serve.jobs_failed").Inc()
			finish(StateFailed, "persist result: "+perr.Error(), "failed")
			return
		}
		s.reg.Counter("serve.jobs_done").Inc()
		finish(StateDone, "", "done")
	case ctx.Err() == context.Canceled:
		s.reg.Counter("serve.jobs_canceled").Inc()
		finish(StateCanceled, "canceled", "canceled")
	case ctx.Err() == context.DeadlineExceeded:
		s.reg.Counter("serve.jobs_failed").Inc()
		finish(StateFailed, fmt.Sprintf("job timeout (%s) exceeded", timeout), "failed")
	default:
		s.reg.Counter("serve.jobs_failed").Inc()
		finish(StateFailed, err.Error(), "failed")
	}
}

// persist writes the job's result into the content-addressed store under
// its own span, so trace exports show store latency next to engine time.
func (s *Server) persist(j *Job, data []byte) error {
	_, span := j.tracer.StartSpanCtx(j.runContext(context.Background()), "persist")
	span.Annotate(obs.F("bytes", float64(len(data))))
	err := s.store.Put(j.ID, data)
	span.End()
	return err
}

// firstLine trims a multi-line error (panic stacks) for log records; the
// full text stays on the job status.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// execute runs the job's pipeline and returns the result JSON to store.
func (s *Server) execute(ctx context.Context, j *Job) ([]byte, error) {
	if s.testFault != nil {
		s.testFault(j.Spec)
	}
	prog, meta, err := s.buildProgram(j.Spec)
	if err != nil {
		return nil, err
	}
	switch j.Spec.Kind {
	case KindAdversarial:
		return s.runAdversarial(ctx, j, prog)
	default:
		return s.runProfile(ctx, j, prog, meta)
	}
}

// buildProgram resolves the spec's program or inline source. meta is nil
// for inline sources.
func (s *Server) buildProgram(spec JobSpec) (*ir.Program, *programs.Meta, error) {
	if spec.Source != "" {
		prog, err := p4c.Parse(spec.Source)
		if err != nil {
			return nil, nil, fmt.Errorf("compile source: %w", err)
		}
		return prog, nil, nil
	}
	m, ok := programs.ByName(spec.Program)
	if !ok {
		return nil, nil, fmt.Errorf("unknown program %q", spec.Program)
	}
	return m.Build(), &m, nil
}

// oracleFor mirrors the CLI's workload selection so served profiles are
// byte-identical to `p4wn profile` for the same inputs: zoo programs use
// their registered workload, inline sources the default synthetic trace,
// and uniform submissions no oracle at all.
func oracleFor(spec JobSpec, meta *programs.Meta) dist.Oracle {
	if spec.Uniform {
		return nil
	}
	gen := trace.GenOptions{Seed: spec.Options.Seed}
	if meta != nil {
		gen = meta.Workload(spec.Options.Seed)
	}
	return trace.NewQueryProcessor(trace.Generate(gen))
}

// runProfile executes a profile job and renders the versioned run report
// with job metadata attached.
func (s *Server) runProfile(ctx context.Context, j *Job, prog *ir.Program, meta *programs.Meta) ([]byte, error) {
	opt := j.Spec.Options.Options()
	// The job's own tracer runs the profile, so engine spans nest under the
	// job's "run" span and /debug/trace/{id} exports one connected tree.
	opt.Context = j.runContext(ctx)
	opt.Workers = s.cfg.ProfWorkers
	opt.Tracer = j.tracer
	if s.cfg.MaxPathsQuota > 0 && opt.MaxPaths > s.cfg.MaxPathsQuota {
		opt.MaxPaths = s.cfg.MaxPathsQuota
	}
	prof, err := core.ProbProf(prog, oracleFor(j.Spec, meta), opt)
	if err != nil {
		return nil, err
	}
	rep := core.NewReport(prof, opt)
	core.AttachIFC(rep, prog, prof)
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Job = s.jobMeta(j)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// runAdversarial executes an adversarial-generation job; the job context
// threads through directed symbex, the solver, and havocing, so Cancel
// stops a solving job mid-search.
func (s *Server) runAdversarial(ctx context.Context, j *Job, prog *ir.Program) ([]byte, error) {
	node := prog.NodeByLabel(j.Spec.Target)
	if node == nil {
		return nil, fmt.Errorf("program %q has no block labeled %q", prog.Name, j.Spec.Target)
	}
	adv, err := testgen.Generate(prog, node.ID, testgen.Options{
		Seed:   j.Spec.Options.Seed,
		Ctx:    ctx,
		Target: j.Spec.Options.Target,
	})
	if err != nil {
		return nil, err
	}
	res := advResultFrom(adv, obs.SchemaVersion)
	res.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	res.Job = s.jobMeta(j)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// jobMeta snapshots the job's queue trajectory for the stored result.
func (s *Server) jobMeta(j *Job) *obs.JobMeta {
	j.mu.Lock()
	defer j.mu.Unlock()
	m := &obs.JobMeta{
		ID:          j.ID,
		TraceID:     j.traceID,
		Kind:        j.Spec.Kind,
		Priority:    j.Spec.Priority,
		SubmittedAt: timeRFC(j.submitted),
		StartedAt:   timeRFC(j.started),
	}
	if !j.started.IsZero() {
		m.WaitSec = j.started.Sub(j.submitted).Seconds()
	}
	return m
}

// Draining reports whether the server has begun its graceful drain.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain performs the graceful shutdown: stop accepting submissions, let
// workers finish everything queued and in flight (results are persisted as
// usual), and return when the last worker parks. If ctx expires first, the
// remaining jobs are hard-canceled and Drain returns ctx.Err().
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.queue.close()
	s.log.Info("drain started", "queue_depth", s.queue.depth())

	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("drain complete")
		return nil
	case <-ctx.Done():
		s.stopAll() // cancels every in-flight job context
		<-done
		s.log.Warn("drain deadline hit; in-flight jobs canceled")
		return ctx.Err()
	}
}

// Close hard-stops the server (tests): cancel everything and wait.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.queue.close()
	s.stopAll()
	s.workerWG.Wait()
}

// Handler returns the service mux: the job API plus the observability
// endpoints (/metrics, expvar, pprof) on the same listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleLive)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	obs.Mount(mux, s.reg)
	return mux
}

// handleTrace exports a job's span tree as Chrome trace_event JSON, ready
// for chrome://tracing or https://ui.perfetto.dev.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown job " + id})
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Disposition", `attachment; filename="trace-`+j.traceID+`.json"`)
	j.tracer.WriteChromeTrace(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	state := "serving"
	if s.Draining() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": state})
}

// handleLive is the liveness probe: 200 for as long as the process can
// answer HTTP at all, draining included. Orchestrators restart on failure
// here, so it must never report drain as death.
func (s *Server) handleLive(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"state": "ok"})
}

// handleReady is the readiness probe: 200 while accepting submissions, 503
// once the drain barrier is down. Load balancers and the cluster
// coordinator stop routing new work on the first 503 while in-flight jobs
// finish behind it.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"state": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": "serving"})
}

// Stats snapshots the daemon's load for the coordinator heartbeat.
func (s *Server) Stats() NodeStats {
	s.mu.Lock()
	jobs := len(s.jobs)
	running := 0
	for _, j := range s.jobs {
		if j.State() == StateRunning {
			running++
		}
	}
	draining := s.draining
	s.mu.Unlock()
	st := NodeStats{
		State:         "serving",
		QueueDepth:    s.queue.depth(),
		Running:       running,
		JobWorkers:    s.cfg.JobWorkers,
		Jobs:          jobs,
		StoreResident: s.store.Resident(),
	}
	if draining {
		st.State = "draining"
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"decode job spec: " + err.Error()})
		return
	}
	// A forwarding coordinator pins the trace identity via header; it wins
	// over any trace_id in the body (normalize validates either way).
	if h := r.Header.Get("X-P4wn-Trace-Id"); h != "" {
		spec.TraceID = h
	}
	st, code, err := s.Submit(spec)
	if err != nil {
		if code == http.StatusTooManyRequests {
			// Backpressure: tell clients when to come back.
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, errorBody{err.Error()})
		return
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		statuses = append(statuses, j.Status())
	}
	s.mu.Unlock()
	sort.Slice(statuses, func(i, k int) bool {
		if statuses[i].SubmittedAt != statuses[k].SubmittedAt {
			return statuses[i].SubmittedAt < statuses[k].SubmittedAt
		}
		return statuses[i].ID < statuses[k].ID
	})
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := s.Job(id); ok {
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	// Fall back to the store: a finished job from a previous daemon life.
	if _, ok := s.store.Get(id); ok {
		writeJSON(w, http.StatusOK, JobStatus{ID: id, State: StateDone, Cached: true})
		return
	}
	writeJSON(w, http.StatusNotFound, errorBody{"unknown job " + id})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown job " + id})
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if data, ok := s.store.Get(id); ok {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.Write(data)
		return
	}
	j, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown job " + id})
		return
	}
	switch st := j.Status(); st.State {
	case StateQueued, StateRunning:
		writeJSON(w, http.StatusAccepted, st) // not ready yet; poll again
	case StateCanceled:
		writeJSON(w, http.StatusGone, st)
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, st)
	default:
		// Done but missing from the store: the persist failed and the job
		// should have been marked failed; surface it as such.
		writeJSON(w, http.StatusInternalServerError, errorBody{"result missing for job " + id})
	}
}

// handleEvents streams the job's progress lines as Server-Sent Events:
// every tracer line is one "data:" event, and a final "done" event carries
// the terminal state. Late subscribers replay the full history first.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown job " + id})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{"streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, replay := j.hub.subscribe()
	defer j.hub.unsubscribe(ch)
	for _, line := range replay {
		fmt.Fprintf(w, "data: %s\n\n", line)
	}
	flusher.Flush()

	for {
		select {
		case line, open := <-ch:
			if !open {
				fmt.Fprintf(w, "event: done\ndata: %s\n\n", j.State())
				flusher.Flush()
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", line)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
