package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Store is the content-addressed result store: finished job results keyed
// by the job fingerprint, persisted as <dir>/<hash>.json with atomic
// writes, fronted by a bounded in-memory LRU layer. Replayed submissions
// are served from here without touching the engine, and results survive
// daemon restarts.
type Store struct {
	dir string
	cap int

	mu   sync.Mutex
	lru  *list.List // front = most recent; values are *storeEntry
	byID map[string]*list.Element

	hitsMem   atomic.Int64
	hitsDisk  atomic.Int64
	misses    atomic.Int64
	puts      atomic.Int64
	evictions atomic.Int64
	badFiles  atomic.Int64 // torn/partial files ignored on read
}

type storeEntry struct {
	id   string
	data []byte
}

// OpenStore opens (creating if needed) a result store rooted at dir,
// keeping up to capEntries results resident in memory (<= 0 selects 256).
func OpenStore(dir string, capEntries int) (*Store, error) {
	if capEntries <= 0 {
		capEntries = 256
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, cap: capEntries, lru: list.New(), byID: map[string]*list.Element{}}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps an ID to its on-disk file. IDs are validated hex fingerprints,
// so the join cannot escape the store directory.
func (s *Store) path(id string) string { return filepath.Join(s.dir, id+".json") }

// validID accepts exactly the lowercase-hex SHA-256 IDs the fingerprint
// produces; everything else is rejected before touching the filesystem.
func validID(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the stored result bytes for a job ID. The memory layer is
// consulted first; on a disk hit the entry is promoted into memory. A file
// that is not complete valid JSON — a torn write from a crash predating
// the atomic-rename discipline, or manual tampering — is ignored rather
// than served. Callers must not mutate the returned slice.
func (s *Store) Get(id string) ([]byte, bool) {
	if !validID(id) {
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.byID[id]; ok {
		s.lru.MoveToFront(el)
		data := el.Value.(*storeEntry).data
		s.mu.Unlock()
		s.hitsMem.Add(1)
		return data, true
	}
	s.mu.Unlock()

	data, err := os.ReadFile(s.path(id))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	if !json.Valid(data) {
		s.badFiles.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hitsDisk.Add(1)
	s.insert(id, data)
	return data, true
}

// Put persists a result under its job ID: an atomic temp-file + rename on
// disk, then insertion into the memory layer. A crash mid-Put leaves
// either the previous file or the new one, never a truncated mix.
func (s *Store) Put(id string, data []byte) error {
	if !validID(id) {
		return fmt.Errorf("store: invalid id %q", id)
	}
	if err := obs.WriteFileAtomic(s.path(id), data); err != nil {
		return err
	}
	s.puts.Add(1)
	s.insert(id, data)
	return nil
}

// insert adds (or refreshes) a memory-layer entry, evicting from the LRU
// tail past capacity. Evicted results remain on disk.
func (s *Store) insert(id string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byID[id]; ok {
		el.Value.(*storeEntry).data = data
		s.lru.MoveToFront(el)
		return
	}
	s.byID[id] = s.lru.PushFront(&storeEntry{id: id, data: data})
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		delete(s.byID, back.Value.(*storeEntry).id)
		s.lru.Remove(back)
		s.evictions.Add(1)
	}
}

// Resident returns how many results the memory layer currently holds.
func (s *Store) Resident() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Metrics snapshots the store counters for the registry view.
func (s *Store) Metrics() map[string]float64 {
	return map[string]float64{
		"resident":   float64(s.Resident()),
		"cap":        float64(s.cap),
		"hits_mem":   float64(s.hitsMem.Load()),
		"hits_disk":  float64(s.hitsDisk.Load()),
		"misses":     float64(s.misses.Load()),
		"puts":       float64(s.puts.Load()),
		"evictions":  float64(s.evictions.Load()),
		"bad_files":  float64(s.badFiles.Load()),
		"hits_total": float64(s.hitsMem.Load() + s.hitsDisk.Load()),
	}
}
