package serve

import (
	"container/heap"
	"errors"
	"sync"
)

// ErrQueueFull is returned by push when the queue is at capacity; the HTTP
// layer maps it to 429 + Retry-After (backpressure, not failure).
var ErrQueueFull = errors.New("serve: job queue full")

// ErrDraining is returned by push once the server has begun draining.
var ErrDraining = errors.New("serve: server draining")

// queue is a bounded priority queue of jobs: higher Priority pops first,
// FIFO within a priority (by submission sequence). close() stops intake
// while letting workers drain what is already queued.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  jobHeap
	seq    uint64
	cap    int
	closed bool
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job, assigning its FIFO sequence number.
func (q *queue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.items) >= q.cap {
		return ErrQueueFull
	}
	q.seq++
	j.seq = q.seq
	heap.Push(&q.items, j)
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available or the queue is closed and empty.
// Jobs canceled while queued are discarded here (their state is already
// terminal), so cancellation needs no heap surgery.
func (q *queue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for len(q.items) > 0 {
			j := heap.Pop(&q.items).(*Job)
			if j.State() == StateCanceled {
				continue
			}
			return j, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// close stops intake and wakes every waiting worker; queued jobs still pop.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth returns the current queue length (including canceled stragglers).
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// jobHeap orders by priority descending, then submission sequence
// ascending.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Spec.Priority != h[j].Spec.Priority {
		return h[i].Spec.Priority > h[j].Spec.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)        { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return out
}
