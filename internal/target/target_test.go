package target

import (
	"strings"
	"testing"
)

// The nil model is the idealized device: every method must behave as a
// no-op so engine code can thread Options.Target unconditionally.
func TestNilModelIsIdealized(t *testing.T) {
	var m *Model
	if m.StageLimit() != 0 {
		t.Fatalf("nil StageLimit = %d, want 0", m.StageLimit())
	}
	if !m.Recirculates() {
		t.Fatal("nil model must recirculate")
	}
	if m.Exact() {
		t.Fatal("nil model must not be exact-state")
	}
	if !m.IsIdealized() {
		t.Fatal("nil model must report idealized")
	}
	if got := m.CanonicalName(); got != "idealized" {
		t.Fatalf("nil CanonicalName = %q", got)
	}
	for _, n := range []int{1, 7, 1 << 20} {
		if m.ClampHashSlots(n) != n || m.ClampBloomBits(n) != n ||
			m.ClampSketchCols(n) != n || m.ClampArrayCells(n) != n ||
			m.ClampTableEntries(n) != n {
			t.Fatalf("nil clamps must pass %d through", n)
		}
	}
	if m.Limits() != "none" {
		t.Fatalf("nil Limits = %q", m.Limits())
	}
}

func TestIdealizedIsStrictNoOp(t *testing.T) {
	if !Idealized.IsIdealized() {
		t.Fatal("Idealized must report idealized")
	}
	if Idealized.StageLimit() != 0 || !Idealized.Recirculates() || Idealized.Exact() {
		t.Fatalf("Idealized has constraints: %+v", Idealized)
	}
	if Idealized.ClampHashSlots(4096) != 4096 {
		t.Fatal("Idealized must not clamp")
	}
}

func TestTofinoClamps(t *testing.T) {
	if Tofino.IsIdealized() {
		t.Fatal("Tofino must not report idealized")
	}
	if Tofino.StageLimit() != 12 || Tofino.Overflow() != OverflowDrop {
		t.Fatalf("Tofino stage budget: %+v", Tofino)
	}
	if got := Tofino.ClampHashSlots(2048); got != 512 {
		t.Fatalf("ClampHashSlots(2048) = %d, want 512", got)
	}
	if got := Tofino.ClampHashSlots(64); got != 64 {
		t.Fatalf("ClampHashSlots(64) = %d, want passthrough 64", got)
	}
	if got := Tofino.ClampBloomBits(1 << 16); got != 4096 {
		t.Fatalf("ClampBloomBits = %d, want 4096", got)
	}
	if got := Tofino.ClampSketchCols(2048); got != 1024 {
		t.Fatalf("ClampSketchCols = %d, want 1024", got)
	}
	if got := Tofino.ClampTableEntries(5000); got != 1024 {
		t.Fatalf("ClampTableEntries = %d, want 1024", got)
	}
	// Structure clamps never produce a degenerate zero-size store...
	m := &Model{MaxHashSlots: 4}
	if got := m.ClampHashSlots(0); got < 1 {
		t.Fatalf("clamp produced %d slots", got)
	}
	// ...but a table clamp may legitimately empty a table.
	e := &Model{MaxTableEntries: 2}
	if got := e.ClampTableEntries(0); got != 0 {
		t.Fatalf("ClampTableEntries(0) = %d, want 0", got)
	}
}

func TestEBPFSemantics(t *testing.T) {
	if EBPF.Recirculates() {
		t.Fatal("eBPF model must not recirculate")
	}
	if !EBPF.Exact() {
		t.Fatal("eBPF model must be exact-state")
	}
	if EBPF.StageLimit() != 32 || EBPF.Overflow() != OverflowPunt {
		t.Fatalf("eBPF path bound: %+v", EBPF)
	}
	if EBPF.ClampHashSlots(4096) != 4096 {
		t.Fatal("eBPF model has no SRAM clamp")
	}
}

func TestLookup(t *testing.T) {
	for _, name := range []string{"", "idealized", "tofino", "ebpf"} {
		m, err := Lookup(name)
		if err != nil || m == nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
	}
	if m, _ := Lookup(""); m != Idealized {
		t.Fatal("empty name must resolve to Idealized")
	}
	_, err := Lookup("bmv2")
	if err == nil {
		t.Fatal("unknown target must error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bmv2"`) || !strings.Contains(msg, "ebpf") ||
		!strings.Contains(msg, "idealized") || !strings.Contains(msg, "tofino") {
		t.Fatalf("error should name the unknown target and the registry: %q", msg)
	}
}

func TestNamesAndAll(t *testing.T) {
	names := Names()
	want := []string{"ebpf", "idealized", "tofino"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v (sorted)", names, want)
		}
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d models", len(all))
	}
	for i, m := range all {
		if m.CanonicalName() != want[i] {
			t.Fatalf("All()[%d] = %q, want %q", i, m.CanonicalName(), want[i])
		}
	}
}

func TestLimitsStrings(t *testing.T) {
	if s := Tofino.Limits(); !strings.Contains(s, "stages<=12(drop)") ||
		!strings.Contains(s, "hash<=512") {
		t.Fatalf("Tofino limits = %q", s)
	}
	if s := EBPF.Limits(); !strings.Contains(s, "stages<=32(punt)") ||
		!strings.Contains(s, "no-recirc") || !strings.Contains(s, "exact-state") {
		t.Fatalf("eBPF limits = %q", s)
	}
	if s := Idealized.Limits(); s != "none" {
		t.Fatalf("Idealized limits = %q", s)
	}
}
