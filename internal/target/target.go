// Package target defines pluggable device models for the symbolic engine
// and the concrete switch (P4Testgen-style: one symbolic core, many target
// backends). A Model captures everything that used to be hardcoded about
// the device — resource limits (table capacity, register/store sizes),
// stage/pipeline structure (how many stateful applies fit in one pass,
// whether recirculation exists), extern behavior (hash collision
// semantics), and drop/punt semantics — so the same program yields a
// different probability profile per target.
//
// The zero value of Model is the idealized device: no limits, exact
// recirculation, the paper's semantics. Every accessor is nil-receiver
// safe and treats a zero field as "unlimited", so threading a *Model
// through the engine is free for the idealized path: nil and
// target.Idealized behave bit-for-bit identically to the pre-target code.
package target

import (
	"fmt"
	"sort"
	"strings"
)

// Overflow says what happens to a packet whose pass exceeds the target's
// stage budget.
type Overflow int

const (
	// OverflowDrop drops the packet at the stage limit (Tofino-like: the
	// program simply does not fit and truncated passes are discarded).
	OverflowDrop Overflow = iota
	// OverflowPunt sends the packet to the CPU at the stage limit
	// (eBPF-like: the verifier bound trips and the kernel path takes over).
	OverflowPunt
)

func (o Overflow) String() string {
	if o == OverflowPunt {
		return "punt"
	}
	return "drop"
}

// Model is one device target. All limits use 0 for "unlimited"; the zero
// value is the idealized switch.
type Model struct {
	// Name is the registry key ("idealized", "tofino", "ebpf").
	Name string
	// Description is the one-line summary `p4wn targets` prints.
	Description string

	// MaxStages bounds how many stateful operations (hash/bloom/sketch
	// accesses, register array reads/writes, table applies) one packet
	// pass may execute; 0 is unlimited. A pass that would exceed it stops
	// and the packet takes the OnOverflow action.
	MaxStages int
	// OnOverflow is the fate of a packet that exceeds MaxStages.
	OnOverflow Overflow
	// NoRecirc disables recirculation: recirculate actions become CPU
	// punts (the packet leaves the fast path instead of looping).
	NoRecirc bool

	// MaxTableEntries caps match-action table capacity; entries past the
	// cap are not installed (lookups that would hit them take the miss
	// path). 0 is unlimited.
	MaxTableEntries int
	// MaxHashSlots caps hash-table register storage (slots per table).
	MaxHashSlots int
	// MaxBloomBits caps Bloom filter bit-array width.
	MaxBloomBits int
	// MaxSketchCols caps count-min sketch column count per row.
	MaxSketchCols int
	// MaxArrayCells caps plain register array length.
	MaxArrayCells int

	// ExactState models map-backed state (eBPF hash maps): keyed lookups
	// are exact, so the hash-collision arm disappears and its probability
	// mass folds into the empty arm.
	ExactState bool
}

// clamp bounds n by limit when a limit is set; n is always kept >= 1 so a
// clamped structure stays usable.
func clamp(n, limit int) int {
	if limit > 0 && n > limit {
		n = limit
	}
	if n < 1 {
		n = 1
	}
	return n
}

// StageLimit returns the stage budget, 0 when unlimited (or nil model).
func (m *Model) StageLimit() int {
	if m == nil {
		return 0
	}
	return m.MaxStages
}

// Overflow returns the over-budget action (drop for nil models).
func (m *Model) Overflow() Overflow {
	if m == nil {
		return OverflowDrop
	}
	return m.OnOverflow
}

// Recirculates reports whether the target supports recirculation.
func (m *Model) Recirculates() bool { return m == nil || !m.NoRecirc }

// Exact reports whether keyed state is exact (no hash-collision arm).
func (m *Model) Exact() bool { return m != nil && m.ExactState }

// ClampHashSlots bounds a hash table's slot count to the target.
func (m *Model) ClampHashSlots(n int) int {
	if m == nil {
		return n
	}
	return clamp(n, m.MaxHashSlots)
}

// ClampBloomBits bounds a Bloom filter's bit width to the target.
func (m *Model) ClampBloomBits(n int) int {
	if m == nil {
		return n
	}
	return clamp(n, m.MaxBloomBits)
}

// ClampSketchCols bounds a sketch's per-row column count to the target.
func (m *Model) ClampSketchCols(n int) int {
	if m == nil {
		return n
	}
	return clamp(n, m.MaxSketchCols)
}

// ClampArrayCells bounds a register array's length to the target.
func (m *Model) ClampArrayCells(n int) int {
	if m == nil {
		return n
	}
	return clamp(n, m.MaxArrayCells)
}

// ClampTableEntries bounds how many of a table's entries are installed.
func (m *Model) ClampTableEntries(n int) int {
	if m == nil || m.MaxTableEntries <= 0 || n <= m.MaxTableEntries {
		return n
	}
	return m.MaxTableEntries
}

// IsIdealized reports whether the model imposes no constraints at all (nil
// or the zero-limits model): the engine's idealized fast path.
func (m *Model) IsIdealized() bool {
	return m == nil || (m.MaxStages == 0 && !m.NoRecirc && !m.ExactState &&
		m.MaxTableEntries == 0 && m.MaxHashSlots == 0 && m.MaxBloomBits == 0 &&
		m.MaxSketchCols == 0 && m.MaxArrayCells == 0)
}

// CanonicalName returns the registry name, "idealized" for nil/unnamed
// models (the spelling reports and store fingerprints use).
func (m *Model) CanonicalName() string {
	if m == nil || m.Name == "" {
		return "idealized"
	}
	return m.Name
}

// Limits renders the model's constraint set as a short human-readable
// string for `p4wn targets` ("none" for the idealized target).
func (m *Model) Limits() string {
	if m.IsIdealized() {
		return "none"
	}
	var parts []string
	if m.MaxStages > 0 {
		parts = append(parts, fmt.Sprintf("stages<=%d(%s)", m.MaxStages, m.OnOverflow))
	}
	if m.NoRecirc {
		parts = append(parts, "no-recirc")
	}
	if m.ExactState {
		parts = append(parts, "exact-state")
	}
	if m.MaxTableEntries > 0 {
		parts = append(parts, fmt.Sprintf("table<=%d", m.MaxTableEntries))
	}
	if m.MaxHashSlots > 0 {
		parts = append(parts, fmt.Sprintf("hash<=%d", m.MaxHashSlots))
	}
	if m.MaxBloomBits > 0 {
		parts = append(parts, fmt.Sprintf("bloom<=%db", m.MaxBloomBits))
	}
	if m.MaxSketchCols > 0 {
		parts = append(parts, fmt.Sprintf("sketch<=%dcol", m.MaxSketchCols))
	}
	if m.MaxArrayCells > 0 {
		parts = append(parts, fmt.Sprintf("array<=%d", m.MaxArrayCells))
	}
	return strings.Join(parts, " ")
}

// The registered targets.
var (
	// Idealized is the paper's device: unbounded resources, exact
	// recirculation, hash tables with real collision arms. Profiles under
	// it are bit-for-bit identical to a nil target.
	Idealized = &Model{
		Name:        "idealized",
		Description: "unbounded software switch (paper semantics; the default)",
	}

	// Tofino approximates a fixed-function RMT pipeline: a hard stage
	// budget (overlong passes are dropped), bounded SRAM/TCAM per
	// structure, and limited table capacity.
	Tofino = &Model{
		Name:            "tofino",
		Description:     "RMT-like pipeline: 12 stages (overflow drops), bounded SRAM per structure",
		MaxStages:       12,
		OnOverflow:      OverflowDrop,
		MaxTableEntries: 1024,
		MaxHashSlots:    512,
		MaxBloomBits:    4096,
		MaxSketchCols:   1024,
	}

	// EBPF approximates an XDP/eBPF datapath: no recirculation
	// (recirculate punts to the kernel), map-backed exact state (no hash
	// collision arm), and a verifier-style bound on stateful work per
	// pass (overflow punts).
	EBPF = &Model{
		Name:        "ebpf",
		Description: "XDP-like datapath: map-backed exact state, no recirculation, verifier path bound",
		MaxStages:   32,
		OnOverflow:  OverflowPunt,
		NoRecirc:    true,
		ExactState:  true,
	}
)

// registry maps names to models; "" is an alias for idealized so unset
// options mean "today's semantics".
var registry = map[string]*Model{
	"":          Idealized,
	"idealized": Idealized,
	"tofino":    Tofino,
	"ebpf":      EBPF,
}

// Lookup resolves a target name ("" means idealized). Unknown names error
// with the known set so CLI surfaces can print an actionable message.
func Lookup(name string) (*Model, error) {
	if m, ok := registry[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("unknown target %q (known: %s)", name, strings.Join(Names(), ", "))
}

// Names lists the registered target names, sorted.
func Names() []string {
	var out []string
	for n := range registry {
		if n != "" {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// All returns the registered models in Names() order.
func All() []*Model {
	var out []*Model
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}
