package analysis

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/ir"
)

// Policy loading and validation for the ifc pass. A policy arrives either
// inline (ir.Program.Policy, set by the mini-language's `policy { ... }`
// block or a zoo builder) or as a JSON file passed to `p4wn lint -policy`:
//
//	{
//	  "secrets": [{"kind": "field", "name": "src_ip"},
//	              {"kind": "register", "name": "syn_cnt"}],
//	  "sinks":   [{"kind": "action", "name": "digest"},
//	              {"kind": "sketch", "name": "flow_cnt"}]
//	}

// policyJSON is the on-disk policy shape.
type policyJSON struct {
	Secrets []refJSON `json:"secrets"`
	Sinks   []refJSON `json:"sinks"`
}

type refJSON struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
}

// ParsePolicyJSON decodes a JSON policy document, checking reference kinds
// (name resolution against a concrete program happens in validatePolicy,
// as ifc-pass diagnostics).
func ParsePolicyJSON(data []byte) (*ir.SecPolicy, error) {
	var pj policyJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, fmt.Errorf("policy: %w", err)
	}
	pol := &ir.SecPolicy{}
	for _, r := range pj.Secrets {
		if !ir.ValidSecretKind(r.Kind) {
			return nil, fmt.Errorf("policy: invalid secret kind %q (name %q)", r.Kind, r.Name)
		}
		pol.Secrets = append(pol.Secrets, ir.SecRef{Kind: r.Kind, Name: r.Name})
	}
	for _, r := range pj.Sinks {
		if !ir.ValidSinkKind(r.Kind) {
			return nil, fmt.Errorf("policy: invalid sink kind %q (name %q)", r.Kind, r.Name)
		}
		if r.Kind == ir.KindAction {
			if _, ok := ir.ActionKindByName(r.Name); !ok {
				return nil, fmt.Errorf("policy: unknown action %q", r.Name)
			}
		}
		pol.Sinks = append(pol.Sinks, ir.SecRef{Kind: r.Kind, Name: r.Name})
	}
	if pol.Empty() {
		return nil, fmt.Errorf("policy: declares neither secrets nor sinks")
	}
	return pol, nil
}

// LoadPolicy reads and decodes a JSON policy file.
func LoadPolicy(path string) (*ir.SecPolicy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pol, err := ParsePolicyJSON(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return pol, nil
}

// validatePolicy resolves every policy reference against the program,
// reporting unresolved names as ifc-pass errors. It returns false when the
// policy is unusable (any unresolved reference, or no secrets / no sinks —
// a vacuous policy is almost certainly a typo in a CI gate).
func validatePolicy(p *ir.Program, pol *ir.SecPolicy, r *Report) bool {
	ok := true
	if len(pol.Secrets) == 0 {
		r.add("ifc", SevError, -1, "", "policy declares no secrets")
		ok = false
	}
	if len(pol.Sinks) == 0 {
		r.add("ifc", SevError, -1, "", "policy declares no sinks")
		ok = false
	}
	check := func(ref ir.SecRef, secret bool) {
		role := "sink"
		if secret {
			role = "secret"
		}
		var found bool
		switch ref.Kind {
		case ir.KindField:
			_, found = p.Field(ref.Name)
		case ir.KindRegister:
			_, found = p.Reg(ref.Name)
		case ir.KindArray:
			_, found = p.RegArray(ref.Name)
		case ir.KindHash:
			_, found = p.HashTable(ref.Name)
		case ir.KindBloom:
			_, found = p.Bloom(ref.Name)
		case ir.KindSketch:
			_, found = p.Sketch(ref.Name)
		case ir.KindMeta:
			// Metadata is declared implicitly by first write; accept any
			// name (an unwritten one simply never carries taint).
			found = true
		case ir.KindAction:
			_, found = ir.ActionKindByName(ref.Name)
		}
		if !found {
			r.add("ifc", SevError, -1, "",
				"policy %s %s does not resolve: program has no %s %q",
				role, ref, ref.Kind, ref.Name)
			ok = false
		}
		if secret && !ir.ValidSecretKind(ref.Kind) {
			r.add("ifc", SevError, -1, "", "policy secret %s has invalid kind", ref)
			ok = false
		}
		if !secret && !ir.ValidSinkKind(ref.Kind) {
			r.add("ifc", SevError, -1, "", "policy sink %s has invalid kind", ref)
			ok = false
		}
	}
	for _, ref := range pol.Secrets {
		check(ref, true)
	}
	for _, ref := range pol.Sinks {
		check(ref, false)
	}
	return ok
}
