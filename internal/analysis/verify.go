package analysis

import (
	"repro/internal/ir"
)

// verify is the IR well-formedness pass. It re-checks everything Build
// validates — but collecting every finding as a structured diagnostic
// instead of stopping at the first error — and adds the checks Build does
// not perform: declaration sanity, out-of-range constants versus field and
// register widths, malformed match specs, recursive table application, and
// extern flag combinations the engine ignores.
func verify(p *ir.Program, r *Report) {
	verifyDecls(p, r)

	// Walk every statement, tracking the innermost enclosing block so
	// diagnostics carry a CFG location.
	walkWithBlocks(p, func(b *ir.Block, s ir.Stmt) {
		verifyStmt(p, r, b, s)
	})

	verifyTables(p, r)
	verifyApplyCycles(p, r)
}

func verifyDecls(p *ir.Program, r *Report) {
	seenField := map[string]bool{}
	for _, f := range p.Fields {
		if f.Bits <= 0 || f.Bits > 64 {
			r.add("verify", SevError, -1, "", "field %q has invalid width %d", f.Name, f.Bits)
		}
		if seenField[f.Name] {
			r.add("verify", SevError, -1, "", "duplicate field declaration %q", f.Name)
		}
		seenField[f.Name] = true
	}
	seenReg := map[string]bool{}
	for _, d := range p.Regs {
		if d.Bits <= 0 || d.Bits > 64 {
			r.add("verify", SevError, -1, "", "register %q has invalid width %d", d.Name, d.Bits)
		} else if max := regMax(d); d.Init > max {
			r.add("verify", SevWarn, -1, "",
				"register %q initial value %d exceeds its %d-bit range", d.Name, d.Init, d.Bits)
		}
		if seenReg[d.Name] {
			r.add("verify", SevError, -1, "", "duplicate register declaration %q", d.Name)
		}
		seenReg[d.Name] = true
	}
	for _, d := range p.RegArrays {
		if d.Size <= 0 {
			r.add("verify", SevError, -1, "", "register array %q has invalid size %d", d.Name, d.Size)
		}
	}
	for _, d := range p.HashTables {
		if d.Size <= 0 {
			r.add("verify", SevError, -1, "", "hash table %q has invalid size %d", d.Name, d.Size)
		}
	}
	for _, d := range p.Blooms {
		if d.Bits <= 0 || d.Hashes <= 0 {
			r.add("verify", SevError, -1, "",
				"bloom filter %q has invalid shape (%d bits, %d hashes)", d.Name, d.Bits, d.Hashes)
		}
	}
	for _, d := range p.Sketches {
		if d.Rows <= 0 || d.Cols <= 0 {
			r.add("verify", SevError, -1, "",
				"sketch %q has invalid shape %dx%d", d.Name, d.Rows, d.Cols)
		}
	}
}

func regMax(d ir.RegDecl) uint64 {
	if d.Bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(d.Bits)) - 1
}

func verifyStmt(p *ir.Program, r *Report, b *ir.Block, s ir.Stmt) {
	diag := func(sev Severity, format string, args ...interface{}) {
		if b != nil {
			r.addNode("verify", sev, b, format, args...)
		} else {
			r.add("verify", sev, -1, "", format, args...)
		}
	}
	checkExprs := func(es ...ir.Expr) {
		for _, e := range es {
			verifyExpr(p, e, diag)
		}
	}
	switch t := s.(type) {
	case *ir.Assign:
		checkExprs(t.Expr)
		switch lv := t.Target.(type) {
		case ir.RegLV:
			d, ok := p.Reg(lv.Reg)
			if !ok {
				diag(SevError, "assignment to unknown register %q", lv.Reg)
				break
			}
			if c, isConst := t.Expr.(ir.Const); isConst && c.V > regMax(d) {
				diag(SevWarn, "constant %d does not fit %d-bit register %q", c.V, d.Bits, d.Name)
			}
		}
	case *ir.If:
		verifyCond(p, t.Cond, diag)
	case *ir.Action:
		if t.Kind < ir.ActNoOp || t.Kind > ir.ActToBackend {
			diag(SevError, "unknown action kind %d", int(t.Kind))
		}
		if t.Arg != nil {
			checkExprs(t.Arg)
		} else if t.Kind == ir.ActForward || t.Kind == ir.ActMirror || t.Kind == ir.ActToBackend {
			diag(SevWarn, "%s action has no port argument", t.Kind)
		}
	case *ir.HashAccess:
		if _, ok := p.HashTable(t.Store); !ok {
			diag(SevError, "access of unknown hash table %q", t.Store)
		}
		checkExprs(t.Key...)
		if t.Value != nil {
			checkExprs(t.Value)
		}
		if !t.Write && t.Evict {
			diag(SevWarn, "hash access on %q sets evict without write (no effect)", t.Store)
		}
		if !t.Write && t.Inc {
			diag(SevWarn, "hash access on %q sets inc without write (no effect)", t.Store)
		}
	case *ir.BloomOp:
		if _, ok := p.Bloom(t.Filter); !ok {
			diag(SevError, "test of unknown bloom filter %q", t.Filter)
		}
		checkExprs(t.Key...)
	case *ir.SketchUpdate:
		if _, ok := p.Sketch(t.Sketch); !ok {
			diag(SevError, "update of unknown sketch %q", t.Sketch)
		}
		checkExprs(t.Key...)
		if t.Inc != nil {
			checkExprs(t.Inc)
		}
	case *ir.SketchBranch:
		if _, ok := p.Sketch(t.Sketch); !ok {
			diag(SevError, "branch on unknown sketch %q", t.Sketch)
		}
		if t.Op < ir.CmpEq || t.Op > ir.CmpGe {
			diag(SevError, "sketch branch has invalid comparison operator %d", int(t.Op))
		}
		checkExprs(t.Key...)
	case *ir.ArrayRead:
		if _, ok := p.RegArray(t.Array); !ok {
			diag(SevError, "read of unknown register array %q", t.Array)
		}
		checkExprs(t.Index)
	case *ir.ArrayWrite:
		d, ok := p.RegArray(t.Array)
		if !ok {
			diag(SevError, "write to unknown register array %q", t.Array)
		}
		checkExprs(t.Index, t.Value)
		if c, isConst := t.Index.(ir.Const); ok && isConst && c.V >= uint64(d.Size) {
			diag(SevError, "constant index %d out of bounds for array %q (size %d)",
				c.V, t.Array, d.Size)
		}
	case *ir.TableApply:
		if _, ok := p.Table(t.Table); !ok {
			diag(SevError, "apply of unknown table %q", t.Table)
		}
	}
}

func verifyExpr(p *ir.Program, e ir.Expr, diag func(Severity, string, ...interface{})) {
	walkExpr(e, func(x ir.Expr) {
		switch t := x.(type) {
		case ir.FieldRef:
			if _, ok := p.Field(t.Name); !ok {
				diag(SevError, "reference to unknown field %q", t.Name)
			}
		case ir.RegRef:
			if _, ok := p.Reg(t.Reg); !ok {
				diag(SevError, "reference to unknown register %q", t.Reg)
			}
		case ir.Bin:
			if t.Op < ir.OpAdd || t.Op > ir.OpShr {
				diag(SevError, "invalid binary operator %d", int(t.Op))
			}
		}
	})
}

func verifyCond(p *ir.Program, c ir.Cond, diag func(Severity, string, ...interface{})) {
	walkCond(c, func(cc ir.Cond) {
		cmp, ok := cc.(ir.Cmp)
		if !ok {
			return
		}
		if cmp.Op < ir.CmpEq || cmp.Op > ir.CmpGe {
			diag(SevError, "invalid comparison operator %d", int(cmp.Op))
		}
		verifyExpr(p, cmp.A, diag)
		verifyExpr(p, cmp.B, diag)
		// Out-of-range constant versus the field's bit width: the
		// comparison has a constant outcome, which almost always means a
		// typo'd width or literal (e.g. testing a 255-valued flag mask
		// against an 8-bit field is fine, but 256 can never match).
		if f, v, swapped, isFC := fieldVsConst(cmp); isFC {
			if decl, ok := p.Field(f); ok && v > decl.Max() {
				op := cmp.Op
				if swapped {
					op = swapCmp(op)
				}
				if op == ir.CmpEq || op == ir.CmpNe || constOutcomeImpossible(op) {
					diag(SevWarn,
						"constant %d exceeds %d-bit field %q (comparison outcome is fixed)",
						v, decl.Bits, f)
				}
			}
		}
	})
}

// constOutcomeImpossible reports whether `field op constant` with a constant
// above the field's maximum has a fixed outcome worth flagging. Eq/Ne are
// always fixed; ordering comparisons are fixed too (always-true for Lt/Le,
// always-false for Gt/Ge), and the interval pass reports the dead arm.
func constOutcomeImpossible(op ir.CmpOp) bool {
	switch op {
	case ir.CmpLt, ir.CmpLe, ir.CmpGt, ir.CmpGe:
		return true
	}
	return false
}

// fieldVsConst matches `pkt.f op const` or `const op pkt.f` (swapped=true).
func fieldVsConst(c ir.Cmp) (field string, v uint64, swapped, ok bool) {
	if f, isF := c.A.(ir.FieldRef); isF {
		if k, isC := c.B.(ir.Const); isC {
			return f.Name, k.V, false, true
		}
	}
	if f, isF := c.B.(ir.FieldRef); isF {
		if k, isC := c.A.(ir.Const); isC {
			return f.Name, k.V, true, true
		}
	}
	return "", 0, false, false
}

func swapCmp(op ir.CmpOp) ir.CmpOp {
	switch op {
	case ir.CmpLt:
		return ir.CmpGt
	case ir.CmpLe:
		return ir.CmpGe
	case ir.CmpGt:
		return ir.CmpLt
	case ir.CmpGe:
		return ir.CmpLe
	}
	return op
}

func verifyTables(p *ir.Program, r *Report) {
	diag := func(sev Severity, format string, args ...interface{}) {
		r.add("verify", sev, -1, "", format, args...)
	}
	for ti := range p.Tables {
		t := &p.Tables[ti]
		for _, k := range t.Keys {
			verifyExpr(p, k, diag)
		}
		for ei, e := range t.Entries {
			if len(e.Match) != len(t.Keys) {
				diag(SevError, "table %q entry %d has %d match specs for %d keys",
					t.Name, ei, len(e.Match), len(t.Keys))
				continue
			}
			for ki, spec := range e.Match {
				if spec.Kind == ir.MatchRange && spec.Lo > spec.Hi {
					diag(SevError, "table %q entry %d key %d has empty range [%d,%d]",
						t.Name, ei, ki, spec.Lo, spec.Hi)
				}
				// A spec value above the key field's maximum can never match.
				if fr, ok := t.Keys[ki].(ir.FieldRef); ok && spec.Kind != ir.MatchWildcard {
					if decl, ok2 := p.Field(fr.Name); ok2 {
						v := spec.Lo
						if spec.Kind == ir.MatchRange {
							v = spec.Lo // range fully above max iff Lo > max
						}
						if v > decl.Max() {
							diag(SevWarn, "table %q entry %d key %d matches %d, above %d-bit field %q",
								t.Name, ei, ki, v, decl.Bits, fr.Name)
						}
					}
				}
			}
		}
		if t.SymbolicEntries > 0 && t.SymbolicAction == nil {
			diag(SevWarn, "table %q declares %d symbolic entries but no symbolic action (ignored)",
				t.Name, t.SymbolicEntries)
		}
	}
}

// verifyApplyCycles rejects recursive table application (a table whose
// actions re-apply the table, directly or transitively): the data plane has
// no call stack, and CFG construction would not terminate on such programs.
func verifyApplyCycles(p *ir.Program, r *Report) {
	// applies[t] = set of tables applied from within t's actions.
	applies := map[string]map[string]bool{}
	for ti := range p.Tables {
		t := &p.Tables[ti]
		used := map[string]bool{}
		collect := func(s ir.Stmt) {
			walkStmtShallow(s, func(st ir.Stmt) {
				if ap, ok := st.(*ir.TableApply); ok {
					used[ap.Table] = true
				}
			})
		}
		for _, e := range t.Entries {
			collect(e.Action)
		}
		collect(t.Default)
		collect(t.SymbolicAction)
		applies[t.Name] = used
	}
	state := map[string]int{} // 0 unvisited, 1 on stack, 2 done
	var visit func(name string) bool
	visit = func(name string) bool {
		switch state[name] {
		case 1:
			return false // cycle
		case 2:
			return true
		}
		state[name] = 1
		for dep := range applies[name] {
			if !visit(dep) {
				return false
			}
		}
		state[name] = 2
		return true
	}
	for ti := range p.Tables {
		name := p.Tables[ti].Name
		if state[name] == 0 && !visit(name) {
			r.add("verify", SevError, -1, "",
				"table %q is applied recursively from its own actions", name)
		}
	}
}

// ---- shared walkers ----

// walkExpr calls fn on e and every sub-expression.
func walkExpr(e ir.Expr, fn func(ir.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch t := e.(type) {
	case ir.Bin:
		walkExpr(t.A, fn)
		walkExpr(t.B, fn)
	case ir.HashExpr:
		for _, a := range t.Args {
			walkExpr(a, fn)
		}
	}
}

// walkCond calls fn on c and every sub-condition.
func walkCond(c ir.Cond, fn func(ir.Cond)) {
	if c == nil {
		return
	}
	fn(c)
	switch t := c.(type) {
	case ir.Not:
		walkCond(t.C, fn)
	case ir.AndC:
		walkCond(t.A, fn)
		walkCond(t.B, fn)
	case ir.OrC:
		walkCond(t.A, fn)
		walkCond(t.B, fn)
	}
}

// walkStmtShallow walks a statement tree without following TableApply.
func walkStmtShallow(s ir.Stmt, fn func(ir.Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch t := s.(type) {
	case *ir.Block:
		for _, c := range t.Stmts {
			walkStmtShallow(c, fn)
		}
	case *ir.If:
		walkStmtShallow(t.Then, fn)
		walkStmtShallow(t.Else, fn)
	case *ir.HashAccess:
		walkStmtShallow(t.OnEmpty, fn)
		walkStmtShallow(t.OnHit, fn)
		walkStmtShallow(t.OnCollide, fn)
	case *ir.BloomOp:
		walkStmtShallow(t.OnHit, fn)
		walkStmtShallow(t.OnMiss, fn)
	case *ir.SketchBranch:
		walkStmtShallow(t.OnTrue, fn)
		walkStmtShallow(t.OnFalse, fn)
	}
}

// walkWithBlocks walks every statement of the program (root plus all table
// actions), passing the innermost enclosing labeled block alongside each
// statement.
func walkWithBlocks(p *ir.Program, fn func(*ir.Block, ir.Stmt)) {
	var walk func(b *ir.Block, s ir.Stmt)
	walk = func(b *ir.Block, s ir.Stmt) {
		if s == nil {
			return
		}
		if blk, ok := s.(*ir.Block); ok {
			b = blk
		}
		fn(b, s)
		switch t := s.(type) {
		case *ir.Block:
			for _, c := range t.Stmts {
				walk(b, c)
			}
		case *ir.If:
			walk(b, t.Then)
			walk(b, t.Else)
		case *ir.HashAccess:
			walk(b, t.OnEmpty)
			walk(b, t.OnHit)
			walk(b, t.OnCollide)
		case *ir.BloomOp:
			walk(b, t.OnHit)
			walk(b, t.OnMiss)
		case *ir.SketchBranch:
			walk(b, t.OnTrue)
			walk(b, t.OnFalse)
		}
	}
	walk(nil, p.Root)
	for ti := range p.Tables {
		t := &p.Tables[ti]
		for _, e := range t.Entries {
			walk(nil, e.Action)
		}
		walk(nil, t.Default)
		walk(nil, t.SymbolicAction)
	}
}
