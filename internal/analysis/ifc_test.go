package analysis

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/prob"
)

// leakyProg is the canonical leaky program: a secret register compared
// against a header field, with probe hits digested — an implicit flow from
// secret_key into the digest sink.
func leakyProg(t *testing.T) *ir.Program {
	t.Helper()
	p := &ir.Program{
		Name: "leaky",
		Regs: []ir.RegDecl{{Name: "secret_key", Bits: 16, Init: 1234}},
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindRegister, Name: "secret_key"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "digest"}},
		},
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("dst_port"), ir.R("secret_key")),
				ir.Blk("key_probe", ir.Digest(), ir.Fwd(1)),
				ir.Blk("normal", ir.Fwd(1))),
		),
	}
	return p.MustBuild()
}

func TestIFCLeakyProgram(t *testing.T) {
	p := leakyProg(t)
	r := Analyze(p)
	if r.IFC == nil {
		t.Fatal("program has a policy but Analyze produced no IFC result")
	}
	if len(r.IFC.Leaks) != 1 {
		t.Fatalf("want 1 leak, got %d: %+v", len(r.IFC.Leaks), r.IFC.Leaks)
	}
	l := r.IFC.Leaks[0]
	if l.Source != (ir.SecRef{Kind: ir.KindRegister, Name: "secret_key"}) {
		t.Errorf("leak source = %v", l.Source)
	}
	if l.Sink != (ir.SecRef{Kind: ir.KindAction, Name: "digest"}) {
		t.Errorf("leak sink = %v", l.Sink)
	}
	if !l.Implicit {
		t.Error("branch-condition flow must be implicit")
	}
	if l.Block != "key_probe" {
		t.Errorf("leak block = %q, want key_probe", l.Block)
	}
	// The witness must end at the sink node and mention the probe site.
	if len(l.Witness) == 0 || l.Witness[len(l.Witness)-1] != l.Node {
		t.Errorf("witness %v must end at sink node %d", l.Witness, l.Node)
	}
	wit := r.IFC.WitnessString(p, l)
	if !strings.Contains(wit, "key_probe") {
		t.Errorf("witness %q must name the sink block", wit)
	}
	// The leak must surface as an ifc-pass warning with the witness chain.
	found := false
	for _, d := range r.Diags {
		if d.Pass == "ifc" && d.Severity == SevWarn &&
			strings.Contains(d.Msg, "secret register:secret_key") &&
			strings.Contains(d.Msg, wit) {
			found = true
		}
	}
	if !found {
		t.Errorf("no ifc warning with witness chain in:\n%s", r)
	}
}

func TestIFCCleanProgram(t *testing.T) {
	// The secret register is read and written but never influences any
	// observable: the digest fires on a pure header predicate.
	p := &ir.Program{
		Name: "clean",
		Regs: []ir.RegDecl{{Name: "audit_cnt", Bits: 32}},
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindRegister, Name: "audit_cnt"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "digest"}},
		},
		Root: ir.Body(
			ir.If2(ir.Le(ir.F("ttl"), ir.C(1)),
				ir.Blk("expired", ir.Digest()),
				ir.Blk("live", ir.Add1("audit_cnt"), ir.Fwd(1))),
		),
	}
	r := Analyze(p.MustBuild())
	if r.IFC == nil {
		t.Fatal("no IFC result")
	}
	if r.IFC.HasLeaks() {
		t.Fatalf("clean program reported leaks: %+v", r.IFC.Leaks)
	}
	for _, d := range r.Diags {
		if d.Pass == "ifc" && d.Severity != SevInfo {
			t.Errorf("clean program has ifc diagnostic: %s", d)
		}
	}
}

func TestIFCExplicitFlow(t *testing.T) {
	// The secret field flows directly into the forwarded port: explicit.
	p := &ir.Program{
		Name: "explicit",
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindField, Name: "src_ip"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "forward"}},
		},
		Root: ir.Body(
			ir.Blk("route", ir.FwdE(ir.BitAnd(ir.F("src_ip"), ir.C(3)))),
		),
	}
	r := Analyze(p.MustBuild())
	if len(r.IFC.Leaks) != 1 {
		t.Fatalf("want 1 leak, got %+v", r.IFC.Leaks)
	}
	if r.IFC.Leaks[0].Implicit {
		t.Error("data flow into the action argument must be explicit")
	}
}

func TestIFCCrossPacketFlow(t *testing.T) {
	// The secret header field is stored into a register on one packet and
	// compared on later packets — the leak needs the cross-packet channel
	// through persistent state.
	p := &ir.Program{
		Name: "crosspkt",
		Regs: []ir.RegDecl{{Name: "last_src", Bits: 32}},
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindField, Name: "src_ip"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "to_cpu"}},
		},
		Root: ir.Body(
			ir.If2(ir.Eq(ir.R("last_src"), ir.F("dst_ip")),
				ir.Blk("match", ir.ToCPU()),
				ir.Blk("record", ir.Set("last_src", ir.F("src_ip")), ir.Fwd(1))),
		),
	}
	r := Analyze(p.MustBuild())
	if len(r.IFC.Leaks) != 1 {
		t.Fatalf("want 1 leak, got %+v", r.IFC.Leaks)
	}
	l := r.IFC.Leaks[0]
	if l.Block != "match" || !l.Implicit {
		t.Errorf("leak = %+v, want implicit at match", l)
	}
	// The witness must route through the register write site (the record
	// block), proving the cross-packet hop is tracked.
	prog := p
	wit := r.IFC.WitnessString(prog, l)
	if !strings.Contains(wit, "record") {
		t.Errorf("witness %q must pass through the write site", wit)
	}
	if r.IFC.Rounds < 2 {
		t.Errorf("cross-packet flow needs >= 2 fixpoint rounds, got %d", r.IFC.Rounds)
	}
}

func TestIFCNoReaderEarlyOut(t *testing.T) {
	// A secret register that is only ever written cannot flow anywhere;
	// the pass short-circuits via the dependency graph.
	p := &ir.Program{
		Name: "writeonly",
		Regs: []ir.RegDecl{{Name: "tally", Bits: 32}},
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindRegister, Name: "tally"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "digest"}},
		},
		Root: ir.Body(
			ir.Blk("count", ir.Set("tally", ir.C(1)), ir.Digest(), ir.Fwd(1)),
		),
	}
	r := Analyze(p.MustBuild())
	if r.IFC.HasLeaks() {
		t.Fatalf("write-only secret cannot leak: %+v", r.IFC.Leaks)
	}
	if r.IFC.Rounds != 0 {
		t.Errorf("early-out should skip the fixpoint, got %d rounds", r.IFC.Rounds)
	}
}

func TestIFCExternFlows(t *testing.T) {
	// Secret key probed against a hash table: every continuation arm is
	// under implicit taint from the key and the table contents.
	p := &ir.Program{
		Name:       "externs",
		HashTables: []ir.HashTableDecl{{Name: "tbl", Size: 64, Seed: 9}},
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindHash, Name: "tbl"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "recirculate"}},
		},
		Root: ir.Body(
			&ir.HashAccess{
				Store: "tbl", Key: []ir.Expr{ir.F("src_ip")}, Write: true, Value: ir.C(1),
				OnEmpty:   ir.Blk("fresh", ir.Fwd(1)),
				OnHit:     ir.Blk("seen", ir.Fwd(1)),
				OnCollide: ir.Blk("clash", ir.Recirc()),
			},
		),
	}
	r := Analyze(p.MustBuild())
	if len(r.IFC.Leaks) != 1 {
		t.Fatalf("want 1 leak at the collision arm, got %+v", r.IFC.Leaks)
	}
	if r.IFC.Leaks[0].Block != "clash" {
		t.Errorf("leak block = %q", r.IFC.Leaks[0].Block)
	}
}

func TestIFCStateSink(t *testing.T) {
	// Writing a secret-derived value into a public register is a leak at
	// the write site (the control plane reads the register).
	p := &ir.Program{
		Name: "statesink",
		Regs: []ir.RegDecl{{Name: "pub_stat", Bits: 32}},
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindField, Name: "src_ip"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindRegister, Name: "pub_stat"}},
		},
		Root: ir.Body(
			ir.Blk("tally", ir.Set("pub_stat", ir.BitAnd(ir.F("src_ip"), ir.C(255))), ir.Fwd(1)),
		),
	}
	r := Analyze(p.MustBuild())
	if len(r.IFC.Leaks) != 1 {
		t.Fatalf("want 1 leak, got %+v", r.IFC.Leaks)
	}
	if l := r.IFC.Leaks[0]; l.Implicit || l.Sink.Kind != ir.KindRegister {
		t.Errorf("leak = %+v, want explicit register sink", l)
	}
}

func TestIFCPolicyValidation(t *testing.T) {
	p := &ir.Program{
		Name: "badpol",
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{{Kind: ir.KindRegister, Name: "nonexistent"}},
			Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "digest"}},
		},
		Root: ir.Body(ir.Blk("b", ir.Fwd(1))),
	}
	r := Analyze(p.MustBuild())
	if !r.HasErrors() {
		t.Fatal("unresolved policy reference must be an error")
	}
	if r.IFC == nil || r.IFC.HasLeaks() {
		t.Fatalf("unusable policy must not produce leaks: %+v", r.IFC)
	}
}

func TestIFCMergedPolicy(t *testing.T) {
	// The program has no inline policy; the external one drives the pass.
	p := &ir.Program{
		Name: "extpol",
		Regs: []ir.RegDecl{{Name: "k", Bits: 16}},
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("dst_port"), ir.R("k")),
				ir.Blk("hit", ir.Digest()),
				ir.Blk("miss", ir.Fwd(1))),
		),
	}
	prog := p.MustBuild()
	if r := Analyze(prog); r.IFC != nil {
		t.Fatal("no policy must mean no IFC result")
	}
	extra := &ir.SecPolicy{
		Secrets: []ir.SecRef{{Kind: ir.KindRegister, Name: "k"}},
		Sinks:   []ir.SecRef{{Kind: ir.KindAction, Name: "digest"}},
	}
	r := AnalyzeWithPolicy(prog, extra)
	if r.IFC == nil || len(r.IFC.Leaks) != 1 {
		t.Fatalf("external policy must drive the pass: %+v", r.IFC)
	}
}

func TestIFCWeightRanksLeaks(t *testing.T) {
	// Two leaks; the fake profile makes the second one more probable, so
	// Weight must re-rank it first and MaxP must follow.
	p := &ir.Program{
		Name: "tworeg",
		Regs: []ir.RegDecl{{Name: "a", Bits: 16}, {Name: "b", Bits: 16}},
		Policy: &ir.SecPolicy{
			Secrets: []ir.SecRef{
				{Kind: ir.KindRegister, Name: "a"},
				{Kind: ir.KindRegister, Name: "b"},
			},
			Sinks: []ir.SecRef{{Kind: ir.KindAction, Name: "digest"}},
		},
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("src_port"), ir.R("a")),
				ir.Blk("leak_a", ir.Digest()), nil),
			ir.If2(ir.Eq(ir.F("dst_port"), ir.R("b")),
				ir.Blk("leak_b", ir.Digest()), nil),
		),
	}
	prog := p.MustBuild()
	r := Analyze(prog)
	if len(r.IFC.Leaks) != 2 {
		t.Fatalf("want 2 leaks, got %+v", r.IFC.Leaks)
	}
	rare := prob.FromFloat(1e-6)
	common := prob.FromFloat(1e-2)
	r.IFC.Weight(func(node int) (prob.P, bool) {
		switch prog.Node(node).Label {
		case "leak_b":
			return common, true
		case "leak_a":
			return rare, true
		}
		return prob.One(), true
	})
	if !r.IFC.Leaks[0].Weighted || r.IFC.Leaks[0].Block != "leak_b" {
		t.Errorf("most probable leak must rank first: %+v", r.IFC.Leaks)
	}
	if got := r.IFC.MaxP(); got.Log10() != common.Log10() {
		t.Errorf("MaxP = %v, want %v", got, common)
	}
	// The weight is the minimum along the witness: entry is certain, so
	// each leak carries its own block's probability.
	if r.IFC.Leaks[1].P.Log10() != rare.Log10() {
		t.Errorf("leak_a weight = %v, want %v", r.IFC.Leaks[1].P, rare)
	}
}

func TestIFCPolicyJSON(t *testing.T) {
	good := []byte(`{"secrets":[{"kind":"field","name":"src_ip"}],
		"sinks":[{"kind":"action","name":"digest"},{"kind":"sketch","name":"cnt"}]}`)
	pol, err := ParsePolicyJSON(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Secrets) != 1 || len(pol.Sinks) != 2 {
		t.Fatalf("parsed policy = %+v", pol)
	}
	bad := [][]byte{
		[]byte(`{"secrets":[{"kind":"action","name":"digest"}]}`), // action secret
		[]byte(`{"sinks":[{"kind":"field","name":"src_ip"}]}`),    // field sink
		[]byte(`{"sinks":[{"kind":"action","name":"launder"}]}`),  // unknown action
		[]byte(`{}`),              // vacuous
		[]byte(`{"secrets": 12}`), // malformed
	}
	for _, b := range bad {
		if _, err := ParsePolicyJSON(b); err == nil {
			t.Errorf("ParsePolicyJSON(%s) must fail", b)
		}
	}
}

func TestIFCZooPortknock(t *testing.T) {
	// End-to-end over a real zoo program: the knock-state table leaks
	// exactly once, through the ssh_allow branch.
	// (Zoo annotations live in internal/programs; rebuild the shape here
	// to avoid an import cycle with that package's tests.)
	res := IFCOnly(leakyProg(t))
	if res == nil || len(res.Leaks) != 1 {
		t.Fatalf("IFCOnly: %+v", res)
	}
}

func TestDepGraphStringStable(t *testing.T) {
	p := &ir.Program{
		Name: "dep",
		Regs: []ir.RegDecl{{Name: "z", Bits: 8}, {Name: "a", Bits: 8}},
		Root: ir.Body(
			ir.Blk("w", ir.Set("z", ir.R("a")), ir.Add1("a"), ir.Fwd(1)),
		),
	}
	r := Analyze(p.MustBuild())
	want := r.Deps.String()
	// Rendering must not depend on assembly order: reverse States and the
	// ID slices; String must still produce the same sorted output.
	for i, j := 0, len(r.Deps.States)-1; i < j; i, j = i+1, j-1 {
		r.Deps.States[i], r.Deps.States[j] = r.Deps.States[j], r.Deps.States[i]
	}
	for si := range r.Deps.States {
		ids := r.Deps.States[si].Readers
		for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
			ids[i], ids[j] = ids[j], ids[i]
		}
	}
	if got := r.Deps.String(); got != want {
		t.Errorf("DepGraph.String is assembly-order dependent:\nwant:\n%s\ngot:\n%s", want, got)
	}
	// Register lines must come out in (kind, name) order.
	ai := strings.Index(want, `register a`)
	zi := strings.Index(want, `register z`)
	if ai < 0 || zi < 0 {
		// Names are padded in the rendering; locate loosely.
		ai = strings.Index(want, "a  ")
		zi = strings.Index(want, "z  ")
	}
	if ai >= 0 && zi >= 0 && ai > zi {
		t.Errorf("registers not name-sorted:\n%s", want)
	}
}
