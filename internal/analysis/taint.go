package analysis

import (
	"sort"

	"repro/internal/ir"
)

// Taint lattice for the ifc pass. The lattice over one value cell is the
// powerset of the policy's secret sources ordered by inclusion: bottom is
// the empty set (public), and a cell's label only ever grows (no strong
// updates — a register overwritten with a constant stays tainted, which is
// conservative but sound for a lint). Alongside each source the label
// carries one representative witness: the CFG node IDs the flow traversed,
// source-first. On joins the first witness wins, which keeps output
// deterministic because the interpreter walks the program in syntactic
// order.

// maxWitness bounds a witness chain; flows deeper than this keep their
// prefix (the source end), which is what a human debugging the leak needs.
const maxWitness = 64

// label maps each secret source that may influence a value to its witness
// chain. A nil label is the lattice bottom (untainted).
type label map[ir.SecRef][]int

// tainted reports whether the label carries any secret.
func (l label) tainted() bool { return len(l) > 0 }

// join merges src into l (copying witness slices, so labels never alias),
// returning the possibly-reallocated map and whether any new source
// appeared. Witnesses of already-present sources are kept.
func (l label) join(src label) (label, bool) {
	changed := false
	for ref, wit := range src {
		if _, ok := l[ref]; ok {
			continue
		}
		if l == nil {
			l = make(label, len(src))
		}
		l[ref] = append([]int(nil), wit...)
		changed = true
	}
	return l, changed
}

// at returns a copy of the label with node appended to every witness chain
// (skipping consecutive duplicates), marking where the flow passed.
func (l label) at(node int) label {
	if len(l) == 0 {
		return nil
	}
	out := make(label, len(l))
	for ref, wit := range l {
		if n := len(wit); (n > 0 && wit[n-1] == node) || n >= maxWitness {
			out[ref] = append([]int(nil), wit...)
			continue
		}
		w := make([]int, 0, len(wit)+1)
		w = append(w, wit...)
		out[ref] = append(w, node)
	}
	return out
}

// sources returns the label's secret sources in deterministic order.
func (l label) sources() []ir.SecRef {
	out := make([]ir.SecRef, 0, len(l))
	for ref := range l {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// stateKey identifies one persistent-state cell of the taint environment.
type stateKey struct{ kind, name string }

// taintEnv is the abstract state of the forward pass: persistent state
// survives the per-packet loop (the cross-packet channel the paper's
// state-dependency graph describes), metadata resets every packet, and the
// pc stack tracks implicit flows — the labels of every branch condition
// enclosing the current statement.
type taintEnv struct {
	// state holds persistent cells: registers, arrays, hash tables, Bloom
	// filters, and sketches. Arrays and approximate structures are
	// modelled as one cell each (index-insensitive, conservative).
	state map[stateKey]label
	// meta holds per-packet metadata labels.
	meta map[string]label
	// pc is the implicit-flow stack.
	pc []label
	// stateChanged records whether any persistent cell gained a source
	// during the current packet walk; the cross-packet fixpoint loop runs
	// until a whole walk leaves it false.
	stateChanged bool
}

func newTaintEnv() *taintEnv {
	return &taintEnv{state: map[stateKey]label{}, meta: map[string]label{}}
}

// pcLabel joins the whole implicit-flow stack into one label.
func (env *taintEnv) pcLabel() label {
	var out label
	for _, l := range env.pc {
		out, _ = out.join(l)
	}
	return out
}

// push/pop bracket the walk of statements guarded by a condition whose
// label is l: everything inside observes the branch outcome.
func (env *taintEnv) push(l label) { env.pc = append(env.pc, l) }
func (env *taintEnv) pop()         { env.pc = env.pc[:len(env.pc)-1] }

// taintState joins l into a persistent cell, tracking fixpoint progress.
func (env *taintEnv) taintState(k stateKey, l label) {
	merged, changed := env.state[k].join(l)
	env.state[k] = merged
	if changed {
		env.stateChanged = true
	}
}

// taintMeta joins l into a metadata cell.
func (env *taintEnv) taintMeta(name string, l label) {
	merged, _ := env.meta[name].join(l)
	env.meta[name] = merged
}
