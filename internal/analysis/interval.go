package analysis

import (
	"math"
	"math/bits"

	"repro/internal/ir"
	"repro/internal/solver"
)

// The interval pass performs constant/interval propagation over packet
// header fields, reusing the solver's interval domain. Within one packet's
// processing a header field is a constant, so refinements learned from an
// enclosing guard hold for everything nested beneath it; a nested condition
// that contradicts its guards is statically infeasible and its arm can never
// execute. Registers, metadata, and hash/extern values are treated as
// unknown (full interval): the pass never assumes anything about persistent
// state, which is what keeps it sound across the per-packet loop.

var top = solver.Interval{Lo: 0, Hi: math.MaxUint64}

// env maps field names to their currently-known interval. Missing entries
// default to the field's declared full range.
type env struct {
	p  *ir.Program
	iv map[string]solver.Interval
}

func newEnv(p *ir.Program) *env {
	return &env{p: p, iv: map[string]solver.Interval{}}
}

func (e *env) get(field string) solver.Interval {
	if iv, ok := e.iv[field]; ok {
		return iv
	}
	if f, ok := e.p.Field(field); ok {
		return solver.FullInterval(f.Bits)
	}
	return top
}

func (e *env) clone() *env {
	c := &env{p: e.p, iv: make(map[string]solver.Interval, len(e.iv))}
	for k, v := range e.iv {
		c.iv[k] = v
	}
	return c
}

// feasible reports whether no field's interval is empty.
func (e *env) feasible() bool {
	for _, iv := range e.iv {
		if iv.Empty() {
			return false
		}
	}
	return true
}

// ---- abstract expression evaluation ----

func single(v uint64) solver.Interval { return solver.Interval{Lo: v, Hi: v} }

func isSingle(iv solver.Interval) (uint64, bool) {
	if iv.Lo == iv.Hi {
		return iv.Lo, true
	}
	return 0, false
}

// evalExpr returns a sound over-approximation of the expression's value
// range. Registers, metadata, and hashes evaluate to top: the pass knows
// nothing about state.
func evalExpr(e *env, x ir.Expr) solver.Interval {
	switch t := x.(type) {
	case ir.Const:
		return single(t.V)
	case ir.FieldRef:
		return e.get(t.Name)
	case ir.Bin:
		return evalBin(e, t)
	}
	// RegRef, MetaRef, HashExpr: unknown.
	return top
}

func evalBin(e *env, b ir.Bin) solver.Interval {
	a := evalExpr(e, b.A)
	c := evalExpr(e, b.B)
	if a.Empty() || c.Empty() {
		return top
	}
	// Exact evaluation when both sides are known constants (mirrors the
	// engine's concrete semantics, including uint64 wraparound).
	if av, aok := isSingle(a); aok {
		if cv, cok := isSingle(c); cok {
			return single(applyBin(b.Op, av, cv))
		}
	}
	switch b.Op {
	case ir.OpAdd:
		// Monotone when the sum cannot wrap.
		if a.Hi <= math.MaxUint64-c.Hi {
			return solver.Interval{Lo: a.Lo + c.Lo, Hi: a.Hi + c.Hi}
		}
	case ir.OpSub:
		// Monotone when no underflow is possible.
		if a.Lo >= c.Hi {
			return solver.Interval{Lo: a.Lo - c.Hi, Hi: a.Hi - c.Lo}
		}
	case ir.OpMul:
		if hiA, hiB := a.Hi, c.Hi; hiA == 0 || hiB <= math.MaxUint64/max64(hiA, 1) {
			return solver.Interval{Lo: a.Lo * c.Lo, Hi: a.Hi * c.Hi}
		}
	case ir.OpAnd:
		// x & y never exceeds either operand.
		return solver.Interval{Lo: 0, Hi: min64(a.Hi, c.Hi)}
	case ir.OpOr:
		// x | y < 2^max(width(x), width(y)) and is at least max(lo).
		n := max64(uint64(bits.Len64(a.Hi)), uint64(bits.Len64(c.Hi)))
		return solver.Interval{Lo: max64(a.Lo, c.Lo), Hi: maskOfLen(int(n))}
	case ir.OpXor:
		n := max64(uint64(bits.Len64(a.Hi)), uint64(bits.Len64(c.Hi)))
		return solver.Interval{Lo: 0, Hi: maskOfLen(int(n))}
	case ir.OpMod:
		if cv, ok := isSingle(c); ok && cv > 0 {
			if a.Hi < cv {
				return a // modulus never taken
			}
			return solver.Interval{Lo: 0, Hi: cv - 1}
		}
	case ir.OpShr:
		if cv, ok := isSingle(c); ok {
			k := cv & 63
			return solver.Interval{Lo: a.Lo >> k, Hi: a.Hi >> k}
		}
	case ir.OpShl:
		if cv, ok := isSingle(c); ok {
			k := cv & 63
			if k < 64 && a.Hi <= math.MaxUint64>>k {
				return solver.Interval{Lo: a.Lo << k, Hi: a.Hi << k}
			}
		}
	}
	return top
}

func applyBin(op ir.BinOp, a, b uint64) uint64 {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpMod:
		if b == 0 {
			return 0
		}
		return a % b
	case ir.OpShl:
		return a << (b & 63)
	case ir.OpShr:
		return a >> (b & 63)
	}
	return 0
}

func maskOfLen(n int) uint64 {
	if n >= 64 {
		return math.MaxUint64
	}
	return (uint64(1) << uint(n)) - 1
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// ---- three-valued condition evaluation ----

type tri int

const (
	triUnknown tri = iota
	triTrue
	triFalse
)

func (t tri) not() tri {
	switch t {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	}
	return triUnknown
}

// evalCmp decides a comparison of two intervals when every value pair
// agrees on the outcome.
func evalCmp(op ir.CmpOp, a, b solver.Interval) tri {
	if a.Empty() || b.Empty() {
		return triUnknown
	}
	switch op {
	case ir.CmpEq:
		if av, ok := isSingle(a); ok {
			if bv, ok2 := isSingle(b); ok2 && av == bv {
				return triTrue
			}
		}
		if a.Hi < b.Lo || a.Lo > b.Hi {
			return triFalse
		}
	case ir.CmpNe:
		return evalCmp(ir.CmpEq, a, b).not()
	case ir.CmpLt:
		if a.Hi < b.Lo {
			return triTrue
		}
		if a.Lo >= b.Hi {
			return triFalse
		}
	case ir.CmpLe:
		if a.Hi <= b.Lo {
			return triTrue
		}
		if a.Lo > b.Hi {
			return triFalse
		}
	case ir.CmpGt:
		return evalCmp(ir.CmpLe, a, b).not()
	case ir.CmpGe:
		return evalCmp(ir.CmpLt, a, b).not()
	}
	return triUnknown
}

func evalCond(e *env, c ir.Cond) tri {
	switch t := c.(type) {
	case ir.Cmp:
		return evalCmp(t.Op, evalExpr(e, t.A), evalExpr(e, t.B))
	case ir.Not:
		return evalCond(e, t.C).not()
	case ir.AndC:
		a, b := evalCond(e, t.A), evalCond(e, t.B)
		if a == triFalse || b == triFalse {
			return triFalse
		}
		if a == triTrue && b == triTrue {
			return triTrue
		}
	case ir.OrC:
		a, b := evalCond(e, t.A), evalCond(e, t.B)
		if a == triTrue || b == triTrue {
			return triTrue
		}
		if a == triFalse && b == triFalse {
			return triFalse
		}
	}
	return triUnknown
}

// ---- refinement ----

// refineTrue returns a copy of the environment narrowed under the
// assumption that c holds. Only `field op value-interval` shapes refine;
// everything else passes through unchanged (sound: refinement may only
// narrow towards the truth, never invent constraints).
func refineTrue(e *env, c ir.Cond) *env {
	out := e.clone()
	assumeTrue(out, c)
	return out
}

func refineFalse(e *env, c ir.Cond) *env {
	out := e.clone()
	assumeFalse(out, c)
	return out
}

func assumeTrue(e *env, c ir.Cond) {
	switch t := c.(type) {
	case ir.Cmp:
		assumeCmp(e, t)
	case ir.Not:
		assumeFalse(e, t.C)
	case ir.AndC:
		assumeTrue(e, t.A)
		assumeTrue(e, t.B)
	case ir.OrC:
		// a||b true refines nothing unless one side is statically false.
		if evalCond(e, t.A) == triFalse {
			assumeTrue(e, t.B)
		} else if evalCond(e, t.B) == triFalse {
			assumeTrue(e, t.A)
		}
	}
}

func assumeFalse(e *env, c ir.Cond) {
	switch t := c.(type) {
	case ir.Cmp:
		assumeCmp(e, ir.Cmp{Op: t.Op.Negate(), A: t.A, B: t.B})
	case ir.Not:
		assumeTrue(e, t.C)
	case ir.OrC:
		// !(a||b) => !a && !b.
		assumeFalse(e, t.A)
		assumeFalse(e, t.B)
	case ir.AndC:
		// !(a&&b) refines nothing unless one side is statically true.
		if evalCond(e, t.A) == triTrue {
			assumeFalse(e, t.B)
		} else if evalCond(e, t.B) == triTrue {
			assumeFalse(e, t.A)
		}
	}
}

// assumeCmp narrows a field's interval from `pkt.f op B` or `A op pkt.f`.
func assumeCmp(e *env, c ir.Cmp) {
	if f, ok := c.A.(ir.FieldRef); ok {
		narrowField(e, f.Name, c.Op, evalExpr(e, c.B))
	}
	if f, ok := c.B.(ir.FieldRef); ok {
		narrowField(e, f.Name, swapCmp(c.Op), evalExpr(e, c.A))
	}
}

// narrowField intersects field's interval with {x : exists v in b, x op v}.
func narrowField(e *env, field string, op ir.CmpOp, b solver.Interval) {
	if b.Empty() {
		return
	}
	iv := e.get(field)
	switch op {
	case ir.CmpEq:
		iv = iv.Intersect(b)
	case ir.CmpNe:
		// Only a singleton at an interval boundary can be clipped.
		if v, ok := isSingle(b); ok {
			if iv.Lo == v && iv.Hi == v {
				iv = solver.Interval{Lo: 1, Hi: 0} // empty
			} else if iv.Lo == v {
				iv.Lo++
			} else if iv.Hi == v {
				iv.Hi--
			}
		}
	case ir.CmpLt:
		if b.Hi == 0 {
			iv = solver.Interval{Lo: 1, Hi: 0}
		} else if iv.Hi > b.Hi-1 {
			iv.Hi = b.Hi - 1
		}
	case ir.CmpLe:
		if iv.Hi > b.Hi {
			iv.Hi = b.Hi
		}
	case ir.CmpGt:
		if b.Lo == math.MaxUint64 {
			iv = solver.Interval{Lo: 1, Hi: 0}
		} else if iv.Lo < b.Lo+1 {
			iv.Lo = b.Lo + 1
		}
	case ir.CmpGe:
		if iv.Lo < b.Lo {
			iv.Lo = b.Lo
		}
	}
	e.iv[field] = iv
}

// ---- the pass ----

type intervalPass struct {
	p        *ir.Program
	r        *Report
	live     map[int]bool
	visiting map[string]bool // tables on the visit stack (cycle guard)
}

// intervals walks the program marking blocks live under every feasible
// combination of guards; blocks never marked (and not already
// CFG-unreachable) are statically dead. Dead blocks feed the profiler's
// pruning hook and are reported as probability-0 code.
func intervals(p *ir.Program, r *Report) {
	ip := &intervalPass{p: p, r: r, live: map[int]bool{}, visiting: map[string]bool{}}
	ip.visit(p.Root, newEnv(p))

	idom := dominators(ir.BuildCFG(p), entryID(p))
	var deadList []*ir.Block
	for _, b := range p.Nodes() {
		if !ip.live[b.ID] && !r.Unreachable[b.ID] {
			r.Dead[b.ID] = true
			deadList = append(deadList, b)
			r.addNode("interval", SevWarn, b,
				"block is statically dead: every path to it contradicts an enclosing guard")
		}
	}
	// Dominator closure: anything dominated by a dead block is dead too
	// (structural marking already implies this for nested arms; the closure
	// additionally catches blocks whose only CFG routes pass a dead node).
	for _, d := range deadList {
		for _, b := range p.Nodes() {
			if !r.Dead[b.ID] && !r.Unreachable[b.ID] && dominatedBy(idom, b.ID, d.ID) {
				r.Dead[b.ID] = true
				r.addNode("interval", SevWarn, b,
					"block is statically dead: dominated by dead block %q", d.Label)
			}
		}
	}
}

func (ip *intervalPass) visit(s ir.Stmt, e *env) {
	if s == nil || !e.feasible() {
		return
	}
	switch t := s.(type) {
	case *ir.Block:
		ip.live[t.ID] = true
		for _, c := range t.Stmts {
			ip.visit(c, e)
		}
	case *ir.If:
		ip.visitIf(t, e)
	case *ir.HashAccess:
		ip.visit(t.OnEmpty, e)
		ip.visit(t.OnHit, e)
		ip.visit(t.OnCollide, e)
	case *ir.BloomOp:
		ip.visit(t.OnHit, e)
		ip.visit(t.OnMiss, e)
	case *ir.SketchBranch:
		ip.visit(t.OnTrue, e)
		ip.visit(t.OnFalse, e)
	case *ir.TableApply:
		ip.visitTable(t, e)
	}
}

func (ip *intervalPass) visitIf(f *ir.If, e *env) {
	switch evalCond(e, f.Cond) {
	case triTrue:
		if f.Else != nil {
			ip.diagConst(f, true)
		}
		ip.visit(f.Then, refineTrue(e, f.Cond))
	case triFalse:
		ip.diagConst(f, false)
		if f.Else != nil {
			ip.visit(f.Else, refineFalse(e, f.Cond))
		}
	default:
		ip.checkFlagGuard(f, e)
		thenEnv := refineTrue(e, f.Cond)
		if thenEnv.feasible() {
			ip.visit(f.Then, thenEnv)
		}
		elseEnv := refineFalse(e, f.Cond)
		if f.Else != nil && elseEnv.feasible() {
			ip.visit(f.Else, elseEnv)
		}
	}
}

func (ip *intervalPass) diagConst(f *ir.If, always bool) {
	word := "false"
	armLabel := blockLabel(f.Then)
	if always {
		word = "true"
		armLabel = blockLabel(f.Else)
	}
	ip.r.add("interval", SevWarn, -1, "",
		"condition %q is always %s under enclosing guards (arm %q is infeasible)",
		f.Cond.String(), word, armLabel)
}

// checkFlagGuard is the protocol-semantics lint the ISSUE's example calls
// for: testing TCP flag bits in a region where the enclosing guards already
// exclude proto == TCP is semantically meaningless even though the header
// space makes it satisfiable (the fields are independent bits on the wire).
// It is a warning only and never feeds the prune set.
func (ip *intervalPass) checkFlagGuard(f *ir.If, e *env) {
	refs := condFields(f.Cond)
	if !refs["tcp_flags"] {
		return
	}
	proto := e.get("proto")
	full := solver.FullInterval(8)
	if proto == full {
		return // unconstrained: nothing known
	}
	if !proto.Contains(ir.ProtoTCP) {
		ip.r.add("interval", SevWarn, -1, "",
			"condition %q tests tcp_flags where enclosing guards exclude proto == TCP",
			f.Cond.String())
	}
}

func condFields(c ir.Cond) map[string]bool {
	out := map[string]bool{}
	walkCond(c, func(cc ir.Cond) {
		if cmp, ok := cc.(ir.Cmp); ok {
			for _, x := range []ir.Expr{cmp.A, cmp.B} {
				walkExpr(x, func(sub ir.Expr) {
					if fr, ok := sub.(ir.FieldRef); ok {
						out[fr.Name] = true
					}
				})
			}
		}
	})
	return out
}

func blockLabel(s ir.Stmt) string {
	if b, ok := s.(*ir.Block); ok {
		return b.Label
	}
	return "?"
}

func (ip *intervalPass) visitTable(t *ir.TableApply, e *env) {
	tbl, ok := ip.p.Table(t.Table)
	if !ok || ip.visiting[t.Table] {
		return
	}
	ip.visiting[t.Table] = true
	defer delete(ip.visiting, t.Table)

	for ei := range tbl.Entries {
		entry := &tbl.Entries[ei]
		ee := e.clone()
		feasible := true
		for ki, spec := range entry.Match {
			if ki >= len(tbl.Keys) {
				break
			}
			fr, isField := tbl.Keys[ki].(ir.FieldRef)
			if !isField {
				continue // non-field key: no refinement
			}
			switch spec.Kind {
			case ir.MatchExact:
				ee.iv[fr.Name] = ee.get(fr.Name).Intersect(single(spec.Lo))
			case ir.MatchRange:
				ee.iv[fr.Name] = ee.get(fr.Name).Intersect(solver.Interval{Lo: spec.Lo, Hi: spec.Hi})
			}
			if ee.get(fr.Name).Empty() {
				feasible = false
			}
		}
		if !feasible {
			ip.r.add("interval", SevWarn, -1, "",
				"table %q entry %d can never match under enclosing guards", tbl.Name, ei)
			continue
		}
		ip.visit(entry.Action, ee)
	}
	// The default and symbolic arms run under the unrefined environment
	// (negated-match refinement is deliberately not attempted).
	ip.visit(tbl.Default, e)
	ip.visit(tbl.SymbolicAction, e)
}
