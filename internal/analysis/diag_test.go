package analysis

import "testing"

func TestSeverityString(t *testing.T) {
	cases := []struct {
		sev  Severity
		want string
	}{
		{SevError, "error"},
		{SevWarn, "warn"},
		{SevInfo, "info"},
		{Severity(99), "info"}, // out-of-range values degrade to info
	}
	for _, c := range cases {
		if got := c.sev.String(); got != c.want {
			t.Errorf("Severity(%d).String() = %q, want %q", c.sev, got, c.want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	cases := []struct {
		name string
		d    Diagnostic
		want string
	}{
		{
			name: "program-level",
			d:    Diagnostic{Pass: "verify", Severity: SevError, Node: -1, Msg: "bad"},
			want: "error verify   program: bad",
		},
		{
			name: "node-level",
			d:    Diagnostic{Pass: "reach", Severity: SevWarn, Node: 7, Block: "drop_it", Msg: "dead"},
			want: "warn  reach    drop_it(#7): dead",
		},
		{
			name: "info",
			d:    Diagnostic{Pass: "defuse", Severity: SevInfo, Node: -1, Msg: "unused"},
			want: "info  defuse   program: unused",
		},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%s: String() = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestReportCounts(t *testing.T) {
	cases := []struct {
		name          string
		sevs          []Severity
		errors, warns int
		hasErrors     bool
	}{
		{"empty", nil, 0, 0, false},
		{"only info", []Severity{SevInfo, SevInfo}, 0, 0, false},
		{"mixed", []Severity{SevError, SevWarn, SevWarn, SevInfo}, 1, 2, true},
		{"all errors", []Severity{SevError, SevError}, 2, 0, true},
	}
	for _, c := range cases {
		r := &Report{Program: c.name}
		for _, s := range c.sevs {
			r.add("test", s, -1, "", "x")
		}
		if got := r.Errors(); got != c.errors {
			t.Errorf("%s: Errors() = %d, want %d", c.name, got, c.errors)
		}
		if got := r.Warnings(); got != c.warns {
			t.Errorf("%s: Warnings() = %d, want %d", c.name, got, c.warns)
		}
		if got := r.HasErrors(); got != c.hasErrors {
			t.Errorf("%s: HasErrors() = %v, want %v", c.name, got, c.hasErrors)
		}
	}
}
