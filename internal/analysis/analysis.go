// Package analysis implements static analysis over the IR: a well-formedness
// verifier with structured diagnostics (replacing panic-on-error checking),
// a lint pass suite (def-use chains, constant/interval propagation,
// state-dependency extraction), and dead-branch detection whose result feeds
// the profiler's pruning hook.
//
// All passes are conservative with respect to execution: a block is reported
// unreachable or statically dead only when no concrete packet sequence can
// exercise it. The soundness fuzz test in soundness_test.go checks this
// invariant against the symbolic engine over randomly generated programs.
//
// The paper's pipeline has no pre-analysis stage — every syntactic branch is
// handed to the symbolic engine (and KLEE pays for it in path explosion).
// This package is a repo-over-paper extension in the spirit of P4Testgen's
// verified midend: it rejects malformed programs up front and lets the
// profiler skip provably-dead branches, reporting them as probability-0
// blocks without spending solver time.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// Severity grades a diagnostic.
type Severity int

const (
	// SevError marks a malformed program; `p4wn lint` exits non-zero.
	SevError Severity = iota
	// SevWarn marks suspicious but executable code (dead branches, dead
	// stores, out-of-range constants).
	SevWarn
	// SevInfo marks notable but benign findings.
	SevInfo
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarn:
		return "warn"
	}
	return "info"
}

// Diagnostic is one finding of one pass.
type Diagnostic struct {
	Pass     string // "verify", "reach", "defuse", "interval"
	Severity Severity
	// Node is the CFG node the finding anchors to, -1 for program-level
	// findings; Block is its label ("" when Node < 0).
	Node  int
	Block string
	Msg   string
}

func (d Diagnostic) String() string {
	loc := "program"
	if d.Node >= 0 {
		loc = fmt.Sprintf("%s(#%d)", d.Block, d.Node)
	}
	return fmt.Sprintf("%-5s %-8s %s: %s", d.Severity, d.Pass, loc, d.Msg)
}

// Report is the combined result of all passes over one program.
type Report struct {
	Program string
	Diags   []Diagnostic

	// Unreachable are CFG nodes with no path from the entry block
	// (e.g. actions of a table that is never applied).
	Unreachable map[int]bool
	// Dead are nodes only reachable through statically-infeasible branches
	// (plus nodes dominated by such). Disjoint from Unreachable.
	Dead map[int]bool
	// Deps is the state-dependency graph (which blocks read/write which
	// register, array, hash table, Bloom filter, or sketch).
	Deps *DepGraph
	// IFC is the information-flow pass's structured result; nil when the
	// program has no policy and no external one was supplied.
	IFC *IFCResult
}

// PruneSet returns every node the profiler may skip: CFG-unreachable nodes
// plus statically-dead ones. The returned map is freshly allocated.
func (r *Report) PruneSet() map[int]bool {
	out := make(map[int]bool, len(r.Unreachable)+len(r.Dead))
	for id := range r.Unreachable {
		out[id] = true
	}
	for id := range r.Dead {
		out[id] = true
	}
	return out
}

// Errors counts error-severity diagnostics.
func (r *Report) Errors() int { return r.count(SevError) }

// Warnings counts warn-severity diagnostics.
func (r *Report) Warnings() int { return r.count(SevWarn) }

func (r *Report) count(s Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// HasErrors reports whether any pass found a malformed construct.
func (r *Report) HasErrors() bool { return r.Errors() > 0 }

func (r *Report) add(pass string, sev Severity, node int, label, format string, args ...interface{}) {
	r.Diags = append(r.Diags, Diagnostic{
		Pass: pass, Severity: sev, Node: node, Block: label,
		Msg: fmt.Sprintf(format, args...),
	})
}

func (r *Report) addNode(pass string, sev Severity, b *ir.Block, format string, args ...interface{}) {
	r.add(pass, sev, b.ID, b.Label, format, args...)
}

// String renders the report: a one-line summary followed by diagnostics
// sorted by severity then node.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lint %s: %d error(s), %d warning(s), %d dead block(s), %d unreachable\n",
		r.Program, r.Errors(), r.Warnings(), len(r.Dead), len(r.Unreachable))
	diags := append([]Diagnostic(nil), r.Diags...)
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Severity != diags[j].Severity {
			return diags[i].Severity < diags[j].Severity
		}
		return diags[i].Node < diags[j].Node
	})
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// Analyze runs every pass over a built program: the verifier, CFG
// reachability, def-use linting, interval-based dead-branch detection, and
// (when the program carries a policy) the information-flow pass.
func Analyze(p *ir.Program) *Report {
	return AnalyzeWithPolicy(p, nil)
}

// AnalyzeWithPolicy runs the full pass suite with an extra policy merged
// over the program's inline one (either may be nil; the ifc pass runs when
// the merge is non-empty).
func AnalyzeWithPolicy(p *ir.Program, extra *ir.SecPolicy) *Report {
	r := &Report{
		Program:     p.Name,
		Unreachable: map[int]bool{},
		Dead:        map[int]bool{},
	}
	verify(p, r)
	reachability(p, r)
	defUse(p, r)
	intervals(p, r)
	pol := p.Policy
	if !extra.Empty() {
		merged := &ir.SecPolicy{}
		merged.Merge(pol)
		merged.Merge(extra)
		pol = merged
	}
	if !pol.Empty() {
		r.IFC = ifc(p, pol, r)
	}
	return r
}

// DeadBlocks is the profiler's pruning hook: it returns the set of CFG nodes
// that no packet sequence can exercise (unreachable plus statically dead).
// It runs only the passes needed for pruning.
func DeadBlocks(p *ir.Program) map[int]bool {
	r := &Report{
		Program:     p.Name,
		Unreachable: map[int]bool{},
		Dead:        map[int]bool{},
	}
	reachability(p, r)
	intervals(p, r)
	return r.PruneSet()
}
