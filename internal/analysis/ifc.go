// Information-flow control pass (pass name "ifc"): a forward taint-lattice
// dataflow analysis in the spirit of P4BID, extended with the repo's
// probability profile. Against a policy naming secret sources (header
// fields, registers, state structures) and public sinks (observable
// actions, control-plane-readable structures) it tracks explicit flows
// through assignments and extern calls, implicit flows through branch
// conditions (including the three-way extern continuations), and
// cross-packet flows through persistent state — the channel the
// state-dependency graph of the defuse pass describes. Each leak carries a
// source→sink witness chain of CFG nodes; joining the chain against a
// probability profile weights the leak by how likely real traffic is to
// exercise it ("this secret reaches a public counter on a path with
// p≈1e-4"), a combination neither the profiling paper nor the IFC papers
// have.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/prob"
)

// Leak is one policy violation: a flow from a secret source to a public
// sink.
type Leak struct {
	Source ir.SecRef
	Sink   ir.SecRef
	// Node/Block anchor the sink occurrence in the CFG.
	Node  int
	Block string
	// Implicit marks a flow carried only by branch conditions (the sink
	// event's occurrence reveals the secret, not its payload).
	Implicit bool
	// Witness is the flow's CFG node chain, source end first, ending at
	// the sink node.
	Witness []int

	// P is the witness path's probability under a profile: the rarest
	// block on the chain bounds how often per packet the whole flow is
	// exercised. Weighted reports whether a profile join happened (P is
	// One and meaningless otherwise).
	P        prob.P
	Weighted bool
}

// IFCResult is the ifc pass's structured output.
type IFCResult struct {
	Policy *ir.SecPolicy
	// Leaks are sorted by sink node (then sink, source) after the pass;
	// Weight re-ranks them by descending path probability.
	Leaks []Leak
	// Rounds is the number of per-packet fixpoint rounds the
	// cross-packet propagation needed before the persistent-state labels
	// stabilized.
	Rounds int
}

// HasLeaks reports whether any flow violates the policy.
func (res *IFCResult) HasLeaks() bool { return len(res.Leaks) > 0 }

// MaxP returns the largest leak probability (Zero when unweighted or no
// leaks).
func (res *IFCResult) MaxP() prob.P {
	max := prob.Zero()
	for _, l := range res.Leaks {
		if l.Weighted && max.Less(l.P) {
			max = l.P
		}
	}
	return max
}

// Weight joins every leak's witness chain against per-block probabilities
// (typically a finished core profile) and re-ranks leaks by descending
// path probability — the most-exercised leaks first, because those leak
// fastest in deployment. The path probability is the minimum block
// probability along the witness: every block on the chain must execute
// for the flow to complete, and on the nested chains the walker emits the
// rarest block dominates.
func (res *IFCResult) Weight(blockP func(node int) (prob.P, bool)) {
	for i := range res.Leaks {
		l := &res.Leaks[i]
		p := prob.One()
		found := false
		for _, node := range l.Witness {
			if bp, ok := blockP(node); ok {
				found = true
				if bp.Less(p) {
					p = bp
				}
			}
		}
		if found {
			l.P = p
			l.Weighted = true
		}
	}
	sort.SliceStable(res.Leaks, func(i, j int) bool {
		a, b := res.Leaks[i], res.Leaks[j]
		if a.P.Log10() != b.P.Log10() {
			return b.P.Less(a.P) // descending probability
		}
		return a.Node < b.Node
	})
}

// WitnessString renders a leak's chain with block labels:
// "entry(#0) -> tcp(#1) -> tcp_sample(#3)".
func (res *IFCResult) WitnessString(p *ir.Program, l Leak) string {
	return witnessString(p, l.Witness)
}

func witnessString(p *ir.Program, nodes []int) string {
	if len(nodes) == 0 {
		return "-"
	}
	parts := make([]string, len(nodes))
	for i, id := range nodes {
		parts[i] = fmt.Sprintf("%s(#%d)", p.Node(id).Label, id)
	}
	return strings.Join(parts, " -> ")
}

// IFCOnly runs just the passes the information-flow analysis needs (the
// def-use pass for the state-dependency graph, then ifc) and returns the
// structured result, or nil when the program has no policy. The
// convenience entry the profiler's report join uses; `Analyze` runs the
// same pass as part of the full suite.
func IFCOnly(p *ir.Program) *IFCResult {
	if p.Policy.Empty() {
		return nil
	}
	r := &Report{Program: p.Name, Unreachable: map[int]bool{}, Dead: map[int]bool{}}
	defUse(p, r)
	return ifc(p, p.Policy, r)
}

// ifc runs the taint pass. r.Deps must be populated (defUse has run).
func ifc(p *ir.Program, pol *ir.SecPolicy, r *Report) *IFCResult {
	res := &IFCResult{Policy: pol}
	if !validatePolicy(p, pol, r) {
		return res
	}

	w := &ifcWalker{
		p:            p,
		env:          newTaintEnv(),
		secretFields: map[string]ir.SecRef{},
		secretMeta:   map[string]ir.SecRef{},
		secretState:  map[stateKey]ir.SecRef{},
		sinkActions:  map[string]ir.SecRef{},
		sinkState:    map[stateKey]ir.SecRef{},
		leaks:        map[leakKey]*Leak{},
	}
	for _, ref := range pol.Secrets {
		switch ref.Kind {
		case ir.KindField:
			w.secretFields[ref.Name] = ref
		case ir.KindMeta:
			w.secretMeta[ref.Name] = ref
		default:
			w.secretState[stateKey{ref.Kind, ref.Name}] = ref
		}
	}
	for _, ref := range pol.Sinks {
		if ref.Kind == ir.KindAction {
			w.sinkActions[ref.Name] = ref
		} else {
			w.sinkState[stateKey{ref.Kind, ref.Name}] = ref
		}
	}

	// The state-dependency graph drives two decisions. First, a
	// state-only secret that no block ever reads cannot flow anywhere —
	// the pass is skipped outright when that holds for every secret (the
	// common zoo case of telemetry-only structures). Second, the number
	// of fixpoint rounds cross-packet propagation can need is bounded by
	// the longest chain of written state objects, so the loop is capped
	// by the graph's writer count instead of an arbitrary constant.
	writtenStates := 0
	stateRead := map[stateKey]bool{}
	if r.Deps != nil {
		for _, s := range r.Deps.States {
			k := stateKey{s.Kind, s.Name}
			if len(s.Writers) > 0 {
				writtenStates++
			}
			if len(s.Readers) > 0 {
				stateRead[k] = true
			}
		}
	}
	if len(w.secretFields) == 0 && len(w.secretMeta) == 0 && r.Deps != nil {
		anyReadable := false
		for k := range w.secretState {
			if stateRead[k] {
				anyReadable = true
				break
			}
		}
		if !anyReadable {
			r.add("ifc", SevInfo, -1, "",
				"no secret state object is ever read; no flow is possible")
			return res
		}
	}

	// Tables applied somewhere get their actions walked at the apply site
	// (under the keys' implicit-flow context); the rest are walked
	// standalone so unreferenced tables still lint (reachability reports
	// them separately as CFG-unreachable).
	appliedAnywhere := map[string]bool{}
	noteApplies := func(s ir.Stmt) {
		walkStmtShallow(s, func(st ir.Stmt) {
			if ap, ok := st.(*ir.TableApply); ok {
				appliedAnywhere[ap.Table] = true
			}
		})
	}
	noteApplies(p.Root)
	for ti := range p.Tables {
		for _, e := range p.Tables[ti].Entries {
			noteApplies(e.Action)
		}
		noteApplies(p.Tables[ti].Default)
		noteApplies(p.Tables[ti].SymbolicAction)
	}

	// Cross-packet fixpoint: persistent labels only grow, so the loop
	// terminates; the +2 covers the seeding round and the final
	// no-change confirmation round.
	maxRounds := writtenStates + 2
	for round := 0; round < maxRounds; round++ {
		res.Rounds = round + 1
		w.env.meta = map[string]label{}
		for k, ref := range w.secretState {
			w.env.taintState(k, label{ref: nil})
		}
		for name, ref := range w.secretMeta {
			w.env.taintMeta(name, label{ref: nil})
		}
		// Seeding is not propagation: only taint that the walk itself
		// pushes into persistent state forces another round.
		w.env.stateChanged = false
		w.walk(nil, p.Root)
		for ti := range p.Tables {
			if !appliedAnywhere[p.Tables[ti].Name] {
				w.walkTable(nil, &p.Tables[ti])
			}
		}
		if !w.env.stateChanged {
			break
		}
	}

	// Deterministic ordering: sink node, then sink, source, flow kind.
	for _, l := range w.leaks {
		res.Leaks = append(res.Leaks, *l)
	}
	sort.Slice(res.Leaks, func(i, j int) bool {
		a, b := res.Leaks[i], res.Leaks[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Sink != b.Sink {
			return a.Sink.String() < b.Sink.String()
		}
		return a.Source.String() < b.Source.String()
	})
	for _, l := range res.Leaks {
		flow := "explicit"
		if l.Implicit {
			flow = "implicit"
		}
		r.add("ifc", SevWarn, l.Node, l.Block,
			"secret %s reaches public sink %s (%s flow) via %s",
			l.Source, l.Sink, flow, witnessString(p, l.Witness))
	}
	return res
}

// leakKey dedups one (source, sink, sink-site) triple across fixpoint
// rounds; an explicit flow replaces an implicit one for the same triple.
type leakKey struct {
	src  ir.SecRef
	sink ir.SecRef
	node int
}

// ifcWalker is the abstract interpreter of the taint pass.
type ifcWalker struct {
	p   *ir.Program
	env *taintEnv

	secretFields map[string]ir.SecRef
	secretMeta   map[string]ir.SecRef
	secretState  map[stateKey]ir.SecRef
	sinkActions  map[string]ir.SecRef
	sinkState    map[stateKey]ir.SecRef

	leaks   map[leakKey]*Leak
	applied map[string]bool
}

// nodeOf returns the CFG anchor for the innermost enclosing block.
func nodeOf(b *ir.Block) int {
	if b == nil {
		return -1
	}
	return b.ID
}

// exprLabel computes the taint label of an expression read at block b.
func (w *ifcWalker) exprLabel(b *ir.Block, e ir.Expr) label {
	var out label
	walkExpr(e, func(x ir.Expr) {
		switch t := x.(type) {
		case ir.FieldRef:
			if ref, ok := w.secretFields[t.Name]; ok {
				out, _ = out.join(label{ref: []int{nodeOf(b)}})
			}
		case ir.RegRef:
			out, _ = out.join(w.env.state[stateKey{ir.KindRegister, t.Reg}].at(nodeOf(b)))
		case ir.MetaRef:
			out, _ = out.join(w.env.meta[t.Name].at(nodeOf(b)))
		}
	})
	return out
}

// exprsLabel joins the labels of several expressions.
func (w *ifcWalker) exprsLabel(b *ir.Block, es ...ir.Expr) label {
	var out label
	for _, e := range es {
		out, _ = out.join(w.exprLabel(b, e))
	}
	return out
}

// condLabel computes the taint label of a branch condition.
func (w *ifcWalker) condLabel(b *ir.Block, c ir.Cond) label {
	var out label
	walkCond(c, func(cc ir.Cond) {
		if cmp, ok := cc.(ir.Cmp); ok {
			out, _ = out.join(w.exprsLabel(b, cmp.A, cmp.B))
		}
	})
	return out
}

// sink records leaks at a sink occurrence: explicit carries data-flow
// taint into the sink's payload, implicit the enclosing branch taint (the
// occurrence itself is the signal).
func (w *ifcWalker) sink(b *ir.Block, ref ir.SecRef, explicit, implicit label) {
	node := nodeOf(b)
	if node < 0 {
		return
	}
	record := func(src ir.SecRef, wit []int, isImplicit bool) {
		k := leakKey{src, ref, node}
		if prev, ok := w.leaks[k]; ok {
			if prev.Implicit && !isImplicit {
				prev.Implicit = false // upgrade: explicit flow found later
			}
			return
		}
		chain := append([]int(nil), wit...)
		if n := len(chain); n == 0 || chain[n-1] != node {
			chain = append(chain, node)
		}
		w.leaks[k] = &Leak{
			Source: src, Sink: ref, Node: node, Block: w.p.Node(node).Label,
			Implicit: isImplicit, Witness: chain, P: prob.One(),
		}
	}
	for _, src := range explicit.sources() {
		record(src, explicit[src], false)
	}
	for _, src := range implicit.sources() {
		if _, ok := explicit[src]; ok {
			continue
		}
		record(src, implicit[src], true)
	}
}

// stateWrite joins taint into a persistent cell and reports a leak when
// the cell is a public sink.
func (w *ifcWalker) stateWrite(b *ir.Block, k stateKey, explicit label) {
	pc := w.env.pcLabel()
	eff, _ := explicit.join(pc)
	w.env.taintState(k, eff.at(nodeOf(b)))
	if ref, ok := w.sinkState[k]; ok {
		w.sink(b, ref, explicit, pc)
	}
}

// walk interprets a statement with b as the innermost enclosing block.
func (w *ifcWalker) walk(b *ir.Block, s ir.Stmt) {
	if s == nil {
		return
	}
	switch t := s.(type) {
	case *ir.Block:
		for _, c := range t.Stmts {
			w.walk(t, c)
		}

	case *ir.If:
		cond := w.condLabel(b, t.Cond)
		w.env.push(cond.at(nodeOf(b)))
		w.walk(b, t.Then)
		w.walk(b, t.Else)
		w.env.pop()

	case *ir.Assign:
		val := w.exprLabel(b, t.Expr)
		switch lv := t.Target.(type) {
		case ir.RegLV:
			w.stateWrite(b, stateKey{ir.KindRegister, lv.Reg}, val)
		case ir.MetaLV:
			eff, _ := val.join(w.env.pcLabel())
			w.env.taintMeta(lv.Name, eff.at(nodeOf(b)))
		}

	case *ir.Action:
		if ref, ok := w.sinkActions[t.Kind.String()]; ok {
			w.sink(b, ref, w.exprLabel(b, t.Arg), w.env.pcLabel())
		}

	case *ir.HashAccess:
		k := stateKey{ir.KindHash, t.Store}
		keyL := w.exprsLabel(b, t.Key...)
		stored := w.env.state[k].at(nodeOf(b))
		if t.Dest != "" {
			// The loaded value carries the table contents, the key that
			// selected the slot, and the enclosing branch context.
			eff, _ := stored.join(keyL)
			eff, _ = eff.join(w.env.pcLabel())
			w.env.taintMeta(t.Dest, eff.at(nodeOf(b)))
		}
		if t.Write {
			valL := w.exprLabel(b, t.Value)
			eff, _ := valL.join(keyL)
			w.stateWrite(b, k, eff)
		}
		// The three-way continuation observes both the probe key and the
		// table contents: an implicit flow into every arm.
		branch, _ := keyL.join(stored)
		w.env.push(branch.at(nodeOf(b)))
		w.walk(b, t.OnEmpty)
		w.walk(b, t.OnHit)
		w.walk(b, t.OnCollide)
		w.env.pop()

	case *ir.BloomOp:
		k := stateKey{ir.KindBloom, t.Filter}
		keyL := w.exprsLabel(b, t.Key...)
		stored := w.env.state[k].at(nodeOf(b))
		if t.Insert {
			w.stateWrite(b, k, keyL)
		}
		branch, _ := keyL.join(stored)
		w.env.push(branch.at(nodeOf(b)))
		w.walk(b, t.OnHit)
		w.walk(b, t.OnMiss)
		w.env.pop()

	case *ir.SketchUpdate:
		k := stateKey{ir.KindSketch, t.Sketch}
		keyL := w.exprsLabel(b, t.Key...)
		incL := w.exprLabel(b, t.Inc)
		eff, _ := keyL.join(incL)
		w.stateWrite(b, k, eff)
		if t.Dest != "" {
			est, _ := w.env.state[k].at(nodeOf(b)).join(keyL)
			est, _ = est.join(w.env.pcLabel())
			w.env.taintMeta(t.Dest, est.at(nodeOf(b)))
		}

	case *ir.SketchBranch:
		k := stateKey{ir.KindSketch, t.Sketch}
		keyL := w.exprsLabel(b, t.Key...)
		branch, _ := keyL.join(w.env.state[k].at(nodeOf(b)))
		w.env.push(branch.at(nodeOf(b)))
		w.walk(b, t.OnTrue)
		w.walk(b, t.OnFalse)
		w.env.pop()

	case *ir.ArrayRead:
		k := stateKey{ir.KindArray, t.Array}
		if t.Dest != "" {
			eff, _ := w.env.state[k].at(nodeOf(b)).join(w.exprLabel(b, t.Index))
			eff, _ = eff.join(w.env.pcLabel())
			w.env.taintMeta(t.Dest, eff.at(nodeOf(b)))
		}

	case *ir.ArrayWrite:
		k := stateKey{ir.KindArray, t.Array}
		eff, _ := w.exprLabel(b, t.Index).join(w.exprLabel(b, t.Value))
		w.stateWrite(b, k, eff)

	case *ir.TableApply:
		if tbl, ok := w.p.Table(t.Table); ok {
			if w.applied == nil {
				w.applied = map[string]bool{}
			}
			if !w.applied[t.Table] {
				w.applied[t.Table] = true
				keyL := w.exprsLabel(b, tbl.Keys...)
				// Which entry matches is determined by the keys: an
				// implicit flow into every action body.
				w.env.push(keyL.at(nodeOf(b)))
				w.walkTable(b, tbl)
				w.env.pop()
				w.applied[t.Table] = false
			}
		}
	}
}

func (w *ifcWalker) walkTable(b *ir.Block, tbl *ir.TableDecl) {
	for _, e := range tbl.Entries {
		w.walk(b, e.Action)
	}
	w.walk(b, tbl.Default)
	w.walk(b, tbl.SymbolicAction)
}
