package analysis

import "repro/internal/ir"

// entryID returns the CFG node ID of the program's entry block.
func entryID(p *ir.Program) int {
	if root, ok := p.Root.(*ir.Block); ok {
		return root.ID
	}
	return 0
}

// reachableFrom computes the set of nodes reachable from entry by forward
// BFS over the CFG (the per-packet back-edge is included but irrelevant:
// it only leads back to the entry).
func reachableFrom(g *ir.CFG, entry int) []bool {
	seen := make([]bool, g.NumNodes())
	if entry >= g.NumNodes() {
		return seen
	}
	queue := []int{entry}
	seen[entry] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Succ(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return seen
}

// dominators computes the immediate-dominator tree of the reachable CFG
// using the Cooper–Harvey–Kennedy iterative algorithm over a reverse
// postorder. idom[entry] == entry; unreachable nodes get -1.
func dominators(g *ir.CFG, entry int) []int {
	n := g.NumNodes()
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 || entry >= n {
		return idom
	}

	// Reverse postorder over the reachable subgraph.
	order := make([]int, 0, n) // postorder
	rpoNum := make([]int, n)   // node -> RPO index
	visited := make([]bool, n)
	var dfs func(u int)
	dfs = func(u int) {
		visited[u] = true
		for _, v := range g.Succ(u) {
			if !visited[v] {
				dfs(v)
			}
		}
		order = append(order, u)
	}
	dfs(entry)
	rpo := make([]int, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		rpo = append(rpo, order[i])
	}
	for i, u := range rpo {
		rpoNum[u] = i
	}

	preds := make([][]int, n)
	for u := 0; u < n; u++ {
		if !visited[u] {
			continue
		}
		for _, v := range g.Succ(u) {
			preds[v] = append(preds[v], u)
		}
	}

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, u := range rpo {
			if u == entry {
				continue
			}
			newIdom := -1
			for _, p := range preds[u] {
				if idom[p] < 0 {
					continue // predecessor not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[u] != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// dominatedBy reports whether node n is strictly dominated by d (every path
// from the entry to n passes through d).
func dominatedBy(idom []int, n, d int) bool {
	if n < 0 || n >= len(idom) || idom[n] < 0 {
		return false
	}
	for u := idom[n]; ; u = idom[u] {
		if u == d {
			return true
		}
		if u == idom[u] || idom[u] < 0 { // reached the entry
			return false
		}
	}
}

// reachability flags CFG nodes with no path from the entry block — typically
// actions of a table that is never applied, which the switch can never
// execute.
func reachability(p *ir.Program, r *Report) {
	g := ir.BuildCFG(p)
	entry := entryID(p)
	seen := reachableFrom(g, entry)
	for _, b := range p.Nodes() {
		if !seen[b.ID] {
			r.Unreachable[b.ID] = true
			r.addNode("reach", SevWarn, b,
				"block is unreachable from the entry (no CFG path can execute it)")
		}
	}
}
