package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// StateDep records, for one piece of persistent or per-packet state, the
// CFG nodes that read it and the nodes that write it.
type StateDep struct {
	Name string
	Kind string // "register", "array", "hash", "bloom", "sketch", "meta"
	// Readers and Writers are sorted CFG node IDs.
	Readers []int
	Writers []int
}

// DepGraph is the program's state-dependency graph: which blocks read and
// write which registers, register arrays, and approximate structures. It is
// the lint-level analogue of the paper's observation that adversarial state
// coupling flows through shared stateful objects.
type DepGraph struct {
	prog   *ir.Program
	States []StateDep
}

// String renders the graph with block labels, one state object per line.
// Output order is always (kind, name) with sorted node IDs, regardless of
// how States was assembled — CI diffs and golden tests depend on the
// rendering being deterministic even for hand-built graphs.
func (g *DepGraph) String() string {
	var b strings.Builder
	labels := func(ids []int) string {
		if len(ids) == 0 {
			return "-"
		}
		ids = append([]int(nil), ids...)
		sort.Ints(ids)
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = fmt.Sprintf("%s(#%d)", g.prog.Node(id).Label, id)
		}
		return strings.Join(parts, " ")
	}
	states := append([]StateDep(nil), g.States...)
	sort.Slice(states, func(i, j int) bool {
		if states[i].Kind != states[j].Kind {
			return states[i].Kind < states[j].Kind
		}
		return states[i].Name < states[j].Name
	})
	for _, s := range states {
		fmt.Fprintf(&b, "%-8s %-16s readers: %s\n", s.Kind, s.Name, labels(s.Readers))
		fmt.Fprintf(&b, "%-8s %-16s writers: %s\n", "", "", labels(s.Writers))
	}
	return b.String()
}

// accessKey identifies one state object during collection.
type accessKey struct{ kind, name string }

type accessSets struct {
	readers map[int]bool
	writers map[int]bool
}

// defUse runs the def-use lint pass: it builds the state-dependency graph
// and flags dead stores (state written but never read), reads of
// never-written state, and per-packet metadata read before any possible
// write.
func defUse(p *ir.Program, r *Report) {
	acc := map[accessKey]*accessSets{}
	get := func(kind, name string) *accessSets {
		k := accessKey{kind, name}
		if a, ok := acc[k]; ok {
			return a
		}
		a := &accessSets{readers: map[int]bool{}, writers: map[int]bool{}}
		acc[k] = a
		return a
	}
	// Declare every state object up front so never-accessed ones appear in
	// the graph (and can be flagged as unused).
	for _, d := range p.Regs {
		get("register", d.Name)
	}
	for _, d := range p.RegArrays {
		get("array", d.Name)
	}
	for _, d := range p.HashTables {
		get("hash", d.Name)
	}
	for _, d := range p.Blooms {
		get("bloom", d.Name)
	}
	for _, d := range p.Sketches {
		get("sketch", d.Name)
	}

	// seenMetaWrite accumulates metadata names that have at least one write
	// earlier in the pre-order walk; a read with no earlier write on *any*
	// path always observes the implicit zero. Applying a table counts every
	// write inside the table's actions (the walk visits those bodies after
	// the root, but execution interleaves them at the apply site).
	seenMetaWrite := map[string]bool{}
	tableMetaWrites := map[string][]string{}
	for ti := range p.Tables {
		t := &p.Tables[ti]
		var names []string
		collect := func(s ir.Stmt) {
			walkStmtShallow(s, func(st ir.Stmt) {
				switch w := st.(type) {
				case *ir.Assign:
					if lv, ok := w.Target.(ir.MetaLV); ok {
						names = append(names, lv.Name)
					}
				case *ir.HashAccess:
					if w.Dest != "" {
						names = append(names, w.Dest)
					}
				case *ir.SketchUpdate:
					if w.Dest != "" {
						names = append(names, w.Dest)
					}
				case *ir.ArrayRead:
					if w.Dest != "" {
						names = append(names, w.Dest)
					}
				}
			})
		}
		for _, e := range t.Entries {
			collect(e.Action)
		}
		collect(t.Default)
		collect(t.SymbolicAction)
		tableMetaWrites[t.Name] = names
	}
	type metaRead struct {
		block *ir.Block
		name  string
	}
	var earlyReads []metaRead

	noteExprReads := func(b *ir.Block, es ...ir.Expr) {
		for _, e := range es {
			walkExpr(e, func(x ir.Expr) {
				switch t := x.(type) {
				case ir.RegRef:
					if b != nil {
						get("register", t.Reg).readers[b.ID] = true
					}
				case ir.MetaRef:
					if b != nil {
						get("meta", t.Name).readers[b.ID] = true
					}
					if !seenMetaWrite[t.Name] {
						earlyReads = append(earlyReads, metaRead{b, t.Name})
					}
				}
			})
		}
	}
	noteCondReads := func(b *ir.Block, c ir.Cond) {
		walkCond(c, func(cc ir.Cond) {
			if cmp, ok := cc.(ir.Cmp); ok {
				noteExprReads(b, cmp.A, cmp.B)
			}
		})
	}

	walkWithBlocks(p, func(b *ir.Block, s ir.Stmt) {
		id := -1
		if b != nil {
			id = b.ID
		}
		mark := func(set map[int]bool) {
			if id >= 0 {
				set[id] = true
			}
		}
		switch t := s.(type) {
		case *ir.Assign:
			noteExprReads(b, t.Expr)
			switch lv := t.Target.(type) {
			case ir.RegLV:
				mark(get("register", lv.Reg).writers)
			case ir.MetaLV:
				mark(get("meta", lv.Name).writers)
				seenMetaWrite[lv.Name] = true
			}
		case *ir.If:
			noteCondReads(b, t.Cond)
		case *ir.Action:
			noteExprReads(b, t.Arg)
		case *ir.HashAccess:
			a := get("hash", t.Store)
			mark(a.readers)
			if t.Write {
				mark(a.writers)
			}
			noteExprReads(b, t.Key...)
			noteExprReads(b, t.Value)
			if t.Dest != "" {
				mark(get("meta", t.Dest).writers)
				seenMetaWrite[t.Dest] = true
			}
		case *ir.BloomOp:
			a := get("bloom", t.Filter)
			mark(a.readers)
			if t.Insert {
				mark(a.writers)
			}
			noteExprReads(b, t.Key...)
		case *ir.SketchUpdate:
			a := get("sketch", t.Sketch)
			mark(a.writers)
			if t.Dest != "" {
				mark(a.readers) // the estimate is read back
				mark(get("meta", t.Dest).writers)
				seenMetaWrite[t.Dest] = true
			}
			noteExprReads(b, t.Key...)
			noteExprReads(b, t.Inc)
		case *ir.SketchBranch:
			mark(get("sketch", t.Sketch).readers)
			noteExprReads(b, t.Key...)
		case *ir.ArrayRead:
			mark(get("array", t.Array).readers)
			noteExprReads(b, t.Index)
			if t.Dest != "" {
				mark(get("meta", t.Dest).writers)
				seenMetaWrite[t.Dest] = true
			}
		case *ir.ArrayWrite:
			mark(get("array", t.Array).writers)
			noteExprReads(b, t.Index, t.Value)
		case *ir.TableApply:
			if tbl, ok := p.Table(t.Table); ok {
				for _, k := range tbl.Keys {
					noteExprReads(b, k)
				}
			}
			for _, name := range tableMetaWrites[t.Table] {
				seenMetaWrite[name] = true
			}
		}
	})

	// Diagnostics.
	for k, a := range acc {
		switch {
		case k.kind == "meta":
			if len(a.readers) > 0 && len(a.writers) == 0 {
				r.add("defuse", SevWarn, -1, "",
					"metadata %q is read but never written (always zero)", k.name)
			} else if len(a.writers) > 0 && len(a.readers) == 0 {
				r.add("defuse", SevInfo, -1, "",
					"metadata %q is written but never read (dead store)", k.name)
			}
		case len(a.readers) == 0 && len(a.writers) == 0:
			r.add("defuse", SevInfo, -1, "",
				"%s %q is declared but never accessed", k.kind, k.name)
		case len(a.writers) > 0 && len(a.readers) == 0:
			// Approximate structures are often write-only from the data
			// plane's perspective: the control plane reads them for
			// telemetry. Only a write-only register is a likely dead store.
			if k.kind == "register" {
				r.add("defuse", SevWarn, -1, "",
					"register %q is written but never read (dead store)", k.name)
			} else {
				r.add("defuse", SevInfo, -1, "",
					"%s %q is only written by the data plane (control-plane telemetry?)", k.kind, k.name)
			}
		case k.kind == "register" && len(a.readers) > 0 && len(a.writers) == 0:
			r.add("defuse", SevInfo, -1, "",
				"register %q is read but never written (constant %d)", k.name, regInit(p, k.name))
		}
	}
	// Metadata read-before-write: the pre-order walk over-approximates the
	// set of writes that can precede a read, so a read flagged here has no
	// possible earlier write on any execution and observes the implicit
	// zero. Reads of entirely unwritten metadata are already reported above.
	for _, er := range earlyReads {
		a := acc[accessKey{"meta", er.name}]
		if a == nil || len(a.writers) == 0 {
			continue
		}
		if er.block != nil {
			r.addNode("defuse", SevWarn, er.block,
				"metadata %q may be read before its first write (reads zero)", er.name)
		}
	}

	// Assemble the graph, deterministically ordered.
	g := &DepGraph{prog: p}
	keys := make([]accessKey, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].name < keys[j].name
	})
	for _, k := range keys {
		a := acc[k]
		g.States = append(g.States, StateDep{
			Name:    k.name,
			Kind:    k.kind,
			Readers: sortedIDs(a.readers),
			Writers: sortedIDs(a.writers),
		})
	}
	r.Deps = g
}

func regInit(p *ir.Program, name string) uint64 {
	if d, ok := p.Reg(name); ok {
		return d.Init
	}
	return 0
}

func sortedIDs(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
