package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/programs"
)

// TestZooLintClean checks the acceptance criterion that every shipped zoo
// program lints clean: the verifier finds no malformed constructs and the
// dead-branch passes report no false positives (the zoo programs are all
// hand-written to have only live, reachable code).
func TestZooLintClean(t *testing.T) {
	for _, m := range programs.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			p := m.Build()
			r := analysis.Analyze(p)
			if r.Errors() > 0 {
				t.Errorf("program %q has %d verifier error(s):\n%s", m.Name, r.Errors(), r)
			}
			for _, d := range r.Diags {
				// Annotated zoo programs intentionally leak (their inline
				// policies document real information flows); every other
				// pass must stay warning-free.
				if d.Severity == analysis.SevWarn && d.Pass != "ifc" {
					t.Errorf("program %q: unexpected warning: %s", m.Name, d)
				}
			}
			if len(r.Unreachable) > 0 || len(r.Dead) > 0 {
				t.Errorf("program %q: false-positive prune set: unreachable=%v dead=%v",
					m.Name, r.Unreachable, r.Dead)
			}
		})
	}
}
