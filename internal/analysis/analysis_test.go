package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/ir"
)

func mustBuild(t *testing.T, p *ir.Program) *ir.Program {
	t.Helper()
	q, err := p.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return q
}

func mustBuildUnvalidated(t *testing.T, p *ir.Program) *ir.Program {
	t.Helper()
	q, err := p.BuildUnvalidated()
	if err != nil {
		t.Fatalf("BuildUnvalidated: %v", err)
	}
	return q
}

func hasDiag(r *analysis.Report, sev analysis.Severity, substr string) bool {
	for _, d := range r.Diags {
		if d.Severity == sev && strings.Contains(d.Msg, substr) {
			return true
		}
	}
	return false
}

// The verifier must report every malformed construct, not stop at the first
// like Build's validate does.
func TestVerifierCollectsAllErrors(t *testing.T) {
	p := mustBuildUnvalidated(t, &ir.Program{
		Name: "broken",
		Root: ir.Body(
			ir.Set("no_such_reg", ir.C(1)),
			ir.If1(ir.Eq(ir.F("no_such_field"), ir.C(3)), ir.Drop()),
			&ir.TableApply{Table: "no_such_table"},
			&ir.HashAccess{Store: "no_such_hash", Key: []ir.Expr{ir.F("src_ip")}},
		),
	})
	r := analysis.Analyze(p)
	for _, want := range []string{"no_such_reg", "no_such_field", "no_such_table", "no_such_hash"} {
		if !hasDiag(r, analysis.SevError, want) {
			t.Errorf("missing error diagnostic mentioning %q:\n%s", want, r)
		}
	}
	if r.Errors() < 4 {
		t.Errorf("Errors() = %d, want >= 4", r.Errors())
	}
}

// A table whose action re-applies the table must be reported as an error,
// and analysis must terminate (the CFG builder guards the recursion).
func TestVerifierRecursiveTableApply(t *testing.T) {
	p := mustBuildUnvalidated(t, &ir.Program{
		Name: "recur",
		Tables: []ir.TableDecl{{
			Name:    "loop",
			Keys:    []ir.Expr{ir.F("proto")},
			Default: ir.Blk("loop.again", &ir.TableApply{Table: "loop"}),
		}},
		Root: ir.Body(&ir.TableApply{Table: "loop"}, ir.Fwd(1)),
	})
	r := analysis.Analyze(p)
	if !hasDiag(r, analysis.SevError, "applied recursively") {
		t.Errorf("missing recursive-apply error:\n%s", r)
	}
}

// Constants that cannot fit the compared field's width are flagged.
func TestVerifierOutOfRangeConstant(t *testing.T) {
	p := mustBuild(t, &ir.Program{
		Name: "widths",
		Root: ir.Body(
			// proto is 8 bits: == 300 can never be true.
			ir.If1(ir.Eq(ir.F("proto"), ir.C(300)), ir.Drop()),
			ir.Fwd(1),
		),
	})
	r := analysis.Analyze(p)
	if !hasDiag(r, analysis.SevWarn, "exceeds 8-bit field") {
		t.Errorf("missing out-of-range constant warning:\n%s", r)
	}
}

// Actions of a table that is never applied have no CFG path from the entry.
func TestReachabilityUnappliedTable(t *testing.T) {
	p := mustBuild(t, &ir.Program{
		Name: "orphan",
		Tables: []ir.TableDecl{{
			Name:    "unused",
			Keys:    []ir.Expr{ir.F("dst_port")},
			Entries: []ir.Entry{{Match: []ir.MatchSpec{ir.Exact(80)}, Action: ir.Blk("unused.web", ir.Fwd(2))}},
			Default: ir.Blk("unused.def", ir.Drop()),
		}},
		Root: ir.Body(ir.Fwd(1)),
	})
	r := analysis.Analyze(p)
	web := p.NodeByLabel("unused.web")
	def := p.NodeByLabel("unused.def")
	if web == nil || def == nil {
		t.Fatal("table action blocks not found")
	}
	if !r.Unreachable[web.ID] || !r.Unreachable[def.ID] {
		t.Errorf("unapplied table actions not marked unreachable: %v\n%s", r.Unreachable, r)
	}
	if r.Unreachable[entry(p).ID] {
		t.Error("entry block marked unreachable")
	}
}

func entry(p *ir.Program) *ir.Block { return p.Root.(*ir.Block) }

// A branch contradicting its enclosing guard is statically dead; the guard's
// live arm is not.
func TestDeadBranchContradiction(t *testing.T) {
	p := mustBuild(t, &ir.Program{
		Name: "contra",
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoUDP)),
				ir.Blk("udp",
					ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoTCP)),
						ir.Blk("dead", ir.Drop()),
						ir.Blk("live", ir.Fwd(2)))),
				ir.Blk("other", ir.Fwd(1))),
		),
	})
	r := analysis.Analyze(p)
	dead := p.NodeByLabel("dead")
	if !r.Dead[dead.ID] {
		t.Errorf("contradictory branch not marked dead:\n%s", r)
	}
	for _, label := range []string{"udp", "live", "other"} {
		if b := p.NodeByLabel(label); r.Dead[b.ID] || r.Unreachable[b.ID] {
			t.Errorf("live block %q falsely pruned", label)
		}
	}
	if got := analysis.DeadBlocks(p); !got[dead.ID] {
		t.Errorf("DeadBlocks() = %v, want %d pruned", got, dead.ID)
	}
}

// Interval (not just equality) contradictions are caught.
func TestDeadBranchRangeContradiction(t *testing.T) {
	p := mustBuild(t, &ir.Program{
		Name: "range",
		Root: ir.Body(
			ir.If1(ir.Lt(ir.F("pkt_len"), ir.C(100)),
				ir.Blk("small",
					ir.If1(ir.Gt(ir.F("pkt_len"), ir.C(200)),
						ir.Blk("impossible", ir.ToCPU())),
					ir.Fwd(1))),
			ir.Fwd(2),
		),
	})
	r := analysis.Analyze(p)
	if b := p.NodeByLabel("impossible"); !r.Dead[b.ID] {
		t.Errorf("range-contradictory branch not marked dead:\n%s", r)
	}
	if b := p.NodeByLabel("small"); r.Dead[b.ID] {
		t.Error("guard arm falsely marked dead")
	}
}

// The ISSUE's running example: testing TCP flag bits where the enclosing
// guards exclude TCP is semantically meaningless — but satisfiable in header
// space, so it must be a warning only, never in the prune set.
func TestTCPFlagsUnderUDPGuardWarns(t *testing.T) {
	p := mustBuild(t, &ir.Program{
		Name: "flags",
		Root: ir.Body(
			ir.If1(ir.Eq(ir.F("proto"), ir.C(ir.ProtoUDP)),
				ir.Blk("udp",
					ir.If1(ir.FlagSet(ir.FlagSYN), ir.Blk("syn", ir.Drop())),
					ir.Fwd(1))),
			ir.Fwd(2),
		),
	})
	r := analysis.Analyze(p)
	if !hasDiag(r, analysis.SevWarn, "exclude proto == TCP") {
		t.Errorf("missing tcp_flags-under-non-TCP-guard warning:\n%s", r)
	}
	if b := p.NodeByLabel("syn"); r.Dead[b.ID] || r.Unreachable[b.ID] {
		t.Error("flag test arm must not be pruned (it is satisfiable in header space)")
	}
}

// Branches on persistent state must never be pruned: the pass knows nothing
// about register contents.
func TestStatefulBranchesStayLive(t *testing.T) {
	p := mustBuild(t, &ir.Program{
		Name: "stateful",
		Regs: []ir.RegDecl{{Name: "count", Bits: 32}},
		Root: ir.Body(
			ir.Add1("count"),
			ir.If2(ir.Gt(ir.R("count"), ir.C(1000)),
				ir.Blk("hot", ir.ToCPU()),
				ir.Blk("cold", ir.Fwd(1))),
		),
	})
	r := analysis.Analyze(p)
	if len(r.Dead) > 0 || len(r.Unreachable) > 0 {
		t.Errorf("stateful branches pruned: dead=%v unreachable=%v", r.Dead, r.Unreachable)
	}
}

// A tautological comparison (16-bit field <= 65535) pins the condition and
// kills the else arm.
func TestConditionAlwaysTrue(t *testing.T) {
	p := mustBuild(t, &ir.Program{
		Name: "taut",
		Root: ir.Body(
			ir.If2(ir.Le(ir.F("pkt_len"), ir.C(65535)),
				ir.Blk("yes", ir.Fwd(1)),
				ir.Blk("no", ir.Drop())),
		),
	})
	r := analysis.Analyze(p)
	if !hasDiag(r, analysis.SevWarn, "always true") {
		t.Errorf("missing always-true warning:\n%s", r)
	}
	if b := p.NodeByLabel("no"); !r.Dead[b.ID] {
		t.Errorf("else arm of tautology not dead:\n%s", r)
	}
}

// Def-use: unwritten metadata reads, register dead stores, and the
// state-dependency graph.
func TestDefUse(t *testing.T) {
	p := mustBuild(t, &ir.Program{
		Name: "defuse",
		Regs: []ir.RegDecl{
			{Name: "written_only", Bits: 32},
			{Name: "used", Bits: 32},
		},
		Root: ir.Body(
			ir.Set("written_only", ir.C(7)),
			ir.Set("used", ir.Add(ir.R("used"), ir.C(1))),
			ir.If1(ir.Gt(ir.M("never_written"), ir.C(0)), ir.Drop()),
			ir.Fwd(1),
		),
	})
	r := analysis.Analyze(p)
	if !hasDiag(r, analysis.SevWarn, `register "written_only" is written but never read`) {
		t.Errorf("missing register dead-store warning:\n%s", r)
	}
	if !hasDiag(r, analysis.SevWarn, `metadata "never_written" is read but never written`) {
		t.Errorf("missing unwritten-metadata warning:\n%s", r)
	}
	if r.Deps == nil {
		t.Fatal("no dependency graph")
	}
	var usedDep *analysis.StateDep
	for i := range r.Deps.States {
		if r.Deps.States[i].Kind == "register" && r.Deps.States[i].Name == "used" {
			usedDep = &r.Deps.States[i]
		}
	}
	if usedDep == nil {
		t.Fatal(`register "used" missing from dependency graph`)
	}
	if len(usedDep.Readers) == 0 || len(usedDep.Writers) == 0 {
		t.Errorf(`register "used" deps incomplete: readers=%v writers=%v`,
			usedDep.Readers, usedDep.Writers)
	}
}

// Metadata read before any possible write observes the implicit zero.
func TestMetaReadBeforeWrite(t *testing.T) {
	p := mustBuild(t, &ir.Program{
		Name: "early",
		Root: ir.Body(
			ir.If1(ir.Gt(ir.M("score"), ir.C(5)), ir.Drop()), // read...
			ir.SetM("score", ir.F("ttl")),                    // ...before this write
			ir.Fwd(1),
		),
	})
	r := analysis.Analyze(p)
	if !hasDiag(r, analysis.SevWarn, "read before its first write") {
		t.Errorf("missing read-before-write warning:\n%s", r)
	}
}

// Dead-arm detection must follow refinement into table entry actions.
func TestTableEntryRefinement(t *testing.T) {
	p := mustBuild(t, &ir.Program{
		Name: "tblref",
		Tables: []ir.TableDecl{{
			Name: "acl",
			Keys: []ir.Expr{ir.F("proto")},
			Entries: []ir.Entry{{
				Match: []ir.MatchSpec{ir.Exact(ir.ProtoTCP)},
				Action: ir.Blk("acl.tcp",
					ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoUDP)),
						ir.Blk("acl.dead", ir.Drop()),
						ir.Blk("acl.live", ir.Fwd(2)))),
			}},
			Default: ir.Blk("acl.def", ir.Fwd(1)),
		}},
		Root: ir.Body(&ir.TableApply{Table: "acl"}),
	})
	r := analysis.Analyze(p)
	if b := p.NodeByLabel("acl.dead"); !r.Dead[b.ID] {
		t.Errorf("dead arm inside table entry action not found:\n%s", r)
	}
	for _, label := range []string{"acl.tcp", "acl.live", "acl.def"} {
		if b := p.NodeByLabel(label); r.Dead[b.ID] || r.Unreachable[b.ID] {
			t.Errorf("live table block %q falsely pruned", label)
		}
	}
}
