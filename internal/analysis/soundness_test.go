package analysis_test

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/randprog"
	"repro/internal/solver"
	"repro/internal/sym"
)

// Soundness of the prune set: a block the analysis calls unreachable or
// statically dead must never be visited by a symbolic path that the full
// solver proves feasible. Random deterministic programs exercise nesting,
// guards, and tables far beyond the hand-written unit tests.
func TestPruneSetSoundness(t *testing.T) {
	programs, packets := int64(40), 2
	if testing.Short() {
		programs = 12
	}
	prunedPrograms := 0
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := randprog.Deterministic(rng, randprog.Options{WithTables: seed%3 == 0})

		report := analysis.Analyze(prog)
		if report.HasErrors() {
			t.Fatalf("seed %d: random program has verifier errors:\n%s\nprogram:\n%s",
				seed, report, prog.Format())
		}
		prune := report.PruneSet()
		if len(prune) > 0 {
			prunedPrograms++
		}

		// Explore WITHOUT pruning so the engine can wander into any block.
		e := sym.NewEngine(prog, sym.Options{Greybox: true, MaxPaths: 1 << 14})
		paths := e.Initial()
		var err error
		ok := true
		for i := 0; i < packets; i++ {
			paths, err = e.Step(paths, i)
			if err != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}

		for _, path := range paths {
			hitsPruned := false
			for id := range path.AllVisits {
				if prune[id] {
					hitsPruned = true
					break
				}
			}
			if !hitsPruned {
				continue
			}
			// The engine over-approximates; only a solver witness proves the
			// path (and hence the pruned block) actually reachable.
			if _, sat := solver.Solve(path.PC, e.Space, solver.SolveOptions{Seed: seed}); !sat {
				continue
			}
			for id := range path.AllVisits {
				if prune[id] {
					t.Fatalf("seed %d: block %q is in the prune set but a satisfiable path visits it\nreport:\n%s\nprogram:\n%s",
						seed, prog.Node(id).Label, report, prog.Format())
				}
			}
		}
	}
	// The generator rarely emits contradictory nesting, so do not require
	// pruned programs — but log the rate so a regression to "never prunes
	// anything" is visible.
	t.Logf("%d/%d random programs had a non-empty prune set", prunedPrograms, programs)
}

// With pruning enabled the engine must produce exactly the same set of
// feasible behaviors: every (satisfiable) visited-block multiset present
// without pruning is present with it.
func TestPrunedEngineEquivalence(t *testing.T) {
	const packets = 2
	seeds := int64(25)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(200); seed < 200+seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := randprog.Deterministic(rng, randprog.Options{})
		prune := analysis.DeadBlocks(prog)
		if len(prune) == 0 {
			continue
		}

		run := func(dead map[int]bool) (map[string]bool, bool) {
			e := sym.NewEngine(prog, sym.Options{Greybox: true, MaxPaths: 1 << 14, Dead: dead})
			paths := e.Initial()
			var err error
			for i := 0; i < packets; i++ {
				paths, err = e.Step(paths, i)
				if err != nil {
					return nil, false
				}
			}
			sigs := map[string]bool{}
			for _, p := range paths {
				if _, sat := solver.Solve(p.PC, e.Space, solver.SolveOptions{Seed: seed}); !sat {
					continue
				}
				sig := ""
				for id := 0; id < len(prog.Nodes()); id++ {
					sig += string(rune('a' + p.AllVisits[id]%26))
				}
				sigs[sig] = true
			}
			return sigs, true
		}

		base, ok1 := run(nil)
		pruned, ok2 := run(prune)
		if !ok1 || !ok2 {
			continue
		}
		for sig := range base {
			if !pruned[sig] {
				t.Fatalf("seed %d: feasible behavior lost under pruning\nprogram:\n%s",
					seed, prog.Format())
			}
		}
	}
}
