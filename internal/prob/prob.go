// Package prob provides log-space probability arithmetic. Profiles of
// telescoped code blocks reach magnitudes like 1e-196 (paper Figure 8),
// and products of such values underflow float64; all probability math in
// the profiler therefore runs in log10 space.
package prob

import (
	"fmt"
	"math"
)

// P is a probability stored as log10. The zero value is probability 1
// (log10 = 0); use Zero() for probability 0.
type P struct {
	l float64
}

// Zero returns probability 0.
func Zero() P { return P{l: math.Inf(-1)} }

// One returns probability 1.
func One() P { return P{l: 0} }

// FromFloat converts a linear-space probability (clamped to [0,1]).
func FromFloat(f float64) P {
	if f <= 0 || math.IsNaN(f) {
		return Zero()
	}
	if f > 1 {
		f = 1
	}
	return P{l: math.Log10(f)}
}

// FromLog10 builds a probability from its log10 value directly.
func FromLog10(l float64) P {
	if l > 0 {
		l = 0
	}
	return P{l: l}
}

// IsZero reports whether the probability is exactly 0.
func (p P) IsZero() bool { return math.IsInf(p.l, -1) }

// Log10 returns log10 of the probability (−Inf for zero).
func (p P) Log10() float64 { return p.l }

// Float returns the linear-space value; extremely small probabilities
// underflow to 0, which is acceptable for display.
func (p P) Float() float64 {
	if p.IsZero() {
		return 0
	}
	return math.Pow(10, p.l)
}

// Mul returns p*q.
func (p P) Mul(q P) P {
	if p.IsZero() || q.IsZero() {
		return Zero()
	}
	return P{l: p.l + q.l}
}

// Div returns p/q (probability 1 when q is zero and p is zero).
func (p P) Div(q P) P {
	if p.IsZero() {
		return Zero()
	}
	if q.IsZero() {
		return One()
	}
	l := p.l - q.l
	if l > 0 {
		l = 0
	}
	return P{l: l}
}

// Add returns p+q (clamped to 1).
func (p P) Add(q P) P {
	if p.IsZero() {
		return q
	}
	if q.IsZero() {
		return p
	}
	hi, lo := p.l, q.l
	if lo > hi {
		hi, lo = lo, hi
	}
	l := hi + math.Log10(1+math.Pow(10, lo-hi))
	if l > 0 {
		l = 0
	}
	return P{l: l}
}

// Pow returns p^e for e >= 0.
func (p P) Pow(e float64) P {
	if e == 0 {
		return One()
	}
	if p.IsZero() {
		return Zero()
	}
	return P{l: p.l * e}
}

// Cmp returns -1, 0, or +1 comparing p with q.
func (p P) Cmp(q P) int {
	switch {
	case p.l < q.l:
		return -1
	case p.l > q.l:
		return 1
	}
	return 0
}

// Less reports p < q.
func (p P) Less(q P) bool { return p.l < q.l }

// String renders the probability in scientific notation from log space,
// working even far below float64's underflow threshold.
func (p P) String() string {
	if p.IsZero() {
		return "0"
	}
	if p.l > -4 {
		return fmt.Sprintf("%.3f", p.Float())
	}
	exp := math.Floor(p.l)
	mant := math.Pow(10, p.l-exp)
	if mant >= 9.9995 { // rounding artifact
		mant /= 10
		exp++
	}
	if exp == 0 {
		return fmt.Sprintf("%.3f", mant)
	}
	return fmt.Sprintf("%.3fe%+03.0f", mant, exp)
}
