package prob

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/testutil"
)

func almostEq(a, b, tol float64) bool { return testutil.ApproxEqual(a, b, tol, 0) }

func TestBasics(t *testing.T) {
	if !Zero().IsZero() {
		t.Fatal("Zero not zero")
	}
	if One().Float() != 1 {
		t.Fatal("One not one")
	}
	p := FromFloat(0.25)
	if !almostEq(p.Float(), 0.25, 1e-12) {
		t.Fatalf("roundtrip 0.25 -> %v", p.Float())
	}
	if !FromFloat(-1).IsZero() || !FromFloat(0).IsZero() {
		t.Fatal("nonpositive should be zero")
	}
	if FromFloat(2).Float() != 1 {
		t.Fatal(">1 should clamp to 1")
	}
}

func TestMulAdd(t *testing.T) {
	a, b := FromFloat(0.5), FromFloat(0.25)
	if !almostEq(a.Mul(b).Float(), 0.125, 1e-12) {
		t.Fatalf("mul = %v", a.Mul(b).Float())
	}
	if !almostEq(a.Add(b).Float(), 0.75, 1e-12) {
		t.Fatalf("add = %v", a.Add(b).Float())
	}
	if !a.Mul(Zero()).IsZero() {
		t.Fatal("mul by zero")
	}
	if !almostEq(a.Add(Zero()).Float(), 0.5, 1e-12) {
		t.Fatal("add zero identity")
	}
}

func TestPowDeep(t *testing.T) {
	// (1/2)^64 in log space: log10 = -64*log10(2) ≈ -19.27.
	p := FromFloat(0.5).Pow(64)
	if !almostEq(p.Log10(), -64*math.Log10(2), 1e-9) {
		t.Fatalf("pow log10 = %v", p.Log10())
	}
	// Far below float64 underflow: (1/2)^2000 must still be representable.
	deep := FromFloat(0.5).Pow(2000)
	if deep.IsZero() {
		t.Fatal("deep pow should not be zero in log space")
	}
	if deep.Float() != 0 {
		t.Fatal("deep pow should underflow in linear space")
	}
	if deep.String() == "0" {
		t.Fatal("deep pow should render in scientific notation")
	}
}

func TestDiv(t *testing.T) {
	a, b := FromFloat(0.1), FromFloat(0.5)
	if !almostEq(a.Div(b).Float(), 0.2, 1e-12) {
		t.Fatalf("div = %v", a.Div(b).Float())
	}
	// Division clamps to 1.
	if b.Div(a).Float() != 1 {
		t.Fatal("div should clamp at 1")
	}
}

func TestCmp(t *testing.T) {
	a, b := FromFloat(0.1), FromFloat(0.2)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("cmp wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("less wrong")
	}
	if !Zero().Less(a) {
		t.Fatal("zero should be least")
	}
}

func TestString(t *testing.T) {
	if got := FromFloat(0.5).String(); got != "0.500" {
		t.Fatalf("String(0.5) = %q", got)
	}
	if got := Zero().String(); got != "0" {
		t.Fatalf("String(0) = %q", got)
	}
	got := FromLog10(-22).String()
	if got != "1.000e-22" {
		t.Fatalf("String(1e-22) = %q", got)
	}
}

// Property: Mul agrees with float multiplication for representable values.
func TestMulMatchesFloat(t *testing.T) {
	check := func(x, y uint16) bool {
		a := (float64(x) + 1) / 65537
		b := (float64(y) + 1) / 65537
		got := FromFloat(a).Mul(FromFloat(b)).Float()
		return almostEq(got, a*b, 1e-12)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and monotone.
func TestAddProperties(t *testing.T) {
	check := func(x, y uint16) bool {
		a := FromFloat(float64(x) / 200000)
		b := FromFloat(float64(y) / 200000)
		s1, s2 := a.Add(b), b.Add(a)
		if !almostEq(s1.Log10(), s2.Log10(), 1e-9) && !(s1.IsZero() && s2.IsZero()) {
			return false
		}
		if !a.IsZero() && s1.Less(a) {
			return false
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
