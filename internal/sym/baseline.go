package sym

import (
	"repro/internal/ir"
	"repro/internal/solver"
)

// Baseline (KLEE-like) handling of approximate data structures: the
// underlying arrays are materialized per path and cloned on every fork, and
// accesses with symbolic indices fork per previously-written slot (the
// index-concretization strategy general-purpose engines fall back to when
// theory-of-arrays constraints become intractable). Cost therefore grows
// with both the structure size and the access count — the scaling walls of
// paper Figures 6b–6d.

// BaseWrite records one baseline hash-table write for slot aliasing forks.
type BaseWrite struct {
	IdxVar solver.Var
	Keys   []solver.LinExpr
	Pkt    int
}

// materialize allocates a structure's backing array on the path.
func (e *Engine) materialize(p *Path, key string, size int) {
	if _, ok := p.Arrays[key]; ok {
		return
	}
	arr := make([]Value, size)
	for i := range arr {
		arr[i] = ConcreteVal(0)
	}
	p.Arrays[key] = arr
	e.Stats.ArrayBytes += size * 16
}

func (e *Engine) execHashBaseline(p *Path, h *ir.HashAccess, pkt int) ([]*Path, error) {
	decl, _ := e.Prog.HashTable(h.Store)
	size := e.Opts.Target.ClampHashSlots(decl.Size)
	arrKey := "__ht_" + h.Store
	e.materialize(p, arrKey, size)

	// The CRC index is a fresh symbolic variable over the slot range.
	idxVal := e.havoc(pkt, solver.Interval{Lo: 0, Hi: uint64(size - 1)})
	idxVar, _ := singleVar(idxVal)

	keyLins := make([]solver.LinExpr, 0, len(h.Key))
	for _, k := range h.Key {
		v := e.evalExpr(p, k, pkt)
		if l, ok := v.Lin(); ok {
			keyLins = append(keyLins, l)
		}
	}

	writes := p.BWrites[h.Store]
	var out []*Path

	// One fork per prior write: the new access aliases that slot.
	for _, w := range writes {
		q := p.Clone()
		e.countFork()
		e.Stats.ArrayBytes += size * 16 // cloned array state
		q.PC = append(q.PC, solver.NewCmp(ir.CmpEq, solver.VarExpr(idxVar), solver.VarExpr(w.IdxVar)))
		if !e.feasible(q) {
			continue
		}
		// Same slot: same key (hit) or different key (collision).
		hitQ := q.Clone()
		e.countFork()
		e.Stats.ArrayBytes += size * 16
		for i := range keyLins {
			if i < len(w.Keys) {
				hitQ.PC = append(hitQ.PC, solver.NewCmp(ir.CmpEq, keyLins[i], w.Keys[i]))
			}
		}
		colQ := q
		if len(keyLins) > 0 && len(w.Keys) > 0 {
			colQ.PC = append(colQ.PC, solver.NewCmp(ir.CmpNe, keyLins[0], w.Keys[0]))
		}
		if e.feasible(hitQ) {
			e.baselineWriteBack(hitQ, h, idxVar, keyLins, pkt)
			nps, err := e.exec(hitQ, h.OnHit, pkt)
			if err != nil {
				return nil, err
			}
			out = append(out, nps...)
		}
		if e.feasible(colQ) {
			e.baselineWriteBack(colQ, h, idxVar, keyLins, pkt)
			nps, err := e.exec(colQ, h.OnCollide, pkt)
			if err != nil {
				return nil, err
			}
			out = append(out, nps...)
		}
		if err := e.checkBudget(len(out)); err != nil {
			return nil, err
		}
	}

	// Fresh-slot fork: the index differs from every prior write.
	fresh := p
	for _, w := range writes {
		fresh.PC = append(fresh.PC, solver.NewCmp(ir.CmpNe, solver.VarExpr(idxVar), solver.VarExpr(w.IdxVar)))
	}
	if e.feasible(fresh) {
		e.baselineWriteBack(fresh, h, idxVar, keyLins, pkt)
		nps, err := e.exec(fresh, h.OnEmpty, pkt)
		if err != nil {
			return nil, err
		}
		out = append(out, nps...)
	}
	return out, nil
}

func (e *Engine) baselineWriteBack(q *Path, h *ir.HashAccess, idxVar solver.Var, keys []solver.LinExpr, pkt int) {
	if h.Dest != "" {
		q.Meta[h.Dest] = e.havoc(pkt, solver.FullInterval(32))
	}
	if !h.Write {
		return
	}
	if q.BWrites == nil {
		q.BWrites = map[string][]BaseWrite{}
	}
	q.BWrites[h.Store] = append(q.BWrites[h.Store], BaseWrite{IdxVar: idxVar, Keys: keys, Pkt: pkt})
}

func (e *Engine) feasible(p *Path) bool {
	if p == nil {
		return false
	}
	if e.Opts.NoFeasibilityCheck {
		return true
	}
	e.Stats.FeasibilityChk++
	return e.timedFeasible(p.PC)
}

func (e *Engine) execBloomBaseline(p *Path, b *ir.BloomOp, pkt int) ([]*Path, error) {
	decl, _ := e.Prog.Bloom(b.Filter)
	bits := e.Opts.Target.ClampBloomBits(decl.Bits)
	arrKey := "__bf_" + b.Filter
	e.materialize(p, arrKey, bits)

	// Each of the k probed bits is an unconstrained symbolic read; the
	// membership outcome forks qualitatively (the baseline cannot weight).
	hitQ := p.Clone()
	e.countFork()
	e.Stats.ArrayBytes += bits * 16
	missQ := p
	var out []*Path
	nps, err := e.exec(hitQ, b.OnHit, pkt)
	if err != nil {
		return nil, err
	}
	out = append(out, nps...)
	nps, err = e.exec(missQ, b.OnMiss, pkt)
	if err != nil {
		return nil, err
	}
	return append(out, nps...), nil
}

func (e *Engine) execSketchUpdateBaseline(p *Path, s *ir.SketchUpdate, pkt int) ([]*Path, error) {
	decl, _ := e.Prog.Sketch(s.Sketch)
	cols := e.Opts.Target.ClampSketchCols(decl.Cols)
	e.materialize(p, "__cms_"+s.Sketch, decl.Rows*cols)
	// Each row's counter read/update goes through a symbolic index; the
	// estimate is a fresh unknown. Fork per row over aliasing with prior
	// updates (approximated as one fork per prior update, as for tables).
	if s.Dest != "" {
		p.Meta[s.Dest] = e.havoc(pkt, solver.FullInterval(32))
	}
	writes := p.BWrites["__cms_"+s.Sketch]
	var out []*Path
	idxVal := e.havoc(pkt, solver.Interval{Lo: 0, Hi: uint64(cols - 1)})
	idxVar, _ := singleVar(idxVal)
	for _, w := range writes {
		q := p.Clone()
		e.countFork()
		e.Stats.ArrayBytes += decl.Rows * cols * 16
		q.PC = append(q.PC, solver.NewCmp(ir.CmpEq, solver.VarExpr(idxVar), solver.VarExpr(w.IdxVar)))
		if e.feasible(q) {
			out = append(out, q)
		}
	}
	for _, w := range writes {
		p.PC = append(p.PC, solver.NewCmp(ir.CmpNe, solver.VarExpr(idxVar), solver.VarExpr(w.IdxVar)))
	}
	if e.feasible(p) {
		if p.BWrites == nil {
			p.BWrites = map[string][]BaseWrite{}
		}
		p.BWrites["__cms_"+s.Sketch] = append(p.BWrites["__cms_"+s.Sketch], BaseWrite{IdxVar: idxVar, Pkt: pkt})
		out = append(out, p)
	}
	return out, nil
}

func (e *Engine) execSketchBranchBaseline(p *Path, s *ir.SketchBranch, pkt int) ([]*Path, error) {
	decl, _ := e.Prog.Sketch(s.Sketch)
	cols := e.Opts.Target.ClampSketchCols(decl.Cols)
	e.materialize(p, "__cms_"+s.Sketch, decl.Rows*cols)
	est := e.havoc(pkt, solver.FullInterval(32))
	el, _ := est.Lin()
	con := solver.NewCmp(s.Op, el, solver.ConstExpr(int64(s.Threshold)))

	tq := p.Clone()
	e.countFork()
	e.Stats.ArrayBytes += decl.Rows * cols * 16
	tq.PC = append(tq.PC, con)
	fq := p
	fq.PC = append(fq.PC, con.Negate())

	var out []*Path
	if e.feasible(tq) {
		nps, err := e.exec(tq, s.OnTrue, pkt)
		if err != nil {
			return nil, err
		}
		out = append(out, nps...)
	}
	if e.feasible(fq) {
		nps, err := e.exec(fq, s.OnFalse, pkt)
		if err != nil {
			return nil, err
		}
		out = append(out, nps...)
	}
	return out, nil
}
