package sym

import (
	"fmt"

	"repro/internal/greybox"
	"repro/internal/ir"
	"repro/internal/prob"
	"repro/internal/solver"
	"repro/internal/target"
)

// exec runs one statement on one path, returning the resulting paths.
// The input path is consumed (it may be returned or mutated).
func (e *Engine) exec(p *Path, s ir.Stmt, pkt int) ([]*Path, error) {
	if s == nil || p.halted {
		return []*Path{p}, nil
	}
	switch t := s.(type) {
	case *ir.Block:
		return e.execBlock(p, t, pkt)
	case *ir.If:
		return e.execIf(p, t, pkt)
	case *ir.Assign:
		v := e.evalExpr(p, t.Expr, pkt)
		switch lv := t.Target.(type) {
		case ir.RegLV:
			p.Regs[lv.Reg] = v
		case ir.MetaLV:
			p.Meta[lv.Name] = v
		}
		return []*Path{p}, nil
	case *ir.Action:
		return e.execAction(p, t, pkt)
	case *ir.HashAccess:
		if !e.stageOK(p, pkt) {
			return []*Path{p}, nil
		}
		if e.Opts.Greybox {
			return e.execHashGrey(p, t, pkt)
		}
		return e.execHashBaseline(p, t, pkt)
	case *ir.BloomOp:
		if !e.stageOK(p, pkt) {
			return []*Path{p}, nil
		}
		if e.Opts.Greybox {
			return e.execBloomGrey(p, t, pkt)
		}
		return e.execBloomBaseline(p, t, pkt)
	case *ir.SketchUpdate:
		if !e.stageOK(p, pkt) {
			return []*Path{p}, nil
		}
		if e.Opts.Greybox {
			return e.execSketchUpdateGrey(p, t, pkt)
		}
		return e.execSketchUpdateBaseline(p, t, pkt)
	case *ir.SketchBranch:
		if !e.stageOK(p, pkt) {
			return []*Path{p}, nil
		}
		if e.Opts.Greybox {
			return e.execSketchBranchGrey(p, t, pkt)
		}
		return e.execSketchBranchBaseline(p, t, pkt)
	case *ir.ArrayRead:
		if !e.stageOK(p, pkt) {
			return []*Path{p}, nil
		}
		e.execArrayRead(p, t, pkt)
		return []*Path{p}, nil
	case *ir.ArrayWrite:
		if !e.stageOK(p, pkt) {
			return []*Path{p}, nil
		}
		e.execArrayWrite(p, t, pkt)
		return []*Path{p}, nil
	case *ir.TableApply:
		if !e.stageOK(p, pkt) {
			return []*Path{p}, nil
		}
		return e.execTable(p, t, pkt)
	}
	return []*Path{p}, nil
}

// stageOK charges one pipeline stage for a stateful operation when the
// target sets a stage budget. The operation that would exceed the budget
// does not execute: the packet takes the target's overflow action (drop or
// punt) and the rest of the pass halts. Targets without a stage budget
// never advance Path.Stages, so idealized runs are untouched.
func (e *Engine) stageOK(p *Path, pkt int) bool {
	limit := e.Opts.Target.StageLimit()
	if limit <= 0 {
		return true
	}
	if p.Stages < limit {
		p.Stages++
		return true
	}
	kind := ir.ActDrop
	if e.Opts.Target.Overflow() == target.OverflowPunt {
		kind = ir.ActToCPU
	}
	p.Actions = append(p.Actions, ActionRecord{Kind: kind, Port: PortUnknown, Pkt: pkt})
	p.halted = true
	return false
}

func (e *Engine) execBlock(p *Path, b *ir.Block, pkt int) ([]*Path, error) {
	if e.Opts.Dead[b.ID] {
		// Statically-dead block: the analysis proved no packet sequence can
		// reach it, so this path carries zero probability mass. Discard it
		// instead of forking further.
		e.Stats.PrunedPaths++
		return nil, nil
	}
	p.Visits[b.ID] = true
	p.AllVisits[b.ID]++
	e.Hot.Visit(b.ID)
	prevBlk := e.curBlk
	e.curBlk = b.ID
	defer func() { e.curBlk = prevBlk }()
	cur := []*Path{p}
	for _, st := range b.Stmts {
		var next []*Path
		for _, q := range cur {
			if q.halted {
				next = append(next, q)
				continue
			}
			nps, err := e.exec(q, st, pkt)
			if err != nil {
				return nil, err
			}
			next = append(next, nps...)
		}
		cur = next
		if err := e.checkBudget(len(cur)); err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func (e *Engine) execIf(p *Path, f *ir.If, pkt int) ([]*Path, error) {
	// Static pruning: when an arm is a statically-dead block, the
	// condition's outcome is already implied by constraints on every path
	// that reaches it, so the path is routed to the live arm without the
	// fork, the clone, or the two feasibility checks.
	if e.Opts.Dead != nil {
		if b, ok := f.Then.(*ir.Block); ok && e.Opts.Dead[b.ID] {
			e.Stats.PrunedPaths++
			if f.Else == nil {
				return []*Path{p}, nil
			}
			return e.exec(p, f.Else, pkt)
		}
		if b, ok := f.Else.(*ir.Block); ok && e.Opts.Dead[b.ID] {
			e.Stats.PrunedPaths++
			return e.exec(p, f.Then, pkt)
		}
	}
	tr, fl := e.forkCond([]*Path{p}, f.Cond, pkt)
	var out []*Path
	for _, q := range tr {
		nps, err := e.exec(q, f.Then, pkt)
		if err != nil {
			return nil, err
		}
		out = append(out, nps...)
	}
	for _, q := range fl {
		if f.Else == nil {
			out = append(out, q)
			continue
		}
		nps, err := e.exec(q, f.Else, pkt)
		if err != nil {
			return nil, err
		}
		out = append(out, nps...)
	}
	return out, nil
}

func (e *Engine) execAction(p *Path, a *ir.Action, pkt int) ([]*Path, error) {
	rec := ActionRecord{Kind: a.Kind, Port: PortUnknown, Pkt: pkt}
	if a.Kind == ir.ActRecirculate && !e.Opts.Target.Recirculates() {
		// The target has no recirculation path: the packet leaves the fast
		// path as a CPU punt instead of looping through the pipeline.
		rec.Kind = ir.ActToCPU
	}
	if a.Arg != nil {
		if v := e.evalExpr(p, a.Arg, pkt); v.IsConcrete() {
			rec.Port = v.C
		}
	}
	p.Actions = append(p.Actions, rec)
	if a.Kind == ir.ActDrop && e.Opts.DropOptimization {
		p.halted = true
	}
	return []*Path{p}, nil
}

// ---- greybox data structures ----

func (e *Engine) hashStore(p *Path, name string) *greybox.HashStore {
	if st, ok := p.HashStores[name]; ok {
		return st
	}
	decl, _ := e.Prog.HashTable(name)
	st := greybox.NewHashStore(e.Opts.Target.ClampHashSlots(decl.Size))
	if e.Opts.Locality > 0 {
		st.Locality = e.Opts.Locality
	}
	p.HashStores[name] = st
	return st
}

// writeValue extracts the concrete value an access writes (symbolic values
// are abstracted to 0 inside greybox stores — only their statistics matter).
func (e *Engine) writeValue(p *Path, x ir.Expr, pkt int) uint64 {
	if x == nil {
		return 0
	}
	if v := e.evalExpr(p, x, pkt); v.IsConcrete() {
		return v.C
	}
	return 0
}

func (e *Engine) execHashGrey(p *Path, h *ir.HashAccess, pkt int) ([]*Path, error) {
	st := e.hashStore(p, h.Store)
	pe, ph, pc := st.AccessProbs()
	if e.Opts.Target.Exact() {
		// Map-backed state: keyed lookups are exact, so the collision arm
		// vanishes and its mass lands on the empty arm (an unseen key finds
		// no entry rather than someone else's slot).
		pe, pc = pe+pc, 0
	}
	wv := e.writeValue(p, h.Value, pkt)
	arms := []grArm{
		{pe, ArmEmpty, h.Store, func(q *Path) {
			s := q.HashStores[h.Store]
			if h.Write {
				s.ApplyEmptyWrite(wv)
				e.setDest(q, h.Dest, DistVal(greybox.PointDist(wv)))
			} else {
				e.setDest(q, h.Dest, ConcreteVal(0))
			}
		}, h.OnEmpty},
		{ph, ArmHit, h.Store, func(q *Path) {
			s := q.HashStores[h.Store]
			switch {
			case h.Write && h.Inc:
				nd := s.ApplyHitInc(int64(wv))
				e.setDest(q, h.Dest, DistVal(nd))
			case h.Write:
				s.ApplyHitWrite(wv)
				e.setDest(q, h.Dest, DistVal(greybox.PointDist(wv)))
			default:
				d := s.Vals.Clone()
				d.Normalize()
				e.setDest(q, h.Dest, DistVal(d))
			}
		}, h.OnHit},
		{pc, ArmCollide, h.Store, func(q *Path) {
			s := q.HashStores[h.Store]
			if h.Write && h.Evict {
				s.ApplyCollideEvict(wv)
				e.setDest(q, h.Dest, DistVal(greybox.PointDist(wv)))
			} else {
				d := s.Vals.Clone()
				d.Normalize()
				e.setDest(q, h.Dest, DistVal(d))
			}
		}, h.OnCollide},
	}
	return e.runArms(p, arms, pkt)
}

type grArm = struct {
	pr    float64
	arm   GreyArm
	store string
	apply func(q *Path)
	code  ir.Stmt
}

// runArms forks a path into weighted greybox arms, skipping zero-probability
// ones, and executes each arm's continuation. Each taken arm is logged on
// the path for the test generator.
func (e *Engine) runArms(p *Path, arms []grArm, pkt int) ([]*Path, error) {
	live := 0
	for _, a := range arms {
		if a.pr > 0 {
			live++
		}
	}
	var out []*Path
	used := 0
	for _, a := range arms {
		if a.pr <= 0 {
			continue
		}
		if err := e.tickBudget(len(out)); err != nil {
			return nil, err
		}
		used++
		e.Stats.GreyArms++
		q := p
		if used < live {
			q = p.Clone()
			e.countFork()
		}
		q.Grey = q.Grey.Mul(prob.FromFloat(a.pr))
		q.GreyChoices = append(q.GreyChoices, GreyChoice{Store: a.store, Arm: a.arm, Pkt: pkt})
		if a.apply != nil {
			a.apply(q)
		}
		nps, err := e.exec(q, a.code, pkt)
		if err != nil {
			return nil, err
		}
		out = append(out, nps...)
	}
	return out, nil
}

func (e *Engine) setDest(p *Path, dest string, v Value) {
	if dest != "" {
		p.Meta[dest] = v
	}
}

func (e *Engine) bloom(p *Path, name string) *greybox.BloomStore {
	if st, ok := p.Blooms[name]; ok {
		return st
	}
	decl, _ := e.Prog.Bloom(name)
	st := greybox.NewBloomStore(e.Opts.Target.ClampBloomBits(decl.Bits), decl.Hashes)
	if e.Opts.Locality > 0 {
		st.Locality = e.Opts.Locality
	}
	p.Blooms[name] = st
	return st
}

func (e *Engine) execBloomGrey(p *Path, b *ir.BloomOp, pkt int) ([]*Path, error) {
	st := e.bloom(p, b.Filter)
	hp := st.HitProb()
	arms := []grArm{
		{hp, ArmBloomHit, b.Filter, func(q *Path) {
			if b.Insert {
				q.Blooms[b.Filter].Insert()
			}
		}, b.OnHit},
		{1 - hp, ArmBloomMiss, b.Filter, func(q *Path) {
			if b.Insert {
				q.Blooms[b.Filter].Insert()
			}
		}, b.OnMiss},
	}
	return e.runArms(p, arms, pkt)
}

func (e *Engine) sketch(p *Path, name string) *greybox.SketchStore {
	if st, ok := p.Sketches[name]; ok {
		return st
	}
	decl, _ := e.Prog.Sketch(name)
	st := greybox.NewSketchStore(decl.Rows, e.Opts.Target.ClampSketchCols(decl.Cols))
	if e.Opts.Locality > 0 {
		st.Locality = e.Opts.Locality
	}
	p.Sketches[name] = st
	return st
}

func (e *Engine) execSketchUpdateGrey(p *Path, s *ir.SketchUpdate, pkt int) ([]*Path, error) {
	// Fork-free statement: the stride check is the only budget touchpoint a
	// long run of sketch updates ever hits (see Options.Deadline).
	if err := e.tickBudget(0); err != nil {
		return nil, err
	}
	st := e.sketch(p, s.Sketch)
	inc := int64(1)
	if s.Inc != nil {
		inc = int64(e.writeValue(p, s.Inc, pkt))
	}
	est := st.Update(inc)
	e.setDest(p, s.Dest, DistVal(est))
	return []*Path{p}, nil
}

func (e *Engine) execSketchBranchGrey(p *Path, s *ir.SketchBranch, pkt int) ([]*Path, error) {
	st := e.sketch(p, s.Sketch)
	est := st.EstimateDist()
	total := est.Total()
	mTrue := 0.0
	if total > 0 {
		mTrue = est.MassWhere(func(v uint64) bool { return cmpConcrete(s.Op, v, s.Threshold) }) / total
	}
	arms := []grArm{
		{mTrue, ArmSketchTrue, s.Sketch, nil, s.OnTrue},
		{1 - mTrue, ArmSketchFalse, s.Sketch, nil, s.OnFalse},
	}
	return e.runArms(p, arms, pkt)
}

// ---- plain register arrays ----

func (e *Engine) array(p *Path, name string) []Value {
	if arr, ok := p.Arrays[name]; ok {
		return arr
	}
	decl, _ := e.Prog.RegArray(name)
	size := e.Opts.Target.ClampArrayCells(decl.Size)
	arr := make([]Value, size)
	for i := range arr {
		arr[i] = ConcreteVal(0)
	}
	p.Arrays[name] = arr
	e.Stats.ArrayBytes += size * 16
	return arr
}

func (e *Engine) execArrayRead(p *Path, r *ir.ArrayRead, pkt int) {
	arr := e.array(p, r.Array)
	idx := e.evalExpr(p, r.Index, pkt)
	if idx.IsConcrete() && int(idx.C) < len(arr) {
		p.Meta[r.Dest] = arr[idx.C]
		return
	}
	// Symbolic index: the read value is unconstrained.
	p.Meta[r.Dest] = e.havoc(pkt, solver.FullInterval(32))
}

func (e *Engine) execArrayWrite(p *Path, w *ir.ArrayWrite, pkt int) {
	arr := e.array(p, w.Array)
	idx := e.evalExpr(p, w.Index, pkt)
	v := e.evalExpr(p, w.Value, pkt)
	if idx.IsConcrete() && int(idx.C) < len(arr) {
		arr[idx.C] = v
	}
	// Symbolic-index writes are dropped (documented engine limitation; the
	// program zoo indexes register arrays with concrete round-robin state).
}

// ---- match/action tables ----

func (e *Engine) execTable(p *Path, t *ir.TableApply, pkt int) ([]*Path, error) {
	tbl, ok := e.Prog.Table(t.Table)
	if !ok {
		return []*Path{p}, nil
	}
	keys := make([]Value, len(tbl.Keys))
	for i, k := range tbl.Keys {
		keys[i] = e.evalExpr(p, k, pkt)
	}

	// Entries past the target's table capacity are not installed; lookups
	// that would have hit them take the miss path instead.
	entries := tbl.Entries
	if n := e.Opts.Target.ClampTableEntries(len(entries)); n < len(entries) {
		entries = entries[:n]
	}

	matchCons := func(entry ir.Entry) ([]solver.Constraint, bool) {
		var cons []solver.Constraint
		for i, spec := range entry.Match {
			kl, ok := keys[i].Lin()
			if !ok {
				return nil, false
			}
			switch spec.Kind {
			case ir.MatchExact:
				cons = append(cons, solver.NewCmp(ir.CmpEq, kl, solver.ConstExpr(int64(spec.Lo))))
			case ir.MatchRange:
				cons = append(cons,
					solver.NewCmp(ir.CmpGe, kl, solver.ConstExpr(int64(spec.Lo))),
					solver.NewCmp(ir.CmpLe, kl, solver.ConstExpr(int64(spec.Hi))))
			case ir.MatchWildcard:
			}
		}
		return cons, true
	}

	// missWays decomposes "entry does not match" into disjoint constraint
	// alternatives: ¬(c1∧c2∧…) = ¬c1 ∨ (c1∧¬c2) ∨ (c1∧c2∧¬c3) …, where a
	// negated range itself splits into the below-range and above-range
	// sides. The disjointness keeps model counting exact.
	missWays := func(entry ir.Entry) [][]solver.Constraint {
		ways := [][]solver.Constraint{}
		var held []solver.Constraint
		for i, spec := range entry.Match {
			kl, ok := keys[i].Lin()
			if !ok {
				continue
			}
			switch spec.Kind {
			case ir.MatchExact:
				way := append(append([]solver.Constraint{}, held...),
					solver.NewCmp(ir.CmpNe, kl, solver.ConstExpr(int64(spec.Lo))))
				ways = append(ways, way)
				held = append(held, solver.NewCmp(ir.CmpEq, kl, solver.ConstExpr(int64(spec.Lo))))
			case ir.MatchRange:
				below := append(append([]solver.Constraint{}, held...),
					solver.NewCmp(ir.CmpLt, kl, solver.ConstExpr(int64(spec.Lo))))
				above := append(append([]solver.Constraint{}, held...),
					solver.NewCmp(ir.CmpGt, kl, solver.ConstExpr(int64(spec.Hi))))
				ways = append(ways, below, above)
				held = append(held,
					solver.NewCmp(ir.CmpGe, kl, solver.ConstExpr(int64(spec.Lo))),
					solver.NewCmp(ir.CmpLe, kl, solver.ConstExpr(int64(spec.Hi))))
			case ir.MatchWildcard:
				// Always matches: contributes no miss way.
			}
		}
		return ways
	}

	const missPathCap = 256

	keyLins := make([]solver.LinExpr, 0, len(keys))
	keyLinOK := true
	for _, k := range keys {
		if l, ok := k.Lin(); ok {
			keyLins = append(keyLins, l)
		} else {
			keyLinOK = false
		}
	}

	var out []*Path
	for i := range entries {
		cons, ok := matchCons(entries[i])
		if !ok {
			continue
		}
		q := p.Clone()
		e.countFork()
		q.PC = append(q.PC, cons...)
		// Entries are declared disjoint across the zoo; overlapping tables
		// would need prior-entry miss chaining here as well.
		if !e.Opts.NoFeasibilityCheck {
			e.Stats.FeasibilityChk++
			if !e.timedFeasible(q.PC) {
				q = nil
			}
		}
		if q != nil {
			nps, err := e.exec(q, entries[i].Action, pkt)
			if err != nil {
				return nil, err
			}
			out = append(out, nps...)
		}
	}

	// Symbolic (unknown installed) entries: each matches an unconstrained
	// persistent key value — the §6 symbolic-entry extension. The entry
	// variables are shared across packets, so repeated lookups of the same
	// flow correlate.
	var symEntryNeg []solver.Constraint
	if tbl.SymbolicEntries > 0 && keyLinOK && tbl.SymbolicAction != nil {
		entryVars := e.tableEntryVars(tbl, len(keyLins))
		for i := 0; i < tbl.SymbolicEntries; i++ {
			q := p.Clone()
			e.countFork()
			for j, kl := range keyLins {
				q.PC = append(q.PC, solver.NewCmp(ir.CmpEq, kl, solver.VarExpr(entryVars[i][j])))
			}
			if e.feasible(q) {
				nps, err := e.exec(q, tbl.SymbolicAction, pkt)
				if err != nil {
					return nil, err
				}
				out = append(out, nps...)
			}
			if len(keyLins) > 0 {
				symEntryNeg = append(symEntryNeg,
					solver.NewCmp(ir.CmpNe, keyLins[0], solver.VarExpr(entryVars[i][0])))
			}
		}
	}

	// Default: miss every entry — fold the disjoint miss ways entry by
	// entry, pruning infeasible combinations eagerly.
	defaults := []*Path{p}
	for i := range entries {
		ways := missWays(entries[i])
		if len(ways) == 0 {
			continue
		}
		var next []*Path
		for _, dp := range defaults {
			for wi, way := range ways {
				q := dp
				if wi < len(ways)-1 {
					q = dp.Clone()
					e.countFork()
				}
				q.PC = append(q.PC, way...)
				if !e.Opts.NoFeasibilityCheck {
					e.Stats.FeasibilityChk++
					if !e.timedFeasible(q.PC) {
						continue
					}
				}
				next = append(next, q)
			}
		}
		defaults = next
		if len(defaults) > missPathCap {
			// Keep the first cap paths: counting becomes a slight
			// underestimate for pathological tables (documented).
			defaults = defaults[:missPathCap]
		}
		if len(defaults) == 0 {
			break
		}
	}
	for _, dp := range defaults {
		// Also miss every symbolic entry (first-key approximation, as for
		// concrete multi-key entries).
		dp.PC = append(dp.PC, symEntryNeg...)
		if len(symEntryNeg) > 0 && !e.feasible(dp) {
			continue
		}
		nps, err := e.exec(dp, tbl.Default, pkt)
		if err != nil {
			return nil, err
		}
		out = append(out, nps...)
	}
	return out, nil
}

// tableEntryVars lazily creates the persistent key variables of a table's
// symbolic entries. Domains follow the key fields' widths where the keys
// are plain field references. The registry is shared across worker views
// behind a mutex; the variable names depend only on the table, so the set
// is the same regardless of which worker populates it first.
func (e *Engine) tableEntryVars(tbl *ir.TableDecl, numKeys int) [][]solver.Var {
	e.tbl.mu.Lock()
	defer e.tbl.mu.Unlock()
	if vs, ok := e.tbl.m[tbl.Name]; ok {
		return vs
	}
	vs := make([][]solver.Var, tbl.SymbolicEntries)
	for i := range vs {
		vs[i] = make([]solver.Var, numKeys)
		for j := 0; j < numKeys; j++ {
			v := solver.Var{Pkt: -1, Field: fmt.Sprintf("__tbl_%s_e%d_k%d", tbl.Name, i, j)}
			dom := solver.FullInterval(32)
			if j < len(tbl.Keys) {
				if fr, ok := tbl.Keys[j].(ir.FieldRef); ok {
					if f, ok2 := e.Prog.Field(fr.Name); ok2 {
						dom = solver.FullInterval(f.Bits)
					}
				}
			}
			e.Space.SetDomain(v, dom)
			vs[i][j] = v
		}
	}
	e.tbl.m[tbl.Name] = vs
	return vs
}
