package sym

import (
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/prob"
	"repro/internal/testutil"
)

func almostEq(a, b, tol float64) bool { return testutil.ApproxEqual(a, b, tol, 0) }

// tcpUDP is the canonical two-way branch program: count TCP vs UDP.
func tcpUDP(t *testing.T) *ir.Program {
	t.Helper()
	p := &ir.Program{
		Name: "tcp-udp",
		Regs: []ir.RegDecl{{Name: "tcp_cnt", Bits: 32}, {Name: "udp_cnt", Bits: 32}},
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoTCP)),
				ir.Blk("tcp", ir.Add1("tcp_cnt"), ir.Fwd(1)),
				ir.Blk("udp", ir.Add1("udp_cnt"), ir.Fwd(2))),
		),
	}
	return p.MustBuild()
}

func TestStatelessBranchProbabilities(t *testing.T) {
	prog := tcpUDP(t)
	e := NewEngine(prog, Options{Greybox: true})
	paths, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("want 2 paths, got %d", len(paths))
	}
	counter := mc.NewCounter(e.Space, nil)
	probs := NodeProbs(paths, counter, len(prog.Nodes()))
	tcp := prog.NodeByLabel("tcp")
	udp := prog.NodeByLabel("udp")
	// Uniform 8-bit proto: P(proto==6) = 1/256.
	if !almostEq(probs[tcp.ID].Float(), 1.0/256, 1e-9) {
		t.Fatalf("P(tcp) = %v", probs[tcp.ID].Float())
	}
	if !almostEq(probs[udp.ID].Float(), 255.0/256, 1e-9) {
		t.Fatalf("P(udp) = %v", probs[udp.ID].Float())
	}
	// Entry node probability is 1.
	if !almostEq(probs[0].Float(), 1, 1e-9) {
		t.Fatalf("P(entry) = %v", probs[0].Float())
	}
}

func TestStatefulForkGrowthAndMerge(t *testing.T) {
	prog := tcpUDP(t)
	e := NewEngine(prog, Options{Greybox: true})
	counter := mc.NewCounter(e.Space, nil)

	// Without merging: 2^t paths.
	paths := e.Initial()
	var err error
	for i := 0; i < 5; i++ {
		paths, err = e.Step(paths, i)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(paths) != 32 {
		t.Fatalf("unmerged paths = %d, want 32", len(paths))
	}

	// With merging: states are (tcp_cnt, udp_cnt) with cnt sums = t,
	// i.e. t+1 states.
	e2 := NewEngine(prog, Options{Greybox: true, Merge: true})
	c2 := mc.NewCounter(e2.Space, nil)
	paths = e2.Initial()
	for i := 0; i < 5; i++ {
		paths, err = e2.Step(paths, i)
		if err != nil {
			t.Fatal(err)
		}
		paths = Merge(paths, c2)
	}
	if len(paths) != 6 {
		t.Fatalf("merged paths = %d, want 6", len(paths))
	}
	// Total probability conserved.
	total := prob.Zero()
	for _, p := range paths {
		total = total.Add(PathProb(p, c2))
	}
	if !almostEq(total.Float(), 1, 1e-6) {
		t.Fatalf("total mass after merge = %v", total.Float())
	}
	_ = counter
}

func TestGuardedDeepBlock(t *testing.T) {
	// Sample to CPU once the TCP counter reaches 3.
	p := &ir.Program{
		Name: "deep",
		Regs: []ir.RegDecl{{Name: "cnt", Bits: 32}},
		Root: ir.Body(
			ir.If1(ir.Eq(ir.F("proto"), ir.C(ir.ProtoTCP)), ir.Blk("count", ir.Add1("cnt"))),
			ir.If2(ir.Ge(ir.R("cnt"), ir.C(3)),
				ir.Blk("cpu", ir.ToCPU(), ir.Set("cnt", ir.C(0))),
				ir.Blk("fwd", ir.Fwd(1))),
		),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: true, Merge: true})
	counter := mc.NewCounter(e.Space, nil)
	paths := e.Initial()
	var err error
	var lastProbs []prob.P
	for i := 0; i < 3; i++ {
		paths, err = e.Step(paths, i)
		if err != nil {
			t.Fatal(err)
		}
		lastProbs = NodeProbs(paths, counter, len(prog.Nodes()))
		paths = Merge(paths, counter)
	}
	cpu := prog.NodeByLabel("cpu")
	// P(cpu at packet 3) = P(all three packets TCP) = (1/256)^3.
	want := math.Pow(1.0/256, 3)
	if !almostEq(lastProbs[cpu.ID].Float(), want, want*1e-6) {
		t.Fatalf("P(cpu) = %v, want %v", lastProbs[cpu.ID].Float(), want)
	}
}

func TestMaskedFlagCondition(t *testing.T) {
	p := &ir.Program{
		Name: "syn",
		Root: ir.Body(
			ir.If2(ir.FlagSet(ir.FlagSYN),
				ir.Blk("syn", ir.ToCPU()),
				ir.Blk("other", ir.Fwd(1))),
		),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: true})
	paths, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	counter := mc.NewCounter(e.Space, nil)
	probs := NodeProbs(paths, counter, len(prog.Nodes()))
	syn := prog.NodeByLabel("syn")
	// Uniform flags: P(bit set) = 1/2.
	if !almostEq(probs[syn.ID].Float(), 0.5, 1e-9) {
		t.Fatalf("P(syn) = %v, want 0.5", probs[syn.ID].Float())
	}
}

func TestCrossPacketRetransConstraint(t *testing.T) {
	// Blink-style: remember last seq, flag a retransmission.
	p := &ir.Program{
		Name: "retrans",
		Regs: []ir.RegDecl{{Name: "last_seq", Bits: 32}, {Name: "seen", Bits: 1}},
		Root: ir.Body(
			ir.If2(ir.And(ir.Eq(ir.R("seen"), ir.C(1)), ir.Eq(ir.F("seq"), ir.R("last_seq"))),
				ir.Blk("retrans", ir.ToCPU()),
				ir.Blk("normal", ir.Fwd(1))),
			ir.Set("last_seq", ir.F("seq")),
			ir.Set("seen", ir.C(1)),
		),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: true})
	paths, err := e.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	counter := mc.NewCounter(e.Space, nil)
	probs := NodeProbs(paths, counter, len(prog.Nodes()))
	re := prog.NodeByLabel("retrans")
	// P(p1.seq == p0.seq) uniform 32-bit = 2^-32.
	want := 1.0 / math.Pow(2, 32)
	if !almostEq(probs[re.ID].Float(), want, want*1e-6) {
		t.Fatalf("P(retrans) = %v, want %v", probs[re.ID].Float(), want)
	}
	// These paths carry symbolic register state and must not merge.
	mergeCount := 0
	for _, q := range paths {
		if q.StateMergeable() {
			mergeCount++
		}
	}
	if mergeCount == len(paths) {
		t.Fatal("retrans paths should carry symbolic state")
	}
}

func TestHashGreyboxForks(t *testing.T) {
	p := &ir.Program{
		Name:       "ht",
		HashTables: []ir.HashTableDecl{{Name: "flows", Size: 1024}},
		Root: ir.Body(
			&ir.HashAccess{
				Store: "flows", Key: ir.FlowKey(), Write: true, Inc: true,
				Value:     ir.C(1),
				OnEmpty:   ir.Blk("new_flow", ir.Fwd(1)),
				OnHit:     ir.Blk("seen_flow", ir.Fwd(1)),
				OnCollide: ir.Blk("collision", ir.Recirc()),
			},
		),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: true})
	paths, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Empty table: only the new_flow arm is possible.
	if len(paths) != 1 {
		t.Fatalf("first packet should have 1 arm, got %d", len(paths))
	}
	paths, err = e.Step(paths, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Second packet: empty/hit/collide all possible.
	if len(paths) != 3 {
		t.Fatalf("second packet should fork 3 arms, got %d", len(paths))
	}
	counter := mc.NewCounter(e.Space, nil)
	total := prob.Zero()
	for _, q := range paths {
		total = total.Add(PathProb(q, counter))
	}
	if !almostEq(total.Float(), 1, 1e-9) {
		t.Fatalf("greybox fork mass = %v", total.Float())
	}
}

func TestBaselineHashForksGrow(t *testing.T) {
	p := &ir.Program{
		Name:       "ht",
		HashTables: []ir.HashTableDecl{{Name: "flows", Size: 64}},
		Root: ir.Body(
			&ir.HashAccess{
				Store: "flows", Key: ir.FlowKey(), Write: true,
				Value:     ir.C(1),
				OnEmpty:   ir.Blk("new_flow", ir.Fwd(1)),
				OnHit:     ir.Blk("seen_flow", ir.Fwd(1)),
				OnCollide: ir.Blk("collision", ir.Recirc()),
			},
		),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: false})
	paths := e.Initial()
	var err error
	counts := []int{}
	for i := 0; i < 3; i++ {
		paths, err = e.Step(paths, i)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(paths))
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Fatalf("baseline path counts should grow: %v", counts)
	}
	if e.Stats.ArrayBytes == 0 {
		t.Fatal("baseline should account array state bytes")
	}
}

func TestBaselineBudgetExceeded(t *testing.T) {
	p := &ir.Program{
		Name:       "ht",
		HashTables: []ir.HashTableDecl{{Name: "flows", Size: 64}},
		Root: ir.Body(
			&ir.HashAccess{
				Store: "flows", Key: ir.FlowKey(), Write: true,
				OnEmpty:   ir.Blk("e", ir.Fwd(1)),
				OnHit:     ir.Blk("h", ir.Fwd(1)),
				OnCollide: ir.Blk("c", ir.Fwd(1)),
			},
		),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: false, MaxPaths: 10})
	paths := e.Initial()
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		paths, err = e.Step(paths, i)
	}
	if err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestBloomGreybox(t *testing.T) {
	p := &ir.Program{
		Name:   "bf",
		Blooms: []ir.BloomDecl{{Name: "seen", Bits: 1024, Hashes: 3}},
		Root: ir.Body(
			&ir.BloomOp{
				Filter: "seen", Key: ir.FlowKey(), Insert: true,
				OnHit:  ir.Blk("hit", ir.Fwd(1)),
				OnMiss: ir.Blk("miss", ir.ToCPU()),
			},
		),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: true})
	paths, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Empty filter: only the miss arm.
	if len(paths) != 1 {
		t.Fatalf("want 1 arm on empty filter, got %d", len(paths))
	}
	paths, err = e.Step(paths, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("want hit+miss after one insert, got %d", len(paths))
	}
}

func TestSketchGreyboxModBranch(t *testing.T) {
	p := &ir.Program{
		Name:     "cms",
		Sketches: []ir.SketchDecl{{Name: "cnt", Rows: 3, Cols: 1024}},
		Root: ir.Body(
			&ir.SketchUpdate{Sketch: "cnt", Key: ir.FlowKey(), Inc: ir.C(1), Dest: "est"},
			ir.If2(ir.Eq(ir.Mod(ir.M("est"), ir.C(4)), ir.C(0)),
				ir.Blk("mirror", ir.Mirror(9)),
				ir.Blk("fwd", ir.Fwd(1))),
		),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: true})
	counter := mc.NewCounter(e.Space, nil)
	paths := e.Initial()
	var err error
	total := prob.Zero()
	for i := 0; i < 4; i++ {
		paths, err = e.Step(paths, i)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range paths {
		total = total.Add(PathProb(q, counter))
	}
	if !almostEq(total.Float(), 1, 1e-6) {
		t.Fatalf("sketch branch mass = %v", total.Float())
	}
}

func TestTableApply(t *testing.T) {
	p := &ir.Program{
		Name: "acl",
		Tables: []ir.TableDecl{{
			Name: "acl",
			Keys: []ir.Expr{ir.F("dst_port")},
			Entries: []ir.Entry{
				{Match: []ir.MatchSpec{ir.Exact(22)}, Action: ir.Blk("ssh", ir.Drop())},
				{Match: []ir.MatchSpec{ir.Exact(80)}, Action: ir.Blk("http", ir.Fwd(1))},
			},
			Default: ir.Blk("miss", ir.ToCPU()),
		}},
		Root: ir.Body(&ir.TableApply{Table: "acl"}),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: true})
	paths, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("want 3 table paths, got %d", len(paths))
	}
	counter := mc.NewCounter(e.Space, nil)
	probs := NodeProbs(paths, counter, len(prog.Nodes()))
	ssh := prog.NodeByLabel("ssh")
	miss := prog.NodeByLabel("miss")
	if !almostEq(probs[ssh.ID].Float(), 1.0/65536, 1e-12) {
		t.Fatalf("P(ssh) = %v", probs[ssh.ID].Float())
	}
	if !almostEq(probs[miss.ID].Float(), 65534.0/65536, 1e-9) {
		t.Fatalf("P(miss) = %v", probs[miss.ID].Float())
	}
}

func TestDropOptimization(t *testing.T) {
	p := &ir.Program{
		Name: "dropper",
		Root: ir.Body(
			ir.If1(ir.Lt(ir.F("ttl"), ir.C(2)), ir.Blk("expired", ir.Drop())),
			ir.Blk("after", ir.Fwd(1)),
		),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: true, DropOptimization: true})
	paths, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	after := prog.NodeByLabel("after")
	for _, q := range paths {
		dropped := false
		for _, a := range q.Actions {
			if a.Kind == ir.ActDrop {
				dropped = true
			}
		}
		if dropped && q.Visits[after.ID] {
			t.Fatal("drop optimization should halt the packet's processing")
		}
	}
}

func TestArrayReadWrite(t *testing.T) {
	p := &ir.Program{
		Name:      "arr",
		Regs:      []ir.RegDecl{{Name: "rr", Bits: 8}},
		RegArrays: []ir.RegArrayDecl{{Name: "paths", Size: 4, Bits: 32}},
		Root: ir.Body(
			&ir.ArrayWrite{Array: "paths", Index: ir.R("rr"), Value: ir.C(7)},
			&ir.ArrayRead{Array: "paths", Index: ir.R("rr"), Dest: "v"},
			ir.If2(ir.Eq(ir.M("v"), ir.C(7)),
				ir.Blk("ok", ir.Fwd(1)),
				ir.Blk("bad", ir.Drop())),
			ir.Set("rr", ir.Mod(ir.Add(ir.R("rr"), ir.C(1)), ir.C(4))),
		),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: true})
	paths, err := e.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("deterministic array program should have 1 path, got %d", len(paths))
	}
	bad := prog.NodeByLabel("bad")
	if paths[0].AllVisits[bad.ID] > 0 {
		t.Fatal("read-after-write should see the written value")
	}
}

func TestVisitsResetPerPacket(t *testing.T) {
	prog := tcpUDP(t)
	e := NewEngine(prog, Options{Greybox: true})
	paths, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	p0 := paths[0]
	v1 := len(p0.Visits)
	paths, err = e.Step(paths, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths[0].Visits) == 0 || len(paths[0].Visits) > v1+1 {
		t.Fatalf("visits should track only the current packet: %d", len(paths[0].Visits))
	}
	if paths[0].AllVisits[0] != 2 {
		t.Fatalf("entry should have 2 cumulative visits, got %d", paths[0].AllVisits[0])
	}
}

func TestTableDefaultProbabilityExact(t *testing.T) {
	// Multi-key entries: the default path's disjoint miss-way
	// decomposition must count exactly 1 - sum(entry probabilities).
	p := &ir.Program{
		Name: "acl2",
		Tables: []ir.TableDecl{{
			Name: "acl",
			Keys: []ir.Expr{ir.F("dst_port"), ir.F("proto")},
			Entries: []ir.Entry{
				{Match: []ir.MatchSpec{ir.Exact(22), ir.Exact(6)}, Action: ir.Blk("e0", ir.Drop())},
				{Match: []ir.MatchSpec{ir.Range(80, 89), ir.Exact(6)}, Action: ir.Blk("e1", ir.Fwd(1))},
			},
			Default:  ir.Blk("miss", ir.ToCPU()),
			Disjoint: true,
		}},
		Root: ir.Body(&ir.TableApply{Table: "acl"}),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: true})
	paths, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	counter := mc.NewCounter(e.Space, nil)
	probs := NodeProbs(paths, counter, len(prog.Nodes()))
	miss := prog.NodeByLabel("miss")
	pe0 := 1.0 / 65536 * (1.0 / 256)
	pe1 := 10.0 / 65536 * (1.0 / 256)
	want := 1 - pe0 - pe1
	if math.Abs(probs[miss.ID].Float()-want) > 1e-9 {
		t.Fatalf("P(miss) = %v, want %v", probs[miss.ID].Float(), want)
	}
	// Total probability over all terminal arms is 1.
	total := prob.Zero()
	for _, q := range paths {
		total = total.Add(PathProb(q, counter))
	}
	if math.Abs(total.Float()-1) > 1e-9 {
		t.Fatalf("table paths total %v", total.Float())
	}
}

func TestMergeConservesProbability(t *testing.T) {
	// Property: merging never changes the total probability mass.
	prog := tcpUDP(t)
	e := NewEngine(prog, Options{Greybox: true})
	counter := mc.NewCounter(e.Space, nil)
	paths := e.Initial()
	var err error
	for i := 0; i < 6; i++ {
		paths, err = e.Step(paths, i)
		if err != nil {
			t.Fatal(err)
		}
		before := prob.Zero()
		for _, q := range paths {
			before = before.Add(PathProb(q, counter))
		}
		paths = Merge(paths, counter)
		after := prob.Zero()
		for _, q := range paths {
			after = after.Add(PathProb(q, counter))
		}
		if math.Abs(before.Float()-after.Float()) > 1e-9 {
			t.Fatalf("iteration %d: merge changed mass %v -> %v", i, before.Float(), after.Float())
		}
	}
}

func TestConcretePacketLayouts(t *testing.T) {
	// The Vera technique ported in §A.2: pinning a packet layout cuts the
	// branch product of multi-protocol pipelines.
	prog := tcpUDP(t)
	free := NewEngine(prog, Options{Greybox: true})
	pf, err := free.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	pinned := NewEngine(prog, Options{Greybox: true, Layout: map[string]uint64{"proto": ir.ProtoTCP}})
	pp, err := pinned.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf) != 8 {
		t.Fatalf("free layout paths = %d, want 8", len(pf))
	}
	if len(pp) != 1 {
		t.Fatalf("pinned layout paths = %d, want 1", len(pp))
	}
	// The pinned path is the all-TCP one.
	counter := mc.NewCounter(pinned.Space, nil)
	tcp := prog.NodeByLabel("tcp")
	if !pp[0].Visits[tcp.ID] {
		t.Fatal("pinned path should take the TCP branch")
	}
	pr := PathProb(pp[0], counter)
	want := math.Pow(1.0/256, 3)
	if math.Abs(pr.Float()-want) > want*1e-6 {
		t.Fatalf("pinned path prob = %v, want %v", pr.Float(), want)
	}
}

func TestLayoutInfeasiblePinned(t *testing.T) {
	// A layout conflicting with a program invariant produces no paths
	// beyond the infeasible prune.
	p := &ir.Program{
		Name: "only-tcp",
		Root: ir.Body(
			ir.If2(ir.Eq(ir.F("proto"), ir.C(ir.ProtoTCP)),
				ir.Blk("tcp", ir.Fwd(1)),
				ir.Blk("rest", ir.Drop())),
		),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: true, Layout: map[string]uint64{"proto": ir.ProtoUDP}})
	paths, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	if !paths[0].Visits[prog.NodeByLabel("rest").ID] {
		t.Fatal("UDP layout must take the non-TCP branch")
	}
}

func TestSymbolicTableEntries(t *testing.T) {
	// The §6 extension: unknown installed entries become symbolic. A NAT
	// with 3 unknown mappings: matching one forwards; missing all punts.
	p := &ir.Program{
		Name: "symnat",
		Tables: []ir.TableDecl{{
			Name:            "nat",
			Keys:            []ir.Expr{ir.F("src_port")},
			Default:         ir.Blk("nat_miss", ir.ToCPU()),
			SymbolicEntries: 3,
			SymbolicAction:  ir.Blk("nat_hit", ir.Fwd(1)),
		}},
		Root: ir.Body(&ir.TableApply{Table: "nat"}),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: true})
	paths, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 symbolic-entry paths + 1 default.
	if len(paths) != 4 {
		t.Fatalf("paths = %d, want 4", len(paths))
	}
	counter := mc.NewCounter(e.Space, nil)
	probs := NodeProbs(paths, counter, len(prog.Nodes()))
	hit := prog.NodeByLabel("nat_hit")
	// Each unknown entry matches a uniform random key with prob 1/65536.
	want := 3.0 / 65536
	if math.Abs(probs[hit.ID].Float()-want) > 1e-7 {
		t.Fatalf("P(hit) = %v, want %v", probs[hit.ID].Float(), want)
	}
	miss := prog.NodeByLabel("nat_miss")
	if math.Abs(probs[miss.ID].Float()-(1-want)) > 1e-4 {
		t.Fatalf("P(miss) = %v, want %v", probs[miss.ID].Float(), 1-want)
	}
}

func TestSymbolicEntriesPersistAcrossPackets(t *testing.T) {
	// The same symbolic entry matched by two packets forces equal keys —
	// the persistent-entry semantics.
	p := &ir.Program{
		Name: "symnat2",
		Tables: []ir.TableDecl{{
			Name:            "nat",
			Keys:            []ir.Expr{ir.F("src_port")},
			Default:         ir.Blk("miss", ir.Drop()),
			SymbolicEntries: 1,
			SymbolicAction:  ir.Blk("hit", ir.Fwd(1)),
		}},
		Root: ir.Body(&ir.TableApply{Table: "nat"}),
	}
	prog := p.MustBuild()
	e := NewEngine(prog, Options{Greybox: true})
	paths, err := e.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	counter := mc.NewCounter(e.Space, nil)
	// Find the hit-hit path: both packets matched the same unknown entry,
	// so P = P(p0.src_port == E) * P(p1.src_port == E) with E shared:
	// sum over E of (1/65536)^2 * 65536 = 1/65536... but conditioned per
	// path the mass is 65536 * (1/65536)^3 — exactly 1/65536^2.
	hit := prog.NodeByLabel("hit")
	var hitHit *Path
	for _, q := range paths {
		if q.AllVisits[hit.ID] == 2 {
			hitHit = q
		}
	}
	if hitHit == nil {
		t.Fatal("no hit-hit path")
	}
	pr := PathProb(hitHit, counter)
	want := 1.0 / (65536.0 * 65536.0)
	if pr.Float() < want/10 || pr.Float() > want*10 {
		t.Fatalf("P(hit,hit) = %v, want ≈ %v", pr.Float(), want)
	}
}
