package sym

import (
	"sync/atomic"
	"time"
)

// HotStats accumulates per-CFG-block exploration cost: how often each block
// was entered, how many path forks it spawned, and how much solver wall
// time its feasibility checks consumed. Slices are indexed by the dense
// block ID and written with atomics, so one HotStats is shared by every
// worker view of an engine without locks; visit and fork counts are
// deterministic for a fixed seed at any worker count (solver nanoseconds
// are wall time and vary run to run).
//
// A nil *HotStats is a no-op, and out-of-range IDs (the pseudo-block -1
// used before any block is entered) are ignored.
type HotStats struct {
	visits []atomic.Int64
	forks  []atomic.Int64
	solver []atomic.Int64 // nanoseconds
}

// NewHotStats sizes accumulators for n CFG blocks.
func NewHotStats(n int) *HotStats {
	return &HotStats{
		visits: make([]atomic.Int64, n),
		forks:  make([]atomic.Int64, n),
		solver: make([]atomic.Int64, n),
	}
}

// Visit counts one entry into block id.
func (h *HotStats) Visit(id int) {
	if h == nil || id < 0 || id >= len(h.visits) {
		return
	}
	h.visits[id].Add(1)
}

// Fork counts one path fork attributed to block id.
func (h *HotStats) Fork(id int) {
	if h == nil || id < 0 || id >= len(h.forks) {
		return
	}
	h.forks[id].Add(1)
}

// AddSolver attributes solver wall time to block id.
func (h *HotStats) AddSolver(id int, d time.Duration) {
	if h == nil || id < 0 || id >= len(h.solver) {
		return
	}
	h.solver[id].Add(int64(d))
}

// HotBlock is one block's accumulated exploration cost.
type HotBlock struct {
	ID       int
	Visits   int64
	Forks    int64
	SolverNS int64
}

// Snapshot returns every block with nonzero accumulated cost, in ID order.
func (h *HotStats) Snapshot() []HotBlock {
	if h == nil {
		return nil
	}
	var out []HotBlock
	for id := range h.visits {
		b := HotBlock{
			ID:       id,
			Visits:   h.visits[id].Load(),
			Forks:    h.forks[id].Load(),
			SolverNS: h.solver[id].Load(),
		}
		if b.Visits != 0 || b.Forks != 0 || b.SolverNS != 0 {
			out = append(out, b)
		}
	}
	return out
}
