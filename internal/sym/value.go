// Package sym implements the symbolic execution engine P4wn builds on: it
// interprets IR programs over a sequence of symbolic packets, forking one
// path per branch outcome, accumulating path constraints over header-field
// variables, and (in greybox mode) folding approximate data structures into
// probabilistic data stores whose accesses fork a constant number of paths.
//
// The engine has two personalities:
//
//   - P4wn mode (Options.Greybox true, Options.Merge true): approximate
//     structures use internal/greybox, and paths whose persistent state is
//     fully concrete are coalesced between packets, folding their path
//     condition probability into a scalar. This is what keeps stateful
//     exploration polynomial.
//
//   - Baseline mode (Greybox false, Merge false): a KLEE-like exhaustive
//     search. Hash tables, Bloom filters and sketches are materialized as
//     symbolic arrays whose accesses fork per known slot, and whose state
//     must be cloned on every fork — cost that grows with the structure
//     size, reproducing the baseline scaling walls of paper Figure 6.
package sym

import (
	"fmt"

	"repro/internal/greybox"
	"repro/internal/solver"
)

// ValueKind discriminates Value representations.
type ValueKind int

const (
	// VConcrete is a known constant.
	VConcrete ValueKind = iota
	// VLin is a linear symbolic expression over packet-field variables.
	VLin
	// VDist is a value known only as a probability distribution — the
	// result of reading a greybox data store (e.g. a flow counter).
	VDist
)

// Value is the symbolic engine's runtime value.
type Value struct {
	Kind ValueKind
	C    uint64
	E    solver.LinExpr
	D    *greybox.ValueDist
}

// ConcreteVal wraps a constant.
func ConcreteVal(v uint64) Value { return Value{Kind: VConcrete, C: v} }

// LinVal wraps a linear expression (collapsing constants).
func LinVal(e solver.LinExpr) Value {
	if e.IsConst() {
		k := e.K
		if k < 0 {
			k = 0
		}
		return ConcreteVal(uint64(k))
	}
	return Value{Kind: VLin, E: e}
}

// DistVal wraps a value distribution.
func DistVal(d *greybox.ValueDist) Value { return Value{Kind: VDist, D: d} }

// IsConcrete reports whether the value is a known constant.
func (v Value) IsConcrete() bool { return v.Kind == VConcrete }

// Lin returns the value as a linear expression (concrete values become
// constants); ok is false for distribution values.
func (v Value) Lin() (solver.LinExpr, bool) {
	switch v.Kind {
	case VConcrete:
		return solver.ConstExpr(int64(v.C)), true
	case VLin:
		return v.E, true
	}
	return solver.LinExpr{}, false
}

func (v Value) String() string {
	switch v.Kind {
	case VConcrete:
		return fmt.Sprintf("%d", v.C)
	case VLin:
		return v.E.String()
	case VDist:
		return v.D.String()
	}
	return "?"
}

// stateKey renders the value canonically for path merging; only values that
// are state-equal produce equal keys.
func (v Value) stateKey() string {
	switch v.Kind {
	case VConcrete:
		return fmt.Sprintf("c%d", v.C)
	case VLin:
		return "e" + v.E.String()
	case VDist:
		return "d" + v.D.Key()
	}
	return "?"
}

// mergeable reports whether a path holding this value in persistent state
// may be coalesced with an identically-keyed path: linear expressions
// reference past packet fields whose constraints would be lost.
func (v Value) mergeable() bool { return v.Kind != VLin }
