package sym

import (
	"sync"
	"testing"
	"time"
)

func TestHotStatsNilAndBounds(t *testing.T) {
	var h *HotStats
	h.Visit(0) // all no-ops, must not panic
	h.Fork(3)
	h.AddSolver(1, time.Millisecond)
	if got := h.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v, want nil", got)
	}

	hs := NewHotStats(4)
	hs.Visit(-1) // outside [0, n): ignored
	hs.Visit(4)
	hs.Fork(-1)
	hs.AddSolver(99, time.Second)
	if got := hs.Snapshot(); len(got) != 0 {
		t.Fatalf("out-of-range updates recorded: %v", got)
	}
}

func TestHotStatsSnapshot(t *testing.T) {
	hs := NewHotStats(8)
	hs.Visit(5)
	hs.Visit(5)
	hs.Fork(5)
	hs.AddSolver(5, 250*time.Microsecond)
	hs.Visit(2)

	got := hs.Snapshot()
	if len(got) != 2 {
		t.Fatalf("snapshot has %d blocks, want 2 (zero blocks omitted)", len(got))
	}
	// ID order, not magnitude order: ranking happens at report time.
	if got[0].ID != 2 || got[1].ID != 5 {
		t.Fatalf("snapshot not in ID order: %v", got)
	}
	if got[1].Visits != 2 || got[1].Forks != 1 || got[1].SolverNS != 250_000 {
		t.Fatalf("block 5 = %+v", got[1])
	}
}

// The accumulators are shared by engine worker views; concurrent updates
// must not lose counts (run under -race in CI).
func TestHotStatsConcurrent(t *testing.T) {
	hs := NewHotStats(2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				hs.Visit(1)
				hs.Fork(1)
				hs.AddSolver(1, time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	got := hs.Snapshot()
	if len(got) != 1 || got[0].Visits != 8000 || got[0].Forks != 8000 || got[0].SolverNS != 8000 {
		t.Fatalf("lost updates: %+v", got)
	}
}
