package sym

import (
	"testing"
	"time"

	"repro/internal/ir"
)

// sketchLoopProg is a fork-free program: a straight-line run of greybox
// sketch updates with no branches, so exploration never forks and the only
// mid-step budget checks are the per-statement one in execBlock and the
// stride-based tickBudget inside the store-update loop.
func sketchLoopProg(t testing.TB, updates int) *ir.Program {
	t.Helper()
	stmts := make([]ir.Stmt, 0, updates+1)
	for i := 0; i < updates; i++ {
		stmts = append(stmts,
			&ir.SketchUpdate{Sketch: "cnt", Key: ir.FlowKey(), Inc: ir.C(1), Dest: "est"})
	}
	stmts = append(stmts, ir.Fwd(1))
	p := &ir.Program{
		Name:     "sketch_loop",
		Sketches: []ir.SketchDecl{{Name: "cnt", Rows: 3, Cols: 1024}},
		Root:     ir.Body(stmts...),
	}
	return p.MustBuild()
}

// TestDeadlineStrideInSketchUpdates pins the stride mechanism itself: greybox
// sketch updates executed outside any enclosing block (so execBlock's
// per-statement check never runs) must still notice an expired deadline via
// tickBudget, on exactly the 64th update.
func TestDeadlineStrideInSketchUpdates(t *testing.T) {
	prog := sketchLoopProg(t, 1)
	e := NewEngine(prog, Options{
		Greybox:  true,
		Deadline: time.Now().Add(-time.Second),
	})
	p := e.Initial()[0]
	p.resetPacket()
	e.pinLayout(p, 0)
	upd := &ir.SketchUpdate{Sketch: "cnt", Key: ir.FlowKey(), Inc: ir.C(1), Dest: "est"}
	var err error
	calls := 0
	for i := 0; i < 200 && err == nil; i++ {
		_, err = e.exec(p, upd, 0)
		calls++
	}
	if err != ErrBudget {
		t.Fatalf("expected ErrBudget from stride check, got %v after %d updates", err, calls)
	}
	if calls != 64 {
		t.Fatalf("stride check fired after %d updates, want 64", calls)
	}
}

// TestDeadlineInsideForkFreeStep: the public-API view — a Step over a
// fork-free looping program with an already-expired deadline returns
// ErrBudget instead of running the whole packet to completion.
func TestDeadlineInsideForkFreeStep(t *testing.T) {
	prog := sketchLoopProg(t, 200)
	e := NewEngine(prog, Options{
		Greybox:  true,
		Deadline: time.Now().Add(-time.Second),
	})
	if _, err := e.Step(e.Initial(), 0); err != ErrBudget {
		t.Fatalf("expected ErrBudget from Step, got %v", err)
	}
}

// TestForkFreeStepCompletesWithoutDeadline is the control: the same program
// with no deadline completes every update and keeps its single path.
func TestForkFreeStepCompletesWithoutDeadline(t *testing.T) {
	prog := sketchLoopProg(t, 200)
	e := NewEngine(prog, Options{Greybox: true})
	paths, err := e.Step(e.Initial(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("fork-free program should keep one path, got %d", len(paths))
	}
}
