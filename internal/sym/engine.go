package sym

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/greybox"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/prob"
	"repro/internal/solver"
	"repro/internal/target"
)

// ErrBudget is returned when exploration exceeds the path budget or
// deadline — the engine's "timeout" signal, which the evaluation reports
// exactly as the paper reports KLEE timeouts.
var ErrBudget = errors.New("sym: exploration budget exceeded")

// Options configures an engine run.
type Options struct {
	// Greybox folds hash tables / Bloom filters / sketches into
	// probabilistic data stores (P4wn). When false, the engine materializes
	// the underlying arrays and forks per possible slot (KLEE baseline).
	Greybox bool
	// Merge coalesces paths with identical concrete state between packets.
	Merge bool
	// MaxPaths bounds the live path count (0 = 1<<20).
	MaxPaths int
	// Deadline bounds wall-clock time (zero = none).
	Deadline time.Time
	// FeasibilityCheck prunes infeasible forks eagerly (default on; the
	// NoFeasibilityCheck flag flips it for ablation).
	NoFeasibilityCheck bool
	// DropOptimization halts a packet's processing at a Drop action —
	// one of the two Vera branch-cutting techniques ported to P4wn
	// (paper §A.2).
	DropOptimization bool
	// Layout pins header fields to concrete values for every symbolic
	// packet — the second ported Vera technique ("concrete packet
	// layouts"): branchy multi-protocol pipelines are analyzed one packet
	// layout at a time instead of across the full header space.
	Layout map[string]uint64
	// Locality overrides greybox key locality (0 = greybox default).
	Locality float64
	// Dead lists CFG node IDs proven statically infeasible by the analysis
	// package (repo-over-paper extension). A path that would enter a dead
	// block is discarded instead of forked further: the block's probability
	// is exactly zero, so no mass is lost. The engine takes a plain ID set
	// rather than an analysis type to keep the packages decoupled.
	Dead map[int]bool
	// Ctx cancels exploration mid-step: it is checked at every fork point
	// (alongside Deadline), so a path-explosion step cannot overshoot the
	// caller's budget. Nil means no cancellation.
	Ctx context.Context
	// Tracer receives per-step events; nil (the default) is a no-op.
	Tracer *obs.Tracer
	// Workers is the degree of parallelism for frontier stepping (<= 0
	// selects runtime.GOMAXPROCS). Output is bit-identical for every worker
	// count: each input path executes in an isolated task and results are
	// concatenated in input order.
	Workers int
	// Target is the device model the engine executes against: resource
	// clamps on data-store sizes, a per-pass stage budget, recirculation
	// and collision semantics. Nil (and target.Idealized) is the
	// unconstrained switch, bit-for-bit identical to the pre-target engine.
	Target *target.Model
	// Pool overrides the engine's worker pool, letting the profiler share
	// one pool (and its utilization metrics) across exploration, counting,
	// and sampling. Nil means the engine builds its own from Workers.
	Pool *par.Pool
}

// Stats counts engine work.
type Stats struct {
	Forks          int
	PathsExplored  int
	FeasibilityChk int
	Merges         int
	ArrayBytes     int // baseline array state cloned (cost proxy)
	PrunedPaths    int // paths discarded on entry to a statically-dead block
	GreyArms       int // greybox data-store arms taken (weighted forks)
}

// Metrics flattens the stats into the registry/report namespace.
func (s Stats) Metrics() map[string]float64 {
	return map[string]float64{
		"forks":            float64(s.Forks),
		"paths_explored":   float64(s.PathsExplored),
		"feasibility_chks": float64(s.FeasibilityChk),
		"merges":           float64(s.Merges),
		"array_bytes":      float64(s.ArrayBytes),
		"pruned_paths":     float64(s.PrunedPaths),
		"grey_arms":        float64(s.GreyArms),
	}
}

// Engine interprets one program symbolically.
//
// Step fans the frontier out across a worker pool: every input path runs in
// an isolated task (a worker view of the engine with its own stats and havoc
// namespace) and the forked outputs are concatenated in input order, so the
// result — path ordering, fork counts, havoc variable names — is
// bit-identical for every worker count.
type Engine struct {
	Prog  *ir.Program
	Space *solver.Space
	Opts  Options
	Stats Stats

	// Hot accumulates per-block exploration cost (visits, forks, solver
	// time). The pointer is shared by every worker view — the accumulators
	// are atomic — so one snapshot covers the whole run.
	Hot *HotStats

	pool *par.Pool
	tbl  *tableVars

	// Worker-view state: each Step task executes on a shallow copy of the
	// engine carrying its own havoc namespace, local stats, and a handle on
	// the step's shared live-path counter. curBlk tracks the block currently
	// executing so forks and solver time attribute to it (-1 outside any
	// block).
	havocN  int
	havocNS string
	live    *atomic.Int64
	tick    int
	curBlk  int
}

// tableVars holds the lazily created persistent key variables of symbolic
// table entries, shared across worker views behind a mutex. The variables'
// names depend only on the table, so whichever worker creates them first
// registers the same set a sequential run would.
type tableVars struct {
	mu sync.Mutex
	m  map[string][][]solver.Var
}

// NewEngine builds an engine; the Space is created from the program's
// fields and grows as havoc variables are registered.
func NewEngine(p *ir.Program, opts Options) *Engine {
	if opts.MaxPaths == 0 {
		opts.MaxPaths = 1 << 20
	}
	pool := opts.Pool
	if pool == nil {
		pool = par.New(opts.Workers, opts.Tracer, "sym")
	}
	return &Engine{Prog: p, Space: solver.NewSpace(p.Fields), Opts: opts,
		Hot:  NewHotStats(len(p.Nodes())),
		pool: pool, tbl: &tableVars{m: map[string][][]solver.Var{}}, curBlk: -1}
}

// Pool returns the engine's worker pool (shared with the profiler when
// Options.Pool was set).
func (e *Engine) Pool() *par.Pool { return e.pool }

// Initial returns the empty-state starting path set.
func (e *Engine) Initial() []*Path {
	return []*Path{NewPath(e.Prog)}
}

// workerView builds the execution context for one Step task: a shallow copy
// sharing the program, space, options, pool, and table variables, but with
// zeroed stats and a havoc namespace derived from (packet, task index) so
// fresh-variable names do not depend on the schedule.
func (e *Engine) workerView(pkt, task int, live *atomic.Int64) *Engine {
	w := *e
	w.Stats = Stats{}
	w.havocN = 0
	w.havocNS = strconv.Itoa(pkt) + "_" + strconv.Itoa(task) + "_"
	w.live = live
	w.tick = 0
	w.curBlk = -1
	return &w
}

// countFork records a path fork: the sequential stats counter plus the
// per-block hot accumulator for the block being executed.
func (e *Engine) countFork() {
	e.Stats.Forks++
	e.Hot.Fork(e.curBlk)
}

// timedFeasible runs one solver feasibility check, attributing its wall
// time to the current block. Callers account FeasibilityChk themselves.
func (e *Engine) timedFeasible(cs []solver.Constraint) bool {
	start := time.Now()
	ok := solver.Feasible(cs, e.Space)
	e.Hot.AddSolver(e.curBlk, time.Since(start))
	return ok
}

// add accumulates worker-view stats; plain integer sums, so folding the
// per-task stats in input order reproduces the sequential totals exactly.
func (s *Stats) add(o Stats) {
	s.Forks += o.Forks
	s.PathsExplored += o.PathsExplored
	s.FeasibilityChk += o.FeasibilityChk
	s.Merges += o.Merges
	s.ArrayBytes += o.ArrayBytes
	s.PrunedPaths += o.PrunedPaths
	s.GreyArms += o.GreyArms
}

// Step processes one more symbolic packet (index pkt) on every path,
// returning the forked path set. The caller reads per-packet visit sets and
// probabilities off the returned paths before the next Step. Input paths
// are disjoint object graphs (forks clone before mutating), so tasks are
// independent; the shared live counter keeps the MaxPaths budget global.
func (e *Engine) Step(paths []*Path, pkt int) ([]*Path, error) {
	ctx := e.Opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([][]*Path, len(paths))
	stats := make([]Stats, len(paths))
	var live atomic.Int64
	err := e.pool.Run(ctx, len(paths), func(i int) error {
		w := e.workerView(pkt, i, &live)
		defer func() { stats[i] = w.Stats }()
		if err := w.checkBudget(0); err != nil {
			return err
		}
		p := paths[i]
		p.resetPacket()
		w.pinLayout(p, pkt)
		nps, err := w.exec(p, e.Prog.Root, pkt)
		if err != nil {
			return err
		}
		results[i] = nps
		live.Add(int64(len(nps)))
		return nil
	})
	for i := range stats {
		e.Stats.add(stats[i])
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, ErrBudget
		}
		return nil, err
	}
	total := 0
	for i := range results {
		total += len(results[i])
	}
	out := make([]*Path, 0, total)
	for i := range results {
		out = append(out, results[i]...)
	}
	e.Stats.PathsExplored += len(out)
	if len(out) > e.Opts.MaxPaths {
		return nil, ErrBudget
	}
	e.Opts.Tracer.Event("sym", "step",
		obs.F("pkt", float64(pkt)), obs.F("paths", float64(len(out))),
		obs.F("forks", float64(e.Stats.Forks)), obs.F("pruned", float64(e.Stats.PrunedPaths)))
	return out, nil
}

// pinLayout constrains the new packet's fields to the configured layout.
func (e *Engine) pinLayout(p *Path, pkt int) {
	if len(e.Opts.Layout) == 0 {
		return
	}
	for field, val := range e.Opts.Layout {
		p.PC = append(p.PC, solver.NewCmp(ir.CmpEq,
			solver.VarExpr(solver.Var{Pkt: pkt, Field: field}),
			solver.ConstExpr(int64(val))))
	}
}

// Run executes t symbolic packets from the initial state.
func (e *Engine) Run(t int) ([]*Path, error) {
	paths := e.Initial()
	var err error
	for i := 0; i < t; i++ {
		paths, err = e.Step(paths, i)
		if err != nil {
			return nil, err
		}
	}
	return paths, nil
}

func (e *Engine) checkBudget(local int) error {
	if e.live != nil {
		local += int(e.live.Load())
	}
	if local > e.Opts.MaxPaths {
		return ErrBudget
	}
	if e.Opts.Ctx != nil {
		select {
		case <-e.Opts.Ctx.Done():
			return ErrBudget
		default:
		}
	}
	if !e.Opts.Deadline.IsZero() && time.Now().After(e.Opts.Deadline) {
		return ErrBudget
	}
	return nil
}

// tickBudget is the stride-based budget check for fork-free hot loops
// (greybox store updates, baseline aliasing scans): every 64th call runs the
// full deadline/cancellation check, so a step that grows no paths — and thus
// never reaches a fork-point check — still honors the Deadline.
func (e *Engine) tickBudget(local int) error {
	e.tick++
	if e.tick%64 != 0 {
		return nil
	}
	return e.checkBudget(local)
}

// ---- expression evaluation ----

// havoc mints a fresh unknown. Names are namespaced by the worker view's
// (packet, task) coordinates rather than a global counter, so they are
// identical for every worker count — a schedule-dependent name would leak
// into constraint strings and break bit-identical profiles.
func (e *Engine) havoc(pkt int, dom solver.Interval) Value {
	name := "__h" + e.havocNS + strconv.Itoa(e.havocN)
	e.havocN++
	v := solver.Var{Pkt: pkt, Field: name}
	e.Space.SetDomain(v, dom)
	return LinVal(solver.VarExpr(v))
}

// maskedFieldVar returns the derived variable for (field & mask), which the
// model counter understands natively; it is reused across references so
// that repeated tests of the same flag bits correlate correctly.
func (e *Engine) maskedFieldVar(base solver.Var, mask uint64) Value {
	v := solver.Var{Pkt: base.Pkt, Field: fmt.Sprintf("%s&%d", base.Field, mask)}
	e.Space.SetDomain(v, solver.Interval{Lo: 0, Hi: mask})
	return LinVal(solver.VarExpr(v))
}

// singleVar extracts (var, ok) when the value is exactly one unit-coefficient
// variable with no constant.
func singleVar(v Value) (solver.Var, bool) {
	if v.Kind != VLin || len(v.E.Terms) != 1 || v.E.K != 0 || v.E.Terms[0].Coef != 1 {
		return solver.Var{}, false
	}
	return v.E.Terms[0].Var, true
}

func (e *Engine) evalExpr(p *Path, x ir.Expr, pkt int) Value {
	switch t := x.(type) {
	case ir.Const:
		return ConcreteVal(t.V)
	case ir.FieldRef:
		return LinVal(solver.VarExpr(solver.Var{Pkt: pkt, Field: t.Name}))
	case ir.RegRef:
		if v, ok := p.Regs[t.Reg]; ok {
			return v
		}
		return ConcreteVal(0)
	case ir.MetaRef:
		if v, ok := p.Meta[t.Name]; ok {
			return v
		}
		return ConcreteVal(0)
	case ir.Bin:
		return e.evalBin(p, t, pkt)
	case ir.HashExpr:
		return e.evalHash(p, t, pkt)
	}
	return ConcreteVal(0)
}

func (e *Engine) evalBin(p *Path, b ir.Bin, pkt int) Value {
	a := e.evalExpr(p, b.A, pkt)
	c := e.evalExpr(p, b.B, pkt)

	if a.IsConcrete() && c.IsConcrete() {
		return ConcreteVal(applyBinOp(b.Op, a.C, c.C))
	}

	switch b.Op {
	case ir.OpAdd, ir.OpSub:
		if la, ok := a.Lin(); ok {
			if lc, ok2 := c.Lin(); ok2 {
				if b.Op == ir.OpAdd {
					return LinVal(la.Add(lc))
				}
				return LinVal(la.Sub(lc))
			}
		}
		// Distribution arithmetic: shift by a concrete delta.
		if a.Kind == VDist && c.IsConcrete() {
			d := a.D.Clone()
			if b.Op == ir.OpAdd {
				d.Shift(int64(c.C))
			} else {
				d.Shift(-int64(c.C))
			}
			return DistVal(d)
		}
	case ir.OpMul:
		if a.Kind == VLin && c.IsConcrete() {
			return LinVal(a.E.Scale(int64(c.C)))
		}
		if c.Kind == VLin && a.IsConcrete() {
			return LinVal(c.E.Scale(int64(a.C)))
		}
	case ir.OpAnd:
		// (field & mask) gets a derived variable with an exact
		// distribution instead of a blind havoc.
		if v, ok := singleVar(a); ok && c.IsConcrete() {
			return e.maskedFieldVar(v, c.C)
		}
		if v, ok := singleVar(c); ok && a.IsConcrete() {
			return e.maskedFieldVar(v, a.C)
		}
	case ir.OpMod:
		if a.Kind == VDist && c.IsConcrete() && c.C > 0 {
			return DistVal(a.D.Map(func(v uint64) uint64 { return v % c.C }))
		}
		if c.IsConcrete() && c.C > 0 {
			return e.havoc(pkt, solver.Interval{Lo: 0, Hi: c.C - 1})
		}
	}
	// Anything else over symbolic operands is havocked.
	return e.havoc(pkt, solver.FullInterval(32))
}

func applyBinOp(op ir.BinOp, a, b uint64) uint64 {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpMod:
		if b == 0 {
			return 0
		}
		return a % b
	case ir.OpShl:
		return a << (b & 63)
	case ir.OpShr:
		return a >> (b & 63)
	}
	return 0
}

func (e *Engine) evalHash(p *Path, h ir.HashExpr, pkt int) Value {
	args := make([]Value, len(h.Args))
	for i, a := range h.Args {
		args[i] = e.evalExpr(p, a, pkt)
	}
	dom := solver.FullInterval(32)
	if h.Mod > 0 {
		dom = solver.Interval{Lo: 0, Hi: h.Mod - 1}
	}
	hv := e.havoc(pkt, dom)
	if v, ok := singleVar(hv); ok {
		p.Havocs = append(p.Havocs, HavocRecord{Var: v, Seed: h.Seed, Mod: h.Mod, Args: args, Pkt: pkt})
	}
	return hv
}

// ---- condition forking ----

// forkCond splits a set of paths into those where the condition holds and
// those where it does not, adding constraints or greybox weights.
func (e *Engine) forkCond(paths []*Path, c ir.Cond, pkt int) (tr, fl []*Path) {
	switch t := c.(type) {
	case ir.Cmp:
		for _, p := range paths {
			pt, pf := e.forkCmp(p, t, pkt)
			if pt != nil {
				tr = append(tr, pt)
			}
			if pf != nil {
				fl = append(fl, pf)
			}
		}
		return tr, fl
	case ir.Not:
		f2, t2 := e.forkCond(paths, t.C, pkt)
		return t2, f2
	case ir.AndC:
		t1, f1 := e.forkCond(paths, t.A, pkt)
		t2, f2 := e.forkCond(t1, t.B, pkt)
		return t2, append(f1, f2...)
	case ir.OrC:
		t1, f1 := e.forkCond(paths, t.A, pkt)
		t2, f2 := e.forkCond(f1, t.B, pkt)
		return append(t1, t2...), f2
	}
	return paths, nil
}

// forkCmp forks one path on a comparison. Either return may be nil
// (infeasible or probability-zero arm).
func (e *Engine) forkCmp(p *Path, c ir.Cmp, pkt int) (*Path, *Path) {
	a := e.evalExpr(p, c.A, pkt)
	b := e.evalExpr(p, c.B, pkt)

	// Greybox distribution against a concrete threshold: weighted fork.
	if a.Kind == VDist && b.IsConcrete() {
		return e.forkDist(p, a.D, c.Op, b.C)
	}
	if b.Kind == VDist && a.IsConcrete() {
		return e.forkDist(p, b.D, swapOp(c.Op), a.C)
	}
	// Distribution vs symbolic: collapse the distribution to its mean and
	// continue with a regular constraint fork (documented approximation;
	// data-plane programs overwhelmingly compare counters with constants).
	if a.Kind == VDist {
		a = ConcreteVal(distMean(a.D))
	}
	if b.Kind == VDist {
		b = ConcreteVal(distMean(b.D))
	}

	if a.IsConcrete() && b.IsConcrete() {
		if cmpConcrete(c.Op, a.C, b.C) {
			return p, nil
		}
		return nil, p
	}

	la, _ := a.Lin()
	lb, _ := b.Lin()
	con := solver.NewCmp(c.Op, la, lb)

	e.countFork()
	pt := p.Clone()
	pt.PC = append(pt.PC, con)
	pf := p
	pf.PC = append(pf.PC, con.Negate())

	if !e.Opts.NoFeasibilityCheck {
		e.Stats.FeasibilityChk += 2
		if !e.timedFeasible(pt.PC) {
			pt = nil
		}
		if !e.timedFeasible(pf.PC) {
			pf = nil
		}
	}
	return pt, pf
}

// forkDist forks on a value-distribution comparison, weighting each arm by
// the distribution mass (greybox branching).
func (e *Engine) forkDist(p *Path, d *greybox.ValueDist, op ir.CmpOp, k uint64) (*Path, *Path) {
	total := d.Total()
	if total <= 0 {
		return nil, p
	}
	mTrue := d.MassWhere(func(v uint64) bool { return cmpConcrete(op, v, k) }) / total
	e.countFork()
	var pt, pf *Path
	if mTrue > 0 {
		pt = p.Clone()
		pt.Grey = pt.Grey.Mul(prob.FromFloat(mTrue))
	}
	if mTrue < 1 {
		pf = p
		pf.Grey = pf.Grey.Mul(prob.FromFloat(1 - mTrue))
	}
	return pt, pf
}

func distMean(d *greybox.ValueDist) uint64 {
	vs, ps := d.Support()
	tot := d.Total()
	if tot <= 0 {
		return 0
	}
	m := 0.0
	for i, v := range vs {
		m += float64(v) * ps[i]
	}
	return uint64(m / tot)
}

func cmpConcrete(op ir.CmpOp, a, b uint64) bool {
	switch op {
	case ir.CmpEq:
		return a == b
	case ir.CmpNe:
		return a != b
	case ir.CmpLt:
		return a < b
	case ir.CmpLe:
		return a <= b
	case ir.CmpGt:
		return a > b
	case ir.CmpGe:
		return a >= b
	}
	return false
}

func swapOp(op ir.CmpOp) ir.CmpOp {
	switch op {
	case ir.CmpLt:
		return ir.CmpGt
	case ir.CmpLe:
		return ir.CmpGe
	case ir.CmpGt:
		return ir.CmpLt
	case ir.CmpGe:
		return ir.CmpLe
	}
	return op
}
