package sym

import (
	"sort"
	"strings"

	"repro/internal/greybox"
	"repro/internal/ir"
	"repro/internal/prob"
	"repro/internal/solver"
)

// ActionRecord logs one terminal action taken on a path.
type ActionRecord struct {
	Kind ir.ActionKind
	Port uint64 // concrete port when known, else PortUnknown
	Pkt  int    // packet index that triggered the action
}

// PortUnknown marks a symbolic output port.
const PortUnknown = ^uint64(0)

// GreyArm identifies which arm a greybox data-store access took.
type GreyArm int

// Greybox access arms.
const (
	ArmEmpty GreyArm = iota
	ArmHit
	ArmCollide
	ArmBloomHit
	ArmBloomMiss
	ArmSketchTrue
	ArmSketchFalse
)

func (a GreyArm) String() string {
	switch a {
	case ArmEmpty:
		return "empty"
	case ArmHit:
		return "hit"
	case ArmCollide:
		return "collide"
	case ArmBloomHit:
		return "bloom-hit"
	case ArmBloomMiss:
		return "bloom-miss"
	case ArmSketchTrue:
		return "sketch-true"
	case ArmSketchFalse:
		return "sketch-false"
	}
	return "?"
}

// GreyChoice records one greybox arm decision on a path; the test generator
// replays these decisions with concrete key material (same key for hits,
// fresh keys for empties, colliding keys for collisions).
type GreyChoice struct {
	Store string
	Arm   GreyArm
	Pkt   int
}

// HavocRecord remembers a havocked hash expression so the test generator
// can later reconcile the fresh variable with concrete key material (the
// paper's rainbow-table step).
type HavocRecord struct {
	Var  solver.Var
	Seed uint32
	Mod  uint64
	Args []Value
	Pkt  int
}

// Path is one symbolic execution path over the packet sequence so far.
type Path struct {
	// Persistent program state.
	Regs   map[string]Value
	Arrays map[string][]Value // materialized register arrays / baseline structures

	// Greybox data-store states (P4wn mode).
	HashStores map[string]*greybox.HashStore
	Blooms     map[string]*greybox.BloomStore
	Sketches   map[string]*greybox.SketchStore

	// Per-packet scratch state (reset each packet).
	Meta map[string]Value

	// PC holds the path constraints accumulated since the last merge.
	PC []solver.Constraint
	// Grey is the product of greybox fork probabilities since the last merge.
	Grey prob.P
	// Base is the folded probability of everything before the last merge.
	Base prob.P

	// Visits are CFG nodes entered while processing the current packet.
	Visits map[int]bool
	// AllVisits counts node entries over the whole sequence.
	AllVisits map[int]int

	Actions []ActionRecord
	Havocs  []HavocRecord
	// GreyChoices logs greybox arm decisions in execution order.
	GreyChoices []GreyChoice

	// BWrites tracks baseline-mode structure writes for slot aliasing.
	BWrites map[string][]BaseWrite

	// Dead marks a path that dropped its packet chain (used by drop
	// optimization: further packets still execute, but the current
	// packet's processing halted).
	halted bool

	// Stages counts stateful operations executed by the current packet's
	// pass. It is only advanced when the engine's target sets a stage
	// budget, so idealized runs never touch it (and merge keys are
	// unchanged).
	Stages int
}

// NewPath returns the initial empty-state path for a program.
func NewPath(p *ir.Program) *Path {
	pt := &Path{
		Regs:       map[string]Value{},
		Arrays:     map[string][]Value{},
		HashStores: map[string]*greybox.HashStore{},
		Blooms:     map[string]*greybox.BloomStore{},
		Sketches:   map[string]*greybox.SketchStore{},
		Meta:       map[string]Value{},
		Grey:       prob.One(),
		Base:       prob.One(),
		Visits:     map[int]bool{},
		AllVisits:  map[int]int{},
	}
	for _, r := range p.Regs {
		pt.Regs[r.Name] = ConcreteVal(r.Init)
	}
	return pt
}

// Clone deep-copies the path for a fork.
func (p *Path) Clone() *Path {
	q := &Path{
		Regs:        make(map[string]Value, len(p.Regs)),
		Arrays:      make(map[string][]Value, len(p.Arrays)),
		HashStores:  make(map[string]*greybox.HashStore, len(p.HashStores)),
		Blooms:      make(map[string]*greybox.BloomStore, len(p.Blooms)),
		Sketches:    make(map[string]*greybox.SketchStore, len(p.Sketches)),
		Meta:        make(map[string]Value, len(p.Meta)),
		PC:          append([]solver.Constraint(nil), p.PC...),
		Grey:        p.Grey,
		Base:        p.Base,
		Visits:      make(map[int]bool, len(p.Visits)),
		AllVisits:   make(map[int]int, len(p.AllVisits)),
		Actions:     append([]ActionRecord(nil), p.Actions...),
		Havocs:      append([]HavocRecord(nil), p.Havocs...),
		GreyChoices: append([]GreyChoice(nil), p.GreyChoices...),
		halted:      p.halted,
		Stages:      p.Stages,
	}
	for k, v := range p.Regs {
		q.Regs[k] = v
	}
	for k, v := range p.Arrays {
		q.Arrays[k] = append([]Value(nil), v...)
	}
	for k, v := range p.HashStores {
		q.HashStores[k] = v.Clone()
	}
	for k, v := range p.Blooms {
		q.Blooms[k] = v.Clone()
	}
	for k, v := range p.Sketches {
		q.Sketches[k] = v.Clone()
	}
	for k, v := range p.Meta {
		q.Meta[k] = v
	}
	for k, v := range p.Visits {
		q.Visits[k] = v
	}
	for k, v := range p.AllVisits {
		q.AllVisits[k] = v
	}
	if p.BWrites != nil {
		q.BWrites = make(map[string][]BaseWrite, len(p.BWrites))
		for k, v := range p.BWrites {
			q.BWrites[k] = append([]BaseWrite(nil), v...)
		}
	}
	return q
}

// resetPacket clears per-packet scratch state before the next symbolic
// packet is processed.
func (p *Path) resetPacket() {
	p.Meta = map[string]Value{}
	p.Visits = map[int]bool{}
	p.halted = false
	p.Stages = 0
}

// StateMergeable reports whether the path's persistent state is fully
// concrete (or distribution-valued), i.e. independent of past packet-field
// variables; only such paths may be coalesced.
func (p *Path) StateMergeable() bool {
	for _, v := range p.Regs {
		if !v.mergeable() {
			return false
		}
	}
	for _, arr := range p.Arrays {
		for _, v := range arr {
			if !v.mergeable() {
				return false
			}
		}
	}
	return true
}

// StateKey canonically fingerprints the persistent state for merging.
func (p *Path) StateKey() string {
	var b strings.Builder
	writeSortedVals(&b, "r", p.Regs)
	names := sortedKeys(p.Arrays)
	for _, n := range names {
		b.WriteString("a" + n + "[")
		for _, v := range p.Arrays[n] {
			b.WriteString(v.stateKey())
			b.WriteByte(',')
		}
		b.WriteString("]")
	}
	for _, n := range sortedKeys(p.HashStores) {
		b.WriteString(p.HashStores[n].Key())
	}
	for _, n := range sortedKeys(p.Blooms) {
		b.WriteString(p.Blooms[n].Key())
	}
	for _, n := range sortedKeys(p.Sketches) {
		b.WriteString(p.Sketches[n].Key())
	}
	return b.String()
}

func writeSortedVals(b *strings.Builder, tag string, m map[string]Value) {
	for _, k := range sortedKeys(m) {
		b.WriteString(tag + k + "=" + m[k].stateKey() + ";")
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// VisitedNodes returns the sorted node IDs visited in the current packet.
func (p *Path) VisitedNodes() []int {
	out := make([]int, 0, len(p.Visits))
	for id := range p.Visits {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
