package sym

import (
	"context"

	"repro/internal/mc"
	"repro/internal/prob"
)

// PathProb computes a path's probability: the folded base, times the
// greybox factors, times the model-counted mass of the open path condition.
func PathProb(p *Path, counter *mc.Counter) prob.P {
	pr := p.Base.Mul(p.Grey)
	if len(p.PC) > 0 {
		pr = pr.Mul(counter.ProbOf(p.PC))
	}
	return pr
}

// Merge coalesces paths whose persistent state is fully concrete and
// identical: their open path conditions are folded into the Base
// probability (via the model counter) and dropped. Future behaviour of a
// merged path depends only on its state, so this is exact for profiling.
// Paths carrying symbolic register state (cross-packet constraints) are
// passed through unmerged.
//
// Merged paths lose per-path action/havoc logs (profiling does not need
// them); test generation runs the engine unmerged.
func Merge(paths []*Path, counter *mc.Counter) []*Path {
	out, _ := MergeCtx(context.Background(), paths, counter)
	return out
}

// MergeCtx is Merge with cancellation: merging model-counts every
// mergeable path's open condition, which on a path-explosion iteration is
// where a profiling deadline would otherwise overshoot. On cancellation it
// returns the input paths unmerged together with the context error.
func MergeCtx(ctx context.Context, paths []*Path, counter *mc.Counter) ([]*Path, error) {
	groups := map[string]*Path{}
	var order []string
	var out []*Path
	for i, p := range paths {
		if i%64 == 0 && ctx.Err() != nil {
			return paths, ctx.Err()
		}
		if !p.StateMergeable() {
			out = append(out, p)
			continue
		}
		key := p.StateKey()
		pr := PathProb(p, counter)
		if g, ok := groups[key]; ok {
			g.Base = g.Base.Add(pr)
			continue
		}
		q := p
		q.Base = pr
		q.Grey = prob.One()
		q.PC = nil
		q.Actions = nil
		q.Havocs = nil
		groups[key] = q
		order = append(order, key)
	}
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out, nil
}

// NodeProbs sums path probabilities per CFG node visited during the paths'
// current packet: Pr_t[N] = Σ_{p visits N} Pr[p].
func NodeProbs(paths []*Path, counter *mc.Counter, numNodes int) []prob.P {
	out, _ := NodeProbsCtx(context.Background(), paths, counter, numNodes)
	return out
}

// NodeProbsCtx is NodeProbs with cancellation, checked every few paths:
// like merging, the per-iteration probability update model-counts every
// live path and is a deadline-overshoot hotspot. On cancellation the
// partial sums are returned along with the context error; callers must
// discard them.
func NodeProbsCtx(ctx context.Context, paths []*Path, counter *mc.Counter, numNodes int) ([]prob.P, error) {
	out := make([]prob.P, numNodes)
	for i := range out {
		out[i] = prob.Zero()
	}
	for i, p := range paths {
		if i%64 == 0 && ctx.Err() != nil {
			return out, ctx.Err()
		}
		pr := PathProb(p, counter)
		if pr.IsZero() {
			continue
		}
		for id := range p.Visits {
			if id < numNodes {
				out[id] = out[id].Add(pr)
			}
		}
	}
	return out, nil
}
