package sym

import (
	"context"

	"repro/internal/mc"
	"repro/internal/par"
	"repro/internal/prob"
)

// PathProb computes a path's probability: the folded base, times the
// greybox factors, times the model-counted mass of the open path condition.
func PathProb(p *Path, counter *mc.Counter) prob.P {
	pr := p.Base.Mul(p.Grey)
	if len(p.PC) > 0 {
		pr = pr.Mul(counter.ProbOf(p.PC))
	}
	return pr
}

// pathProbs fans the per-path model-counting queries — the dominant cost of
// both merging and per-iteration probability updates — out across the pool,
// writing each result to its own slot. The reduction over the slots stays
// sequential in input order because prob.P addition is log-sum-exp and
// therefore not associative: only this split keeps parallel output
// bit-identical to sequential.
func pathProbs(ctx context.Context, paths []*Path, counter *mc.Counter, pool *par.Pool) ([]prob.P, error) {
	prs := make([]prob.P, len(paths))
	err := pool.Run(ctx, len(paths), func(i int) error {
		prs[i] = PathProb(paths[i], counter)
		return nil
	})
	return prs, err
}

// Merge coalesces paths whose persistent state is fully concrete and
// identical: their open path conditions are folded into the Base
// probability (via the model counter) and dropped. Future behaviour of a
// merged path depends only on its state, so this is exact for profiling.
// Paths carrying symbolic register state (cross-packet constraints) are
// passed through unmerged.
//
// Merged paths lose per-path action/havoc logs (profiling does not need
// them); test generation runs the engine unmerged.
func Merge(paths []*Path, counter *mc.Counter) []*Path {
	out, _ := MergePool(context.Background(), paths, counter, nil)
	return out
}

// MergeCtx is Merge with cancellation: merging model-counts every
// mergeable path's open condition, which on a path-explosion iteration is
// where a profiling deadline would otherwise overshoot. On cancellation it
// returns the input paths unmerged together with the context error.
func MergeCtx(ctx context.Context, paths []*Path, counter *mc.Counter) ([]*Path, error) {
	return MergePool(ctx, paths, counter, nil)
}

// MergePool is MergeCtx with the model-counting queries fanned out across
// the pool (nil runs inline). The grouping fold itself is sequential in
// input order, so the merged path set is identical for every worker count.
func MergePool(ctx context.Context, paths []*Path, counter *mc.Counter, pool *par.Pool) ([]*Path, error) {
	// Only mergeable paths get counted (non-mergeable ones pass through with
	// their PC intact), so the mergeability scan runs first.
	mergeable := make([]*Path, 0, len(paths))
	for _, p := range paths {
		if p.StateMergeable() {
			mergeable = append(mergeable, p)
		}
	}
	prs, err := pathProbs(ctx, mergeable, counter, pool)
	if err != nil {
		return paths, err
	}
	groups := map[string]*Path{}
	var order []string
	var out []*Path
	mi := 0
	for _, p := range paths {
		if !p.StateMergeable() {
			out = append(out, p)
			continue
		}
		key := p.StateKey()
		pr := prs[mi]
		mi++
		if g, ok := groups[key]; ok {
			g.Base = g.Base.Add(pr)
			continue
		}
		q := p
		q.Base = pr
		q.Grey = prob.One()
		q.PC = nil
		q.Actions = nil
		q.Havocs = nil
		groups[key] = q
		order = append(order, key)
	}
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out, nil
}

// NodeProbs sums path probabilities per CFG node visited during the paths'
// current packet: Pr_t[N] = Σ_{p visits N} Pr[p].
func NodeProbs(paths []*Path, counter *mc.Counter, numNodes int) []prob.P {
	out, _ := NodeProbsPool(context.Background(), paths, counter, numNodes, nil)
	return out
}

// NodeProbsCtx is NodeProbs with cancellation, checked every few paths:
// like merging, the per-iteration probability update model-counts every
// live path and is a deadline-overshoot hotspot. On cancellation the
// partial sums are returned along with the context error; callers must
// discard them.
func NodeProbsCtx(ctx context.Context, paths []*Path, counter *mc.Counter, numNodes int) ([]prob.P, error) {
	return NodeProbsPool(ctx, paths, counter, numNodes, nil)
}

// NodeProbsPool is NodeProbsCtx with the model-counting queries fanned out
// across the pool (nil runs inline); the per-node accumulation stays
// sequential in path order for bit-identical sums.
func NodeProbsPool(ctx context.Context, paths []*Path, counter *mc.Counter, numNodes int, pool *par.Pool) ([]prob.P, error) {
	out := make([]prob.P, numNodes)
	for i := range out {
		out[i] = prob.Zero()
	}
	prs, err := pathProbs(ctx, paths, counter, pool)
	if err != nil {
		return out, err
	}
	for i, p := range paths {
		pr := prs[i]
		if pr.IsZero() {
			continue
		}
		for id := range p.Visits {
			if id < numNodes {
				out[id] = out[id].Add(pr)
			}
		}
	}
	return out, nil
}
