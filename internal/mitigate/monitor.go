// Package mitigate implements the countermeasure sketched in the paper's
// §6 discussion: attach counters to code blocks, compare the runtime block
// frequency distribution against the expected probabilistic profile, and
// raise alarms when edge cases occur excessively often — the signature of
// an adversarial workload. Operators can wire alarms to rate limiting.
package mitigate

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dut"
)

// Options tunes the monitor.
type Options struct {
	// Window is the number of packets per evaluation window (default 1000).
	Window int
	// RareCutoff classifies a block as an edge case when its expected
	// per-packet probability is below this (default 0.01).
	RareCutoff float64
	// Ratio is the observed/expected factor that raises an alarm for a
	// rare block (default 10).
	Ratio float64
	// MinRate is the minimum observed frequency for an alarm, preventing
	// single stray packets from alarming (default 0.02).
	MinRate float64
}

func (o Options) withDefaults() Options {
	if o.Window == 0 {
		o.Window = 1000
	}
	if o.RareCutoff == 0 {
		o.RareCutoff = 0.01
	}
	if o.Ratio == 0 {
		o.Ratio = 10
	}
	if o.MinRate == 0 {
		o.MinRate = 0.02
	}
	return o
}

// Alarm reports one anomalous window for one edge-case block.
type Alarm struct {
	Node     int
	Label    string
	Expected float64 // profile probability per packet
	Observed float64 // measured frequency in the window
	Window   int     // window index (0-based)
}

func (a Alarm) String() string {
	return fmt.Sprintf("window %d: block %q expected %.2e, observed %.3f",
		a.Window, a.Label, a.Expected, a.Observed)
}

// Monitor watches a switch's block counters against an expected profile.
type Monitor struct {
	opt      Options
	expected map[int]float64
	labels   map[int]string
	rare     map[int]bool
	entryID  int

	counts  map[int]int
	packets int
	window  int
	alarms  []Alarm
}

// New builds a monitor from a probabilistic profile.
func New(prof *core.Profile, opt Options) *Monitor {
	m := &Monitor{
		opt:      opt.withDefaults(),
		expected: map[int]float64{},
		labels:   map[int]string{},
		rare:     map[int]bool{},
		counts:   map[int]int{},
		entryID:  -1,
	}
	for _, n := range prof.Nodes {
		m.expected[n.ID] = n.P.Float()
		m.labels[n.ID] = n.Label
		if n.P.Float() < m.opt.RareCutoff {
			m.rare[n.ID] = true
		}
		if n.Label == "entry" {
			m.entryID = n.ID
		}
	}
	return m
}

// Attach installs the monitor as the switch's visit hook. The entry block
// marks packet boundaries; every window the rare-block frequencies are
// evaluated.
func (m *Monitor) Attach(sw *dut.Switch) {
	prev := sw.VisitHook
	sw.VisitHook = func(id int) {
		if prev != nil {
			prev(id)
		}
		m.Observe(id)
	}
}

// Observe records one block visit (exported for custom integration).
func (m *Monitor) Observe(id int) {
	if id == m.entryID {
		m.packets++
		if m.packets >= m.opt.Window {
			m.evaluate()
		}
	}
	if m.rare[id] {
		m.counts[id]++
	}
}

// Flush evaluates a partial window (e.g. at the end of a replay).
func (m *Monitor) Flush() {
	if m.packets > 0 {
		m.evaluate()
	}
}

func (m *Monitor) evaluate() {
	for id, c := range m.counts {
		observed := float64(c) / float64(m.packets)
		expected := m.expected[id]
		if observed >= m.opt.MinRate && observed > expected*m.opt.Ratio {
			m.alarms = append(m.alarms, Alarm{
				Node: id, Label: m.labels[id],
				Expected: expected, Observed: observed, Window: m.window,
			})
		}
	}
	m.counts = map[int]int{}
	m.packets = 0
	m.window++
}

// Alarms returns the alarms raised so far, ordered by window then label.
func (m *Monitor) Alarms() []Alarm {
	out := append([]Alarm(nil), m.alarms...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Window != out[j].Window {
			return out[i].Window < out[j].Window
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// Windows returns how many full windows have been evaluated.
func (m *Monitor) Windows() int { return m.window }
