package mitigate

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/programs"
	"repro/internal/testgen"
	"repro/internal/trace"
)

func profileFor(t *testing.T, name string) (*core.Profile, *trace.Trace) {
	t.Helper()
	m, ok := programs.ByName(name)
	if !ok {
		t.Fatalf("unknown program %s", name)
	}
	tr := trace.Generate(m.Workload(1))
	prof, err := core.ProbProf(m.Build(), trace.NewQueryProcessor(tr), core.Options{
		Seed: 1, MaxIters: 5, SampleBudget: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prof, tr
}

func TestNoAlarmsUnderNormalTraffic(t *testing.T) {
	m, _ := programs.ByName("counter (S12)")
	prof, tr := profileFor(t, "counter (S12)")

	sw := dut.New(m.Build(), dut.Config{})
	mon := New(prof, Options{Window: 1000})
	mon.Attach(sw)
	for i := range tr.Packets {
		sw.Process(&tr.Packets[i])
	}
	mon.Flush()
	if n := len(mon.Alarms()); n != 0 {
		t.Fatalf("normal traffic raised %d alarms: %v", n, mon.Alarms())
	}
	if mon.Windows() == 0 {
		t.Fatal("no windows evaluated")
	}
}

func TestAlarmsUnderAdversarialTraffic(t *testing.T) {
	meta, _ := programs.ByName("counter (S12)")
	prof, _ := profileFor(t, "counter (S12)")
	prog := meta.Build()

	// Under TCP-dominated traffic the rare mirror block is the UDP one.
	target := prog.NodeByLabel("udp_sample").ID
	adv, err := testgen.Generate(prog, target, testgen.Options{Seed: 1})
	if err != nil || !adv.Validated {
		t.Fatalf("generation failed: %v", err)
	}
	attack := testgen.WorkloadFor(adv, 5, 1000)

	sw := dut.New(prog, dut.Config{})
	mon := New(prof, Options{Window: 1000})
	mon.Attach(sw)
	for i := range attack.Packets {
		sw.Process(&attack.Packets[i])
	}
	mon.Flush()

	alarms := mon.Alarms()
	if len(alarms) == 0 {
		t.Fatal("adversarial traffic raised no alarms")
	}
	found := false
	for _, a := range alarms {
		if a.Label == "udp_sample" {
			found = true
			if a.Observed <= a.Expected {
				t.Fatalf("alarm without excess: %+v", a)
			}
		}
	}
	if !found {
		t.Fatalf("no alarm for the attacked block; got %v", alarms)
	}
}

func TestAlarmsOnBlinkRetransStorm(t *testing.T) {
	meta, _ := programs.ByName("Blink (S5)")
	prof, _ := profileFor(t, "Blink (S5)")
	prog := meta.Build()

	adv, err := testgen.Generate(prog, prog.NodeByLabel("reroute").ID, testgen.Options{Seed: 1})
	if err != nil || !adv.Validated {
		t.Fatalf("generation failed: %v", err)
	}
	attack := testgen.WorkloadFor(adv, 3, 1000)

	sw := dut.New(prog, dut.Config{})
	mon := New(prof, Options{Window: 500})
	mon.Attach(sw)
	for i := range attack.Packets {
		sw.Process(&attack.Packets[i])
	}
	mon.Flush()
	if len(mon.Alarms()) == 0 {
		t.Fatal("retransmission storm raised no alarms")
	}
}

func TestMinRateSuppressesStrays(t *testing.T) {
	prof, _ := profileFor(t, "counter (S12)")
	mon := New(prof, Options{Window: 1000, MinRate: 0.5})
	// One stray rare-block visit per window must not alarm.
	rareID := -1
	for _, n := range prof.Nodes {
		if n.Label == "tcp_sample" {
			rareID = n.ID
		}
	}
	entry := -1
	for _, n := range prof.Nodes {
		if n.Label == "entry" {
			entry = n.ID
		}
	}
	for i := 0; i < 1000; i++ {
		mon.Observe(entry)
		if i == 500 {
			mon.Observe(rareID)
		}
	}
	mon.Flush()
	if len(mon.Alarms()) != 0 {
		t.Fatalf("stray visit alarmed: %v", mon.Alarms())
	}
}

func TestAlarmString(t *testing.T) {
	a := Alarm{Window: 2, Label: "reroute", Expected: 1e-20, Observed: 0.4}
	if a.String() == "" {
		t.Fatal("empty alarm string")
	}
}
