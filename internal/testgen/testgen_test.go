package testgen

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/programs"
)

func mustNode(t *testing.T, p *ir.Program, label string) int {
	t.Helper()
	n := p.NodeByLabel(label)
	if n == nil {
		t.Fatalf("no node labeled %q", label)
	}
	return n.ID
}

func genFor(t *testing.T, p *ir.Program, label string) *AdvTrace {
	t.Helper()
	adv, err := Generate(p, mustNode(t, p, label), Options{Seed: 1})
	if err != nil {
		t.Fatalf("generate %s/%s: %v", p.Name, label, err)
	}
	if !adv.Validated {
		t.Fatalf("generated trace for %s/%s did not validate (%d packets)", p.Name, label, len(adv.Packets))
	}
	return adv
}

func TestGenerateStatelessBranch(t *testing.T) {
	p := programs.CopyToCPU()
	adv := genFor(t, p, "to_cpu")
	if len(adv.Packets) == 0 {
		t.Fatal("no packets")
	}
	// The SYN bit must be set on the triggering packet.
	if adv.Packets[0].TCPFlags&ir.FlagSYN == 0 {
		t.Fatalf("SYN not set: flags=%x", adv.Packets[0].TCPFlags)
	}
}

func TestGenerateTableDefault(t *testing.T) {
	p := programs.ACL()
	adv := genFor(t, p, "acl_miss")
	// The packet must miss every entry.
	pk := adv.Packets[len(adv.Packets)-1]
	if (pk.DstPort == 22 || pk.DstPort == 80 || pk.DstPort == 443) && pk.Proto == ir.ProtoTCP {
		t.Fatalf("packet matches an ACL entry: %+v", pk)
	}
}

func TestGenerateHashCollision(t *testing.T) {
	p := programs.HTable(256, 16)
	adv := genFor(t, p, "flow_collision")
	if len(adv.Packets) < 2 {
		t.Fatalf("collision needs at least 2 packets, got %d", len(adv.Packets))
	}
}

func TestGenerateDeepGuardCounter(t *testing.T) {
	p := programs.Counter(32)
	adv := genFor(t, p, "tcp_sample")
	// Needs at least 32 TCP packets.
	if len(adv.Packets) < 32 {
		t.Fatalf("expected ≥32 packets, got %d", len(adv.Packets))
	}
	tcp := 0
	for _, pk := range adv.Packets {
		if pk.Proto == ir.ProtoTCP {
			tcp++
		}
	}
	if tcp < 32 {
		t.Fatalf("only %d TCP packets", tcp)
	}
}

func TestGenerateBlinkReroute(t *testing.T) {
	p := programs.Blink()
	adv := genFor(t, p, "reroute")
	if len(adv.Packets) < 33 {
		t.Fatalf("reroute needs >32 retransmissions, got %d packets", len(adv.Packets))
	}
	// The trace must contain repeated sequence numbers (retransmissions).
	repeats := 0
	for i := 1; i < len(adv.Packets); i++ {
		if adv.Packets[i].Seq == adv.Packets[i-1].Seq {
			repeats++
		}
	}
	if repeats < 32 {
		t.Fatalf("only %d retransmission pairs", repeats)
	}
}

func TestGenerateBloomMissFollowup(t *testing.T) {
	p := programs.P40f()
	adv := genFor(t, p, "db_followup")
	if len(adv.Packets) < 2 {
		t.Fatal("needs the SYN (mark) then a follow-up packet")
	}
}

func TestGenerateNetCacheMiss(t *testing.T) {
	p := programs.NetCache()
	genFor(t, p, "cache_miss")
}

func TestGeneratePoiseRecirc(t *testing.T) {
	p := programs.Poise()
	genFor(t, p, "data_collision")
}

func TestGenerateDecompositionPopulated(t *testing.T) {
	p := programs.Counter(64)
	adv := genFor(t, p, "tcp_sample")
	if adv.Decomp.Total() <= 0 {
		t.Fatal("decomposition empty")
	}
	if adv.Decomp.Symbex <= 0 {
		t.Fatal("symbex time missing")
	}
}

func TestGenerateInvalidTarget(t *testing.T) {
	p := programs.CopyToCPU()
	if _, err := Generate(p, 9999, Options{}); err == nil {
		t.Fatal("out-of-range target should error")
	}
}

func TestWorkloadAmplification(t *testing.T) {
	p := programs.Counter(8)
	adv := genFor(t, p, "tcp_sample")
	w := Workload(adv.Packets, 3, 500)
	if w.Len() != 1500 {
		t.Fatalf("workload length = %d, want 1500", w.Len())
	}
	if w.Duration() == 0 {
		t.Fatal("workload has no time span")
	}
}

func TestGenerateTop10AcrossSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-system generation sweep skipped in -short")
	}
	// For a representative subset, the lowest-probability expensive blocks
	// must be generatable.
	cases := []struct{ name, label string }{
		{"lb (S1)", "conn_collision"},
		{"flowlet (S2)", "flowlet_collision"},
		{"NetHCF (S9)", "hc_mismatch"},
		{"NetWarden (S11)", "dup_ack"},
		{"*Flow (S7)", "gpv_evict"},
	}
	for _, tc := range cases {
		m, ok := programs.ByName(tc.name)
		if !ok {
			t.Fatalf("program %s missing", tc.name)
		}
		p := m.Build()
		adv, err := Generate(p, mustNode(t, p, tc.label), Options{Seed: 3})
		if err != nil {
			t.Errorf("%s/%s: %v", tc.name, tc.label, err)
			continue
		}
		if !adv.Validated {
			t.Errorf("%s/%s: not validated", tc.name, tc.label)
		}
	}
}
