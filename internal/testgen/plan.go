package testgen

import (
	"sort"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/sym"
)

// directedPlan runs directed symbolic execution: a beam search over the
// symbolic packet sequence, preferring paths whose current packet visited
// blocks close (in CFG edges) to the target (paper §3.5's directed symbex).
func directedPlan(prog *ir.Program, target int, opt Options) (*pathPlan, error) {
	engine := sym.NewEngine(prog, sym.Options{
		Greybox:  true,
		MaxPaths: opt.Beam * 64,
		Ctx:      opt.Ctx,
		Target:   opt.targetModel(),
	})
	cfg := ir.BuildCFG(prog)
	distTo := cfg.DistanceTo(target)

	paths := engine.Initial()
	for step := 0; step < opt.MaxSeqLen; step++ {
		nps, err := engine.Step(paths, step)
		if err != nil {
			// The engine folds cancellation into its budget error; report
			// the caller's cancellation as such, not as "no path found".
			if cerr := opt.ctx().Err(); cerr != nil {
				return nil, cerr
			}
			return nil, ErrNotFound
		}
		for _, p := range nps {
			if p.Visits[target] {
				return &pathPlan{Length: step + 1, Path: p, Engine: engine}, nil
			}
		}
		sort.SliceStable(nps, func(i, j int) bool {
			return planScore(nps[i], distTo) < planScore(nps[j], distTo)
		})
		if len(nps) > opt.Beam {
			nps = nps[:opt.Beam]
		}
		paths = nps
	}
	return nil, ErrNotFound
}

// planScore ranks a path by how close its latest packet got to the target;
// register progress breaks ties (higher counters sort first).
func planScore(p *sym.Path, distTo []int) int {
	best := 1 << 29
	for id := range p.Visits {
		if id < len(distTo) && distTo[id] < best {
			best = distTo[id]
		}
	}
	progress := 0
	for _, v := range p.Regs {
		if v.IsConcrete() && v.C < 1<<16 {
			progress += int(v.C)
		}
	}
	return best*4096 - progress
}

// stretchPlan handles counter-guarded deep targets: it greedily extends the
// single path that advances the guard register fastest until the guard
// fires (the generation-side counterpart of telescoping — one period's
// pattern is repeated threshold-many times).
func stretchPlan(prog *ir.Program, g core.Guard, target int, opt Options) (*pathPlan, error) {
	// Thresholds beyond the stretch cap (e.g. "every millionth packet")
	// would need impractically long traces; report not-found instead of
	// unrolling millions of symbolic packets.
	const stretchCap = 4096
	rept := g.RepetitionsNeeded(1)
	if rept > stretchCap/2 {
		return nil, ErrNotFound
	}
	engine := sym.NewEngine(prog, sym.Options{
		Greybox:  true,
		MaxPaths: 1 << 16,
		Ctx:      opt.Ctx,
		Target:   opt.targetModel(),
	})
	maxSteps := int(rept)*2 + opt.Slack + 8
	paths := engine.Initial()
	for step := 0; step < maxSteps; step++ {
		nps, err := engine.Step(paths, step)
		if err != nil {
			if cerr := opt.ctx().Err(); cerr != nil {
				return nil, cerr
			}
			return nil, ErrNotFound
		}
		for _, p := range nps {
			if p.Visits[target] {
				return &pathPlan{Length: step + 1, Path: p, Engine: engine}, nil
			}
		}
		best := nps[0]
		bestKey := stretchScore(best, g)
		for _, p := range nps[1:] {
			if k := stretchScore(p, g); k > bestKey {
				best, bestKey = p, k
			}
		}
		paths = []*sym.Path{best}
	}
	return nil, ErrNotFound
}

// stretchScore prefers paths with a higher guard register, then higher
// greybox likelihood (so hits beat collisions when both advance equally).
func stretchScore(p *sym.Path, g core.Guard) float64 {
	regV := 0.0
	if v, ok := p.Regs[g.Reg]; ok && v.IsConcrete() {
		regV = float64(v.C)
	}
	return regV*1e6 + p.Grey.Log10()
}
