package testgen

import "repro/internal/trace"

// Workload amplifies an adversarial seed sequence into a sustained attack
// trace: the seed packets are replayed cyclically at the given rate for the
// given duration. State established by the seed prefix (inserted keys,
// counters past their thresholds) keeps the victim code blocks hot on every
// cycle, which is how the Figure 11 disruption phases are driven.
func Workload(seed []trace.Packet, seconds, pps int) *trace.Trace {
	out := &trace.Trace{}
	if len(seed) == 0 || seconds <= 0 || pps <= 0 {
		return out
	}
	total := seconds * pps
	step := uint64(1e6) / uint64(pps)
	ts := uint64(0)
	for i := 0; i < total; i++ {
		p := seed[i%len(seed)].Clone()
		p.TS = ts
		ts += step
		out.Packets = append(out.Packets, p)
	}
	return out
}

// WorkloadFor amplifies a generated adversarial trace. Traces whose effect
// relies on fresh state (new sources, cold keys) rotate their fresh key
// fields every cycle so each replay establishes new state; traces built on
// CRC collisions are replayed verbatim (perturbing keys would break the
// collisions).
func WorkloadFor(adv *AdvTrace, seconds, pps int) *trace.Trace {
	out := &trace.Trace{}
	if adv == nil || len(adv.Packets) == 0 || seconds <= 0 || pps <= 0 {
		return out
	}
	if adv.HasCollisions || len(adv.FreshFields) == 0 {
		return Workload(adv.Packets, seconds, pps)
	}
	// Rotate the first fresh field across ALL packets of the cycle so
	// key-copy relationships (hits of the inserted key) stay intact.
	field := adv.FreshFields[0].Field
	total := seconds * pps
	step := uint64(1e6) / uint64(pps)
	ts := uint64(0)
	n := len(adv.Packets)
	for i := 0; i < total; i++ {
		cycle := uint64(i / n)
		p := adv.Packets[i%n].Clone()
		if v, ok := p.Field(field); ok {
			p.SetField(field, v+cycle*7919)
		}
		p.TS = ts
		ts += step
		out.Packets = append(out.Packets, p)
	}
	return out
}
