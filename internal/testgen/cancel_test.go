package testgen

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/programs"
)

// A pre-canceled context must surface as the context's error, not as
// "no feasible path": callers (the serving layer) distinguish canceled
// jobs from genuinely unreachable targets.
func TestGenerateCanceledContext(t *testing.T) {
	p := programs.Blink()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Generate(p, mustNode(t, p, "reroute"), Options{Seed: 1, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// An already-expired deadline behaves the same way, reporting
// DeadlineExceeded instead of ErrNotFound.
func TestGenerateExpiredDeadline(t *testing.T) {
	p := programs.CopyToCPU()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := Generate(p, mustNode(t, p, "to_cpu"), Options{Seed: 1, Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// Cancellation mid-generation stops the run promptly: cancel from another
// goroutine shortly after starting a deep-target generation and require
// Generate to return well before its uncancelled runtime.
func TestGenerateCancelStopsPromptly(t *testing.T) {
	p := programs.Blink()
	target := mustNode(t, p, "reroute")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	adv, err := Generate(p, target, Options{Seed: 1, Ctx: ctx})
	elapsed := time.Since(start)
	// Either the run finished validly before the cancel landed, or it was
	// canceled — but it must not grind on for seconds afterwards.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
	if err == nil && !adv.Validated {
		t.Fatalf("uncanceled generate did not validate")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("generate ignored cancellation for %v", elapsed)
	}
}
