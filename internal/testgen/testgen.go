// Package testgen generates concrete packet sequences that trigger target
// code blocks — the adversarial-testing workflow of paper §3.5 and §5.3.
//
// Generation runs in three phases whose times are reported separately
// (Figure 9's decomposition):
//
//   - directed symbolic execution finds a symbolic path plan reaching the
//     target, preferring CFG-closer branches; counter-guarded deep targets
//     use the telescoped periodic pattern stretched to the threshold;
//   - the SAT/SMT solver turns the accumulated path constraints into
//     concrete header values;
//   - havocing reconciles greybox data-store arms with concrete key
//     material (fresh keys for empty arms, repeated keys for hits, CRC
//     collision search for collisions) and validates the sequence on the
//     concrete interpreter.
package testgen

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/ir"
	"repro/internal/sym"
	"repro/internal/target"
	"repro/internal/trace"
)

// Options tunes generation.
type Options struct {
	Seed int64
	// MaxSeqLen bounds the directed-symbex sequence length (default 8).
	MaxSeqLen int
	// Beam is the beam width of directed exploration (default 128).
	Beam int
	// Retries bounds havoc/validation retries (default 8).
	Retries int
	// Slack extends stretched guard plans beyond the threshold (default 4).
	Slack int
	// Ctx cancels generation end to end: directed/stretched symbolic
	// exploration checks it at every fork point, the solver once per
	// restart (and stride-checked inside its repair loop), and the havoc
	// phase's CRC collision search every 64 probes. A canceled Generate
	// returns the context's error. Nil means no cancellation.
	Ctx context.Context
	// Target names the device model the generated sequence must work
	// against ("idealized" when empty): directed exploration and the
	// validation replay both run under the same model, so a trace is only
	// reported Validated when it triggers the block on that device.
	Target string
}

// targetModel resolves the named target, falling back to idealized for
// unknown names (callers validate names at their own boundaries).
func (o Options) targetModel() *target.Model {
	m, err := target.Lookup(o.Target)
	if err != nil {
		return target.Idealized
	}
	return m
}

// ctx returns the options context, never nil.
func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

func (o Options) withDefaults() Options {
	if o.MaxSeqLen == 0 {
		o.MaxSeqLen = 8
	}
	if o.Beam == 0 {
		o.Beam = 128
	}
	if o.Retries == 0 {
		o.Retries = 8
	}
	if o.Slack == 0 {
		o.Slack = 4
	}
	return o
}

// Decomposition reports where generation time went (Figure 9).
type Decomposition struct {
	Symbex time.Duration
	Solver time.Duration
	Havoc  time.Duration
}

// Total returns the summed phase time.
func (d Decomposition) Total() time.Duration { return d.Symbex + d.Solver + d.Havoc }

// FreshField marks a packet field havocing chose freshly (a new flow/key);
// workload amplification may rotate it per cycle to keep producing new
// state (new sources, new cold keys).
type FreshField struct {
	Pkt   int
	Field string
}

// AdvTrace is one generated adversarial test input.
type AdvTrace struct {
	Program string
	Target  int
	Label   string
	Packets []trace.Packet
	Decomp  Decomposition
	// FreshFields lists fields that may be rotated per amplification cycle.
	FreshFields []FreshField
	// HasCollisions marks traces containing CRC collision pairs, whose key
	// material must not be perturbed during amplification.
	HasCollisions bool
	// Validated is true when replaying Packets on a fresh DUT visits the
	// target block.
	Validated bool
}

// ErrNotFound is returned when no plan reaching the target was found.
var ErrNotFound = errors.New("testgen: no feasible path to target found")

// Generate produces a concrete packet sequence that exercises the target
// CFG node of the program.
func Generate(prog *ir.Program, target int, opt Options) (*AdvTrace, error) {
	opt = opt.withDefaults()
	if target < 0 || target >= len(prog.Nodes()) {
		return nil, fmt.Errorf("testgen: target node %d out of range", target)
	}
	out := &AdvTrace{Program: prog.Name, Target: target, Label: prog.Node(target).Label}

	// Counter-guarded deep targets take the telescoped stretch plan;
	// everything else goes through directed symbex.
	var plan *pathPlan
	var err error
	symStart := time.Now()
	if g, ok := guardOf(prog, target); ok && g.RepetitionsNeeded(1) > uint64(opt.MaxSeqLen) {
		plan, err = stretchPlan(prog, g, target, opt)
	} else {
		plan, err = directedPlan(prog, target, opt)
	}
	out.Decomp.Symbex = time.Since(symStart)
	if err != nil {
		return out, err
	}

	// Solve + havoc with validation retries. The per-phase context checks
	// make the retry loop stop at the first canceled phase instead of
	// burning the remaining retries on doomed solves.
	for try := 0; try < opt.Retries; try++ {
		if err := opt.ctx().Err(); err != nil {
			return out, err
		}
		trySeed := opt.Seed + int64(try*7919)
		solveStart := time.Now()
		pkts, ok := solvePhase(opt.ctx(), prog, plan, trySeed)
		out.Decomp.Solver += time.Since(solveStart)
		if !ok {
			continue
		}
		havocStart := time.Now()
		freshFields, hasCollisions := havocPhase(opt.ctx(), prog, plan, pkts, trySeed)
		valid := validate(prog, pkts, target, opt.targetModel())
		out.Decomp.Havoc += time.Since(havocStart)
		if valid {
			out.Packets = pkts
			out.FreshFields = freshFields
			out.HasCollisions = hasCollisions
			out.Validated = true
			return out, nil
		}
		// Keep the best-effort sequence even when unvalidated.
		if out.Packets == nil {
			out.Packets = pkts
		}
	}
	if err := opt.ctx().Err(); err != nil {
		return out, err
	}
	if out.Packets == nil {
		return out, ErrNotFound
	}
	return out, nil
}

// guardOf reports whether target lies inside a counter-guarded block.
func guardOf(prog *ir.Program, target int) (core.Guard, bool) {
	for _, g := range core.FindGuards(prog) {
		for _, b := range ir.Blocks(g.Node) {
			if b.ID == target {
				return g, true
			}
		}
	}
	return core.Guard{}, false
}

// validate replays a candidate sequence on a fresh concrete switch and
// checks that the target block executes.
func validate(prog *ir.Program, pkts []trace.Packet, target int, model *target.Model) bool {
	sw := dut.New(prog, dut.Config{Target: model})
	hit := false
	sw.VisitHook = func(id int) {
		if id == target {
			hit = true
		}
	}
	for i := range pkts {
		sw.Process(&pkts[i])
	}
	return hit
}

// pathPlan is the symbolic skeleton of a test sequence.
type pathPlan struct {
	// Length in packets.
	Length int
	// Path carries the accumulated constraints and greybox choices.
	Path *sym.Path
	// Engine provides the variable space for solving.
	Engine *sym.Engine
	// RepeatFrom/RepeatTo mark a packet range that concretize replicates
	// field-wise from the previous period (used by stretched guard plans
	// for constraints like "same seq as previous packet").
	CopyFields map[int][]fieldCopy
}

// fieldCopy instructs packet Pkt to copy field Field from packet From.
type fieldCopy struct {
	Field string
	From  int
}
