package testgen

import (
	"context"
	"strconv"
	"strings"

	"repro/internal/dut"
	"repro/internal/ir"
	"repro/internal/solver"
	"repro/internal/sym"
	"repro/internal/trace"
)

// solvePhase invokes the solver on the plan's path condition and lays the
// witness into packet headers (the paper's final SAT/SMT invocation).
func solvePhase(ctx context.Context, prog *ir.Program, plan *pathPlan, seed int64) ([]trace.Packet, bool) {
	asn, ok := solver.Solve(plan.Path.PC, plan.Engine.Space, solver.SolveOptions{Seed: seed, Ctx: ctx})
	if !ok {
		return nil, false
	}
	pkts := make([]trace.Packet, plan.Length)
	for i := range pkts {
		pkts[i] = defaultPacket(prog, i, seed)
		for _, f := range prog.Fields {
			if v, has := asn[solver.Var{Pkt: i, Field: f.Name}]; has {
				pkts[i].SetField(f.Name, v)
			}
		}
	}
	// Masked derived variables ("tcp_flags&18") constrain bits of their
	// base field; overlay them after direct assignments.
	for v, val := range asn {
		idx := strings.LastIndex(v.Field, "&")
		if idx <= 0 || strings.HasPrefix(v.Field, "__") {
			continue
		}
		base := v.Field[:idx]
		mask, err := strconv.ParseUint(v.Field[idx+1:], 10, 64)
		if err != nil || v.Pkt < 0 || v.Pkt >= len(pkts) {
			continue
		}
		cur, _ := pkts[v.Pkt].Field(base)
		pkts[v.Pkt].SetField(base, (cur&^mask)|val)
	}
	return pkts, true
}

// defaultPacket fills plausible defaults; per-packet distinct flow fields
// keep unconstrained accesses landing on fresh hash slots.
func defaultPacket(prog *ir.Program, i int, seed int64) trace.Packet {
	var p trace.Packet
	p.TS = uint64(i) * 1000
	p.Proto = ir.ProtoTCP
	p.TTL = 64
	p.Len = 100
	p.IPD = 1
	p.SrcIP = uint32(0x0A000000 + i + int(seed&0xff)*1000)
	p.DstIP = 0xC0A80001
	p.SrcPort = uint16(20000 + i)
	p.DstPort = 80
	p.Seq = uint32(1000 * (i + 1))
	for _, f := range prog.Fields {
		if _, std := p.Field(f.Name); !std {
			p.SetField(f.Name, 0)
		}
	}
	return p
}

// occupant records a key installed into a store during havocing.
type occupant struct {
	slot uint64
	key  []uint64
	pkt  int
}

// havocPhase reconciles greybox arm decisions with concrete key material:
// hits reuse a previously inserted key, empties take fresh keys landing on
// free slots, and collisions are found by brute-force CRC search — the
// role the rainbow table plays for KLEE-style havocing. The collision
// search is the one unbounded-feeling loop here (store size × 64 probes),
// so it stride-checks ctx; a canceled havoc returns what it has and lets
// the caller's validation fail the sequence.
func havocPhase(ctx context.Context, prog *ir.Program, plan *pathPlan, pkts []trace.Packet, seed int64) (freshFields []FreshField, hasCollisions bool) {
	inserted := map[string][]occupant{} // store -> insertion history
	fresh := uint64(seed&0xffff) + 1

	keyFieldsCache := map[string][]string{}
	keyFields := func(store string) []string {
		if f, ok := keyFieldsCache[store]; ok {
			return f
		}
		f := keyFieldsFor(prog, store)
		keyFieldsCache[store] = f
		return f
	}

	constrained := constrainedVars(plan.Path.PC)

	for _, ch := range plan.Path.GreyChoices {
		if ch.Pkt < 0 || ch.Pkt >= len(pkts) {
			continue
		}
		pkt := &pkts[ch.Pkt]
		fields := keyFields(ch.Store)
		if len(fields) == 0 {
			continue
		}
		decl, isHash := prog.HashTable(ch.Store)
		free := freeFields(fields, ch.Pkt, constrained)

		switch ch.Arm {
		case sym.ArmHit, sym.ArmBloomHit:
			// Reuse the most recent key inserted into this store.
			if hist := inserted[ch.Store]; len(hist) > 0 {
				src := hist[len(hist)-1]
				for fi, f := range fields {
					if fi < len(src.key) {
						pkt.SetField(f, src.key[fi])
					}
				}
			}
		case sym.ArmEmpty, sym.ArmBloomMiss:
			// Fresh key; for hash tables also require a free slot.
			if len(free) > 0 {
				freshFields = append(freshFields, FreshField{Pkt: ch.Pkt, Field: free[0]})
			}
			for attempt := 0; attempt < 4096; attempt++ {
				if len(free) > 0 {
					pkt.SetField(free[0], fresh)
					fresh++
				}
				if !isHash {
					break
				}
				key := keyValues(pkt, fields)
				slot := dut.HashOf(decl.Seed, key, uint64(decl.Size))
				if !slotTaken(inserted[ch.Store], slot) || len(free) == 0 {
					break
				}
			}
			key := keyValues(pkt, fields)
			if isHash {
				slot := dut.HashOf(decl.Seed, key, uint64(decl.Size))
				inserted[ch.Store] = append(inserted[ch.Store], occupant{slot: slot, key: key, pkt: ch.Pkt})
			} else {
				inserted[ch.Store] = append(inserted[ch.Store], occupant{key: key, pkt: ch.Pkt})
			}
		case sym.ArmCollide:
			// Find a different key hashing to an existing occupant's slot.
			hasCollisions = true
			hist := inserted[ch.Store]
			if len(hist) == 0 || !isHash || len(free) == 0 {
				continue
			}
			victim := hist[len(hist)-1]
			limit := decl.Size * 64
			for attempt := 0; attempt < limit; attempt++ {
				if attempt%64 == 63 && ctx.Err() != nil {
					return freshFields, hasCollisions
				}
				pkt.SetField(free[0], fresh)
				fresh++
				key := keyValues(pkt, fields)
				if keysDiffer(key, victim.key) &&
					dut.HashOf(decl.Seed, key, uint64(decl.Size)) == victim.slot {
					break
				}
			}
		case sym.ArmSketchTrue, sym.ArmSketchFalse:
			// Sketch thresholds are driven by repetition, which the plan's
			// hit arms already arrange; nothing to do per access.
		}
	}
	return freshFields, hasCollisions
}

// keyFieldsFor returns the ordered header fields a store is keyed by.
func keyFieldsFor(prog *ir.Program, store string) []string {
	var out []string
	seen := map[string]bool{}
	collect := func(keys []ir.Expr) {
		if out != nil {
			return // first access wins; all zoo accesses agree per store
		}
		var fs []string
		for _, k := range keys {
			if fr, ok := k.(ir.FieldRef); ok && !seen[fr.Name] {
				fs = append(fs, fr.Name)
				seen[fr.Name] = true
			}
		}
		out = fs
	}
	prog.Walk(func(s ir.Stmt) {
		switch t := s.(type) {
		case *ir.HashAccess:
			if t.Store == store {
				collect(t.Key)
			}
		case *ir.BloomOp:
			if t.Filter == store {
				collect(t.Key)
			}
		case *ir.SketchUpdate:
			if t.Sketch == store {
				collect(t.Key)
			}
		case *ir.SketchBranch:
			if t.Sketch == store {
				collect(t.Key)
			}
		}
	})
	return out
}

func keyValues(p *trace.Packet, fields []string) []uint64 {
	out := make([]uint64, len(fields))
	for i, f := range fields {
		out[i], _ = p.Field(f)
	}
	return out
}

func keysDiffer(a, b []uint64) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}

func slotTaken(hist []occupant, slot uint64) bool {
	for _, o := range hist {
		if o.slot == slot {
			return true
		}
	}
	return false
}

// constrainedVars collects every variable the path condition mentions;
// havocing must not disturb them.
func constrainedVars(pc []solver.Constraint) map[solver.Var]bool {
	out := map[solver.Var]bool{}
	for _, c := range pc {
		for _, v := range c.E.Vars() {
			out[v] = true
		}
	}
	return out
}

// freeFields returns the key fields of a packet the solver left
// unconstrained, preferring high-entropy flow identifiers.
func freeFields(fields []string, pkt int, constrained map[solver.Var]bool) []string {
	var out []string
	prefer := []string{"src_port", "src_ip", "key", "dst_port", "dst_ip"}
	add := func(f string) {
		if !constrained[solver.Var{Pkt: pkt, Field: f}] {
			out = append(out, f)
		}
	}
	for _, p := range prefer {
		for _, f := range fields {
			if f == p {
				add(f)
			}
		}
	}
	for _, f := range fields {
		dup := false
		for _, o := range out {
			if o == f {
				dup = true
			}
		}
		if !dup {
			add(f)
		}
	}
	return out
}
