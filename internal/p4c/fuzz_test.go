package p4c

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/randprog"
)

// FuzzParseFormat checks that the mini-language front end is a fixpoint
// under pretty-printing: any source that parses must format to text that
// parses again and formats identically (Parse∘Format is idempotent), and
// neither phase may panic on arbitrary input.
//
// The corpus is seeded from the example programs and from formatted
// random IR programs, so mutations start near the interesting grammar.
func FuzzParseFormat(f *testing.F) {
	paths, err := filepath.Glob("../../examples/programs/*.p4w")
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := randprog.Deterministic(rng, randprog.Options{WithTables: true})
		f.Add(prog.Format())
	}
	f.Add("") // degenerate inputs must error, not panic
	f.Add("system x {\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		text := prog.Format()
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\n--- formatted ---\n%s", err, text)
		}
		if text2 := prog2.Format(); text2 != text {
			t.Fatalf("Format is not a fixpoint\n--- first ---\n%s\n--- second ---\n%s", text, text2)
		}
	})
}
